package regiongrow

// Extension and ablation benchmarks beyond the paper's tables:
//
//	BenchmarkExtension_HPFDistribution — tests the paper's closing
//	    prediction that HPF data-distribution directives would bring the
//	    data-parallel implementation close to message passing.
//	BenchmarkScaling_DataParallelPE — split/merge simulated time versus
//	    processing element count (complexity section: O(N²/P + log P)).
//	BenchmarkScaling_MessagePassingNodes — simulated time versus node
//	    count for the message-passing engine.
//	BenchmarkAblation_SerialMerge — the R−1-iteration serial merge
//	    baseline against parallel mutual merging.
//	BenchmarkAblation_SplitCap — the N/8 square cap versus an unbounded
//	    split (how much does the paper's fixed iteration count cost?).

import (
	"fmt"
	"testing"

	"regiongrow/internal/core"
	"regiongrow/internal/dpengine"
	"regiongrow/internal/machine"
	"regiongrow/internal/mpengine"
	"regiongrow/internal/mpvm"
)

// BenchmarkExtension_HPFDistribution runs the data-parallel program under
// the measured CM5-CMF profile, the hypothetical HPF profile, and the
// message-passing Async engine. The paper predicts HPF lands between the
// other two.
func BenchmarkExtension_HPFDistribution(b *testing.B) {
	im := GeneratePaperImage(Image1NestedRects128)
	cfg := DefaultConfig()
	run := func(b *testing.B, eng Engine) {
		var seg *Segmentation
		var err error
		for i := 0; i < b.N; i++ {
			seg, err = eng.Segment(im, cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(seg.MergeSim, "sim-merge-s")
		b.ReportMetric(seg.SplitSim, "sim-split-s")
	}
	b.Run("cm5-cmf", func(b *testing.B) {
		eng, err := dpengine.New(machine.CM5_CMF)
		if err != nil {
			b.Fatal(err)
		}
		run(b, eng)
	})
	b.Run("cm5-hpf-hypothetical", func(b *testing.B) {
		run(b, dpengine.NewWithProfile(machine.CM5_CMF, machine.HPFHypothetical()))
	})
	b.Run("cm5-async", func(b *testing.B) {
		eng, err := mpengine.New(machine.CM5_Async)
		if err != nil {
			b.Fatal(err)
		}
		run(b, eng)
	})
}

// BenchmarkScaling_DataParallelPE sweeps the processing-element count of
// a CM-2-style machine.
func BenchmarkScaling_DataParallelPE(b *testing.B) {
	im := GeneratePaperImage(Image1NestedRects128)
	cfg := Config{Threshold: 10, Tie: SmallestIDTie}
	for _, pe := range []int{1024, 4096, 16384, 65536} {
		b.Run(fmt.Sprintf("pe=%d", pe), func(b *testing.B) {
			eng := dpengine.NewWithProfile(machine.CM2_8K, machine.ScaledCM2(pe))
			var seg *Segmentation
			var err error
			for i := 0; i < b.N; i++ {
				seg, err = eng.Segment(im, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seg.SplitSim, "sim-split-s")
			b.ReportMetric(seg.MergeSim, "sim-merge-s")
		})
	}
}

// BenchmarkScaling_MessagePassingNodes sweeps the node count of the
// message-passing cluster. The split cap is fixed at 8 so tiles stay
// aligned across all node counts.
func BenchmarkScaling_MessagePassingNodes(b *testing.B) {
	im := GeneratePaperImage(Image1NestedRects128)
	cfg := Config{Threshold: 10, Tie: SmallestIDTie, MaxSquare: 8}
	for _, nodes := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			eng := mpengine.NewCustom(nodes, mpvm.Async, machine.Get(machine.CM5_Async))
			var seg *Segmentation
			var err error
			for i := 0; i < b.N; i++ {
				seg, err = eng.Segment(im, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(seg.SplitSim, "sim-split-s")
			b.ReportMetric(seg.MergeSim, "sim-merge-s")
		})
	}
}

// BenchmarkAblation_SerialMerge contrasts the serial merge baseline
// against the parallel mutual-merge kernel on the host.
func BenchmarkAblation_SerialMerge(b *testing.B) {
	im := GeneratePaperImage(Image2Rects128)
	b.Run("serial-baseline", func(b *testing.B) {
		var seg *Segmentation
		var err error
		for i := 0; i < b.N; i++ {
			seg, err = SegmentSerial(im, Config{Threshold: 10})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(seg.MergeIterations), "merge-iters")
	})
	b.Run("mutual-parallel", func(b *testing.B) {
		var seg *Segmentation
		var err error
		for i := 0; i < b.N; i++ {
			seg, err = Segment(im, Config{Threshold: 10, Tie: RandomTie, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(seg.MergeIterations), "merge-iters")
	})
}

// BenchmarkAblation_SplitCap contrasts the paper's N/8 square cap with an
// unbounded split: the cap trades a cheaper, content-independent split
// for more squares entering the merge stage.
func BenchmarkAblation_SplitCap(b *testing.B) {
	im := GeneratePaperImage(Image1NestedRects128)
	for _, tc := range []struct {
		name string
		cap  int
	}{
		{"cap-n8", 0},
		{"unbounded", -1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1, MaxSquare: tc.cap}
			var seg *core.Segmentation
			var err error
			for i := 0; i < b.N; i++ {
				seg, err = Segment(im, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(seg.SquaresAfterSplit), "squares")
			b.ReportMetric(float64(seg.SplitIterations), "split-iters")
			b.ReportMetric(float64(seg.MergeIterations), "merge-iters")
		})
	}
}
