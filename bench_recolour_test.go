package regiongrow

import (
	"testing"

	"regiongrow/internal/pixmap"
)

// recolourMap is the pre-dense-table implementation Recolour shipped
// with: a per-pixel map lookup keyed by region ID. Kept as the benchmark
// baseline so the win of the flat shade table stays measured.
func recolourMap(seg *Segmentation, im *Image) *Image {
	shade := make(map[int32]uint8, len(seg.Regions))
	for _, r := range seg.Regions {
		shade[r.ID] = uint8((int(r.IV.Lo) + int(r.IV.Hi)) / 2)
	}
	out := pixmap.New(im.W, im.H)
	for i, lab := range seg.Labels {
		out.Pix[i] = shade[lab]
	}
	return out
}

func recolourFixture(b *testing.B) (*Segmentation, *Image) {
	b.Helper()
	im := GeneratePaperImage(Image6Tool256)
	seg, err := Segment(im, Config{Threshold: 10, Tie: RandomTie, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return seg, im
}

// BenchmarkRecolour measures the dense-table Recolour on image6 (256×256,
// the busiest paper image). Compare with BenchmarkRecolourMap to see what
// replacing the per-pixel map lookup bought.
func BenchmarkRecolour(b *testing.B) {
	seg, im := recolourFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Recolour(seg, im)
		if out.Pix[0] == 1 && out.Pix[1] == 2 {
			b.Fatal("unreachable, defeats dead-code elimination")
		}
	}
}

// BenchmarkRecolourMap is the old map-based implementation, kept for
// comparison.
func BenchmarkRecolourMap(b *testing.B) {
	seg, im := recolourFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := recolourMap(seg, im)
		if out.Pix[0] == 1 && out.Pix[1] == 2 {
			b.Fatal("unreachable, defeats dead-code elimination")
		}
	}
}

// TestRecolourMatchesMapBaseline pins the dense-table implementation to
// the map baseline pixel for pixel, on every paper image.
func TestRecolourMatchesMapBaseline(t *testing.T) {
	for _, id := range AllPaperImages() {
		im := GeneratePaperImage(id)
		seg, err := Segment(im, Config{Threshold: 10, Tie: RandomTie, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, want := Recolour(seg, im), recolourMap(seg, im)
		for i := range want.Pix {
			if got.Pix[i] != want.Pix[i] {
				t.Fatalf("%v: pixel %d differs: %d vs %d", id, i, got.Pix[i], want.Pix[i])
			}
		}
	}
}
