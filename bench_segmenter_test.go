package regiongrow

import (
	"context"
	"testing"

	"regiongrow/internal/core"
)

// BenchmarkSegmenterReuse measures the steady state of the redesigned hot
// path: one pooled Segmenter, repeated calls on a same-size image — the
// server's cache-miss pattern. Compare its allocs/op with
// BenchmarkSegmentOneShot to see what the buffer pool buys; CI holds it
// to the budget asserted in TestSegmenterReuseAllocBudget.
func BenchmarkSegmenterReuse(b *testing.B) {
	s, err := New(SequentialEngine)
	if err != nil {
		b.Fatal(err)
	}
	im := GeneratePaperImage(Image1NestedRects128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	ctx := context.Background()
	if _, err := s.Segment(ctx, im, cfg); err != nil {
		b.Fatal(err) // warm the buffer pool
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Segment(ctx, im, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// segmenterReuseAllocBudget is the committed steady-state allocation
// budget for BenchmarkSegmenterReuse (image1, sequential engine, warm
// pool). Measured ≈1.5k allocs/op on the flat-arena kernel (down from
// ≈2.3k on the map-based RAG and ≈18.2k before the session redesign);
// the headroom absorbs runtime and map-layout jitter, not regressions —
// CI fails the benchmark smoke and the test below if the path creeps
// past it.
const segmenterReuseAllocBudget = 2000

// TestSegmenterReuseAllocBudget holds the pooled hot path to the
// committed budget.
func TestSegmenterReuseAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation accounting")
	}
	s, err := New(SequentialEngine)
	if err != nil {
		t.Fatal(err)
	}
	im := GeneratePaperImage(Image1NestedRects128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	ctx := context.Background()
	if _, err := s.Segment(ctx, im, cfg); err != nil {
		t.Fatal(err) // warm the buffer pool
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := s.Segment(ctx, im, cfg); err != nil {
			t.Error(err)
		}
	})
	if avg > segmenterReuseAllocBudget {
		t.Errorf("steady-state allocs/op = %.0f, budget %d — the pooled hot path regressed",
			avg, segmenterReuseAllocBudget)
	}
}

// BenchmarkSegmentOneShot is the pre-redesign pattern: a fresh engine and
// fresh buffers per call.
func BenchmarkSegmentOneShot(b *testing.B) {
	im := GeneratePaperImage(Image1NestedRects128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.Sequential{}).Segment(im, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmenterReuseNative is the native-engine variant of the reuse
// benchmark (tile scratch rides a pool of its own).
func BenchmarkSegmenterReuseNative(b *testing.B) {
	s, err := New(NativeParallel)
	if err != nil {
		b.Fatal(err)
	}
	im := GeneratePaperImage(Image1NestedRects128)
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	ctx := context.Background()
	if _, err := s.Segment(ctx, im, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Segment(ctx, im, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
