package regiongrow

import (
	"bytes"
	"context"
	"io"
	"testing"
)

// BenchmarkSegmentStream measures the streaming engine end to end on a
// paper image: header parse, banded split with frontier stitching, the
// global merge, and the spool-replay recolour emission (including the
// spool temp file's lifecycle — disk traffic is part of this path's
// price). Compare against the image6 rows of BenchmarkNativeVsSequential
// to see what bounded memory costs on an image that fits in memory; the
// gate in CI holds the overhead from creeping.
func BenchmarkSegmentStream(b *testing.B) {
	im := GeneratePaperImage(Image6Tool256)
	var pgm bytes.Buffer
	if err := WritePGM(&pgm, im); err != nil {
		b.Fatal(err)
	}
	data := pgm.Bytes()
	cfg := Config{Threshold: 10, Tie: RandomTie, Seed: 1}
	b.SetBytes(int64(im.W * im.H))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SegmentStream(context.Background(), bytes.NewReader(data), io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
