package regiongrow

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section:
//
//	BenchmarkTable1_Image1 … BenchmarkTable6_Image6 — the six per-image
//	    tables: split/merge simulated seconds and iteration counts for the
//	    five machine configurations (reported as custom metrics).
//	BenchmarkFigure3_MergeComparison — the merge-stage comparison across
//	    all six images per configuration.
//	BenchmarkAblation_TieBreaking — the paper's random-vs-ID tie-break
//	    claim (C1): merges per iteration and iteration counts per policy.
//	BenchmarkAblation_CommScheme — LP vs Async exchange (C2).
//	BenchmarkSplitStage — split-stage scaling with image size.
//	BenchmarkBaseline_CCL — classical connected-component labelling
//	    baseline vs the full split+merge pipeline (host wall time).
//
// Simulated machine seconds are attached as ReportMetric values
// (sim-split-s, sim-merge-s, merge-iters); ns/op measures the host.

import (
	"fmt"
	"testing"

	"regiongrow/internal/core"
	"regiongrow/internal/unionfind"
)

// benchTable runs one paper table: every machine configuration on one
// image, attaching the simulated stage times the table reports.
func benchTable(b *testing.B, id PaperImageID) {
	im := GeneratePaperImage(id)
	for _, kind := range AllEngineKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			eng, err := NewEngine(kind)
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultConfig()
			var seg *Segmentation
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seg, err = eng.Segment(im, cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(seg.SplitSim, "sim-split-s")
			b.ReportMetric(seg.MergeSim, "sim-merge-s")
			b.ReportMetric(float64(seg.SplitIterations), "split-iters")
			b.ReportMetric(float64(seg.MergeIterations), "merge-iters")
			b.ReportMetric(float64(seg.SquaresAfterSplit), "squares")
			b.ReportMetric(float64(seg.FinalRegions), "regions")
		})
	}
}

func BenchmarkTable1_Image1(b *testing.B) { benchTable(b, Image1NestedRects128) }
func BenchmarkTable2_Image2(b *testing.B) { benchTable(b, Image2Rects128) }
func BenchmarkTable3_Image3(b *testing.B) { benchTable(b, Image3Circles128) }
func BenchmarkTable4_Image4(b *testing.B) { benchTable(b, Image4NestedRects256) }
func BenchmarkTable5_Image5(b *testing.B) { benchTable(b, Image5Rects256) }
func BenchmarkTable6_Image6(b *testing.B) { benchTable(b, Image6Tool256) }

// BenchmarkFigure3_MergeComparison reproduces the bar chart: total
// merge-stage simulated time per configuration summed over images 1–6.
func BenchmarkFigure3_MergeComparison(b *testing.B) {
	images := make([]*Image, 0, 6)
	for _, id := range AllPaperImages() {
		images = append(images, GeneratePaperImage(id))
	}
	for _, kind := range AllEngineKinds() {
		b.Run(kind.String(), func(b *testing.B) {
			eng, err := NewEngine(kind)
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultConfig()
			total := 0.0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total = 0
				for _, im := range images {
					seg, err := eng.Segment(im, cfg)
					if err != nil {
						b.Fatal(err)
					}
					total += seg.MergeSim
				}
			}
			b.StopTimer()
			b.ReportMetric(total, "sim-merge-total-s")
		})
	}
}

// BenchmarkAblation_TieBreaking quantifies claim C1: random tie-breaking
// achieves more merges per iteration than ID-based tie-breaking.
func BenchmarkAblation_TieBreaking(b *testing.B) {
	for _, tc := range []struct {
		name string
		tie  TiePolicy
	}{
		{"smallest-id", SmallestIDTie},
		{"largest-id", LargestIDTie},
		{"random", RandomTie},
	} {
		for _, id := range []PaperImageID{Image1NestedRects128, Image3Circles128} {
			b.Run(fmt.Sprintf("%s/image%d", tc.name, int(id)), func(b *testing.B) {
				im := GeneratePaperImage(id)
				cfg := Config{Threshold: 10, Tie: tc.tie, Seed: 1}
				var seg *Segmentation
				var err error
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seg, err = Segment(im, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(seg.MergeIterations), "merge-iters")
				mpi := 0.0
				if seg.MergeIterations > 0 {
					mpi = float64(seg.SquaresAfterSplit-seg.FinalRegions) / float64(seg.MergeIterations)
				}
				b.ReportMetric(mpi, "merges/iter")
			})
		}
	}
}

// BenchmarkAblation_CommScheme isolates claim C2: the Async exchange
// scheme beats Linear Permutation.
func BenchmarkAblation_CommScheme(b *testing.B) {
	for _, kind := range []EngineKind{CM5LinearPermutation, CM5Async} {
		for _, id := range []PaperImageID{Image1NestedRects128, Image4NestedRects256} {
			b.Run(fmt.Sprintf("%s/image%d", kind, int(id)), func(b *testing.B) {
				im := GeneratePaperImage(id)
				eng, err := NewEngine(kind)
				if err != nil {
					b.Fatal(err)
				}
				cfg := DefaultConfig()
				var seg *Segmentation
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seg, err = eng.Segment(im, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(seg.MergeSim, "sim-merge-s")
			})
		}
	}
}

// BenchmarkSplitStage measures split-stage scaling with image size on the
// sequential engine (the paper's split complexity is O(N²/P + log P);
// sequentially that is O(N² log N) worst case, O(N²) with the cap).
func BenchmarkSplitStage(b *testing.B) {
	for _, n := range []int{64, 128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			im := GeneratePaperImage(Image1NestedRects128)
			if n != 128 {
				im = nestedAt(n)
			}
			cfg := Config{Threshold: 10}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Segment(im, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// nestedAt builds a nested-rectangles image at an arbitrary size.
func nestedAt(n int) *Image {
	im := NewImage(n, n)
	im.FillRect(0, 0, n, n, 40)
	o := n/8 + 2
	im.FillRect(o, o, n-o, n-o, 180)
	return im
}

// BenchmarkBaseline_CCL compares the classical connected-component
// labelling baseline against the full split+merge pipeline on the host.
func BenchmarkBaseline_CCL(b *testing.B) {
	im := GeneratePaperImage(Image3Circles128)
	b.Run("ccl", func(b *testing.B) {
		comps := 0
		for i := 0; i < b.N; i++ {
			_, comps = unionfind.CCL(im, 10)
		}
		b.ReportMetric(float64(comps), "regions")
	})
	b.Run("split+merge", func(b *testing.B) {
		var seg *core.Segmentation
		var err error
		for i := 0; i < b.N; i++ {
			seg, err = Segment(im, Config{Threshold: 10, Tie: RandomTie, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(seg.FinalRegions), "regions")
	})
}

// BenchmarkNativeVsSequential compares host wall time of the native
// shared-memory engine against the single-threaded reference on the
// paper's 128px and 256px images plus a 512px upscale — the speedup
// benchmark for the native engine (run with GOMAXPROCS >= 4 to see the
// worker pool pay off; ns/op is the metric to compare between the
// sequential/ and native/ variants of each image).
func BenchmarkNativeVsSequential(b *testing.B) {
	im512, err := GeneratePaperImage(Image6Tool256).Upsample(2)
	if err != nil {
		b.Fatal(err)
	}
	images := []struct {
		name string
		im   *Image
	}{
		{"image3-circles-128", GeneratePaperImage(Image3Circles128)},
		{"image4-nested-256", GeneratePaperImage(Image4NestedRects256)},
		{"image6-tool-256", GeneratePaperImage(Image6Tool256)},
		{"tool-512", im512},
	}
	cfg := DefaultConfig()
	for _, tc := range images {
		ref, err := Segment(tc.im, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, kind := range []EngineKind{SequentialEngine, NativeParallel} {
			b.Run(fmt.Sprintf("%s/%s", tc.name, kind), func(b *testing.B) {
				eng, err := NewEngine(kind)
				if err != nil {
					b.Fatal(err)
				}
				var seg *Segmentation
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					seg, err = eng.Segment(tc.im, cfg)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if !ref.EqualLabels(seg) {
					b.Fatal("labels differ from sequential reference")
				}
				b.ReportMetric(float64(seg.FinalRegions), "regions")
			})
		}
	}
}

// BenchmarkEngineWallTime measures the host-side wall performance of the
// four execution models on one image (the goroutine-tiled SIMD emulation,
// the goroutine cluster, and the native shared-memory engine versus the
// single-threaded reference).
func BenchmarkEngineWallTime(b *testing.B) {
	im := GeneratePaperImage(Image2Rects128)
	for _, kind := range []EngineKind{SequentialEngine, CM2DataParallel8K, CM5Async, NativeParallel} {
		b.Run(kind.String(), func(b *testing.B) {
			eng, err := NewEngine(kind)
			if err != nil {
				b.Fatal(err)
			}
			cfg := Config{Threshold: 10, Tie: SmallestIDTie}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Segment(im, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
