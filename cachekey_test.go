package regiongrow

import (
	"encoding/json"
	"math/rand"
	"testing"

	"regiongrow/internal/quadsplit"
)

// allKindsForKeys enumerates every engine kind cache keys distinguish.
func allKindsForKeys() []EngineKind {
	return append([]EngineKind{SequentialEngine, NativeParallel}, AllEngineKinds()...)
}

// TestCacheKeyProperties is a property test over CacheKeyForHash:
// canonically-equal configurations must collide (the seed is irrelevant
// under deterministic ties; MaxSquare 0 and its resolved effective cap
// are the same split), and differing engine kinds must never collide.
func TestCacheKeyProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kinds := allKindsForKeys()
	dims := []int{16, 32, 64, 128, 177, 256} // incl. a non-power-of-two
	for trial := 0; trial < 500; trial++ {
		w := dims[rng.Intn(len(dims))]
		h := dims[rng.Intn(len(dims))]
		hash := "h" // the image-content hash is an opaque prefix here
		cfg := Config{
			Threshold: rng.Intn(64),
			Tie:       []TiePolicy{SmallestIDTie, LargestIDTie, RandomTie}[rng.Intn(3)],
			Seed:      rng.Uint64(),
			MaxSquare: rng.Intn(3) - 1, // -1, 0, or 1… widened below
		}
		if cfg.MaxSquare == 1 {
			cfg.MaxSquare = 1 << (2 + rng.Intn(6)) // a positive power-of-two cap
		}
		kind := kinds[rng.Intn(len(kinds))]
		key := CacheKeyForHash(hash, w, h, cfg, kind)

		// Seed must be irrelevant exactly when ties are deterministic.
		reseeded := cfg
		reseeded.Seed = rng.Uint64()
		rkey := CacheKeyForHash(hash, w, h, reseeded, kind)
		if cfg.Tie != RandomTie && rkey != key {
			t.Fatalf("deterministic-tie keys diverge on seed: %q vs %q", key, rkey)
		}
		if cfg.Tie == RandomTie && reseeded.Seed != cfg.Seed && rkey == key {
			t.Fatalf("random-tie keys collide across seeds %d and %d: %q", cfg.Seed, reseeded.Seed, key)
		}

		// MaxSquare 0 and the effective cap it resolves to are the same
		// split and must share a key.
		if cfg.MaxSquare == 0 {
			resolved := cfg
			resolved.MaxSquare = quadsplit.EffectiveCap(quadsplit.Options{}, w, h)
			if CacheKeyForHash(hash, w, h, resolved, kind) != key {
				t.Fatalf("MaxSquare 0 and effective cap %d key apart on %dx%d", resolved.MaxSquare, w, h)
			}
		}

		// Engine kinds are cached separately (their reported timings
		// differ): same everything, different kind, different key.
		for _, other := range kinds {
			if other == kind {
				continue
			}
			if CacheKeyForHash(hash, w, h, cfg, other) == key {
				t.Fatalf("kinds %v and %v collide on key %q", kind, other, key)
			}
		}
	}
}

// TestEngineKindTextRoundTrip: MarshalText/UnmarshalText delegate to
// String/ParseEngineKind, so engine kinds survive JSON round trips by
// name and unknown values refuse to marshal.
func TestEngineKindTextRoundTrip(t *testing.T) {
	for _, k := range allKindsForKeys() {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + k.String() + `"`; string(data) != want {
			t.Fatalf("marshal %v = %s, want %s", k, data, want)
		}
		var back EngineKind
		if err := json.Unmarshal(data, &back); err != nil || back != k {
			t.Fatalf("round trip %v: %v, %v", k, back, err)
		}
	}
	if _, err := json.Marshal(EngineKind(99)); err == nil {
		t.Fatal("unknown engine kind marshalled")
	}
	var k EngineKind
	if err := json.Unmarshal([]byte(`"warp-drive"`), &k); err == nil {
		t.Fatal("unknown engine name unmarshalled")
	}
}

// TestTiePolicyTextRoundTrip: likewise for tie policies, including the
// case-insensitivity ParseTiePolicy promises.
func TestTiePolicyTextRoundTrip(t *testing.T) {
	for _, p := range []TiePolicy{SmallestIDTie, LargestIDTie, RandomTie} {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := `"` + p.String() + `"`; string(data) != want {
			t.Fatalf("marshal %v = %s, want %s", p, data, want)
		}
		var back TiePolicy
		if err := json.Unmarshal(data, &back); err != nil || back != p {
			t.Fatalf("round trip %v: %v, %v", p, back, err)
		}
	}
	var p TiePolicy
	if err := p.UnmarshalText([]byte("RANDOM")); err != nil || p != RandomTie {
		t.Fatalf("case-insensitive unmarshal: %v, %v", p, err)
	}
	if _, err := json.Marshal(TiePolicy(9)); err == nil {
		t.Fatal("unknown tie policy marshalled")
	}
}

// TestEventKindTextRoundTrip: stage event kinds travel by name on the
// wire.
func TestEventKindTextRoundTrip(t *testing.T) {
	for _, k := range []EventKind{EventSplitStart, EventSplitDone, EventGraphDone,
		EventMergeIteration, EventMergeDone} {
		data, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back EventKind
		if err := json.Unmarshal(data, &back); err != nil || back != k {
			t.Fatalf("round trip %v: %v, %v", k, back, err)
		}
	}
	if _, err := json.Marshal(EventKind(42)); err == nil {
		t.Fatal("unknown event kind marshalled")
	}
}
