package regiongrow

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// cancelKinds covers all four execution models: the sequential reference,
// data-parallel (CM-2 and CM-5 CMF share the code path), message-passing
// (both schemes), and the native shared-memory engine.
var cancelKinds = []EngineKind{
	SequentialEngine,
	CM2DataParallel8K,
	CM5LinearPermutation,
	CM5Async,
	NativeParallel,
}

// cancelImage is small enough to run every engine quickly but merges over
// several iterations under SmallestID (the serializing policy), so there
// is a real mid-merge window to cancel in.
func cancelImage() (*Image, Config) {
	return GeneratePaperImage(Image2Rects128), Config{Threshold: 10, Tie: SmallestIDTie}
}

// TestCancelBeforeStart: a context cancelled before the call returns
// ctx.Err() from every engine without computing anything.
func TestCancelBeforeStart(t *testing.T) {
	im, cfg := cancelImage()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, kind := range cancelKinds {
		s, err := New(kind)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := s.Segment(ctx, im, cfg)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", kind, err)
		}
		if seg != nil {
			t.Errorf("%v: returned a segmentation alongside the cancellation", kind)
		}
	}
}

// cancelAtObserver cancels the run the first time an event of the trigger
// kind is observed and counts trigger-kind events seen afterwards.
type cancelAtObserver struct {
	trigger EventKind
	cancel  context.CancelFunc
	fired   atomic.Bool
	after   atomic.Int64
}

func (o *cancelAtObserver) Observe(ev StageEvent) {
	if ev.Kind != o.trigger {
		return
	}
	if o.fired.CompareAndSwap(false, true) {
		o.cancel()
		return
	}
	o.after.Add(1)
}

// TestCancelMidSplit cancels at the split stage's first event and checks
// every engine aborts with ctx.Err() without reaching the merge stage.
func TestCancelMidSplit(t *testing.T) {
	im, cfg := cancelImage()
	for _, kind := range cancelKinds {
		t.Run(kind.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			obs := &cancelAtObserver{trigger: EventSplitStart, cancel: cancel}
			var merged atomic.Bool
			watch := ObserverFunc(func(ev StageEvent) {
				obs.Observe(ev)
				if ev.Kind == EventMergeIteration || ev.Kind == EventMergeDone {
					merged.Store(true)
				}
			})
			s, err := New(kind, WithObserver(watch))
			if err != nil {
				t.Fatal(err)
			}
			seg, err := s.Segment(ctx, im, cfg)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if seg != nil {
				t.Fatal("returned a segmentation alongside the cancellation")
			}
			if merged.Load() {
				t.Fatal("run cancelled at split start still reached the merge stage")
			}
		})
	}
}

// TestCancelMidMerge cancels inside the first merge iteration's event and
// checks every engine aborts with ctx.Err() within one further iteration:
// no second EventMergeIteration is ever emitted.
func TestCancelMidMerge(t *testing.T) {
	im, cfg := cancelImage()
	for _, kind := range cancelKinds {
		t.Run(kind.String(), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			obs := &cancelAtObserver{trigger: EventMergeIteration, cancel: cancel}
			s, err := New(kind, WithObserver(obs))
			if err != nil {
				t.Fatal(err)
			}
			seg, err := s.Segment(ctx, im, cfg)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if seg != nil {
				t.Fatal("returned a segmentation alongside the cancellation")
			}
			if n := obs.after.Load(); n != 0 {
				t.Fatalf("%d merge iterations ran after cancellation, want 0 (abort within one iteration)", n)
			}
		})
	}
}

// TestCancelLeaksNoGoroutines drives the two engines that spawn real
// goroutines (the native worker pool and the simulated message-passing
// cluster) through mid-merge cancellations and checks the goroutine count
// settles back to its baseline: cancelled workers and nodes all drain.
func TestCancelLeaksNoGoroutines(t *testing.T) {
	im, cfg := cancelImage()
	baseline := runtime.NumGoroutine()
	for _, kind := range []EngineKind{NativeParallel, CM5Async} {
		for i := 0; i < 3; i++ {
			ctx, cancel := context.WithCancel(context.Background())
			obs := &cancelAtObserver{trigger: EventMergeIteration, cancel: cancel}
			s, err := New(kind, WithObserver(obs))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Segment(ctx, im, cfg); !errors.Is(err, context.Canceled) {
				t.Fatalf("%v: err = %v, want context.Canceled", kind, err)
			}
			cancel()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d at baseline, %d after cancelled runs — engine goroutines leaked",
		baseline, runtime.NumGoroutine())
}

// TestCancelViaDeadline: a deadline that fires mid-run surfaces as
// context.DeadlineExceeded, the error servers map to 504.
func TestCancelViaDeadline(t *testing.T) {
	im, cfg := cancelImage()
	s, err := New(SequentialEngine)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.Segment(ctx, im, cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}
