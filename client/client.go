// Package client is the typed Go SDK for the regiongrowd segmentation
// service. It speaks the asynchronous job API — Submit enqueues a run,
// Stream follows its stage events live over SSE, Wait blocks until the
// terminal record, Cancel aborts it, and Batch fans a manifest out into
// per-item jobs — plus the synchronous compatibility path (Recoloured).
// The wire types in this package are the ones the server itself
// serializes, so SDK and service cannot drift.
//
// The package depends only on the standard library and the regiongrow
// facade. Every call takes a context; cancelling it abandons the HTTP
// exchange (and, server-side, a disconnected synchronous request — async
// jobs keep running until Cancel).
//
//	c, _ := client.New("http://localhost:8080")
//	job, _ := c.Submit(ctx, client.JobRequest{
//		PaperImage: "image3",
//		Engine:     regiongrow.NativeParallel,
//		Config:     regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1},
//	})
//	job, _ = c.Wait(ctx, job.ID)
//	fmt.Println(job.Result.FinalRegions)
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"regiongrow"
)

// Errors the SDK classifies out of HTTP statuses, for errors.Is.
var (
	// ErrNotFound reports an unknown (or already evicted) job ID.
	ErrNotFound = errors.New("client: job not found")
	// ErrBusy reports 429: the server's bounded job queue (or store) has
	// no free slot right now; retry after a moment.
	ErrBusy = errors.New("client: server busy")
	// ErrNoCluster reports a server running without a distributed
	// cluster: its /v1/cluster endpoints do not exist until regiongrowd is
	// started with -cluster.
	ErrNoCluster = errors.New("client: no cluster on this server")
	// ErrNoFleet reports a server that is not a fleet gateway: the
	// /v1/fleet endpoints exist only on regiongrow-gateway, not on a
	// plain regiongrowd backend.
	ErrNoFleet = errors.New("client: not a fleet gateway")
)

// Client talks to one regiongrowd instance (or one regiongrow-gateway,
// which serves the same job API). It is safe for concurrent use;
// construct with New.
type Client struct {
	base string
	hc   *http.Client
	// timeout bounds each non-streaming HTTP exchange; see
	// WithRequestTimeout.
	timeout time.Duration
	// busyRetries and maxBackoff drive the 429 retry loop; see
	// WithBusyRetry.
	busyRetries int
	maxBackoff  time.Duration
}

// Option configures a Client at construction time.
type Option func(*Client)

// WithHTTPClient substitutes the http.Client used for every exchange
// (timeouts, transports, tracing). The default is a client with no
// overall timeout, since Stream and Wait hold connections open for the
// length of a job; bound calls with their contexts instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithRequestTimeout bounds every non-streaming exchange — submission,
// poll, cancel, batch, cluster and fleet calls — to d per attempt,
// layered under whatever deadline the call's context already carries.
// Stream (and the SSE leg of Wait) is exempt: it intentionally holds its
// connection open for the life of the job. A non-positive d leaves
// exchanges unbounded, the prior behavior.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithBusyRetry retries an exchange answered 429 (ErrBusy — the server's
// bounded queue or job store is momentarily full) up to retries extra
// attempts, sleeping an exponentially doubling backoff that starts at
// 50ms and is capped at maxBackoff (non-positive selects 2s). The
// caller's context cancels the sleep. Only requests whose body can be
// replayed are retried; every request this package builds qualifies.
// The default remains zero retries: ErrBusy surfaces immediately.
func WithBusyRetry(retries int, maxBackoff time.Duration) Option {
	return func(c *Client) {
		c.busyRetries = max(retries, 0)
		if maxBackoff <= 0 {
			maxBackoff = 2 * time.Second
		}
		c.maxBackoff = maxBackoff
	}
}

// New builds a Client for the service at baseURL (scheme and host,
// e.g. "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: bad base URL %q (want http:// or https://)", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q has no host", baseURL)
	}
	c := &Client{base: strings.TrimRight(u.String(), "/"), hc: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// JobRequest describes one segmentation to submit. Exactly one of
// PaperImage (a server-side evaluation image by name) or Image (a raster
// uploaded as binary PGM) must be set. Config is sent verbatim — every
// field explicit on the wire — so the zero Config means threshold 0,
// smallest-id ties, seed 0, the N/8 square cap; it does not adopt the
// server's query-parameter defaults.
type JobRequest struct {
	PaperImage string
	Image      *regiongrow.Image
	Engine     regiongrow.EngineKind
	Config     regiongrow.Config
	// Labels asks the server to include the full label raster in the
	// job's Result.
	Labels bool
}

// configValues encodes the engine, config, and labels flag as query
// parameters — the part of a request shared by every endpoint.
func (r JobRequest) configValues() url.Values {
	v := url.Values{}
	v.Set("engine", r.Engine.String())
	v.Set("threshold", strconv.Itoa(r.Config.Threshold))
	v.Set("tie", r.Config.Tie.String())
	v.Set("seed", strconv.FormatUint(r.Config.Seed, 10))
	v.Set("maxsquare", strconv.Itoa(r.Config.MaxSquare))
	if r.Labels {
		v.Set("labels", "1")
	}
	return v
}

func (r JobRequest) values() (url.Values, error) {
	if (r.PaperImage == "") == (r.Image == nil) {
		return nil, errors.New("client: set exactly one of JobRequest.PaperImage and JobRequest.Image")
	}
	v := r.configValues()
	if r.PaperImage != "" {
		v.Set("image", r.PaperImage)
	}
	return v, nil
}

func (r JobRequest) body() (io.Reader, error) {
	if r.Image == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := regiongrow.WritePGM(&buf, r.Image); err != nil {
		return nil, fmt.Errorf("client: encoding upload: %w", err)
	}
	return &buf, nil
}

// do issues one request — retrying 429 responses per WithBusyRetry and
// bounding each non-streaming attempt per WithRequestTimeout — and
// returns the response after classifying non-2xx statuses into errors
// (wrapping ErrNotFound and ErrBusy where they apply). The caller owns
// the body on success.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	// SSE exchanges are recognizable by the Accept header Stream sets;
	// they stay open for the life of a job, so the per-request timeout
	// must not apply to them.
	streaming := req.Header.Get("Accept") == "text/event-stream"
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		resp, err := c.attempt(req, streaming)
		if err == nil {
			return resp, nil
		}
		// Only ErrBusy is transient by contract, and a request whose body
		// cannot be rebuilt cannot be replayed. (Bodyless requests and the
		// bytes.Buffer/bytes.Reader bodies this package builds always
		// carry GetBody.)
		if !errors.Is(err, ErrBusy) || attempt >= c.busyRetries ||
			(req.Body != nil && req.GetBody == nil) {
			return nil, err
		}
		d := min(backoff, c.maxBackoff)
		backoff *= 2
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d):
		}
		if req.GetBody != nil {
			body, gerr := req.GetBody()
			if gerr != nil {
				return nil, err
			}
			req.Body = body
		}
	}
}

// cancelBody ties an attempt's timeout cancel to its response body, so
// the deadline keeps governing the read and the context is released
// exactly when the caller closes the body.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// attempt runs one exchange, applying the per-request timeout to
// non-streaming requests.
func (c *Client) attempt(req *http.Request, streaming bool) (*http.Response, error) {
	hreq := req
	cancel := context.CancelFunc(nil)
	if c.timeout > 0 && !streaming {
		var ctx context.Context
		ctx, cancel = context.WithTimeout(req.Context(), c.timeout)
		hreq = req.Clone(ctx)
	}
	resp, err := c.hc.Do(hreq)
	if err != nil {
		if cancel != nil {
			cancel()
		}
		return nil, err
	}
	if cancel != nil {
		resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	detail := strings.TrimSpace(string(msg))
	switch resp.StatusCode {
	case http.StatusNotFound:
		return nil, fmt.Errorf("%w: %s", ErrNotFound, detail)
	case http.StatusTooManyRequests:
		return nil, fmt.Errorf("%w: %s", ErrBusy, detail)
	default:
		return nil, fmt.Errorf("client: %s: %s", resp.Status, detail)
	}
}

func (c *Client) decodeJob(resp *http.Response) (*Job, error) {
	defer resp.Body.Close()
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		return nil, fmt.Errorf("client: decoding job record: %w", err)
	}
	if j.APIVersion != APIVersion {
		return nil, fmt.Errorf("client: server speaks job API %q, this SDK %q", j.APIVersion, APIVersion)
	}
	return &j, nil
}

// Submit enqueues one segmentation job and returns its freshly minted
// record — state queued (or already done, when the result cache hits).
func (c *Client) Submit(ctx context.Context, req JobRequest) (*Job, error) {
	v, err := req.values()
	if err != nil {
		return nil, err
	}
	body, err := req.body()
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/jobs?"+v.Encode(), body)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(hreq)
	if err != nil {
		return nil, err
	}
	return c.decodeJob(resp)
}

// Get fetches a job's current record. Unknown or TTL-evicted IDs return
// an error wrapping ErrNotFound.
func (c *Client) Get(ctx context.Context, id string) (*Job, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(hreq)
	if err != nil {
		return nil, err
	}
	return c.decodeJob(resp)
}

// Cancel asks the server to abort a job: its compute is cancelled within
// one split/merge iteration (a queued job dies before computing at all).
// The returned record is a snapshot that may still read running — follow
// with Wait or Get for the terminal state. Cancelling a terminal job is
// a no-op.
func (c *Client) Cancel(ctx context.Context, id string) (*Job, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(hreq)
	if err != nil {
		return nil, err
	}
	return c.decodeJob(resp)
}

// Stream follows a job's stage events live over SSE, invoking fn (when
// non-nil) for each one — including a replay of events that fired before
// the call — and returns the terminal job record carried by the final
// done/failed/canceled event. Events arrive in engine emission order;
// observers written for local Segmenter sessions plug in directly:
//
//	job, err := c.Stream(ctx, id, tracker.Observe)
func (c *Client) Stream(ctx context.Context, id string, fn func(regiongrow.StageEvent)) (*Job, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Accept", "text/event-stream")
	resp, err := c.do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()

	br := bufio.NewReader(resp.Body)
	var name string
	var data bytes.Buffer
	dispatch := func() (*Job, error) {
		defer func() { name = ""; data.Reset() }()
		switch name {
		case "stage":
			var ev Event
			if err := json.Unmarshal(data.Bytes(), &ev); err != nil {
				return nil, fmt.Errorf("client: decoding stage event: %w", err)
			}
			if fn != nil {
				fn(ev.StageEvent())
			}
			return nil, nil
		case string(StateDone), string(StateFailed), string(StateCanceled):
			var j Job
			if err := json.Unmarshal(data.Bytes(), &j); err != nil {
				return nil, fmt.Errorf("client: decoding terminal %s event: %w", name, err)
			}
			// Enforce the same schema-version gate as decodeJob, so Wait
			// and Get agree on compatibility.
			if j.APIVersion != APIVersion {
				return nil, fmt.Errorf("client: server speaks job API %q, this SDK %q", j.APIVersion, APIVersion)
			}
			return &j, nil
		default:
			// Unknown event types are skipped, per the SSE contract.
			return nil, nil
		}
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("client: event stream for job %s ended without a terminal event", id)
			}
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			j, err := dispatch()
			if err != nil || j != nil {
				return j, err
			}
		case strings.HasPrefix(line, "event:"):
			name = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if data.Len() > 0 {
				data.WriteByte('\n') // multi-line data concatenates per SSE
			}
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id: and comment lines carry nothing we need.
		}
	}
}

// Wait blocks until the job reaches a terminal state and returns its
// final record. It prefers the SSE stream (no polling); if the stream
// breaks it falls back to polling Get until ctx ends.
func (c *Client) Wait(ctx context.Context, id string) (*Job, error) {
	j, err := c.Stream(ctx, id, nil)
	if err == nil {
		return j, nil
	}
	if ctx.Err() != nil || errors.Is(err, ErrNotFound) {
		return nil, err
	}
	for {
		j, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if j.State.Terminal() {
			return j, nil
		}
		select {
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Batch submits many paper-image jobs in one POST /v1/batch round trip
// and returns one BatchResult per request, in order — a job ID to Wait
// on, or the per-item error that kept it from being enqueued. Every
// request must name a PaperImage; raster uploads batch via BatchImages.
func (c *Client) Batch(ctx context.Context, reqs []JobRequest) ([]BatchResult, error) {
	if len(reqs) == 0 {
		return nil, errors.New("client: empty batch")
	}
	m := BatchManifest{Items: make([]BatchItem, len(reqs))}
	for i, r := range reqs {
		if r.PaperImage == "" {
			return nil, fmt.Errorf("client: batch item %d has no PaperImage (upload rasters with BatchImages)", i)
		}
		threshold, seed := r.Config.Threshold, r.Config.Seed
		m.Items[i] = BatchItem{
			Image:     r.PaperImage,
			Engine:    r.Engine.String(),
			Threshold: &threshold,
			Tie:       r.Config.Tie.String(),
			Seed:      &seed,
			MaxSquare: r.Config.MaxSquare,
			Labels:    r.Labels,
		}
	}
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	return c.decodeBatch(hreq)
}

// BatchImages submits a multipart set of PGM rasters as one batch, all
// sharing the engine, config, and labels flag of shared (whose PaperImage
// and Image fields are ignored). Results come back in part order.
func (c *Client) BatchImages(ctx context.Context, imgs []*regiongrow.Image, shared JobRequest) ([]BatchResult, error) {
	if len(imgs) == 0 {
		return nil, errors.New("client: empty batch")
	}
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for i, im := range imgs {
		part, err := mw.CreateFormFile(fmt.Sprintf("pgm%d", i), fmt.Sprintf("pgm%d.pgm", i))
		if err != nil {
			return nil, err
		}
		if err := regiongrow.WritePGM(part, im); err != nil {
			return nil, fmt.Errorf("client: encoding batch part %d: %w", i, err)
		}
	}
	if err := mw.Close(); err != nil {
		return nil, err
	}
	// Config travels in the query, rasters in the parts.
	v := shared.configValues()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/batch?"+v.Encode(), &buf)
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", mw.FormDataContentType())
	return c.decodeBatch(hreq)
}

func (c *Client) decodeBatch(hreq *http.Request) ([]BatchResult, error) {
	resp, err := c.do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, fmt.Errorf("client: decoding batch response: %w", err)
	}
	return br.Jobs, nil
}

// Cluster fetches the distributed cluster's membership, each member
// freshly health-probed by the server. Servers running without a cluster
// answer with an error wrapping ErrNoCluster.
func (c *Client) Cluster(ctx context.Context) (*ClusterStatus, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/cluster", nil)
	if err != nil {
		return nil, err
	}
	var st ClusterStatus
	if err := c.decodeCluster(hreq, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// ClusterJoin adds a worker address to the server's distributed cluster,
// effective at its next distributed job — how a scaled-up worker enters a
// running regiongrowd without a restart of either side.
func (c *Client) ClusterJoin(ctx context.Context, addr string) (*ClusterUpdate, error) {
	return c.clusterMutate(ctx, "join", addr)
}

// ClusterLeave removes a worker address from the server's distributed
// cluster, effective at its next distributed job; jobs already running
// against the worker are unaffected. Removing the last member is refused
// by the server.
func (c *Client) ClusterLeave(ctx context.Context, addr string) (*ClusterUpdate, error) {
	return c.clusterMutate(ctx, "leave", addr)
}

func (c *Client) clusterMutate(ctx context.Context, verb, addr string) (*ClusterUpdate, error) {
	v := url.Values{}
	v.Set("addr", addr)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/cluster/"+verb+"?"+v.Encode(), nil)
	if err != nil {
		return nil, err
	}
	var upd ClusterUpdate
	if err := c.decodeCluster(hreq, &upd); err != nil {
		return nil, err
	}
	return &upd, nil
}

// decodeCluster runs one cluster-endpoint exchange, translating the 404 a
// cluster-less server answers with into ErrNoCluster.
func (c *Client) decodeCluster(hreq *http.Request, into any) error {
	resp, err := c.do(hreq)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return fmt.Errorf("%w (start regiongrowd with -cluster host:port,...)", ErrNoCluster)
		}
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("client: decoding cluster response: %w", err)
	}
	return nil
}

// Fleet fetches a gateway's backend membership: every regiongrowd
// instance behind it, with health, instance ID, and ring presence. A
// plain regiongrowd answers 404, surfaced as an error wrapping
// ErrNoFleet.
func (c *Client) Fleet(ctx context.Context) (*FleetStatus, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/fleet", nil)
	if err != nil {
		return nil, err
	}
	var st FleetStatus
	if err := c.decodeFleet(hreq, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// FleetJoin adds a backend address to a gateway's fleet. The backend is
// probed immediately; one that is not up yet still joins as unhealthy
// and is admitted to the routing ring by the health loop once it answers
// probes — so orchestration can register a backend before starting it.
func (c *Client) FleetJoin(ctx context.Context, addr string) (*FleetUpdate, error) {
	return c.fleetMutate(ctx, "join", addr)
}

// FleetLeave removes a backend address from a gateway's fleet. The keys
// it owned re-route to the surviving backends (bounded movement, by
// consistent hashing); job records it holds become unreachable through
// the gateway. Removing the last backend is refused.
func (c *Client) FleetLeave(ctx context.Context, addr string) (*FleetUpdate, error) {
	return c.fleetMutate(ctx, "leave", addr)
}

func (c *Client) fleetMutate(ctx context.Context, verb, addr string) (*FleetUpdate, error) {
	v := url.Values{}
	v.Set("addr", addr)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/fleet/"+verb+"?"+v.Encode(), nil)
	if err != nil {
		return nil, err
	}
	var upd FleetUpdate
	if err := c.decodeFleet(hreq, &upd); err != nil {
		return nil, err
	}
	return &upd, nil
}

// decodeFleet runs one fleet-endpoint exchange, translating the 404 a
// non-gateway answers with into ErrNoFleet.
func (c *Client) decodeFleet(hreq *http.Request, into any) error {
	resp, err := c.do(hreq)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return fmt.Errorf("%w (fleet endpoints are served by regiongrow-gateway)", ErrNoFleet)
		}
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		return fmt.Errorf("client: decoding fleet response: %w", err)
	}
	return nil
}

// Recoloured segments via the synchronous /v1/segment compatibility path
// and returns the server-rendered recoloured raster (every region painted
// with the midpoint of its intensity interval) — what a CLI writes for
// its -o flag. The synchronous path shares the job machinery and result
// cache, so a Recoloured call after Wait on the same request is a cache
// hit.
func (c *Client) Recoloured(ctx context.Context, req JobRequest) (*regiongrow.Image, error) {
	v, err := req.values()
	if err != nil {
		return nil, err
	}
	v.Set("format", "pgm")
	body, err := req.body()
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/segment?"+v.Encode(), body)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	im, err := regiongrow.ReadPGM(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: decoding recoloured PGM: %w", err)
	}
	return im, nil
}
