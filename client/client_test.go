package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"regiongrow"
	"regiongrow/client"
	"regiongrow/internal/server"
)

func newService(t *testing.T, opts server.Options) *client.Client {
	t.Helper()
	svc := server.New(opts)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestWaitByteIdenticalToLocalSegment is the SDK acceptance check:
// client.Wait results are byte-identical to local Segment for all six
// paper images.
func TestWaitByteIdenticalToLocalSegment(t *testing.T) {
	c := newService(t, server.Options{})
	ctx := context.Background()
	cfg := regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1}
	for _, id := range regiongrow.AllPaperImages() {
		im := regiongrow.GeneratePaperImage(id)
		want, err := regiongrow.Segment(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := c.Submit(ctx, client.JobRequest{
			PaperImage: id.ShortName(), Engine: regiongrow.SequentialEngine,
			Config: cfg, Labels: true,
		})
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		job, err := c.Wait(ctx, sub.ID)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if job.State != client.StateDone {
			t.Fatalf("%v: state %s (%s)", id, job.State, job.Error)
		}
		if !reflect.DeepEqual(job.Result.Labels, want.Labels) {
			t.Fatalf("%v: remote labels differ from local Segment", id)
		}
		if job.Result.FinalRegions != want.FinalRegions ||
			job.Result.MergeIterations != want.MergeIterations ||
			job.Result.SplitIterations != want.SplitIterations ||
			job.Result.SquaresAfterSplit != want.SquaresAfterSplit {
			t.Fatalf("%v: remote counters diverge: %+v", id, job.Result)
		}
	}
}

// TestStreamDeliversTypedEvents: streamed events convert back to the
// exact facade StageEvents a local observer sees.
func TestStreamDeliversTypedEvents(t *testing.T) {
	c := newService(t, server.Options{})
	ctx := context.Background()
	cfg := regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1}

	var mu sync.Mutex
	var local []regiongrow.StageEvent
	s, err := regiongrow.New(regiongrow.SequentialEngine,
		regiongrow.WithObserver(regiongrow.ObserverFunc(func(ev regiongrow.StageEvent) {
			mu.Lock()
			local = append(local, ev)
			mu.Unlock()
		})))
	if err != nil {
		t.Fatal(err)
	}
	im := regiongrow.GeneratePaperImage(regiongrow.Image2Rects128)
	if _, err := s.Segment(ctx, im, cfg); err != nil {
		t.Fatal(err)
	}

	sub, err := c.Submit(ctx, client.JobRequest{Image: im, Engine: regiongrow.SequentialEngine, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []regiongrow.StageEvent
	job, err := c.Stream(ctx, sub.ID, func(ev regiongrow.StageEvent) { streamed = append(streamed, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.StateDone {
		t.Fatalf("state %s", job.State)
	}
	if !reflect.DeepEqual(streamed, local) {
		t.Fatalf("streamed events diverge:\n got %+v\nwant %+v", streamed, local)
	}
}

// TestCancelSettlesCanceled: Cancel aborts a slow simulated run and Wait
// reports the canceled record.
func TestCancelSettlesCanceled(t *testing.T) {
	c := newService(t, server.Options{})
	ctx := context.Background()
	// The simulated CM-2 run on a 256px image is slow enough to cancel
	// mid-flight; if it ever finishes first the test still accepts done.
	sub, err := c.Submit(ctx, client.JobRequest{
		PaperImage: "image6", Engine: regiongrow.CM2DataParallel8K,
		Config: regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	job, err := c.Wait(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.StateCanceled && job.State != client.StateDone {
		t.Fatalf("state %s, want canceled (or done if the race was lost)", job.State)
	}
}

// TestBatchRoundTrip: a manifest batch returns waitable IDs for every
// item.
func TestBatchRoundTrip(t *testing.T) {
	c := newService(t, server.Options{})
	ctx := context.Background()
	cfg := regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1}
	reqs := []client.JobRequest{
		{PaperImage: "image1", Engine: regiongrow.SequentialEngine, Config: cfg},
		{PaperImage: "image2", Engine: regiongrow.SequentialEngine, Config: cfg},
	}
	results, err := c.Batch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(results), len(reqs))
	}
	for i, r := range results {
		if r.Index != i || r.ID == "" || r.Error != "" {
			t.Fatalf("result %d: %+v", i, r)
		}
		job, err := c.Wait(ctx, r.ID)
		if err != nil {
			t.Fatal(err)
		}
		if job.State != client.StateDone {
			t.Fatalf("item %d: state %s (%s)", i, job.State, job.Error)
		}
	}
}

// TestRecolouredMatchesLocal: the synchronous PGM path through the SDK
// equals the library's Recolour, pixel for pixel.
func TestRecolouredMatchesLocal(t *testing.T) {
	c := newService(t, server.Options{})
	ctx := context.Background()
	cfg := regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1}
	im := regiongrow.GeneratePaperImage(regiongrow.Image3Circles128)

	got, err := c.Recoloured(ctx, client.JobRequest{Image: im, Engine: regiongrow.SequentialEngine, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	seg, err := regiongrow.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := regiongrow.Recolour(seg, im)
	if got.W != want.W || got.H != want.H || !bytes.Equal(got.Pix, want.Pix) {
		t.Fatal("recoloured raster differs from local Recolour")
	}
}

// TestNotFoundAndBusyClassification: HTTP statuses map onto the SDK's
// sentinel errors.
func TestNotFoundAndBusyClassification(t *testing.T) {
	c := newService(t, server.Options{})
	ctx := context.Background()
	if _, err := c.Get(ctx, "job-nope"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("Get(unknown) = %v, want ErrNotFound", err)
	}
	if _, err := c.Wait(ctx, "job-nope"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("Wait(unknown) = %v, want ErrNotFound", err)
	}
}

// TestJobRequestValidation: requests must pick exactly one image source.
func TestJobRequestValidation(t *testing.T) {
	c := newService(t, server.Options{})
	ctx := context.Background()
	if _, err := c.Submit(ctx, client.JobRequest{}); err == nil {
		t.Fatal("empty request accepted")
	}
	im := regiongrow.GeneratePaperImage(regiongrow.Image1NestedRects128)
	if _, err := c.Submit(ctx, client.JobRequest{PaperImage: "image1", Image: im}); err == nil {
		t.Fatal("double image source accepted")
	}
	if _, err := client.New("not-a-url"); err == nil {
		t.Fatal("bad base URL accepted")
	}
}
