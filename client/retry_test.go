package client_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"regiongrow"
	"regiongrow/client"
)

// stubJob answers any request with a minimal valid queued job record.
func stubJob(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"api_version":%q,"id":"job-stub-0011223344556677","state":"queued",`+
		`"engine":"sequential","image":{"width":1,"height":1,"sha256":"x"},`+
		`"config":{"threshold":10,"tie":"random","seed":1,"max_square":0},`+
		`"progress":{"stage":"queued"},"created_at":"2026-01-01T00:00:00Z"}`, client.APIVersion)
}

// TestBusyRetrySucceedsAfterBackoff: a server that answers 429 twice then
// 202 is retried transparently under WithBusyRetry, including replaying
// the PGM upload body on each attempt.
func TestBusyRetrySucceedsAfterBackoff(t *testing.T) {
	var calls, lastBody atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		lastBody.Store(int64(len(body)))
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "job queue full, retry later", http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		stubJob(w)
	}))
	defer ts.Close()

	c, err := client.New(ts.URL, client.WithBusyRetry(3, 200*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	im := regiongrow.GeneratePaperImage(regiongrow.Image1NestedRects128)
	job, err := c.Submit(context.Background(), client.JobRequest{Image: im, Engine: regiongrow.SequentialEngine})
	if err != nil {
		t.Fatalf("Submit with retries: %v", err)
	}
	if job.State != client.StateQueued {
		t.Fatalf("state %s", job.State)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	// The third attempt must have carried the full upload again: a
	// non-replayed body would arrive empty.
	if lastBody.Load() == 0 {
		t.Fatal("retried attempt arrived with an empty body")
	}
}

// TestBusyRetryExhaustsToErrBusy: a persistently busy server surfaces
// ErrBusy after the configured attempts, not an unbounded loop.
func TestBusyRetryExhaustsToErrBusy(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "job queue full, retry later", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c, err := client.New(ts.URL, client.WithBusyRetry(2, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Get(context.Background(), "job-x-0011223344556677")
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
}

// TestBusyRetryRespectsContext: cancelling the call's context during the
// backoff sleep ends the retry loop promptly.
func TestBusyRetryRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c, err := client.New(ts.URL, client.WithBusyRetry(100, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Get(ctx, "job-x-0011223344556677")
	if err == nil {
		t.Fatal("expected an error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop ignored context for %v", elapsed)
	}
}

// TestRequestTimeoutBoundsSlowExchange: WithRequestTimeout fails a
// non-streaming call against a stalled server, without the caller's
// context carrying a deadline.
func TestRequestTimeoutBoundsSlowExchange(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer ts.Close()

	c, err := client.New(ts.URL, client.WithRequestTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Get(context.Background(), "job-x-0011223344556677")
	if err == nil {
		t.Fatal("expected a timeout error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline error", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v to fire", elapsed)
	}
}

// TestRequestTimeoutExemptsStreaming: an SSE stream that takes longer
// than the per-request timeout still completes — Stream holds its
// connection for the life of the job by contract.
func TestRequestTimeoutExemptsStreaming(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		fl.Flush()
		time.Sleep(150 * time.Millisecond) // well past the 20ms timeout
		fmt.Fprint(w, "id: 0\nevent: done\ndata: ")
		stubJob(noopFlusher{w})
		fmt.Fprint(w, "\n\n")
		fl.Flush()
	}))
	defer ts.Close()

	c, err := client.New(ts.URL, client.WithRequestTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.Stream(context.Background(), "job-stub-0011223344556677", nil)
	if err != nil {
		t.Fatalf("Stream under WithRequestTimeout: %v", err)
	}
	if job.ID != "job-stub-0011223344556677" {
		t.Fatalf("job %+v", job)
	}
}

// noopFlusher lets stubJob write a record inline into an SSE data field
// without the JSON encoder's trailing newline breaking the frame.
type noopFlusher struct{ w http.ResponseWriter }

func (n noopFlusher) Header() http.Header         { return n.w.Header() }
func (n noopFlusher) WriteHeader(int)             {}
func (n noopFlusher) Write(b []byte) (int, error) { return n.w.Write(b) }
