package client

import (
	"time"

	"regiongrow"
)

// APIVersion is the job-record schema version this package speaks; every
// Job record carries it so clients can detect incompatible servers.
const APIVersion = "v1"

// JobState names one lifecycle state of an asynchronous segmentation job.
// States advance queued → running → one of the three terminal states;
// cache hits jump straight from queued to done without ever running.
type JobState string

// The job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final: a terminal job's record
// never changes again.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is the versioned wire record of one segmentation job — the JSON
// document POST /v1/jobs and GET /v1/jobs/{id} answer with, and the data
// of the terminal SSE event on GET /v1/jobs/{id}/events. The server
// serializes this exact struct, so the SDK and the service can never
// drift apart.
type Job struct {
	APIVersion string                `json:"api_version"`
	ID         string                `json:"id"`
	State      JobState              `json:"state"`
	Engine     regiongrow.EngineKind `json:"engine"`
	// Cache is "hit" when the job was answered from the result cache
	// without computing, "miss" otherwise.
	Cache    string     `json:"cache,omitempty"`
	Image    ImageMeta  `json:"image"`
	Config   ConfigMeta `json:"config"`
	Progress Progress   `json:"progress"`

	CreatedAt time.Time `json:"created_at"`
	// StartedAt is set when compute begins (first stage event) and
	// FinishedAt when the job reaches a terminal state.
	StartedAt  time.Time `json:"started_at,omitzero"`
	FinishedAt time.Time `json:"finished_at,omitzero"`

	// Error describes why a failed or canceled job ended; empty on done.
	Error string `json:"error,omitempty"`
	// Result is set once State is done.
	Result *Result `json:"result,omitempty"`
}

// ImageMeta echoes the segmented image: its paper-image name when it was
// selected by name, and always its dimensions and content hash.
type ImageMeta struct {
	Name   string `json:"name,omitempty"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	SHA256 string `json:"sha256"`
}

// ConfigMeta echoes the effective segmentation parameters. Tie round-trips
// by name via its TextMarshaler.
type ConfigMeta struct {
	Threshold int                  `json:"threshold"`
	Tie       regiongrow.TiePolicy `json:"tie"`
	Seed      uint64               `json:"seed"`
	MaxSquare int                  `json:"max_square"`
}

// Progress summarises how far a job's compute has got, fed by the typed
// stage observers every engine emits. Stage is "queued", "split",
// "graph", "merge", or "done"; the counters fill in as their stages
// complete, and Merges accumulates over merge iterations.
type Progress struct {
	Stage           string `json:"stage"`
	SplitIterations int    `json:"split_iterations,omitempty"`
	Squares         int    `json:"squares,omitempty"`
	MergeIteration  int    `json:"merge_iteration,omitempty"`
	Merges          int    `json:"merges,omitempty"`
}

// Result carries a completed segmentation on the wire: the counters of
// the paper's tables, wall (and, for simulated engines, machine-model)
// stage times, per-region statistics, and — when the job was submitted
// with labels — the full label raster.
type Result struct {
	FinalRegions      int                     `json:"final_regions"`
	SplitIterations   int                     `json:"split_iterations"`
	MergeIterations   int                     `json:"merge_iterations"`
	SquaresAfterSplit int                     `json:"squares_after_split"`
	SplitWallMs       float64                 `json:"split_wall_ms"`
	MergeWallMs       float64                 `json:"merge_wall_ms"`
	SplitSimSecs      float64                 `json:"split_sim_s,omitempty"`
	MergeSimSecs      float64                 `json:"merge_sim_s,omitempty"`
	Regions           []regiongrow.RegionStat `json:"regions"`
	Labels            []int32                 `json:"labels,omitempty"`
}

// Event mirrors regiongrow.StageEvent on the wire: one typed stage event
// of a running job, streamed as an `event: stage` SSE frame. Kind
// round-trips by name ("split-start", "merge-iteration", …) via its
// TextMarshaler.
type Event struct {
	Kind       regiongrow.EventKind `json:"kind"`
	Iteration  int                  `json:"iteration,omitempty"`
	Merges     int                  `json:"merges,omitempty"`
	Iterations int                  `json:"iterations,omitempty"`
	Squares    int                  `json:"squares,omitempty"`
	Regions    int                  `json:"regions,omitempty"`
}

// WireEvent converts a facade stage event for transport.
func WireEvent(ev regiongrow.StageEvent) Event {
	return Event{
		Kind:       ev.Kind,
		Iteration:  ev.Iteration,
		Merges:     ev.Merges,
		Iterations: ev.Iterations,
		Squares:    ev.Squares,
		Regions:    ev.Regions,
	}
}

// StageEvent converts back to the facade type, so observers written
// against local Segmenter sessions work unchanged on streamed events.
func (e Event) StageEvent() regiongrow.StageEvent {
	return regiongrow.StageEvent{
		Kind:       e.Kind,
		Iteration:  e.Iteration,
		Merges:     e.Merges,
		Iterations: e.Iterations,
		Squares:    e.Squares,
		Regions:    e.Regions,
	}
}

// ClusterMember is one distributed-cluster worker: its listen address and
// the outcome of the health probe GET /v1/cluster ran for it (a
// dial+ping+pong round trip).
type ClusterMember struct {
	Addr    string `json:"addr"`
	Healthy bool   `json:"healthy"`
}

// ClusterStatus answers GET /v1/cluster: the cluster membership in
// banding order, each member freshly health-probed.
type ClusterStatus struct {
	Engine  string          `json:"engine"` // always "dist"
	Workers int             `json:"workers"`
	Members []ClusterMember `json:"members"`
}

// ClusterUpdate answers the POST /v1/cluster/join and /v1/cluster/leave
// mutations: whether the membership changed (false for a join of a
// present address or a leave of an absent one) and the resulting member
// list. Changes take effect at the server's next distributed job; no
// restart is involved.
type ClusterUpdate struct {
	Changed bool     `json:"changed"`
	Members []string `json:"members"`
}

// FleetMember is one regiongrowd backend behind a gateway: its address,
// the instance ID learned from its /v1/stats (empty until the first
// successful probe), whether it passed its latest health probe, and
// whether it currently sits in the routing ring. A member can be out of
// the ring (ejected after consecutive probe failures, or joined before
// its process came up) while remaining in the fleet — the health loop
// readmits it as soon as it answers again.
type FleetMember struct {
	Addr     string `json:"addr"`
	Instance string `json:"instance,omitempty"`
	Healthy  bool   `json:"healthy"`
	InRing   bool   `json:"in_ring"`
	// Error is the last probe failure, kept while the member is
	// unhealthy.
	Error string `json:"error,omitempty"`
}

// FleetStatus answers GET /v1/fleet: the gateway's backend membership in
// address order.
type FleetStatus struct {
	Backends int           `json:"backends"`
	Healthy  int           `json:"healthy"`
	Members  []FleetMember `json:"members"`
}

// FleetUpdate answers the POST /v1/fleet/join and /v1/fleet/leave
// mutations: whether the membership changed (false for a join of a
// present address or a leave of an absent one) and the resulting member
// list, effective immediately for routing.
type FleetUpdate struct {
	Changed bool          `json:"changed"`
	Members []FleetMember `json:"members"`
}

// BatchManifest is the JSON body of POST /v1/batch: N paper-image/config
// pairs fanned out as one job each.
type BatchManifest struct {
	Items []BatchItem `json:"items"`
}

// BatchItem describes one batch entry. Omitted fields adopt the same
// defaults as the /v1/jobs query parameters: engine sequential,
// threshold 10, tie random, seed 1, maxsquare 0 (the paper's N/8 rule).
// Engine and Tie are names as printed by their String methods.
type BatchItem struct {
	// Image names one of the paper's evaluation images ("image1" …
	// "image6"); required in a JSON manifest. Multipart batches carry
	// PGM rasters instead and leave manifests out entirely.
	Image     string  `json:"image"`
	Engine    string  `json:"engine,omitempty"`
	Threshold *int    `json:"threshold,omitempty"`
	Tie       string  `json:"tie,omitempty"`
	Seed      *uint64 `json:"seed,omitempty"`
	MaxSquare int     `json:"maxsquare,omitempty"`
	Labels    bool    `json:"labels,omitempty"`
}

// BatchResponse answers POST /v1/batch: one entry per submitted item, in
// manifest (or multipart part) order.
type BatchResponse struct {
	Jobs []BatchResult `json:"jobs"`
}

// BatchResult is one batch item's outcome: the ID of its enqueued job, or
// the error that kept it from being enqueued (bad parameters, full
// queue). Items fail independently — one bad item never voids the rest.
type BatchResult struct {
	Index int    `json:"index"`
	ID    string `json:"id,omitempty"`
	Error string `json:"error,omitempty"`
}
