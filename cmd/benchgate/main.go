// Command benchgate compares two `go test -bench` outputs and fails on
// performance regressions — the repo's CI perf gate.
//
// Usage:
//
//	benchgate -baseline bench_baseline.txt -current current.txt
//	          [-maxtime 1.25] [-maxallocs 1.10] [-json BENCH_5.json]
//
// Both inputs are raw `go test -bench . -count=N -benchmem` output. For
// every benchmark present in both files, benchgate takes the median
// ns/op and allocs/op across the repetitions (median-of-5 is what the CI
// job runs — robust to one noisy sample, the same idea benchstat's
// summaries are built on) and computes current/baseline ratios. The gate
// fails (exit 1) when any time ratio exceeds -maxtime (default 1.25,
// i.e. >25% slower) or any allocs ratio exceeds -maxallocs (default
// 1.10). Benchmarks present on only one side are reported but do not
// fail the gate, so adding or retiring benchmarks does not require a
// lockstep baseline refresh.
//
// With -json, a machine-readable report (per-benchmark medians, ratios,
// verdicts, and the raw current output) is written — CI uploads it as
// the BENCH_<pr>.json perf-trajectory artifact.
//
// Baseline and current must be measured at the same GOMAXPROCS:
// benchmark names carry a -GOMAXPROCS suffix on multi-proc runs, so a
// mismatch yields zero overlapping names (benchgate then fails loudly
// rather than passing vacuously). The CI job pins GOMAXPROCS=1 to match
// the committed baseline. Refresh it with:
//
//	GOMAXPROCS=1 go test -run '^$' -bench 'SegmenterReuse$|NativeVsSequential$|Recolour$|SegmentStream$' \
//	    -benchtime 0.3s -count=5 -benchmem . > bench_baseline.txt
//	GOMAXPROCS=1 go test -run '^$' -bench 'ServeThroughput$' \
//	    -benchtime 0.3s -count=5 -benchmem ./internal/server >> bench_baseline.txt
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one parsed benchmark line.
type sample struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// parseBench extracts benchmark samples from `go test -bench` output,
// keyed by benchmark name (including the -GOMAXPROCS suffix, so runs on
// different processor counts never compare against each other).
func parseBench(text string) map[string][]sample {
	out := make(map[string][]sample)
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		var s sample
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = v
				ok = true
			case "allocs/op":
				s.allocsPerOp = v
				s.hasAllocs = true
			}
		}
		if ok {
			out[fields[0]] = append(out[fields[0]], s)
		}
	}
	return out
}

// median returns the median of vs (mean of the middle pair for even
// counts). vs must be non-empty.
func median(vs []float64) float64 {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// medians reduces samples to (median ns/op, median allocs/op, has-allocs).
func medians(ss []sample) (ns, allocs float64, hasAllocs bool) {
	nsv := make([]float64, 0, len(ss))
	av := make([]float64, 0, len(ss))
	for _, s := range ss {
		nsv = append(nsv, s.nsPerOp)
		if s.hasAllocs {
			av = append(av, s.allocsPerOp)
		}
	}
	ns = median(nsv)
	if len(av) > 0 {
		allocs = median(av)
		hasAllocs = true
	}
	return ns, allocs, hasAllocs
}

// Result is one benchmark's comparison in the JSON report.
type Result struct {
	Name           string  `json:"name"`
	BaselineNsOp   float64 `json:"baseline_ns_op"`
	CurrentNsOp    float64 `json:"current_ns_op"`
	TimeRatio      float64 `json:"time_ratio"`
	BaselineAllocs float64 `json:"baseline_allocs_op,omitempty"`
	CurrentAllocs  float64 `json:"current_allocs_op,omitempty"`
	AllocRatio     float64 `json:"alloc_ratio,omitempty"`
	// Status is "ok", "time-regression", "alloc-regression", or both
	// joined with "+".
	Status string `json:"status"`
}

// Report is the JSON document -json emits (the BENCH_<pr>.json artifact).
type Report struct {
	BaselineFile string   `json:"baseline_file"`
	MaxTimeRatio float64  `json:"max_time_ratio"`
	MaxAllocs    float64  `json:"max_alloc_ratio"`
	Pass         bool     `json:"pass"`
	Results      []Result `json:"results"`
	OnlyBaseline []string `json:"only_in_baseline,omitempty"`
	OnlyCurrent  []string `json:"only_in_current,omitempty"`
	RawCurrent   string   `json:"raw_current"`
}

// gate compares baseline and current bench text under the thresholds and
// returns the report.
func gate(baselineText, currentText, baselineFile string, maxTime, maxAllocs float64) Report {
	base := parseBench(baselineText)
	cur := parseBench(currentText)
	rep := Report{
		BaselineFile: baselineFile,
		MaxTimeRatio: maxTime,
		MaxAllocs:    maxAllocs,
		Pass:         true,
		RawCurrent:   currentText,
	}
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cs, ok := cur[name]
		if !ok {
			rep.OnlyBaseline = append(rep.OnlyBaseline, name)
			continue
		}
		bNs, bAllocs, bHas := medians(base[name])
		cNs, cAllocs, cHas := medians(cs)
		r := Result{
			Name:         name,
			BaselineNsOp: bNs,
			CurrentNsOp:  cNs,
			TimeRatio:    ratio(cNs, bNs),
			Status:       "ok",
		}
		var bad []string
		if r.TimeRatio > maxTime {
			bad = append(bad, "time-regression")
		}
		if bHas && cHas {
			r.BaselineAllocs = bAllocs
			r.CurrentAllocs = cAllocs
			r.AllocRatio = ratio(cAllocs, bAllocs)
			if r.AllocRatio > maxAllocs {
				bad = append(bad, "alloc-regression")
			}
		}
		if len(bad) > 0 {
			r.Status = strings.Join(bad, "+")
			rep.Pass = false
		}
		rep.Results = append(rep.Results, r)
	}
	for name := range cur {
		if _, ok := base[name]; !ok {
			rep.OnlyCurrent = append(rep.OnlyCurrent, name)
		}
	}
	sort.Strings(rep.OnlyCurrent)
	return rep
}

// ratio divides current by baseline, treating a zero baseline as parity —
// a 0 ns/op or 0 allocs/op baseline carries no signal to gate on.
func ratio(cur, base float64) float64 {
	if base == 0 {
		return 1
	}
	return cur / base
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	baselinePath := flag.String("baseline", "bench_baseline.txt", "committed baseline `go test -bench` output")
	currentPath := flag.String("current", "", "freshly measured `go test -bench` output (required)")
	maxTime := flag.Float64("maxtime", 1.25, "maximum allowed current/baseline ns/op ratio")
	maxAllocs := flag.Float64("maxallocs", 1.10, "maximum allowed current/baseline allocs/op ratio")
	jsonPath := flag.String("json", "", "write the machine-readable report here (the BENCH_*.json artifact)")
	flag.Parse()
	if *currentPath == "" || flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: benchgate -baseline bench_baseline.txt -current current.txt [-maxtime 1.25] [-maxallocs 1.10] [-json BENCH_5.json]")
		os.Exit(2)
	}
	baseText, err := os.ReadFile(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	curText, err := os.ReadFile(*currentPath)
	if err != nil {
		log.Fatal(err)
	}
	rep := gate(string(baseText), string(curText), *baselinePath, *maxTime, *maxAllocs)
	if len(rep.Results) == 0 {
		log.Fatal("no benchmark appears in both baseline and current output (were they measured at the same GOMAXPROCS? names differ by the -N suffix)")
	}

	for _, r := range rep.Results {
		line := fmt.Sprintf("%-50s time %9.0f -> %9.0f ns/op (x%.3f)", r.Name, r.BaselineNsOp, r.CurrentNsOp, r.TimeRatio)
		if r.AllocRatio != 0 {
			line += fmt.Sprintf("   allocs %7.0f -> %7.0f (x%.3f)", r.BaselineAllocs, r.CurrentAllocs, r.AllocRatio)
		}
		fmt.Printf("%s   [%s]\n", line, r.Status)
	}
	for _, name := range rep.OnlyBaseline {
		fmt.Printf("%-50s only in baseline (not run)\n", name)
	}
	for _, name := range rep.OnlyCurrent {
		fmt.Printf("%-50s new (no baseline yet)\n", name)
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if !rep.Pass {
		log.Fatalf("FAIL: regression beyond x%.2f time or x%.2f allocs", *maxTime, *maxAllocs)
	}
	fmt.Printf("PASS: %d benchmarks within x%.2f time / x%.2f allocs of baseline\n", len(rep.Results), *maxTime, *maxAllocs)
}
