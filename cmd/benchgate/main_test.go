package main

import (
	"strings"
	"testing"
)

const baselineText = `
goos: linux
BenchmarkSegmenterReuse-2    100    1000000 ns/op    50000 B/op    2300 allocs/op
BenchmarkSegmenterReuse-2    100    1100000 ns/op    50000 B/op    2310 allocs/op
BenchmarkSegmenterReuse-2    100    1050000 ns/op    50000 B/op    2305 allocs/op
BenchmarkSegmenterReuse-2    100    1020000 ns/op    50000 B/op    2302 allocs/op
BenchmarkSegmenterReuse-2    100    1080000 ns/op    50000 B/op    2308 allocs/op
BenchmarkRecolour/image6-2   500     109000 ns/op    66000 B/op       2 allocs/op
PASS
`

// TestGatePassesOnParity: identical measurements pass.
func TestGatePassesOnParity(t *testing.T) {
	rep := gate(baselineText, baselineText, "b.txt", 1.25, 1.10)
	if !rep.Pass {
		t.Fatalf("parity failed the gate: %+v", rep.Results)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("compared %d benchmarks, want 2", len(rep.Results))
	}
}

// TestGateFailsOnInjectedTimeRegression: a >25% median time/op slowdown
// fails the gate — the acceptance check for the CI bench-gate job,
// verified here without waiting on real benchmark noise.
func TestGateFailsOnInjectedTimeRegression(t *testing.T) {
	slowed := strings.ReplaceAll(baselineText, "1000000 ns/op", "1400000 ns/op")
	slowed = strings.ReplaceAll(slowed, "1100000 ns/op", "1400000 ns/op")
	slowed = strings.ReplaceAll(slowed, "1050000 ns/op", "1400000 ns/op")
	slowed = strings.ReplaceAll(slowed, "1020000 ns/op", "1400000 ns/op")
	slowed = strings.ReplaceAll(slowed, "1080000 ns/op", "1400000 ns/op")
	rep := gate(baselineText, slowed, "b.txt", 1.25, 1.10)
	if rep.Pass {
		t.Fatal("a 1.33x time regression passed the gate")
	}
	var hit bool
	for _, r := range rep.Results {
		if r.Name == "BenchmarkSegmenterReuse-2" {
			hit = true
			if r.Status != "time-regression" {
				t.Errorf("status %q, want time-regression", r.Status)
			}
			if r.TimeRatio < 1.3 || r.TimeRatio > 1.4 {
				t.Errorf("time ratio %.3f, want ~1.33", r.TimeRatio)
			}
		}
	}
	if !hit {
		t.Fatal("regressed benchmark missing from results")
	}
}

// TestGateFailsOnAllocRegression: a >10% allocs/op growth fails even at
// equal speed.
func TestGateFailsOnAllocRegression(t *testing.T) {
	bloated := strings.ReplaceAll(baselineText, "2300 allocs/op", "2600 allocs/op")
	bloated = strings.ReplaceAll(bloated, "2310 allocs/op", "2600 allocs/op")
	bloated = strings.ReplaceAll(bloated, "2305 allocs/op", "2600 allocs/op")
	bloated = strings.ReplaceAll(bloated, "2302 allocs/op", "2600 allocs/op")
	bloated = strings.ReplaceAll(bloated, "2308 allocs/op", "2600 allocs/op")
	rep := gate(baselineText, bloated, "b.txt", 1.25, 1.10)
	if rep.Pass {
		t.Fatal("a 1.13x alloc regression passed the gate")
	}
}

// TestGateMedianAbsorbsOneOutlier: one wild sample among five must not
// fail the gate — that is the point of median aggregation.
func TestGateMedianAbsorbsOneOutlier(t *testing.T) {
	noisy := strings.Replace(baselineText, "1000000 ns/op", "9000000 ns/op", 1)
	rep := gate(baselineText, noisy, "b.txt", 1.25, 1.10)
	if !rep.Pass {
		t.Fatalf("one outlier sample failed the gate: %+v", rep.Results)
	}
}

// TestGateHandlesDisjointSets: benchmarks on only one side are reported
// but never gate.
func TestGateHandlesDisjointSets(t *testing.T) {
	current := baselineText + "\nBenchmarkNew-2   100   5 ns/op\n"
	current = strings.ReplaceAll(current, "BenchmarkRecolour/image6-2", "BenchmarkRenamed-2")
	rep := gate(baselineText, current, "b.txt", 1.25, 1.10)
	if !rep.Pass {
		t.Fatalf("disjoint benchmarks failed the gate: %+v", rep.Results)
	}
	if len(rep.OnlyBaseline) != 1 || rep.OnlyBaseline[0] != "BenchmarkRecolour/image6-2" {
		t.Errorf("OnlyBaseline = %v", rep.OnlyBaseline)
	}
	if len(rep.OnlyCurrent) != 2 {
		t.Errorf("OnlyCurrent = %v, want the renamed and new benchmarks", rep.OnlyCurrent)
	}
}

// TestParseBenchIgnoresNoise: non-benchmark lines and malformed fields
// are skipped.
func TestParseBenchIgnoresNoise(t *testing.T) {
	got := parseBench("goos: linux\nok pkg 1.2s\nBenchmarkX-4 10 bogus ns/op\nBenchmarkY-4 10 42 ns/op\n")
	if len(got) != 1 || len(got["BenchmarkY-4"]) != 1 || got["BenchmarkY-4"][0].nsPerOp != 42 {
		t.Fatalf("parseBench = %+v", got)
	}
}
