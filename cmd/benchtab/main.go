// Command benchtab regenerates the paper's evaluation: the six per-image
// tables (split/merge times and iteration counts across the five machine
// configurations) and the Figure 3 merge-time bar chart, with the paper's
// published numbers printed alongside.
//
// Usage:
//
//	benchtab [-threshold T] [-seed S] [-tie P] [-native] [-timeout D]
//	         [-server URL] [-cpuprofile F] [-memprofile F]
//
// With -native, each table carries a sixth row for the native
// shared-memory engine (host wall times; it simulates no machine). With
// -timeout, the whole evaluation runs under a deadline: exceeding it
// cancels the in-flight engine run (within one split/merge iteration) and
// exits non-zero.
//
// With -server, no engine runs locally: every row is produced by a
// regiongrowd service at the given base URL, one asynchronous job per
// row through the regiongrow/client SDK. Rows use the same per-model
// seed derivation as local runs (regiongrow.ExperimentConfig), so the
// tables match local ones number for number — the simulated machine
// times travel back in the job results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"regiongrow"
	"regiongrow/client"
	"regiongrow/internal/machine"
	"regiongrow/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")
	threshold := flag.Int("threshold", 10, "homogeneity threshold T")
	seed := flag.Uint64("seed", 1, "random tie seed")
	tieName := flag.String("tie", "random", "tie policy: random, smallest-id, largest-id")
	native := flag.Bool("native", false, "append a native shared-memory engine row to each table")
	timeout := flag.Duration("timeout", 0, "abort the whole evaluation after this duration (0 = no limit)")
	serverURL := flag.String("server", "", "produce every row via a regiongrowd service at this base URL instead of local engines")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the whole evaluation to this file")
	memprofile := flag.String("memprofile", "", "write a post-GC heap profile to this file after the evaluation")
	flag.Parse()

	tie, err := regiongrow.ParseTiePolicy(*tieName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := regiongrow.Config{Threshold: *threshold, Tie: tie, Seed: *seed}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	run := regiongrow.RunExperimentContext
	if *native {
		run = regiongrow.RunExperimentWithNativeContext
	}
	if *serverURL != "" {
		c, err := client.New(*serverURL)
		if err != nil {
			log.Fatal(err)
		}
		run = func(ctx context.Context, id regiongrow.PaperImageID, cfg regiongrow.Config) (regiongrow.Experiment, error) {
			return serverExperiment(ctx, c, id, cfg, *native)
		}
	}
	var exps []regiongrow.Experiment
	// The profile brackets exactly the engine runs (all six tables), so a
	// capture from a CI run or a local repro ranks split, RAG build, and
	// merge without flag-parsing or table-rendering noise.
	err = regiongrow.RunProfiled(*cpuprofile, *memprofile, func() error {
		for i, id := range regiongrow.AllPaperImages() {
			exp, err := run(ctx, id, cfg)
			if errors.Is(err, context.DeadlineExceeded) {
				return fmt.Errorf("timed out after %v with %d of 6 tables done — raise -timeout", *timeout, i)
			}
			if err != nil {
				return err
			}
			exps = append(exps, exp)
			fmt.Printf("=== Table %d ===\n", i+1)
			regiongrow.WriteTable(os.Stdout, exp)
			fmt.Println()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	regiongrow.WriteFigure3(os.Stdout, exps)
	fmt.Println()

	if bad := regiongrow.CheckOrderings(exps); len(bad) > 0 {
		fmt.Println("ordering violations (paper claims C2-C5):")
		for _, b := range bad {
			fmt.Println("  ", b)
		}
		os.Exit(1)
	}
	fmt.Println("all paper orderings hold: Async < LP < CM5-CMF and CM2-16K < CM2-8K < CM5-CMF (merge stage)")
}

// serverExperiment reproduces one paper experiment through a regiongrowd
// service: one asynchronous job per machine configuration (plus the
// native row when asked), each under the same per-model derived seed as
// local runs, with the simulated stage times read back from the job
// results.
func serverExperiment(ctx context.Context, c *client.Client, id regiongrow.PaperImageID, cfg regiongrow.Config, native bool) (regiongrow.Experiment, error) {
	exp := regiongrow.Experiment{Image: id}
	for _, kind := range regiongrow.AllEngineKinds() {
		mc, _ := kind.MachineConfig()
		res, err := serverRow(ctx, c, id, kind, regiongrow.ExperimentConfig(kind, cfg))
		if err != nil {
			return exp, err
		}
		exp.Rows = append(exp.Rows, stats.Row{
			Config:     mc,
			SplitSecs:  res.SplitSimSecs,
			SplitIters: res.SplitIterations,
			MergeSecs:  res.MergeSimSecs,
			MergeIters: res.MergeIterations,
			WallSplit:  res.SplitWallMs / 1e3,
			WallMerge:  res.MergeWallMs / 1e3,
		})
		exp.SquaresAfterSplit = res.SquaresAfterSplit
		exp.FinalRegions = res.FinalRegions
	}
	if native {
		res, err := serverRow(ctx, c, id, regiongrow.NativeParallel, cfg)
		if err != nil {
			return exp, err
		}
		exp.Rows = append(exp.Rows, stats.Row{
			Config:     machine.HostNative,
			SplitIters: res.SplitIterations,
			MergeIters: res.MergeIterations,
			WallSplit:  res.SplitWallMs / 1e3,
			WallMerge:  res.MergeWallMs / 1e3,
		})
	}
	return exp, nil
}

// serverRow runs one (image, engine, config) job to completion remotely.
func serverRow(ctx context.Context, c *client.Client, id regiongrow.PaperImageID, kind regiongrow.EngineKind, cfg regiongrow.Config) (*client.Result, error) {
	sub, err := c.Submit(ctx, client.JobRequest{PaperImage: id.ShortName(), Engine: kind, Config: cfg})
	if err != nil {
		return nil, fmt.Errorf("submitting %v on %v: %w", kind, id, err)
	}
	job, err := c.Wait(ctx, sub.ID)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil {
			// Tell the server to stop a row nobody will read.
			cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_, _ = c.Cancel(cctx, sub.ID)
			return nil, context.DeadlineExceeded
		}
		return nil, fmt.Errorf("waiting for %v on %v: %w", kind, id, err)
	}
	if job.State != client.StateDone {
		return nil, fmt.Errorf("%v on %v: job %s %s: %s", kind, id, job.ID, job.State, job.Error)
	}
	return job.Result, nil
}
