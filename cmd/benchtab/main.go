// Command benchtab regenerates the paper's evaluation: the six per-image
// tables (split/merge times and iteration counts across the five machine
// configurations) and the Figure 3 merge-time bar chart, with the paper's
// published numbers printed alongside.
//
// Usage:
//
//	benchtab [-threshold T] [-seed S] [-tie P] [-native] [-timeout D]
//
// With -native, each table carries a sixth row for the native
// shared-memory engine (host wall times; it simulates no machine). With
// -timeout, the whole evaluation runs under a deadline: exceeding it
// cancels the in-flight engine run (within one split/merge iteration) and
// exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"

	"regiongrow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchtab: ")
	threshold := flag.Int("threshold", 10, "homogeneity threshold T")
	seed := flag.Uint64("seed", 1, "random tie seed")
	tieName := flag.String("tie", "random", "tie policy: random, smallest-id, largest-id")
	native := flag.Bool("native", false, "append a native shared-memory engine row to each table")
	timeout := flag.Duration("timeout", 0, "abort the whole evaluation after this duration (0 = no limit)")
	flag.Parse()

	tie, err := regiongrow.ParseTiePolicy(*tieName)
	if err != nil {
		log.Fatal(err)
	}
	cfg := regiongrow.Config{Threshold: *threshold, Tie: tie, Seed: *seed}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	run := regiongrow.RunExperimentContext
	if *native {
		run = regiongrow.RunExperimentWithNativeContext
	}
	var exps []regiongrow.Experiment
	for i, id := range regiongrow.AllPaperImages() {
		exp, err := run(ctx, id, cfg)
		if errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("timed out after %v with %d of 6 tables done — raise -timeout", *timeout, i)
		}
		if err != nil {
			log.Fatal(err)
		}
		exps = append(exps, exp)
		fmt.Printf("=== Table %d ===\n", i+1)
		regiongrow.WriteTable(os.Stdout, exp)
		fmt.Println()
	}

	regiongrow.WriteFigure3(os.Stdout, exps)
	fmt.Println()

	if bad := regiongrow.CheckOrderings(exps); len(bad) > 0 {
		fmt.Println("ordering violations (paper claims C2-C5):")
		for _, b := range bad {
			fmt.Println("  ", b)
		}
		os.Exit(1)
	}
	fmt.Println("all paper orderings hold: Async < LP < CM5-CMF and CM2-16K < CM2-8K < CM5-CMF (merge stage)")
}
