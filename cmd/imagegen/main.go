// Command imagegen generates the paper's six evaluation images as PGM
// files, plus optional synthetic stress inputs.
//
// Usage:
//
//	imagegen [-dir out] [-noise N] [-seed S] [-extras]
//
// It writes image1.pgm … image6.pgm into the output directory; with
// -extras it also writes the uniform, checkerboard, gradient, and random
// stress images used by the test suite.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"regiongrow/internal/pixmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imagegen: ")
	dir := flag.String("dir", ".", "output directory")
	noise := flag.Int("noise", 0, "dither amplitude added within objects (0 = clean, as evaluated)")
	seed := flag.Uint64("seed", 1, "dither stream seed")
	extras := flag.Bool("extras", false, "also generate stress-test images")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	opt := pixmap.GenOptions{Noise: *noise, Seed: *seed}
	for i, id := range pixmap.AllPaperImages() {
		im := pixmap.Generate(id, opt)
		path := filepath.Join(*dir, fmt.Sprintf("image%d.pgm", i+1))
		if err := pixmap.SavePGM(path, im); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s  (%s)\n", path, id)
	}
	if *extras {
		stress := map[string]*pixmap.Image{
			"uniform128.pgm":      pixmap.Uniform(128, 99),
			"checkerboard128.pgm": pixmap.Checkerboard(128, 0, 255),
			"gradient128.pgm":     pixmap.Gradient(128, 255),
			"random128.pgm":       pixmap.Random(128, *seed),
		}
		for name, im := range stress {
			path := filepath.Join(*dir, name)
			if err := pixmap.SavePGM(path, im); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}
