// Command imagegen generates the paper's six evaluation images as PGM
// files, plus optional synthetic stress inputs.
//
// Usage:
//
//	imagegen [-dir out] [-noise N] [-seed S] [-extras]
//	imagegen -stream out.pgm -rows R -cols C [-block B]
//
// It writes image1.pgm … image6.pgm into the output directory; with
// -extras it also writes the uniform, checkerboard, gradient, and random
// stress images used by the test suite.
//
// With -stream, it instead mints one synthetic image of the given
// geometry incrementally — each pixel is a pure function of its
// coordinates, rows go straight through the streaming PGM writer, and no
// full-image buffer is ever allocated — so it can produce the 100MP+
// inputs that exercise the streaming segmentation path on machines that
// could never hold them. The pattern is a block checkerboard (block size
// -block) with a small per-block shade offset: blocks are internally
// uniform and 4-adjacent blocks always contrast, so the expected final
// region count is exactly the block count.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"regiongrow/internal/pixmap"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imagegen: ")
	dir := flag.String("dir", ".", "output directory")
	noise := flag.Int("noise", 0, "dither amplitude added within objects (0 = clean, as evaluated)")
	seed := flag.Uint64("seed", 1, "dither stream seed")
	extras := flag.Bool("extras", false, "also generate stress-test images")
	streamPath := flag.String("stream", "", "write one synthetic image incrementally to this path (needs -rows and -cols)")
	rows := flag.Int("rows", 0, "streamed image height in rows")
	cols := flag.Int("cols", 0, "streamed image width in pixels")
	block := flag.Int("block", 512, "streamed image checkerboard block size")
	flag.Parse()

	if *streamPath != "" {
		if err := streamImage(*streamPath, *rows, *cols, *block); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s  (%dx%d, %d-pixel blocks)\n", *streamPath, *cols, *rows, *block)
		return
	}
	if *rows != 0 || *cols != 0 {
		log.Fatal("-rows and -cols apply only to -stream mode")
	}

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		log.Fatal(err)
	}
	opt := pixmap.GenOptions{Noise: *noise, Seed: *seed}
	for i, id := range pixmap.AllPaperImages() {
		im := pixmap.Generate(id, opt)
		path := filepath.Join(*dir, fmt.Sprintf("image%d.pgm", i+1))
		if err := pixmap.SavePGM(path, im); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s  (%s)\n", path, id)
	}
	if *extras {
		stress := map[string]*pixmap.Image{
			"uniform128.pgm":      pixmap.Uniform(128, 99),
			"checkerboard128.pgm": pixmap.Checkerboard(128, 0, 255),
			"gradient128.pgm":     pixmap.Gradient(128, 255),
			"random128.pgm":       pixmap.Random(128, *seed),
		}
		for name, im := range stress {
			path := filepath.Join(*dir, name)
			if err := pixmap.SavePGM(path, im); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
		}
	}
}

// blockShade is the streamed pattern: a checkerboard of uniform blocks.
// Same-class blocks carry a small deterministic shade offset so their
// intensity intervals differ without ever crossing the contrast gap; the
// offsets stay below any sane homogeneity threshold, so each block merges
// internally and never across a block edge.
func blockShade(bx, by int) uint8 {
	if (bx+by)%2 == 0 {
		return uint8(40 + (bx*5+by*3)%8)
	}
	return uint8(200 + (bx*3+by*7)%8)
}

// streamImage writes a rows×cols block-checkerboard PGM through the
// streaming writer, one row buffer at a time.
func streamImage(path string, rows, cols, block int) error {
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("-stream needs -rows and -cols > 0 (got %dx%d)", cols, rows)
	}
	if block <= 0 {
		return fmt.Errorf("bad block size %d", block)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	sw, err := pixmap.NewStreamWriter(f, cols, rows)
	if err != nil {
		f.Close()
		return err
	}
	row := make([]uint8, cols)
	for y := 0; y < rows; y++ {
		by := y / block
		for x0 := 0; x0 < cols; x0 += block {
			s := blockShade(x0/block, by)
			end := min(x0+block, cols)
			for x := x0; x < end; x++ {
				row[x] = s
			}
		}
		if err := sw.WriteRows(row); err != nil {
			f.Close()
			return err
		}
	}
	if err := sw.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
