// Command regiongrow-gateway is the serving fleet's stateless edge
// tier: it fronts N regiongrowd backends and serves the same /v1 job
// API, routing each submission to the backend owning its cache key over
// a consistent-hash ring and proxying job-ID traffic (record lookups,
// SSE event streams, cancels) to the replica that minted the ID.
//
// Usage:
//
//	regiongrow-gateway -backends host:port,host:port,...
//	                   [-addr :8081] [-vnodes 512] [-health 2s]
//	                   [-probe 2s] [-eject 2] [-maxbody BYTES]
//	                   [-rate R] [-burst B] [-maxinflight N]
//	                   [-drain 30s] [-instance ID] [-pprof]
//
// With -pprof, the gateway additionally serves Go's profiling endpoints
// under /debug/pprof/ so edge-tier hot spots (routing, proxying, SSE
// fan-out) can be ranked on a live process. Off by default; enable only
// where operators can reach the port.
//
// Give each backend a distinct, stable -instance when starting
// regiongrowd; that ID is how job lookups route through any gateway.
// Backend membership is dynamic after startup: POST /v1/fleet/join and
// /v1/fleet/leave add and remove replicas at runtime, GET /v1/fleet
// reports membership with per-backend health, and the health loop
// (period -health) ejects a backend from the routing ring after -eject
// consecutive failed probes, readmitting it when it answers again.
//
// -rate enables per-client-IP token-bucket rate limiting of submissions
// (R per second, burst -burst); -maxinflight caps concurrently
// forwarded submissions fleet-wide. Both reject with 429 + Retry-After
// at the edge, before any backend queues work. Several gateways can
// front the same fleet: they share no state, and the deterministic ring
// hash makes them agree on key ownership as long as they are started
// with the same backend list and -vnodes.
//
// Endpoints: the full regiongrowd /v1 job API (jobs, events, batch,
// segment), plus GET /v1/stats (gateway counters + live fleet-wide
// aggregation of every backend's stats), GET /healthz (503 when no
// backend is reachable), and the /v1/fleet membership API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"regiongrow/internal/gateway"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("regiongrow-gateway: ")
	addr := flag.String("addr", ":8081", "listen address")
	backends := flag.String("backends", "", "comma-separated regiongrowd backend addresses (required)")
	vnodes := flag.Int("vnodes", gateway.DefaultVNodes, "consistent-hash virtual nodes per backend (all gateways over one fleet must agree)")
	health := flag.Duration("health", 2*time.Second, "health-probe sweep interval")
	probe := flag.Duration("probe", 2*time.Second, "per-probe timeout")
	eject := flag.Int("eject", 2, "consecutive probe failures before a backend leaves the routing ring")
	maxBody := flag.Int64("maxbody", 16<<20, "maximum PGM upload size in bytes")
	rate := flag.Float64("rate", 0, "per-client submissions per second (0 = unlimited)")
	burst := flag.Int("burst", 0, "rate-limit burst depth (0 = 2*rate)")
	maxInFlight := flag.Int("maxinflight", 0, "fleet-wide cap on in-flight submissions (0 = unlimited)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	instance := flag.String("instance", "", "this gateway's stable instance ID (empty = random)")
	pprofOn := flag.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/")
	flag.Parse()
	if flag.NArg() != 0 || *backends == "" {
		fmt.Fprintln(os.Stderr, "usage: regiongrow-gateway -backends host:port,... [-addr :8081] [-vnodes N] [-health D] [-probe D] [-eject N] [-maxbody BYTES] [-rate R] [-burst B] [-maxinflight N] [-drain D] [-instance ID] [-pprof]")
		os.Exit(2)
	}
	var list []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			list = append(list, a)
		}
	}

	gw, err := gateway.New(gateway.Options{
		Backends:       list,
		VNodes:         *vnodes,
		HealthInterval: *health,
		ProbeTimeout:   *probe,
		EjectAfter:     *eject,
		MaxBodyBytes:   *maxBody,
		RatePerSec:     *rate,
		Burst:          *burst,
		MaxInFlight:    *maxInFlight,
		Instance:       *instance,
	})
	if err != nil {
		log.Fatal(err)
	}
	var handler http.Handler = gw
	if *pprofOn {
		// The gateway handler owns "/", so the pprof routes are mounted on
		// an explicit mux in front of it rather than the default mux.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		mux.Handle("/", gw)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (instance=%s backends=%d vnodes=%d)", *addr, gw.Instance(), len(list), *vnodes)

	select {
	case <-ctx.Done():
		log.Printf("shutdown signal received, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		gw.Close()
		log.Print("drained, exiting")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
