// Command regiongrow-worker is one worker process of a distributed
// region-growing cluster: it listens for coordinator connections and runs
// one image-band job per connection (concurrently, so several
// coordinators can share a cluster without deadlocking each other).
//
// Usage:
//
//	regiongrow-worker [-listen 127.0.0.1:0] [-idletimeout 60s]
//
// The first stdout line is "listening on ADDR" — with port 0, that is how
// a supervisor discovers the bound port. Point a coordinator at a set of
// workers with `regiongrow -engine dist -cluster host:port,...` or
// `regiongrowd -cluster host:port,...`; the coordinator ships each worker
// its band of pixels, so workers need no access to the image source.
// Workers can join or leave a cluster between jobs: a running regiongrowd
// picks up membership changes through its /v1/cluster endpoints, without
// a restart of either side.
//
// On SIGINT/SIGTERM the worker stops accepting, finishes any in-flight
// job, refuses new ones, and exits 0. Idle connections (accepted but with
// no job yet) are released after -idletimeout, so they cannot hold the
// drain hostage. A coordinator abort (context cancellation) ends only the
// job, not the process.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"regiongrow/internal/distengine"
	"regiongrow/internal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("regiongrow-worker: ")
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to listen on (port 0 picks a free port)")
	idle := flag.Duration("idletimeout", 0, "how long an accepted connection may sit without a job before it is dropped (0 = 60s default)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: regiongrow-worker [-listen 127.0.0.1:0] [-idletimeout 60s]")
		os.Exit(2)
	}

	l, err := transport.TCP{}.Listen(*listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listening on %s\n", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("shutdown signal received, draining")
		l.Close()
	}()

	// ServeWorkerOpts returns once the listener is closed and in-flight
	// jobs have drained; the accept error it reports is then the expected
	// one.
	err = distengine.ServeWorkerOpts(l, distengine.WorkerOptions{IdleTimeout: *idle})
	if err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatal(err)
	}
	log.Print("drained, exiting")
}
