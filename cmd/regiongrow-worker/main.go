// Command regiongrow-worker is one worker process of a distributed
// region-growing cluster: it listens for coordinator connections and runs
// one image-band job per connection (concurrently, so several
// coordinators can share a cluster without deadlocking each other).
//
// Usage:
//
//	regiongrow-worker [-listen 127.0.0.1:0]
//
// The first stdout line is "listening on ADDR" — with port 0, that is how
// a supervisor discovers the bound port. Point a coordinator at a set of
// workers with `regiongrow -engine dist -cluster host:port,...` or
// `regiongrowd -cluster host:port,...`; the coordinator ships each worker
// its band of pixels, so workers need no access to the image source. On
// SIGINT/SIGTERM the worker stops accepting, drains in-flight jobs, and
// exits 0. A coordinator abort (context cancellation) ends only the job,
// not the process.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"regiongrow/internal/distengine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("regiongrow-worker: ")
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to listen on (port 0 picks a free port)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: regiongrow-worker [-listen 127.0.0.1:0]")
		os.Exit(2)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listening on %s\n", l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("shutdown signal received, draining")
		l.Close()
	}()

	// ServeWorker returns once the listener is closed and in-flight jobs
	// have drained; the accept error it reports is then the expected one.
	if err := distengine.ServeWorker(l); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatal(err)
	}
	log.Print("drained, exiting")
}
