package main_test

import (
	"bufio"
	"bytes"
	"context"
	"net"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/distengine"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
)

// startWorker builds the worker binary and launches one process with the
// given extra flags, returning its address, the command (for signalling)
// and its captured stderr.
func startWorker(t *testing.T, flags ...string) (string, *exec.Cmd, *bytes.Buffer) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "regiongrow-worker")
	build := exec.Command("go", "build", "-o", bin, "regiongrow/cmd/regiongrow-worker")
	build.Dir = filepath.Join("..", "..") // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building worker: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, flags...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting worker: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("worker banner: %v", err)
	}
	addr, ok := strings.CutPrefix(strings.TrimSpace(line), "listening on ")
	if !ok {
		t.Fatalf("worker banner %q", line)
	}
	return addr, cmd, &stderr
}

// TestSIGTERMDrainsActiveJob is the regression pin for the termination
// race: SIGTERM arriving while a job is mid-merge must let that job run
// to completion (byte-identical result), release idle connections via
// the idle timeout rather than letting them hold the drain open, refuse
// new connections, and exit 0.
func TestSIGTERMDrainsActiveJob(t *testing.T) {
	if testing.Short() {
		t.Skip("process-exec test skipped in -short mode")
	}
	addr, cmd, stderr := startWorker(t, "-idletimeout", "500ms")

	// An accepted-but-jobless connection: under the old behaviour a drain
	// could block on it forever; the idle timeout must release it.
	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.SmallestID}
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// SIGTERM the worker the moment the merge phase is demonstrably in
	// flight on it.
	var once sync.Once
	run := core.Run{Observer: core.ObserverFunc(func(ev core.StageEvent) {
		if ev.Kind == core.EventMergeIteration {
			once.Do(func() {
				if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
					t.Errorf("signalling worker: %v", err)
				}
			})
		}
	})}
	got, err := distengine.New([]string{addr}).SegmentContext(context.Background(), im, cfg, run)
	if err != nil {
		t.Fatalf("job interrupted by SIGTERM instead of draining: %v", err)
	}
	if !got.EqualLabels(want) {
		t.Error("drained job produced labels differing from sequential")
	}

	// The process exits 0 once the idle connection times out — well inside
	// this bound — despite that connection still being open on our side.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("worker exit after drain: %v\n%s", err, stderr.Bytes())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("worker did not exit after SIGTERM drain\n%s", stderr.Bytes())
	}
	if s := stderr.String(); !strings.Contains(s, "drained, exiting") {
		t.Errorf("drain not reported on stderr:\n%s", s)
	}

	// The listener is gone: new coordinators are refused.
	if c, err := net.Dial("tcp", addr); err == nil {
		c.Close()
		t.Error("dial succeeded after the worker drained and exited")
	}
}
