// Command regiongrow segments a PGM image by parallel split-and-merge
// region growing and writes the result as a recoloured PGM plus a region
// summary.
//
// Usage:
//
//	regiongrow [-engine E] [-threshold T] [-tie P] [-seed S]
//	           [-maxsquare M] [-timeout D] [-server URL]
//	           [-cluster host:port,...] [-stream] [-o out.pgm]
//	           [-labels out.rgls] [-dot out.dot] [-json out.json] input.pgm
//
// Engines: sequential (default), cm2-8k, cm2-16k, cm5-cmf, cm5-lp,
// cm5-async, native, dist. The CM engines additionally report simulated
// machine times; native runs the algorithm on host goroutines (GOMAXPROCS
// workers); dist coordinates real regiongrow-worker processes over TCP
// (-cluster lists their addresses and implies -engine dist when no engine
// is named). With -timeout, a run exceeding the duration is cancelled
// (within one split/merge iteration) and the command exits non-zero
// naming the stage it reached.
//
// With -stream, the image is segmented incrementally in O(band) memory —
// the full raster never exists in the process — accepting inputs far
// beyond the in-memory engines' pixel limit while producing output
// byte-identical to the sequential engine. Stream mode writes the outputs
// named by -o (recoloured PGM) and -labels (raw label raster); it is
// local-only and raster-only, so -server, -cluster, -dot, and -json do
// not combine with it. -labels also works without -stream, encoding the
// in-memory result in the same wire format for byte-for-byte comparison.
//
// With -server, the image is not segmented locally: it is uploaded to a
// regiongrowd service at the given base URL through the regiongrow/client
// SDK — submitted as an asynchronous job whose stage events stream back
// over SSE — and the outputs are produced from the job's result. A
// -timeout in server mode also cancels the remote job.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"regiongrow"
	"regiongrow/client"
)

// stageTracker remembers the latest stage event so a timeout message can
// say how far the run got. It serves both the local observer hook and the
// client SDK's streamed events — they are the same typed StageEvent.
type stageTracker struct {
	stage atomic.Value // string
	iter  atomic.Int64
}

func (t *stageTracker) Observe(ev regiongrow.StageEvent) {
	switch ev.Kind {
	case regiongrow.EventSplitStart:
		t.stage.Store("split")
	case regiongrow.EventSplitDone:
		t.stage.Store("graph build")
	case regiongrow.EventGraphDone:
		t.stage.Store("merge")
	case regiongrow.EventMergeIteration:
		t.iter.Store(int64(ev.Iteration))
	case regiongrow.EventMergeDone:
		t.stage.Store("finalize")
	}
}

func (t *stageTracker) String() string {
	s, _ := t.stage.Load().(string)
	if s == "" {
		s = "startup"
	}
	if s == "merge" {
		if k := t.iter.Load(); k > 0 {
			return fmt.Sprintf("merge iteration %d", k)
		}
	}
	return s
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("regiongrow: ")
	engineName := flag.String("engine", "",
		"execution engine: sequential (default), cm2-8k, cm2-16k, cm5-cmf, cm5-lp, cm5-async, native, or dist")
	threshold := flag.Int("threshold", 10, "pixel-range homogeneity threshold T")
	tieName := flag.String("tie", "random", "tie policy: random, smallest-id, largest-id")
	seed := flag.Uint64("seed", 1, "random tie seed")
	maxSquare := flag.Int("maxsquare", 0, "split square cap (0 = N/8 as in the paper, -1 = unbounded)")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
	serverURL := flag.String("server", "", "segment via a regiongrowd service at this base URL instead of a local engine")
	cluster := flag.String("cluster", "", "comma-separated regiongrow-worker addresses for the dist engine (implies -engine dist)")
	streamMode := flag.Bool("stream", false, "segment incrementally in bounded memory (output byte-identical to sequential; needs -o and/or -labels)")
	bandRows := flag.Int("bandrows", 0, "stream mode band height in rows (0 = one split cap per band, the minimum-memory setting)")
	out := flag.String("o", "", "write recoloured segmentation to this PGM path")
	labelsPath := flag.String("labels", "", "write the raw label raster (RGLS wire format) to this path")
	dotPath := flag.String("dot", "", "write the final region adjacency graph as Graphviz DOT")
	jsonPath := flag.String("json", "", "write per-region statistics as JSON")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: regiongrow [-engine E] [-threshold T] [-tie P] [-seed S]")
		fmt.Fprintln(os.Stderr, "                  [-maxsquare M] [-timeout D] [-server URL]")
		fmt.Fprintln(os.Stderr, "                  [-cluster host:port,...] [-stream] [-o out.pgm]")
		fmt.Fprintln(os.Stderr, "                  [-labels out.rgls] [-dot out.dot] [-json out.json] input.pgm")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var clusterAddrs []string
	if *cluster != "" {
		for _, a := range strings.Split(*cluster, ",") {
			if a = strings.TrimSpace(a); a != "" {
				clusterAddrs = append(clusterAddrs, a)
			}
		}
	}
	name := *engineName
	if name == "" {
		name = "sequential"
		if len(clusterAddrs) > 0 {
			name = "dist"
		}
	}
	kind, err := regiongrow.ParseEngineKind(name)
	if err != nil {
		log.Fatal(err)
	}
	if kind == regiongrow.Distributed && len(clusterAddrs) == 0 && *serverURL == "" {
		log.Fatal("engine dist needs -cluster host:port,... (regiongrow-worker addresses)")
	}
	tie, err := regiongrow.ParseTiePolicy(*tieName)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := regiongrow.Config{Threshold: *threshold, Tie: tie, Seed: *seed, MaxSquare: *maxSquare}

	if *streamMode {
		if *serverURL != "" || len(clusterAddrs) > 0 || *dotPath != "" || *jsonPath != "" {
			log.Fatal("-stream is local-only and raster-only: it does not combine with -server, -cluster, -dot, or -json")
		}
		if *engineName != "" && *engineName != "sequential" {
			log.Fatalf("-stream runs the streaming engine (sequential-identical output), not -engine %s", *engineName)
		}
		if *out == "" && *labelsPath == "" {
			log.Fatal("-stream needs at least one of -o out.pgm or -labels out.rgls")
		}
		runStream(ctx, flag.Arg(0), cfg, *bandRows, *timeout, *out, *labelsPath)
		return
	}

	im, err := regiongrow.LoadPGM(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}

	if *serverURL != "" {
		if *labelsPath != "" {
			log.Fatal("-labels is local-only: job results carry region stats, not the raw label raster")
		}
		runServer(ctx, *serverURL, kind, cfg, im, *timeout, *out, *dotPath, *jsonPath)
		return
	}

	tracker := &stageTracker{}
	sessOpts := []regiongrow.Option{regiongrow.WithObserver(tracker)}
	if kind == regiongrow.Distributed {
		sessOpts = append(sessOpts, regiongrow.WithClusterWorkers(clusterAddrs))
	}
	seg2, err := regiongrow.New(kind, sessOpts...)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := seg2.Segment(ctx, im, cfg)
	if errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("timed out after %v during %s — raise -timeout or pick a faster engine", *timeout, tracker)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := regiongrow.Validate(seg, im, cfg); err != nil {
		log.Fatalf("internal error: invalid segmentation: %v", err)
	}

	fmt.Printf("engine: %s   image: %dx%d   T=%d   tie=%v\n", seg2.Engine().Name(), im.W, im.H, *threshold, tie)
	fmt.Printf("split: %d iterations, %d square regions (%.1f ms wall)\n",
		seg.SplitIterations, seg.SquaresAfterSplit, seg.SplitWall.Seconds()*1e3)
	fmt.Printf("merge: %d iterations, %d final regions (%.1f ms wall)\n",
		seg.MergeIterations, seg.FinalRegions, seg.MergeWall.Seconds()*1e3)
	if seg.SplitSim > 0 || seg.MergeSim > 0 {
		fmt.Printf("simulated machine time: split %.3f s, merge %.3f s\n", seg.SplitSim, seg.MergeSim)
	}

	regions := append([]regiongrow.Segmentation{}, *seg)[0].Regions
	sort.Slice(regions, func(i, j int) bool { return regions[i].Area > regions[j].Area })
	show := len(regions)
	if show > 12 {
		show = 12
	}
	fmt.Printf("largest %d regions:\n", show)
	for _, r := range regions[:show] {
		x, y := im.Coord(int(r.ID))
		fmt.Printf("  region %7d at (%3d,%3d)  area %7d  intensity %v\n", r.ID, x, y, r.Area, r.IV)
	}

	if *out != "" {
		if err := regiongrow.SavePGM(*out, regiongrow.Recolour(seg, im)); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *labelsPath != "" {
		if err := writeFile(*labelsPath, func(f *os.File) error {
			return regiongrow.EncodeLabels(f, seg)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *labelsPath)
	}
	if *dotPath != "" || *jsonPath != "" {
		writeRegionFiles(regiongrow.ComputeRegionStats(seg, im), *dotPath, *jsonPath)
	}
}

// runStream is the -stream mode: segment the input incrementally through
// the streaming engine. Each requested output format is its own pass over
// the input file — the raster is never resident either way, and a second
// pass costs far less than holding a gigapixel image would.
func runStream(ctx context.Context, input string, cfg regiongrow.Config, bandRows int, timeout time.Duration, out, labelsPath string) {
	type pass struct {
		path   string
		output regiongrow.StreamOutput
	}
	var passes []pass
	if out != "" {
		passes = append(passes, pass{out, regiongrow.StreamRecolour})
	}
	if labelsPath != "" {
		passes = append(passes, pass{labelsPath, regiongrow.StreamLabels})
	}
	for i, p := range passes {
		tracker := &stageTracker{}
		res, err := streamOnce(ctx, input, p.path, p.output, cfg, bandRows, tracker)
		if errors.Is(err, context.DeadlineExceeded) {
			log.Fatalf("timed out after %v during %s — raise -timeout or pick a faster band size", timeout, tracker)
		}
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("engine: stream   image: %dx%d   T=%d   tie=%v\n", res.W, res.H, cfg.Threshold, cfg.Tie)
			fmt.Printf("split: %d iterations, %d square regions, %d bands (%.1f ms wall)\n",
				res.SplitIterations, res.SquaresAfterSplit, res.Bands, res.SplitWall.Seconds()*1e3)
			fmt.Printf("merge: %d iterations, %d final regions (%.1f ms wall)\n",
				res.MergeIterations, res.FinalRegions, res.MergeWall.Seconds()*1e3)
		}
		fmt.Printf("wrote %s\n", p.path)
	}
}

// streamOnce runs one streaming pass from the input file to one output
// file, removing a partial output on failure.
func streamOnce(ctx context.Context, input, outPath string, output regiongrow.StreamOutput, cfg regiongrow.Config, bandRows int, tracker *stageTracker) (*regiongrow.StreamResult, error) {
	in, err := os.Open(input)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	f, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	res, err := regiongrow.SegmentStream(ctx, in, f, cfg,
		regiongrow.WithStreamOutput(output),
		regiongrow.WithStreamBandRows(bandRows),
		regiongrow.WithStreamObserver(tracker))
	if err != nil {
		f.Close()
		os.Remove(outPath)
		return nil, err
	}
	return res, f.Close()
}

// runServer is the -server mode: submit the image as an asynchronous job,
// follow its stage events over SSE, and produce the same outputs from the
// job's result. The recoloured PGM for -o is rendered by the server (a
// cache hit, since the job just computed the same key).
func runServer(ctx context.Context, baseURL string, kind regiongrow.EngineKind, cfg regiongrow.Config, im *regiongrow.Image, timeout time.Duration, out, dotPath, jsonPath string) {
	c, err := client.New(baseURL)
	if err != nil {
		log.Fatal(err)
	}
	req := client.JobRequest{Image: im, Engine: kind, Config: cfg}
	sub, err := c.Submit(ctx, req)
	if err != nil {
		log.Fatalf("submitting to %s: %v", baseURL, err)
	}
	tracker := &stageTracker{}
	job, err := c.Stream(ctx, sub.ID, tracker.Observe)
	if errors.Is(err, context.DeadlineExceeded) {
		// Cancel the remote job too: the deadline was ours, not the
		// server's, and nobody is coming back for the result.
		cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_, _ = c.Cancel(cctx, sub.ID)
		log.Fatalf("timed out after %v during %s — raise -timeout or pick a faster engine", timeout, tracker)
	}
	if err != nil {
		log.Fatal(err)
	}
	if job.State != client.StateDone {
		log.Fatalf("job %s %s: %s", job.ID, job.State, job.Error)
	}
	res := job.Result

	fmt.Printf("engine: %s   image: %dx%d   T=%d   tie=%v   (served by %s, job %s)\n",
		job.Engine, im.W, im.H, cfg.Threshold, cfg.Tie, baseURL, job.ID)
	fmt.Printf("split: %d iterations, %d square regions (%.1f ms wall)\n",
		res.SplitIterations, res.SquaresAfterSplit, res.SplitWallMs)
	fmt.Printf("merge: %d iterations, %d final regions (%.1f ms wall)\n",
		res.MergeIterations, res.FinalRegions, res.MergeWallMs)
	if res.SplitSimSecs > 0 || res.MergeSimSecs > 0 {
		fmt.Printf("simulated machine time: split %.3f s, merge %.3f s\n", res.SplitSimSecs, res.MergeSimSecs)
	}

	regions := append([]regiongrow.RegionStat{}, res.Regions...)
	sort.Slice(regions, func(i, j int) bool { return regions[i].Area > regions[j].Area })
	show := len(regions)
	if show > 12 {
		show = 12
	}
	fmt.Printf("largest %d regions:\n", show)
	for _, r := range regions[:show] {
		x, y := im.Coord(int(r.ID))
		fmt.Printf("  region %7d at (%3d,%3d)  area %7d  intensity %v\n", r.ID, x, y, r.Area, r.IV())
	}

	if out != "" {
		rec, err := c.Recoloured(ctx, req)
		if err != nil {
			log.Fatal(err)
		}
		if err := regiongrow.SavePGM(out, rec); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", out)
	}
	if dotPath != "" || jsonPath != "" {
		writeRegionFiles(res.Regions, dotPath, jsonPath)
	}
}

// writeRegionFiles emits the optional DOT and JSON region outputs.
func writeRegionFiles(stats []regiongrow.RegionStat, dotPath, jsonPath string) {
	if dotPath != "" {
		if err := writeFile(dotPath, func(f *os.File) error {
			return regiongrow.WriteRegionDOT(f, stats)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", dotPath)
	}
	if jsonPath != "" {
		if err := writeFile(jsonPath, func(f *os.File) error {
			return regiongrow.WriteRegionJSON(f, stats)
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// writeFile creates path, runs fn on it, and closes it, reporting the
// first error.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
