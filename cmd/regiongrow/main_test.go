package main

import (
	"strings"
	"testing"

	"regiongrow"
)

// TestStageTrackerCoversEveryStage: every stage event moves the tracker
// forward — EventMergeDone in particular must advance past "merge", so a
// timeout firing during finalize is not misreported as a stalled merge.
func TestStageTrackerCoversEveryStage(t *testing.T) {
	tr := &stageTracker{}
	if got := tr.String(); !strings.Contains(got, "startup") {
		t.Errorf("zero tracker = %q, want startup", got)
	}
	steps := []struct {
		ev   regiongrow.StageEvent
		want string
	}{
		{regiongrow.StageEvent{Kind: regiongrow.EventSplitStart}, "split"},
		{regiongrow.StageEvent{Kind: regiongrow.EventSplitDone}, "graph build"},
		{regiongrow.StageEvent{Kind: regiongrow.EventGraphDone}, "merge"},
		{regiongrow.StageEvent{Kind: regiongrow.EventMergeIteration, Iteration: 3}, "iteration 3"},
		{regiongrow.StageEvent{Kind: regiongrow.EventMergeDone}, "finalize"},
	}
	for _, s := range steps {
		tr.Observe(s.ev)
		if got := tr.String(); !strings.Contains(got, s.want) {
			t.Errorf("after %v: String() = %q, want substring %q", s.ev.Kind, got, s.want)
		}
	}
}
