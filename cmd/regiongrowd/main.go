// Command regiongrowd serves split-and-merge segmentation over HTTP: PGM
// uploads (or the paper's six images by name) in, labels as PGM or JSON
// with per-region statistics out, through a bounded worker pool with an
// LRU result cache.
//
// Usage:
//
//	regiongrowd [-addr :8080] [-workers N] [-queue D] [-cache E]
//	            [-maxbody BYTES] [-drain TIMEOUT] [-timeout D] [-warm]
//	            [-jobcap N] [-jobttl D] [-cluster host:port,...]
//	            [-instance ID] [-pprof]
//
// With -pprof, the daemon additionally serves Go's profiling endpoints
// under /debug/pprof/ (CPU via ?seconds=N, heap, goroutine, and the rest),
// so serving hot spots can be ranked on a live process with `go tool
// pprof`. The endpoints are off by default: they reveal internals and cost
// CPU while sampling, so only enable them where operators can reach them.
//
// -instance names this server's stable identity (default: a random ID
// minted at startup). The instance is reported on /v1/stats and embedded
// in every job ID, which is how a regiongrow-gateway fleet routes job
// lookups to the backend owning the record; give each backend behind a
// gateway a distinct, stable -instance.
//
// With -cluster, the daemon also serves engine=dist: each such job is
// coordinated across the listed regiongrow-worker processes over TCP,
// which distributes the compute off this host while keeping results
// byte-identical to the sequential engine. Without -cluster, engine=dist
// requests are rejected with a hint.
//
// Cluster membership is dynamic: -cluster only seeds it. Workers join and
// leave a running daemon through POST /v1/cluster/join and /v1/cluster/
// leave (effective at the next job, no restart of either side), a worker
// lost mid-job triggers a retry across the members still answering health
// probes, and GET /v1/cluster reports per-worker health.
//
// Endpoints:
//
//	POST   /v1/jobs?engine=E&threshold=T&tie=P&seed=S&maxsquare=M
//	                &image=NAME&labels=1
//	                   enqueue an asynchronous job; answers 202 with its
//	                   versioned record (ID, state, progress)
//	GET    /v1/jobs/{id}          current job record; result once done
//	GET    /v1/jobs/{id}/events   the job's stage events as SSE, replay
//	                              then live, ending in done/failed/canceled
//	DELETE /v1/jobs/{id}          cancel: compute aborts within one
//	                              split/merge iteration
//	POST   /v1/batch   fan a JSON manifest (paper-image/config pairs) or
//	                   a multipart set of PGMs out as one job per item;
//	                   answers per-item job IDs
//	POST   /v1/segment?…&format=json|pgm
//	                   the synchronous compatibility path, implemented on
//	                   the same job machinery
//	GET    /v1/cluster            membership with per-worker health
//	POST   /v1/cluster/join?addr=H:P    add a worker (next job onward)
//	POST   /v1/cluster/leave?addr=H:P   drop a worker (last one refused)
//	GET    /v1/stats   job-store and queue depth, in-flight jobs, cache
//	                   hit/miss and cancellation counters, per-stage
//	                   progress gauges, per-engine latency histograms
//	GET    /healthz    liveness
//
// The body of POST /v1/segment and /v1/jobs is a P2/P5 PGM; with
// ?image=image1…image6 the body is ignored and the named paper image is
// segmented instead. When the job queue (or the -jobcap record store) is
// full the server answers 429 rather than queueing unboundedly; finished
// job records stay retrievable for -jobttl. With -timeout, a synchronous
// request whose compute exceeds the deadline is answered 504 naming the
// stage it reached, an asynchronous job is failed with the same error,
// and the compute is cancelled within one split/merge iteration — as it
// also is when a synchronous client disconnects, unless -warm keeps
// abandoned jobs running to warm the result cache. On SIGINT/SIGTERM the
// server stops accepting connections, drains in-flight requests (up to
// -drain), then drains the worker pool and exits.
//
// The regiongrow/client package is the typed Go SDK for this service.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"regiongrow/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("regiongrowd: ")
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "job queue depth (full queue answers 429)")
	cache := flag.Int("cache", 256, "LRU result cache entries (negative disables)")
	maxBody := flag.Int64("maxbody", 16<<20, "maximum PGM upload size in bytes")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	timeout := flag.Duration("timeout", 0, "per-request compute deadline; exceeding it answers 504 with the stage reached (0 = no limit)")
	warm := flag.Bool("warm", false, "keep computing abandoned jobs (disconnect or deadline) so results still warm the cache")
	jobCap := flag.Int("jobcap", 1024, "job record store capacity (full store of unfinished jobs answers 429)")
	jobTTL := flag.Duration("jobttl", 15*time.Minute, "how long finished job records stay retrievable")
	cluster := flag.String("cluster", "", "comma-separated regiongrow-worker addresses; enables the dist engine")
	instance := flag.String("instance", "", "stable instance ID reported on /v1/stats and embedded in job IDs (empty = random)")
	pprofOn := flag.Bool("pprof", false, "serve Go profiling endpoints under /debug/pprof/")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: regiongrowd [-addr :8080] [-workers N] [-queue D] [-cache E] [-maxbody BYTES] [-drain TIMEOUT] [-timeout D] [-warm] [-jobcap N] [-jobttl D] [-cluster host:port,...] [-instance ID] [-pprof]")
		os.Exit(2)
	}
	var clusterAddrs []string
	if *cluster != "" {
		for _, a := range strings.Split(*cluster, ",") {
			if a = strings.TrimSpace(a); a != "" {
				clusterAddrs = append(clusterAddrs, a)
			}
		}
	}

	svc := server.New(server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		WarmAbandoned:  *warm,
		JobCapacity:    *jobCap,
		JobTTL:         *jobTTL,
		ClusterWorkers: clusterAddrs,
		Instance:       *instance,
	})
	var handler http.Handler = svc
	if *pprofOn {
		// The service handler owns "/", so the pprof routes are mounted on
		// an explicit mux in front of it rather than the default mux.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		mux.Handle("/", svc)
		handler = mux
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (instance=%s workers=%d queue=%d cache=%d)",
		*addr, svc.Instance(), svc.Stats().Queue.Workers, *queue, *cache)

	select {
	case <-ctx.Done():
		log.Printf("shutdown signal received, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		svc.Close()
		log.Print("drained, exiting")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
