// Compatibility shims: the package's original one-shot entry points,
// kept for existing callers and consolidated here as thin layers over
// the Segmenter session API (New + (*Segmenter).Segment). Every shim
// delegates to a shared package-level session, so legacy callers get
// the session path's buffer pooling and context plumbing for free —
// and there is exactly one code path to optimise and test. The facade
// suite pins each shim byte-identical to a freshly constructed session,
// so delegating (and pooling) cannot change results.
//
// New code should construct its own Segmenter: sessions add
// cancellation, progress observation, per-session defaults, and
// cluster membership, none of which these one-shots can express.
package regiongrow

import (
	"context"
	"fmt"

	"regiongrow/internal/core"
	"regiongrow/internal/dpengine"
	"regiongrow/internal/machine"
	"regiongrow/internal/mpengine"
	"regiongrow/internal/shmengine"
)

// Package-level shim sessions. Sharing one pooled session per engine
// kind means even legacy callers stop reallocating split buffers.
var (
	sequentialSession = mustSession(SequentialEngine)
	nativeSession     = mustSession(NativeParallel)
	serialSession     = newSerialSession()
)

func mustSession(kind EngineKind) *Segmenter {
	s, err := New(kind)
	if err != nil {
		panic(err) // unreachable: both kinds are always constructible
	}
	return s
}

// newSerialSession builds the session behind SegmentSerial. The serial
// merge baseline has no public EngineKind (it exists to be measured
// against, not selected), so its session is assembled directly rather
// than through New; it still runs the shared pooled Segment path.
func newSerialSession() *Segmenter {
	s := &Segmenter{kind: SequentialEngine, eng: core.SerialBaseline{}, pooling: true}
	s.scratch.New = func() any { return new(core.Scratch) }
	return s
}

// Segment runs the sequential reference engine.
//
// Deprecated: use New(SequentialEngine) and (*Segmenter).Segment, which
// adds cancellation, progress observation, and buffer pooling. This shim
// produces byte-identical output.
func Segment(im *Image, cfg Config) (*Segmentation, error) {
	return sequentialSession.Segment(context.Background(), im, cfg)
}

// SegmentSerial runs the serial merge baseline (one merge per iteration —
// the R−1 worst case of the paper's complexity analysis). Use it to
// quantify what parallel mutual merging buys.
func SegmentSerial(im *Image, cfg Config) (*Segmentation, error) {
	return serialSession.Segment(context.Background(), im, cfg)
}

// SegmentNative runs the native shared-memory engine: split, RAG build,
// and merge rounds on a worker pool sized to GOMAXPROCS. Its labels are
// byte-identical to Segment's for every Config; only the wall times
// differ.
//
// Deprecated: use New(NativeParallel) and (*Segmenter).Segment, which
// adds cancellation, progress observation, and buffer pooling. This shim
// produces byte-identical output.
func SegmentNative(im *Image, cfg Config) (*Segmentation, error) {
	return nativeSession.Segment(context.Background(), im, cfg)
}

// NewEngine constructs the engine for a kind.
//
// Deprecated: construct a Segmenter with New instead — it runs the same
// engine with cancellation, progress events, and buffer pooling. NewEngine
// remains for callers that need the raw context-free Engine interface.
func NewEngine(kind EngineKind) (Engine, error) {
	switch kind {
	case SequentialEngine:
		return core.Sequential{}, nil
	case CM2DataParallel8K:
		return dpengine.New(machine.CM2_8K)
	case CM2DataParallel16K:
		return dpengine.New(machine.CM2_16K)
	case CM5DataParallel:
		return dpengine.New(machine.CM5_CMF)
	case CM5LinearPermutation:
		return mpengine.New(machine.CM5_LP)
	case CM5Async:
		return mpengine.New(machine.CM5_Async)
	case NativeParallel:
		return shmengine.New(), nil
	case Distributed:
		return nil, fmt.Errorf("regiongrow: the distributed engine needs worker addresses; construct it with New(Distributed, WithClusterWorkers(addrs))")
	default:
		return nil, fmt.Errorf("regiongrow: unknown engine kind %d", int(kind))
	}
}
