package regiongrow

import (
	"context"
	"strings"
	"testing"

	"regiongrow/internal/core"
)

// TestShimsByteIdenticalToSessions pins the compat.go contract: every
// deprecated one-shot is a pure delegation to the session API, so its
// labels (and region count) must be byte-identical to a freshly
// constructed Segmenter run with the same Config — pooling and session
// reuse inside the shared shim sessions cannot leak into results.
func TestShimsByteIdenticalToSessions(t *testing.T) {
	ctx := context.Background()
	for _, cfg := range []Config{
		{Threshold: 10, Tie: SmallestIDTie},
		{Threshold: 10, Tie: RandomTie, Seed: 42},
	} {
		for _, id := range []PaperImageID{Image2Rects128, Image3Circles128} {
			im := GeneratePaperImage(id)

			seq, err := New(SequentialEngine)
			if err != nil {
				t.Fatal(err)
			}
			want, err := seq.Segment(ctx, im, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Segment(im, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !want.EqualLabels(got) {
				t.Fatalf("%v %+v: Segment shim labels differ from a fresh sequential session", id, cfg)
			}

			nat, err := New(NativeParallel)
			if err != nil {
				t.Fatal(err)
			}
			want, err = nat.Segment(ctx, im, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err = SegmentNative(im, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !want.EqualLabels(got) {
				t.Fatalf("%v %+v: SegmentNative shim labels differ from a fresh native session", id, cfg)
			}

			// The serial baseline has no public EngineKind, so its fresh
			// reference is the engine run directly, unpooled.
			want, err = core.SerialBaseline{}.Segment(im, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err = SegmentSerial(im, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !want.EqualLabels(got) {
				t.Fatalf("%v %+v: SegmentSerial shim labels differ from a fresh baseline run", id, cfg)
			}
		}
	}
}

// TestEnumerationsRoundTrip: every value the All* enumerations list
// parses back to itself through the matching Parse function — upper,
// lower, and mixed case — so the enumerations and the parsers cannot
// drift apart.
func TestEnumerationsRoundTrip(t *testing.T) {
	for _, k := range parseableEngineKinds() {
		for _, s := range []string{k.String(), strings.ToUpper(k.String())} {
			got, err := ParseEngineKind(s)
			if err != nil || got != k {
				t.Errorf("ParseEngineKind(%q) = %v, %v; want %v", s, got, err, k)
			}
		}
	}
	if len(AllTiePolicies()) != 3 {
		t.Fatalf("AllTiePolicies() has %d entries, want 3", len(AllTiePolicies()))
	}
	for _, p := range AllTiePolicies() {
		for _, s := range []string{p.String(), strings.ToUpper(p.String())} {
			got, err := ParseTiePolicy(s)
			if err != nil || got != p {
				t.Errorf("ParseTiePolicy(%q) = %v, %v; want %v", s, got, err, p)
			}
		}
	}
	ids := AllPaperImageIDs()
	if len(ids) != 6 {
		t.Fatalf("AllPaperImageIDs() has %d entries, want 6", len(ids))
	}
	for i, id := range ids {
		if id != AllPaperImages()[i] {
			t.Fatalf("AllPaperImageIDs()[%d] = %v differs from AllPaperImages()", i, id)
		}
		for _, s := range []string{id.ShortName(), strings.ToUpper(id.ShortName())} {
			got, err := ParsePaperImageID(s)
			if err != nil || got != id {
				t.Errorf("ParsePaperImageID(%q) = %v, %v; want %v", s, got, err, id)
			}
		}
	}
}

// TestParseErrorsEnumerateChoices: a failed parse names every valid
// choice, derived from the same enumeration the parser matches against.
func TestParseErrorsEnumerateChoices(t *testing.T) {
	if _, err := ParseEngineKind("warp-drive"); err == nil {
		t.Fatal("bogus engine parsed")
	} else {
		for _, k := range parseableEngineKinds() {
			if !strings.Contains(err.Error(), k.String()) {
				t.Errorf("ParseEngineKind error omits %q: %v", k, err)
			}
		}
	}
	if _, err := ParseTiePolicy("coin-flip"); err == nil {
		t.Fatal("bogus tie policy parsed")
	} else {
		for _, p := range AllTiePolicies() {
			if !strings.Contains(err.Error(), p.String()) {
				t.Errorf("ParseTiePolicy error omits %q: %v", p, err)
			}
		}
	}
	if _, err := ParsePaperImageID("image9"); err == nil {
		t.Fatal("bogus paper image parsed")
	} else {
		for _, id := range AllPaperImageIDs() {
			if !strings.Contains(err.Error(), id.ShortName()) {
				t.Errorf("ParsePaperImageID error omits %q: %v", id.ShortName(), err)
			}
		}
	}
}
