package regiongrow

import (
	"context"
	"strings"
	"testing"

	"regiongrow/internal/distengine/disttest"
)

// startWorkerCluster launches n in-process distengine workers, as
// cmd/regiongrow-worker would run them; see disttest.StartCluster.
func startWorkerCluster(t testing.TB, n int) []string {
	return disttest.StartCluster(t, n)
}

// TestDistributedSegmenter: the Distributed kind runs through the same
// Segmenter session path as every other engine and produces labels
// byte-identical to the sequential engine across tie policies.
func TestDistributedSegmenter(t *testing.T) {
	addrs := startWorkerCluster(t, 4)
	sess, err := New(Distributed, WithClusterWorkers(addrs))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Kind() != Distributed {
		t.Errorf("Kind() = %v, want Distributed", sess.Kind())
	}
	if !strings.HasPrefix(sess.Engine().Name(), "distributed/") {
		t.Errorf("Engine().Name() = %q", sess.Engine().Name())
	}
	im := GeneratePaperImage(Image2Rects128)
	for _, tie := range []TiePolicy{SmallestIDTie, LargestIDTie, RandomTie} {
		cfg := Config{Threshold: 10, Tie: tie, Seed: 3}
		want, err := Segment(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Segment(context.Background(), im, cfg)
		if err != nil {
			t.Fatalf("tie %v: %v", tie, err)
		}
		if !got.EqualLabels(want) {
			t.Errorf("tie %v: distributed labels differ from sequential", tie)
		}
		if err := Validate(got, im, cfg); err != nil {
			t.Errorf("tie %v: %v", tie, err)
		}
		if got.Comm == nil || got.Comm.Messages == 0 {
			t.Errorf("tie %v: no communication counters: %+v", tie, got.Comm)
		}
	}
}

// TestDistributedConstruction: the Distributed kind demands cluster
// addresses, and the cluster option rejects other kinds.
func TestDistributedConstruction(t *testing.T) {
	if _, err := New(Distributed); err == nil || !strings.Contains(err.Error(), "WithClusterWorkers") {
		t.Errorf("New(Distributed) = %v, want a WithClusterWorkers hint", err)
	}
	if _, err := New(Distributed, WithClusterWorkers(nil)); err == nil {
		t.Error("New(Distributed, WithClusterWorkers(nil)) succeeded")
	}
	if _, err := New(SequentialEngine, WithClusterWorkers([]string{"x:1"})); err == nil ||
		!strings.Contains(err.Error(), "Distributed") {
		t.Errorf("WithClusterWorkers on sequential = %v, want a kind error", err)
	}
	if _, err := NewEngine(Distributed); err == nil || !strings.Contains(err.Error(), "WithClusterWorkers") {
		t.Errorf("NewEngine(Distributed) = %v, want a WithClusterWorkers hint", err)
	}
}

// TestClusterMembership: the Segmenter's membership surface — list,
// join, leave, health — mutates a live Distributed session (next job
// picks up the change), guards the last worker, and rejects every other
// engine kind.
func TestClusterMembership(t *testing.T) {
	addrs := startWorkerCluster(t, 2)
	sess, err := New(Distributed, WithClusterWorkers(addrs))
	if err != nil {
		t.Fatal(err)
	}
	members, err := sess.ClusterMembers()
	if err != nil || len(members) != 2 {
		t.Fatalf("ClusterMembers = %v, %v; want the 2 seeds", members, err)
	}

	extra := startWorkerCluster(t, 1)[0]
	if changed, err := sess.ClusterJoin(extra); err != nil || !changed {
		t.Fatalf("ClusterJoin(%s) = %v, %v; want changed", extra, changed, err)
	}
	if changed, err := sess.ClusterJoin(extra); err != nil || changed {
		t.Fatalf("duplicate ClusterJoin = %v, %v; want unchanged", changed, err)
	}
	if _, err := sess.ClusterJoin(""); err == nil {
		t.Error("ClusterJoin(\"\") succeeded")
	}

	// The joined worker serves the next job of the live session.
	im := GeneratePaperImage(Image3Circles128)
	cfg := Config{Threshold: 10, Tie: SmallestIDTie}
	want, err := Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.Segment(context.Background(), im, cfg)
	if err != nil {
		t.Fatalf("post-join segment: %v", err)
	}
	if !got.EqualLabels(want) {
		t.Error("post-join labels differ from sequential")
	}

	health, err := sess.ClusterHealth(context.Background())
	if err != nil || len(health) != 3 {
		t.Fatalf("ClusterHealth = %v, %v; want 3 probes", health, err)
	}
	for _, h := range health {
		if !h.Healthy {
			t.Errorf("worker %s probed unhealthy", h.Addr)
		}
	}

	if changed, err := sess.ClusterLeave(extra); err != nil || !changed {
		t.Fatalf("ClusterLeave(%s) = %v, %v; want changed", extra, changed, err)
	}
	if changed, err := sess.ClusterLeave("never-was:1"); err != nil || changed {
		t.Fatalf("ClusterLeave of a non-member = %v, %v; want unchanged", changed, err)
	}
	if changed, err := sess.ClusterLeave(addrs[0]); err != nil || !changed {
		t.Fatalf("ClusterLeave(%s) = %v, %v; want changed", addrs[0], changed, err)
	}
	if _, err := sess.ClusterLeave(addrs[1]); err == nil {
		t.Error("removing the last worker succeeded")
	}

	// Every other engine kind refuses the membership surface.
	seq, err := New(SequentialEngine)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seq.ClusterMembers(); err == nil {
		t.Error("ClusterMembers on sequential succeeded")
	}
	if _, err := seq.ClusterHealth(context.Background()); err == nil {
		t.Error("ClusterHealth on sequential succeeded")
	}
}

// TestClusterRow: the harness's distributed table row validates and
// reports wall times under the HostCluster config.
func TestClusterRow(t *testing.T) {
	addrs := startWorkerCluster(t, 2)
	row, err := ClusterRow(context.Background(), addrs, Image1NestedRects128, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if row.Config.Short() != "dist" {
		t.Errorf("row config %v (%s), want HostCluster/dist", row.Config, row.Config.Short())
	}
	if row.MergeIters == 0 || row.WallSplit <= 0 {
		t.Errorf("row not filled: %+v", row)
	}
}
