package regiongrow_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"regiongrow"
)

// The redesigned flow: construct a reusable Segmenter session, then run
// it with a context. The session pools its scratch buffers, so calling it
// repeatedly on same-size images is the efficient serving pattern.
func ExampleSegmenter() {
	s, err := regiongrow.New(regiongrow.NativeParallel)
	if err != nil {
		log.Fatal(err)
	}
	im := regiongrow.GeneratePaperImage(regiongrow.Image3Circles128)
	seg, err := s.Segment(context.Background(), im, regiongrow.Config{
		Threshold: 10,
		Tie:       regiongrow.RandomTie,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("final regions:", seg.FinalRegions)
	// Output:
	// final regions: 11
}

// Cancellation is cooperative and prompt: every engine checks the context
// at split-pass and merge-round boundaries. Here an observer cancels the
// run as soon as the split stage finishes, so the merge never starts and
// the call returns ctx.Err().
func ExampleSegmenter_cancellation() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := regiongrow.New(regiongrow.SequentialEngine,
		regiongrow.WithObserver(regiongrow.ObserverFunc(func(ev regiongrow.StageEvent) {
			if ev.Kind == regiongrow.EventSplitDone {
				cancel()
			}
		})))
	if err != nil {
		log.Fatal(err)
	}
	im := regiongrow.GeneratePaperImage(regiongrow.Image2Rects128)
	_, err = s.Segment(ctx, im, regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1})
	fmt.Println("cancelled:", errors.Is(err, context.Canceled))
	// Output:
	// cancelled: true
}

// Session options are defaults: a zero Config adopts them, and the
// observer streams typed stage events.
func ExampleSegmenter_observer() {
	var iterations int
	obs := regiongrow.ObserverFunc(func(ev regiongrow.StageEvent) {
		if ev.Kind == regiongrow.EventMergeIteration {
			iterations++
		}
	})
	s, err := regiongrow.New(regiongrow.SequentialEngine,
		regiongrow.WithThreshold(10),
		regiongrow.WithTie(regiongrow.SmallestIDTie),
		regiongrow.WithObserver(obs))
	if err != nil {
		log.Fatal(err)
	}
	im := regiongrow.GeneratePaperImage(regiongrow.Image1NestedRects128)
	seg, err := s.Segment(context.Background(), im, regiongrow.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("observed == reported:", iterations == seg.MergeIterations)
	// Output:
	// observed == reported: true
}

// The basic flow: generate an evaluation image, segment it with the
// sequential engine, inspect the result.
func ExampleSegment() {
	im := regiongrow.GeneratePaperImage(regiongrow.Image2Rects128)
	seg, err := regiongrow.Segment(im, regiongrow.Config{
		Threshold: 10,
		Tie:       regiongrow.RandomTie,
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("split iterations:", seg.SplitIterations)
	fmt.Println("final regions:", seg.FinalRegions)
	// Output:
	// split iterations: 4
	// final regions: 7
}

// Simulated machine engines report the stage times the paper's tables
// measure; the segmentation itself is identical across engines.
func ExampleNewEngine() {
	im := regiongrow.GeneratePaperImage(regiongrow.Image2Rects128)
	cfg := regiongrow.Config{Threshold: 10, Tie: regiongrow.SmallestIDTie}

	ref, err := regiongrow.Segment(im, cfg)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := regiongrow.NewEngine(regiongrow.CM5Async)
	if err != nil {
		log.Fatal(err)
	}
	seg, err := eng.Segment(im, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("same labels:", ref.EqualLabels(seg))
	fmt.Println("simulated merge time > 0:", seg.MergeSim > 0)
	// Output:
	// same labels: true
	// simulated merge time > 0: true
}

// Region statistics derive areas, centroids, perimeters, and the final
// adjacency graph from any segmentation.
func ExampleComputeRegionStats() {
	im := regiongrow.GeneratePaperImage(regiongrow.Image1NestedRects128)
	seg, err := regiongrow.Segment(im, regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	stats := regiongrow.ComputeRegionStats(seg, im)
	sum := regiongrow.SummarizeRegions(stats)
	fmt.Println("regions:", sum.Regions)
	fmt.Println("adjacencies:", sum.TotalEdges)
	// Output:
	// regions: 2
	// adjacencies: 1
}

// Validate checks the algorithm's postconditions on any segmentation.
func ExampleValidate() {
	im := regiongrow.GeneratePaperImage(regiongrow.Image6Tool256)
	cfg := regiongrow.DefaultConfig()
	seg, err := regiongrow.Segment(im, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("valid:", regiongrow.Validate(seg, im, cfg) == nil)
	// Output:
	// valid: true
}
