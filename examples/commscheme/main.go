// Commscheme: compare the paper's two irregular communication schemes on
// the CM-5 message-passing implementation — synchronous Linear
// Permutation (LP) against asynchronous direct sends — across all six
// evaluation images (the paper's claim C2: "Asynchronous communication on
// the CM-5 is faster than Linear Permutation").
package main

import (
	"fmt"
	"log"

	"regiongrow"
)

func main() {
	lpEng, err := regiongrow.NewEngine(regiongrow.CM5LinearPermutation)
	if err != nil {
		log.Fatal(err)
	}
	asEng, err := regiongrow.NewEngine(regiongrow.CM5Async)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-50s %10s %10s %8s %10s %10s\n",
		"image", "LP merge", "Async", "speedup", "LP steps", "messages")
	var totLP, totAsync float64
	for _, id := range regiongrow.AllPaperImages() {
		im := regiongrow.GeneratePaperImage(id)
		cfg := regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 2}

		lp, err := lpEng.Segment(im, cfg)
		if err != nil {
			log.Fatal(err)
		}
		as, err := asEng.Segment(im, cfg)
		if err != nil {
			log.Fatal(err)
		}
		// Same seed ⇒ same node program behaviour; only the exchange
		// scheme differs, so the segmentations are identical.
		if !lp.EqualLabels(as) {
			log.Fatal("schemes disagree on the segmentation")
		}
		fmt.Printf("%-50s %9.3fs %9.3fs %7.2fx %10d %10d\n",
			id, lp.MergeSim, as.MergeSim, lp.MergeSim/as.MergeSim,
			lp.Comm.LPSteps, as.Comm.Messages)
		totLP += lp.MergeSim
		totAsync += as.MergeSim
	}
	fmt.Printf("%-50s %9.3fs %9.3fs %7.2fx\n", "total", totLP, totAsync, totLP/totAsync)

	fmt.Println()
	fmt.Println("LP pays Q−1 ring steps per exchange whether or not a node has")
	fmt.Println("data to send — with 32 nodes that is 31 mandatory steps — while")
	fmt.Println("the async scheme sends only the messages that exist. The paper")
	fmt.Println("observed the same ordering on the real CM-5.")
}
