// Evolution: visualise the paper's characterisation of region growing as
// an *adaptive irregular problem* — "a dynamic behavior that starts with
// a high degree of parallelism that very rapidly diminishes". The curve
// of live regions (and merges per iteration) across the merge stage shows
// the collapse, and how the tie policy changes its speed; the serial
// baseline shows the degenerate case.
package main

import (
	"fmt"
	"log"
	"strings"

	"regiongrow"
)

func main() {
	im := regiongrow.GeneratePaperImage(regiongrow.Image3Circles128)

	type run struct {
		name string
		seg  *regiongrow.Segmentation
	}
	var runs []run

	for _, p := range []struct {
		name string
		tie  regiongrow.TiePolicy
	}{
		{"random ties", regiongrow.RandomTie},
		{"smallest-id ties", regiongrow.SmallestIDTie},
	} {
		seg, err := regiongrow.Segment(im, regiongrow.Config{Threshold: 10, Tie: p.tie, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, run{p.name, seg})
	}
	serial, err := regiongrow.SegmentSerial(im, regiongrow.Config{Threshold: 10})
	if err != nil {
		log.Fatal(err)
	}
	runs = append(runs, run{"serial baseline (one merge/iter)", serial})

	for _, r := range runs {
		fmt.Printf("%s: %d squares -> %d regions in %d merge iterations\n",
			r.name, r.seg.SquaresAfterSplit, r.seg.FinalRegions, r.seg.MergeIterations)
		plotDecay(r.seg)
		fmt.Println()
	}

	fmt.Println("The random policy keeps nearly half the live regions merging")
	fmt.Println("every iteration until few remain; ID-based ties serialise the")
	fmt.Println("work into long chains; and the serial baseline is the R-1 lower")
	fmt.Println("bound of the paper's complexity section.")
}

// plotDecay draws live-region count per merge iteration on a log-free
// ASCII scale, sampling long runs down to at most 24 rows.
func plotDecay(seg *regiongrow.Segmentation) {
	live := seg.SquaresAfterSplit
	counts := []int{live}
	for _, m := range seg.MergesPerIter {
		live -= m
		counts = append(counts, live)
	}
	step := 1
	if len(counts) > 24 {
		step = (len(counts) + 23) / 24
	}
	const width = 50
	maxCount := counts[0]
	for i := 0; i < len(counts); i += step {
		bar := counts[i] * width / maxCount
		fmt.Printf("  iter %4d |%-*s| %d live\n", i, width, strings.Repeat("*", bar), counts[i])
	}
}
