// Quickstart: segment one of the paper's images with the default
// (sequential) engine and print what the algorithm found.
package main

import (
	"fmt"
	"log"

	"regiongrow"
)

func main() {
	// A 128×128 scene of ten circles on a dark background.
	im := regiongrow.GeneratePaperImage(regiongrow.Image3Circles128)

	// Pixel-range homogeneity threshold T=10, random tie-breaking as the
	// paper recommends, fixed seed for a reproducible run.
	cfg := regiongrow.Config{
		Threshold: 10,
		Tie:       regiongrow.RandomTie,
		Seed:      1,
	}
	seg, err := regiongrow.Segment(im, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("image:  %dx%d pixels\n", im.W, im.H)
	fmt.Printf("split:  %d iterations -> %d homogeneous squares\n",
		seg.SplitIterations, seg.SquaresAfterSplit)
	fmt.Printf("merge:  %d iterations -> %d regions\n",
		seg.MergeIterations, seg.FinalRegions)

	fmt.Println("regions (id = linear index of the region's first pixel):")
	for _, r := range seg.Regions {
		x, y := im.Coord(int(r.ID))
		fmt.Printf("  region %6d at (%3d,%3d): %6d px, intensity %v\n",
			r.ID, x, y, r.Area, r.IV)
	}

	// Every engine run can be checked against the algorithm's
	// postconditions: homogeneous connected regions, none still mergeable.
	if err := regiongrow.Validate(seg, im, cfg); err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Println("validation: ok")
}
