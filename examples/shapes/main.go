// Shapes: run the full evaluation workload — all six paper images on all
// five simulated machine configurations — and render each segmentation as
// ASCII art so the region structure is visible in a terminal.
package main

import (
	"fmt"
	"log"
	"os"

	"regiongrow"
)

func main() {
	for _, id := range regiongrow.AllPaperImages() {
		exp, err := regiongrow.RunExperiment(id, regiongrow.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		regiongrow.WriteTable(os.Stdout, exp)
		fmt.Println()

		im := regiongrow.GeneratePaperImage(id)
		seg, err := regiongrow.Segment(im, regiongrow.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		render(seg, im)
		fmt.Println()
	}
}

// render draws the segmentation downsampled to a 32×32 character grid,
// one letter per region (by size rank; '.' is the largest region).
func render(seg *regiongrow.Segmentation, im *regiongrow.Image) {
	glyphs := []byte(".#oxABCDEFGHIJKLMNOPQRSTUVWXYZ*+%@")
	// Rank regions by area so the background gets '.'.
	rank := make(map[int32]int, len(seg.Regions))
	order := append([]regiongrow.Segmentation{}, *seg)[0].Regions
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].Area > order[i].Area {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for i, r := range order {
		rank[r.ID] = i
	}
	const cells = 32
	sy, sx := im.H/cells, im.W/cells
	for cy := 0; cy < cells; cy++ {
		line := make([]byte, cells)
		for cx := 0; cx < cells; cx++ {
			lab := seg.Labels[(cy*sy+sy/2)*im.W+cx*sx+sx/2]
			line[cx] = glyphs[rank[lab]%len(glyphs)]
		}
		fmt.Printf("    %s\n", line)
	}
}
