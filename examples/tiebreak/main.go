// Tiebreak: reproduce the paper's key algorithmic observation — breaking
// merge ties at random instead of by smallest/largest region ID removes
// the serialization of merges and cuts merge iterations by an order of
// magnitude ("Resolving Ties at Random").
package main

import (
	"fmt"
	"log"

	"regiongrow"
)

func main() {
	policies := []struct {
		name string
		tie  regiongrow.TiePolicy
	}{
		{"smallest-id", regiongrow.SmallestIDTie},
		{"largest-id", regiongrow.LargestIDTie},
		{"random", regiongrow.RandomTie},
	}

	fmt.Printf("%-50s %-12s %12s %12s %12s\n",
		"image", "tie policy", "merge iters", "merges/iter", "regions")
	for _, id := range regiongrow.AllPaperImages() {
		im := regiongrow.GeneratePaperImage(id)
		for _, p := range policies {
			cfg := regiongrow.Config{Threshold: 10, Tie: p.tie, Seed: 1}
			seg, err := regiongrow.Segment(im, cfg)
			if err != nil {
				log.Fatal(err)
			}
			mpi := 0.0
			if seg.MergeIterations > 0 {
				mpi = float64(seg.SquaresAfterSplit-seg.FinalRegions) / float64(seg.MergeIterations)
			}
			fmt.Printf("%-50s %-12s %12d %12.2f %12d\n",
				id, p.name, seg.MergeIterations, mpi, seg.FinalRegions)
		}
	}

	fmt.Println()
	fmt.Println("The ID-based policies force long merge chains (a region column")
	fmt.Println("merges one neighbour per iteration); the random policy pairs")
	fmt.Println("regions all over the image simultaneously, which is why the")
	fmt.Println("paper adopted it on the Connection Machine.")

	// The distribution of merges per iteration tells the same story.
	im := regiongrow.GeneratePaperImage(regiongrow.Image1NestedRects128)
	for _, p := range []regiongrow.TiePolicy{regiongrow.SmallestIDTie, regiongrow.RandomTie} {
		seg, err := regiongrow.Segment(im, regiongrow.Config{Threshold: 10, Tie: p, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nimage 1, %v: merges per iteration (first 20):\n  ", p)
		for i, m := range seg.MergesPerIter {
			if i == 20 {
				fmt.Print("…")
				break
			}
			fmt.Printf("%d ", m)
		}
		fmt.Println()
	}
}
