package regiongrow

import (
	"strings"
	"testing"
)

// TestSegmentNativeFacade: the facade-level native entry point matches the
// sequential reference on a paper image, and the native engine kind's
// MachineConfig reports no simulated machine.
func TestSegmentNativeFacade(t *testing.T) {
	im := GeneratePaperImage(Image3Circles128)
	cfg := DefaultConfig()
	want, err := Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SegmentNative(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualLabels(got) {
		t.Fatal("native labels differ from sequential")
	}
	if got.FinalRegions != 11 {
		t.Fatalf("native regions = %d, want 11", got.FinalRegions)
	}
	if _, ok := NativeParallel.MachineConfig(); ok {
		t.Fatal("NativeParallel reports a simulated machine config")
	}
	if err := Validate(got, im, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentSerial(t *testing.T) {
	im := GeneratePaperImage(Image2Rects128)
	seg, err := SegmentSerial(im, Config{Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if seg.FinalRegions != 7 {
		t.Fatalf("serial baseline regions = %d", seg.FinalRegions)
	}
	if err := Validate(seg, im, Config{Threshold: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionStatsFacade(t *testing.T) {
	im := GeneratePaperImage(Image2Rects128)
	seg, err := Segment(im, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rs := ComputeRegionStats(seg, im)
	if len(rs) != seg.FinalRegions {
		t.Fatalf("stats for %d regions, segmentation has %d", len(rs), seg.FinalRegions)
	}
	total := 0
	for _, r := range rs {
		total += r.Area
	}
	if total != im.W*im.H {
		t.Fatalf("areas cover %d of %d pixels", total, im.W*im.H)
	}
	sum := SummarizeRegions(rs)
	if sum.Regions != 7 || sum.MaxRange > 10 {
		t.Fatalf("summary = %+v", sum)
	}

	var dot, js strings.Builder
	if err := WriteRegionDOT(&dot, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "graph rag") {
		t.Fatal("DOT output malformed")
	}
	if err := WriteRegionJSON(&js, rs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"area"`) {
		t.Fatal("JSON output malformed")
	}
}

func TestRecolour(t *testing.T) {
	im := GeneratePaperImage(Image1NestedRects128)
	seg, err := Segment(im, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rc := Recolour(seg, im)
	if rc.W != im.W || rc.H != im.H {
		t.Fatal("recoloured dims wrong")
	}
	// Exactly as many distinct shades as regions (intervals are disjoint
	// on this clean image).
	shades := map[uint8]bool{}
	for _, p := range rc.Pix {
		shades[p] = true
	}
	if len(shades) != seg.FinalRegions {
		t.Fatalf("%d shades for %d regions", len(shades), seg.FinalRegions)
	}
	// Pixels of one region share one shade.
	for i, lab := range seg.Labels {
		if rc.Pix[i] != rc.Pix[lab] {
			t.Fatal("region not uniformly recoloured")
		}
	}
}

func TestSegmentationInvariantUnderFlips(t *testing.T) {
	// The region structure of a paper image must be preserved under
	// horizontal/vertical mirroring and rotation: same number of regions
	// with the same multiset of areas.
	im := GeneratePaperImage(Image2Rects128)
	base, err := Segment(im, Config{Threshold: 10, Tie: SmallestIDTie})
	if err != nil {
		t.Fatal(err)
	}
	for name, tr := range map[string]*Image{
		"flipH":    im.FlipH(),
		"flipV":    im.FlipV(),
		"rotate90": im.Rotate90(),
	} {
		seg, err := Segment(tr, Config{Threshold: 10, Tie: SmallestIDTie})
		if err != nil {
			t.Fatal(err)
		}
		if seg.FinalRegions != base.FinalRegions {
			t.Errorf("%s: %d regions, want %d", name, seg.FinalRegions, base.FinalRegions)
		}
		if !sameAreaMultiset(base, seg) {
			t.Errorf("%s: region area multiset changed", name)
		}
	}
}

func sameAreaMultiset(a, b *Segmentation) bool {
	count := map[int]int{}
	for _, r := range a.Regions {
		count[r.Area]++
	}
	for _, r := range b.Regions {
		count[r.Area]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestUpscaledImageSameStructure(t *testing.T) {
	// Pixel replication must preserve the region structure (areas scale
	// by the square of the factor).
	im := GeneratePaperImage(Image2Rects128)
	up, err := im.Upsample(2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Segment(im, Config{Threshold: 10, Tie: SmallestIDTie})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Segment(up, Config{Threshold: 10, Tie: SmallestIDTie})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalRegions != b.FinalRegions {
		t.Fatalf("upsampled image: %d regions, want %d", b.FinalRegions, a.FinalRegions)
	}
}
