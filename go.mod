module regiongrow

go 1.24.0
