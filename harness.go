package regiongrow

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"regiongrow/internal/machine"
	"regiongrow/internal/stats"
)

// RunProfiled executes fn under optional pprof capture: a CPU profile
// covering exactly fn's execution when cpuPath is non-empty, and a post-GC
// heap profile taken after fn returns when memPath is non-empty. Either
// path may be empty to skip that profile; with both empty fn just runs.
// This is the capture path the bench harness and cmd/benchtab share, so
// the profiles CI archives are taken the same way as the ones used to
// rank split, RAG build, and merge during optimisation work.
//
// fn's error is returned as-is once capture is complete; profile-file
// errors are only reported when fn itself succeeded.
func RunProfiled(cpuPath, memPath string, fn func() error) error {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return fmt.Errorf("regiongrow: creating CPU profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("regiongrow: starting CPU profile: %w", err)
		}
		cpuFile = f
	}
	err := fn()
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if cerr := cpuFile.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("regiongrow: closing CPU profile: %w", cerr)
		}
	}
	if memPath != "" {
		runtime.GC() // settle live heap so the profile reflects retained memory
		f, ferr := os.Create(memPath)
		if ferr != nil {
			if err == nil {
				err = fmt.Errorf("regiongrow: creating heap profile: %w", ferr)
			}
			return err
		}
		werr := pprof.Lookup("heap").WriteTo(f, 0)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil && err == nil {
			err = fmt.Errorf("regiongrow: writing heap profile: %w", werr)
		}
	}
	return err
}

// Experiment is one image's results across all five machine
// configurations — the unit the paper's tables report.
type Experiment = stats.Experiment

// Row is one configuration's line in an experiment table.
type Row = stats.Row

// RunExperiment executes one of the paper's six experiments: it generates
// the image, runs all five machine configurations, and returns the table.
// Each configuration uses a distinct derived seed for the Random tie
// policy, reflecting the paper's observation that merge iteration counts
// vary across implementations.
func RunExperiment(id PaperImageID, cfg Config) (Experiment, error) {
	return RunExperimentContext(context.Background(), id, cfg)
}

// RunExperimentContext is RunExperiment under a context: each of the five
// engine runs goes through a Segmenter, so cancelling ctx (or exceeding a
// deadline, as cmd/benchtab's -timeout does) aborts the in-flight run
// within one iteration and returns ctx.Err().
func RunExperimentContext(ctx context.Context, id PaperImageID, cfg Config) (Experiment, error) {
	im := GeneratePaperImage(id)
	exp := Experiment{Image: id}
	for _, kind := range AllEngineKinds() {
		eng, err := New(kind)
		if err != nil {
			return exp, err
		}
		runCfg := ExperimentConfig(kind, cfg)
		seg, err := eng.Segment(ctx, im, runCfg)
		if err != nil {
			return exp, fmt.Errorf("regiongrow: %v on %v: %w", kind, id, err)
		}
		if err := Validate(seg, im, runCfg); err != nil {
			return exp, fmt.Errorf("regiongrow: %v on %v produced invalid segmentation: %w", kind, id, err)
		}
		mc, _ := kind.MachineConfig()
		exp.Rows = append(exp.Rows, stats.Row{
			Config:     mc,
			SplitSecs:  seg.SplitSim,
			SplitIters: seg.SplitIterations,
			MergeSecs:  seg.MergeSim,
			MergeIters: seg.MergeIterations,
			WallSplit:  seg.SplitWall.Seconds(),
			WallMerge:  seg.MergeWall.Seconds(),
		})
		exp.SquaresAfterSplit = seg.SquaresAfterSplit
		exp.FinalRegions = seg.FinalRegions
	}
	return exp, nil
}

// ExperimentConfig returns the exact per-row Config RunExperiment uses
// for an engine kind. Rows that run the same program share random draws —
// the paper executed one CM Fortran binary on the CM-2s and the CM-5, and
// one F77+CMMD binary under both schemes — so under the Random tie policy
// the seed is derived from the kind's programming model, not the machine:
// iteration counts then vary between models (as in the paper's tables)
// while same-program rows stay comparable. Deterministic ties, and kinds
// that model no machine, use cfg unchanged. Remote row sources
// (cmd/benchtab -server) apply it so client-driven experiments match
// local ones row for row.
func ExperimentConfig(kind EngineKind, cfg Config) Config {
	if cfg.Tie != RandomTie {
		return cfg
	}
	mc, ok := kind.MachineConfig()
	if !ok {
		return cfg
	}
	model := uint64(1)
	if mc.IsMessagePassing() {
		model = 2
	}
	cfg.Seed = cfg.Seed*1000003 + model
	return cfg
}

// NativeRow runs the native shared-memory engine on one paper image and
// returns its table row. The simulated-seconds columns are zero — the
// native engine models no machine — and the host timings land in
// WallSplit/WallMerge. The row uses the seed exactly as configured (the
// native engine's segmentations must match the sequential engine's for
// equal seeds, so there is no per-model seed derivation).
func NativeRow(id PaperImageID, cfg Config) (Row, error) {
	return NativeRowContext(context.Background(), id, cfg)
}

// NativeRowContext is NativeRow under a context.
func NativeRowContext(ctx context.Context, id PaperImageID, cfg Config) (Row, error) {
	im := GeneratePaperImage(id)
	seg, err := nativeSession.Segment(ctx, im, cfg)
	if err != nil {
		return Row{}, fmt.Errorf("regiongrow: native on %v: %w", id, err)
	}
	if err := Validate(seg, im, cfg); err != nil {
		return Row{}, fmt.Errorf("regiongrow: native on %v produced invalid segmentation: %w", id, err)
	}
	return Row{
		Config:     machine.HostNative,
		SplitIters: seg.SplitIterations,
		MergeIters: seg.MergeIterations,
		WallSplit:  seg.SplitWall.Seconds(),
		WallMerge:  seg.MergeWall.Seconds(),
	}, nil
}

// ClusterRow runs the distributed engine against the given
// regiongrow-worker addresses on one paper image and returns its table
// row. Like NativeRow, the simulated-seconds columns are zero (the
// distributed engine models no machine) and the real wall timings land in
// WallSplit/WallMerge; the seed is used exactly as configured because the
// distributed labels must match the sequential engine's.
func ClusterRow(ctx context.Context, addrs []string, id PaperImageID, cfg Config) (Row, error) {
	sess, err := New(Distributed, WithClusterWorkers(addrs))
	if err != nil {
		return Row{}, err
	}
	im := GeneratePaperImage(id)
	seg, err := sess.Segment(ctx, im, cfg)
	if err != nil {
		return Row{}, fmt.Errorf("regiongrow: dist on %v: %w", id, err)
	}
	if err := Validate(seg, im, cfg); err != nil {
		return Row{}, fmt.Errorf("regiongrow: dist on %v produced invalid segmentation: %w", id, err)
	}
	return Row{
		Config:     machine.HostCluster,
		SplitIters: seg.SplitIterations,
		MergeIters: seg.MergeIterations,
		WallSplit:  seg.SplitWall.Seconds(),
		WallMerge:  seg.MergeWall.Seconds(),
	}, nil
}

// RunExperimentWithNative runs the paper's five rows (RunExperiment) and
// appends a sixth row for the native shared-memory engine. The paper's
// tables keep their five-row shape by default; callers opt into the extra
// row with this helper.
func RunExperimentWithNative(id PaperImageID, cfg Config) (Experiment, error) {
	return RunExperimentWithNativeContext(context.Background(), id, cfg)
}

// RunExperimentWithNativeContext is RunExperimentWithNative under a
// context.
func RunExperimentWithNativeContext(ctx context.Context, id PaperImageID, cfg Config) (Experiment, error) {
	exp, err := RunExperimentContext(ctx, id, cfg)
	if err != nil {
		return exp, err
	}
	row, err := NativeRowContext(ctx, id, cfg)
	if err != nil {
		return exp, err
	}
	exp.Rows = append(exp.Rows, row)
	return exp, nil
}

// DefaultConfig is the evaluation configuration: threshold 10, random
// tie-breaking (the paper's recommended policy), seed 1.
func DefaultConfig() Config {
	return Config{Threshold: 10, Tie: RandomTie, Seed: 1}
}

// RunAllExperiments runs the six experiments with the default
// configuration.
func RunAllExperiments() ([]Experiment, error) {
	return RunAllExperimentsContext(context.Background())
}

// RunAllExperimentsContext runs the six experiments with the default
// configuration under a context; cancellation aborts the in-flight run
// and returns ctx.Err().
func RunAllExperimentsContext(ctx context.Context) ([]Experiment, error) {
	var out []Experiment
	for _, id := range AllPaperImages() {
		exp, err := RunExperimentContext(ctx, id, DefaultConfig())
		if err != nil {
			return nil, err
		}
		out = append(out, exp)
	}
	return out, nil
}

// WriteTable renders one experiment in the paper's table layout.
func WriteTable(w io.Writer, exp Experiment) { stats.RenderTable(w, exp) }

// WriteFigure3 renders the merge-time comparison bar chart over all
// experiments (the paper's Figure 3).
func WriteFigure3(w io.Writer, exps []Experiment) {
	stats.BarChart(w, "Figure 3: Comparison of Times Taken by the Merge Stage (Images 1-6)", exps)
}

// CheckOrderings verifies the paper's qualitative merge-time orderings
// (async < LP < CM Fortran on CM-5; CM2-16K < CM2-8K < CM5 CM Fortran)
// and returns any violations.
func CheckOrderings(exps []Experiment) []string { return stats.Orderings(exps) }
