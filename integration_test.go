package regiongrow

import (
	"fmt"
	"testing"

	"regiongrow/internal/core"
	"regiongrow/internal/dpengine"
	"regiongrow/internal/machine"
	"regiongrow/internal/mpengine"
	"regiongrow/internal/mpvm"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/shmengine"
)

// TestFullMatrixSmallImages drives every engine (plus custom node counts
// and both schemes) across a grid of image shapes, thresholds, and
// policies, requiring byte-identical segmentations throughout. This is
// the repository's broadest integration test.
func TestFullMatrixSmallImages(t *testing.T) {
	type img struct {
		name string
		im   *pixmap.Image
	}
	images := []img{
		{"uniform32", pixmap.Uniform(32, 80)},
		{"checker32", pixmap.Checkerboard(32, 0, 255)},
		{"gradient64", pixmap.Gradient(64, 255)},
		{"random64", maskLow(pixmap.Random(64, 42))},
		{"rect64x32", rectScene(64, 32)},
	}
	engines := []core.Engine{}
	for _, mc := range []machine.ConfigID{machine.CM2_8K, machine.CM5_CMF} {
		e, err := dpengine.New(mc)
		if err != nil {
			t.Fatal(err)
		}
		engines = append(engines, e)
	}
	engines = append(engines,
		mpengine.NewCustom(4, mpvm.LP, machine.Get(machine.CM5_LP)),
		mpengine.NewCustom(8, mpvm.Async, machine.Get(machine.CM5_Async)),
		shmengine.New(),
		shmengine.NewWithWorkers(3),
		core.SerialBaseline{},
	)

	for _, tc := range images {
		for _, threshold := range []int{0, 10, 60} {
			for _, tie := range []TiePolicy{SmallestIDTie, RandomTie} {
				cfg := Config{Threshold: threshold, Tie: tie, Seed: 9, MaxSquare: 8}
				name := fmt.Sprintf("%s/T=%d/%v", tc.name, threshold, tie)
				ref, err := Segment(tc.im, cfg)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := Validate(ref, tc.im, cfg); err != nil {
					t.Fatalf("%s: sequential invalid: %v", name, err)
				}
				for _, eng := range engines {
					seg, err := eng.Segment(tc.im, cfg)
					if err != nil {
						t.Fatalf("%s/%s: %v", name, eng.Name(), err)
					}
					if err := Validate(seg, tc.im, cfg); err != nil {
						t.Fatalf("%s/%s: invalid: %v", name, eng.Name(), err)
					}
					if _, serial := eng.(core.SerialBaseline); serial {
						// The baseline merges in a different order; it
						// must be valid but need not match labels.
						continue
					}
					if !ref.EqualLabels(seg) {
						t.Fatalf("%s/%s: labels differ from sequential", name, eng.Name())
					}
				}
			}
		}
	}
}

func maskLow(im *pixmap.Image) *pixmap.Image {
	for i := range im.Pix {
		im.Pix[i] &= 0x3F
	}
	return im
}

func rectScene(w, h int) *pixmap.Image {
	im := pixmap.New(w, h)
	im.FillRect(0, 0, w, h, 30)
	im.FillRect(w/8+1, h/8+1, w-w/8-1, h-h/8-1, 120)
	im.FillRect(w/2, h/4, w-2, h/2, 220)
	return im
}

// TestNativeMatchesSequentialOnPaperImages is the native engine's
// acceptance property: byte-identical segmentations to the sequential
// reference on all six paper images under all three tie policies.
func TestNativeMatchesSequentialOnPaperImages(t *testing.T) {
	for _, id := range AllPaperImages() {
		im := GeneratePaperImage(id)
		for _, tie := range []TiePolicy{SmallestIDTie, LargestIDTie, RandomTie} {
			cfg := Config{Threshold: 10, Tie: tie, Seed: 1}
			ref, err := Segment(im, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", id, tie, err)
			}
			seg, err := SegmentNative(im, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", id, tie, err)
			}
			if !ref.EqualLabels(seg) {
				t.Errorf("%v/%v: native labels differ from sequential", id, tie)
			}
			if seg.MergeIterations != ref.MergeIterations {
				t.Errorf("%v/%v: native merge iters %d, want %d", id, tie, seg.MergeIterations, ref.MergeIterations)
			}
			if err := Validate(seg, im, cfg); err != nil {
				t.Errorf("%v/%v: %v", id, tie, err)
			}
		}
	}
}

// TestRunExperimentWithNative checks the optional sixth table row: the
// native engine's row carries host wall times, no simulated seconds, and
// the same split iteration count as the simulated rows.
func TestRunExperimentWithNative(t *testing.T) {
	exp, err := RunExperimentWithNative(Image2Rects128, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Rows) != 6 {
		t.Fatalf("%d rows, want 5 simulated + 1 native", len(exp.Rows))
	}
	nat := exp.Rows[5]
	if nat.Config != machine.HostNative {
		t.Fatalf("last row config = %v, want HostNative", nat.Config)
	}
	if nat.SplitSecs != 0 || nat.MergeSecs != 0 {
		t.Fatalf("native row has simulated seconds: %+v", nat)
	}
	if nat.SplitIters != exp.Rows[0].SplitIters {
		t.Fatalf("native split iters %d, want %d", nat.SplitIters, exp.Rows[0].SplitIters)
	}
	if nat.WallSplit <= 0 || nat.WallMerge <= 0 {
		t.Fatalf("native row missing host wall times: %+v", nat)
	}
}

// TestPaperOrderingsHold regenerates the full evaluation (all six images,
// all five configurations) and asserts the paper's qualitative claims
// C2–C5 hold in the model — the repository's headline reproduction
// property.
func TestPaperOrderingsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("full 30-run evaluation")
	}
	exps, err := RunAllExperiments()
	if err != nil {
		t.Fatal(err)
	}
	if bad := CheckOrderings(exps); len(bad) > 0 {
		for _, b := range bad {
			t.Error(b)
		}
	}
	// Structural fidelity: exact split iterations and final region counts.
	wantRegions := map[PaperImageID]int{
		Image1NestedRects128: 2, Image2Rects128: 7, Image3Circles128: 11,
		Image4NestedRects256: 2, Image5Rects256: 7, Image6Tool256: 4,
	}
	for _, exp := range exps {
		if exp.FinalRegions != wantRegions[exp.Image] {
			t.Errorf("%v: %d final regions, want %d", exp.Image, exp.FinalRegions, wantRegions[exp.Image])
		}
		wantIters := 4
		if exp.Image.Size() == 256 {
			wantIters = 5
		}
		for _, row := range exp.Rows {
			if row.SplitIters != wantIters {
				t.Errorf("%v %v: split iters %d, want %d", exp.Image, row.Config, row.SplitIters, wantIters)
			}
		}
	}
}

// TestSeedsChangeHistoryNotValidity: different seeds may take different
// merge paths but always produce valid segmentations, and on the clean
// paper images the same final count.
func TestSeedsChangeHistoryNotValidity(t *testing.T) {
	im := GeneratePaperImage(Image2Rects128)
	counts := map[int]bool{}
	for seed := uint64(1); seed <= 5; seed++ {
		cfg := Config{Threshold: 10, Tie: RandomTie, Seed: seed}
		seg, err := Segment(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(seg, im, cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		counts[seg.FinalRegions] = true
	}
	if len(counts) != 1 || !counts[7] {
		t.Fatalf("region counts varied across seeds: %v", counts)
	}
}
