package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
	"regiongrow/internal/rag"
	"regiongrow/internal/unionfind"
)

// Config parameterises a segmentation run.
type Config struct {
	// Threshold T of the pixel-range homogeneity criterion.
	Threshold int
	// Tie selects the tie-breaking policy of the merge stage.
	Tie rag.TiePolicy
	// Seed drives the Random tie policy. Runs with equal seeds are
	// byte-identical.
	Seed uint64
	// MaxSquare caps split-stage square size; see quadsplit.Options.
	MaxSquare int
}

// Criterion returns the homogeneity criterion implied by the config.
func (c Config) Criterion() homog.Criterion { return homog.NewRange(c.Threshold) }

// RegionInfo summarises one final region.
type RegionInfo struct {
	ID   int32
	IV   homog.Interval
	Area int
}

// Segmentation is the result of a full split+merge run.
type Segmentation struct {
	W, H int
	// Labels assigns every pixel the ID of its final region (the smallest
	// linear pixel index among the region's constituent squares' origins).
	Labels []int32
	// Regions lists final regions in ascending ID order.
	Regions []RegionInfo

	// The statistics the paper's tables report.
	SplitIterations   int
	MergeIterations   int
	SquaresAfterSplit int
	FinalRegions      int

	// MergesPerIter records merges in each merge iteration (the paper's
	// randomness discussion is about this distribution).
	MergesPerIter []int
	// ForcedResolutions counts forced SmallestID rounds under Random.
	ForcedResolutions int

	// Wall-clock stage durations of this process.
	SplitWall, MergeWall time.Duration
	// Simulated stage times in seconds under a machine cost model; zero
	// for the sequential engine, which models no machine.
	SplitSim, MergeSim float64

	// Comm holds communication counters for the message-passing engine
	// (nil for other engines).
	Comm *CommStats
}

// CommStats counts the communication a message-passing run performed.
type CommStats struct {
	// Messages and Words are point-to-point totals across all nodes.
	Messages, Words int64
	// Barriers, Gathers, and Reduces count collective episodes.
	Barriers, Gathers, Reduces int64
	// LPSteps counts Linear Permutation ring steps (zero under Async).
	LPSteps int64
	// Exchanges counts irregular all-to-many exchanges.
	Exchanges int64
	// Retries counts whole-job re-runs the distributed engine performed
	// after losing a worker mid-job (zero everywhere else). The other
	// counters describe the final, successful attempt only.
	Retries int64
}

// Engine runs the split-and-merge algorithm in one of the paper's
// programming models.
type Engine interface {
	// Name identifies the engine in experiment records.
	Name() string
	// Segment produces the segmentation of the image under cfg.
	Segment(im *pixmap.Image, cfg Config) (*Segmentation, error)
}

// Sequential is the single-threaded reference engine.
type Sequential struct{}

// Name implements Engine.
func (Sequential) Name() string { return "sequential" }

// Segment implements Engine: sequential split, then the shared RAG merge
// kernel, then relabeling.
func (e Sequential) Segment(im *pixmap.Image, cfg Config) (*Segmentation, error) {
	return e.SegmentContext(context.Background(), im, cfg, Run{})
}

// SegmentContext implements ContextEngine: the same pipeline as Segment
// with cancellation checked at every split pass and merge round, stage
// events on run.Observer, and split buffers drawn from run.Scratch.
func (Sequential) SegmentContext(ctx context.Context, im *pixmap.Image, cfg Config, run Run) (*Segmentation, error) {
	crit := cfg.Criterion()

	run.Emit(StageEvent{Kind: EventSplitStart})
	t0 := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	sp, err := quadsplit.SplitCtx(ctx, im, crit,
		quadsplit.Options{MaxSquare: cfg.MaxSquare, Scratch: run.SplitScratch()})
	if err != nil {
		return nil, err
	}
	splitWall := time.Since(t0) //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	run.Emit(StageEvent{Kind: EventSplitDone, Iterations: sp.Iterations, Squares: sp.NumSquares})

	t1 := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	g, err := rag.BuildFromLabelsCtx(ctx, im, sp.Labels, crit)
	if err != nil {
		return nil, err
	}
	run.Emit(StageEvent{Kind: EventGraphDone, Squares: sp.NumSquares})
	asg := rag.NewAssignments()
	stats, err := rag.DriveCtx(ctx, cfg.Tie,
		g.HasActive,
		func(effective rag.TiePolicy, iter int) int {
			merged := g.MergeIteration(effective, cfg.Seed, iter, asg)
			run.Emit(StageEvent{Kind: EventMergeIteration, Iteration: iter, Merges: merged})
			return merged
		})
	if err != nil {
		return nil, err
	}
	labels := asg.Relabel(sp.Labels)
	mergeWall := time.Since(t1) //vet:timing stage wall-time for Stats; never reaches labels or wire bytes

	seg := &Segmentation{
		W: im.W, H: im.H,
		Labels:            labels,
		SplitIterations:   sp.Iterations,
		MergeIterations:   stats.Iterations,
		SquaresAfterSplit: sp.NumSquares,
		MergesPerIter:     stats.MergesPerIter,
		ForcedResolutions: stats.ForcedResolutions,
		SplitWall:         splitWall,
		MergeWall:         mergeWall,
	}
	seg.FillRegions(im)
	run.Emit(StageEvent{Kind: EventMergeDone, Iterations: stats.Iterations, Regions: seg.FinalRegions})
	return seg, nil
}

// FillRegions recomputes the Regions list and FinalRegions count from the
// label array. Engines call it after producing Labels.
func (s *Segmentation) FillRegions(im *pixmap.Image) {
	info := make(map[int32]*RegionInfo)
	for i, lab := range s.Labels {
		ri, ok := info[lab]
		if !ok {
			ri = &RegionInfo{ID: lab, IV: homog.Empty()}
			info[lab] = ri
		}
		ri.Area++
		ri.IV = ri.IV.Union(homog.Point(im.Pix[i]))
	}
	s.Regions = s.Regions[:0]
	for _, ri := range info {
		s.Regions = append(s.Regions, *ri)
	}
	sort.Slice(s.Regions, func(i, j int) bool { return s.Regions[i].ID < s.Regions[j].ID })
	s.FinalRegions = len(s.Regions)
}

// EqualLabels reports whether two segmentations assign identical labels.
func (s *Segmentation) EqualLabels(other *Segmentation) bool {
	if s.W != other.W || s.H != other.H || len(s.Labels) != len(other.Labels) {
		return false
	}
	for i, l := range s.Labels {
		if l != other.Labels[i] {
			return false
		}
	}
	return true
}

// SerialBaseline is the merge-stage baseline of the paper's complexity
// section: one merge per iteration (the globally best active edge), the
// R−1-iteration worst case against which the parallel mutual-merge
// kernel's log R best case is measured. The split stage is identical to
// the Sequential engine's.
type SerialBaseline struct{}

// Name implements Engine.
func (SerialBaseline) Name() string { return "serial-baseline" }

// Segment implements Engine.
func (e SerialBaseline) Segment(im *pixmap.Image, cfg Config) (*Segmentation, error) {
	return e.SegmentContext(context.Background(), im, cfg, Run{})
}

// SegmentContext implements ContextEngine for the baseline: cancellation
// at every one-merge iteration, the same stage events as the real engines.
func (SerialBaseline) SegmentContext(ctx context.Context, im *pixmap.Image, cfg Config, run Run) (*Segmentation, error) {
	crit := cfg.Criterion()
	run.Emit(StageEvent{Kind: EventSplitStart})
	t0 := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	sp, err := quadsplit.SplitCtx(ctx, im, crit,
		quadsplit.Options{MaxSquare: cfg.MaxSquare, Scratch: run.SplitScratch()})
	if err != nil {
		return nil, err
	}
	splitWall := time.Since(t0) //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	run.Emit(StageEvent{Kind: EventSplitDone, Iterations: sp.Iterations, Squares: sp.NumSquares})

	t1 := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	g, err := rag.BuildFromLabelsCtx(ctx, im, sp.Labels, crit)
	if err != nil {
		return nil, err
	}
	run.Emit(StageEvent{Kind: EventGraphDone, Squares: sp.NumSquares})
	stats, asg, err := g.MergeSerialCtx(ctx)
	if err != nil {
		return nil, err
	}
	labels := asg.Relabel(sp.Labels)
	mergeWall := time.Since(t1) //vet:timing stage wall-time for Stats; never reaches labels or wire bytes

	seg := &Segmentation{
		W: im.W, H: im.H,
		Labels:            labels,
		SplitIterations:   sp.Iterations,
		MergeIterations:   stats.Iterations,
		SquaresAfterSplit: sp.NumSquares,
		MergesPerIter:     stats.MergesPerIter,
		SplitWall:         splitWall,
		MergeWall:         mergeWall,
	}
	seg.FillRegions(im)
	run.Emit(StageEvent{Kind: EventMergeDone, Iterations: stats.Iterations, Regions: seg.FinalRegions})
	return seg, nil
}

// Compile-time contract: both reference engines are context-aware.
var (
	_ ContextEngine = Sequential{}
	_ ContextEngine = SerialBaseline{}
)

// Validate checks the postconditions of a completed segmentation against
// the source image:
//
//  1. labels form a partition and each region's ID is the minimum pixel
//     index at which its label occurs;
//  2. every region is 4-connected;
//  3. every region satisfies the homogeneity criterion over its actual
//     pixels;
//  4. termination: no two 4-adjacent regions could still merge (the union
//     of their intervals violates the criterion) — the defining property
//     of a finished merge stage.
func Validate(s *Segmentation, im *pixmap.Image, crit homog.Criterion) error {
	if s.W != im.W || s.H != im.H || len(s.Labels) != im.W*im.H {
		return fmt.Errorf("core: segmentation shape %dx%d/%d does not match image %dx%d",
			s.W, s.H, len(s.Labels), im.W, im.H)
	}
	if len(s.Labels) == 0 {
		return nil
	}
	// (1) representative = min pixel index with that label.
	minIdx := make(map[int32]int)
	for i, lab := range s.Labels {
		if _, ok := minIdx[lab]; !ok {
			minIdx[lab] = i
		}
	}
	for lab, idx := range minIdx {
		if int(lab) != idx {
			return fmt.Errorf("core: region label %d but first pixel index %d", lab, idx)
		}
	}
	// (2) connectivity: union-find over same-label adjacency must yield
	// exactly one set per label.
	d := unionfind.New(len(s.Labels))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			i := y*im.W + x
			if x+1 < im.W && s.Labels[i] == s.Labels[i+1] {
				d.Union(i, i+1)
			}
			if y+1 < im.H && s.Labels[i] == s.Labels[i+im.W] {
				d.Union(i, i+im.W)
			}
		}
	}
	if d.Sets() != len(minIdx) {
		return fmt.Errorf("core: %d labels but %d connected components — some region is disconnected",
			len(minIdx), d.Sets())
	}
	// (3) per-region homogeneity over actual pixels.
	ivs := make(map[int32]homog.Interval)
	for i, lab := range s.Labels {
		iv, ok := ivs[lab]
		if !ok {
			iv = homog.Empty()
		}
		ivs[lab] = iv.Union(homog.Point(im.Pix[i]))
	}
	for lab, iv := range ivs {
		if !crit.Homogeneous(iv) {
			return fmt.Errorf("core: region %d inhomogeneous: %v", lab, iv)
		}
	}
	// (4) no adjacent pair still mergeable.
	type pair struct{ a, b int32 }
	seen := make(map[pair]struct{})
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			i := y*im.W + x
			for _, j := range [2]int{i + 1, i + im.W} {
				if j == i+1 && x+1 >= im.W {
					continue
				}
				if j == i+im.W && y+1 >= im.H {
					continue
				}
				a, b := s.Labels[i], s.Labels[j]
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				p := pair{a, b}
				if _, ok := seen[p]; ok {
					continue
				}
				seen[p] = struct{}{}
				if crit.Homogeneous(ivs[a].Union(ivs[b])) {
					return fmt.Errorf("core: adjacent regions %d and %d could still merge (%v ∪ %v)",
						a, b, ivs[a], ivs[b])
				}
			}
		}
	}
	return nil
}
