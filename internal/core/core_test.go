package core

import (
	"testing"
	"testing/quick"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
)

func segment(t *testing.T, im *pixmap.Image, cfg Config) *Segmentation {
	t.Helper()
	seg, err := Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestPaperImageRegionCounts(t *testing.T) {
	want := map[pixmap.PaperImageID]int{
		pixmap.Image1NestedRects128: 2,
		pixmap.Image2Rects128:       7,
		pixmap.Image3Circles128:     11,
		pixmap.Image4NestedRects256: 2,
		pixmap.Image5Rects256:       7,
		pixmap.Image6Tool256:        4,
	}
	for id, n := range want {
		im := pixmap.Generate(id, pixmap.DefaultGenOptions())
		seg := segment(t, im, Config{Threshold: 10, Tie: rag.Random, Seed: 1})
		if seg.FinalRegions != n {
			t.Errorf("%v: %d final regions, want %d", id, seg.FinalRegions, n)
		}
		if err := Validate(seg, im, homog.NewRange(10)); err != nil {
			t.Errorf("%v: %v", id, err)
		}
	}
}

func TestSplitIterationsReported(t *testing.T) {
	im := pixmap.Generate(pixmap.Image1NestedRects128, pixmap.DefaultGenOptions())
	seg := segment(t, im, Config{Threshold: 10})
	if seg.SplitIterations != 4 {
		t.Fatalf("split iterations = %d, want 4", seg.SplitIterations)
	}
	if seg.SquaresAfterSplit == 0 || seg.MergeIterations == 0 {
		t.Fatal("missing statistics")
	}
	if len(seg.MergesPerIter) != seg.MergeIterations {
		t.Fatalf("MergesPerIter has %d entries for %d iterations", len(seg.MergesPerIter), seg.MergeIterations)
	}
}

func TestUniformImageOneRegionUnbounded(t *testing.T) {
	im := pixmap.Uniform(64, 50)
	seg := segment(t, im, Config{Threshold: 0, MaxSquare: -1})
	if seg.FinalRegions != 1 {
		t.Fatalf("final regions = %d", seg.FinalRegions)
	}
	if seg.MergeIterations != 0 {
		t.Fatalf("merge iterations = %d for a single split square", seg.MergeIterations)
	}
}

func TestUniformImageCappedMergesBack(t *testing.T) {
	// With the default cap the split yields 64 squares that the merge
	// stage reassembles into one region.
	im := pixmap.Uniform(64, 50)
	seg := segment(t, im, Config{Threshold: 0})
	if seg.SquaresAfterSplit != 64 {
		t.Fatalf("squares = %d", seg.SquaresAfterSplit)
	}
	if seg.FinalRegions != 1 {
		t.Fatalf("final regions = %d", seg.FinalRegions)
	}
}

func TestCheckerboardNoMerges(t *testing.T) {
	im := pixmap.Checkerboard(16, 0, 255)
	seg := segment(t, im, Config{Threshold: 10})
	if seg.FinalRegions != 256 {
		t.Fatalf("final regions = %d, want 256", seg.FinalRegions)
	}
	if seg.MergeIterations != 0 {
		t.Fatalf("merge iterations = %d, want 0 (no active edges ever)", seg.MergeIterations)
	}
}

func TestThreshold255OneRegion(t *testing.T) {
	im := pixmap.Random(32, 5)
	seg := segment(t, im, Config{Threshold: 255, MaxSquare: -1})
	if seg.FinalRegions != 1 {
		t.Fatalf("T=255: %d regions", seg.FinalRegions)
	}
}

func TestDeterminism(t *testing.T) {
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	cfg := Config{Threshold: 10, Tie: rag.Random, Seed: 42}
	a := segment(t, im, cfg)
	b := segment(t, im, cfg)
	if !a.EqualLabels(b) {
		t.Fatal("same seed produced different segmentations")
	}
	c := segment(t, im, Config{Threshold: 10, Tie: rag.Random, Seed: 43})
	// Different seeds may legitimately produce different label histories;
	// both must be valid.
	if err := Validate(c, im, homog.NewRange(10)); err != nil {
		t.Fatal(err)
	}
}

func TestValidateAcceptsAndRejects(t *testing.T) {
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	seg := segment(t, im, Config{Threshold: 10})
	if err := Validate(seg, im, homog.NewRange(10)); err != nil {
		t.Fatal(err)
	}
	// Corrupt: relabel one pixel to a fresh id that is not its min index.
	bad := *seg
	bad.Labels = append([]int32{}, seg.Labels...)
	bad.Labels[len(bad.Labels)-1] = 7
	if Validate(&bad, im, homog.NewRange(10)) == nil {
		t.Fatal("Validate accepted corrupted labels")
	}
	// Shape mismatch.
	if Validate(seg, pixmap.New(4, 4), homog.NewRange(10)) == nil {
		t.Fatal("Validate accepted shape mismatch")
	}
}

func TestValidateCatchesDisconnectedRegion(t *testing.T) {
	// Hand-build a segmentation where label 0 appears in two disconnected
	// corners of a 3×3 image.
	im := pixmap.Uniform(3, 9)
	seg := &Segmentation{W: 3, H: 3, Labels: []int32{
		0, 1, 1,
		1, 1, 1,
		1, 1, 0, // disconnected reuse of label 0
	}}
	seg.FillRegions(im)
	if Validate(seg, im, homog.NewRange(255)) == nil {
		t.Fatal("Validate accepted a disconnected region")
	}
}

func TestValidateCatchesMergeableNeighbours(t *testing.T) {
	// Two adjacent labels with identical intensity: they should have
	// merged, so Validate must reject.
	im := pixmap.Uniform(2, 9)
	seg := &Segmentation{W: 2, H: 2, Labels: []int32{0, 1, 0, 1}}
	seg.FillRegions(im)
	if Validate(seg, im, homog.NewRange(10)) == nil {
		t.Fatal("Validate accepted unmerged mergeable neighbours")
	}
}

func TestValidateCatchesInhomogeneousRegion(t *testing.T) {
	im := pixmap.New(2, 1)
	im.Pix[0], im.Pix[1] = 0, 200
	seg := &Segmentation{W: 2, H: 1, Labels: []int32{0, 0}}
	seg.FillRegions(im)
	if Validate(seg, im, homog.NewRange(10)) == nil {
		t.Fatal("Validate accepted an inhomogeneous region")
	}
}

func TestFillRegions(t *testing.T) {
	im := pixmap.New(2, 2)
	copy(im.Pix, []uint8{1, 1, 9, 9})
	seg := &Segmentation{W: 2, H: 2, Labels: []int32{0, 0, 2, 2}}
	seg.FillRegions(im)
	if seg.FinalRegions != 2 || len(seg.Regions) != 2 {
		t.Fatalf("regions = %d", seg.FinalRegions)
	}
	if seg.Regions[0].ID != 0 || seg.Regions[0].Area != 2 || seg.Regions[0].IV.Hi != 1 {
		t.Fatalf("region 0 = %+v", seg.Regions[0])
	}
	if seg.Regions[1].ID != 2 || seg.Regions[1].IV.Lo != 9 {
		t.Fatalf("region 1 = %+v", seg.Regions[1])
	}
}

func TestSequentialPostconditionsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, tRaw, policyRaw uint8) bool {
		im := pixmap.Random(24, seed)
		for i := range im.Pix {
			im.Pix[i] &= 0x3F
		}
		tVal := int(tRaw % 64)
		policy := []rag.TiePolicy{rag.SmallestID, rag.LargestID, rag.Random}[policyRaw%3]
		seg, err := Sequential{}.Segment(im, Config{Threshold: tVal, Tie: policy, Seed: seed})
		if err != nil {
			return false
		}
		return Validate(seg, im, homog.NewRange(tVal)) == nil
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEmptyImage(t *testing.T) {
	seg := segment(t, pixmap.New(0, 0), Config{Threshold: 10})
	if seg.FinalRegions != 0 {
		t.Fatalf("empty image: %d regions", seg.FinalRegions)
	}
	if err := Validate(seg, pixmap.New(0, 0), homog.NewRange(10)); err != nil {
		t.Fatal(err)
	}
}

func TestEngineName(t *testing.T) {
	if (Sequential{}).Name() != "sequential" {
		t.Fatal("name wrong")
	}
}
