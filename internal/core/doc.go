// Package core defines the segmentation data model shared by all engines
// and provides the sequential reference engine for the split-and-merge
// region growing algorithm.
//
// An Engine consumes an image and a Config and produces a Segmentation:
// final per-pixel labels plus the statistics the paper reports (split
// iterations, merge iterations, stage timings). The sequential engine here
// fixes the semantics; the data-parallel engine (internal/dpengine) and the
// message-passing engine (internal/mpengine) must produce identical
// segmentations under deterministic tie policies.
package core
