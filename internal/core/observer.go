package core

import (
	"context"
	"fmt"

	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
)

// EventKind names one typed stage event of a segmentation run.
type EventKind int

const (
	// EventSplitStart fires once, before the split stage's first pass.
	EventSplitStart EventKind = iota
	// EventSplitDone fires when the split stage completes; Iterations and
	// Squares carry the stage totals.
	EventSplitDone
	// EventGraphDone fires when the region adjacency graph is built;
	// Squares carries the vertex count (one vertex per split square).
	EventGraphDone
	// EventMergeIteration fires after every merge round; Iteration is the
	// 1-based round number and Merges the region pairs merged in it.
	EventMergeIteration
	// EventMergeDone fires when the run completes; Iterations carries the
	// merge round total and Regions the final region count.
	EventMergeDone
)

// String returns a stable name for the event kind.
func (k EventKind) String() string {
	switch k {
	case EventSplitStart:
		return "split-start"
	case EventSplitDone:
		return "split-done"
	case EventGraphDone:
		return "graph-done"
	case EventMergeIteration:
		return "merge-iteration"
	case EventMergeDone:
		return "merge-done"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// allEventKinds lists every stage event kind, in emission order — the
// single range both text-marshaling directions walk.
var allEventKinds = [...]EventKind{EventSplitStart, EventSplitDone,
	EventGraphDone, EventMergeIteration, EventMergeDone}

// MarshalText implements encoding.TextMarshaler with the String name, so
// wire event records carry "split-done" rather than a bare integer.
// Unknown kinds fail rather than emitting a name UnmarshalText would
// reject.
func (k EventKind) MarshalText() ([]byte, error) {
	for _, c := range allEventKinds {
		if k == c {
			return []byte(k.String()), nil
		}
	}
	return nil, fmt.Errorf("core: cannot marshal unknown event kind %d", int(k))
}

// UnmarshalText implements encoding.TextUnmarshaler over the String
// names.
func (k *EventKind) UnmarshalText(text []byte) error {
	for _, c := range allEventKinds {
		if c.String() == string(text) {
			*k = c
			return nil
		}
	}
	return fmt.Errorf("core: unknown event kind %q", text)
}

// StageEvent is one progress event emitted by an engine during a run.
// Fields beyond Kind are populated per kind; see the EventKind constants.
type StageEvent struct {
	Kind EventKind
	// Iteration is the 1-based merge round (EventMergeIteration).
	Iteration int
	// Merges is the number of pairs merged in the round
	// (EventMergeIteration).
	Merges int
	// Iterations is the completed stage's total pass/round count
	// (EventSplitDone, EventMergeDone).
	Iterations int
	// Squares is the split-stage region count (EventSplitDone,
	// EventGraphDone).
	Squares int
	// Regions is the final region count (EventMergeDone).
	Regions int
}

// Observer receives stage events during a segmentation run. Engines call
// Observe synchronously from the goroutine driving the run (for the
// message-passing engine that is a simulated node goroutine, not the
// caller's), so an Observer shared across concurrent runs must be safe for
// concurrent use. Observe must not block: it runs on the compute path.
//
// Cancelling the run's context from inside Observe is the supported way to
// abort on a progress condition; every engine notices within one
// split/merge iteration.
type Observer interface {
	Observe(StageEvent)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(StageEvent)

// Observe implements Observer.
func (f ObserverFunc) Observe(ev StageEvent) { f(ev) }

// Scratch holds reusable per-run buffers. A Scratch must serve at most one
// run at a time; the Segmenter façade keeps a sync.Pool of them so
// repeated runs on same-size images stop reallocating the split stage's
// label and level arrays.
type Scratch struct {
	// Split is the split stage's buffer set, passed to quadsplit via
	// Options.Scratch.
	Split quadsplit.Scratch
}

// Run is the per-call runtime environment of a segmentation: progress goes
// to Observer (nil = no events) and Scratch offers reusable buffers (nil =
// allocate fresh). Cancellation travels separately, on the ctx argument of
// SegmentContext. The zero Run is valid and makes SegmentContext behave
// exactly like Segment.
type Run struct {
	Observer Observer
	Scratch  *Scratch
}

// Emit delivers ev to the run's observer, if any.
func (r Run) Emit(ev StageEvent) {
	if r.Observer != nil {
		r.Observer.Observe(ev)
	}
}

// SplitScratch returns the run's split buffer set, or nil when the run has
// no scratch — the value engines hand to quadsplit.Options.Scratch.
func (r Run) SplitScratch() *quadsplit.Scratch {
	if r.Scratch == nil {
		return nil
	}
	return &r.Scratch.Split
}

// ContextEngine is the context-aware engine contract every execution model
// implements: cancellation via ctx (checked at split-pass and merge-round
// boundaries — cancelling mid-run returns ctx.Err() within one iteration),
// progress and buffer reuse via run. SegmentContext with a background
// context and a zero Run is equivalent to Segment, byte for byte.
type ContextEngine interface {
	Engine
	SegmentContext(ctx context.Context, im *pixmap.Image, cfg Config, run Run) (*Segmentation, error)
}
