package core

import (
	"testing"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
)

func TestSerialBaselineValid(t *testing.T) {
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	seg, err := SerialBaseline{}.Segment(im, Config{Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(seg, im, homog.NewRange(10)); err != nil {
		t.Fatal(err)
	}
	if seg.FinalRegions != 7 {
		t.Fatalf("final regions = %d, want 7", seg.FinalRegions)
	}
}

func TestSerialBaselineIterations(t *testing.T) {
	// The serial baseline does exactly squares − regions merges, one per
	// iteration.
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	seg, err := SerialBaseline{}.Segment(im, Config{Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	want := seg.SquaresAfterSplit - seg.FinalRegions
	if seg.MergeIterations != want {
		t.Fatalf("merge iterations = %d, want %d", seg.MergeIterations, want)
	}
	// And the parallel kernel is far below that.
	par, err := Sequential{}.Segment(im, Config{Threshold: 10, Tie: rag.Random, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if par.MergeIterations*5 >= seg.MergeIterations {
		t.Fatalf("parallel %d vs serial %d: gap too small", par.MergeIterations, seg.MergeIterations)
	}
}

func TestSerialBaselineName(t *testing.T) {
	if (SerialBaseline{}).Name() != "serial-baseline" {
		t.Fatal("name wrong")
	}
}

func TestSerialBaselineSameRegionCountAsParallel(t *testing.T) {
	// On the clean paper images the attainable region structure is
	// order-independent, so the baseline and the parallel kernel agree on
	// the final count.
	for _, id := range []pixmap.PaperImageID{pixmap.Image1NestedRects128, pixmap.Image2Rects128} {
		im := pixmap.Generate(id, pixmap.DefaultGenOptions())
		a, err := SerialBaseline{}.Segment(im, Config{Threshold: 10})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Sequential{}.Segment(im, Config{Threshold: 10, Tie: rag.SmallestID})
		if err != nil {
			t.Fatal(err)
		}
		if a.FinalRegions != b.FinalRegions {
			t.Errorf("%v: serial %d vs parallel %d regions", id, a.FinalRegions, b.FinalRegions)
		}
	}
}
