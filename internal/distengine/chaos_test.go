package distengine_test

// The chaos suite drives every failure path of the distributed engine
// through the fault-injecting transport (transport/faulty) over the
// in-process Mem transport — no real sockets, every scenario scripted
// and deterministic. The acceptance oracle is the paper's determinism
// invariant: a recovered job must produce labels byte-identical to the
// sequential engine's, because re-banding across survivors is
// indistinguishable from a first run on that membership. Scenarios that
// cannot recover must surface a clean typed error within one iteration,
// with no leaked goroutines. A closing process-cluster test repeats the
// headline scenario — kill a worker mid-merge — against four real
// worker processes.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"syscall"
	"testing"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/distengine"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
	"regiongrow/internal/transport"
	"regiongrow/internal/transport/faulty"
)

// chaosTuning shrinks every liveness bound so scripted faults resolve in
// milliseconds instead of the production tens of seconds.
func chaosTuning() distengine.Tuning {
	return distengine.Tuning{
		DialTimeout:       2 * time.Second,
		HeartbeatInterval: 25 * time.Millisecond,
		LinkTimeout:       400 * time.Millisecond,
		WriteTimeout:      400 * time.Millisecond,
		ProbeTimeout:      250 * time.Millisecond,
		MaxAttempts:       3,
	}
}

// startMemCluster launches n in-process workers named w0..w{n-1} on mem,
// with a short idle timeout so drains and dropped-job scenarios resolve
// fast. Cleanup closes the listeners and waits for the serve loops.
func startMemCluster(tb testing.TB, mem *transport.Mem, n int) []string {
	tb.Helper()
	addrs := make([]string, n)
	listeners := make([]transport.Listener, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		l, err := mem.Listen(fmt.Sprintf("w%d", i))
		if err != nil {
			tb.Fatalf("mem listen: %v", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = distengine.ServeWorkerOpts(l, distengine.WorkerOptions{IdleTimeout: 100 * time.Millisecond})
		}()
	}
	tb.Cleanup(func() {
		for _, l := range listeners {
			l.Close()
		}
		wg.Wait()
	})
	return addrs
}

// waitGoroutines polls until the goroutine count returns to the
// baseline, failing with a stack dump if it doesn't: every scenario —
// recovered or failed — must fully unwind coordinator and worker
// goroutines.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d -> %d\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}
}

// TestChaosScenarios: one scripted fault per subtest, each on a fresh
// 3-worker in-process cluster with faults aimed at worker w1.
func TestChaosScenarios(t *testing.T) {
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 1}
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// In-direction frame order from each worker: reduce #1 is the
	// split-iteration all-reduce (mid-split); exchange #1 is the boundary
	// stitch, #2 the first merge round's choice routing (mid-merge);
	// gather #1 is the first merge round's event gather (mid-gather);
	// result #1 ends the job. Counters include liveness pings only for
	// the type-0 (any frame) rules.
	scenarios := []struct {
		name string
		// inject scripts the scenario; kill reports whether w1 is dead
		// afterwards (and so must sit out the recovery).
		inject func(tr *faulty.Transport, mem *transport.Mem)
		// wantErr, when set, asserts the expected clean failure; when
		// nil the scenario must recover byte-identically with ≥1 retry.
		wantErr func(t *testing.T, err error)
	}{
		{
			name: "kill worker mid-split",
			inject: func(tr *faulty.Transport, mem *transport.Mem) {
				tr.Inject("w1", faulty.Fault{Dir: faulty.In, Type: distengine.TFrameReduce, Nth: 1, Act: faulty.Cut,
					Hook: func() { mem.Kill("w1") }})
			},
		},
		{
			name: "kill worker mid-merge round",
			inject: func(tr *faulty.Transport, mem *transport.Mem) {
				tr.Inject("w1", faulty.Fault{Dir: faulty.In, Type: distengine.TFrameExchange, Nth: 2, Act: faulty.Cut,
					Hook: func() { mem.Kill("w1") }})
			},
		},
		{
			name: "kill worker mid-gather",
			inject: func(tr *faulty.Transport, mem *transport.Mem) {
				tr.Inject("w1", faulty.Fault{Dir: faulty.In, Type: distengine.TFrameGather, Nth: 1, Act: faulty.Cut,
					Hook: func() { mem.Kill("w1") }})
			},
		},
		{
			name: "kill worker at result",
			inject: func(tr *faulty.Transport, mem *transport.Mem) {
				tr.Inject("w1", faulty.Fault{Dir: faulty.In, Type: distengine.TFrameResult, Nth: 1, Act: faulty.Cut,
					Hook: func() { mem.Kill("w1") }})
			},
		},
		{
			name: "job frame dropped",
			// The worker never sees a job, idles out, and closes; the
			// coordinator loses the link and retries — on all three
			// workers, since w1 is alive and answers the probe.
			inject: func(tr *faulty.Transport, mem *transport.Mem) {
				tr.Inject("w1", faulty.Fault{Dir: faulty.Out, Type: distengine.TFrameJob, Nth: 1, Act: faulty.Drop})
			},
		},
		{
			name: "stalled peer stops reading (write deadline)",
			// Slow-loris: the first outbound frame wedges, the per-frame
			// write bound fires, and the job retries on a healed link.
			inject: func(tr *faulty.Transport, mem *transport.Mem) {
				tr.Inject("w1", faulty.Fault{Dir: faulty.Out, Nth: 1, Act: faulty.Stall})
			},
		},
		{
			name: "stalled peer goes silent (read deadline)",
			// The inbound direction wedges mid-job: no frames, no pings;
			// the link timeout declares the worker lost.
			inject: func(tr *faulty.Transport, mem *transport.Mem) {
				tr.Inject("w1", faulty.Fault{Dir: faulty.In, Nth: 2, Act: faulty.Stall})
			},
		},
		{
			name: "corrupt frame is a clean protocol error",
			// Corruption is not a transport loss: retrying cannot help,
			// so the job must fail immediately with the decode error.
			inject: func(tr *faulty.Transport, mem *transport.Mem) {
				tr.Inject("w1", faulty.Fault{Dir: faulty.In, Type: distengine.TFrameReduce, Nth: 1, Act: faulty.Corrupt})
			},
			wantErr: func(t *testing.T, err error) {
				if err == nil {
					t.Fatal("corrupt frame: job succeeded, want a protocol error")
				}
				if errors.Is(err, distengine.ErrWorkerLost) {
					t.Fatalf("corrupt frame classified retryable: %v", err)
				}
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			mem := transport.NewMem()
			addrs := startMemCluster(t, mem, 3)
			tr := faulty.New(mem)
			eng := distengine.NewOver(tr, addrs)
			eng.SetTuning(chaosTuning())
			sc.inject(tr, mem)
			before := runtime.NumGoroutine()

			seg, err := eng.SegmentContext(context.Background(), im, cfg, core.Run{})
			if sc.wantErr != nil {
				sc.wantErr(t, err)
				waitGoroutines(t, before)
				return
			}
			if err != nil {
				t.Fatalf("scenario did not recover: %v", err)
			}
			if !seg.EqualLabels(want) {
				t.Error("recovered labels differ from sequential")
			}
			if seg.Comm == nil || seg.Comm.Retries == 0 {
				t.Errorf("recovery not recorded: %+v", seg.Comm)
			}
			waitGoroutines(t, before)
		})
	}
}

// TestChaosPartitionMidMerge: partitioning the coordinator off the
// whole cluster mid-merge fails the job with the typed no-workers error
// (every retry probe fails), leaves no goroutines behind, and the same
// engine recovers fully once the partition heals.
func TestChaosPartitionMidMerge(t *testing.T) {
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 1}
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}

	mem := transport.NewMem()
	addrs := startMemCluster(t, mem, 3)
	tr := faulty.New(mem)
	eng := distengine.NewOver(tr, addrs)
	eng.SetTuning(chaosTuning())
	before := runtime.NumGoroutine()

	// Cut the whole coordinator side at the first merge round's choice
	// exchange from w1.
	tr.Inject("w1", faulty.Fault{Dir: faulty.In, Type: distengine.TFrameExchange, Nth: 2, Act: faulty.Cut,
		Hook: tr.Partition})
	_, err = eng.SegmentContext(context.Background(), im, cfg, core.Run{})
	if !errors.Is(err, distengine.ErrNoWorkers) {
		t.Fatalf("partitioned job: err = %v, want ErrNoWorkers", err)
	}
	waitGoroutines(t, before)

	// Heal: the workers abandoned the job when their links died and are
	// still serving; the same engine works again, with no retries needed.
	tr.Heal()
	seg, err := eng.SegmentContext(context.Background(), im, cfg, core.Run{})
	if err != nil {
		t.Fatalf("post-heal segment: %v", err)
	}
	if !seg.EqualLabels(want) {
		t.Error("post-heal labels differ from sequential")
	}
	if seg.Comm.Retries != 0 {
		t.Errorf("post-heal run recorded %d retries, want 0", seg.Comm.Retries)
	}
	waitGoroutines(t, before)
}

// TestChaosDynamicMembership: workers join and leave between jobs with
// no engine restart — the segmentation stays byte-identical throughout
// (the determinism invariant holds for every membership), Health tracks
// the probes, and a removed-then-killed worker costs nothing.
func TestChaosDynamicMembership(t *testing.T) {
	im := pixmap.Generate(pixmap.Image1NestedRects128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.SmallestID}
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}

	mem := transport.NewMem()
	addrs := startMemCluster(t, mem, 2)
	eng := distengine.NewOver(mem, addrs)
	eng.SetTuning(chaosTuning())

	run := func(stage string) *core.Segmentation {
		t.Helper()
		seg, err := eng.SegmentContext(context.Background(), im, cfg, core.Run{})
		if err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if !seg.EqualLabels(want) {
			t.Errorf("%s: labels differ from sequential", stage)
		}
		return seg
	}
	run("initial 2-worker cluster")

	// Join: a third worker comes up and is added live.
	l, err := mem.Listen("w-joined")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = distengine.ServeWorkerOpts(l, distengine.WorkerOptions{IdleTimeout: 100 * time.Millisecond})
	}()
	t.Cleanup(func() { l.Close(); <-done })
	if !eng.AddMember("w-joined") {
		t.Fatal("AddMember(w-joined) = false")
	}
	if eng.AddMember("w-joined") {
		t.Error("duplicate AddMember = true")
	}
	if got := len(eng.Members()); got != 3 {
		t.Fatalf("members after join = %d, want 3", got)
	}
	for _, h := range eng.Health(context.Background()) {
		if !h.Healthy {
			t.Errorf("member %s unhealthy after join", h.Addr)
		}
	}
	run("after join")

	// Leave: the original first worker is removed, then dies; the next
	// job must neither touch it nor need a retry.
	if !eng.RemoveMember(addrs[0]) {
		t.Fatalf("RemoveMember(%s) = false", addrs[0])
	}
	mem.Kill(addrs[0])
	seg := run("after leave")
	if seg.Comm.Retries != 0 {
		t.Errorf("post-leave run recorded %d retries, want 0", seg.Comm.Retries)
	}
	if got := eng.Name(); got != "distributed/2w" {
		t.Errorf("engine name after leave = %q, want distributed/2w", got)
	}
}

// TestChaosProcessWorkerKilledMidMerge repeats the headline scenario on
// a real 4-process TCP cluster: SIGKILL one worker process at the first
// merge-iteration event; the coordinator must retry on the three
// survivors and still produce sequential-identical labels.
func TestChaosProcessWorkerKilledMidMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos test skipped in -short mode")
	}
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 1}
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}

	addrs, cmds := startProcessCluster(t, 4)
	eng := distengine.New(addrs)
	eng.SetTuning(distengine.Tuning{ProbeTimeout: time.Second})

	var once sync.Once
	run := core.Run{Observer: core.ObserverFunc(func(ev core.StageEvent) {
		if ev.Kind == core.EventMergeIteration {
			once.Do(func() {
				if err := cmds[2].Process.Signal(syscall.SIGKILL); err != nil {
					t.Errorf("killing worker 2: %v", err)
				}
			})
		}
	})}
	seg, err := eng.SegmentContext(context.Background(), im, cfg, run)
	if err != nil {
		t.Fatalf("job did not survive the worker kill: %v", err)
	}
	if !seg.EqualLabels(want) {
		t.Error("recovered labels differ from sequential")
	}
	if seg.Comm == nil || seg.Comm.Retries == 0 {
		t.Errorf("recovery not recorded: %+v", seg.Comm)
	}
	_ = cmds[2].Wait() // reap; cleanup skips exited processes

	// The three survivors are intact and still serve jobs.
	for i, cmd := range cmds {
		if i != 2 && cmd.ProcessState != nil {
			t.Errorf("surviving worker %d exited", i)
		}
	}
	seg, err = eng.SegmentContext(context.Background(), im, cfg, core.Run{})
	if err != nil {
		t.Fatalf("post-recovery segment: %v", err)
	}
	if !seg.EqualLabels(want) {
		t.Error("post-recovery labels differ from sequential")
	}
}
