package distengine

import (
	"fmt"
	"sync"
)

// roundKind names one collective operation; workers of a job must all
// submit the same kind (and sequence number) each round or the job is
// desynchronized and aborted.
type roundKind int

const (
	roundReduceMax roundKind = iota + 1
	roundReduceSum
	roundBarrier
	roundGather
	roundExchange
)

func (k roundKind) String() string {
	switch k {
	case roundReduceMax:
		return "all-reduce-max"
	case roundReduceSum:
		return "all-reduce-sum"
	case roundBarrier:
		return "barrier"
	case roundGather:
		return "all-gather"
	case roundExchange:
		return "exchange"
	default:
		return fmt.Sprintf("roundKind(%d)", int(k))
	}
}

// round is one in-flight collective: contributions from every rank, then a
// combined result released to all of them at once.
type round struct {
	kind   roundKind
	seq    uint32
	joined int
	vals   []int64   // per-rank reduce contributions
	data   [][]int32 // per-rank gather/exchange payloads
	done   chan struct{}

	// Results, valid after done closes.
	val    int64
	gather []int32
	// route[r] is the exchange payload delivered to rank r: groups of
	// (src, len, data...) in ascending source order.
	route [][]int32
	err   error
}

// collective is the coordinator's hub implementation of the collectives
// the paper's message-passing model uses (mpvm simulates the same set):
// each worker-connection handler calls sync with its worker's
// contribution and blocks until all n workers of the job have joined the
// round, mirroring how a hardware combine network or an MPI all-reduce
// synchronizes real nodes.
type collective struct {
	n   int
	mu  sync.Mutex
	cur *round

	abortOnce sync.Once
	aborted   chan struct{}
	abortErr  error
}

func newCollective(n int) *collective {
	return &collective{n: n, aborted: make(chan struct{})}
}

// abort releases every blocked sync call (and all future ones) with err.
// The first call wins; later calls are no-ops.
func (c *collective) abort(err error) {
	c.abortOnce.Do(func() {
		c.mu.Lock()
		c.abortErr = err
		c.mu.Unlock()
		close(c.aborted)
	})
}

// abortError returns the error the collective was aborted with, if any.
func (c *collective) abortError() error {
	select {
	case <-c.aborted:
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.abortErr
	default:
		return nil
	}
}

// sync joins rank's contribution to the current round and blocks until all
// n ranks have joined (or the collective is aborted). The round's combined
// result is returned to every rank.
func (c *collective) sync(rank int, kind roundKind, seq uint32, val int64, payload []int32) (*round, error) {
	c.mu.Lock()
	if err := c.abortErr; err != nil {
		c.mu.Unlock()
		return nil, err
	}
	if c.cur == nil {
		c.cur = &round{
			kind: kind, seq: seq,
			vals: make([]int64, c.n),
			data: make([][]int32, c.n),
			done: make(chan struct{}),
		}
	}
	r := c.cur
	if r.kind != kind || r.seq != seq {
		desync := fmt.Errorf("distengine: collective desync: rank %d sent %v#%d during %v#%d",
			rank, kind, seq, r.kind, r.seq)
		c.mu.Unlock()
		c.abort(desync)
		return nil, desync
	}
	r.vals[rank] = val
	r.data[rank] = payload
	r.joined++
	last := r.joined == c.n
	if last {
		c.cur = nil
		r.finish(c.n)
		close(r.done)
	}
	c.mu.Unlock()
	if !last {
		select {
		case <-r.done:
		case <-c.aborted:
			c.mu.Lock()
			err := c.abortErr
			c.mu.Unlock()
			return nil, err
		}
	}
	return r, r.err
}

// finish computes the round's combined result from the n contributions.
func (r *round) finish(n int) {
	switch r.kind {
	case roundReduceMax:
		r.val = r.vals[0]
		for _, v := range r.vals[1:] {
			if v > r.val {
				r.val = v
			}
		}
	case roundReduceSum:
		for _, v := range r.vals {
			r.val += v
		}
	case roundBarrier:
		// Pure rendezvous.
	case roundGather:
		total := 0
		for _, d := range r.data {
			total += len(d)
		}
		r.gather = make([]int32, 0, total)
		for _, d := range r.data {
			r.gather = append(r.gather, d...)
		}
	case roundExchange:
		r.route = make([][]int32, n)
		for src := 0; src < n; src++ {
			d := dec32{b: r.data[src]}
			for !d.empty() {
				dest := int(d.next())
				cnt := int(d.next())
				payload := d.take(cnt)
				if d.err != nil {
					r.err = fmt.Errorf("distengine: malformed exchange payload from rank %d", src)
					return
				}
				if dest < 0 || dest >= n {
					r.err = fmt.Errorf("distengine: exchange to rank %d of %d from rank %d", dest, n, src)
					return
				}
				r.route[dest] = append(r.route[dest], int32(src), int32(cnt))
				r.route[dest] = append(r.route[dest], payload...)
			}
		}
	}
}

// dec32 walks an []int32 payload with latching bounds checks, the int32
// sibling of dec.
type dec32 struct {
	b   []int32
	err error
}

func (d *dec32) empty() bool { return d.err != nil || len(d.b) == 0 }

func (d *dec32) next() int32 {
	if d.err != nil || len(d.b) < 1 {
		d.err = fmt.Errorf("distengine: truncated exchange group")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec32) take(n int) []int32 {
	if d.err != nil || n < 0 || len(d.b) < n {
		d.err = fmt.Errorf("distengine: truncated exchange group")
		return nil
	}
	p := d.b[:n:n]
	d.b = d.b[n:]
	return p
}
