package distengine

import (
	"bufio"
	"errors"
	"net"
	"os"
	"testing"
	"time"
)

// TestWriteWithinTimesOutOnStalledPeer: a frame write to a peer that
// never drains its socket must surface as a deadline error promptly, not
// block the handler. net.Pipe is unbuffered, so the write blocks until
// the deadline fires.
func TestWriteWithinTimesOutOnStalledPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	wc := &wconn{c: a, r: bufio.NewReader(a), w: bufio.NewWriter(a)}
	start := time.Now()
	err := wc.writeWithin(frameAbort, nil, 50*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("writeWithin to a stalled peer returned nil, want a deadline error")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("writeWithin error = %v, want os.ErrDeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("writeWithin took %v to fail, want around the 50ms deadline", elapsed)
	}
}

// deadlineRecorder is a stub net.Conn that records whether a write
// deadline was armed before the first Write.
type deadlineRecorder struct {
	net.Conn // nil; only the methods below are called
	deadline time.Time
	armed    bool // deadline was set before the first Write
	wrote    bool
}

func (d *deadlineRecorder) Write(p []byte) (int, error) {
	if !d.wrote {
		d.armed = !d.deadline.IsZero()
		d.wrote = true
	}
	return len(p), nil
}

func (d *deadlineRecorder) SetWriteDeadline(t time.Time) error {
	d.deadline = t
	return nil
}

// TestLinkSendArmsDeadline: every worker-side frame write goes out under
// the per-frame deadline — the regression here was frame writes with no
// deadline at all, which hang forever on a stalled coordinator.
func TestLinkSendArmsDeadline(t *testing.T) {
	rec := &deadlineRecorder{}
	l := &link{c: rec, w: bufio.NewWriter(rec)}
	before := time.Now()
	if err := l.send(frameEvent, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if !rec.wrote {
		t.Fatal("send never reached the conn")
	}
	if !rec.armed {
		t.Fatal("send wrote to the conn before arming a write deadline")
	}
	if got := rec.deadline.Sub(before); got < frameWriteTimeout-time.Second || got > frameWriteTimeout+time.Minute {
		t.Errorf("deadline armed %v ahead, want about frameWriteTimeout (%v)", got, frameWriteTimeout)
	}
}

// TestWconnWriteArmsDeadline: the coordinator's shared write path arms
// the default per-frame deadline too.
func TestWconnWriteArmsDeadline(t *testing.T) {
	rec := &deadlineRecorder{}
	wc := &wconn{c: rec, w: bufio.NewWriter(rec)}
	if err := wc.write(frameJob, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if !rec.armed {
		t.Fatal("write wrote to the conn before arming a write deadline")
	}
}
