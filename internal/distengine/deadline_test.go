package distengine

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"regiongrow/internal/transport"
)

// TestSendTimesOutOnStalledPeer: a frame write to a peer that never
// drains its link must surface as a deadline error promptly, not block
// the handler. net.Pipe is unbuffered, so the write blocks until the
// deadline fires — the slow-loris case the per-frame write bound exists
// for.
func TestSendTimesOutOnStalledPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	wc := transport.WrapConn(a)
	start := time.Now()
	err := wc.Send(transport.Frame{Type: byte(frameAbort)}, 50*time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Send to a stalled peer returned nil, want a deadline error")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("Send error = %v, want os.ErrDeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("Send took %v to fail, want around the 50ms deadline", elapsed)
	}
}

// TestRecvTimesOutOnSilentPeer: a bounded read on a link whose peer has
// gone silent — no protocol frames, no heartbeat pings — must report the
// deadline instead of waiting forever. This is the read half of the
// engine's no-hang guarantee: every in-job read passes LinkTimeout.
func TestRecvTimesOutOnSilentPeer(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	wc := transport.WrapConn(a)
	start := time.Now()
	_, err := wc.Recv(50 * time.Millisecond)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Recv from a silent peer returned nil, want a deadline error")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("Recv error = %v, want os.ErrDeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("Recv took %v to fail, want around the 50ms deadline", elapsed)
	}
}

// TestLinkSendBounded: every worker-side frame write goes out under the
// link's write bound — the regression here was frame writes with no
// deadline at all, which hang forever on a stalled coordinator.
func TestLinkSendBounded(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()

	lk := &link{c: transport.WrapConn(a), writeTimeout: 50 * time.Millisecond}
	err := lk.send(frameEvent, []byte{1, 2, 3})
	if err == nil {
		t.Fatal("link.send to a stalled coordinator returned nil, want a deadline error")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("link.send error = %v, want os.ErrDeadlineExceeded", err)
	}
}

// TestLinkRecvSkipsPings: liveness pings are transparent to the worker's
// collective protocol — recv must deliver the next real frame, however
// many pings precede it.
func TestLinkRecvSkipsPings(t *testing.T) {
	mem := transport.NewMem()
	l, err := mem.Listen("w")
	if err != nil {
		t.Fatal(err)
	}
	coord, err := mem.Dial(t.Context(), "w")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	worker, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer worker.Close()

	for i := 0; i < 3; i++ {
		if err := coord.Send(transport.Frame{Type: byte(framePing)}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := coord.Send(transport.Frame{Type: byte(frameGatherResult), Payload: []byte{9}}, time.Second); err != nil {
		t.Fatal(err)
	}

	lk := &link{c: worker, writeTimeout: time.Second, linkTimeout: time.Second}
	ft, payload, err := lk.recv()
	if err != nil {
		t.Fatal(err)
	}
	if ft != frameGatherResult || len(payload) != 1 || payload[0] != 9 {
		t.Fatalf("recv = (%d, %v), want the gather result after the pings", ft, payload)
	}
}
