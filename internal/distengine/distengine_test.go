package distengine_test

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/distengine"
	"regiongrow/internal/distengine/disttest"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
)

// startCluster launches n in-process workers; see disttest.StartCluster
// (shared with the facade and server suites).
func startCluster(t testing.TB, n int) []string {
	return disttest.StartCluster(t, n)
}

// TestDistMatchesSequential: the distributed engine produces labels
// byte-identical to the sequential engine across all six paper images ×
// three tie policies, and its global statistics agree too.
func TestDistMatchesSequential(t *testing.T) {
	addrs := startCluster(t, 4)
	eng := distengine.New(addrs)
	for _, id := range pixmap.AllPaperImages() {
		im := pixmap.Generate(id, pixmap.DefaultGenOptions())
		for _, tie := range []rag.TiePolicy{rag.SmallestID, rag.LargestID, rag.Random} {
			cfg := core.Config{Threshold: 10, Tie: tie, Seed: 1}
			want, err := core.Sequential{}.Segment(im, cfg)
			if err != nil {
				t.Fatalf("%v/%v sequential: %v", id, tie, err)
			}
			got, err := eng.Segment(im, cfg)
			if err != nil {
				t.Fatalf("%v/%v dist: %v", id, tie, err)
			}
			if !got.EqualLabels(want) {
				t.Errorf("%v/%v: distributed labels differ from sequential", id, tie)
			}
			if got.FinalRegions != want.FinalRegions ||
				got.SplitIterations != want.SplitIterations ||
				got.MergeIterations != want.MergeIterations ||
				got.SquaresAfterSplit != want.SquaresAfterSplit {
				t.Errorf("%v/%v: stats (regions %d, split %d, merge %d, squares %d) != sequential (%d, %d, %d, %d)",
					id, tie,
					got.FinalRegions, got.SplitIterations, got.MergeIterations, got.SquaresAfterSplit,
					want.FinalRegions, want.SplitIterations, want.MergeIterations, want.SquaresAfterSplit)
			}
			if got.Comm == nil || got.Comm.Messages == 0 {
				t.Errorf("%v/%v: no communication recorded: %+v", id, tie, got.Comm)
			}
		}
	}
}

// TestDistWorkerCounts: every worker count (including more workers than
// bands, which leaves the surplus idle) yields sequential-identical
// labels.
func TestDistWorkerCounts(t *testing.T) {
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 7}
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 5, 16} {
		addrs := startCluster(t, n)
		got, err := distengine.New(addrs).Segment(im, cfg)
		if err != nil {
			t.Fatalf("%d workers: %v", n, err)
		}
		if !got.EqualLabels(want) {
			t.Errorf("%d workers: labels differ from sequential", n)
		}
	}
}

// TestDistNarrowImage: an image narrower than the split cap whose height
// is not a multiple of the cap (so the final band is shorter than the
// cap, and the band-local cap resolves smaller than the coordinator's)
// still matches the sequential engine exactly.
func TestDistNarrowImage(t *testing.T) {
	im := pixmap.New(8, 130) // cap resolves to 16: blocks = 9, last band 2 rows
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			im.Set(x, y, uint8((x/3)*40+(y/7)*30))
		}
	}
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 5}
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrs := startCluster(t, 9) // one worker per block, incl. the short band
	got, err := distengine.New(addrs).Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualLabels(want) {
		t.Error("narrow-image labels differ from sequential")
	}
}

// TestDistObserverEvents: the coordinator relays rank 0's stage events in
// engine order, and the merge-iteration count reconciles with the result.
func TestDistObserverEvents(t *testing.T) {
	addrs := startCluster(t, 2)
	eng := distengine.New(addrs)
	im := pixmap.Generate(pixmap.Image1NestedRects128, pixmap.DefaultGenOptions())
	var mu sync.Mutex
	var events []core.StageEvent
	run := core.Run{Observer: core.ObserverFunc(func(ev core.StageEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})}
	seg, err := eng.SegmentContext(context.Background(), im, core.Config{Threshold: 10, Tie: rag.SmallestID}, run)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) < 4 {
		t.Fatalf("only %d events: %+v", len(events), events)
	}
	if events[0].Kind != core.EventSplitStart {
		t.Errorf("first event %v, want split-start", events[0].Kind)
	}
	if events[1].Kind != core.EventSplitDone || events[1].Squares != seg.SquaresAfterSplit {
		t.Errorf("second event %+v, want split-done with %d squares", events[1], seg.SquaresAfterSplit)
	}
	if events[2].Kind != core.EventGraphDone {
		t.Errorf("third event %v, want graph-done", events[2].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != core.EventMergeDone || last.Regions != seg.FinalRegions {
		t.Errorf("last event %+v, want merge-done with %d regions", last, seg.FinalRegions)
	}
	iters := 0
	for _, ev := range events {
		if ev.Kind == core.EventMergeIteration {
			iters++
		}
	}
	if iters != seg.MergeIterations {
		t.Errorf("%d merge-iteration events, want %d", iters, seg.MergeIterations)
	}
}

// TestDistCancellation: cancelling mid-merge returns ctx.Err() within one
// iteration, leaks no goroutines, and leaves the workers alive for the
// next job.
func TestDistCancellation(t *testing.T) {
	addrs := startCluster(t, 4)
	eng := distengine.New(addrs)
	im := pixmap.Generate(pixmap.Image6Tool256, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 1}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	run := core.Run{Observer: core.ObserverFunc(func(ev core.StageEvent) {
		if ev.Kind == core.EventMergeIteration {
			cancel() // fire mid-merge, from the observer path
		}
	})}
	seg, err := eng.SegmentContext(ctx, im, cfg, run)
	if err != context.Canceled {
		t.Fatalf("SegmentContext = %v, %v; want context.Canceled", seg, err)
	}

	// Coordinator goroutines and worker job goroutines must drain.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d -> %d\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}

	// The cluster is still serviceable.
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Segment(im, cfg)
	if err != nil {
		t.Fatalf("post-cancel segment: %v", err)
	}
	if !got.EqualLabels(want) {
		t.Error("post-cancel labels differ from sequential")
	}
}

// TestDistCancelBeforeStart: an already-cancelled context returns
// immediately without touching the cluster.
func TestDistCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := distengine.New([]string{"127.0.0.1:1"}) // nothing listens; must not matter
	im := pixmap.New(16, 16)
	if _, err := eng.SegmentContext(ctx, im, core.Config{}, core.Run{}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDistDialFailure: a cluster whose only worker is unreachable yields
// the typed no-healthy-workers error (the dial failure is retryable, the
// retry probe finds nobody), not a hang.
func TestDistDialFailure(t *testing.T) {
	eng := distengine.New([]string{"127.0.0.1:1"})
	eng.SetTuning(distengine.Tuning{ProbeTimeout: 200 * time.Millisecond})
	im := pixmap.Generate(pixmap.Image1NestedRects128, pixmap.DefaultGenOptions())
	_, err := eng.Segment(im, core.Config{Threshold: 10})
	if !errors.Is(err, distengine.ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestDistWorkerDeath: a worker dying mid-job no longer fails the job —
// the coordinator retries across the workers that still answer a health
// probe, re-banding the image, and the labels stay byte-identical to the
// sequential engine's.
func TestDistWorkerDeath(t *testing.T) {
	addrs := startCluster(t, 3)
	// A trap listener that accepts a connection, reads the job, and drops
	// the connection without answering any collective — then answers no
	// health probe, like a crashed process whose port is gone.
	trap, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := trap.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		_, _ = conn.Read(buf)
		conn.Close()
		trap.Close()
	}()
	eng := distengine.New([]string{addrs[0], trap.Addr().String(), addrs[1], addrs[2]})
	eng.SetTuning(distengine.Tuning{ProbeTimeout: 300 * time.Millisecond})
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 1}
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var got *core.Segmentation
	go func() {
		seg, err := eng.Segment(im, cfg)
		got = seg
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("segment did not recover from the dead worker: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator hung on a dead worker")
	}
	if !got.EqualLabels(want) {
		t.Error("recovered labels differ from sequential")
	}
	if got.Comm == nil || got.Comm.Retries == 0 {
		t.Errorf("recovery not recorded in Comm.Retries: %+v", got.Comm)
	}
}
