// Package disttest provides the in-process worker cluster used by test
// suites across the repo: loopback listeners served by
// distengine.ServeWorker, exactly as cmd/regiongrow-worker runs it, torn
// down (and drained) via test cleanup. Production code must not import
// it.
package disttest

import (
	"sync"
	"testing"

	"regiongrow/internal/distengine"
	"regiongrow/internal/transport"
)

// StartCluster launches n in-process workers on loopback TCP listeners
// and returns their addresses. The cleanup registered on tb closes the
// listeners and waits for the serve loops (and their in-flight jobs) to
// drain.
func StartCluster(tb testing.TB, n int) []string {
	return StartClusterOver(tb, transport.TCP{}, n)
}

// StartClusterOver is StartCluster over an explicit transport: pass
// transport.TCP{} for loopback sockets or a *transport.Mem (optionally
// wrapped in a fault injector) for an in-process cluster.
func StartClusterOver(tb testing.TB, tr transport.Transport, n int) []string {
	tb.Helper()
	addrs := make([]string, n)
	listeners := make([]transport.Listener, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		l, err := tr.Listen(listenAddr(tr))
		if err != nil {
			tb.Fatalf("disttest: listen: %v", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = distengine.ServeWorker(l)
		}()
	}
	tb.Cleanup(func() {
		for _, l := range listeners {
			l.Close()
		}
		wg.Wait()
	})
	return addrs
}

// listenAddr picks the "any free endpoint" form for the transport: port
// 0 on TCP, the auto-assigned name on Mem.
func listenAddr(tr transport.Transport) string {
	if _, ok := tr.(transport.TCP); ok {
		return "127.0.0.1:0"
	}
	return ""
}
