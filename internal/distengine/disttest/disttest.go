// Package disttest provides the in-process worker cluster used by test
// suites across the repo: loopback listeners served by
// distengine.ServeWorker, exactly as cmd/regiongrow-worker runs it, torn
// down (and drained) via test cleanup. Production code must not import
// it.
package disttest

import (
	"net"
	"sync"
	"testing"

	"regiongrow/internal/distengine"
)

// StartCluster launches n in-process workers on loopback listeners and
// returns their addresses. The cleanup registered on tb closes the
// listeners and waits for the serve loops (and their in-flight jobs) to
// drain.
func StartCluster(tb testing.TB, n int) []string {
	tb.Helper()
	addrs := make([]string, n)
	listeners := make([]net.Listener, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatalf("disttest: listen: %v", err)
		}
		listeners[i] = l
		addrs[i] = l.Addr().String()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = distengine.ServeWorker(l)
		}()
	}
	tb.Cleanup(func() {
		for _, l := range listeners {
			l.Close()
		}
		wg.Wait()
	})
	return addrs
}
