// Package distengine runs the paper's region-growing algorithm as a real
// network-distributed system: N worker processes each own a horizontal
// band of the image, split it locally, exchange boundary RAG rows and
// merge decisions over TCP through a coordinator hub, and stream stage
// events back — the message-passing program internal/mpengine simulates
// on 32 virtual nodes, executed over real sockets.
//
// The wire protocol is a small set of length-prefixed binary frames
// (stdlib only): a job frame carrying geometry, config, and the worker's
// band of pixels; lockstep collective request/response pairs mirroring
// the collectives the simulated machine models (all-reduce, all-gather,
// irregular exchange); fire-and-forget stage events from rank 0; a
// terminal result frame with the band's final labels; and an abort frame
// the coordinator injects on context cancellation, which every worker
// observes at its next collective — within one split/merge iteration.
//
// The coordinator side (Engine) implements core.ContextEngine, so it
// plugs into the regiongrow.Segmenter facade as the Distributed kind; the
// worker side (ServeWorker) is wrapped by cmd/regiongrow-worker. Labels
// are byte-identical to the sequential engine for every Config: band
// boundaries are aligned to the effective split cap (no split square
// crosses one) and every merge decision rule is shared through
// internal/rag, the same construction the property-tested shmengine and
// mpengine use.
package distengine
