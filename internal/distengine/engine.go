package distengine

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
)

// Wire codes for stage events: core.EventKind values, pinned here so a
// drifting enum shows up as a compile-time constant mismatch in tests
// rather than silent event corruption.
const (
	evSplitStart     = int32(core.EventSplitStart)
	evSplitDone      = int32(core.EventSplitDone)
	evGraphDone      = int32(core.EventGraphDone)
	evMergeIteration = int32(core.EventMergeIteration)
	evMergeDone      = int32(core.EventMergeDone)
)

// Engine is the coordinator side of the network-distributed engine: it
// decomposes the image into horizontal bands, ships one band to each
// worker process over TCP, serves the collectives their merge protocol
// needs, and assembles the final segmentation. Labels are byte-identical
// to the sequential engine's for every Config — the same invariant every
// other engine holds — because the band program is the paper's
// message-passing algorithm with all decision rules shared through
// internal/rag.
type Engine struct {
	addrs       []string
	dialTimeout time.Duration
}

// New returns a coordinator over the given worker addresses. A job uses
// min(len(addrs), image-rows/cap) workers — bands are at least one split
// cap tall, so tiny images use fewer workers than the cluster has.
func New(addrs []string) *Engine {
	return &Engine{addrs: addrs, dialTimeout: 10 * time.Second}
}

// Addrs returns the configured worker addresses.
func (e *Engine) Addrs() []string { return e.addrs }

// Name implements core.Engine.
func (e *Engine) Name() string {
	return fmt.Sprintf("distributed/%dw", len(e.addrs))
}

// Segment implements core.Engine.
func (e *Engine) Segment(im *pixmap.Image, cfg core.Config) (*core.Segmentation, error) {
	return e.SegmentContext(context.Background(), im, cfg, core.Run{})
}

// wconn is one coordinator→worker connection: reads are owned by the
// handler goroutine, writes are shared between it and the abort path, so
// they serialize on mu.
type wconn struct {
	c  net.Conn
	r  *bufio.Reader
	mu sync.Mutex
	w  *bufio.Writer
}

func (wc *wconn) write(t frameType, payload []byte) error {
	return wc.writeWithin(t, payload, frameWriteTimeout)
}

// writeWithin serializes one frame write under its own deadline, so a
// worker that stops reading surfaces as a timeout instead of blocking
// the handler (writeFrame flushes, so the deadline covers the socket
// write). The abort path passes a tighter bound.
func (wc *wconn) writeWithin(t frameType, payload []byte, d time.Duration) error {
	wc.mu.Lock()
	defer wc.mu.Unlock()
	if err := wc.c.SetWriteDeadline(time.Now().Add(d)); err != nil { //vet:timing deadline arithmetic; never reaches wire payload bytes
		return err
	}
	return writeFrame(wc.w, t, payload)
}

// commCounters tallies the job's real communication, reported in
// core.CommStats (the same block the simulated message-passing engine
// fills from its cost model).
type commCounters struct {
	messages, words             atomic.Int64
	reduces, gathers, exchanges atomic.Int64
	barriers                    atomic.Int64
}

// SegmentContext implements core.ContextEngine. Cancelling ctx sends an
// abort frame to every worker and tears the connections down; workers
// abandon the job at their next collective (within one split/merge
// iteration) and stay alive for the next one. All coordinator goroutines
// have drained by the time the error returns.
func (e *Engine) SegmentContext(ctx context.Context, im *pixmap.Image, cfg core.Config, run core.Run) (*core.Segmentation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(e.addrs) == 0 {
		return nil, fmt.Errorf("distengine: no cluster workers configured")
	}
	if im.W == 0 || im.H == 0 {
		return nil, fmt.Errorf("distengine: cannot distribute an empty %dx%d image", im.W, im.H)
	}
	cap := quadsplit.EffectiveCap(quadsplit.Options{MaxSquare: cfg.MaxSquare}, im.W, im.H)
	blocks := (im.H + cap - 1) / cap
	m := min(len(e.addrs), blocks)

	// Band boundaries: blocks of cap rows spread as evenly as possible,
	// every boundary cap-aligned so no split square crosses one.
	starts := make([]int, m+1)
	base, rem := blocks/m, blocks%m
	for r := 0; r < m; r++ {
		take := base
		if r < rem {
			take++
		}
		starts[r+1] = min(starts[r]+take*cap, im.H)
	}
	starts[m] = im.H

	run.Emit(core.StageEvent{Kind: core.EventSplitStart})
	t0 := time.Now() //vet:timing total wall-time for Stats; never reaches labels or frames

	conns := make([]*wconn, m)
	defer func() {
		for _, wc := range conns {
			if wc != nil {
				wc.c.Close()
			}
		}
	}()
	d := net.Dialer{Timeout: e.dialTimeout}
	for r := 0; r < m; r++ {
		c, err := d.DialContext(ctx, "tcp", e.addrs[r])
		if err != nil {
			return nil, fmt.Errorf("distengine: dialing worker %d at %s: %w", r, e.addrs[r], err)
		}
		//vet:nodeadline writes set per-frame deadlines in wconn.writeWithin; reads unblock via fail's Close (worker compute time is unbounded, so no read deadline applies)
		conns[r] = &wconn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}
	}

	coll := newCollective(m)
	var comm commCounters

	// fail aborts the whole job once: release blocked collectives, then
	// best-effort abort frames and teardown so workers and handlers
	// blocked on I/O unwind too. The write deadline is set on the raw
	// conn first (legal concurrently, no lock needed): it interrupts a
	// handler blocked mid-write to a stalled peer — releasing wconn.mu —
	// and the abort frame itself goes out under a tight 2-second bound,
	// so a worker that stops reading can never stall cancellation.
	var failOnce sync.Once
	fail := func(err error) {
		failOnce.Do(func() {
			coll.abort(err)
			deadline := time.Now().Add(2 * time.Second) //vet:timing deadline arithmetic; never reaches wire payload bytes
			for _, wc := range conns {
				_ = wc.c.SetWriteDeadline(deadline)
			}
			for _, wc := range conns {
				_ = wc.writeWithin(frameAbort, nil, 2*time.Second)
				wc.c.Close()
			}
		})
	}

	// The context watcher turns ctx cancellation into a job abort. jobDone
	// stops it on the success path.
	jobDone := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-jobDone:
		}
	}()

	results := make([]*workerResult, m)
	var wg sync.WaitGroup
	for r := 0; r < m; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := e.runWorker(rank, conns[rank], starts, cap, im, cfg, coll, &comm, run, results); err != nil {
				fail(err)
			}
		}(r)
	}
	wg.Wait()
	close(jobDone)
	watcher.Wait()

	if err := coll.abortError(); err != nil {
		return nil, err
	}
	for r, res := range results {
		if res == nil {
			// Unreachable: a handler that returns without a result also
			// returns an error, which aborts above. Guard the assembly
			// against future handler changes rather than panicking.
			return nil, fmt.Errorf("distengine: worker %d finished without a result", r)
		}
	}

	// Assemble the output from the band results. Global stats are
	// identical on every worker (they flow through the collectives); take
	// rank 0's.
	out := make([]int32, im.W*im.H)
	var splitWall time.Duration
	for r, res := range results {
		copy(out[starts[r]*im.W:], res.Labels)
		if d := time.Duration(res.SplitWallNanos); d > splitWall {
			splitWall = d
		}
	}
	totalWall := time.Since(t0) //vet:timing total wall-time for Stats; never reaches labels or frames
	r0 := results[0]
	mergesPerIter := make([]int, len(r0.MergesPerIter))
	for i, v := range r0.MergesPerIter {
		mergesPerIter[i] = int(v)
	}
	seg := &core.Segmentation{
		W: im.W, H: im.H,
		Labels:            out,
		SplitIterations:   r0.SplitIterations,
		MergeIterations:   r0.MergeIterations,
		SquaresAfterSplit: r0.Squares,
		MergesPerIter:     mergesPerIter,
		ForcedResolutions: r0.Forced,
		SplitWall:         splitWall,
		MergeWall:         totalWall - splitWall,
		Comm: &core.CommStats{
			Messages:  comm.messages.Load(),
			Words:     comm.words.Load(),
			Barriers:  comm.barriers.Load(),
			Gathers:   comm.gathers.Load(),
			Reduces:   comm.reduces.Load(),
			Exchanges: comm.exchanges.Load(),
		},
	}
	seg.FillRegions(im)
	run.Emit(core.StageEvent{Kind: core.EventMergeDone, Iterations: seg.MergeIterations, Regions: seg.FinalRegions})
	return seg, nil
}

// syncErr classifies a collective error for a connection handler: once
// the collective is aborted the teardown is already in flight, so the
// handler just unwinds; a round error without an abort (e.g. malformed
// exchange routing from one worker) must propagate so the caller aborts
// the job — otherwise every handler would swallow it and the coordinator
// would try to assemble nil results.
func syncErr(coll *collective, err error) error {
	if coll.abortError() != nil {
		return nil
	}
	return err
}

// runWorker drives one worker connection: send the job frame, then serve
// its collective requests until the result frame arrives. It returns nil
// on a normal result and the failure otherwise (including reads cut short
// by an abort teardown — the collective's abort error wins over those).
func (e *Engine) runWorker(rank int, wc *wconn, starts []int, cap int, im *pixmap.Image, cfg core.Config, coll *collective, comm *commCounters, run core.Run, results []*workerResult) error {
	j := &job{
		Rank:       rank,
		Workers:    len(starts) - 1,
		W:          im.W,
		H:          im.H,
		Cap:        cap,
		Threshold:  cfg.Threshold,
		Tie:        int32(cfg.Tie),
		Seed:       cfg.Seed,
		BandStarts: starts,
		Pix:        im.Pix[starts[rank]*im.W : starts[rank+1]*im.W],
	}
	if err := wc.write(frameJob, j.encode()); err != nil {
		return fmt.Errorf("distengine: sending job to worker %d: %w", rank, err)
	}
	for {
		ft, payload, err := readFrame(wc.r)
		if err != nil {
			if aerr := coll.abortError(); aerr != nil {
				return nil // the abort path closed the connection under us
			}
			return fmt.Errorf("distengine: worker %d connection: %w", rank, err)
		}
		comm.messages.Add(1)
		comm.words.Add(int64(len(payload) / 4))
		switch ft {
		case frameReduce:
			d := dec{b: payload}
			op := d.bytes(1)
			seq := d.u32()
			val := d.i64()
			if d.err != nil {
				return fmt.Errorf("distengine: worker %d: malformed reduce", rank)
			}
			var kind roundKind
			switch op[0] {
			case opMax:
				kind = roundReduceMax
				comm.reduces.Add(1)
			case opSum:
				kind = roundReduceSum
				comm.reduces.Add(1)
			case opBarrier:
				kind = roundBarrier
				comm.barriers.Add(1)
			default:
				return fmt.Errorf("distengine: worker %d: unknown reduce op %d", rank, op[0])
			}
			r, err := coll.sync(rank, kind, seq, val, nil)
			if err != nil {
				return syncErr(coll, err)
			}
			var e2 enc
			e2.i64(r.val)
			if err := wc.write(frameReduceResult, e2.b); err != nil {
				return fmt.Errorf("distengine: answering worker %d: %w", rank, err)
			}
		case frameGather:
			d := dec{b: payload}
			seq := d.u32()
			data := d.i32s()
			if d.err != nil {
				return fmt.Errorf("distengine: worker %d: malformed gather", rank)
			}
			comm.gathers.Add(1)
			r, err := coll.sync(rank, roundGather, seq, 0, data)
			if err != nil {
				return syncErr(coll, err)
			}
			var e2 enc
			e2.i32s(r.gather)
			if err := wc.write(frameGatherResult, e2.b); err != nil {
				return fmt.Errorf("distengine: answering worker %d: %w", rank, err)
			}
		case frameExchange:
			d := dec{b: payload}
			seq := d.u32()
			var routed []int32
			for d.err == nil && len(d.b) > 0 {
				dst := d.i32()
				data := d.i32s()
				routed = append(routed, dst, int32(len(data)))
				routed = append(routed, data...)
			}
			if d.err != nil {
				return fmt.Errorf("distengine: worker %d: malformed exchange", rank)
			}
			comm.exchanges.Add(1)
			r, err := coll.sync(rank, roundExchange, seq, 0, routed)
			if err != nil {
				return syncErr(coll, err)
			}
			var e2 enc
			e2.i32s(r.route[rank])
			if err := wc.write(frameExchangeResult, e2.b); err != nil {
				return fmt.Errorf("distengine: answering worker %d: %w", rank, err)
			}
		case frameEvent:
			ev, err := decodeEvent(payload)
			if err != nil {
				return fmt.Errorf("distengine: worker %d: malformed event", rank)
			}
			if rank == 0 {
				run.Emit(core.StageEvent{
					Kind:       core.EventKind(ev.Kind),
					Iteration:  int(ev.Iteration),
					Merges:     int(ev.Merges),
					Iterations: int(ev.Iterations),
					Squares:    int(ev.Squares),
					Regions:    int(ev.Regions),
				})
			}
		case frameResult:
			res, err := decodeWorkerResult(payload)
			if err != nil {
				return fmt.Errorf("distengine: worker %d: malformed result: %w", rank, err)
			}
			want := (starts[rank+1] - starts[rank]) * im.W
			if len(res.Labels) != want {
				return fmt.Errorf("distengine: worker %d returned %d labels, want %d", rank, len(res.Labels), want)
			}
			results[rank] = res
			return nil
		case frameError:
			return fmt.Errorf("distengine: worker %d failed: %s", rank, payload)
		default:
			return fmt.Errorf("distengine: worker %d sent unexpected frame %d", rank, ft)
		}
	}
}

var _ core.ContextEngine = (*Engine)(nil)
