package distengine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
	"regiongrow/internal/transport"
)

// Wire codes for stage events: core.EventKind values, pinned here so a
// drifting enum shows up as a compile-time constant mismatch in tests
// rather than silent event corruption.
const (
	evSplitStart     = int32(core.EventSplitStart)
	evSplitDone      = int32(core.EventSplitDone)
	evGraphDone      = int32(core.EventGraphDone)
	evMergeIteration = int32(core.EventMergeIteration)
	evMergeDone      = int32(core.EventMergeDone)
)

// ErrWorkerLost classifies a job failure as transport-level: a worker
// died, stalled past the link timeout, or its connection broke. Failures
// wrapping it are retryable — the engine re-runs the job on the workers
// that still answer a health probe. Protocol failures (malformed frames,
// a worker-reported error, a desynchronized collective) do not wrap it
// and abort the job for good.
var ErrWorkerLost = errors.New("distengine: worker lost")

// ErrNoWorkers reports that a retry found no healthy worker to re-run
// the job on (or that the engine has no members at all).
var ErrNoWorkers = errors.New("distengine: no healthy workers")

// Tuning bundles the engine's liveness and retry knobs. The zero value
// of any field means its default; production defaults are deliberately
// lax (heartbeats every 10s, a 30s silent-link bound) so they can never
// distort a healthy job, while tests dial them down to milliseconds.
type Tuning struct {
	// DialTimeout bounds each worker dial (default 10s).
	DialTimeout time.Duration
	// HeartbeatInterval is the ping cadence both sides keep up while a
	// job runs (default 10s). It must stay well under LinkTimeout.
	HeartbeatInterval time.Duration
	// LinkTimeout bounds every read on a job connection: a peer silent
	// for this long — no frames, no pings — is declared lost (default 30s).
	LinkTimeout time.Duration
	// WriteTimeout bounds every frame write (default 30s); only a peer
	// that stopped draining the link can make a write block.
	WriteTimeout time.Duration
	// ProbeTimeout bounds each step of a health probe's dial+ping+pong
	// round trip (default 2s).
	ProbeTimeout time.Duration
	// MaxAttempts caps how many times a job runs end to end, the first
	// attempt included (default 3; minimum 1).
	MaxAttempts int
}

func (t Tuning) withDefaults() Tuning {
	if t.DialTimeout <= 0 {
		t.DialTimeout = 10 * time.Second
	}
	if t.HeartbeatInterval <= 0 {
		t.HeartbeatInterval = defaultHeartbeatInterval
	}
	if t.LinkTimeout <= 0 {
		t.LinkTimeout = defaultLinkTimeout
	}
	if t.WriteTimeout <= 0 {
		t.WriteTimeout = frameWriteTimeout
	}
	if t.ProbeTimeout <= 0 {
		t.ProbeTimeout = 2 * time.Second
	}
	if t.MaxAttempts < 1 {
		t.MaxAttempts = 3
	}
	return t
}

// Engine is the coordinator side of the distributed engine: it
// decomposes the image into horizontal bands, ships one band to each
// worker over the configured transport, serves the collectives their
// merge protocol needs, and assembles the final segmentation. Labels
// are byte-identical to the sequential engine's for every Config and
// every worker count — which is exactly what makes failure recovery
// sound: re-running a job across fewer workers re-bands the image but
// cannot change a single output byte.
//
// Membership is dynamic: Add/Remove/SetMembers take effect at the next
// job, and a worker lost mid-job triggers a retry across the members
// that still answer a health probe.
type Engine struct {
	tr  transport.Transport
	tun Tuning

	mu      sync.Mutex
	members []string
}

// New returns a coordinator over TCP worker addresses. A job uses
// min(members, image-rows/cap) workers — bands are at least one split
// cap tall, so tiny images use fewer workers than the cluster has.
func New(addrs []string) *Engine {
	return NewOver(transport.TCP{}, addrs)
}

// NewOver returns a coordinator over an explicit transport — TCP for
// real clusters, transport.Mem for in-process workers, or a fault-
// injecting wrapper in tests.
func NewOver(tr transport.Transport, addrs []string) *Engine {
	e := &Engine{tr: tr, tun: Tuning{}.withDefaults()}
	e.SetMembers(addrs)
	return e
}

// SetTuning replaces the engine's liveness/retry tuning; zero fields
// take their defaults. Jobs already running keep the tuning they
// started with.
func (e *Engine) SetTuning(t Tuning) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.tun = t.withDefaults()
}

func (e *Engine) tuning() Tuning {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.tun
}

// Members returns the current membership, in banding order.
func (e *Engine) Members() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.members))
	copy(out, e.members)
	return out
}

// SetMembers replaces the membership (duplicates removed, order kept).
// It takes effect at the next job.
func (e *Engine) SetMembers(addrs []string) {
	seen := make(map[string]bool, len(addrs))
	members := make([]string, 0, len(addrs))
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		seen[a] = true
		members = append(members, a)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.members = members
}

// AddMember appends a worker address; it reports whether the membership
// changed (false for a duplicate or empty address).
func (e *Engine) AddMember(addr string) bool {
	if addr == "" {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, a := range e.members {
		if a == addr {
			return false
		}
	}
	e.members = append(e.members, addr)
	return true
}

// RemoveMember drops a worker address; it reports whether the address
// was a member. Jobs already running against it are unaffected.
func (e *Engine) RemoveMember(addr string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, a := range e.members {
		if a == addr {
			e.members = append(e.members[:i], e.members[i+1:]...)
			return true
		}
	}
	return false
}

// Addrs returns the configured worker addresses (alias of Members, kept
// for the original fixed-membership API).
func (e *Engine) Addrs() []string { return e.Members() }

// MemberHealth is one member's probe outcome.
type MemberHealth struct {
	Addr    string
	Healthy bool
}

// Health probes every member with a dial+ping+pong round trip and
// reports each outcome in membership order.
func (e *Engine) Health(ctx context.Context) []MemberHealth {
	members := e.Members()
	healthy := e.probeAll(ctx, members)
	out := make([]MemberHealth, len(members))
	for i, a := range members {
		out[i] = MemberHealth{Addr: a, Healthy: healthy[i]}
	}
	return out
}

// probeAll health-checks addrs concurrently; result i reports addr i.
func (e *Engine) probeAll(ctx context.Context, addrs []string) []bool {
	tun := e.tuning()
	out := make([]bool, len(addrs))
	var wg sync.WaitGroup
	//vet:noctx each probe bounds itself with ProbeTimeout under this ctx
	for i, addr := range addrs {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			out[i] = probe(ctx, e.tr, addr, tun.ProbeTimeout)
		}(i, addr)
	}
	wg.Wait()
	return out
}

// probe runs one health round trip: dial, ping, expect a pong.
func probe(ctx context.Context, tr transport.Transport, addr string, timeout time.Duration) bool {
	dctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	c, err := tr.Dial(dctx, addr)
	if err != nil {
		return false
	}
	defer c.Close()
	if err := c.Send(transport.Frame{Type: byte(framePing)}, timeout); err != nil {
		return false
	}
	f, err := c.Recv(timeout)
	return err == nil && frameType(f.Type) == framePong
}

// Name implements core.Engine.
func (e *Engine) Name() string {
	return fmt.Sprintf("distributed/%dw", len(e.Members()))
}

// Segment implements core.Engine.
func (e *Engine) Segment(im *pixmap.Image, cfg core.Config) (*core.Segmentation, error) {
	return e.SegmentContext(context.Background(), im, cfg, core.Run{})
}

// commCounters tallies the job's real communication, reported in
// core.CommStats (the same block the simulated message-passing engine
// fills from its cost model). Liveness pings are not communication of
// the algorithm and are never counted.
type commCounters struct {
	messages, words             atomic.Int64
	reduces, gathers, exchanges atomic.Int64
	barriers                    atomic.Int64
}

// SegmentContext implements core.ContextEngine. Cancelling ctx sends an
// abort frame to every worker and tears the connections down; workers
// abandon the job at their next collective (within one split/merge
// iteration) and stay alive for the next one. All coordinator
// goroutines have drained by the time the error returns.
//
// A worker lost mid-job (death, stall past the link timeout, broken
// connection) does not fail the job: the engine probes the membership
// and re-runs the job across the workers that answered, re-banding the
// image. Labels are byte-identical across any membership, so a retried
// job is indistinguishable from a first-attempt run on the survivors.
// Retries are counted in Stats.Comm.Retries. The job fails with
// ErrNoWorkers when no member answers the probe, with the transport
// failure itself once MaxAttempts is exhausted, and immediately on
// non-retryable failures (cancellation, protocol errors).
func (e *Engine) SegmentContext(ctx context.Context, im *pixmap.Image, cfg core.Config, run core.Run) (*core.Segmentation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	members := e.Members()
	if len(members) == 0 {
		return nil, fmt.Errorf("distengine: no cluster workers configured: %w", ErrNoWorkers)
	}
	if im.W == 0 || im.H == 0 {
		return nil, fmt.Errorf("distengine: cannot distribute an empty %dx%d image", im.W, im.H)
	}
	tun := e.tuning()
	var retries int64
	for attempt := 0; ; attempt++ {
		addrs := members
		if attempt > 0 {
			// Probe the full membership, not last attempt's survivors: a
			// worker that restarted between attempts rejoins the job.
			healthy := e.probeAll(ctx, members)
			addrs = addrs[:0:0]
			for i, a := range members {
				if healthy[i] {
					addrs = append(addrs, a)
				}
			}
			if len(addrs) == 0 {
				return nil, fmt.Errorf("distengine: job unrecoverable after %d attempts: %w", attempt, ErrNoWorkers)
			}
		}
		seg, err := e.runJob(ctx, tun, addrs, im, cfg, run)
		if err == nil {
			seg.Comm.Retries = retries
			return seg, nil
		}
		if !errors.Is(err, ErrWorkerLost) || attempt+1 >= tun.MaxAttempts {
			return nil, err
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		retries++
	}
}

// runJob executes one end-to-end attempt across the given workers.
func (e *Engine) runJob(ctx context.Context, tun Tuning, addrs []string, im *pixmap.Image, cfg core.Config, run core.Run) (*core.Segmentation, error) {
	cap := quadsplit.EffectiveCap(quadsplit.Options{MaxSquare: cfg.MaxSquare}, im.W, im.H)
	blocks := (im.H + cap - 1) / cap
	m := min(len(addrs), blocks)

	// Band boundaries: blocks of cap rows spread as evenly as possible,
	// every boundary cap-aligned so no split square crosses one.
	starts := make([]int, m+1)
	base, rem := blocks/m, blocks%m
	for r := 0; r < m; r++ {
		take := base
		if r < rem {
			take++
		}
		starts[r+1] = min(starts[r]+take*cap, im.H)
	}
	starts[m] = im.H

	run.Emit(core.StageEvent{Kind: core.EventSplitStart})
	t0 := time.Now() //vet:timing total wall-time for Stats; never reaches labels or frames

	conns := make([]transport.Conn, m)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	for r := 0; r < m; r++ {
		dctx, cancel := context.WithTimeout(ctx, tun.DialTimeout)
		c, err := e.tr.Dial(dctx, addrs[r])
		cancel()
		if err != nil {
			return nil, fmt.Errorf("distengine: dialing worker %d at %s: %v: %w", r, addrs[r], err, ErrWorkerLost)
		}
		conns[r] = c
	}

	coll := newCollective(m)
	var comm commCounters

	// fail aborts the whole job once: release blocked collectives, then
	// best-effort abort frames and teardown so workers and handlers
	// blocked on I/O unwind too. The abort frame goes out under a tight
	// 2-second bound, so a worker that stops reading can never stall
	// cancellation, and Close releases any handler blocked on the link.
	var failOnce sync.Once
	fail := func(err error) {
		failOnce.Do(func() {
			coll.abort(err)
			for _, c := range conns {
				_ = c.Send(transport.Frame{Type: byte(frameAbort)}, 2*time.Second)
				c.Close()
			}
		})
	}

	// The context watcher turns ctx cancellation into a job abort; the
	// heartbeat goroutines keep every worker's read deadline fed while
	// its collectives wait on other bands' compute. jobDone stops both.
	jobDone := make(chan struct{})
	var aux sync.WaitGroup
	aux.Add(1)
	go func() {
		defer aux.Done()
		select {
		case <-ctx.Done():
			fail(ctx.Err())
		case <-jobDone:
		}
	}()
	for _, c := range conns {
		aux.Add(1)
		go func(c transport.Conn) {
			defer aux.Done()
			pingLoop(c, tun.HeartbeatInterval, tun.WriteTimeout, jobDone)
		}(c)
	}

	results := make([]*workerResult, m)
	var wg sync.WaitGroup
	for r := 0; r < m; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := runWorker(rank, conns[rank], tun, starts, cap, im, cfg, coll, &comm, run, results); err != nil {
				fail(err)
			}
		}(r)
	}
	wg.Wait()
	close(jobDone)
	aux.Wait()

	if err := coll.abortError(); err != nil {
		return nil, err
	}
	for r, res := range results {
		if res == nil {
			// Unreachable: a handler that returns without a result also
			// returns an error, which aborts above. Guard the assembly
			// against future handler changes rather than panicking.
			return nil, fmt.Errorf("distengine: worker %d finished without a result", r)
		}
	}

	// Assemble the output from the band results. Global stats are
	// identical on every worker (they flow through the collectives); take
	// rank 0's.
	out := make([]int32, im.W*im.H)
	var splitWall time.Duration
	for r, res := range results {
		copy(out[starts[r]*im.W:], res.Labels)
		if d := time.Duration(res.SplitWallNanos); d > splitWall {
			splitWall = d
		}
	}
	totalWall := time.Since(t0) //vet:timing total wall-time for Stats; never reaches labels or frames
	r0 := results[0]
	mergesPerIter := make([]int, len(r0.MergesPerIter))
	for i, v := range r0.MergesPerIter {
		mergesPerIter[i] = int(v)
	}
	seg := &core.Segmentation{
		W: im.W, H: im.H,
		Labels:            out,
		SplitIterations:   r0.SplitIterations,
		MergeIterations:   r0.MergeIterations,
		SquaresAfterSplit: r0.Squares,
		MergesPerIter:     mergesPerIter,
		ForcedResolutions: r0.Forced,
		SplitWall:         splitWall,
		MergeWall:         totalWall - splitWall,
		Comm: &core.CommStats{
			Messages:  comm.messages.Load(),
			Words:     comm.words.Load(),
			Barriers:  comm.barriers.Load(),
			Gathers:   comm.gathers.Load(),
			Reduces:   comm.reduces.Load(),
			Exchanges: comm.exchanges.Load(),
		},
	}
	seg.FillRegions(im)
	run.Emit(core.StageEvent{Kind: core.EventMergeDone, Iterations: seg.MergeIterations, Regions: seg.FinalRegions})
	return seg, nil
}

// pingLoop emits liveness pings on c until the job ends or a ping fails
// (a failed ping needs no action of its own: the peer's read deadline
// or this side's handler surfaces the loss).
func pingLoop(c transport.Conn, interval, writeTimeout time.Duration, done <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			if c.Send(transport.Frame{Type: byte(framePing)}, writeTimeout) != nil {
				return
			}
		}
	}
}

// syncErr classifies a collective error for a connection handler: once
// the collective is aborted the teardown is already in flight, so the
// handler just unwinds; a round error without an abort (e.g. malformed
// exchange routing from one worker) must propagate so the caller aborts
// the job — otherwise every handler would swallow it and the coordinator
// would try to assemble nil results.
func syncErr(coll *collective, err error) error {
	if coll.abortError() != nil {
		return nil
	}
	return err
}

// lost wraps a transport-level handler failure as retryable, unless the
// abort path already owns the teardown.
func lost(coll *collective, rank int, op string, err error) error {
	if coll.abortError() != nil {
		return nil // the abort path closed the connection under us
	}
	return fmt.Errorf("distengine: worker %d: %s: %v: %w", rank, op, err, ErrWorkerLost)
}

// runWorker drives one worker connection: send the job frame, then serve
// its collective requests until the result frame arrives. It returns nil
// on a normal result and the failure otherwise — wrapping ErrWorkerLost
// for transport-level losses (including reads cut short by an abort
// teardown, where the collective's abort error wins instead).
func runWorker(rank int, wc transport.Conn, tun Tuning, starts []int, cap int, im *pixmap.Image, cfg core.Config, coll *collective, comm *commCounters, run core.Run, results []*workerResult) error {
	j := &job{
		Rank:              rank,
		Workers:           len(starts) - 1,
		W:                 im.W,
		H:                 im.H,
		Cap:               cap,
		Threshold:         cfg.Threshold,
		Tie:               int32(cfg.Tie),
		Seed:              cfg.Seed,
		HeartbeatMillis:   uint32(tun.HeartbeatInterval / time.Millisecond),
		LinkTimeoutMillis: uint32(tun.LinkTimeout / time.Millisecond),
		BandStarts:        starts,
		Pix:               im.Pix[starts[rank]*im.W : starts[rank+1]*im.W],
	}
	if err := wc.Send(transport.Frame{Type: byte(frameJob), Payload: j.encode()}, tun.WriteTimeout); err != nil {
		return lost(coll, rank, "sending job", err)
	}
	answer := func(t frameType, payload []byte) error {
		if err := wc.Send(transport.Frame{Type: byte(t), Payload: payload}, tun.WriteTimeout); err != nil {
			return lost(coll, rank, "answering", err)
		}
		return nil
	}
	for {
		f, err := wc.Recv(tun.LinkTimeout)
		if err != nil {
			return lost(coll, rank, "connection", err)
		}
		ft, payload := frameType(f.Type), f.Payload
		if ft == framePing || ft == framePong {
			continue // liveness traffic; not the algorithm's communication
		}
		comm.messages.Add(1)
		comm.words.Add(int64(len(payload) / 4))
		switch ft {
		case frameReduce:
			d := dec{b: payload}
			op := d.bytes(1)
			seq := d.u32()
			val := d.i64()
			if d.err != nil {
				return fmt.Errorf("distengine: worker %d: malformed reduce", rank)
			}
			var kind roundKind
			switch op[0] {
			case opMax:
				kind = roundReduceMax
				comm.reduces.Add(1)
			case opSum:
				kind = roundReduceSum
				comm.reduces.Add(1)
			case opBarrier:
				kind = roundBarrier
				comm.barriers.Add(1)
			default:
				return fmt.Errorf("distengine: worker %d: unknown reduce op %d", rank, op[0])
			}
			r, err := coll.sync(rank, kind, seq, val, nil)
			if err != nil {
				return syncErr(coll, err)
			}
			var e2 enc
			e2.i64(r.val)
			if err := answer(frameReduceResult, e2.b); err != nil {
				return err
			}
		case frameGather:
			d := dec{b: payload}
			seq := d.u32()
			data := d.i32s()
			if d.err != nil {
				return fmt.Errorf("distengine: worker %d: malformed gather", rank)
			}
			comm.gathers.Add(1)
			r, err := coll.sync(rank, roundGather, seq, 0, data)
			if err != nil {
				return syncErr(coll, err)
			}
			var e2 enc
			e2.i32s(r.gather)
			if err := answer(frameGatherResult, e2.b); err != nil {
				return err
			}
		case frameExchange:
			d := dec{b: payload}
			seq := d.u32()
			var routed []int32
			for d.err == nil && len(d.b) > 0 {
				dst := d.i32()
				data := d.i32s()
				routed = append(routed, dst, int32(len(data)))
				routed = append(routed, data...)
			}
			if d.err != nil {
				return fmt.Errorf("distengine: worker %d: malformed exchange", rank)
			}
			comm.exchanges.Add(1)
			r, err := coll.sync(rank, roundExchange, seq, 0, routed)
			if err != nil {
				return syncErr(coll, err)
			}
			var e2 enc
			e2.i32s(r.route[rank])
			if err := answer(frameExchangeResult, e2.b); err != nil {
				return err
			}
		case frameEvent:
			ev, err := decodeEvent(payload)
			if err != nil {
				return fmt.Errorf("distengine: worker %d: malformed event", rank)
			}
			if rank == 0 {
				run.Emit(core.StageEvent{
					Kind:       core.EventKind(ev.Kind),
					Iteration:  int(ev.Iteration),
					Merges:     int(ev.Merges),
					Iterations: int(ev.Iterations),
					Squares:    int(ev.Squares),
					Regions:    int(ev.Regions),
				})
			}
		case frameResult:
			res, err := decodeWorkerResult(payload)
			if err != nil {
				return fmt.Errorf("distengine: worker %d: malformed result: %w", rank, err)
			}
			want := (starts[rank+1] - starts[rank]) * im.W
			if len(res.Labels) != want {
				return fmt.Errorf("distengine: worker %d returned %d labels, want %d", rank, len(res.Labels), want)
			}
			results[rank] = res
			return nil
		case frameError:
			return fmt.Errorf("distengine: worker %d failed: %s", rank, payload)
		default:
			return fmt.Errorf("distengine: worker %d sent unexpected frame %d", rank, ft)
		}
	}
}

var _ core.ContextEngine = (*Engine)(nil)
