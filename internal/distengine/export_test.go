package distengine

// Frame-type byte values exported to the external test package so chaos
// fault scripts can name exact protocol points (transport/faulty deals
// in raw frame bytes).
const (
	TFrameJob            = byte(frameJob)
	TFrameReduce         = byte(frameReduce)
	TFrameReduceResult   = byte(frameReduceResult)
	TFrameGather         = byte(frameGather)
	TFrameGatherResult   = byte(frameGatherResult)
	TFrameExchange       = byte(frameExchange)
	TFrameExchangeResult = byte(frameExchangeResult)
	TFrameResult         = byte(frameResult)
	TFramePing           = byte(framePing)
	TFramePong           = byte(framePong)
)
