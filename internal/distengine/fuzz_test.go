package distengine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"

	"regiongrow/internal/core"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
	"regiongrow/internal/transport"
)

// captureStreams runs one small 2-worker job through wire_test's tap
// listeners and returns every recorded byte stream (both directions of
// every connection) — real protocol traffic as fuzz seeds.
func captureStreams(f *testing.F) [][]byte {
	f.Helper()
	const workers = 2
	addrs := make([]string, workers)
	taps := make([]*tapListener, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Fatal(err)
		}
		tl := &tapListener{Listener: l}
		taps[i] = tl
		addrs[i] = l.Addr().String()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ServeWorker(transport.WrapListener(tl))
		}()
	}
	defer wg.Wait()
	defer func() {
		for _, tl := range taps {
			tl.Listener.Close()
		}
	}()

	im := pixmap.Generate(pixmap.Image1NestedRects128, pixmap.DefaultGenOptions())
	if _, err := New(addrs).Segment(im, core.Config{Threshold: 10, Tie: rag.SmallestID}); err != nil {
		f.Fatal(err)
	}

	var streams [][]byte
	for _, tl := range taps {
		tl.mu.Lock()
		for _, c := range tl.conns {
			streams = append(streams, bytes.Clone(c.in.Bytes()), bytes.Clone(c.out.Bytes()))
		}
		tl.mu.Unlock()
	}
	return streams
}

// FuzzReadFrame: the frame decoder — and the payload decoders behind it
// — must neither panic nor commit unbounded memory on arbitrary bytes,
// because they are exactly what a malicious or corrupt peer controls.
// Seeds are captured live protocol traffic plus adversarial headers
// (oversized and lying length prefixes, truncation points).
func FuzzReadFrame(f *testing.F) {
	for _, s := range captureStreams(f) {
		f.Add(s)
	}
	// A frame whose length prefix exceeds the MaxFrame bound.
	huge := make([]byte, 5)
	huge[0] = byte(frameJob)
	binary.BigEndian.PutUint32(huge[1:], transport.MaxFrame+1)
	f.Add(huge)
	// A frame that declares MaxFrame bytes but delivers three: the
	// decoder must fail on the missing bytes without allocating the
	// claimed quarter-gigabyte.
	lying := make([]byte, 8)
	lying[0] = byte(frameResult)
	binary.BigEndian.PutUint32(lying[1:], transport.MaxFrame)
	f.Add(lying)
	f.Add([]byte{})
	f.Add([]byte{byte(frameAbort), 0, 0, 0, 0})
	f.Add([]byte{byte(frameReduce), 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for {
			fr, err := transport.ReadFrame(r)
			if err != nil {
				return
			}
			// The typed payload decoders sit directly behind ReadFrame on
			// both peers; they must be as panic-free as the framing.
			switch frameType(fr.Type) {
			case frameJob:
				_, _ = decodeJob(fr.Payload)
			case frameResult:
				_, _ = decodeWorkerResult(fr.Payload)
			case frameEvent:
				_, _ = decodeEvent(fr.Payload)
			}
		}
	})
}
