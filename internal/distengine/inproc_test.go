package distengine_test

// The in-process channel-backed transport (transport.Mem) is a
// first-class engine path, not just chaos-test scaffolding: a single
// binary can serve the distributed engine against in-process workers.
// These tests run the same byte-identity property suite the TCP path is
// pinned by, so the two transports can never drift apart.

import (
	"testing"

	"regiongrow/internal/core"
	"regiongrow/internal/distengine"
	"regiongrow/internal/distengine/disttest"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
	"regiongrow/internal/transport"
)

// TestInProcMatchesSequential: the engine over the Mem transport
// produces labels and statistics byte-identical to the sequential
// engine across all six paper images × three tie policies.
func TestInProcMatchesSequential(t *testing.T) {
	mem := transport.NewMem()
	addrs := disttest.StartClusterOver(t, mem, 4)
	eng := distengine.NewOver(mem, addrs)
	for _, id := range pixmap.AllPaperImages() {
		im := pixmap.Generate(id, pixmap.DefaultGenOptions())
		for _, tie := range []rag.TiePolicy{rag.SmallestID, rag.LargestID, rag.Random} {
			cfg := core.Config{Threshold: 10, Tie: tie, Seed: 1}
			want, err := core.Sequential{}.Segment(im, cfg)
			if err != nil {
				t.Fatalf("%v/%v sequential: %v", id, tie, err)
			}
			got, err := eng.Segment(im, cfg)
			if err != nil {
				t.Fatalf("%v/%v in-proc: %v", id, tie, err)
			}
			if !got.EqualLabels(want) {
				t.Errorf("%v/%v: in-proc labels differ from sequential", id, tie)
			}
			if got.FinalRegions != want.FinalRegions ||
				got.SplitIterations != want.SplitIterations ||
				got.MergeIterations != want.MergeIterations ||
				got.SquaresAfterSplit != want.SquaresAfterSplit {
				t.Errorf("%v/%v: in-proc stats diverge from sequential", id, tie)
			}
			if got.Comm == nil || got.Comm.Messages == 0 {
				t.Errorf("%v/%v: no communication recorded: %+v", id, tie, got.Comm)
			}
		}
	}
}

// TestInProcWorkerCounts: every worker count over the Mem transport
// (including more workers than bands) yields sequential-identical
// labels, and the TCP and Mem transports agree with each other at every
// count by transitivity.
func TestInProcWorkerCounts(t *testing.T) {
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 7}
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 5, 16} {
		mem := transport.NewMem()
		addrs := disttest.StartClusterOver(t, mem, n)
		got, err := distengine.NewOver(mem, addrs).Segment(im, cfg)
		if err != nil {
			t.Fatalf("%d workers: %v", n, err)
		}
		if !got.EqualLabels(want) {
			t.Errorf("%d workers: in-proc labels differ from sequential", n)
		}
	}
}
