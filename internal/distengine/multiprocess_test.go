package distengine_test

import (
	"bufio"
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/distengine"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
)

// startProcessCluster builds cmd/regiongrow-worker once and launches n
// real worker processes, returning their addresses and the commands (for
// signalling). Processes are SIGTERMed and reaped in cleanup.
func startProcessCluster(t *testing.T, n int) ([]string, []*exec.Cmd) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "regiongrow-worker")
	build := exec.Command("go", "build", "-o", bin, "regiongrow/cmd/regiongrow-worker")
	build.Dir = filepath.Join("..", "..") // module root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building worker: %v\n%s", err, out)
	}

	addrs := make([]string, n)
	cmds := make([]*exec.Cmd, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(bin, "-listen", "127.0.0.1:0")
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting worker %d: %v", i, err)
		}
		cmds[i] = cmd
		line, err := bufio.NewReader(stdout).ReadString('\n')
		if err != nil {
			t.Fatalf("worker %d banner: %v", i, err)
		}
		addr, ok := strings.CutPrefix(strings.TrimSpace(line), "listening on ")
		if !ok {
			t.Fatalf("worker %d banner %q", i, line)
		}
		addrs[i] = addr
	}
	t.Cleanup(func() {
		for _, cmd := range cmds {
			if cmd.ProcessState == nil {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}
		}
	})
	return addrs, cmds
}

// TestDistMultiProcess: a cluster of four real worker processes produces
// labels byte-identical to the sequential engine, survives a mid-merge
// cancellation with no process exiting, and every process shuts down
// cleanly (exit 0) on SIGTERM.
func TestDistMultiProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process cluster test skipped in -short mode")
	}
	addrs, cmds := startProcessCluster(t, 4)
	eng := distengine.New(addrs)
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())

	for _, tie := range []rag.TiePolicy{rag.SmallestID, rag.Random} {
		cfg := core.Config{Threshold: 10, Tie: tie, Seed: 1}
		want, err := core.Sequential{}.Segment(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Segment(im, cfg)
		if err != nil {
			t.Fatalf("tie %v: %v", tie, err)
		}
		if !got.EqualLabels(want) {
			t.Errorf("tie %v: labels differ from sequential", tie)
		}
	}

	// Mid-merge cancel: the run aborts, the processes stay up, and the
	// cluster serves the next job.
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	run := core.Run{Observer: core.ObserverFunc(func(ev core.StageEvent) {
		if ev.Kind == core.EventMergeIteration {
			cancel()
		}
	})}
	if _, err := eng.SegmentContext(ctx, im, cfg, run); err != context.Canceled {
		t.Fatalf("cancelled run: %v, want context.Canceled", err)
	}
	for i, cmd := range cmds {
		if cmd.ProcessState != nil {
			t.Fatalf("worker %d exited after job cancellation", i)
		}
	}
	if _, err := eng.Segment(im, cfg); err != nil {
		t.Fatalf("post-cancel segment: %v", err)
	}

	// Clean shutdown: SIGTERM drains and exits 0.
	for _, cmd := range cmds {
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	}
	for i, cmd := range cmds {
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker %d exit: %v", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("worker %d did not exit on SIGTERM", i)
		}
	}
}
