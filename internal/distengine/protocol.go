package distengine

import (
	"encoding/binary"
	"fmt"
	"time"

	"regiongrow/internal/transport"
)

// ProtocolVersion is bumped whenever a frame layout changes; a worker
// refuses a job whose version differs rather than mis-parsing it.
// Version 2 added ping/pong liveness frames and the job's heartbeat and
// link-timeout fields.
const ProtocolVersion = 2

// frameWriteTimeout bounds every frame write on both ends of a
// connection. A write only blocks when the peer stops draining its
// link — a healthy peer always reads, however long its own compute
// takes — so the deadline bounds peer failure, not job length.
const frameWriteTimeout = 30 * time.Second

// defaultHeartbeatInterval and defaultLinkTimeout are the liveness
// defaults both sides fall back to. Each peer sends a ping every
// interval while a job runs, and bounds every read by the link timeout;
// the interval is kept a small fraction of the timeout so a healthy but
// busy peer can never be mistaken for a dead one.
const (
	defaultHeartbeatInterval = 10 * time.Second
	defaultLinkTimeout       = 30 * time.Second
)

// frameType tags one length-prefixed frame on a coordinator↔worker
// connection. The protocol is deliberately tiny: one job frame down, then
// lockstep collective request/response pairs (the worker initiates, the
// coordinator answers once every worker of the job has contributed),
// asynchronous event frames up from rank 0, and a terminal result — or an
// abort injected by the coordinator at any point.
type frameType byte

const (
	// frameJob (coordinator → worker) opens a job: geometry, config, and
	// the worker's band of pixels.
	frameJob frameType = iota + 1
	// frameReduce (worker → coordinator) contributes one int64 to an
	// all-reduce; frameReduceResult carries the combined value back.
	frameReduce
	frameReduceResult
	// frameGather (worker → coordinator) contributes an []int32 to an
	// all-gather; frameGatherResult carries the rank-order concatenation.
	frameGather
	frameGatherResult
	// frameExchange (worker → coordinator) routes payloads to peer ranks;
	// frameExchangeResult delivers the payloads addressed to this rank, in
	// ascending source-rank order.
	frameExchange
	frameExchangeResult
	// frameEvent (worker → coordinator, rank 0 only) streams one stage
	// event; the coordinator forwards it to the run's observer.
	frameEvent
	// frameResult (worker → coordinator) ends a successful job: stats and
	// the worker's band of final labels.
	frameResult
	// frameAbort (coordinator → worker) cancels the job; the worker
	// abandons it and closes the connection.
	frameAbort
	// frameError (worker → coordinator) reports a worker-side failure; the
	// coordinator aborts the whole job with the carried message.
	frameError
	// framePing is the liveness beacon both sides emit while a job runs:
	// it carries no payload, expects no reply mid-job, and is skipped by
	// every reader (and excluded from comm counters). On an idle worker
	// connection it doubles as a health probe, answered with framePong.
	framePing
	// framePong answers a framePing received outside a job — the worker
	// half of the coordinator's health-probe round trip.
	framePong
)

// Reduction operators carried in frameReduce payloads.
const (
	opMax byte = iota + 1
	opSum
	// opBarrier is a pure rendezvous: the combined value is always zero.
	opBarrier
)

// Frame transport (length-prefixed type+payload framing, the MaxFrame
// payload bound, and all socket/channel mechanics) lives in
// internal/transport; this package only defines the frame types and
// payload layouts that ride on it.

// enc is an append-only big-endian payload builder.
type enc struct{ b []byte }

func (e *enc) u32(v uint32)   { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) i32(v int32)    { e.u32(uint32(v)) }
func (e *enc) u64(v uint64)   { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)    { e.u64(uint64(v)) }
func (e *enc) bytes(p []byte) { e.b = append(e.b, p...) }

func (e *enc) i32s(vs []int32) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.i32(v)
	}
}

// dec is a sequential big-endian payload reader; the first malformed read
// latches an error and zeroes every subsequent read.
type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("distengine: truncated frame payload")
	}
}

func (d *dec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) i32() int32 { return int32(d.u32()) }

func (d *dec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bytes(n int) []byte {
	if d.err != nil || n < 0 || len(d.b) < n {
		d.fail()
		return nil
	}
	p := d.b[:n:n]
	d.b = d.b[n:]
	return p
}

func (d *dec) i32s() []int32 {
	n := int(d.u32())
	if d.err != nil || n < 0 || len(d.b) < 4*n {
		d.fail()
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = d.i32()
	}
	return out
}

// job is the decoded frameJob payload: everything a worker needs to run
// its band of one segmentation.
type job struct {
	Rank, Workers int
	W, H          int
	Cap           int // effective split square cap (pre-resolved)
	Threshold     int
	Tie           int32
	Seed          uint64
	// HeartbeatMillis and LinkTimeoutMillis carry the coordinator's
	// liveness tuning to the worker so both sides of a link agree on the
	// ping cadence and the silent-peer bound; zero means the default.
	HeartbeatMillis   uint32
	LinkTimeoutMillis uint32
	// BandStarts has Workers+1 entries: band r owns rows
	// [BandStarts[r], BandStarts[r+1]). Every boundary is a multiple of
	// Cap (except the last, which is H), so no split square crosses one.
	BandStarts []int
	// Pix holds the worker's own band rows, (BandStarts[r+1]-BandStarts[r])×W
	// bytes.
	Pix []byte
}

func (j *job) encode() []byte {
	var e enc
	e.u32(ProtocolVersion)
	e.u32(uint32(j.Rank))
	e.u32(uint32(j.Workers))
	e.u32(uint32(j.W))
	e.u32(uint32(j.H))
	e.u32(uint32(j.Cap))
	e.u32(uint32(j.Threshold))
	e.i32(j.Tie)
	e.u64(j.Seed)
	e.u32(j.HeartbeatMillis)
	e.u32(j.LinkTimeoutMillis)
	e.u32(uint32(len(j.BandStarts)))
	for _, s := range j.BandStarts {
		e.u32(uint32(s))
	}
	e.u32(uint32(len(j.Pix)))
	e.bytes(j.Pix)
	return e.b
}

func decodeJob(p []byte) (*job, error) {
	d := dec{b: p}
	if v := d.u32(); v != ProtocolVersion {
		return nil, fmt.Errorf("distengine: protocol version %d, want %d", v, ProtocolVersion)
	}
	j := &job{}
	j.Rank = int(d.u32())
	j.Workers = int(d.u32())
	j.W = int(d.u32())
	j.H = int(d.u32())
	j.Cap = int(d.u32())
	j.Threshold = int(d.u32())
	j.Tie = d.i32()
	j.Seed = d.u64()
	j.HeartbeatMillis = d.u32()
	j.LinkTimeoutMillis = d.u32()
	n := int(d.u32())
	if d.err == nil && (n != j.Workers+1 || n > transport.MaxFrame/4) {
		return nil, fmt.Errorf("distengine: %d band boundaries for %d workers", n, j.Workers)
	}
	j.BandStarts = make([]int, n)
	for i := range j.BandStarts {
		j.BandStarts[i] = int(d.u32())
	}
	j.Pix = d.bytes(int(d.u32()))
	if d.err != nil {
		return nil, d.err
	}
	if j.Rank < 0 || j.Rank >= j.Workers {
		return nil, fmt.Errorf("distengine: rank %d of %d workers", j.Rank, j.Workers)
	}
	rows := j.BandStarts[j.Rank+1] - j.BandStarts[j.Rank]
	if rows < 0 || len(j.Pix) != rows*j.W {
		return nil, fmt.Errorf("distengine: band of %d rows × width %d but %d pixels", rows, j.W, len(j.Pix))
	}
	return j, nil
}

// heartbeat returns the job's ping cadence, defaulted when unset.
func (j *job) heartbeat() time.Duration {
	if j.HeartbeatMillis == 0 {
		return defaultHeartbeatInterval
	}
	return time.Duration(j.HeartbeatMillis) * time.Millisecond
}

// linkTimeout returns the job's silent-peer bound, defaulted when unset.
func (j *job) linkTimeout() time.Duration {
	if j.LinkTimeoutMillis == 0 {
		return defaultLinkTimeout
	}
	return time.Duration(j.LinkTimeoutMillis) * time.Millisecond
}

// workerResult is the decoded frameResult payload.
type workerResult struct {
	SplitIterations int
	MergeIterations int
	Squares         int
	Forced          int
	SplitWallNanos  int64
	MergesPerIter   []int32
	// Labels are the final per-pixel labels of the worker's band.
	Labels []int32
}

func (r *workerResult) encode() []byte {
	var e enc
	e.u32(uint32(r.SplitIterations))
	e.u32(uint32(r.MergeIterations))
	e.u32(uint32(r.Squares))
	e.u32(uint32(r.Forced))
	e.i64(r.SplitWallNanos)
	e.i32s(r.MergesPerIter)
	e.i32s(r.Labels)
	return e.b
}

func decodeWorkerResult(p []byte) (*workerResult, error) {
	d := dec{b: p}
	r := &workerResult{
		SplitIterations: int(d.u32()),
		MergeIterations: int(d.u32()),
		Squares:         int(d.u32()),
		Forced:          int(d.u32()),
		SplitWallNanos:  d.i64(),
		MergesPerIter:   d.i32s(),
		Labels:          d.i32s(),
	}
	if d.err != nil {
		return nil, d.err
	}
	return r, nil
}

// event is the decoded frameEvent payload — a flattened core.StageEvent.
type event struct {
	Kind, Iteration, Merges, Iterations, Squares, Regions int32
}

func (ev event) encode() []byte {
	var e enc
	for _, v := range [...]int32{ev.Kind, ev.Iteration, ev.Merges, ev.Iterations, ev.Squares, ev.Regions} {
		e.i32(v)
	}
	return e.b
}

func decodeEvent(p []byte) (event, error) {
	d := dec{b: p}
	ev := event{
		Kind: d.i32(), Iteration: d.i32(), Merges: d.i32(),
		Iterations: d.i32(), Squares: d.i32(), Regions: d.i32(),
	}
	return ev, d.err
}
