package distengine

import (
	"testing"

	"regiongrow/internal/core"
)

// TestEventWireCodes pins the wire event codes to core.EventKind: every
// stage event an engine can emit has a stable frame encoding, in order.
func TestEventWireCodes(t *testing.T) {
	want := map[int32]core.EventKind{
		evSplitStart:     core.EventSplitStart,
		evSplitDone:      core.EventSplitDone,
		evGraphDone:      core.EventGraphDone,
		evMergeIteration: core.EventMergeIteration,
		evMergeDone:      core.EventMergeDone,
	}
	for code, kind := range want {
		if core.EventKind(code) != kind {
			t.Errorf("wire code %d != core kind %v", code, kind)
		}
	}
	if len(want) != 5 {
		t.Errorf("%d wire codes, want 5", len(want))
	}
}

// TestJobRoundTrip pins the job frame encoding.
func TestJobRoundTrip(t *testing.T) {
	in := &job{
		Rank: 1, Workers: 3, W: 4, H: 6, Cap: 2, Threshold: 10,
		Tie: 2, Seed: 99, BandStarts: []int{0, 2, 4, 6},
		Pix: []byte{1, 2, 3, 4, 5, 6, 7, 8},
	}
	out, err := decodeJob(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Rank != in.Rank || out.Workers != in.Workers || out.W != in.W ||
		out.H != in.H || out.Cap != in.Cap || out.Threshold != in.Threshold ||
		out.Tie != in.Tie || out.Seed != in.Seed {
		t.Fatalf("decoded %+v, want %+v", out, in)
	}
	if len(out.BandStarts) != 4 || out.BandStarts[2] != 4 {
		t.Fatalf("band starts %v", out.BandStarts)
	}
	if string(out.Pix) != string(in.Pix) {
		t.Fatalf("pixels %v", out.Pix)
	}
}

// TestDecodeJobRejectsMalformed: truncated or inconsistent job frames are
// errors, not panics or silent misparses.
func TestDecodeJobRejectsMalformed(t *testing.T) {
	good := (&job{
		Rank: 0, Workers: 1, W: 2, H: 2, Cap: 1, Threshold: 1,
		BandStarts: []int{0, 2}, Pix: []byte{0, 1, 2, 3},
	}).encode()
	if _, err := decodeJob(good); err != nil {
		t.Fatalf("good frame rejected: %v", err)
	}
	for n := 0; n < len(good); n += 7 {
		if _, err := decodeJob(good[:n]); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
	bad := append([]byte(nil), good...)
	bad[3]++ // wrong protocol version
	if _, err := decodeJob(bad); err == nil {
		t.Error("wrong protocol version accepted")
	}
}

// TestWorkerResultRoundTrip pins the result frame encoding.
func TestWorkerResultRoundTrip(t *testing.T) {
	in := &workerResult{
		SplitIterations: 4, MergeIterations: 9, Squares: 100, Forced: 1,
		SplitWallNanos: 12345, MergesPerIter: []int32{5, 3, 1},
		Labels: []int32{0, 0, 2, 2},
	}
	out, err := decodeWorkerResult(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.SplitIterations != 4 || out.MergeIterations != 9 || out.Squares != 100 ||
		out.Forced != 1 || out.SplitWallNanos != 12345 ||
		len(out.MergesPerIter) != 3 || len(out.Labels) != 4 || out.Labels[2] != 2 {
		t.Fatalf("decoded %+v", out)
	}
}
