package distengine

import (
	"bufio"
	"bytes"
	"net"
	"sync"
	"testing"

	"regiongrow/internal/core"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
	"regiongrow/internal/transport"
)

// tapConn wraps a worker-side accepted connection and records both byte
// streams: what the coordinator sent (observed as the worker reads) and
// what the worker wrote back.
type tapConn struct {
	net.Conn
	mu  *sync.Mutex
	in  *bytes.Buffer // coordinator → worker
	out *bytes.Buffer // worker → coordinator
}

func (t *tapConn) Read(p []byte) (int, error) {
	n, err := t.Conn.Read(p)
	t.mu.Lock()
	t.in.Write(p[:n])
	t.mu.Unlock()
	return n, err
}

func (t *tapConn) Write(p []byte) (int, error) {
	n, err := t.Conn.Write(p)
	t.mu.Lock()
	t.out.Write(p[:n])
	t.mu.Unlock()
	return n, err
}

// tapListener wraps a worker listener, tapping every accepted connection
// in accept order.
type tapListener struct {
	net.Listener
	mu    sync.Mutex
	conns []*tapConn
}

func (l *tapListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	tc := &tapConn{Conn: c, mu: &l.mu, in: &bytes.Buffer{}, out: &bytes.Buffer{}}
	l.mu.Lock()
	l.conns = append(l.conns, tc)
	l.mu.Unlock()
	return tc, nil
}

// frames parses a recorded byte stream back into (type, payload) frames.
func frames(t *testing.T, stream []byte) []struct {
	t frameType
	p []byte
} {
	t.Helper()
	var out []struct {
		t frameType
		p []byte
	}
	r := bufio.NewReader(bytes.NewReader(stream))
	for {
		f, err := transport.ReadFrame(r)
		if err != nil {
			return out
		}
		out = append(out, struct {
			t frameType
			p []byte
		}{frameType(f.Type), f.Payload})
	}
}

// maskWall zeroes the SplitWallNanos field of a result payload (offset 16,
// 8 bytes — the only wall-clock value on the wire) so the rest of the
// frame can be compared byte for byte.
func maskWall(p []byte) []byte {
	masked := bytes.Clone(p)
	if len(masked) >= 24 {
		for i := 16; i < 24; i++ {
			masked[i] = 0
		}
	}
	return masked
}

// TestWireByteStability: two runs of the same job must put byte-identical
// frame sequences on every connection, in both directions. This pins the
// paper's determinism guarantee at the wire: suitor routing, adjacency
// payloads, and handover frames are emitted in sorted order, never map
// order. Only the result frame's wall-clock field may differ.
func TestWireByteStability(t *testing.T) {
	const workers = 2
	addrs := make([]string, workers)
	taps := make([]*tapListener, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tl := &tapListener{Listener: l}
		taps[i] = tl
		addrs[i] = l.Addr().String()
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = ServeWorker(transport.WrapListener(tl))
		}()
	}
	defer wg.Wait()
	defer func() {
		for _, tl := range taps {
			tl.Listener.Close()
		}
	}()

	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 7}
	eng := New(addrs)
	for run := 0; run < 2; run++ {
		if _, err := eng.Segment(im, cfg); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}

	for w, tl := range taps {
		tl.mu.Lock()
		conns := tl.conns
		tl.mu.Unlock()
		if len(conns) != 2 {
			t.Fatalf("worker %d: %d connections, want one per run", w, len(conns))
		}
		for dir, stream := range map[string]func(c *tapConn) []byte{
			"coordinator→worker": func(c *tapConn) []byte { tl.mu.Lock(); defer tl.mu.Unlock(); return bytes.Clone(c.in.Bytes()) },
			"worker→coordinator": func(c *tapConn) []byte { tl.mu.Lock(); defer tl.mu.Unlock(); return bytes.Clone(c.out.Bytes()) },
		} {
			a, b := frames(t, stream(conns[0])), frames(t, stream(conns[1]))
			if len(a) != len(b) {
				t.Errorf("worker %d %s: run 0 sent %d frames, run 1 sent %d", w, dir, len(a), len(b))
				continue
			}
			for i := range a {
				if a[i].t != b[i].t {
					t.Errorf("worker %d %s frame %d: type %d vs %d", w, dir, i, a[i].t, b[i].t)
					continue
				}
				pa, pb := a[i].p, b[i].p
				if a[i].t == frameResult {
					pa, pb = maskWall(pa), maskWall(pb)
				}
				if !bytes.Equal(pa, pb) {
					t.Errorf("worker %d %s frame %d (type %d): payloads differ between runs", w, dir, i, a[i].t)
				}
			}
		}
	}
}
