package distengine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
	"regiongrow/internal/rag"
	"regiongrow/internal/transport"
)

// errAborted is the worker-side sentinel for a coordinator abort frame (or
// a connection torn down by the coordinator, which means the same thing):
// the job is abandoned without an error of the worker's own.
var errAborted = errors.New("distengine: job aborted by coordinator")

// WorkerOptions tunes ServeWorkerOpts.
type WorkerOptions struct {
	// IdleTimeout bounds the wait for a connection's first frame (and the
	// gap between health probes on an idle connection). It is what lets a
	// draining worker exit: a coordinator that connected but never sent a
	// job cannot hold the drain hostage. Zero means the 60s default;
	// in-flight jobs are never subject to it.
	IdleTimeout time.Duration
}

func (o WorkerOptions) idle() time.Duration {
	if o.IdleTimeout <= 0 {
		return 60 * time.Second
	}
	return o.IdleTimeout
}

// ServeWorker accepts coordinator connections on l and serves one
// segmentation-band job per connection, each on its own goroutine so
// concurrent coordinators (e.g. two jobs of a serving pool sharing a
// cluster) cannot deadlock each other. It returns when the listener is
// closed, after in-flight jobs have drained: that is the worker's
// termination pin — finish the job being computed, refuse new ones,
// exit cleanly.
func ServeWorker(l transport.Listener) error {
	return ServeWorkerOpts(l, WorkerOptions{})
}

// ServeWorkerOpts is ServeWorker with explicit tuning.
func ServeWorkerOpts(l transport.Listener, opts WorkerOptions) error {
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer conn.Close()
			serveConn(conn, opts)
		}()
	}
}

// serveConn serves one accepted connection: health probes (ping→pong)
// until a job frame arrives, then exactly one job. Worker-side failures
// are reported to the coordinator as an error frame; aborts and dead
// connections end the job silently. The idle timeout bounds the TOTAL
// time until the first job frame — pings answered along the way do not
// extend it — so neither an idle connection nor a ping-only peer (e.g. a
// coordinator whose job frame was lost) can block a listener drain or
// hold the worker hostage.
func serveConn(conn transport.Conn, opts WorkerOptions) {
	lk := &link{c: conn, writeTimeout: frameWriteTimeout}
	idleDeadline := time.Now().Add(opts.idle()) //vet:timing idle-deadline arithmetic; never reaches wire payload bytes
	for {
		remain := time.Until(idleDeadline) //vet:timing idle-deadline arithmetic; never reaches wire payload bytes
		if remain <= 0 {
			return
		}
		f, err := conn.Recv(remain)
		if err != nil {
			return
		}
		switch frameType(f.Type) {
		case framePing:
			if lk.send(framePong, nil) != nil {
				return
			}
		case frameJob:
			j, err := decodeJob(f.Payload)
			if err != nil {
				_ = lk.send(frameError, []byte(err.Error()))
				return
			}
			lk.linkTimeout = j.linkTimeout()
			serveJob(j, lk)
			return
		case frameAbort:
			return
		default:
			_ = lk.send(frameError, []byte(fmt.Sprintf("expected job frame, got %d", f.Type)))
			return
		}
	}
}

// serveJob runs one decoded job, keeping heartbeats flowing to the
// coordinator for its whole duration (the coordinator's reads are
// deadline-bounded; the pings prove this worker alive while it computes).
func serveJob(j *job, lk *link) {
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		pingLoop(lk.c, j.heartbeat(), frameWriteTimeout, stop)
	}()
	res, err := runBand(j, lk)
	close(stop)
	hb.Wait()
	switch {
	case err == nil:
		_ = lk.send(frameResult, res.encode())
	case errors.Is(err, errAborted):
		// Abandoned cleanly; nothing to send on a torn-down job.
	default:
		_ = lk.send(frameError, []byte(err.Error()))
	}
}

// link is the worker's half of the lockstep collective protocol: write a
// request frame, block on the coordinator's response. An abort frame (or a
// closed or silent connection) surfaces as errAborted from whichever
// collective was pending.
type link struct {
	c            transport.Conn
	writeTimeout time.Duration
	linkTimeout  time.Duration
	seq          uint32
}

// send writes one frame under the per-frame write bound: a coordinator
// that stops draining the link surfaces as a timeout instead of blocking
// the worker forever. Sends are concurrency-safe (the heartbeat loop
// shares the conn), per the transport.Conn contract.
func (l *link) send(t frameType, payload []byte) error {
	return l.c.Send(transport.Frame{Type: byte(t), Payload: payload}, l.writeTimeout)
}

// recv returns the next protocol frame, skipping liveness pings. Each
// read is bounded by the link timeout; the coordinator's heartbeat keeps
// the link fed while a collective waits on other bands' compute, so only
// a genuinely dead coordinator can trip the bound.
func (l *link) recv() (frameType, []byte, error) {
	for {
		f, err := l.c.Recv(l.linkTimeout)
		if err != nil {
			return 0, nil, err
		}
		if ft := frameType(f.Type); ft == framePing || ft == framePong {
			continue
		}
		return frameType(f.Type), f.Payload, nil
	}
}

// roundTrip sends one collective frame and reads its response, which must
// be of type want or an abort.
func (l *link) roundTrip(t frameType, payload []byte, want frameType) ([]byte, error) {
	if err := l.send(t, payload); err != nil {
		return nil, errAborted
	}
	ft, resp, err := l.recv()
	if err != nil {
		return nil, errAborted
	}
	switch ft {
	case want:
		return resp, nil
	case frameAbort:
		return nil, errAborted
	default:
		return nil, fmt.Errorf("distengine: expected frame %d, got %d", want, ft)
	}
}

func (l *link) reduce(op byte, val int64) (int64, error) {
	l.seq++
	var e enc
	e.b = append(e.b, op)
	e.u32(l.seq)
	e.i64(val)
	resp, err := l.roundTrip(frameReduce, e.b, frameReduceResult)
	if err != nil {
		return 0, err
	}
	d := dec{b: resp}
	v := d.i64()
	return v, d.err
}

func (l *link) allReduceMax(val int) (int, error) {
	v, err := l.reduce(opMax, int64(val))
	return int(v), err
}

func (l *link) allReduceSum(val int) (int, error) {
	v, err := l.reduce(opSum, int64(val))
	return int(v), err
}

// allGather contributes data and returns the rank-order concatenation of
// every rank's contribution.
func (l *link) allGather(data []int32) ([]int32, error) {
	l.seq++
	var e enc
	e.u32(l.seq)
	e.i32s(data)
	resp, err := l.roundTrip(frameGather, e.b, frameGatherResult)
	if err != nil {
		return nil, err
	}
	d := dec{b: resp}
	out := d.i32s()
	return out, d.err
}

// exchange routes outbound[r] to each rank r and returns the payloads
// addressed to this rank as (src, data) pairs in ascending source order.
func (l *link) exchange(outbound map[int][]int32) (srcs []int32, datas [][]int32, err error) {
	l.seq++
	var e enc
	e.u32(l.seq)
	dests := make([]int, 0, len(outbound))
	for d := range outbound {
		dests = append(dests, d)
	}
	sort.Ints(dests)
	for _, dst := range dests {
		e.i32(int32(dst))
		e.i32s(outbound[dst])
	}
	resp, err := l.roundTrip(frameExchange, e.b, frameExchangeResult)
	if err != nil {
		return nil, nil, err
	}
	d := dec{b: resp}
	flat := d.i32s()
	if d.err != nil {
		return nil, nil, d.err
	}
	g := dec32{b: flat}
	for !g.empty() {
		src := g.next()
		cnt := int(g.next())
		data := g.take(cnt)
		if g.err != nil {
			return nil, nil, g.err
		}
		srcs = append(srcs, src)
		datas = append(datas, data)
	}
	return srcs, datas, nil
}

// sendEvent streams one stage event to the coordinator (fire-and-forget;
// only rank 0 calls it).
func (l *link) sendEvent(ev event) error {
	if err := l.send(frameEvent, ev.encode()); err != nil {
		return errAborted
	}
	return nil
}

// bandState is the per-worker program state: the band algorithm is the
// paper's message-passing node program (the one internal/mpengine runs on
// 32 simulated nodes) specialised to a 1-D decomposition into horizontal
// bands and executed over real sockets.
type bandState struct {
	j    *job
	lk   *link
	crit homog.Criterion
	tie  rag.TiePolicy

	y0, y1 int
	rows   int
	labels []int32 // band labels carrying global region IDs, rows×W

	localIters int
	splitIters int
	numSquares int

	ownedIDs []int32                      // owned vertex IDs, ascending
	iv       map[int32]homog.Interval     // intervals of every known vertex
	adj      map[int32]map[int32]struct{} // adjacency of owned vertices

	asg   *rag.Assignments
	stats rag.MergeStats
}

// runBand executes one job: local split, boundary graph stitch, the
// distributed merge loop, and the band relabel.
func runBand(j *job, lk *link) (*workerResult, error) {
	st := &bandState{
		j: j, lk: lk,
		crit: homog.NewRange(j.Threshold),
		tie:  rag.TiePolicy(j.Tie),
		y0:   j.BandStarts[j.Rank],
		y1:   j.BandStarts[j.Rank+1],
	}
	st.rows = st.y1 - st.y0

	tSplit := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or frames
	st.splitLocal()
	red, err := lk.allReduceMax(st.localIters)
	if err != nil {
		return nil, err
	}
	st.splitIters = red
	if st.numSquares, err = lk.allReduceSum(len(st.ownedIDs)); err != nil {
		return nil, err
	}
	splitWall := time.Since(tSplit) //vet:timing stage wall-time for Stats; never reaches labels or frames
	if j.Rank == 0 {
		if err := lk.sendEvent(event{Kind: evSplitDone, Iterations: int32(st.splitIters), Squares: int32(st.numSquares)}); err != nil {
			return nil, err
		}
	}

	if err := st.buildGraph(); err != nil {
		return nil, err
	}
	if j.Rank == 0 {
		if err := lk.sendEvent(event{Kind: evGraphDone, Squares: int32(st.numSquares)}); err != nil {
			return nil, err
		}
	}
	if err := st.mergeLoop(); err != nil {
		return nil, err
	}

	res := &workerResult{
		SplitIterations: st.splitIters,
		MergeIterations: st.stats.Iterations,
		Squares:         st.numSquares,
		Forced:          st.stats.ForcedResolutions,
		SplitWallNanos:  splitWall.Nanoseconds(),
		Labels:          st.writeLabels(),
	}
	res.MergesPerIter = make([]int32, len(st.stats.MergesPerIter))
	for i, m := range st.stats.MergesPerIter {
		res.MergesPerIter[i] = int32(m)
	}
	return res, nil
}

// owner returns the rank owning vertex id: the band containing its anchor
// pixel's row.
func (st *bandState) owner(id int32) int {
	row := int(id) / st.j.W
	// BandStarts is ascending; find r with BandStarts[r] <= row < BandStarts[r+1].
	r := sort.Search(st.j.Workers, func(r int) bool { return st.j.BandStarts[r+1] > row })
	return r
}

// splitLocal splits the band independently. Band boundaries are multiples
// of the effective cap, and every split square is cap-aligned with side ≤
// cap, so no square of the global split crosses a band boundary: the local
// split produces exactly the global split's squares within the band.
func (st *bandState) splitLocal() {
	w := st.j.W
	sub := &pixmap.Image{W: w, H: st.rows, Pix: st.j.Pix}
	// The cap was resolved by the coordinator against the full image. The
	// band may legally re-resolve it smaller — that happens exactly when
	// the cap exceeds the band's own dimensions (e.g. a narrow image's
	// short final band), where no feasible square can reach either value,
	// so the local split still equals the global split within the band.
	res := quadsplit.Split(sub, st.crit, quadsplit.Options{MaxSquare: st.j.Cap})
	st.localIters = res.Iterations

	// Owned vertices and their intervals (Squares needs the band-local
	// labels, so enumerate before globalising them below).
	st.iv = make(map[int32]homog.Interval)
	st.adj = make(map[int32]map[int32]struct{})
	for _, sq := range res.Squares(sub) {
		gid := int32((st.y0+sq.Y)*w + sq.X)
		st.iv[gid] = sq.IV
		st.adj[gid] = make(map[int32]struct{})
		st.ownedIDs = append(st.ownedIDs, gid)
	}

	// Band-local labels are anchor indices in the band; shift rows by y0 to
	// make them global region IDs (the band spans full image width).
	off := int32(st.y0 * w)
	st.labels = res.Labels
	for i := range st.labels {
		st.labels[i] += off
	}
	sort.Slice(st.ownedIDs, func(i, j int) bool { return st.ownedIDs[i] < st.ownedIDs[j] })
}

// buildGraph records the band's internal edges, then exchanges boundary
// RAG rows (per-pixel label + interval strips) with the neighbouring bands
// and stitches the crossing edges.
func (st *bandState) buildGraph() error {
	w := st.j.W
	for ly := 0; ly < st.rows; ly++ {
		row := ly * w
		for lx := 0; lx < w; lx++ {
			a := st.labels[row+lx]
			if lx+1 < w {
				if b := st.labels[row+lx+1]; a != b {
					st.addEdge(a, b)
				}
			}
			if ly+1 < st.rows {
				if b := st.labels[row+w+lx]; a != b {
					st.addEdge(a, b)
				}
			}
		}
	}

	// Boundary strips to the neighbours: (id, lo, hi) per border pixel.
	outbound := make(map[int][]int32)
	strip := func(row int) []int32 {
		out := make([]int32, 0, 3*w)
		for lx := 0; lx < w; lx++ {
			id := st.labels[row*w+lx]
			iv := st.iv[id]
			out = append(out, id, int32(iv.Lo), int32(iv.Hi))
		}
		return out
	}
	if st.j.Rank > 0 && st.rows > 0 {
		outbound[st.j.Rank-1] = strip(0)
	}
	if st.j.Rank < st.j.Workers-1 && st.rows > 0 {
		outbound[st.j.Rank+1] = strip(st.rows - 1)
	}
	srcs, datas, err := st.lk.exchange(outbound)
	if err != nil {
		return err
	}
	for i, src := range srcs {
		data := datas[i]
		if len(data) != 3*w {
			return fmt.Errorf("distengine: boundary strip of %d values from rank %d, want %d", len(data), src, 3*w)
		}
		var myRow int
		switch int(src) {
		case st.j.Rank - 1:
			myRow = 0
		case st.j.Rank + 1:
			myRow = st.rows - 1
		default:
			return fmt.Errorf("distengine: boundary strip from non-neighbour rank %d", src)
		}
		for lx := 0; lx < w; lx++ {
			myID := st.labels[myRow*w+lx]
			theirID := data[3*lx]
			theirIV := homog.Interval{Lo: uint8(data[3*lx+1]), Hi: uint8(data[3*lx+2])}
			if _, ok := st.iv[theirID]; !ok {
				st.iv[theirID] = theirIV
			}
			if myID != theirID {
				st.addEdge(myID, theirID)
			}
		}
	}
	return nil
}

// addEdge records adjacency on whichever endpoints this worker owns.
func (st *bandState) addEdge(a, b int32) {
	if s, ok := st.adj[a]; ok {
		s[b] = struct{}{}
	}
	if s, ok := st.adj[b]; ok {
		s[a] = struct{}{}
	}
}

// mergeLoop runs the distributed merge rounds until no active edge remains
// anywhere. The loop-head all-reduce doubles as the abort rendezvous: a
// coordinator cancel surfaces as errAborted from whichever collective is
// pending, so every worker leaves within one iteration.
func (st *bandState) mergeLoop() error {
	st.asg = rag.NewAssignments()
	stalls := 0
	for {
		anyActive := 0
		for _, v := range st.ownedIDs {
			adj, alive := st.adj[v]
			if !alive {
				continue
			}
			//vet:ordered OR-reduction into a flag commutes across iteration orders
			for w := range adj {
				if st.crit.Homogeneous(st.iv[v].Union(st.iv[w])) {
					anyActive = 1
					break
				}
			}
			if anyActive == 1 {
				break
			}
		}
		red, err := st.lk.allReduceMax(anyActive)
		if err != nil {
			return err
		}
		if red == 0 {
			return nil
		}
		st.stats.Iterations++
		policy := st.tie
		if policy == rag.Random && stalls >= 3 {
			policy = rag.SmallestID
			st.stats.ForcedResolutions++
			stalls = 0
		}
		merged, err := st.mergeIteration(policy)
		if err != nil {
			return err
		}
		st.stats.MergesPerIter = append(st.stats.MergesPerIter, merged)
		if merged == 0 {
			stalls++
		} else {
			stalls = 0
		}
	}
}

// mergeIteration runs one choice/merge/update round and returns the global
// number of merges. It is the band-decomposed twin of the mpengine node
// program's round: choices for owned vertices, choice routing to the
// chosen vertex's owner, mutual-pair detection, a global all-gather of
// merge events, adjacency relabel, and loser-adjacency handover.
func (st *bandState) mergeIteration(policy rag.TiePolicy) (int, error) {
	iter := st.stats.Iterations

	// Choices for owned, alive vertices (rag.PickTied keeps the tie
	// semantics byte-identical to every other engine).
	choice := make(map[int32]int32)
	var tied []int32
	for _, v := range st.ownedIDs {
		adj, alive := st.adj[v]
		if !alive {
			continue
		}
		bestW := -1
		tied = tied[:0]
		//vet:ordered min-reduction; the tie list is sorted inside rag.PickTied before any order-dependent use
		for w := range adj {
			if !st.crit.Homogeneous(st.iv[v].Union(st.iv[w])) {
				continue
			}
			wt := homog.Weight(st.iv[v], st.iv[w])
			switch {
			case bestW < 0 || wt < bestW:
				bestW = wt
				tied = tied[:0]
				tied = append(tied, w)
			case wt == bestW:
				tied = append(tied, w)
			}
		}
		if bestW >= 0 {
			choice[v] = rag.PickTied(tied, policy, st.j.Seed, iter, v)
		}
	}

	// Route each choice (v, w) to owner(w) so mutual pairs are detectable
	// on both sides. Iterate owned IDs, not the choice map: outbound
	// payloads are wire bytes, and the protocol promises byte-stable
	// frames run to run.
	outbound := make(map[int][]int32)
	suitors := make(map[int32][]int32) // chosen vertex -> suitor IDs
	for _, v := range st.ownedIDs {
		w, ok := choice[v]
		if !ok {
			continue
		}
		o := st.owner(w)
		if o == st.j.Rank {
			suitors[w] = append(suitors[w], v)
		} else {
			outbound[o] = append(outbound[o], v, w)
		}
	}
	_, datas, err := st.lk.exchange(outbound)
	if err != nil {
		return 0, err
	}
	for _, data := range datas {
		for i := 0; i+1 < len(data); i += 2 {
			suitors[data[i+1]] = append(suitors[data[i+1]], data[i])
		}
	}

	// Mutual pairs; the loser's owner emits the merge event. Ascending
	// owned-ID order keeps the event payload — wire bytes — byte-stable.
	var events []int32 // flat (rep, loser, lo, hi)
	for _, v := range st.ownedIDs {
		w, ok := choice[v]
		if !ok || w >= v {
			continue // loser = max(v, w) = v emits
		}
		mutual := false
		if st.owner(w) == st.j.Rank {
			mutual = choice[w] == v
		} else {
			for _, s := range suitors[v] {
				if s == w {
					mutual = true
					break
				}
			}
		}
		if mutual {
			union := st.iv[v].Union(st.iv[w])
			events = append(events, w, v, int32(union.Lo), int32(union.Hi))
		}
	}

	// Globally concatenate merge events and apply them everywhere.
	all, err := st.lk.allGather(events)
	if err != nil {
		return 0, err
	}
	mergeMap := make(map[int32]int32)
	merges := 0
	for i := 0; i+3 < len(all); i += 4 {
		rep, loser := all[i], all[i+1]
		union := homog.Interval{Lo: uint8(all[i+2]), Hi: uint8(all[i+3])}
		mergeMap[loser] = rep
		// Every worker records the representative's new interval: an edge
		// relabeled to rep below needs it for future weights.
		st.iv[rep] = union
		st.asg.Record(loser, rep)
		merges++
	}
	if st.j.Rank == 0 {
		if err := st.lk.sendEvent(event{Kind: evMergeIteration, Iteration: int32(iter), Merges: int32(merges)}); err != nil {
			return 0, err
		}
	}

	// Relabel owned adjacency through this iteration's map. Mutual pairs
	// form a matching, so one relabeling level suffices.
	for v, adjSet := range st.adj {
		var add, del []int32
		//vet:ordered del/add are applied below as keyed set deletions/insertions, which commute
		for w := range adjSet {
			if r, ok := mergeMap[w]; ok {
				del = append(del, w)
				if r != v {
					add = append(add, r)
				}
			}
		}
		for _, w := range del {
			delete(adjSet, w)
		}
		for _, r := range add {
			adjSet[r] = struct{}{}
		}
	}

	// Hand each absorbed loser's adjacency to its representative's owner.
	// Losers and their adjacency are visited in ascending ID order: the
	// handover payloads are wire bytes and must be byte-stable run to run.
	losers := make([]int32, 0, len(mergeMap))
	for loser := range mergeMap {
		losers = append(losers, loser)
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i] < losers[j] })
	handover := make(map[int][]int32)
	for _, loser := range losers {
		rep := mergeMap[loser]
		adjSet, ok := st.adj[loser]
		if !ok {
			continue // not owned here
		}
		o := st.owner(rep)
		if o == st.j.Rank {
			repAdj := st.adj[rep]
			if repAdj == nil {
				repAdj = make(map[int32]struct{})
				st.adj[rep] = repAdj
			}
			//vet:ordered keyed set union commutes across iteration orders
			for w := range adjSet {
				if w != rep {
					repAdj[w] = struct{}{}
				}
			}
		} else {
			ws := make([]int32, 0, len(adjSet))
			for w := range adjSet {
				ws = append(ws, w)
			}
			sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
			payload := []int32{rep, int32(len(adjSet))}
			for _, w := range ws {
				iv := st.iv[w]
				payload = append(payload, w, int32(iv.Lo), int32(iv.Hi))
			}
			handover[o] = append(handover[o], payload...)
		}
		delete(st.adj, loser)
	}
	_, datas, err = st.lk.exchange(handover)
	if err != nil {
		return 0, err
	}
	for _, data := range datas {
		i := 0
		for i < len(data) {
			if i+1 >= len(data) {
				return 0, fmt.Errorf("distengine: truncated adjacency handover")
			}
			rep, cnt := data[i], int(data[i+1])
			i += 2
			if cnt < 0 || i+3*cnt > len(data) {
				return 0, fmt.Errorf("distengine: truncated adjacency handover")
			}
			repAdj := st.adj[rep]
			if repAdj == nil {
				repAdj = make(map[int32]struct{})
				st.adj[rep] = repAdj
			}
			for k := 0; k < cnt; k++ {
				w := data[i]
				iv := homog.Interval{Lo: uint8(data[i+1]), Hi: uint8(data[i+2])}
				i += 3
				if w == rep {
					continue
				}
				// The sender relabeled through the same iteration map;
				// record a mirror interval if the vertex is new here.
				if _, ok := st.iv[w]; !ok {
					st.iv[w] = iv
				}
				repAdj[w] = struct{}{}
			}
		}
	}

	// Losers no longer exist as vertices anywhere; drop their mirrors.
	for loser := range mergeMap {
		delete(st.iv, loser)
	}
	return merges, nil
}

// writeLabels resolves the band's final per-pixel labels.
func (st *bandState) writeLabels() []int32 {
	cache := make(map[int32]int32)
	out := make([]int32, len(st.labels))
	for i, l := range st.labels {
		r, ok := cache[l]
		if !ok {
			r = st.asg.Find(l)
			cache[l] = r
		}
		out[i] = r
	}
	return out
}
