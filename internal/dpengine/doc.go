// Package dpengine implements the paper's data-parallel (CM Fortran)
// split-and-merge program on the simdvm virtual machine.
//
// The structure follows the paper's five data-parallel steps exactly:
//
//  1. The 2-D pixel image is repeatedly split into homogeneous square
//     regions, combining quad-blocks with strided NEWS shifts.
//  2. A graph vertex is created per square region and an edge per
//     neighbouring pair; vertices and edges live in 1-D parallel arrays;
//     edges violating the homogeneity criterion are (and stay) inactive.
//  3. Every region determines its best mergeable neighbour with a
//     segmented min-scan over the edge array; ties break by policy;
//     mutual choices merge.
//  4. The surviving region (the smaller ID) absorbs the other's interval;
//     edge endpoints are relabelled through the router; self-loops and
//     parallel edges are removed with a sort/dedupe/pack round.
//  5. Steps 3–4 repeat while any active edge remains.
//
// All randomness is the hash-based draw of rag.PickTied, so the engine's
// segmentations are identical to the sequential engine's for every tie
// policy and seed — a property the test suite enforces.
package dpengine
