package dpengine

import (
	"context"
	"fmt"
	"math/bits"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/machine"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
	"regiongrow/internal/rag"
	"regiongrow/internal/simdvm"
)

const inf = int32(1) << 30

// Engine is the data-parallel engine bound to one machine configuration.
type Engine struct {
	cfg  machine.ConfigID
	prof *machine.Profile
}

// New returns a data-parallel engine simulating the given configuration
// (CM2_8K, CM2_16K, or CM5_CMF).
func New(cfg machine.ConfigID) (*Engine, error) {
	if cfg.IsMessagePassing() {
		return nil, fmt.Errorf("dpengine: %v is a message-passing configuration", cfg)
	}
	return &Engine{cfg: cfg, prof: machine.Get(cfg)}, nil
}

// NewWithProfile returns a data-parallel engine with an explicit cost
// profile — used by calibration tooling and the processor-scaling
// ablation benchmarks.
func NewWithProfile(cfg machine.ConfigID, prof *machine.Profile) *Engine {
	return &Engine{cfg: cfg, prof: prof}
}

// Name implements core.Engine.
func (e *Engine) Name() string { return "data-parallel/" + e.cfg.Short() }

// Config returns the machine configuration the engine simulates.
func (e *Engine) Config() machine.ConfigID { return e.cfg }

// Segment implements core.Engine.
func (e *Engine) Segment(im *pixmap.Image, cfg core.Config) (*core.Segmentation, error) {
	return e.SegmentContext(context.Background(), im, cfg, core.Run{})
}

// SegmentContext implements core.ContextEngine: the simulated machine is
// driven from the calling goroutine, so cancellation is a plain check at
// every split level and merge round of the simulation loop.
func (e *Engine) SegmentContext(ctx context.Context, im *pixmap.Image, cfg core.Config, run core.Run) (*core.Segmentation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if im.W == 0 || im.H == 0 {
		seg := &core.Segmentation{W: im.W, H: im.H, Labels: []int32{}}
		seg.FillRegions(im)
		return seg, nil
	}
	m := simdvm.New(e.prof)
	seg := &core.Segmentation{W: im.W, H: im.H}

	run.Emit(core.StageEvent{Kind: core.EventSplitStart})
	t0 := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	sp, err := e.split(ctx, m, im, cfg)
	if err != nil {
		return nil, err
	}
	seg.SplitIterations = sp.iterations
	seg.SquaresAfterSplit = sp.numSquares
	seg.SplitWall = time.Since(t0) //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	seg.SplitSim = m.Clock()
	run.Emit(core.StageEvent{Kind: core.EventSplitDone, Iterations: sp.iterations, Squares: sp.numSquares})

	m.ResetClock()
	t1 := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	labels, stats, err := e.merge(ctx, m, im, cfg, sp, run)
	if err != nil {
		return nil, err
	}
	seg.Labels = labels
	seg.MergeIterations = stats.Iterations
	seg.MergesPerIter = stats.MergesPerIter
	seg.ForcedResolutions = stats.ForcedResolutions
	seg.MergeWall = time.Since(t1) //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	seg.MergeSim = m.Clock()

	seg.FillRegions(im)
	run.Emit(core.StageEvent{Kind: core.EventMergeDone, Iterations: stats.Iterations, Regions: seg.FinalRegions})
	return seg, nil
}

// splitState carries the split stage's outputs into the merge stage.
type splitState struct {
	iterations int
	numSquares int
	label      *simdvm.Grid // per-pixel region ID (origin pixel index)
}

// split is step 1: strided quad-block combining on 2-D grids.
func (e *Engine) split(ctx context.Context, m *simdvm.Machine, im *pixmap.Image, cfg core.Config) (*splitState, error) {
	w, h := im.W, im.H
	t := int32(cfg.Threshold)

	pix := m.GridFromImage(im)
	lo, hi := pix.Clone(), pix.Clone()
	solid := m.NewBoolGrid(w, h)
	solid.Fill(true)
	col := m.ColIndex(w, h)
	row := m.RowIndex(w, h)

	capSquare := quadsplit.EffectiveCap(quadsplit.Options{MaxSquare: cfg.MaxSquare}, w, h)
	maxLevel := bits.Len(uint(capSquare)) - 1

	type levelState struct {
		solid *simdvm.BoolGrid
	}
	levels := []levelState{{solid: solid}}

	st := &splitState{}
	top := 0
	for l := 1; l <= maxLevel; l++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := 1 << l
		half := s / 2
		// Combine child intervals: bring the east child to the west with a
		// NEWS shift of half, then the south pair north.
		loX := lo.Min(lo.EOShiftX(-half, inf))
		hiX := hi.Max(hi.EOShiftX(-half, -inf))
		lo2 := loX.Min(loX.EOShiftY(-half, inf))
		hi2 := hiX.Max(hiX.EOShiftY(-half, -inf))
		// Combine child solidity the same way.
		sX := solid.And(solid.EOShiftX(-half, false))
		s2 := sX.And(sX.EOShiftY(-half, false))
		// A block forms at aligned origins, fully inside the image, when
		// the combined interval passes the criterion.
		originMask := col.ModC(int32(s)).EqC(0).And(row.ModC(int32(s)).EqC(0))
		inBounds := col.AddC(int32(s)).LeC(int32(w)).And(row.AddC(int32(s)).LeC(int32(h)))
		homogMask := hi2.Sub(lo2).LeC(t)
		newSolid := s2.And(homogMask).And(originMask).And(inBounds)

		combined := newSolid.Count()
		st.iterations++
		levels = append(levels, levelState{solid: newSolid})
		lo, hi, solid = lo2, hi2, newSolid
		if combined == 0 {
			break
		}
		top = l
	}
	if st.iterations == 0 {
		st.iterations = 1 // degenerate cap: the stage still runs one pass
	}

	// Label each pixel with the largest solid block containing it,
	// claiming top-down with router gathers at the block origins.
	label := m.SelfIndex(w, h)
	claimed := m.NewBoolGrid(w, h)
	for l := top; l >= 1; l-- {
		// Each level is a full-grid gather pass; keep the claim stage as
		// cancellable as the combine stage above.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := int32(1 << l)
		ox := col.Sub(col.ModC(s))
		oy := row.Sub(row.ModC(s))
		solidAt := levels[l].solid.ToInt().GatherXY(ox, oy).EqC(1)
		take := solidAt.AndNot(claimed)
		label.AssignWhere(take, oy.MulC(int32(w)).Add(ox))
		claimed = claimed.Or(take)
	}
	st.label = label
	st.numSquares = label.Eq(m.SelfIndex(w, h)).Count()
	return st, nil
}

// merge is steps 2–5: graph construction and iterative mutual merging on
// 1-D parallel arrays.
func (e *Engine) merge(ctx context.Context, m *simdvm.Machine, im *pixmap.Image, cfg core.Config, sp *splitState, run core.Run) ([]int32, rag.MergeStats, error) {
	w, h := im.W, im.H
	n := w * h
	t := int32(cfg.Threshold)
	label := sp.label

	// Step 2a: vertex arrays in the pixel domain, indexed by region ID.
	// Region intervals via combining router sends of every pixel's value
	// to its region's origin.
	pixVec := m.GridFromImage(im).Flatten()
	labelVec := label.Flatten()
	allPix := m.NewBoolVec(n)
	allPix.Fill(true)
	vlo := m.NewVec(n)
	vlo.Fill(inf)
	vhi := m.NewVec(n)
	vhi.Fill(-inf)
	vlo.ScatterMinWhere(allPix, labelVec, pixVec)
	vhi.ScatterMaxWhere(allPix, labelVec, pixVec)

	// Step 2b: edge arrays from boundary pixels. East and south boundary
	// masks yield each adjacency once per direction; concatenating the
	// swapped pair gives the directed edge array.
	col := m.ColIndex(w, h)
	row := m.RowIndex(w, h)
	eastLab := label.EOShiftX(-1, -1)
	southLab := label.EOShiftY(-1, -1)
	eastMask := label.Ne(eastLab).And(col.AddC(1).LeC(int32(w - 1)))
	southMask := label.Ne(southLab).And(row.AddC(1).LeC(int32(h - 1)))
	ePair := m.PackGrid(eastMask, label, eastLab)
	sPair := m.PackGrid(southMask, label, southLab)
	src := m.Concat(ePair[0], sPair[0], ePair[1], sPair[1])
	dst := m.Concat(ePair[1], sPair[1], ePair[0], sPair[0])
	src, dst = sortDedupe(m, src, dst)
	run.Emit(core.StageEvent{Kind: core.EventGraphDone, Squares: sp.numSquares})

	// Representative array for the pixel domain (region IDs point at
	// themselves until merged away).
	rep := m.IotaVec(n)
	iota := m.IotaVec(n)

	var stats rag.MergeStats
	stalls := 0
	for {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		if src.Len() == 0 {
			break
		}
		// Step 3a: edge weights and activity from endpoint intervals.
		slo := vlo.Gather(src)
		shi := vhi.Gather(src)
		dlo := vlo.Gather(dst)
		dhi := vhi.Gather(dst)
		wt := shi.Max(dhi).Sub(slo.Min(dlo))
		active := wt.LeC(t)
		if !active.Any() {
			break
		}
		stats.Iterations++
		policy := cfg.Tie
		if policy == rag.Random && stalls >= 3 {
			policy = rag.SmallestID
			stats.ForcedResolutions++
			stalls = 0
		}

		// Step 3b: per-source best neighbour by segmented min-scan; the
		// edge array is sorted by (src, dst), so ties are ranked in
		// ascending destination order, matching rag.PickTied.
		starts := src.SegStarts()
		segMin := wt.SegMinBroadcast(starts, active, inf)
		isTied := active.And(wt.Eq(segMin))
		rank, count := m.SegRankCount(starts, isTied)
		var k *simdvm.Vec
		switch policy {
		case rag.SmallestID:
			k = m.NewVec(src.Len())
		case rag.LargestID:
			k = count.AddC(-1)
		case rag.Random:
			k = src.HashChoice(cfg.Seed, stats.Iterations, count)
		default:
			panic(fmt.Sprintf("dpengine: unknown tie policy %v", policy))
		}
		selected := isTied.And(rank.Eq(k))

		// Step 3c: scatter choices to the vertex domain and detect mutual
		// pairs with a router round-trip.
		choice := m.NewVec(n)
		choice.Fill(-1)
		choice.ScatterWhere(selected, src, dst)
		hasChoice := choice.NeC(-1)
		choiceSafe := choice.MaxC(0)
		partner := choice.Gather(choiceSafe)
		mutual := hasChoice.And(partner.Eq(iota))
		loser := mutual.And(choice.Lt(iota))
		winner := mutual.AndNot(loser)

		// Step 4: the smaller ID absorbs the interval; losers point their
		// representative at the winner; edges are relabelled through the
		// router, then self-loops, dead edges, and duplicates are removed.
		otherLo := vlo.Gather(choiceSafe)
		otherHi := vhi.Gather(choiceSafe)
		vlo.AssignWhere(winner, vlo.Min(otherLo))
		vhi.AssignWhere(winner, vhi.Max(otherHi))
		rep.AssignWhere(loser, choice)

		merges := winner.Count()
		stats.MergesPerIter = append(stats.MergesPerIter, merges)
		run.Emit(core.StageEvent{Kind: core.EventMergeIteration, Iteration: stats.Iterations, Merges: merges})
		if merges == 0 {
			stalls++
		} else {
			stalls = 0
		}

		src = rep.Gather(src)
		dst = rep.Gather(dst)
		keep := src.Ne(dst).And(active)
		packed := m.Pack(keep, src, dst)
		src, dst = sortDedupe(m, packed[0], packed[1])
	}

	// Resolve representative chains and map the split labels through them.
	rep.PointerJump()
	final := rep.Gather(labelVec)
	out := make([]int32, n)
	copy(out, final.Data())
	return out, stats, nil
}

var _ core.ContextEngine = (*Engine)(nil)

// sortDedupe sorts the directed edge array by (src, dst) and removes
// parallel duplicates, returning the compacted arrays.
func sortDedupe(m *simdvm.Machine, src, dst *simdvm.Vec) (*simdvm.Vec, *simdvm.Vec) {
	if src.Len() == 0 {
		return src, dst
	}
	perm := m.SortPairs(src, dst)
	src = src.Gather(perm)
	dst = dst.Gather(perm)
	uniq := m.PairDup(src, dst).Not()
	packed := m.Pack(uniq, src, dst)
	return packed[0], packed[1]
}
