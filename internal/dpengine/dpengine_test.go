package dpengine

import (
	"testing"
	"testing/quick"

	"regiongrow/internal/core"
	"regiongrow/internal/homog"
	"regiongrow/internal/machine"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
)

func newEngine(t *testing.T, cfg machine.ConfigID) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRejectsMessagePassingConfig(t *testing.T) {
	if _, err := New(machine.CM5_LP); err == nil {
		t.Fatal("accepted an MP configuration")
	}
}

func TestName(t *testing.T) {
	e := newEngine(t, machine.CM2_8K)
	if e.Name() != "data-parallel/CM2-8K" {
		t.Fatalf("Name = %q", e.Name())
	}
	if e.Config() != machine.CM2_8K {
		t.Fatal("Config wrong")
	}
}

// assertMatchesSequential runs both engines and requires identical
// segmentations and statistics.
func assertMatchesSequential(t *testing.T, e *Engine, im *pixmap.Image, cfg core.Config) {
	t.Helper()
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualLabels(got) {
		t.Fatalf("labels differ from sequential (tie=%v seed=%d T=%d)", cfg.Tie, cfg.Seed, cfg.Threshold)
	}
	if want.SplitIterations != got.SplitIterations {
		t.Fatalf("split iterations %d vs %d", want.SplitIterations, got.SplitIterations)
	}
	if want.SquaresAfterSplit != got.SquaresAfterSplit {
		t.Fatalf("squares %d vs %d", want.SquaresAfterSplit, got.SquaresAfterSplit)
	}
	if want.MergeIterations != got.MergeIterations {
		t.Fatalf("merge iterations %d vs %d", want.MergeIterations, got.MergeIterations)
	}
	if want.FinalRegions != got.FinalRegions {
		t.Fatalf("final regions %d vs %d", want.FinalRegions, got.FinalRegions)
	}
	for i, m := range want.MergesPerIter {
		if got.MergesPerIter[i] != m {
			t.Fatalf("merges in iteration %d: %d vs %d", i+1, m, got.MergesPerIter[i])
		}
	}
	if err := core.Validate(got, im, cfg.Criterion()); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesSequentialOnPaperImages(t *testing.T) {
	e := newEngine(t, machine.CM2_8K)
	for _, id := range pixmap.AllPaperImages() {
		if testing.Short() && id.Size() == 256 {
			continue
		}
		im := pixmap.Generate(id, pixmap.DefaultGenOptions())
		for _, tie := range []rag.TiePolicy{rag.SmallestID, rag.LargestID, rag.Random} {
			assertMatchesSequential(t, e, im, core.Config{Threshold: 10, Tie: tie, Seed: 99})
		}
	}
}

func TestMatchesSequentialAcrossConfigs(t *testing.T) {
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	for _, mc := range []machine.ConfigID{machine.CM2_8K, machine.CM2_16K, machine.CM5_CMF} {
		assertMatchesSequential(t, newEngine(t, mc), im, core.Config{Threshold: 10, Tie: rag.Random, Seed: 5})
	}
}

func TestMatchesSequentialProperty(t *testing.T) {
	e := newEngine(t, machine.CM2_8K)
	err := quick.Check(func(seed uint64, tRaw, policyRaw uint8) bool {
		im := pixmap.Random(32, seed)
		for i := range im.Pix {
			im.Pix[i] &= 0x3F
		}
		cfg := core.Config{
			Threshold: int(tRaw % 64),
			Tie:       []rag.TiePolicy{rag.SmallestID, rag.LargestID, rag.Random}[policyRaw%3],
			Seed:      seed,
		}
		want, err := core.Sequential{}.Segment(im, cfg)
		if err != nil {
			return false
		}
		got, err := e.Segment(im, cfg)
		if err != nil {
			return false
		}
		return want.EqualLabels(got) && want.MergeIterations == got.MergeIterations
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnboundedCapAndThresholdExtremes(t *testing.T) {
	e := newEngine(t, machine.CM2_16K)
	im := pixmap.Random(32, 3)
	assertMatchesSequential(t, e, im, core.Config{Threshold: 255, MaxSquare: -1})
	assertMatchesSequential(t, e, im, core.Config{Threshold: 0})
	assertMatchesSequential(t, e, pixmap.Uniform(32, 9), core.Config{Threshold: 0, MaxSquare: -1})
	assertMatchesSequential(t, e, pixmap.Checkerboard(32, 0, 255), core.Config{Threshold: 10})
}

func TestNonSquareImages(t *testing.T) {
	e := newEngine(t, machine.CM2_8K)
	im := pixmap.New(48, 16)
	im.FillRect(0, 0, 48, 16, 30)
	im.FillRect(10, 3, 37, 11, 90)
	assertMatchesSequential(t, e, im, core.Config{Threshold: 5})
}

func TestSimulatedClocksPopulated(t *testing.T) {
	e := newEngine(t, machine.CM2_8K)
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	seg, err := e.Segment(im, core.Config{Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if seg.SplitSim <= 0 || seg.MergeSim <= 0 {
		t.Fatalf("simulated clocks not populated: split=%v merge=%v", seg.SplitSim, seg.MergeSim)
	}
	if seg.SplitWall <= 0 || seg.MergeWall <= 0 {
		t.Fatal("wall clocks not populated")
	}
}

func TestMoreProcessorsNotSlower(t *testing.T) {
	// Scaling ablation: the same program on the 16K profile must not be
	// slower than on the 8K profile in simulated time.
	im := pixmap.Generate(pixmap.Image1NestedRects128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.SmallestID}
	s8, err := newEngine(t, machine.CM2_8K).Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s16, err := newEngine(t, machine.CM2_16K).Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s16.SplitSim >= s8.SplitSim {
		t.Fatalf("split: 16K %.4f not faster than 8K %.4f", s16.SplitSim, s8.SplitSim)
	}
	if s16.MergeSim >= s8.MergeSim {
		t.Fatalf("merge: 16K %.4f not faster than 8K %.4f", s16.MergeSim, s8.MergeSim)
	}
}

func TestNewWithProfile(t *testing.T) {
	p := machine.Get(machine.CM2_8K)
	p.PE = 1024
	e := NewWithProfile(machine.CM2_8K, p)
	im := pixmap.Uniform(32, 5)
	seg, err := e.Segment(im, core.Config{Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Validate(seg, im, homog.NewRange(0)); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyImage(t *testing.T) {
	e := newEngine(t, machine.CM2_8K)
	seg, err := e.Segment(pixmap.New(0, 0), core.Config{Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if seg.FinalRegions != 0 {
		t.Fatalf("empty image: %d regions", seg.FinalRegions)
	}
}
