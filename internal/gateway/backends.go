package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"regiongrow/client"
	"regiongrow/internal/server"
)

// backend is one regiongrowd replica behind the gateway. Its immutable
// half (addr, base URL, SDK handle) is set at registration; the mutable
// health state is guarded by mu.
type backend struct {
	addr string // normalized host:port, the ring member key
	base string // http://host:port
	// sdk is the typed regiongrow/client handle used for batch fan-out
	// submissions, so the gateway speaks the exact wire types the
	// backends serialize.
	sdk *client.Client

	mu       sync.Mutex
	instance string // learned from /v1/stats; "" until first success
	healthy  bool
	inRing   bool
	fails    int    // consecutive probe/forward failures
	lastErr  string // most recent failure, kept while unhealthy
}

// member snapshots the backend into its wire representation.
func (b *backend) member() client.FleetMember {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := client.FleetMember{
		Addr:     b.addr,
		Instance: b.instance,
		Healthy:  b.healthy,
		InRing:   b.inRing,
	}
	if !b.healthy {
		m.Error = b.lastErr
	}
	return m
}

// registry tracks fleet membership and health, and owns the routing
// ring: a backend appears as a ring member exactly while it is admitted
// (inRing). The health loop probes every backend each interval; a
// backend failing ejectAfter consecutive probes is ejected from the
// ring (existing job records it holds become unreachable until it
// returns) and readmitted on its first successful probe.
type registry struct {
	ring         *Ring
	hc           *http.Client
	probeTimeout time.Duration
	ejectAfter   int

	mu       sync.RWMutex
	backends map[string]*backend // by normalized addr

	loopWG   sync.WaitGroup
	loopStop chan struct{}
}

// normalizeAddr canonicalizes a backend address: "host:port" and
// "http://host:port" (with or without a trailing slash) name the same
// member. The normalized form is the ring key, so every gateway in
// front of the fleet agrees on member identity byte-for-byte.
func normalizeAddr(addr string) (norm, base string, err error) {
	a := strings.TrimSpace(addr)
	a = strings.TrimSuffix(a, "/")
	if s, ok := strings.CutPrefix(a, "http://"); ok {
		a = s
	} else if strings.Contains(a, "://") {
		return "", "", fmt.Errorf("backend address %q: only http:// backends are supported", addr)
	}
	if a == "" || !strings.Contains(a, ":") {
		return "", "", fmt.Errorf("backend address %q is not host:port", addr)
	}
	return a, "http://" + a, nil
}

func newRegistry(ring *Ring, hc *http.Client, probeTimeout time.Duration, ejectAfter int) *registry {
	return &registry{
		ring:         ring,
		hc:           hc,
		probeTimeout: probeTimeout,
		ejectAfter:   ejectAfter,
		backends:     make(map[string]*backend),
		loopStop:     make(chan struct{}),
	}
}

// add registers a backend without probing it. Reports false when the
// address is already registered.
func (g *registry) add(addr string) (*backend, error) {
	norm, base, err := normalizeAddr(addr)
	if err != nil {
		return nil, err
	}
	sdk, err := client.New(base)
	if err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.backends[norm]; dup {
		return nil, nil
	}
	b := &backend{addr: norm, base: base, sdk: sdk}
	g.backends[norm] = b
	return b, nil
}

// remove unregisters a backend and pulls it from the ring. Reports
// false for an unknown address; refuses to remove the last member.
func (g *registry) remove(addr string) (changed bool, err error) {
	norm, _, err := normalizeAddr(addr)
	if err != nil {
		return false, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, known := g.backends[norm]; !known {
		return false, nil
	}
	if len(g.backends) == 1 {
		return false, errors.New("refusing to remove the last backend: the fleet would serve nothing")
	}
	delete(g.backends, norm)
	g.ring.Remove(norm)
	return true, nil
}

// get returns the backend registered under addr (normalized), or nil.
func (g *registry) get(addr string) *backend {
	norm, _, err := normalizeAddr(addr)
	if err != nil {
		return nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.backends[norm]
}

// byInstance finds the backend whose last probe reported the given
// instance ID — how job IDs route back to the replica holding their
// record.
func (g *registry) byInstance(instance string) *backend {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, b := range g.backends {
		b.mu.Lock()
		match := b.instance == instance
		b.mu.Unlock()
		if match {
			return b
		}
	}
	return nil
}

// all snapshots the registered backends.
func (g *registry) all() []*backend {
	g.mu.RLock()
	defer g.mu.RUnlock()
	bs := make([]*backend, 0, len(g.backends))
	for _, b := range g.backends {
		bs = append(bs, b)
	}
	return bs
}

// members returns the fleet's wire representation in address order.
func (g *registry) members() []client.FleetMember {
	bs := g.all()
	ms := make([]client.FleetMember, 0, len(bs))
	for _, b := range bs {
		ms = append(ms, b.member())
	}
	sortMembers(ms)
	return ms
}

func sortMembers(ms []client.FleetMember) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j].Addr < ms[j-1].Addr; j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

// probe fetches one backend's /v1/stats and applies the outcome to its
// health state: success records the instance ID, clears the failure
// streak, and (re)admits the backend to the ring; failure counts toward
// ejection. The typed server.Stats decode doubles as a compatibility
// check — a non-regiongrowd listener fails the probe.
func (g *registry) probe(ctx context.Context, b *backend) {
	ctx, cancel := context.WithTimeout(ctx, g.probeTimeout)
	defer cancel()
	st, err := fetchStats(ctx, g.hc, b.base)
	if err != nil {
		g.noteFailure(b, err)
		return
	}
	b.mu.Lock()
	b.instance = st.Instance
	b.healthy = true
	b.fails = 0
	b.lastErr = ""
	admit := !b.inRing
	b.inRing = true
	b.mu.Unlock()
	if admit {
		g.ring.Add(b.addr)
	}
}

// noteFailure records one failed probe or forward against a backend,
// ejecting it from the ring once the streak reaches ejectAfter. Forward
// failures on the request path feed in here too, so a crashed backend
// stops receiving keys after at most ejectAfter requests rather than
// only at the next health tick.
func (g *registry) noteFailure(b *backend, err error) {
	b.mu.Lock()
	b.healthy = false
	b.fails++
	b.lastErr = err.Error()
	eject := b.inRing && b.fails >= g.ejectAfter
	if eject {
		b.inRing = false
	}
	b.mu.Unlock()
	if eject {
		g.ring.Remove(b.addr)
	}
}

// probeAll probes every backend concurrently and waits for the sweep.
func (g *registry) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.all() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.probe(ctx, b)
		}()
	}
	wg.Wait()
}

// healthLoop sweeps the fleet every interval until stop.
func (g *registry) healthLoop(interval time.Duration) {
	defer g.loopWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-g.loopStop:
			return
		case <-t.C:
			g.probeAll(context.Background())
		}
	}
}

// fetchStats retrieves and decodes one backend's /v1/stats document.
func fetchStats(ctx context.Context, hc *http.Client, base string) (*server.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("stats probe: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("stats probe: decoding: %w", err)
	}
	if st.Instance == "" {
		return nil, errors.New("stats probe: backend reports no instance ID")
	}
	return &st, nil
}
