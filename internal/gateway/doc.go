// Package gateway implements the regiongrow serving fleet's stateless
// edge tier: an http.Handler that fronts N regiongrowd replicas and
// serves the same /v1 job API, scaled out.
//
// Submissions (POST /v1/jobs, /v1/segment) route by the result cache
// key — the same regiongrow.CacheKey the backends store results under —
// over a consistent-hash ring of backends, so repeated requests for the
// same (image, config, engine) always land on the same replica and hit
// its cache, while distinct keys spread across the fleet. This is sound
// because every engine is deterministic: a key names one byte sequence
// regardless of which replica computes it, so sharding the cache by key
// loses nothing.
//
// Job-ID traffic (GET /v1/jobs/{id}, the SSE /events stream, DELETE)
// routes by the instance ID each backend embeds in the job IDs it
// mints, proxied raw to the owning replica. Batches fan out item by
// item, each to its key's owner, through the regiongrow/client SDK —
// the gateway composes client.JobRequest values, so its requests cannot
// drift from the wire contract.
//
// The gateway holds no job state: any number of gateways can front the
// same fleet with no coordination beyond identical backend lists (the
// ring hash is deterministic). Backend membership is dynamic via
// POST /v1/fleet/join and /v1/fleet/leave; a background health loop
// probes every backend's /v1/stats, ejects one from the ring after
// consecutive failures (forward failures on the request path count
// too), and readmits it on its first successful probe. Per-client
// token-bucket rate limiting and a fleet-wide in-flight cap reject
// excess load with 429 + Retry-After at the edge, before any backend
// queues work.
package gateway
