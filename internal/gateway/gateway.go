package gateway

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"regiongrow"
)

// Options configures a Gateway. The zero value of every field selects a
// sensible default; Backends must name at least one replica.
type Options struct {
	// Backends seeds the fleet: regiongrowd addresses as host:port or
	// http://host:port. Membership is dynamic afterwards via
	// POST /v1/fleet/join and /v1/fleet/leave.
	Backends []string
	// VNodes is the consistent-hash virtual-node count per backend
	// (0 = DefaultVNodes). Every gateway in front of one fleet must use
	// the same value, or they will disagree on key ownership.
	VNodes int
	// HealthInterval is the period of the background health sweep
	// (0 = 2s).
	HealthInterval time.Duration
	// ProbeTimeout bounds each health probe and each leg of a stats
	// aggregation (0 = 2s).
	ProbeTimeout time.Duration
	// EjectAfter is the consecutive-failure count at which an unhealthy
	// backend is removed from the routing ring (0 = 2). It is readmitted
	// on its first successful probe.
	EjectAfter int
	// MaxBodyBytes caps PGM uploads, mirroring regiongrowd's -maxbody
	// (0 = 16 MiB).
	MaxBodyBytes int64
	// RatePerSec enables per-client token-bucket rate limiting on the
	// submission endpoints: each client IP accrues this many submissions
	// per second, up to Burst. 0 disables limiting.
	RatePerSec float64
	// Burst is the token-bucket depth (0 = 2*RatePerSec, at least 1).
	Burst int
	// MaxInFlight caps submissions the gateway has forwarded but not yet
	// answered, across all clients; excess is answered 429 before any
	// backend sees it. 0 = unlimited.
	MaxInFlight int
	// Instance is the gateway's own stable ID, reported on /v1/stats
	// ("" = a random ID minted at construction).
	Instance string
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 2
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	if o.Instance == "" {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			panic(err)
		}
		o.Instance = "gw-" + hex.EncodeToString(b[:])
	}
	return o
}

// gwMetrics are the gateway's own counters, distinct from the backend
// stats it aggregates.
type gwMetrics struct {
	start       time.Time
	submitted   atomic.Int64 // jobs/segment submissions routed by key
	proxied     atomic.Int64 // job-ID lookups/streams/cancels forwarded
	batches     atomic.Int64 // batch requests fanned out
	batchItems  atomic.Int64 // individual batch items submitted
	rateLimited atomic.Int64 // 429s from the token bucket
	overloaded  atomic.Int64 // 429s from the in-flight cap
	failovers   atomic.Int64 // submissions re-routed off a dead owner
	errors      atomic.Int64 // forwards that failed on every candidate
	inflight    atomic.Int64
}

// Gateway is the stateless edge tier: an http.Handler that fronts a
// fleet of regiongrowd replicas, routing submissions by cache key over
// a consistent-hash ring and proxying job-ID traffic to the replica
// that owns the record. Construct with New; Close stops the health
// loop. Multiple gateways over the same fleet need no coordination.
type Gateway struct {
	opts    Options
	ring    *Ring
	reg     *registry
	limiter *rateLimiter
	hc      *http.Client
	metrics gwMetrics
	mux     *http.ServeMux
	// paperKeys caches the six evaluation images' content hashes and
	// dimensions, so routing a ?image=imageN submission does not
	// regenerate rasters per request.
	paperKeys map[string]paperKey
}

type paperKey struct {
	hash string
	w, h int
}

// New builds a Gateway over opts.Backends. Each seed backend is probed
// once, concurrently, before New returns: reachable replicas enter the
// routing ring immediately, unreachable ones join the fleet as
// unhealthy and are admitted by the health loop when they come up — so
// a gateway may be started before (some of) its backends.
func New(opts Options) (*Gateway, error) {
	opts = opts.withDefaults()
	if len(opts.Backends) == 0 {
		return nil, errors.New("gateway: no backends configured")
	}
	g := &Gateway{
		opts:      opts,
		ring:      NewRing(opts.VNodes),
		hc:        &http.Client{},
		limiter:   newRateLimiter(opts.RatePerSec, opts.Burst),
		mux:       http.NewServeMux(),
		paperKeys: make(map[string]paperKey),
	}
	g.metrics.start = time.Now()
	for _, id := range regiongrow.AllPaperImages() {
		im := regiongrow.GeneratePaperImage(id)
		g.paperKeys[id.ShortName()] = paperKey{hash: regiongrow.HashImage(im), w: im.W, h: im.H}
	}
	g.reg = newRegistry(g.ring, g.hc, opts.ProbeTimeout, opts.EjectAfter)
	for _, addr := range opts.Backends {
		if _, err := g.reg.add(addr); err != nil {
			return nil, err
		}
	}
	g.reg.probeAll(context.Background())

	g.mux.HandleFunc("POST /v1/jobs", g.handleSubmit)
	g.mux.HandleFunc("POST /v1/segment", g.handleSubmit)
	g.mux.HandleFunc("GET /v1/jobs/{id}", g.handleJobProxy)
	g.mux.HandleFunc("GET /v1/jobs/{id}/events", g.handleJobProxy)
	g.mux.HandleFunc("DELETE /v1/jobs/{id}", g.handleJobProxy)
	g.mux.HandleFunc("POST /v1/batch", g.handleBatch)
	g.mux.HandleFunc("GET /v1/stats", g.handleStats)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /v1/fleet", g.handleFleetGet)
	g.mux.HandleFunc("POST /v1/fleet/join", g.handleFleetJoin)
	g.mux.HandleFunc("POST /v1/fleet/leave", g.handleFleetLeave)

	g.reg.loopWG.Add(1)
	go g.reg.healthLoop(opts.HealthInterval)
	return g, nil
}

// Instance returns the gateway's stable instance ID.
func (g *Gateway) Instance() string { return g.opts.Instance }

// Ring exposes the routing ring (read-only use intended: tests assert
// ownership without going over HTTP).
func (g *Gateway) Ring() *Ring { return g.ring }

// Close stops the health loop. In-flight proxied requests are not
// interrupted; the caller drains its http.Server first, as
// cmd/regiongrow-gateway does.
func (g *Gateway) Close() {
	close(g.reg.loopStop)
	g.reg.loopWG.Wait()
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}
