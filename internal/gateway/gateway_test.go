package gateway_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"regiongrow"
	"regiongrow/client"
	"regiongrow/internal/gateway"
	"regiongrow/internal/server"
)

// newBackend starts one regiongrowd replica with a stable instance ID,
// returning its host:port (the form ring members use) and the in-process
// server for direct stats assertions.
func newBackend(t testing.TB, instance string, opts server.Options) (addr string, svc *server.Server) {
	t.Helper()
	opts.Instance = instance
	svc = server.New(opts)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return strings.TrimPrefix(ts.URL, "http://"), svc
}

// newGateway builds a gateway over opts and serves it, returning the
// gateway, its base URL, and an SDK client pointed at it.
func newGateway(t testing.TB, opts gateway.Options) (*gateway.Gateway, string, *client.Client) {
	t.Helper()
	gw, err := gateway.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(gw)
	t.Cleanup(func() { ts.Close(); gw.Close() })
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return gw, ts.URL, c
}

// thresholdOwnedBy finds a threshold whose image1 cache key the ring
// assigns to the wanted backend — how tests steer a submission to a
// chosen replica without bypassing the router.
func thresholdOwnedBy(t *testing.T, gw *gateway.Gateway, addr string, kind regiongrow.EngineKind) int {
	t.Helper()
	im := regiongrow.GeneratePaperImage(regiongrow.Image1NestedRects128)
	for th := 1; th <= 200; th++ {
		cfg := regiongrow.Config{Threshold: th, Tie: regiongrow.RandomTie, Seed: 1}
		owner, ok := gw.Ring().Owner(regiongrow.CacheKey(im, cfg, kind))
		if ok && owner == addr {
			return th
		}
	}
	t.Fatalf("no threshold in [1,200] routes image1 to %s", addr)
	return 0
}

// TestGatewayRoutingStickiness: the same submission through the gateway
// lands on the same backend every time, so the second request is that
// replica's cache hit — and the other replica never sees the key.
func TestGatewayRoutingStickiness(t *testing.T) {
	a1, svc1 := newBackend(t, "b1", server.Options{})
	a2, svc2 := newBackend(t, "b2", server.Options{})
	_, base, _ := newGateway(t, gateway.Options{Backends: []string{a1, a2}})

	post := func() (backend string) {
		t.Helper()
		resp, err := http.Post(base+"/v1/segment?image=image1&threshold=10&tie=random&seed=1", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("segment via gateway: %s", resp.Status)
		}
		if got := resp.Header.Get("X-Regiongrow-Backend"); got == "" {
			t.Fatal("no backend attribution header")
		} else {
			backend = got
		}
		return backend
	}
	first := post()
	second := post()
	if first != second {
		t.Fatalf("same key routed to %s then %s", first, second)
	}
	ownerStats, otherStats := svc1.Stats(), svc2.Stats()
	if first == a2 {
		ownerStats, otherStats = otherStats, ownerStats
	}
	if ownerStats.Cache.Hits != 1 || ownerStats.Cache.Misses != 1 {
		t.Errorf("owner cache hits/misses = %d/%d, want 1/1", ownerStats.Cache.Hits, ownerStats.Cache.Misses)
	}
	if otherStats.Cache.Hits+otherStats.Cache.Misses != 0 {
		t.Errorf("non-owner backend saw the key: hits/misses = %d/%d", otherStats.Cache.Hits, otherStats.Cache.Misses)
	}
}

// TestGatewayJobLifecycleAcrossBackends: jobs steered to each backend
// are retrievable, streamable (SSE through the proxy), and cancelable
// through the gateway, because the job ID names its minting replica.
func TestGatewayJobLifecycleAcrossBackends(t *testing.T) {
	a1, _ := newBackend(t, "b1", server.Options{})
	a2, _ := newBackend(t, "b2", server.Options{})
	gw, _, c := newGateway(t, gateway.Options{Backends: []string{a1, a2}})
	ctx := context.Background()

	for _, want := range []struct{ addr, instance string }{{a1, "b1"}, {a2, "b2"}} {
		th := thresholdOwnedBy(t, gw, want.addr, regiongrow.SequentialEngine)
		sub, err := c.Submit(ctx, client.JobRequest{
			PaperImage: "image1", Engine: regiongrow.SequentialEngine,
			Config: regiongrow.Config{Threshold: th, Tie: regiongrow.RandomTie, Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if inst, ok := server.ParseJobInstance(sub.ID); !ok || inst != want.instance {
			t.Fatalf("job %s minted by %q, want %q", sub.ID, inst, want.instance)
		}
		var events int
		job, err := c.Stream(ctx, sub.ID, func(regiongrow.StageEvent) { events++ })
		if err != nil {
			t.Fatalf("streaming %s through the gateway: %v", sub.ID, err)
		}
		if job.State != client.StateDone || events == 0 {
			t.Fatalf("job %s: state %s after %d events", sub.ID, job.State, events)
		}
		got, err := c.Get(ctx, sub.ID)
		if err != nil || got.Result == nil {
			t.Fatalf("Get(%s) through the gateway: %+v, %v", sub.ID, got, err)
		}
		if _, err := c.Cancel(ctx, sub.ID); err != nil {
			t.Fatalf("Cancel(%s) (terminal no-op) through the gateway: %v", sub.ID, err)
		}
	}
}

// TestGatewayUnknownInstance: job IDs minted outside the fleet (or by a
// departed backend) answer 404, not a hang or a misroute.
func TestGatewayUnknownInstance(t *testing.T) {
	a1, _ := newBackend(t, "b1", server.Options{})
	_, _, c := newGateway(t, gateway.Options{Backends: []string{a1}})
	_, err := c.Get(context.Background(), "job-nosuch-0011223344556677")
	if err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("lookup of foreign job: %v", err)
	}
}

// TestGatewayBatchFanout: a batch spreads its items over the fleet by
// key, each item's job landing on (and retrievable from) the replica
// the ring predicted.
func TestGatewayBatchFanout(t *testing.T) {
	a1, _ := newBackend(t, "b1", server.Options{})
	a2, _ := newBackend(t, "b2", server.Options{})
	gw, _, c := newGateway(t, gateway.Options{Backends: []string{a1, a2}})
	ctx := context.Background()

	cfg := regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1}
	var reqs []client.JobRequest
	var wantInstance []string
	for _, name := range []string{"image1", "image2", "image3"} {
		id, err := regiongrow.ParsePaperImageID(name)
		if err != nil {
			t.Fatal(err)
		}
		im := regiongrow.GeneratePaperImage(id)
		owner, _ := gw.Ring().Owner(regiongrow.CacheKey(im, cfg, regiongrow.SequentialEngine))
		inst := "b1"
		if owner == a2 {
			inst = "b2"
		}
		wantInstance = append(wantInstance, inst)
		reqs = append(reqs, client.JobRequest{PaperImage: name, Engine: regiongrow.SequentialEngine, Config: cfg})
	}
	results, err := c.Batch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(reqs) {
		t.Fatalf("%d results for %d items", len(results), len(reqs))
	}
	for i, r := range results {
		if r.Error != "" || r.ID == "" {
			t.Fatalf("item %d: %+v", i, r)
		}
		if inst, _ := server.ParseJobInstance(r.ID); inst != wantInstance[i] {
			t.Errorf("item %d landed on %q, ring predicted %q", i, inst, wantInstance[i])
		}
		job, err := c.Wait(ctx, r.ID)
		if err != nil || job.State != client.StateDone {
			t.Fatalf("item %d job %s: %v (%v)", i, r.ID, job, err)
		}
	}
}

// TestGatewayFailoverOnDeadOwner: a submission whose home backend just
// died is served by the clockwise-next replica within the same request,
// and the failure ejects the dead backend from the ring immediately
// (EjectAfter=1) rather than waiting for the next health sweep.
func TestGatewayFailoverOnDeadOwner(t *testing.T) {
	a1, _ := newBackend(t, "b1", server.Options{})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc2 := server.New(server.Options{Instance: "b2"})
	defer svc2.Close()
	hs := &http.Server{Handler: svc2}
	go hs.Serve(l)
	a2 := l.Addr().String()

	gw, base, _ := newGateway(t, gateway.Options{
		Backends:       []string{a1, a2},
		HealthInterval: time.Hour, // isolate the request-path ejection
		EjectAfter:     1,
	})
	if gw.Ring().Len() != 2 {
		t.Fatalf("ring has %d members after startup probes, want 2", gw.Ring().Len())
	}
	th := thresholdOwnedBy(t, gw, a2, regiongrow.SequentialEngine)
	hs.Close() // b2 dies with keys assigned

	url := fmt.Sprintf("%s/v1/segment?image=image1&threshold=%d&tie=random&seed=1", base, th)
	resp, err := http.Post(url, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover submission: %s", resp.Status)
	}
	if got := resp.Header.Get("X-Regiongrow-Backend"); got != a1 {
		t.Fatalf("served by %q, want failover to %q", got, a1)
	}
	if gw.Ring().Len() != 1 {
		t.Fatalf("dead backend still in ring (len %d)", gw.Ring().Len())
	}
}

// TestGatewayEjectionAndReadmission: the health loop ejects a backend
// that stops answering probes and readmits it when it returns, while
// the fleet keeps serving throughout.
func TestGatewayEjectionAndReadmission(t *testing.T) {
	a1, _ := newBackend(t, "b1", server.Options{})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc2 := server.New(server.Options{Instance: "b2"})
	defer svc2.Close()
	hs := &http.Server{Handler: svc2}
	go hs.Serve(l)
	a2 := l.Addr().String()

	gw, base, c := newGateway(t, gateway.Options{
		Backends:       []string{a1, a2},
		HealthInterval: 25 * time.Millisecond,
		ProbeTimeout:   250 * time.Millisecond,
		EjectAfter:     2,
	})
	waitRing := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for gw.Ring().Len() != want {
			if time.Now().After(deadline) {
				t.Fatalf("ring stuck at %d members, want %d", gw.Ring().Len(), want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitRing(2)
	hs.Close()
	waitRing(1)

	// The fleet keeps serving with the survivor...
	resp, err := http.Post(base+"/v1/segment?image=image2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet stopped serving after ejection: %s", resp.Status)
	}
	// ...and reports the ejected member as fleet-visible but out of the
	// ring.
	st, err := c.Fleet(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Backends != 2 {
		t.Fatalf("fleet lost a member: %+v", st)
	}
	for _, m := range st.Members {
		if m.Addr == a2 && (m.Healthy || m.InRing) {
			t.Fatalf("dead backend reported healthy/in-ring: %+v", m)
		}
	}

	// Restart on the same address: the loop readmits it.
	l2, err := net.Listen("tcp", a2)
	if err != nil {
		t.Skipf("could not rebind %s: %v", a2, err)
	}
	hs2 := &http.Server{Handler: svc2}
	go hs2.Serve(l2)
	defer hs2.Close()
	waitRing(2)
}

// TestGatewayRateLimit: the per-client token bucket answers the
// over-budget submission 429 with a Retry-After, before any backend
// sees it.
func TestGatewayRateLimit(t *testing.T) {
	a1, svc1 := newBackend(t, "b1", server.Options{})
	_, base, _ := newGateway(t, gateway.Options{
		Backends:   []string{a1},
		RatePerSec: 0.001, // effectively no refill within the test
		Burst:      2,
	})
	post := func() *http.Response {
		t.Helper()
		resp, err := http.Post(base+"/v1/segment?image=image1", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if r := post(); r.StatusCode != http.StatusOK {
		t.Fatalf("first submission: %s", r.Status)
	}
	if r := post(); r.StatusCode != http.StatusOK {
		t.Fatalf("second submission: %s", r.Status)
	}
	before := svc1.Stats().Jobs.SubmittedTotal
	r := post()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submission: %s, want 429", r.Status)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if after := svc1.Stats().Jobs.SubmittedTotal; after != before {
		t.Fatalf("rate-limited request reached the backend (%d -> %d jobs)", before, after)
	}
}

// TestGatewayStatsAggregation: GET /v1/stats through the gateway
// reports its own counters plus every backend's live stats document,
// attributable by instance.
func TestGatewayStatsAggregation(t *testing.T) {
	a1, _ := newBackend(t, "b1", server.Options{})
	a2, _ := newBackend(t, "b2", server.Options{})
	_, base, c := newGateway(t, gateway.Options{Backends: []string{a1, a2}})
	ctx := context.Background()

	job, err := c.Submit(ctx, client.JobRequest{PaperImage: "image1", Engine: regiongrow.SequentialEngine,
		Config: regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, job.ID); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st gateway.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Instance == "" || st.StartedAt.IsZero() {
		t.Fatalf("gateway identity missing: %+v", st)
	}
	if st.Fleet.Backends != 2 || st.Fleet.InRing != 2 {
		t.Fatalf("fleet summary %+v, want 2 backends in ring", st.Fleet)
	}
	if st.Gateway.Submitted != 1 || st.Gateway.Proxied == 0 {
		t.Fatalf("gateway counters %+v", st.Gateway)
	}
	if st.Totals.JobsSubmitted < 1 {
		t.Fatalf("fleet totals %+v", st.Totals)
	}
	instances := map[string]bool{}
	for _, b := range st.Backends {
		if b.Stats == nil {
			t.Fatalf("backend %s contributed no stats document", b.Addr)
		}
		if b.Instance != b.Stats.Instance {
			t.Fatalf("membership instance %q != stats instance %q", b.Instance, b.Stats.Instance)
		}
		instances[b.Instance] = true
	}
	if !instances["b1"] || !instances["b2"] {
		t.Fatalf("aggregation missing a backend: %v", instances)
	}
}

// TestGatewayFleetJoinLeave: membership is dynamic — a joined backend
// starts owning keys, a departed one stops, and the last member cannot
// leave.
func TestGatewayFleetJoinLeave(t *testing.T) {
	a1, _ := newBackend(t, "b1", server.Options{})
	a2, _ := newBackend(t, "b2", server.Options{})
	gw, _, c := newGateway(t, gateway.Options{Backends: []string{a1}})
	ctx := context.Background()

	upd, err := c.FleetJoin(ctx, a2)
	if err != nil || !upd.Changed || len(upd.Members) != 2 {
		t.Fatalf("join: %+v, %v", upd, err)
	}
	if gw.Ring().Len() != 2 {
		t.Fatalf("joined backend not admitted to the ring")
	}
	// Joining again is a no-op, not an error.
	if upd, err = c.FleetJoin(ctx, a2); err != nil || upd.Changed {
		t.Fatalf("re-join: %+v, %v", upd, err)
	}
	if upd, err = c.FleetLeave(ctx, a2); err != nil || !upd.Changed || len(upd.Members) != 1 {
		t.Fatalf("leave: %+v, %v", upd, err)
	}
	if gw.Ring().Len() != 1 {
		t.Fatal("departed backend still owns keys")
	}
	if _, err = c.FleetLeave(ctx, a1); err == nil {
		t.Fatal("removing the last backend was allowed")
	}
}

// TestGatewayOnPlainBackendFleet404: the fleet endpoints on a plain
// regiongrowd answer 404, which the SDK classifies as ErrNoFleet — the
// gateway and backend remain distinguishable.
func TestGatewayOnPlainBackendFleet404(t *testing.T) {
	a1, _ := newBackend(t, "b1", server.Options{})
	c, err := client.New("http://" + a1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Fleet(context.Background()); !errors.Is(err, client.ErrNoFleet) {
		t.Fatalf("Fleet against a backend: %v, want ErrNoFleet", err)
	}
}
