package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"regiongrow"
	"regiongrow/client"
	"regiongrow/internal/server"
)

// admit runs the edge admission checks for a submission that would
// enqueue n jobs: the per-client token bucket first (429 with a
// Retry-After telling the client when its budget refills), then the
// gateway-wide in-flight cap. It reports whether the request may
// proceed; on true the caller owes a call to the returned release.
func (g *Gateway) admit(w http.ResponseWriter, r *http.Request, n int) (release func(), ok bool) {
	if allowed, retry := g.limiter.allow(clientKey(r.RemoteAddr), n); !allowed {
		g.metrics.rateLimited.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(retry.Seconds())))
		http.Error(w, "rate limit exceeded for this client, retry later", http.StatusTooManyRequests)
		return nil, false
	}
	if cap := int64(g.opts.MaxInFlight); cap > 0 {
		if g.metrics.inflight.Add(int64(n)) > cap {
			g.metrics.inflight.Add(int64(-n))
			g.metrics.overloaded.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "gateway at capacity, retry later", http.StatusTooManyRequests)
			return nil, false
		}
	} else {
		g.metrics.inflight.Add(int64(n))
	}
	return func() { g.metrics.inflight.Add(int64(-n)) }, true
}

// routingKey computes the cache key a submission will be stored under —
// the exact key the backend itself derives, because both sides call
// regiongrow.CacheKeyForHash over the same parsed parameters. Paper
// images resolve through the pre-hashed table; raster uploads are
// buffered (bounded) and parsed, and the buffer is returned for
// re-sending to the chosen backend.
func (g *Gateway) routingKey(w http.ResponseWriter, r *http.Request, p server.SegmentParams) (key string, body []byte, err error) {
	if p.ImageName != "" {
		id, err := regiongrow.ParsePaperImageID(p.ImageName)
		if err != nil {
			return "", nil, err
		}
		pk := g.paperKeys[id.ShortName()]
		return regiongrow.CacheKeyForHash(pk.hash, pk.w, pk.h, p.Config, p.Kind), nil, nil
	}
	body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, g.opts.MaxBodyBytes))
	if err != nil {
		return "", nil, err
	}
	im, err := regiongrow.ReadPGM(bytes.NewReader(body))
	if err != nil {
		return "", nil, fmt.Errorf("reading PGM body: %w", err)
	}
	return regiongrow.CacheKey(im, p.Config, p.Kind), body, nil
}

// handleSubmit serves POST /v1/jobs and POST /v1/segment: admission,
// then consistent-hash routing by cache key, then a forward to the
// owning backend — failing over clockwise around the ring when the
// owner cannot be reached at all (its failure also counts toward
// ejection, so a dead backend stops owning keys after a few requests
// even between health sweeps).
func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	release, ok := g.admit(w, r, 1)
	if !ok {
		return
	}
	defer release()
	p, err := server.ParseSegmentValues(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key, body, err := g.routingKey(w, r, p)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	g.metrics.submitted.Add(1)

	tried := make(map[string]bool)
	for {
		owner, ok := g.ring.OwnerSkip(key, func(m string) bool { return tried[m] })
		if !ok {
			g.metrics.errors.Add(1)
			http.Error(w, "no reachable backend in the fleet for this request", http.StatusServiceUnavailable)
			return
		}
		b := g.reg.get(owner)
		if b == nil { // raced with a leave; the ring catches up on its own
			tried[owner] = true
			continue
		}
		resp, err := g.forward(r.Context(), r, b.base, body)
		if err != nil {
			if r.Context().Err() != nil {
				return // the client went away; not the backend's fault
			}
			g.reg.noteFailure(b, err)
			g.metrics.failovers.Add(1)
			tried[owner] = true
			continue
		}
		relay(w, resp, b)
		return
	}
}

// handleJobProxy serves GET /v1/jobs/{id}, its /events stream, and
// DELETE: the job ID names the replica holding the record (the backend
// embeds its instance ID in every ID it mints), so any gateway can
// route the lookup without shared state.
func (g *Gateway) handleJobProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	instance, ok := server.ParseJobInstance(id)
	if !ok {
		http.Error(w, fmt.Sprintf("job %q carries no fleet instance; was it minted by this fleet?", id), http.StatusNotFound)
		return
	}
	b := g.reg.byInstance(instance)
	if b == nil {
		http.Error(w, fmt.Sprintf("no backend with instance %q in this fleet (its jobs are unreachable until it rejoins)", instance), http.StatusNotFound)
		return
	}
	g.metrics.proxied.Add(1)
	resp, err := g.forward(r.Context(), r, b.base, nil)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		g.reg.noteFailure(b, err)
		http.Error(w, fmt.Sprintf("backend %s unreachable: %v", b.addr, err), http.StatusBadGateway)
		return
	}
	relay(w, resp, b)
}

// batchItem is one parsed batch entry ready to submit: the SDK request
// plus the ring key it routes by.
type batchItem struct {
	req client.JobRequest
	key string
	err error // parse failure; reported per-item, never fails the batch
}

// handleBatch serves POST /v1/batch by fanning items out across the
// fleet: each item routes by its own cache key, so a batch naturally
// spreads over every backend, and repeated batches of the same items
// hit the same replicas' caches. Submissions go through the typed SDK —
// the gateway builds client.JobRequest values, so a manifest field the
// SDK does not speak cannot exist. Item order is preserved; items fail
// independently, as on a single backend.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, g.opts.MaxBodyBytes)
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var items []batchItem
	var err error
	if strings.HasPrefix(ct, "multipart/") {
		items, err = g.batchMultipart(r, ct)
	} else {
		items, err = g.batchManifest(r)
	}
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	release, ok := g.admit(w, r, len(items))
	if !ok {
		return
	}
	defer release()
	g.metrics.batches.Add(1)

	results := make([]client.BatchResult, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		results[i].Index = i
		if it.err != nil {
			results[i].Error = it.err.Error()
			continue
		}
		g.metrics.batchItems.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = g.submitItem(r, i, it)
		}()
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(client.BatchResponse{Jobs: results})
}

// submitItem routes one batch item by its key and submits it through
// the owning backend's SDK handle, failing over like handleSubmit.
func (g *Gateway) submitItem(r *http.Request, i int, it batchItem) client.BatchResult {
	res := client.BatchResult{Index: i}
	tried := make(map[string]bool)
	for {
		owner, ok := g.ring.OwnerSkip(it.key, func(m string) bool { return tried[m] })
		if !ok {
			res.Error = "no reachable backend in the fleet"
			return res
		}
		b := g.reg.get(owner)
		if b == nil {
			tried[owner] = true
			continue
		}
		job, err := b.sdk.Submit(r.Context(), it.req)
		if err != nil {
			// HTTP-level rejections (bad item, full queue) are the
			// backend's per-item answer; only transport failures justify
			// trying the next replica.
			if r.Context().Err() == nil && isTransportError(err) {
				g.reg.noteFailure(b, err)
				g.metrics.failovers.Add(1)
				tried[owner] = true
				continue
			}
			res.Error = err.Error()
			return res
		}
		res.ID = job.ID
		return res
	}
}

// isTransportError distinguishes a failed exchange (no HTTP response:
// dial error, reset) from a response the SDK classified into one of its
// typed errors or a status message.
func isTransportError(err error) bool {
	if errors.Is(err, client.ErrBusy) || errors.Is(err, client.ErrNotFound) {
		return false
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// batchManifest parses a JSON batch body into routable items, reusing
// the server's own manifest-to-query translation so gateway and backend
// cannot disagree on a field.
func (g *Gateway) batchManifest(r *http.Request) ([]batchItem, error) {
	var m client.BatchManifest
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("decoding batch manifest: %w", err)
	}
	if len(m.Items) == 0 {
		return nil, errors.New("batch manifest has no items")
	}
	items := make([]batchItem, len(m.Items))
	for i, item := range m.Items {
		items[i] = g.parseManifestItem(item)
	}
	return items, nil
}

func (g *Gateway) parseManifestItem(item client.BatchItem) batchItem {
	p, err := server.ParseSegmentValues(server.BatchItemQuery(item))
	if err != nil {
		return batchItem{err: err}
	}
	if p.ImageName == "" {
		return batchItem{err: errors.New("batch item names no image (JSON manifests segment the paper images; upload PGMs as a multipart batch)")}
	}
	id, err := regiongrow.ParsePaperImageID(p.ImageName)
	if err != nil {
		return batchItem{err: err}
	}
	pk := g.paperKeys[id.ShortName()]
	return batchItem{
		req: client.JobRequest{PaperImage: id.ShortName(), Engine: p.Kind, Config: p.Config, Labels: p.Labels},
		key: regiongrow.CacheKeyForHash(pk.hash, pk.w, pk.h, p.Config, p.Kind),
	}
}

// batchMultipart parses a multipart batch: every part is one PGM
// raster, all sharing the query-parameter config — the same contract as
// the backend's own multipart handler.
func (g *Gateway) batchMultipart(r *http.Request, ct string) ([]batchItem, error) {
	p, err := server.ParseSegmentValues(r.URL.Query())
	if err != nil {
		return nil, err
	}
	_, params, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil || params["boundary"] == "" {
		return nil, fmt.Errorf("bad multipart content type %q", ct)
	}
	mr := multipart.NewReader(r.Body, params["boundary"])
	var items []batchItem
	for i := 0; ; i++ {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("reading multipart batch part %d: %w", i, err)
		}
		im, err := regiongrow.ReadPGM(part)
		part.Close()
		if err != nil {
			items = append(items, batchItem{err: fmt.Errorf("part %d: reading PGM: %w", i, err)})
			continue
		}
		items = append(items, batchItem{
			req: client.JobRequest{Image: im, Engine: p.Kind, Config: p.Config, Labels: p.Labels},
			key: regiongrow.CacheKey(im, p.Config, p.Kind),
		})
	}
	if len(items) == 0 {
		return nil, errors.New("multipart batch has no parts")
	}
	return items, nil
}

// handleHealthz reports gateway liveness and fleet readiness: 200 while
// at least one backend is admitted to the routing ring, 503 otherwise
// (the gateway is up but can serve nothing).
func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ms := g.reg.members()
	healthy := 0
	for _, m := range ms {
		if m.InRing {
			healthy++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	status := http.StatusOK
	state := "ok"
	if healthy == 0 {
		status = http.StatusServiceUnavailable
		state = "no reachable backends"
	}
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\"status\":%q,\"backends\":%d,\"in_ring\":%d}\n", state, len(ms), healthy)
}

// handleFleetGet serves GET /v1/fleet: the membership snapshot in
// address order, with per-backend health as of the latest probe.
func (g *Gateway) handleFleetGet(w http.ResponseWriter, r *http.Request) {
	ms := g.reg.members()
	st := client.FleetStatus{Backends: len(ms), Members: ms}
	for _, m := range ms {
		if m.Healthy {
			st.Healthy++
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleFleetJoin serves POST /v1/fleet/join?addr=H:P. The new backend
// is probed synchronously: reachable, it starts owning keys before the
// response is written; unreachable, it joins as unhealthy and the
// health loop admits it when it comes up — so orchestration may
// register a replica before starting its process.
func (g *Gateway) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		http.Error(w, "missing addr parameter", http.StatusBadRequest)
		return
	}
	b, err := g.reg.add(addr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if b != nil {
		g.reg.probe(r.Context(), b)
	}
	writeJSON(w, http.StatusOK, client.FleetUpdate{Changed: b != nil, Members: g.reg.members()})
}

// handleFleetLeave serves POST /v1/fleet/leave?addr=H:P. The departed
// backend's keys re-route to the survivors (bounded movement); its job
// records become unreachable through the gateway until it rejoins.
// Removing the last backend is refused.
func (g *Gateway) handleFleetLeave(w http.ResponseWriter, r *http.Request) {
	addr := r.URL.Query().Get("addr")
	if addr == "" {
		http.Error(w, "missing addr parameter", http.StatusBadRequest)
		return
	}
	changed, err := g.reg.remove(addr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, client.FleetUpdate{Changed: changed, Members: g.reg.members()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
