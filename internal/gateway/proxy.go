package gateway

import (
	"bytes"
	"context"
	"io"
	"net/http"
)

// forward replays the incoming request against one backend: same
// method, path, and query, with body (nil for bodyless requests)
// re-sent from the buffered copy. The returned response is the
// backend's, untouched; the caller relays it with relay. A transport
// error (connect refused, reset) comes back as err — an HTTP error
// status does not, because it is a valid answer to relay.
func (g *Gateway) forward(ctx context.Context, r *http.Request, base string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, base+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	// The only request headers the backend interprets: upload media type
	// and the SSE accept marker. Hop-by-hop headers stay hop-by-hop.
	if v := r.Header.Get("Content-Type"); v != "" {
		req.Header.Set("Content-Type", v)
	}
	if v := r.Header.Get("Accept"); v != "" {
		req.Header.Set("Accept", v)
	}
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		req.Header.Set("Last-Event-ID", v)
	}
	return g.hc.Do(req)
}

// relay copies a backend response to the client: status, headers, and a
// flush-per-read body copy so SSE frames cross the gateway as they are
// produced rather than when the stream ends. It closes resp.Body.
func relay(w http.ResponseWriter, resp *http.Response, b *backend) {
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		h[k] = vs
	}
	// Attribution headers: which replica actually served this exchange.
	// Tests and the CI smoke assert routing stickiness on these.
	h.Set("X-Regiongrow-Backend", b.addr)
	b.mu.Lock()
	if b.instance != "" {
		h.Set("X-Regiongrow-Backend-Instance", b.instance)
	}
	b.mu.Unlock()
	w.WriteHeader(resp.StatusCode)
	copyFlush(w, resp.Body)
}

// copyFlush streams src to w, flushing after every read.
func copyFlush(w http.ResponseWriter, src io.Reader) {
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}
