package gateway

import (
	"math"
	"net"
	"sync"
	"time"
)

// rateLimiter is a per-client token-bucket limiter for submission
// endpoints: each client (keyed by remote IP) accrues rate tokens per
// second up to burst, and a submission spends one token per job it
// would enqueue (a batch spends one per item). An empty bucket answers
// 429 with a Retry-After before any work reaches a backend — admission
// control at the edge, where rejecting is cheapest.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	// sweepAt bounds the map: idle clients' buckets refill to burst and
	// then carry no information, so they are dropped on a periodic sweep
	// rather than accumulating forever.
	sweepAt time.Time
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimiter builds a limiter; rate <= 0 disables limiting (allow
// always answers ok). burst <= 0 defaults to 2*rate (at least 1).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if b <= 0 {
		b = math.Max(1, 2*rate)
	}
	return &rateLimiter{
		rate:    rate,
		burst:   b,
		buckets: make(map[string]*bucket),
		sweepAt: time.Now().Add(time.Minute),
	}
}

// allow spends n tokens from client's bucket. When the bucket is short
// it spends nothing and returns the duration after which n tokens will
// have accrued — the Retry-After to answer with.
func (l *rateLimiter) allow(clientKey string, n int) (ok bool, retryAfter time.Duration) {
	if l.rate <= 0 {
		return true, 0
	}
	need := math.Min(float64(n), l.burst) // a batch larger than burst costs a full bucket
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if now.After(l.sweepAt) {
		l.sweepLocked(now)
	}
	b := l.buckets[clientKey]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[clientKey] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	wait := (need - b.tokens) / l.rate
	return false, time.Duration(math.Ceil(wait)) * time.Second
}

// sweepLocked drops buckets that have been idle long enough to be full
// again, and schedules the next sweep.
func (l *rateLimiter) sweepLocked(now time.Time) {
	idle := time.Duration(l.burst/l.rate*float64(time.Second)) + time.Minute
	for k, b := range l.buckets {
		if now.Sub(b.last) > idle {
			delete(l.buckets, k)
		}
	}
	l.sweepAt = now.Add(time.Minute)
}

// clientKey extracts the rate-limit key from a request's remote
// address: the IP without the ephemeral port, so reconnecting does not
// reset a client's budget.
func clientKey(remoteAddr string) string {
	if host, _, err := net.SplitHostPort(remoteAddr); err == nil {
		return host
	}
	return remoteAddr
}
