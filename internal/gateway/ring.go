package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring mapping cache keys to fleet members.
// Each member contributes vnodes points (its address hashed with a
// per-replica suffix) on a 64-bit circle; a key is owned by the member
// whose point is the first at or clockwise of the key's hash. The two
// properties the serving fleet is built on, both pinned by test:
//
//   - balance: with enough virtual nodes, key ownership spreads within
//     a few percent of uniform, so backend caches and worker pools load
//     evenly;
//   - bounded movement: adding or removing a member only reassigns the
//     keys whose clockwise-first point belonged to (or now belongs to)
//     that member — about 1/N of the space — so a fleet change does not
//     flush the other backends' result caches.
//
// The hash is SHA-256-derived and shared by every gateway process, so
// independent stateless gateways in front of the same fleet route every
// key to the same home backend with no coordination. Ring is safe for
// concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	members map[string]bool
	hashes  []uint64          // sorted ring points
	owners  map[uint64]string // ring point -> member
}

// DefaultVNodes is the virtual-node count per member used when NewRing
// is given a non-positive value: high enough that ownership balances
// within a few percent, low enough that rebuilds stay trivial for any
// plausible fleet.
const DefaultVNodes = 512

// NewRing returns an empty ring with the given virtual-node count per
// member (non-positive selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{
		vnodes:  vnodes,
		members: make(map[string]bool),
		owners:  make(map[uint64]string),
	}
}

// point hashes one virtual node or key onto the circle.
func point(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member, reporting whether the membership changed.
func (r *Ring) Add(member string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[member] {
		return false
	}
	r.members[member] = true
	r.rebuildLocked()
	return true
}

// Remove deletes a member, reporting whether the membership changed.
func (r *Ring) Remove(member string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[member] {
		return false
	}
	delete(r.members, member)
	r.rebuildLocked()
	return true
}

// rebuildLocked regenerates the sorted point table from the member set.
// A full rebuild on every mutation keeps Remove trivially correct and is
// cheap at fleet scale (members x vnodes points); determinism comes from
// sorting members before hashing, so equal-hash ties (cryptographically
// negligible, but handled) always resolve the same way on every gateway.
func (r *Ring) rebuildLocked() {
	members := make([]string, 0, len(r.members))
	for m := range r.members {
		members = append(members, m)
	}
	sort.Strings(members)
	r.hashes = r.hashes[:0]
	clear(r.owners)
	for _, m := range members {
		for i := 0; i < r.vnodes; i++ {
			h := point(m + "#" + strconv.Itoa(i))
			if _, taken := r.owners[h]; taken {
				continue // first (lexicographically smallest) member keeps the point
			}
			r.owners[h] = m
			r.hashes = append(r.hashes, h)
		}
	}
	sort.Slice(r.hashes, func(i, j int) bool { return r.hashes[i] < r.hashes[j] })
}

// Members returns the member set in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	members := make([]string, 0, len(r.members))
	for m := range r.members {
		members = append(members, m)
	}
	sort.Strings(members)
	return members
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning key, or ok=false on an empty ring.
func (r *Ring) Owner(key string) (member string, ok bool) {
	return r.OwnerSkip(key, nil)
}

// OwnerSkip returns the first member at or clockwise of key's point for
// which skip (when non-nil) reports false — the routing primitive behind
// failover: skipping an unreachable home backend lands the key on the
// next member clockwise, the same member every gateway would pick.
// ok=false when the ring is empty or every member is skipped.
func (r *Ring) OwnerSkip(key string, skip func(member string) bool) (member string, ok bool) {
	h := point(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.hashes)
	if n == 0 {
		return "", false
	}
	start := sort.Search(n, func(i int) bool { return r.hashes[i] >= h })
	tried := make(map[string]bool, len(r.members))
	for i := 0; i < n && len(tried) < len(r.members); i++ {
		m := r.owners[r.hashes[(start+i)%n]]
		if tried[m] {
			continue
		}
		if skip == nil || !skip(m) {
			return m, true
		}
		tried[m] = true
	}
	return "", false
}
