package gateway

import (
	"fmt"
	"testing"
)

func syntheticKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real cache keys; the ring only sees opaque strings.
		keys[i] = fmt.Sprintf("%064x|t=%d|tie=random|seed=1|sq=16|eng=sequential", i, 10+i%5)
	}
	return keys
}

func fleetMembers(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return ms
}

func ownersOf(r *Ring, keys []string) map[string]string {
	owners := make(map[string]string, len(keys))
	for _, k := range keys {
		m, ok := r.Owner(k)
		if !ok {
			panic("owner on a populated ring")
		}
		owners[k] = m
	}
	return owners
}

// TestRingBalance: 1000 synthetic cache keys over 4 members spread
// within ±20% of uniform — the property that keeps backend caches and
// queues evenly loaded.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	members := fleetMembers(4)
	for _, m := range members {
		r.Add(m)
	}
	keys := syntheticKeys(1000)
	counts := make(map[string]int)
	for k, m := range ownersOf(r, keys) {
		_ = k
		counts[m]++
	}
	want := len(keys) / len(members)
	lo, hi := want*8/10, want*12/10
	for _, m := range members {
		if counts[m] < lo || counts[m] > hi {
			t.Errorf("member %s owns %d of %d keys, want within [%d, %d]", m, counts[m], len(keys), lo, hi)
		}
	}
}

// TestRingMovementOnLeave: removing one of N members moves only that
// member's keys — about 1/N of them — and every survivor keeps its
// assignment, so a fleet departure does not flush the other backends'
// caches.
func TestRingMovementOnLeave(t *testing.T) {
	r := NewRing(0)
	members := fleetMembers(4)
	for _, m := range members {
		r.Add(m)
	}
	keys := syntheticKeys(1000)
	before := ownersOf(r, keys)
	gone := members[2]
	r.Remove(gone)
	after := ownersOf(r, keys)

	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if before[k] != gone {
				t.Fatalf("key %q moved from surviving member %s to %s", k, before[k], after[k])
			}
		} else if before[k] == gone {
			t.Fatalf("key %q still owned by removed member %s", k, gone)
		}
	}
	if limit := len(keys) * 125 / (100 * len(members)); moved > limit {
		t.Errorf("%d of %d keys moved on leave, want <= %d (~1/N)", moved, len(keys), limit)
	}
}

// TestRingMovementOnJoin: a joining member takes about 1/N of the key
// space, all of it for itself — no key moves between pre-existing
// members.
func TestRingMovementOnJoin(t *testing.T) {
	r := NewRing(0)
	members := fleetMembers(4)
	for _, m := range members[:3] {
		r.Add(m)
	}
	keys := syntheticKeys(1000)
	before := ownersOf(r, keys)
	joiner := members[3]
	r.Add(joiner)
	after := ownersOf(r, keys)

	moved := 0
	for _, k := range keys {
		if before[k] != after[k] {
			moved++
			if after[k] != joiner {
				t.Fatalf("key %q moved to %s, not the joiner", k, after[k])
			}
		}
	}
	if limit := len(keys) * 125 / (100 * len(members)); moved > limit {
		t.Errorf("%d of %d keys moved on join, want <= %d (~1/N)", moved, len(keys), limit)
	}
	if moved == 0 {
		t.Error("joiner took no keys at all")
	}
}

// TestRingDeterminism: insertion order does not affect ownership —
// independent gateways building their rings from differently-ordered
// backend lists agree on every key.
func TestRingDeterminism(t *testing.T) {
	members := fleetMembers(5)
	r1 := NewRing(0)
	for _, m := range members {
		r1.Add(m)
	}
	r2 := NewRing(0)
	for i := len(members) - 1; i >= 0; i-- {
		r2.Add(members[i])
	}
	for _, k := range syntheticKeys(200) {
		m1, _ := r1.Owner(k)
		m2, _ := r2.Owner(k)
		if m1 != m2 {
			t.Fatalf("rings disagree on %q: %s vs %s", k, m1, m2)
		}
	}
}

// TestOwnerSkip: skipping the home member yields the clockwise-next
// one, deterministically; skipping everyone yields ok=false.
func TestOwnerSkip(t *testing.T) {
	r := NewRing(0)
	members := fleetMembers(3)
	for _, m := range members {
		r.Add(m)
	}
	key := "some-cache-key"
	home, ok := r.Owner(key)
	if !ok {
		t.Fatal("no owner on a populated ring")
	}
	next, ok := r.OwnerSkip(key, func(m string) bool { return m == home })
	if !ok || next == home {
		t.Fatalf("OwnerSkip(home) = %q, %v", next, ok)
	}
	again, _ := r.OwnerSkip(key, func(m string) bool { return m == home })
	if again != next {
		t.Fatalf("failover target not deterministic: %s then %s", next, again)
	}
	if _, ok := r.OwnerSkip(key, func(string) bool { return true }); ok {
		t.Fatal("OwnerSkip with everything skipped reported an owner")
	}
}

// TestRingEmpty: an empty ring owns nothing; membership mutations
// report change correctly.
func TestRingEmpty(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("k"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if !r.Add("a:1") || r.Add("a:1") {
		t.Fatal("Add change reporting wrong")
	}
	if !r.Remove("a:1") || r.Remove("a:1") {
		t.Fatal("Remove change reporting wrong")
	}
}
