package gateway_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"regiongrow"
	"regiongrow/client"
	"regiongrow/internal/gateway"
	"regiongrow/internal/server"
)

// sleepSegment stubs compute with a fixed service time: the scale-out
// tests measure the serving tier (routing, admission, proxying, fan-in
// of concurrent jobs across replicas), which requires backend capacity
// to be the bottleneck. Real engines on this host would all contend for
// the same CPUs and could never show fleet scaling; a sleep models N
// machines' worth of independent compute honestly.
func sleepSegment(d time.Duration) server.SegmentFunc {
	return func(ctx context.Context, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind, obs regiongrow.Observer) (*regiongrow.Segmentation, error) {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &regiongrow.Segmentation{W: im.W, H: im.H, Labels: make([]int32, im.W*im.H), FinalRegions: 1}, nil
	}
}

// balancedThresholds picks jobs thresholds whose image1 cache keys the
// ring spreads exactly evenly over the fleet, so the scale measurement
// is not confounded by the (bounded, ±20%) statistical imbalance a
// small sample would have.
func balancedThresholds(t testing.TB, gw *gateway.Gateway, addrs []string, jobs int) []int {
	t.Helper()
	im := regiongrow.GeneratePaperImage(regiongrow.Image1NestedRects128)
	quota := make(map[string]int, len(addrs))
	for _, a := range addrs {
		quota[a] = jobs / len(addrs)
	}
	var picked []int
	for th := 1; len(picked) < jobs && th < 10000; th++ {
		cfg := regiongrow.Config{Threshold: th, Tie: regiongrow.RandomTie, Seed: 1}
		owner, ok := gw.Ring().Owner(regiongrow.CacheKey(im, cfg, regiongrow.SequentialEngine))
		if ok && quota[owner] > 0 {
			quota[owner]--
			picked = append(picked, th)
		}
	}
	if len(picked) < jobs {
		t.Fatalf("could not balance %d keys over %d backends", jobs, len(addrs))
	}
	return picked
}

// fleetThroughput measures cache-miss jobs/s through a gateway over
// nBackends replicas, each with `workers` stub workers of service time
// svc: every job has a distinct key (and backend caches are disabled),
// so each one costs a full service slot on its owning replica.
func fleetThroughput(t testing.TB, nBackends, jobs, workers int, svc time.Duration) float64 {
	addrs := make([]string, nBackends)
	for i := range addrs {
		addrs[i], _ = newBackend(t, fmt.Sprintf("s%d", i+1), server.Options{
			Workers: workers, QueueDepth: jobs + 8, CacheEntries: -1, Segment: sleepSegment(svc),
		})
	}
	gw, _, c := newGateway(t, gateway.Options{Backends: addrs})
	thresholds := balancedThresholds(t, gw, addrs, jobs)

	ctx := context.Background()
	errs := make(chan error, jobs)
	start := time.Now()
	var wg sync.WaitGroup
	for _, th := range thresholds {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job, err := c.Submit(ctx, client.JobRequest{
				PaperImage: "image1", Engine: regiongrow.SequentialEngine,
				Config: regiongrow.Config{Threshold: th, Tie: regiongrow.RandomTie, Seed: 1},
			})
			if err == nil {
				_, err = c.Wait(ctx, job.ID)
			}
			if err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return float64(jobs) / elapsed.Seconds()
}

// TestFleetScaleOut is the scale acceptance gate: on the cache-miss
// path, 2 backends must serve >= 1.6x the jobs/s of 1, and 4 backends
// >= 3x. Service time dominates gateway overhead by construction (100ms
// stub), so the measured ratios reflect routing fan-out, not host CPU.
func TestFleetScaleOut(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second fleet load test")
	}
	const (
		jobs    = 24
		workers = 2
		svc     = 150 * time.Millisecond
	)
	one := fleetThroughput(t, 1, jobs, workers, svc)
	two := fleetThroughput(t, 2, jobs, workers, svc)
	four := fleetThroughput(t, 4, jobs, workers, svc)
	t.Logf("jobs/s: 1 backend %.1f, 2 backends %.1f (%.2fx), 4 backends %.1f (%.2fx)",
		one, two, two/one, four, four/one)
	if two < 1.6*one {
		t.Errorf("2 backends: %.2fx of 1-backend throughput, want >= 1.6x", two/one)
	}
	if four < 3.0*one {
		t.Errorf("4 backends: %.2fx of 1-backend throughput, want >= 3.0x", four/one)
	}
}

// BenchmarkFleetThroughput reports cache-miss jobs/s through the
// gateway at fleet sizes 1, 2, and 4 — the numbers behind the scale-out
// gate, runnable standalone:
//
//	go test -run '^$' -bench FleetThroughput ./internal/gateway
func BenchmarkFleetThroughput(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends=%d", n), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total += fleetThroughput(b, n, 24, 2, 25*time.Millisecond)
			}
			b.ReportMetric(total/float64(b.N), "jobs/s")
		})
	}
}

// TestFleetByteIdenticalResults: the determinism contract that makes
// key-sharding sound, end to end — the same request yields the same
// bytes whichever backend computes it and whichever gateway carries it.
func TestFleetByteIdenticalResults(t *testing.T) {
	const q = "/v1/segment?image=image3&threshold=10&tie=random&seed=1&format=pgm"
	fetch := func(base string) []byte {
		t.Helper()
		resp, err := http.Post(base+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("segment: %s (%v)", resp.Status, err)
		}
		return body
	}

	// Two disjoint single-backend fleets: different replicas compute the
	// same key from scratch.
	aA, _ := newBackend(t, "fleetA", server.Options{})
	_, baseA, _ := newGateway(t, gateway.Options{Backends: []string{aA}})
	aB, _ := newBackend(t, "fleetB", server.Options{})
	_, baseB, _ := newGateway(t, gateway.Options{Backends: []string{aB}})
	pgmA, pgmB := fetch(baseA), fetch(baseB)
	if !bytes.Equal(pgmA, pgmB) {
		t.Fatal("disjoint fleets produced different PGM bytes for the same key")
	}

	// Two gateways over one shared 2-backend fleet: both route the key
	// to the same replica and relay identical bytes.
	a1, _ := newBackend(t, "b1", server.Options{})
	a2, _ := newBackend(t, "b2", server.Options{})
	_, base1, _ := newGateway(t, gateway.Options{Backends: []string{a1, a2}})
	_, base2, _ := newGateway(t, gateway.Options{Backends: []string{a2, a1}}) // reversed list
	pgm1, pgm2 := fetch(base1), fetch(base2)
	if !bytes.Equal(pgm1, pgm2) {
		t.Fatal("two gateways over one fleet relayed different bytes")
	}
	if !bytes.Equal(pgm1, pgmA) {
		t.Fatal("shared fleet disagrees with disjoint fleets")
	}

	// And the label rasters agree through the job API too.
	cA, err := client.New(baseA)
	if err != nil {
		t.Fatal(err)
	}
	cB, err := client.New(baseB)
	if err != nil {
		t.Fatal(err)
	}
	req := client.JobRequest{PaperImage: "image3", Engine: regiongrow.SequentialEngine,
		Config: regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1}, Labels: true}
	ctx := context.Background()
	jA, err := cA.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	jB, err := cB.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	doneA, err := cA.Wait(ctx, jA.ID)
	if err != nil {
		t.Fatal(err)
	}
	doneB, err := cB.Wait(ctx, jB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if doneA.Result == nil || doneB.Result == nil {
		t.Fatal("missing results")
	}
	if len(doneA.Result.Labels) == 0 || len(doneA.Result.Labels) != len(doneB.Result.Labels) {
		t.Fatalf("label raster sizes differ: %d vs %d", len(doneA.Result.Labels), len(doneB.Result.Labels))
	}
	for i := range doneA.Result.Labels {
		if doneA.Result.Labels[i] != doneB.Result.Labels[i] {
			t.Fatalf("labels diverge at pixel %d", i)
		}
	}
}
