package gateway

import (
	"context"
	"net/http"
	"sync"
	"time"

	"regiongrow/internal/server"
)

// Stats is the JSON document the gateway serves on GET /v1/stats: its
// own edge counters plus a live fleet-wide aggregation — every backend
// probed concurrently at snapshot time, each contributing its full
// regiongrowd stats document (typed as server.Stats, so the decode
// breaks loudly if the backend schema ever moves).
type Stats struct {
	Instance      string    `json:"instance"`
	StartedAt     time.Time `json:"started_at"`
	UptimeSeconds float64   `json:"uptime_seconds"`

	Gateway  GatewayCounters `json:"gateway"`
	Fleet    FleetSummary    `json:"fleet"`
	Totals   FleetTotals     `json:"totals"`
	Backends []BackendStats  `json:"backends"`
}

// GatewayCounters are the edge tier's own counters; they count routing
// decisions, not compute, which lives in the per-backend stats.
type GatewayCounters struct {
	// Submitted counts key-routed submissions (POST /v1/jobs and
	// /v1/segment); Proxied counts job-ID exchanges (GET, events SSE,
	// DELETE) forwarded to the record's owner.
	Submitted int64 `json:"submitted"`
	Proxied   int64 `json:"proxied"`
	// Batches counts POST /v1/batch requests, BatchItems the jobs they
	// fanned out across the fleet.
	Batches    int64 `json:"batches"`
	BatchItems int64 `json:"batch_items"`
	// RateLimited and Overloaded count 429s issued at the edge (token
	// bucket and in-flight cap respectively) before any backend saw the
	// request.
	RateLimited int64 `json:"rate_limited"`
	Overloaded  int64 `json:"overloaded"`
	// Failovers counts submissions re-routed off an unreachable owner;
	// Errors counts requests no backend could take.
	Failovers int64 `json:"failovers"`
	Errors    int64 `json:"errors"`
	InFlight  int64 `json:"inflight"`
}

// FleetSummary is the membership head-count at snapshot time.
type FleetSummary struct {
	Backends int `json:"backends"`
	Healthy  int `json:"healthy"`
	InRing   int `json:"in_ring"`
}

// FleetTotals sums the load-bearing backend counters across the fleet —
// the numbers a capacity dashboard watches without caring which replica
// served what.
type FleetTotals struct {
	JobsSubmitted int64 `json:"jobs_submitted"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`
	InFlight      int64 `json:"inflight"`
	Workers       int   `json:"workers"`
}

// BackendStats is one replica's contribution: its fleet-membership view
// and, when the snapshot probe reached it, its full stats document.
type BackendStats struct {
	Addr     string `json:"addr"`
	Instance string `json:"instance,omitempty"`
	Healthy  bool   `json:"healthy"`
	InRing   bool   `json:"in_ring"`
	Error    string `json:"error,omitempty"`
	// Stats is the backend's own /v1/stats document; null when the
	// snapshot probe failed.
	Stats *server.Stats `json:"stats,omitempty"`
}

// handleStats serves GET /v1/stats: gateway counters plus a live
// fleet-wide aggregation.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	st := Stats{
		Instance:      g.opts.Instance,
		StartedAt:     g.metrics.start,
		UptimeSeconds: time.Since(g.metrics.start).Seconds(),
		Gateway: GatewayCounters{
			Submitted:   g.metrics.submitted.Load(),
			Proxied:     g.metrics.proxied.Load(),
			Batches:     g.metrics.batches.Load(),
			BatchItems:  g.metrics.batchItems.Load(),
			RateLimited: g.metrics.rateLimited.Load(),
			Overloaded:  g.metrics.overloaded.Load(),
			Failovers:   g.metrics.failovers.Load(),
			Errors:      g.metrics.errors.Load(),
			InFlight:    g.metrics.inflight.Load(),
		},
	}

	backends := g.reg.all()
	stats := make([]*server.Stats, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), g.opts.ProbeTimeout)
			defer cancel()
			stats[i], _ = fetchStats(ctx, g.hc, b.base)
		}()
	}
	wg.Wait()

	st.Backends = make([]BackendStats, 0, len(backends))
	for i, b := range backends {
		m := b.member()
		bs := BackendStats{Addr: m.Addr, Instance: m.Instance, Healthy: m.Healthy, InRing: m.InRing, Error: m.Error, Stats: stats[i]}
		if s := stats[i]; s != nil {
			st.Totals.JobsSubmitted += s.Jobs.SubmittedTotal
			st.Totals.CacheHits += s.Cache.Hits
			st.Totals.CacheMisses += s.Cache.Misses
			st.Totals.InFlight += s.Queue.InFlight
			st.Totals.Workers += s.Queue.Workers
		}
		st.Fleet.Backends++
		if m.Healthy {
			st.Fleet.Healthy++
		}
		if m.InRing {
			st.Fleet.InRing++
		}
		st.Backends = append(st.Backends, bs)
	}
	sortBackendStats(st.Backends)
	writeJSON(w, http.StatusOK, st)
}

func sortBackendStats(bs []BackendStats) {
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && bs[j].Addr < bs[j-1].Addr; j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}
