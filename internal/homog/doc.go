// Package homog defines homogeneity criteria for region growing and the
// intensity-interval algebra the engines share.
//
// The paper uses the pixel range criterion exclusively: a region is
// homogeneous when the difference between its maximum and minimum pixel
// intensities does not exceed a threshold T. The merge stage's edge weights
// are ranges of region unions, so the whole computation reduces to an
// algebra over closed intensity intervals [Lo, Hi] — which this package
// provides — plus the threshold predicate.
package homog
