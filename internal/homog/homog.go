package homog

import "fmt"

// Interval is a closed intensity interval [Lo, Hi]. The zero value is the
// empty interval (Lo > Hi is never constructed; Empty uses Lo=MaxIntensity,
// Hi=0 so that Union with anything yields the other operand — and so that
// the branch-free union `{min(Lo,Lo'), max(Hi,Hi')}` the packed path and
// the arena graph compute is exact even when one operand is Empty).
type Interval struct {
	Lo, Hi uint8
}

// Empty returns the identity element for Union. Its bounds derive from
// MaxIntensity, the constant the packed SWAR path shares, so the scalar
// and word-parallel representations cannot drift.
func Empty() Interval { return Interval{Lo: MaxIntensity, Hi: 0} }

// Point returns the degenerate interval [v, v] — a single pixel's interval.
func Point(v uint8) Interval { return Interval{Lo: v, Hi: v} }

// IsEmpty reports whether the interval contains no intensities.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// Union returns the smallest interval containing both operands.
func (iv Interval) Union(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	out := iv
	if other.Lo < out.Lo {
		out.Lo = other.Lo
	}
	if other.Hi > out.Hi {
		out.Hi = other.Hi
	}
	return out
}

// Range returns Hi−Lo, the pixel range. The empty interval has range 0:
// a region with no pixels is vacuously homogeneous.
func (iv Interval) Range() int {
	if iv.IsEmpty() {
		return 0
	}
	return int(iv.Hi) - int(iv.Lo)
}

// Contains reports whether intensity v lies in the interval.
func (iv Interval) Contains(v uint8) bool { return v >= iv.Lo && v <= iv.Hi }

// String formats the interval for diagnostics.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// Criterion decides whether a (union of) region(s) with a given intensity
// interval is homogeneous. Implementations must be monotone: if an interval
// is not homogeneous, no superset of it is. Monotonicity is what guarantees
// the split stage's early exit and the merge stage's edge de-activation are
// sound.
type Criterion interface {
	// Homogeneous reports whether a region whose pixels span iv satisfies
	// the criterion.
	Homogeneous(iv Interval) bool
	// String describes the criterion for logs and experiment records.
	String() string
}

// RangeCriterion is the paper's pixel-range criterion: Hi−Lo ≤ T.
type RangeCriterion struct {
	T int
}

// NewRange returns the pixel-range criterion with threshold t.
// It panics if t is negative.
func NewRange(t int) RangeCriterion {
	if t < 0 {
		panic(fmt.Sprintf("homog: negative threshold %d", t))
	}
	return RangeCriterion{T: t}
}

// Homogeneous implements Criterion.
func (c RangeCriterion) Homogeneous(iv Interval) bool { return iv.Range() <= c.T }

// String implements Criterion.
func (c RangeCriterion) String() string { return fmt.Sprintf("range<=%d", c.T) }

// Weight returns the merge-stage edge weight for two regions with intervals
// a and b: the pixel range of their union. Only edges with Weight ≤ T are
// active under RangeCriterion{T}.
func Weight(a, b Interval) int { return a.Union(b).Range() }
