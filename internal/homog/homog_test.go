package homog

import (
	"testing"
	"testing/quick"
)

func TestPointInterval(t *testing.T) {
	iv := Point(7)
	if iv.Lo != 7 || iv.Hi != 7 {
		t.Fatalf("Point(7) = %v", iv)
	}
	if iv.Range() != 0 {
		t.Fatalf("Point range = %d", iv.Range())
	}
	if iv.IsEmpty() {
		t.Fatal("point interval is empty")
	}
}

func TestEmptyIdentity(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Fatal("Empty() is not empty")
	}
	if e.Range() != 0 {
		t.Fatalf("empty range = %d", e.Range())
	}
	err := quick.Check(func(lo, hi uint8) bool {
		iv := Interval{Lo: min(lo, hi), Hi: max(lo, hi)}
		return e.Union(iv) == iv && iv.Union(e) == iv
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// arb builds a non-empty interval from two arbitrary bytes.
func arb(a, b uint8) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{Lo: a, Hi: b}
}

func TestUnionCommutativeAssociativeIdempotent(t *testing.T) {
	err := quick.Check(func(a1, a2, b1, b2, c1, c2 uint8) bool {
		a, b, c := arb(a1, a2), arb(b1, b2), arb(c1, c2)
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Union(b).Union(c) != a.Union(b.Union(c)) {
			return false
		}
		return a.Union(a) == a
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnionMonotoneRange(t *testing.T) {
	err := quick.Check(func(a1, a2, b1, b2 uint8) bool {
		a, b := arb(a1, a2), arb(b1, b2)
		u := a.Union(b)
		return u.Range() >= a.Range() && u.Range() >= b.Range()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnionContainsOperands(t *testing.T) {
	err := quick.Check(func(a1, a2, b1, b2, x uint8) bool {
		a, b := arb(a1, a2), arb(b1, b2)
		u := a.Union(b)
		if a.Contains(x) && !u.Contains(x) {
			return false
		}
		if b.Contains(x) && !u.Contains(x) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRange(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int
	}{
		{Interval{0, 255}, 255},
		{Interval{10, 10}, 0},
		{Interval{100, 110}, 10},
		{Empty(), 0},
	}
	for _, c := range cases {
		if got := c.iv.Range(); got != c.want {
			t.Errorf("%v.Range() = %d, want %d", c.iv, got, c.want)
		}
	}
}

func TestRangeCriterion(t *testing.T) {
	c := NewRange(10)
	if !c.Homogeneous(Interval{50, 60}) {
		t.Error("range 10 should satisfy T=10")
	}
	if c.Homogeneous(Interval{50, 61}) {
		t.Error("range 11 should fail T=10")
	}
	if !c.Homogeneous(Empty()) {
		t.Error("empty region should be vacuously homogeneous")
	}
	if c.String() != "range<=10" {
		t.Errorf("String() = %q", c.String())
	}
}

func TestCriterionMonotone(t *testing.T) {
	// If an interval fails, every superset fails (the property that makes
	// edge de-activation and early split exit sound).
	err := quick.Check(func(a1, a2, b1, b2 uint8, tRaw uint8) bool {
		c := NewRange(int(tRaw % 64))
		a, b := arb(a1, a2), arb(b1, b2)
		u := a.Union(b)
		if !c.Homogeneous(a) && c.Homogeneous(u) {
			return false
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewRangePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRange(-1) did not panic")
		}
	}()
	NewRange(-1)
}

func TestWeight(t *testing.T) {
	if w := Weight(Interval{10, 20}, Interval{15, 40}); w != 30 {
		t.Fatalf("Weight = %d, want 30", w)
	}
	if w := Weight(Point(5), Point(5)); w != 0 {
		t.Fatalf("Weight of identical points = %d", w)
	}
	err := quick.Check(func(a1, a2, b1, b2 uint8) bool {
		a, b := arb(a1, a2), arb(b1, b2)
		return Weight(a, b) == Weight(b, a) && Weight(a, b) == a.Union(b).Range()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if s := (Interval{3, 9}).String(); s != "[3,9]" {
		t.Errorf("String = %q", s)
	}
	if s := Empty().String(); s != "[empty]" {
		t.Errorf("empty String = %q", s)
	}
}
