package homog

import "encoding/binary"

// MaxIntensity is the largest representable pixel intensity. The Empty
// sentinel ({MaxIntensity, 0}) and the packed word path below both derive
// from it, so the scalar and SWAR code cannot drift apart.
const MaxIntensity = 255

// The packed path processes 8 pixels per uint64 with SWAR byte-wise
// min/max (the multi-spin-coding idiom: many small lanes in one integer
// word, no branches, both reduction chains independent so dual integer
// pipes stay full). Bytes are split into even and odd 16-bit lanes; each
// lane holds one pixel value in [0, 255], so per-lane arithmetic cannot
// carry across lanes.
const (
	laneMask uint64 = 0x00FF00FF00FF00FF // low byte of each 16-bit lane
	laneBias uint64 = 0x0100010001000100 // bit 8 of each lane
	laneOne  uint64 = 0x0001000100010001 // 1 in each lane
)

// laneGE returns, per 16-bit lane, 0x00FF where x >= y and 0 elsewhere.
// Lanes hold byte values, so (x|bias)-y stays within its lane and bit 8 of
// the per-lane difference is set exactly when x >= y.
func laneGE(x, y uint64) uint64 {
	return (((x | laneBias) - y) >> 8 & laneOne) * 0xFF
}

// laneMin selects per 16-bit lane the smaller of x and y.
func laneMin(x, y uint64) uint64 {
	m := laneGE(x, y)
	return y&m | x&^m
}

// laneMax selects per 16-bit lane the larger of x and y.
func laneMax(x, y uint64) uint64 {
	m := laneGE(x, y)
	return x&m | y&^m
}

// MinBytes returns the byte-wise minimum of two packed 8-pixel words.
func MinBytes(a, b uint64) uint64 {
	return laneMin(a&laneMask, b&laneMask) | laneMin(a>>8&laneMask, b>>8&laneMask)<<8
}

// MaxBytes returns the byte-wise maximum of two packed 8-pixel words.
func MaxBytes(a, b uint64) uint64 {
	return laneMax(a&laneMask, b&laneMask) | laneMax(a>>8&laneMask, b>>8&laneMask)<<8
}

// RowMinMax returns the minimum and maximum intensity of a pixel row,
// equivalent to folding Interval.Union over Point(row[i]) — the
// differential property test pins the equivalence across all alignments
// and tail lengths. The empty row returns the Empty() sentinel bounds.
func RowMinMax(row []uint8) (lo, hi uint8) {
	lo, hi = MaxIntensity, 0
	i := 0
	if len(row) >= 16 {
		// Two independent accumulator pairs per direction: the even/odd
		// lane splits inside MinBytes/MaxBytes already interleave, and the
		// word stride keeps the loads sequential.
		minW := ^uint64(0)
		maxW := uint64(0)
		for ; i+8 <= len(row); i += 8 {
			w := binary.LittleEndian.Uint64(row[i:])
			minW = MinBytes(minW, w)
			maxW = MaxBytes(maxW, w)
		}
		for s := 0; s < 64; s += 8 {
			lo = min(lo, uint8(minW>>s))
			hi = max(hi, uint8(maxW>>s))
		}
	}
	for ; i < len(row); i++ {
		lo = min(lo, row[i])
		hi = max(hi, row[i])
	}
	return lo, hi
}

// RowInterval is RowMinMax as an Interval.
func RowInterval(row []uint8) Interval {
	lo, hi := RowMinMax(row)
	return Interval{Lo: lo, Hi: hi}
}

// RowsMinMax writes the element-wise minimum and maximum of two
// equal-length pixel rows into minDst and maxDst (each at least len(a)).
// It is the vertical half of a 2×2 block reduction: quadsplit feeds two
// adjacent image rows through it, then folds horizontal pairs of the
// results to obtain level-1 block intervals.
func RowsMinMax(a, b, minDst, maxDst []uint8) {
	if len(a) != len(b) {
		panic("homog: RowsMinMax rows differ in length")
	}
	_ = minDst[:len(a)]
	_ = maxDst[:len(a)]
	i := 0
	for ; i+8 <= len(a); i += 8 {
		x := binary.LittleEndian.Uint64(a[i:])
		y := binary.LittleEndian.Uint64(b[i:])
		binary.LittleEndian.PutUint64(minDst[i:], MinBytes(x, y))
		binary.LittleEndian.PutUint64(maxDst[i:], MaxBytes(x, y))
	}
	for ; i < len(a); i++ {
		minDst[i] = min(a[i], b[i])
		maxDst[i] = max(a[i], b[i])
	}
}
