package homog

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// scalarRowMinMax is the reference the packed path must match: a plain
// fold of Interval.Union over Point, exactly the code the word path
// replaced.
func scalarRowMinMax(row []uint8) (uint8, uint8) {
	iv := Empty()
	for _, p := range row {
		iv = iv.Union(Point(p))
	}
	return iv.Lo, iv.Hi
}

// TestMinMaxBytesExhaustiveLanes: the SWAR byte min/max agrees with the
// scalar operators for every byte pair in at least one lane position, and
// lanes never interact — each pair is planted in a different lane of the
// same word alongside adversarial neighbours.
func TestMinMaxBytesExhaustiveLanes(t *testing.T) {
	for x := 0; x < 256; x++ {
		for y := 0; y < 256; y++ {
			lane := (x*256 + y) % 8
			// Neighbour lanes carry the extreme values, so any cross-lane
			// carry or mask slip would corrupt the lane under test.
			a := ^uint64(0) &^ (0xFF << (8 * lane)) // 0xFF neighbours
			b := uint64(0)                          // 0x00 neighbours
			a |= uint64(x) << (8 * lane)
			b |= uint64(y) << (8 * lane)
			gotMin := uint8(MinBytes(a, b) >> (8 * lane))
			gotMax := uint8(MaxBytes(a, b) >> (8 * lane))
			if gotMin != min(uint8(x), uint8(y)) || gotMax != max(uint8(x), uint8(y)) {
				t.Fatalf("lane %d: Min/MaxBytes(%#x, %#x) = %d, %d; want %d, %d",
					lane, x, y, gotMin, gotMax, min(uint8(x), uint8(y)), max(uint8(x), uint8(y)))
			}
			// Neighbour lanes must be untouched by the lane under test.
			for l := 0; l < 8; l++ {
				if l == lane {
					continue
				}
				if uint8(MinBytes(a, b)>>(8*l)) != 0 || uint8(MaxBytes(a, b)>>(8*l)) != 0xFF {
					t.Fatalf("lane %d leaked into lane %d for pair (%d, %d)", lane, l, x, y)
				}
			}
		}
	}
}

// TestRowMinMaxMatchesScalarAllLengths: the packed row reduction equals
// the scalar Union fold for every length 0..129 — covering the empty row
// (Empty sentinel), sub-word rows, the 16-byte engagement threshold, and
// every tail residue of the 8-byte word loop — at every alignment offset
// within a word, over full-range random content.
func TestRowMinMaxMatchesScalarAllLengths(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	backing := make([]uint8, 256)
	for n := 0; n <= 129; n++ {
		for off := 0; off < 8; off++ {
			row := backing[off : off+n]
			for i := range row {
				row[i] = uint8(rng.UintN(256))
			}
			gotLo, gotHi := RowMinMax(row)
			wantLo, wantHi := scalarRowMinMax(row)
			if gotLo != wantLo || gotHi != wantHi {
				t.Fatalf("len %d off %d: RowMinMax = (%d, %d), scalar fold = (%d, %d)",
					n, off, gotLo, gotHi, wantLo, wantHi)
			}
			if iv := RowInterval(row); iv.Lo != wantLo || iv.Hi != wantHi {
				t.Fatalf("len %d off %d: RowInterval = %v", n, off, iv)
			}
		}
	}
}

// TestRowMinMaxQuick: randomised lengths and content, including
// constant-value and extreme-value rows the uniform generator rarely
// produces.
func TestRowMinMaxQuick(t *testing.T) {
	err := quick.Check(func(row []uint8, fill uint8, asFill bool) bool {
		if asFill {
			for i := range row {
				row[i] = fill
			}
		}
		gotLo, gotHi := RowMinMax(row)
		wantLo, wantHi := scalarRowMinMax(row)
		return gotLo == wantLo && gotHi == wantHi
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRowsMinMaxMatchesScalar: the two-row element-wise reduction equals
// per-element scalar min/max for every length residue and alignment, and
// never writes past len(a).
func TestRowsMinMaxMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	aBack := make([]uint8, 160)
	bBack := make([]uint8, 160)
	for n := 0; n <= 80; n++ {
		for off := 0; off < 8; off++ {
			a, b := aBack[off:off+n], bBack[off:off+n]
			for i := range a {
				a[i] = uint8(rng.UintN(256))
				b[i] = uint8(rng.UintN(256))
			}
			minDst := make([]uint8, n+1)
			maxDst := make([]uint8, n+1)
			minDst[n], maxDst[n] = 0xAB, 0xCD // canaries past the row
			RowsMinMax(a, b, minDst[:n], maxDst[:n])
			for i := 0; i < n; i++ {
				if minDst[i] != min(a[i], b[i]) || maxDst[i] != max(a[i], b[i]) {
					t.Fatalf("len %d off %d i %d: RowsMinMax = (%d, %d); want (%d, %d)",
						n, off, i, minDst[i], maxDst[i], min(a[i], b[i]), max(a[i], b[i]))
				}
			}
			if minDst[n] != 0xAB || maxDst[n] != 0xCD {
				t.Fatalf("len %d off %d: RowsMinMax wrote past the row", n, off)
			}
		}
	}
}

func TestRowsMinMaxPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched row lengths")
		}
	}()
	RowsMinMax(make([]uint8, 4), make([]uint8, 5), make([]uint8, 5), make([]uint8, 5))
}
