// Package machine models the execution cost of the Connection Machine
// configurations the paper evaluates. The CM-2 and CM-5 no longer exist, so
// the engines charge every primitive they execute (elementwise operation,
// NEWS shift, router transaction, scan, sort, message, barrier) to a
// simulated clock parameterised by a Profile.
//
// The model is LogP-flavoured rather than cycle-accurate: a data-parallel
// operation over n virtual elements on P processing elements costs
// ceil(n/P) element steps plus a fixed per-operation overhead; routed
// communication pays a latency plus per-element cost; messages pay a setup
// cost alpha plus a per-word cost beta. The constants were calibrated
// against the paper's split-stage times (which depend only on image size,
// not content, making them a clean calibration target); merge-stage times
// are then *predictions* of the model, and cmd/benchtab prints them beside
// the paper's tables. Absolute fidelity is impossible; the model is judged
// on orderings and ratios (async < LP < data-parallel CM-5; CM-2 16K <
// CM-2 8K; CM-2 < CM-5 in CM Fortran).
package machine
