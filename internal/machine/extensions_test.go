package machine

import "testing"

func TestHPFHypothetical(t *testing.T) {
	hpf := HPFHypothetical()
	cmf := Get(CM5_CMF)
	if hpf.PE != cmf.PE {
		t.Fatal("HPF profile changed the node count")
	}
	if hpf.TElem != cmf.TElem {
		t.Fatal("HPF profile should not change element throughput")
	}
	// The whole point: per-operation overheads drop.
	if hpf.TSync >= cmf.TSync || hpf.RouterLatency >= cmf.RouterLatency || hpf.TScan >= cmf.TScan {
		t.Fatalf("HPF overheads not reduced: %+v", hpf)
	}
	if hpf.Name == cmf.Name {
		t.Fatal("HPF profile should be distinguishable")
	}
}

func TestScaledCM2(t *testing.T) {
	for _, pe := range []int{1024, 8192, 65536} {
		p := ScaledCM2(pe)
		if p.PE != pe {
			t.Fatalf("ScaledCM2(%d).PE = %d", pe, p.PE)
		}
		if p.TElem != Get(CM2_8K).TElem {
			t.Fatal("scaling should keep per-element cost")
		}
	}
	// More PEs strictly help large elementwise ops.
	if ScaledCM2(65536).ElemOp(1<<18) >= ScaledCM2(1024).ElemOp(1<<18) {
		t.Fatal("scaling has no effect on big ops")
	}
}
