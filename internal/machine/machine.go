package machine

import "fmt"

// Profile holds the cost parameters of one machine configuration.
// All times are in seconds.
type Profile struct {
	// Name as it appears in the paper's tables.
	Name string

	// PE is the number of processing elements executing data-parallel
	// operations (physical processors on the CM-2; nodes on the CM-5).
	PE int

	// TElem is the time one PE spends producing one element of an
	// elementwise operation (includes the virtual-processor loop step).
	TElem float64
	// TSync is the fixed overhead of issuing one data-parallel operation
	// (instruction broadcast on the CM-2; the "housekeeping" — load
	// balance and synchronization — the paper blames for the CM-5's slow
	// CM Fortran times).
	TSync float64
	// TNews is the per-element per-hop cost of grid (NEWS) communication.
	TNews float64
	// TRouter is the per-element cost of general router communication.
	TRouter float64
	// RouterLatency is the fixed cost of one router operation.
	RouterLatency float64
	// TScan is the per-combining-step cost of scan/reduce trees.
	TScan float64

	// Message passing parameters (CM-5 CMMD).
	// Alpha is the per-message setup time; the paper's LP scheme pays it
	// once per ring step whether or not a message flows.
	Alpha float64
	// Beta is the per-32-bit-word transfer time.
	Beta float64
	// TBarrier is the cost of a global synchronization or control-network
	// collective (the CM-5's control network did reductions and
	// broadcasts in hardware, far cheaper than data-network messages).
	TBarrier float64
	// TNode is the time of one scalar operation in a node program.
	TNode float64
	// TSplitLevel is the fixed per-node overhead of one split pass
	// (loop setup and bounds bookkeeping in the F77 node code).
	TSplitLevel float64
	// TMergeIterFixed and TMergeIterPixel model the residual
	// per-merge-iteration cost of the F77 node program: the paper's
	// per-iteration merge times are nearly independent of region count
	// but grow with sub-image size, indicating the node code re-walks
	// its pixel-level buffers each iteration. Charge per iteration:
	// TMergeIterFixed + TMergeIterPixel·(tile pixels).
	TMergeIterFixed float64
	TMergeIterPixel float64
}

// String implements fmt.Stringer.
func (p *Profile) String() string { return p.Name }

// Nodes returns the node count for message-passing profiles (same as PE).
func (p *Profile) Nodes() int { return p.PE }

// ElemOp returns the cost of one elementwise data-parallel operation over
// n virtual elements.
func (p *Profile) ElemOp(n int) float64 {
	return float64(ceilDiv(n, p.PE))*p.TElem + p.TSync
}

// NewsOp returns the cost of one grid shift of n elements over dist hops.
func (p *Profile) NewsOp(n, dist int) float64 {
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return p.TSync
	}
	return float64(ceilDiv(n, p.PE))*p.TNews*float64(dist) + p.TSync
}

// RouterOp returns the cost of one general-communication operation moving
// n elements.
func (p *Profile) RouterOp(n int) float64 {
	return float64(ceilDiv(n, p.PE))*p.TRouter + p.RouterLatency
}

// ScanOp returns the cost of a scan or reduction over n elements.
func (p *Profile) ScanOp(n int) float64 {
	return float64(ceilDiv(n, p.PE))*p.TElem + float64(log2ceil(p.PE))*p.TScan + p.TSync
}

// SortOp returns the cost of sorting n elements (bitonic-style:
// O(log² n) data-parallel compare-exchange rounds with router traffic).
func (p *Profile) SortOp(n int) float64 {
	if n <= 1 {
		return p.TSync
	}
	rounds := log2ceil(n)
	rounds = rounds * (rounds + 1) / 2
	return float64(rounds) * (float64(ceilDiv(n, p.PE))*(p.TElem+p.TRouter) + p.TSync)
}

// MsgCost returns the cost of transmitting one message of `words` 32-bit
// words between two nodes.
func (p *Profile) MsgCost(words int) float64 {
	return p.Alpha + p.Beta*float64(words)
}

func ceilDiv(a, b int) int {
	if b <= 0 {
		panic(fmt.Sprintf("machine: ceilDiv by %d", b))
	}
	return (a + b - 1) / b
}

func log2ceil(v int) int {
	n := 0
	for (1 << n) < v {
		n++
	}
	return n
}
