package machine

import (
	"fmt"
	"testing"
)

func TestAllConfigsHaveProfiles(t *testing.T) {
	for _, c := range AllConfigs() {
		p := Get(c)
		if p.Name != c.String() {
			t.Errorf("%v: profile name %q", c, p.Name)
		}
		if p.PE <= 0 {
			t.Errorf("%v: PE = %d", c, p.PE)
		}
		if c.Short() == "" {
			t.Errorf("%v: empty short name", c)
		}
	}
}

func TestIsMessagePassing(t *testing.T) {
	if CM2_8K.IsMessagePassing() || CM2_16K.IsMessagePassing() || CM5_CMF.IsMessagePassing() {
		t.Fatal("data-parallel config reported as MP")
	}
	if !CM5_LP.IsMessagePassing() || !CM5_Async.IsMessagePassing() {
		t.Fatal("MP config not reported as MP")
	}
}

func TestGetReturnsFreshCopies(t *testing.T) {
	a := Get(CM2_8K)
	b := Get(CM2_8K)
	a.TElem = 999
	if b.TElem == 999 {
		t.Fatal("Get returns shared profile state")
	}
}

func TestGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(99) did not panic")
		}
	}()
	Get(ConfigID(99))
}

func TestHostNative(t *testing.T) {
	if HostNative.Short() != "native" {
		t.Errorf("HostNative.Short() = %q", HostNative.Short())
	}
	if HostNative.String() == fmt.Sprintf("ConfigID(%d)", int(HostNative)) {
		t.Error("HostNative has no display name")
	}
	if HostNative.IsMessagePassing() {
		t.Error("HostNative reported as message passing")
	}
	for _, c := range AllConfigs() {
		if c == HostNative {
			t.Error("HostNative must not be in AllConfigs (it has no cost profile)")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Get(HostNative) did not panic")
		}
	}()
	Get(HostNative)
}

func TestElemOpScaling(t *testing.T) {
	p := &Profile{PE: 100, TElem: 1, TSync: 10}
	if got := p.ElemOp(100); got != 11 {
		t.Fatalf("ElemOp(100) = %v", got)
	}
	if got := p.ElemOp(101); got != 12 {
		t.Fatalf("ElemOp(101) = %v (ceil division)", got)
	}
	if got := p.ElemOp(1); got != 11 {
		t.Fatalf("ElemOp(1) = %v", got)
	}
}

func TestNewsOp(t *testing.T) {
	p := &Profile{PE: 10, TNews: 2, TSync: 1}
	if got := p.NewsOp(10, 3); got != 7 {
		t.Fatalf("NewsOp = %v", got)
	}
	if got := p.NewsOp(10, -3); got != 7 {
		t.Fatalf("negative distance: %v", got)
	}
	if got := p.NewsOp(10, 0); got != 1 {
		t.Fatalf("zero distance: %v", got)
	}
}

func TestRouterAndScanOps(t *testing.T) {
	p := &Profile{PE: 4, TRouter: 1, RouterLatency: 5, TElem: 1, TScan: 2, TSync: 1}
	if got := p.RouterOp(8); got != 7 {
		t.Fatalf("RouterOp = %v", got)
	}
	// ScanOp: ceil(8/4)*1 + log2(4)*2 + 1 = 2 + 4 + 1.
	if got := p.ScanOp(8); got != 7 {
		t.Fatalf("ScanOp = %v", got)
	}
}

func TestSortOpGrowth(t *testing.T) {
	p := Get(CM2_8K)
	small, big := p.SortOp(100), p.SortOp(10000)
	if big <= small {
		t.Fatal("sort cost must grow with n")
	}
	if p.SortOp(1) <= 0 || p.SortOp(0) <= 0 {
		t.Fatal("degenerate sort should still cost a sync")
	}
}

func TestMsgCost(t *testing.T) {
	p := &Profile{Alpha: 10, Beta: 2}
	if got := p.MsgCost(3); got != 16 {
		t.Fatalf("MsgCost = %v", got)
	}
	if got := p.MsgCost(0); got != 10 {
		t.Fatalf("empty MsgCost = %v", got)
	}
}

func TestCalibrationOrderings(t *testing.T) {
	// Structural sanity of the calibrated profiles.
	p8, p16 := Get(CM2_8K), Get(CM2_16K)
	if p16.PE <= p8.PE {
		t.Fatal("16K must have more PEs than 8K")
	}
	// A big elementwise op is cheaper on more processors.
	if p16.ElemOp(1<<16) >= p8.ElemOp(1<<16) {
		t.Fatal("64K-element op should be cheaper on 16K procs")
	}
	// CM5 CMF per-op overhead exceeds CM2's (the paper's housekeeping).
	if Get(CM5_CMF).TSync <= p8.TSync {
		t.Fatal("CM5 CMF should have the larger per-op overhead")
	}
	mp := Get(CM5_LP)
	if mp.TNode <= 0 || mp.Alpha <= 0 {
		t.Fatal("MP profile missing node parameters")
	}
}

func TestConfigStrings(t *testing.T) {
	if ConfigID(42).String() == "" || ConfigID(42).Short() == "" {
		t.Fatal("unknown configs should still format")
	}
	if CM2_8K.String() != "CM Fortran on CM-2 ( 8K procs)" {
		t.Fatalf("paper label changed: %q", CM2_8K.String())
	}
}

func TestCeilDivPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ceilDiv by zero did not panic")
		}
	}()
	(&Profile{PE: 0}).ElemOp(5)
}
