package machine

import "fmt"

// ConfigID names one of the paper's five machine configurations.
type ConfigID int

// The five configurations, in the order of the paper's tables.
const (
	CM2_8K ConfigID = iota
	CM2_16K
	CM5_CMF
	CM5_LP
	CM5_Async

	// HostNative identifies the native shared-memory engine, which runs
	// the algorithm on host goroutines and simulates no machine. It exists
	// so experiment tables can carry a native row next to the paper's five;
	// it is not in AllConfigs and has no cost Profile (Get panics for it).
	HostNative

	// HostCluster identifies the distributed engine, which runs the
	// algorithm across real worker processes over TCP and simulates no
	// machine. Like HostNative it is not in AllConfigs and has no cost
	// Profile (Get panics for it).
	HostCluster
)

// AllConfigs lists the five configurations in table order.
func AllConfigs() []ConfigID {
	return []ConfigID{CM2_8K, CM2_16K, CM5_CMF, CM5_LP, CM5_Async}
}

// String returns the paper's label for the configuration.
func (c ConfigID) String() string {
	switch c {
	case CM2_8K:
		return "CM Fortran on CM-2 ( 8K procs)"
	case CM2_16K:
		return "CM Fortran on CM-2 (16K procs)"
	case CM5_CMF:
		return "CM Fortran on CM-5 (32 nodes)"
	case CM5_LP:
		return "F77 + CMMD on CM-5 (32 nodes, LP)"
	case CM5_Async:
		return "F77 + CMMD on CM-5 (32 nodes, Async)"
	case HostNative:
		return "Native goroutines on host"
	case HostCluster:
		return "Distributed workers over TCP"
	default:
		return fmt.Sprintf("ConfigID(%d)", int(c))
	}
}

// Short returns a compact label for charts and benchmarks.
func (c ConfigID) Short() string {
	switch c {
	case CM2_8K:
		return "CM2-8K"
	case CM2_16K:
		return "CM2-16K"
	case CM5_CMF:
		return "CM5-CMF"
	case CM5_LP:
		return "CM5-LP"
	case CM5_Async:
		return "CM5-Async"
	case HostNative:
		return "native"
	case HostCluster:
		return "dist"
	default:
		return fmt.Sprintf("cfg%d", int(c))
	}
}

// IsMessagePassing reports whether the configuration runs the message
// passing implementation (F77 + CMMD) rather than the data-parallel one.
func (c ConfigID) IsMessagePassing() bool { return c == CM5_LP || c == CM5_Async }

// Get returns the cost profile of a configuration.
//
// Calibration notes. The split stage executes a content-independent
// sequence of data-parallel operations, so the paper's split times pin
// down TElem and TSync per profile at two image sizes:
//
//	config    128² split   256² split
//	CM2-8K      0.200 s      1.008 s
//	CM2-16K     0.112 s      0.529 s
//	CM5-CMF     0.361 s      2.052 s
//	CM5-MP      0.022 s      0.097 s
//
// Router, scan, and message constants are set so the merge stage lands in
// the paper's observed ranges and preserves the paper's orderings (C2–C5
// in DESIGN.md). They are model parameters, not measurements.
func Get(c ConfigID) *Profile {
	switch c {
	case CM2_8K:
		return &Profile{
			Name: c.String(), PE: 8192,
			TElem: 221e-6, TSync: 198e-6,
			TNews: 332e-6, TRouter: 3.60e-3, RouterLatency: 2.64e-3,
			TScan: 79e-6,
		}
	case CM2_16K:
		return &Profile{
			Name: c.String(), PE: 16384,
			TElem: 227e-6, TSync: 136e-6,
			TNews: 341e-6, TRouter: 3.69e-3, RouterLatency: 1.86e-3,
			TScan: 61e-6,
		}
	case CM5_CMF:
		// 32 SPARC nodes: each element step is far cheaper than a CM-2
		// bit-serial PE, but every data-parallel operation pays the heavy
		// run-time system overhead the paper describes — and irregular
		// router/scan traffic pays it hardest, which is why the merge
		// stage was so slow in CM Fortran on the CM-5.
		return &Profile{
			Name: c.String(), PE: 32,
			TElem: 1.85e-6, TSync: 241e-6,
			TNews: 2.8e-6, TRouter: 17e-6, RouterLatency: 35e-3,
			TScan: 1.5e-3,
		}
	case CM5_LP, CM5_Async:
		// Hand-coded F77 node programs: fast scalar loops, explicit
		// messages. One profile serves both schemes; the LP/Async
		// difference is in how the engine orchestrates the exchange.
		return &Profile{
			Name: c.String(), PE: 32,
			TElem: 1.146e-6, TSync: 0,
			TNode: 1.146e-6,
			Alpha: 0.86e-3, Beta: 0.9e-6, TBarrier: 120e-6,
			TSplitLevel:     0.68e-3,
			TMergeIterFixed: 0.083, TMergeIterPixel: 9.1e-5,
		}
	case HostNative:
		panic("machine: HostNative runs on the host and has no cost profile")
	case HostCluster:
		panic("machine: HostCluster runs on real workers and has no cost profile")
	default:
		panic(fmt.Sprintf("machine: unknown config %d", int(c)))
	}
}

// HPFHypothetical models the paper's closing prediction: "With the
// availability of new data distribution directives in High Performance
// Fortran, the performance of the data parallel implementation is
// expected to be closer to the message passing one." Relative to the
// CM5_CMF profile, HPF block-distribution directives let the compiler
// keep communication local and skip most of the run-time system's layout
// housekeeping: per-operation overhead and router latency drop toward the
// hand-coded message-passing costs, while raw element throughput is
// unchanged. This is an extrapolated profile, not a measured machine; the
// extension benchmark uses it to check the prediction holds in the model.
func HPFHypothetical() *Profile {
	p := Get(CM5_CMF)
	p.Name = "CM Fortran + HPF directives on CM-5 (hypothetical)"
	p.TSync /= 6
	p.RouterLatency /= 8
	p.TScan /= 6
	p.TRouter /= 2
	return p
}

// ScaledCM2 returns a CM-2-style profile with an arbitrary processing
// element count — the knob for the processor-scaling ablation (the
// paper's complexity section gives split O(N²/P + log P) and merge
// O(R·logR/P + ... logP)).
func ScaledCM2(pe int) *Profile {
	p := Get(CM2_8K)
	p.Name = fmt.Sprintf("CM-2 style (%d PEs)", pe)
	p.PE = pe
	return p
}
