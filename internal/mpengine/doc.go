// Package mpengine implements the paper's message-passing (F77 + CMMD)
// split-and-merge program on the mpvm cluster.
//
// The node program follows the paper's steps 0–5:
//
//  0. The image is block-mapped onto a P1×P2 node grid; each node holds an
//     (N/P1)×(N/P2) sub-image, preserving adjacency between blocks.
//  1. Each node splits its sub-image independently. Because tile sides are
//     multiples of the square-size cap, the union of the local splits is
//     exactly the global split.
//  2. Each node builds the vertices and edges of its local graph; boundary
//     strips (labels plus region intervals) are exchanged with the four
//     grid neighbours to create cross-node edges.
//  3. Nodes compute merge choices for the vertices they own, route each
//     choice to the chosen neighbour's owner, and detect mutual pairs.
//  4. Merge events (representative, loser, new interval) are globally
//     concatenated so every node can relabel its edges; each loser's
//     adjacency list is handed over to its representative's owner.
//  5. Steps 3–4 repeat while any node still has an active edge.
//
// Irregular communications (choice routing, adjacency handover) run under
// either the Linear Permutation or the Async scheme — the comparison at the
// heart of the paper's CM-5 message-passing results.
//
// Vertex ownership is static: a region is owned by the node whose tile
// contains its origin pixel; when two regions merge, the representative
// (smaller ID) keeps its owner. Choices use the same hash-based tie
// semantics as the sequential kernel, so the engine produces segmentations
// identical to the sequential engine for every policy and seed.
package mpengine
