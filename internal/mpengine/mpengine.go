package mpengine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/homog"
	"regiongrow/internal/machine"
	"regiongrow/internal/mpvm"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
	"regiongrow/internal/rag"
)

// cancelCode is the sentinel contributed to a reduction by a node that has
// observed context cancellation. Cancellation must be a collective
// decision — a node returning unilaterally would leave its peers blocked
// in a barrier — so nodes fold it into reductions they already perform
// (AllReduceOr is AllReduceMax underneath, so the piggyback changes no
// simulated times and no communication counters). The code dominates any
// legitimate contribution: split iterations and the merge loop's 0/1
// activity flag are both far below it.
const cancelCode = 1 << 20

// Engine is the message-passing engine bound to a configuration and
// communication scheme.
type Engine struct {
	cfg    machine.ConfigID
	scheme mpvm.Scheme
	nodes  int
	prof   *machine.Profile
}

// New returns a message-passing engine for CM5_LP or CM5_Async with the
// paper's 32 nodes.
func New(cfg machine.ConfigID) (*Engine, error) {
	switch cfg {
	case machine.CM5_LP:
		return &Engine{cfg: cfg, scheme: mpvm.LP, nodes: 32, prof: machine.Get(cfg)}, nil
	case machine.CM5_Async:
		return &Engine{cfg: cfg, scheme: mpvm.Async, nodes: 32, prof: machine.Get(cfg)}, nil
	default:
		return nil, fmt.Errorf("mpengine: %v is not a message-passing configuration", cfg)
	}
}

// NewCustom returns an engine with an explicit node count, scheme, and
// profile — used by scaling ablations and tests.
func NewCustom(nodes int, scheme mpvm.Scheme, prof *machine.Profile) *Engine {
	return &Engine{cfg: machine.CM5_LP, scheme: scheme, nodes: nodes, prof: prof}
}

// Name implements core.Engine.
func (e *Engine) Name() string {
	return fmt.Sprintf("message-passing/%dn-%s", e.nodes, e.scheme)
}

// Scheme returns the engine's communication scheme.
func (e *Engine) Scheme() mpvm.Scheme { return e.scheme }

// grid geometry of the node mesh.
type geom struct {
	W, H   int
	P1, P2 int // node rows, node cols
	tw, th int // tile width, height
}

func (g geom) owner(id int32) int {
	x := int(id) % g.W
	y := int(id) / g.W
	return (y/g.th)*g.P2 + x/g.tw
}

func (g geom) tileOrigin(rank int) (x0, y0 int) {
	return (rank % g.P2) * g.tw, (rank / g.P2) * g.th
}

// factor splits q into P1×P2, both powers of two, as square as possible.
func factor(q int) (p1, p2 int, err error) {
	if q <= 0 || q&(q-1) != 0 {
		return 0, 0, fmt.Errorf("mpengine: node count %d is not a power of two", q)
	}
	k := 0
	for 1<<k < q {
		k++
	}
	p1 = 1 << (k / 2)
	p2 = q / p1
	return p1, p2, nil
}

// Segment implements core.Engine.
func (e *Engine) Segment(im *pixmap.Image, cfg core.Config) (*core.Segmentation, error) {
	return e.SegmentContext(context.Background(), im, cfg, core.Run{})
}

// SegmentContext implements core.ContextEngine. Every node folds its view
// of ctx into the reductions that already punctuate the split handoff and
// each merge round, so all nodes abort together (within one iteration) and
// the simulated cluster always joins — no goroutine outlives the call.
// Stage events are emitted by node 0 only, from its node goroutine.
func (e *Engine) SegmentContext(ctx context.Context, im *pixmap.Image, cfg core.Config, run core.Run) (*core.Segmentation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p1, p2, err := factor(e.nodes)
	if err != nil {
		return nil, err
	}
	if im.W%p2 != 0 || im.H%p1 != 0 {
		return nil, fmt.Errorf("mpengine: image %dx%d not divisible by node grid %dx%d", im.W, im.H, p1, p2)
	}
	g := geom{W: im.W, H: im.H, P1: p1, P2: p2, tw: im.W / p2, th: im.H / p1}
	cap := quadsplit.EffectiveCap(quadsplit.Options{MaxSquare: cfg.MaxSquare}, im.W, im.H)
	if g.tw%cap != 0 || g.th%cap != 0 {
		return nil, fmt.Errorf("mpengine: tile %dx%d not aligned to square cap %d", g.tw, g.th, cap)
	}

	out := make([]int32, im.W*im.H) // nodes write disjoint tiles
	results := make([]nodeResult, e.nodes)
	var wallMu sync.Mutex
	var splitWallMax time.Duration

	run.Emit(core.StageEvent{Kind: core.EventSplitStart})
	t0 := time.Now() //vet:timing total wall-time for Stats; never reaches labels or messages
	_, clusterStats, err := mpvm.Run(e.nodes, e.prof, func(n *mpvm.Node) error {
		st := &nodeState{n: n, g: g, e: e, im: im, cfg: cfg, cap: cap, crit: cfg.Criterion(), ctx: ctx, run: run}
		tSplit := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or messages
		st.splitLocal()
		code := st.localIters
		if ctx.Err() != nil {
			code |= cancelCode
		}
		red := n.AllReduceMax(code)
		if red >= cancelCode {
			return ctxErr(ctx)
		}
		st.splitIters = red
		st.numSquares = n.AllReduceSum(len(st.ownedIDs))
		n.Barrier()
		simSplit := n.Clock()
		wallMu.Lock()
		if d := time.Since(tSplit); d > splitWallMax { //vet:timing stage wall-time for Stats; never reaches labels or messages
			splitWallMax = d
		}
		wallMu.Unlock()
		if n.Rank == 0 {
			run.Emit(core.StageEvent{Kind: core.EventSplitDone, Iterations: st.splitIters, Squares: st.numSquares})
		}

		st.buildGraph()
		if n.Rank == 0 {
			run.Emit(core.StageEvent{Kind: core.EventGraphDone, Squares: st.numSquares})
		}
		if err := st.mergeLoop(); err != nil {
			return err
		}
		st.writeLabels(out)
		n.Barrier()
		results[n.Rank] = nodeResult{
			simSplit: simSplit,
			simTotal: n.Clock(),
			iters:    st.stats.Iterations,
			merges:   st.stats.MergesPerIter,
			forced:   st.stats.ForcedResolutions,
			splitIt:  st.splitIters,
			squares:  st.numSquares,
		}
		return nil
	})
	totalWall := time.Since(t0) //vet:timing total wall-time for Stats; never reaches labels or messages
	if err != nil {
		return nil, err
	}

	r0 := results[0]
	seg := &core.Segmentation{
		W: im.W, H: im.H,
		Labels:            out,
		SplitIterations:   r0.splitIt,
		MergeIterations:   r0.iters,
		SquaresAfterSplit: r0.squares,
		MergesPerIter:     r0.merges,
		ForcedResolutions: r0.forced,
		SplitWall:         splitWallMax,
		MergeWall:         totalWall - splitWallMax,
		SplitSim:          r0.simSplit,
		MergeSim:          r0.simTotal - r0.simSplit,
		Comm: &core.CommStats{
			Messages:  clusterStats.Messages,
			Words:     clusterStats.Words,
			Barriers:  clusterStats.Barriers,
			Gathers:   clusterStats.Gathers,
			Reduces:   clusterStats.Reduces,
			LPSteps:   clusterStats.LPSteps,
			Exchanges: clusterStats.Exchanges,
		},
	}
	seg.FillRegions(im)
	run.Emit(core.StageEvent{Kind: core.EventMergeDone, Iterations: seg.MergeIterations, Regions: seg.FinalRegions})
	return seg, nil
}

// ctxErr returns ctx's error, falling back to context.Canceled for the
// window where a peer observed cancellation first and this node's own
// check has not caught up.
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

var _ core.ContextEngine = (*Engine)(nil)

type nodeResult struct {
	simSplit, simTotal float64
	iters              int
	merges             []int
	forced             int
	splitIt            int
	squares            int
}

// nodeState is the per-node program state.
type nodeState struct {
	n    *mpvm.Node
	g    geom
	e    *Engine
	im   *pixmap.Image
	cfg  core.Config
	cap  int
	crit homog.Criterion

	ctx context.Context
	run core.Run

	x0, y0     int
	labels     []int32 // local tile labels (global region IDs), tw×th
	localIters int
	splitIters int
	numSquares int

	ownedIDs []int32                      // owned vertex IDs, kept sorted
	iv       map[int32]homog.Interval     // intervals of every known vertex
	adj      map[int32]map[int32]struct{} // adjacency of owned vertices

	asg   *rag.Assignments
	stats rag.MergeStats
	tag   int // monotonically increasing exchange tag
}

// splitLocal is step 1: split the node's sub-image independently.
func (st *nodeState) splitLocal() {
	g := st.g
	st.x0, st.y0 = g.tileOrigin(st.n.Rank)
	sub, err := st.im.SubImage(st.x0, st.y0, g.tw, g.th)
	if err != nil {
		panic(err)
	}
	res := quadsplit.Split(sub, st.crit, quadsplit.Options{MaxSquare: st.cap})
	st.localIters = res.Iterations
	// The F77 node code walks its tile once per level testing quad-blocks:
	// charge ~8 scalar ops per pixel plus a fixed loop-setup cost per
	// executed level.
	st.n.Charge(g.tw * g.th * res.Iterations * 8)
	st.n.ChargeTime(float64(res.Iterations) * st.e.prof.TSplitLevel)

	// Convert local labels to global region IDs.
	st.labels = make([]int32, g.tw*g.th)
	for ly := 0; ly < g.th; ly++ {
		for lx := 0; lx < g.tw; lx++ {
			l := res.Labels[ly*g.tw+lx]
			gx := st.x0 + int(l)%g.tw
			gy := st.y0 + int(l)/g.tw
			st.labels[ly*g.tw+lx] = int32(gy*g.W + gx)
		}
	}
	// Owned vertices and their intervals.
	st.iv = make(map[int32]homog.Interval)
	st.adj = make(map[int32]map[int32]struct{})
	for _, sq := range res.Squares(sub) {
		gid := int32((st.y0+sq.Y)*g.W + (st.x0 + sq.X))
		st.iv[gid] = sq.IV
		st.adj[gid] = make(map[int32]struct{})
		st.ownedIDs = append(st.ownedIDs, gid)
	}
	sort.Slice(st.ownedIDs, func(i, j int) bool { return st.ownedIDs[i] < st.ownedIDs[j] })
}

// buildGraph is step 2: internal edges from the tile, cross edges from
// boundary strips exchanged with grid neighbours.
func (st *nodeState) buildGraph() {
	g := st.g
	// Internal edges.
	for ly := 0; ly < g.th; ly++ {
		for lx := 0; lx < g.tw; lx++ {
			a := st.labels[ly*g.tw+lx]
			if lx+1 < g.tw {
				if b := st.labels[ly*g.tw+lx+1]; a != b {
					st.addEdge(a, b)
				}
			}
			if ly+1 < g.th {
				if b := st.labels[(ly+1)*g.tw+lx]; a != b {
					st.addEdge(a, b)
				}
			}
		}
	}
	st.n.Charge(g.tw * g.th * 4)

	// Boundary strips: for each of the four neighbours, send the labels
	// and intervals of my border pixels facing them; receive theirs; zip
	// into cross edges. Regular neighbour communication (not
	// scheme-dependent), as in the paper's step 2.
	row, col := st.n.Rank/g.P2, st.n.Rank%g.P2
	type dir struct {
		drow, dcol int
		tag        int
	}
	dirs := []dir{{0, 1, 1}, {0, -1, 2}, {1, 0, 3}, {-1, 0, 4}}
	for _, d := range dirs {
		nr, nc := row+d.drow, col+d.dcol
		if nr < 0 || nr >= g.P1 || nc < 0 || nc >= g.P2 {
			continue
		}
		peer := nr*g.P2 + nc
		strip := st.borderStrip(d.drow, d.dcol)
		payload := make([]int32, 0, len(strip)*3)
		for _, id := range strip {
			iv := st.iv[id]
			payload = append(payload, id, int32(iv.Lo), int32(iv.Hi))
		}
		st.n.Send(peer, 100+d.tag, payload)
	}
	for _, d := range dirs {
		nr, nc := row+d.drow, col+d.dcol
		if nr < 0 || nr >= g.P1 || nc < 0 || nc >= g.P2 {
			continue
		}
		peer := nr*g.P2 + nc
		// The peer sends with the opposite direction's tag.
		opp := map[int]int{1: 2, 2: 1, 3: 4, 4: 3}[d.tag]
		m := st.n.Recv(peer, 100+opp)
		mine := st.borderStrip(d.drow, d.dcol)
		if len(m.Data) != len(mine)*3 {
			panic(fmt.Sprintf("mpengine: boundary strip length %d, want %d", len(m.Data), len(mine)*3))
		}
		for i, myID := range mine {
			theirID := m.Data[3*i]
			theirIV := homog.Interval{Lo: uint8(m.Data[3*i+1]), Hi: uint8(m.Data[3*i+2])}
			if _, ok := st.iv[theirID]; !ok {
				st.iv[theirID] = theirIV
			}
			if myID != theirID {
				st.addEdge(myID, theirID)
			}
		}
	}
	st.n.Barrier()
}

// borderStrip returns, pixel by pixel, the labels along the tile border
// facing direction (drow, dcol).
func (st *nodeState) borderStrip(drow, dcol int) []int32 {
	g := st.g
	var out []int32
	switch {
	case dcol == 1: // east: last column, top to bottom
		for ly := 0; ly < g.th; ly++ {
			out = append(out, st.labels[ly*g.tw+g.tw-1])
		}
	case dcol == -1: // west: first column
		for ly := 0; ly < g.th; ly++ {
			out = append(out, st.labels[ly*g.tw])
		}
	case drow == 1: // south: last row, left to right
		out = append(out, st.labels[(g.th-1)*g.tw:g.th*g.tw]...)
	default: // north: first row
		out = append(out, st.labels[:g.tw]...)
	}
	return out
}

// addEdge records adjacency on whichever endpoints this node owns.
func (st *nodeState) addEdge(a, b int32) {
	if s, ok := st.adj[a]; ok {
		s[b] = struct{}{}
	}
	if s, ok := st.adj[b]; ok {
		s[a] = struct{}{}
	}
}

// weight returns the merge weight of edge (a, b) from the interval table.
func (st *nodeState) weight(a, b int32) int {
	return homog.Weight(st.iv[a], st.iv[b])
}

// mergeLoop is steps 3–5. It returns the context's error when the run was
// cancelled — a decision every node reaches together through the round's
// head reduction — and nil when the merge ran to completion.
func (st *nodeState) mergeLoop() error {
	st.asg = rag.NewAssignments()
	stalls := 0
	for {
		// Termination: any active edge anywhere? (The owned-side view is
		// complete: every edge has at least one owned endpoint on some
		// node.)
		anyActive := false
		scanned := 0
		for _, v := range st.ownedIDs {
			if _, alive := st.adj[v]; !alive {
				continue
			}
			//vet:ordered OR-reduction into a flag plus a count; both commute across iteration orders
			for w := range st.adj[v] {
				scanned++
				if st.crit.Homogeneous(st.iv[v].Union(st.iv[w])) {
					anyActive = true
					break
				}
			}
			if anyActive {
				break
			}
		}
		st.n.Charge(scanned * 4)
		// The head reduction doubles as the cancellation rendezvous: the
		// activity flag (0/1) and the cancel sentinel share one
		// AllReduceMax, which is exactly what AllReduceOr costs.
		code := 0
		if anyActive {
			code = 1
		}
		if st.ctx.Err() != nil {
			code = cancelCode
		}
		switch red := st.n.AllReduceMax(code); {
		case red >= cancelCode:
			return ctxErr(st.ctx)
		case red == 0:
			return nil
		}
		st.stats.Iterations++
		// Per-iteration node-program overhead (see machine.Profile).
		st.n.ChargeTime(st.e.prof.TMergeIterFixed +
			st.e.prof.TMergeIterPixel*float64(st.g.tw*st.g.th))
		policy := st.cfg.Tie
		if policy == rag.Random && stalls >= 3 {
			policy = rag.SmallestID
			st.stats.ForcedResolutions++
			stalls = 0
		}

		merged := st.mergeIteration(policy)
		st.stats.MergesPerIter = append(st.stats.MergesPerIter, merged)
		if merged == 0 {
			stalls++
		} else {
			stalls = 0
		}
	}
}

// mergeIteration runs one choice/merge/update round and returns the global
// number of merges.
func (st *nodeState) mergeIteration(policy rag.TiePolicy) int {
	g := st.g
	iter := st.stats.Iterations

	// Step 3a: choices for owned, alive vertices.
	choice := make(map[int32]int32)
	var tied []int32
	scanned := 0
	for _, v := range st.ownedIDs {
		adj, alive := st.adj[v]
		if !alive {
			continue
		}
		bestW := -1
		tied = tied[:0]
		//vet:ordered min-reduction plus count; the tie list is sorted inside rag.PickTied before any order-dependent use
		for w := range adj {
			scanned++
			wt := st.weight(v, w)
			if !st.crit.Homogeneous(st.iv[v].Union(st.iv[w])) {
				continue
			}
			switch {
			case bestW < 0 || wt < bestW:
				bestW = wt
				tied = tied[:0]
				tied = append(tied, w)
			case wt == bestW:
				tied = append(tied, w)
			}
		}
		if bestW >= 0 {
			choice[v] = rag.PickTied(tied, policy, st.cfg.Seed, iter, v)
		}
	}
	st.n.Charge(scanned*6 + len(choice)*4)

	// Step 3b: route each choice (v, w) to owner(w). Iterate owned IDs,
	// not the choice map, so the routed payloads are byte-stable run to
	// run — the same bytes the distributed engine puts on real sockets.
	outbound := make(map[int][]int32)
	suitors := make(map[int32][]int32) // w -> suitors v
	for _, v := range st.ownedIDs {
		w, ok := choice[v]
		if !ok {
			continue
		}
		o := g.owner(w)
		if o == st.n.Rank {
			suitors[w] = append(suitors[w], v)
		} else {
			outbound[o] = append(outbound[o], v, w)
		}
	}
	st.tag += 64
	//vet:ordered suitor lists are consulted for membership only, so arrival order commutes
	for _, data := range st.n.Exchange(outbound, st.e.scheme, 1000+st.tag) {
		for i := 0; i+1 < len(data); i += 2 {
			suitors[data[i+1]] = append(suitors[data[i+1]], data[i])
		}
	}

	// Step 3c: mutual pairs. Both owners detect; the loser's owner emits
	// the event.
	var events []int32 // flat (rep, loser, lo, hi)
	for _, v := range st.ownedIDs {
		w, ok := choice[v]
		if !ok || w >= v {
			continue // emit from the loser side only: loser = max(v, w) = v
		}
		mutual := false
		if g.owner(w) == st.n.Rank {
			mutual = choice[w] == v
		} else {
			for _, s := range suitors[v] {
				if s == w {
					mutual = true
					break
				}
			}
		}
		if mutual {
			union := st.iv[v].Union(st.iv[w])
			events = append(events, w, v, int32(union.Lo), int32(union.Hi))
		}
	}

	// Step 4a: globally concatenate merge events.
	all := st.n.AllGather(events)
	mergeMap := make(map[int32]int32)
	merges := 0
	for _, data := range all {
		for i := 0; i+3 < len(data); i += 4 {
			rep, loser := data[i], data[i+1]
			union := homog.Interval{Lo: uint8(data[i+2]), Hi: uint8(data[i+3])}
			mergeMap[loser] = rep
			// Every node records the representative's new interval: an
			// edge relabeled to rep below needs it for future weights.
			st.iv[rep] = union
			st.asg.Record(loser, rep)
			merges++
		}
	}
	st.n.Charge(merges * 8)
	if st.n.Rank == 0 {
		st.run.Emit(core.StageEvent{Kind: core.EventMergeIteration, Iteration: iter, Merges: merges})
	}

	// Step 4b: relabel owned adjacency through this iteration's map.
	// Mutual pairs form a matching, so one relabeling level suffices.
	relabeled := 0
	//vet:ordered per-vertex set edits and a count are keyed and independent, so vertex visit order commutes
	for v, adjSet := range st.adj {
		var add, del []int32
		//vet:ordered del/add are applied below as keyed set deletions/insertions, which commute
		for w := range adjSet {
			if r, ok := mergeMap[w]; ok {
				del = append(del, w)
				if r != v {
					add = append(add, r)
				}
				relabeled++
			}
		}
		for _, w := range del {
			delete(adjSet, w)
		}
		for _, r := range add {
			adjSet[r] = struct{}{}
		}
	}
	st.n.Charge(relabeled * 6)

	// Step 4c: hand the loser's adjacency to the representative's owner.
	// Losers and their adjacency are visited in ascending ID order so the
	// handover payloads are byte-stable run to run.
	losers := make([]int32, 0, len(mergeMap))
	for loser := range mergeMap {
		losers = append(losers, loser)
	}
	sort.Slice(losers, func(i, j int) bool { return losers[i] < losers[j] })
	handover := make(map[int][]int32)
	for _, loser := range losers {
		rep := mergeMap[loser]
		adjSet, ok := st.adj[loser]
		if !ok {
			continue // not owned here
		}
		o := g.owner(rep)
		if o == st.n.Rank {
			// Local transfer.
			repAdj := st.adj[rep]
			if repAdj == nil {
				repAdj = make(map[int32]struct{})
				st.adj[rep] = repAdj
			}
			//vet:ordered keyed set union commutes across iteration orders
			for w := range adjSet {
				if w != rep {
					repAdj[w] = struct{}{}
				}
			}
		} else {
			ws := make([]int32, 0, len(adjSet))
			for w := range adjSet {
				ws = append(ws, w)
			}
			sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
			payload := []int32{rep, int32(len(adjSet))}
			for _, w := range ws {
				iv := st.iv[w]
				payload = append(payload, w, int32(iv.Lo), int32(iv.Hi))
			}
			handover[o] = append(handover[o], payload...)
		}
		delete(st.adj, loser)
	}
	st.tag += 64
	//vet:ordered keyed set unions and first-writer-wins mirror intervals commute: every sender relabeled with the same matching, so concurrent values agree
	for _, data := range st.n.Exchange(handover, st.e.scheme, 2000+st.tag) {
		i := 0
		for i < len(data) {
			rep, cnt := data[i], int(data[i+1])
			i += 2
			repAdj := st.adj[rep]
			if repAdj == nil {
				repAdj = make(map[int32]struct{})
				st.adj[rep] = repAdj
			}
			for k := 0; k < cnt; k++ {
				w := data[i]
				iv := homog.Interval{Lo: uint8(data[i+1]), Hi: uint8(data[i+2])}
				i += 3
				if w == rep {
					continue
				}
				// Incoming neighbours were relabeled by the sender with
				// the same iteration map; record a mirror interval if new.
				if _, ok := st.iv[w]; !ok {
					st.iv[w] = iv
				}
				repAdj[w] = struct{}{}
			}
		}
	}

	// Losers no longer exist as vertices anywhere; drop their mirrors.
	for loser := range mergeMap {
		delete(st.iv, loser)
	}
	return merges
}

// writeLabels resolves the per-pixel final labels into the shared output.
func (st *nodeState) writeLabels(out []int32) {
	g := st.g
	cache := make(map[int32]int32)
	for ly := 0; ly < g.th; ly++ {
		for lx := 0; lx < g.tw; lx++ {
			l := st.labels[ly*g.tw+lx]
			r, ok := cache[l]
			if !ok {
				r = st.asg.Find(l)
				cache[l] = r
			}
			out[(st.y0+ly)*g.W+(st.x0+lx)] = r
		}
	}
	st.n.Charge(g.tw * g.th * 2)
}
