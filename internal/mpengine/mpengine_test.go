package mpengine

import (
	"testing"
	"testing/quick"

	"regiongrow/internal/core"
	"regiongrow/internal/machine"
	"regiongrow/internal/mpvm"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
)

func newEngine(t *testing.T, cfg machine.ConfigID) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestRejectsDataParallelConfig(t *testing.T) {
	if _, err := New(machine.CM2_8K); err == nil {
		t.Fatal("accepted a data-parallel configuration")
	}
}

func TestName(t *testing.T) {
	if newEngine(t, machine.CM5_LP).Name() != "message-passing/32n-LP" {
		t.Fatalf("Name = %q", newEngine(t, machine.CM5_LP).Name())
	}
	if newEngine(t, machine.CM5_Async).Scheme() != mpvm.Async {
		t.Fatal("Scheme wrong")
	}
}

func TestFactor(t *testing.T) {
	cases := []struct{ q, p1, p2 int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {8, 2, 4}, {16, 4, 4}, {32, 4, 8},
	}
	for _, c := range cases {
		p1, p2, err := factor(c.q)
		if err != nil || p1 != c.p1 || p2 != c.p2 {
			t.Errorf("factor(%d) = (%d,%d,%v), want (%d,%d)", c.q, p1, p2, err, c.p1, c.p2)
		}
	}
	for _, q := range []int{0, -1, 3, 12} {
		if _, _, err := factor(q); err == nil {
			t.Errorf("factor(%d) accepted", q)
		}
	}
}

func TestGeometryOwner(t *testing.T) {
	g := geom{W: 128, H: 128, P1: 4, P2: 8, tw: 16, th: 32}
	if g.owner(0) != 0 {
		t.Fatal("origin owner wrong")
	}
	// Pixel (16, 0) is in column tile 1.
	if g.owner(16) != 1 {
		t.Fatalf("owner(16) = %d", g.owner(16))
	}
	// Pixel (0, 32) is in row tile 1 → rank 8.
	if g.owner(32*128) != 8 {
		t.Fatalf("owner(row 32) = %d", g.owner(32*128))
	}
	x0, y0 := g.tileOrigin(9)
	if x0 != 16 || y0 != 32 {
		t.Fatalf("tileOrigin(9) = (%d,%d)", x0, y0)
	}
}

func TestRejectsBadGeometry(t *testing.T) {
	e := newEngine(t, machine.CM5_LP)
	// 100 is not divisible by the 4×8 node grid.
	if _, err := e.Segment(pixmap.Uniform(100, 5), core.Config{Threshold: 10}); err == nil {
		t.Fatal("accepted indivisible image")
	}
	// 32×32 on 32 nodes: tiles 8×4, but the default cap at N=32 is 4 —
	// divisible, so this should work.
	if _, err := e.Segment(pixmap.Uniform(32, 5), core.Config{Threshold: 10}); err != nil {
		t.Fatalf("32x32 rejected: %v", err)
	}
	// Cap 16 on 32×32: tile height 8 < 16 → misaligned.
	if _, err := e.Segment(pixmap.Uniform(32, 5), core.Config{Threshold: 10, MaxSquare: 16}); err == nil {
		t.Fatal("accepted cap exceeding tile")
	}
}

func assertMatchesSequential(t *testing.T, e *Engine, im *pixmap.Image, cfg core.Config) {
	t.Helper()
	want, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !want.EqualLabels(got) {
		t.Fatalf("labels differ from sequential (tie=%v seed=%d)", cfg.Tie, cfg.Seed)
	}
	if want.SplitIterations != got.SplitIterations ||
		want.SquaresAfterSplit != got.SquaresAfterSplit ||
		want.MergeIterations != got.MergeIterations ||
		want.FinalRegions != got.FinalRegions {
		t.Fatalf("stats differ: split %d/%d squares %d/%d merge %d/%d regions %d/%d",
			want.SplitIterations, got.SplitIterations,
			want.SquaresAfterSplit, got.SquaresAfterSplit,
			want.MergeIterations, got.MergeIterations,
			want.FinalRegions, got.FinalRegions)
	}
	if err := core.Validate(got, im, cfg.Criterion()); err != nil {
		t.Fatal(err)
	}
}

func TestMatchesSequentialOnPaperImages(t *testing.T) {
	for _, mc := range []machine.ConfigID{machine.CM5_LP, machine.CM5_Async} {
		e := newEngine(t, mc)
		for _, id := range pixmap.AllPaperImages() {
			if testing.Short() && id.Size() == 256 {
				continue
			}
			im := pixmap.Generate(id, pixmap.DefaultGenOptions())
			assertMatchesSequential(t, e, im, core.Config{Threshold: 10, Tie: rag.Random, Seed: 77})
		}
	}
}

func TestMatchesSequentialAllPolicies(t *testing.T) {
	e := newEngine(t, machine.CM5_Async)
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	for _, tie := range []rag.TiePolicy{rag.SmallestID, rag.LargestID, rag.Random} {
		assertMatchesSequential(t, e, im, core.Config{Threshold: 10, Tie: tie, Seed: 3})
	}
}

func TestSchemesProduceIdenticalResults(t *testing.T) {
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 11}
	lp, err := newEngine(t, machine.CM5_LP).Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	as, err := newEngine(t, machine.CM5_Async).Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !lp.EqualLabels(as) || lp.MergeIterations != as.MergeIterations {
		t.Fatal("LP and Async disagree")
	}
	if as.MergeSim >= lp.MergeSim {
		t.Fatalf("Async merge %.3f not faster than LP %.3f", as.MergeSim, lp.MergeSim)
	}
}

func TestCustomNodeCountsProperty(t *testing.T) {
	// The node count must never change the segmentation.
	err := quick.Check(func(seed uint64, qRaw, tRaw uint8) bool {
		q := []int{1, 2, 4, 8, 16}[qRaw%5]
		im := pixmap.Random(32, seed)
		for i := range im.Pix {
			im.Pix[i] &= 0x3F
		}
		cfg := core.Config{Threshold: int(tRaw % 40), Tie: rag.Random, Seed: seed, MaxSquare: 4}
		want, err := core.Sequential{}.Segment(im, cfg)
		if err != nil {
			return false
		}
		e := NewCustom(q, mpvm.Async, machine.Get(machine.CM5_Async))
		got, err := e.Segment(im, cfg)
		if err != nil {
			return false
		}
		return want.EqualLabels(got) && want.MergeIterations == got.MergeIterations
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodeCluster(t *testing.T) {
	e := NewCustom(1, mpvm.LP, machine.Get(machine.CM5_LP))
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	assertMatchesSequential(t, e, im, core.Config{Threshold: 10, Tie: rag.SmallestID})
}

func TestSimulatedClocksPopulated(t *testing.T) {
	e := newEngine(t, machine.CM5_Async)
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	seg, err := e.Segment(im, core.Config{Threshold: 10})
	if err != nil {
		t.Fatal(err)
	}
	if seg.SplitSim <= 0 || seg.MergeSim <= 0 {
		t.Fatalf("sim clocks: split=%v merge=%v", seg.SplitSim, seg.MergeSim)
	}
}

func TestCommStatsPopulated(t *testing.T) {
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 4}
	lp, err := newEngine(t, machine.CM5_LP).Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	as, err := newEngine(t, machine.CM5_Async).Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Comm == nil || as.Comm == nil {
		t.Fatal("Comm stats missing")
	}
	if lp.Comm.LPSteps == 0 {
		t.Fatal("LP run recorded no ring steps")
	}
	if as.Comm.LPSteps != 0 {
		t.Fatalf("Async run recorded %d ring steps", as.Comm.LPSteps)
	}
	// LP sends a message every ring step; async sends only real payloads.
	if lp.Comm.Messages <= as.Comm.Messages {
		t.Fatalf("LP messages %d should exceed async %d", lp.Comm.Messages, as.Comm.Messages)
	}
	if as.Comm.Exchanges == 0 || as.Comm.Gathers == 0 || as.Comm.Barriers == 0 {
		t.Fatalf("collective counters empty: %+v", as.Comm)
	}
}

func TestUniformAndCheckerboard(t *testing.T) {
	e := newEngine(t, machine.CM5_Async)
	assertMatchesSequential(t, e, pixmap.Uniform(128, 7), core.Config{Threshold: 0})
	assertMatchesSequential(t, e, pixmap.Checkerboard(128, 0, 255), core.Config{Threshold: 10})
}
