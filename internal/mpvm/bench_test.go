package mpvm

import (
	"testing"

	"regiongrow/internal/machine"
)

// Micro-benchmarks for the cluster primitives: ns/op is the host-side
// goroutine cost of one full Run including the measured operations.

func benchRun(b *testing.B, q int, f func(n *Node) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(q, machine.Get(machine.CM5_Async), f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBarrier(b *testing.B) {
	benchRun(b, 8, func(n *Node) error {
		for i := 0; i < 100; i++ {
			n.Barrier()
		}
		return nil
	})
}

func BenchmarkAllGather(b *testing.B) {
	payload := make([]int32, 64)
	benchRun(b, 8, func(n *Node) error {
		for i := 0; i < 20; i++ {
			n.AllGather(payload)
		}
		return nil
	})
}

func BenchmarkExchangeLP(b *testing.B) {
	benchRun(b, 8, func(n *Node) error {
		out := map[int][]int32{(n.Rank + 1) % 8: {1, 2, 3}}
		for i := 0; i < 10; i++ {
			n.Exchange(out, LP, 100*i)
		}
		return nil
	})
}

func BenchmarkExchangeAsync(b *testing.B) {
	benchRun(b, 8, func(n *Node) error {
		out := map[int][]int32{(n.Rank + 1) % 8: {1, 2, 3}}
		for i := 0; i < 10; i++ {
			n.Exchange(out, Async, 100*i)
		}
		return nil
	})
}

func BenchmarkPingPong(b *testing.B) {
	benchRun(b, 2, func(n *Node) error {
		for i := 0; i < 100; i++ {
			if n.Rank == 0 {
				n.Send(1, i, []int32{1})
				n.Recv(1, i)
			} else {
				m := n.Recv(0, i)
				n.Send(0, i, m.Data)
			}
		}
		return nil
	})
}
