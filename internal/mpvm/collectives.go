package mpvm

// Additional CMMD-style collectives: broadcast from a root, prefix scans
// across ranks, and a gather-to-root. Like the reductions, they ride the
// CM-5 control network in the cost model.

// Broadcast distributes root's data to every node; every node returns the
// broadcast value. Nodes other than root pass their argument unused.
func (n *Node) Broadcast(root int, data []int32) []int32 {
	cl := n.cl
	if root < 0 || root >= cl.Q {
		panic("mpvm: broadcast from invalid root")
	}
	cl.mu.Lock()
	cl.resetCollective()
	if n.Rank == root {
		cl.gatherBuf[0] = data
	}
	cl.contrib++
	cl.stats.Gathers++
	cl.mu.Unlock()
	n.Barrier()
	cl.mu.Lock()
	out := cl.gatherBuf[0]
	cl.mu.Unlock()
	n.Barrier()
	n.clock += cl.prof.TBarrier + cl.prof.Beta*float64(len(out))
	return out
}

// ScanSum returns the inclusive prefix sum of v across ranks: node k
// receives v₀ + … + v_k. The CM-5 control network computed scans in
// hardware.
func (n *Node) ScanSum(v int) int {
	cl := n.cl
	cl.mu.Lock()
	cl.resetCollective()
	if cl.gatherBuf[n.Rank] == nil {
		cl.gatherBuf[n.Rank] = []int32{int32(v)}
	}
	cl.contrib++
	cl.stats.Reduces++
	cl.mu.Unlock()
	n.Barrier()
	cl.mu.Lock()
	sum := 0
	for r := 0; r <= n.Rank; r++ {
		if len(cl.gatherBuf[r]) > 0 {
			sum += int(cl.gatherBuf[r][0])
		}
	}
	cl.mu.Unlock()
	n.Barrier()
	n.clock += cl.prof.TBarrier
	return sum
}

// GatherTo collects every node's slice at the root, which receives the
// contributions indexed by rank; other nodes receive nil. Unlike
// AllGather, only the root pays the full data-volume cost.
func (n *Node) GatherTo(root int, data []int32) [][]int32 {
	cl := n.cl
	if root < 0 || root >= cl.Q {
		panic("mpvm: gather to invalid root")
	}
	cl.mu.Lock()
	cl.resetCollective()
	cl.gatherBuf[n.Rank] = data
	cl.contrib++
	cl.stats.Gathers++
	cl.mu.Unlock()
	n.Barrier()
	var out [][]int32
	total := 0
	if n.Rank == root {
		cl.mu.Lock()
		out = make([][]int32, cl.Q)
		copy(out, cl.gatherBuf)
		for _, d := range out {
			total += len(d)
		}
		cl.mu.Unlock()
	}
	n.Barrier()
	if n.Rank == root {
		n.clock += cl.prof.TBarrier + cl.prof.Beta*float64(total)
	} else {
		n.clock += cl.prof.TBarrier + cl.prof.Beta*float64(len(data))
	}
	return out
}
