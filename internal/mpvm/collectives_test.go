package mpvm

import (
	"fmt"
	"testing"

	"regiongrow/internal/prand"
)

func TestBroadcast(t *testing.T) {
	_, _, err := Run(4, prof(), func(n *Node) error {
		var payload []int32
		if n.Rank == 2 {
			payload = []int32{11, 22}
		}
		got := n.Broadcast(2, payload)
		if len(got) != 2 || got[0] != 11 || got[1] != 22 {
			return fmt.Errorf("rank %d got %v", n.Rank, got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastRepeated(t *testing.T) {
	_, _, err := Run(3, prof(), func(n *Node) error {
		for round := 0; round < 4; round++ {
			root := round % 3
			var payload []int32
			if n.Rank == root {
				payload = []int32{int32(round * 100)}
			}
			got := n.Broadcast(root, payload)
			if len(got) != 1 || got[0] != int32(round*100) {
				return fmt.Errorf("round %d rank %d got %v", round, n.Rank, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanSum(t *testing.T) {
	_, _, err := Run(5, prof(), func(n *Node) error {
		got := n.ScanSum(n.Rank + 1) // contributions 1..5
		want := (n.Rank + 1) * (n.Rank + 2) / 2
		if got != want {
			return fmt.Errorf("rank %d scan = %d, want %d", n.Rank, got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherTo(t *testing.T) {
	_, _, err := Run(4, prof(), func(n *Node) error {
		out := n.GatherTo(1, []int32{int32(n.Rank * 3)})
		if n.Rank != 1 {
			if out != nil {
				return fmt.Errorf("non-root received data")
			}
			return nil
		}
		for r := 0; r < 4; r++ {
			if len(out[r]) != 1 || out[r][0] != int32(r*3) {
				return fmt.Errorf("root saw %v from %d", out[r], r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInvalidRootPanicsPropagate(t *testing.T) {
	_, _, err := Run(2, prof(), func(n *Node) error {
		n.Broadcast(7, nil)
		return nil
	})
	if err == nil {
		t.Fatal("invalid root accepted")
	}
}

// TestMixedCollectiveStress interleaves every collective kind under random
// per-node compute skew — the failure-injection test for the barrier and
// episode machinery (a lost wakeup or stale buffer shows up as a wrong
// value or a deadlock here).
func TestMixedCollectiveStress(t *testing.T) {
	_, _, err := Run(8, prof(), func(n *Node) error {
		g := prand.New(uint64(n.Rank) + 99)
		for round := 0; round < 50; round++ {
			n.Charge(g.Intn(5000)) // skew simulated clocks
			switch round % 5 {
			case 0:
				if got := n.AllReduceSum(1); got != 8 {
					return fmt.Errorf("round %d: sum %d", round, got)
				}
			case 1:
				out := n.AllGather([]int32{int32(n.Rank + round)})
				for r := 0; r < 8; r++ {
					if out[r][0] != int32(r+round) {
						return fmt.Errorf("round %d: gather %v", round, out)
					}
				}
			case 2:
				root := round % 8
				var p []int32
				if n.Rank == root {
					p = []int32{int32(round)}
				}
				if got := n.Broadcast(root, p); got[0] != int32(round) {
					return fmt.Errorf("round %d: bcast %v", round, got)
				}
			case 3:
				if got := n.ScanSum(2); got != 2*(n.Rank+1) {
					return fmt.Errorf("round %d: scan %d", round, got)
				}
			case 4:
				if got := n.AllReduceMax(n.Rank * round); got != 7*round {
					return fmt.Errorf("round %d: max %d", round, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestExchangeUnderSkew injects adversarial clock skew and uneven traffic
// into both exchange schemes and checks the payload relation survives.
func TestExchangeUnderSkew(t *testing.T) {
	for _, scheme := range []Scheme{LP, Async} {
		_, _, err := Run(6, prof(), func(n *Node) error {
			g := prand.New(uint64(n.Rank)*7 + 1)
			for round := 0; round < 20; round++ {
				n.Charge(g.Intn(20000))
				out := make(map[int][]int32)
				// Node k sends to its successors a tagged payload.
				for d := 0; d < 6; d++ {
					if (n.Rank+d+round)%3 == 0 {
						out[d] = []int32{int32(n.Rank), int32(d), int32(round)}
					}
				}
				got := n.Exchange(out, scheme, 10000+round*100)
				for s, data := range got {
					if (s+n.Rank+round)%3 != 0 {
						return fmt.Errorf("unexpected sender %d in round %d", s, round)
					}
					if len(data) != 3 || data[0] != int32(s) || data[1] != int32(n.Rank) || data[2] != int32(round) {
						return fmt.Errorf("round %d: bad payload %v from %d", round, data, s)
					}
				}
				// Count expected senders.
				want := 0
				for s := 0; s < 6; s++ {
					if (s+n.Rank+round)%3 == 0 {
						want++
					}
				}
				if len(got) != want {
					return fmt.Errorf("round %d: got %d senders, want %d", round, len(got), want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
	}
}
