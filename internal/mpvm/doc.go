// Package mpvm is a message-passing virtual machine in the style of the
// CM-5 running CMMD: a fixed set of node processes (goroutines) exchanging
// typed messages, with barriers, global reductions, global concatenation,
// and the paper's two irregular all-to-many communication schemes:
//
//   - Linear Permutation (LP): every node first obtains the communication
//     matrix via global concatenation; then in step i (0 < i < Q) node k
//     sends to node (k+i) mod Q and receives from node (k−i) mod Q, in
//     lockstep. Nodes loop Q−1 times whether or not they have data.
//   - Async: nodes post their messages directly and receive until their
//     expected count is satisfied.
//
// Every node owns a simulated clock. Compute is charged explicitly by the
// node program; messages carry the sender's clock plus transfer time, and
// a receive advances the receiver's clock to at least the message's
// arrival time. Collectives synchronise clocks to the latest participant.
// Wall-clock parallelism is real (goroutines); simulated time models the
// 1993 machine.
package mpvm
