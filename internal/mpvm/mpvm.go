package mpvm

import (
	"fmt"
	"sort"
	"sync"

	"regiongrow/internal/machine"
)

// shutdownGen marks a cluster torn down by a node panic; blocked peers
// observe it and fail fast instead of deadlocking.
const shutdownGen = -1 << 30

// Message is one typed message between nodes.
type Message struct {
	Src, Dst int
	Tag      int
	Data     []int32
	// arrive is the simulated time the message is available at the
	// receiver.
	arrive float64
}

// Cluster is a running set of nodes.
type Cluster struct {
	Q    int
	prof *machine.Profile

	mu      sync.Mutex
	cond    *sync.Cond
	inboxes [][]Message

	// Barrier state.
	barGen   int
	barCount int
	barMax   float64 // max clock among arrivers of the current episode
	resolved float64 // result of the last completed episode

	// Collective payload state (guarded by mu, reset lazily per episode).
	contrib   int
	gatherBuf [][]int32
	reduceMax int64
	reduceSum int64

	stats ClusterStats
}

// ClusterStats aggregates communication counters across the run.
type ClusterStats struct {
	Messages  int64 // point-to-point messages delivered
	Words     int64 // 32-bit words moved point-to-point
	Barriers  int64 // barrier episodes
	Gathers   int64 // global concatenations
	Reduces   int64 // global reductions
	LPSteps   int64 // linear-permutation ring steps executed
	Exchanges int64 // irregular exchanges performed
}

// Node is the handle a node program uses.
type Node struct {
	Rank int
	cl   *Cluster
	// clock is the node's simulated time; only the owning goroutine
	// touches it outside collectives.
	clock float64
	// queue holds received-but-unmatched messages.
	queue []Message
}

// Scheme selects the irregular-exchange implementation.
type Scheme int

const (
	// LP is the synchronous Linear Permutation scheme.
	LP Scheme = iota
	// Async is the asynchronous direct-send scheme.
	Async
)

// String returns the paper's name for the scheme.
func (s Scheme) String() string {
	if s == LP {
		return "LP"
	}
	return "Async"
}

// Run executes f on q nodes and returns the per-node simulated finish
// times and aggregate statistics. A panic in any node program is recovered
// and returned as an error.
func Run(q int, prof *machine.Profile, f func(n *Node) error) (clocks []float64, stats ClusterStats, err error) {
	if q <= 0 {
		return nil, ClusterStats{}, fmt.Errorf("mpvm: need at least one node, got %d", q)
	}
	cl := &Cluster{Q: q, prof: prof, inboxes: make([][]Message, q)}
	cl.cond = sync.NewCond(&cl.mu)

	clocks = make([]float64, q)
	errs := make([]error, q)
	var wg sync.WaitGroup
	for r := 0; r < q; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			n := &Node{Rank: rank, cl: cl}
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpvm: node %d panicked: %v", rank, p)
					cl.mu.Lock()
					cl.barGen = shutdownGen
					cl.mu.Unlock()
					cl.cond.Broadcast()
				}
				clocks[rank] = n.clock
			}()
			errs[rank] = f(n)
		}(r)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return clocks, cl.stats, e
		}
	}
	return clocks, cl.stats, nil
}

// Clock returns the node's simulated time in seconds.
func (n *Node) Clock() float64 { return n.clock }

// Charge adds ops scalar operations of node compute to the simulated
// clock.
func (n *Node) Charge(ops int) { n.clock += float64(ops) * n.cl.prof.TNode }

// ChargeTime adds raw simulated seconds (used by engine-level cost hooks).
func (n *Node) ChargeTime(sec float64) { n.clock += sec }

// Send transmits data to node dst with the given tag. The send is
// buffered (asynchronous): the sender pays the injection cost and
// continues.
func (n *Node) Send(dst, tag int, data []int32) {
	if dst < 0 || dst >= n.cl.Q {
		panic(fmt.Sprintf("mpvm: send to invalid rank %d", dst))
	}
	n.clock += n.cl.prof.MsgCost(len(data))
	msg := Message{Src: n.Rank, Dst: dst, Tag: tag, Data: data, arrive: n.clock}
	cl := n.cl
	cl.mu.Lock()
	cl.inboxes[dst] = append(cl.inboxes[dst], msg)
	cl.stats.Messages++
	cl.stats.Words += int64(len(data))
	cl.mu.Unlock()
	cl.cond.Broadcast()
}

// Recv blocks until a message with the given tag arrives from src
// (src < 0 accepts any sender) and returns it. The receiver's clock
// advances to at least the message's arrival time plus the receive
// overhead.
func (n *Node) Recv(src, tag int) Message {
	if m, ok := n.takeQueued(src, tag); ok {
		n.acceptClock(m)
		return m
	}
	cl := n.cl
	for {
		cl.mu.Lock()
		if cl.barGen == shutdownGen {
			cl.mu.Unlock()
			panic("mpvm: cluster shut down while receiving")
		}
		if box := cl.inboxes[n.Rank]; len(box) > 0 {
			n.queue = append(n.queue, box...)
			cl.inboxes[n.Rank] = nil
			cl.mu.Unlock()
			if m, ok := n.takeQueued(src, tag); ok {
				n.acceptClock(m)
				return m
			}
			continue
		}
		cl.cond.Wait()
		cl.mu.Unlock()
	}
}

// takeQueued removes and returns the first queued message matching
// (src, tag).
func (n *Node) takeQueued(src, tag int) (Message, bool) {
	for i, m := range n.queue {
		if m.Tag == tag && (src < 0 || m.Src == src) {
			n.queue = append(n.queue[:i], n.queue[i+1:]...)
			return m, true
		}
	}
	return Message{}, false
}

func (n *Node) acceptClock(m Message) {
	if m.arrive > n.clock {
		n.clock = m.arrive
	}
	n.clock += n.cl.prof.MsgCost(len(m.Data)) // receive-side copy cost
}

// Barrier synchronises all nodes; every clock advances to the episode
// maximum plus the barrier cost.
//
// Clock safety: a node racing ahead to the next barrier contributes to a
// fresh barMax, never the one current waiters read; and generation g+1
// cannot complete before every generation-g waiter has exited, because
// completing g+1 requires all Q nodes to arrive at it.
func (n *Node) Barrier() {
	cl := n.cl
	cl.mu.Lock()
	if n.clock > cl.barMax {
		cl.barMax = n.clock
	}
	gen := cl.barGen
	cl.barCount++
	if cl.barCount == cl.Q {
		cl.barCount = 0
		cl.resolved = cl.barMax
		cl.barMax = 0
		cl.barGen++
		cl.stats.Barriers++
		cl.cond.Broadcast()
	} else {
		for cl.barGen == gen {
			cl.cond.Wait()
			if cl.barGen == shutdownGen {
				cl.mu.Unlock()
				panic("mpvm: cluster shut down at barrier")
			}
		}
	}
	n.clock = cl.resolved + cl.prof.TBarrier
	cl.mu.Unlock()
}

// resetCollective lazily clears the shared collective buffers at the
// start of an episode. Called with mu held by the episode's first
// contributor; the double barrier in the collectives guarantees episodes
// never overlap.
func (cl *Cluster) resetCollective() {
	if cl.contrib == cl.Q || cl.contrib == 0 {
		cl.contrib = 0
		cl.gatherBuf = make([][]int32, cl.Q)
		cl.reduceMax = -1 << 62
		cl.reduceSum = 0
	}
}

// AllGather performs a global concatenation: every node contributes a
// slice and receives all contributions indexed by rank. Cost: a
// logarithmic gather/broadcast tree over the total payload.
func (n *Node) AllGather(data []int32) [][]int32 {
	cl := n.cl
	cl.mu.Lock()
	cl.resetCollective()
	cl.gatherBuf[n.Rank] = data
	cl.contrib++
	cl.stats.Gathers++
	cl.mu.Unlock()
	n.Barrier()
	cl.mu.Lock()
	out := make([][]int32, cl.Q)
	copy(out, cl.gatherBuf)
	total := 0
	for _, d := range out {
		total += len(d)
	}
	cl.mu.Unlock()
	n.Barrier()
	// Concatenation rides the control network: a barrier-class cost plus
	// the data volume at per-word speed.
	n.clock += cl.prof.TBarrier + cl.prof.Beta*float64(total)
	return out
}

// AllReduceMax performs a global maximum reduction.
func (n *Node) AllReduceMax(v int) int {
	cl := n.cl
	cl.mu.Lock()
	cl.resetCollective()
	if int64(v) > cl.reduceMax {
		cl.reduceMax = int64(v)
	}
	cl.contrib++
	cl.stats.Reduces++
	cl.mu.Unlock()
	n.Barrier()
	cl.mu.Lock()
	out := int(cl.reduceMax)
	cl.mu.Unlock()
	n.Barrier()
	n.clock += cl.prof.TBarrier // hardware reduction on the control network
	return out
}

// AllReduceSum performs a global sum reduction.
func (n *Node) AllReduceSum(v int) int {
	cl := n.cl
	cl.mu.Lock()
	cl.resetCollective()
	cl.reduceSum += int64(v)
	cl.contrib++
	cl.stats.Reduces++
	cl.mu.Unlock()
	n.Barrier()
	cl.mu.Lock()
	out := int(cl.reduceSum)
	cl.mu.Unlock()
	n.Barrier()
	n.clock += cl.prof.TBarrier // hardware reduction on the control network
	return out
}

// AllReduceOr performs a global boolean OR reduction.
func (n *Node) AllReduceOr(v bool) bool {
	x := 0
	if v {
		x = 1
	}
	return n.AllReduceMax(x) > 0
}

// Exchange performs the paper's irregular all-to-many communication:
// out[d] is the payload for node d (nil/absent entries mean nothing to
// send). It returns the received payloads indexed by source rank.
// Payloads of length zero are dropped, matching "each node sends zero or
// more messages".
func (n *Node) Exchange(out map[int][]int32, scheme Scheme, tag int) map[int][]int32 {
	cl := n.cl
	cl.mu.Lock()
	cl.stats.Exchanges++
	cl.mu.Unlock()
	switch scheme {
	case LP:
		return n.exchangeLP(out, tag)
	case Async:
		return n.exchangeAsync(out, tag)
	default:
		panic(fmt.Sprintf("mpvm: unknown scheme %d", int(scheme)))
	}
}

// exchangeLP implements Linear Permutation: global concatenation of the
// communication matrix, then Q−1 lockstep ring steps. Every step
// transmits, even when empty — the overhead the paper identifies
// ("the nodes must loop a larger number of times to complete the required
// communications").
func (n *Node) exchangeLP(out map[int][]int32, tag int) map[int][]int32 {
	cl := n.cl
	q := cl.Q
	row := make([]int32, q)
	//vet:ordered writes are keyed by destination rank into distinct slots, so iteration order commutes
	for d, data := range out {
		row[d] = int32(len(data))
	}
	matrix := n.AllGather(row)

	recv := make(map[int][]int32, q)
	if data, ok := out[n.Rank]; ok && len(data) > 0 {
		recv[n.Rank] = data // self-delivery does not ride the ring
	}
	for i := 1; i < q; i++ {
		dst := (n.Rank + i) % q
		src := (n.Rank - i + q) % q
		n.Send(dst, tag+i, out[dst])
		m := n.Recv(src, tag+i)
		if len(m.Data) > 0 {
			recv[src] = m.Data
		}
		// Lockstep: the step completes when the slowest pair of the
		// round completes; charge the round's maximum message size.
		var maxWords int32
		for s := 0; s < q; s++ {
			if w := matrix[s][(s+i)%q]; w > maxWords {
				maxWords = w
			}
		}
		n.clock += cl.prof.MsgCost(int(maxWords))
		cl.mu.Lock()
		cl.stats.LPSteps++
		cl.mu.Unlock()
	}
	n.Barrier()
	return recv
}

// exchangeAsync implements the asynchronous scheme: direct sends of
// non-empty payloads; receivers learn their expected senders from a cheap
// flag concatenation and receive in arrival order.
func (n *Node) exchangeAsync(out map[int][]int32, tag int) map[int][]int32 {
	q := n.cl.Q
	row := make([]int32, q)
	//vet:ordered writes are keyed by destination rank into distinct slots, so iteration order commutes
	for d, data := range out {
		if len(data) > 0 {
			row[d] = 1
		}
	}
	matrix := n.AllGather(row)

	// Deterministic send order keeps runs reproducible.
	dsts := make([]int, 0, len(out))
	for d, data := range out {
		if len(data) > 0 && d != n.Rank {
			dsts = append(dsts, d)
		}
	}
	sort.Ints(dsts)
	for _, d := range dsts {
		n.Send(d, tag, out[d])
	}
	recv := make(map[int][]int32, q)
	if data, ok := out[n.Rank]; ok && len(data) > 0 {
		recv[n.Rank] = data
	}
	expected := 0
	for s := 0; s < q; s++ {
		if s != n.Rank && matrix[s][n.Rank] > 0 {
			expected++
		}
	}
	for got := 0; got < expected; got++ {
		m := n.Recv(-1, tag)
		recv[m.Src] = m.Data
	}
	return recv
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func log2ceil(v int) int {
	n := 0
	for (1 << n) < v {
		n++
	}
	return n
}
