package mpvm

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"regiongrow/internal/machine"
	"regiongrow/internal/prand"
)

func prof() *machine.Profile { return machine.Get(machine.CM5_LP) }

func TestSendRecv(t *testing.T) {
	_, stats, err := Run(2, prof(), func(n *Node) error {
		if n.Rank == 0 {
			n.Send(1, 7, []int32{1, 2, 3})
		} else {
			m := n.Recv(0, 7)
			if len(m.Data) != 3 || m.Data[2] != 3 || m.Src != 0 {
				return fmt.Errorf("bad message: %+v", m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages != 1 || stats.Words != 3 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestRecvByTagOutOfOrder(t *testing.T) {
	_, _, err := Run(2, prof(), func(n *Node) error {
		if n.Rank == 0 {
			n.Send(1, 1, []int32{10})
			n.Send(1, 2, []int32{20})
		} else {
			// Receive tag 2 first even though tag 1 arrives first.
			m2 := n.Recv(0, 2)
			m1 := n.Recv(0, 1)
			if m2.Data[0] != 20 || m1.Data[0] != 10 {
				return fmt.Errorf("tag matching broken: %v %v", m1.Data, m2.Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	_, _, err := Run(4, prof(), func(n *Node) error {
		if n.Rank != 0 {
			n.Send(0, 5, []int32{int32(n.Rank)})
			return nil
		}
		got := map[int32]bool{}
		for i := 0; i < 3; i++ {
			m := n.Recv(-1, 5)
			got[m.Data[0]] = true
		}
		if len(got) != 3 {
			return fmt.Errorf("received %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	clocks, stats, err := Run(4, prof(), func(n *Node) error {
		n.Charge(n.Rank * 1000000) // rank 3 is far ahead
		n.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, c := range clocks {
		if c != clocks[0] {
			t.Fatalf("clock %d = %v, clock 0 = %v", r, c, clocks[0])
		}
	}
	if stats.Barriers != 1 {
		t.Fatalf("barriers = %d", stats.Barriers)
	}
	// The barrier resolves to the slowest participant plus barrier cost.
	want := float64(3*1000000)*prof().TNode + prof().TBarrier
	if clocks[0] < want*0.999 || clocks[0] > want*1.001 {
		t.Fatalf("clock = %v, want ≈ %v", clocks[0], want)
	}
}

func TestRepeatedBarriers(t *testing.T) {
	_, stats, err := Run(3, prof(), func(n *Node) error {
		for i := 0; i < 10; i++ {
			n.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Barriers != 10 {
		t.Fatalf("barriers = %d", stats.Barriers)
	}
}

func TestMessageDelaysReceiverClock(t *testing.T) {
	clocks, _, err := Run(2, prof(), func(n *Node) error {
		if n.Rank == 0 {
			n.Charge(10000000) // sender is slow
			n.Send(1, 1, []int32{1})
		} else {
			n.Recv(0, 1) // receiver must wait on simulated time too
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if clocks[1] < clocks[0] {
		t.Fatalf("receiver clock %v below sender clock %v", clocks[1], clocks[0])
	}
}

func TestAllGather(t *testing.T) {
	_, _, err := Run(4, prof(), func(n *Node) error {
		out := n.AllGather([]int32{int32(n.Rank * 10)})
		if len(out) != 4 {
			return fmt.Errorf("len %d", len(out))
		}
		for r := 0; r < 4; r++ {
			if len(out[r]) != 1 || out[r][0] != int32(r*10) {
				return fmt.Errorf("rank %d: out[%d] = %v", n.Rank, r, out[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllGatherRepeatedEpisodes(t *testing.T) {
	// Buffers must reset between episodes.
	_, _, err := Run(3, prof(), func(n *Node) error {
		for i := 0; i < 5; i++ {
			out := n.AllGather([]int32{int32(n.Rank + i*100)})
			for r := 0; r < 3; r++ {
				if out[r][0] != int32(r+i*100) {
					return fmt.Errorf("episode %d rank %d saw %v", i, n.Rank, out[r])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	_, _, err := Run(4, prof(), func(n *Node) error {
		if got := n.AllReduceMax(n.Rank * 2); got != 6 {
			return fmt.Errorf("max = %d", got)
		}
		if got := n.AllReduceSum(n.Rank); got != 6 {
			return fmt.Errorf("sum = %d", got)
		}
		if got := n.AllReduceOr(n.Rank == 2); !got {
			return fmt.Errorf("or = %v", got)
		}
		if got := n.AllReduceOr(false); got {
			return fmt.Errorf("or(false) = %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// runExchange drives one Exchange with a deterministic traffic pattern and
// checks everyone received exactly what was addressed to them.
func runExchange(t *testing.T, q int, scheme Scheme, seed uint64) {
	t.Helper()
	_, stats, err := Run(q, prof(), func(n *Node) error {
		g := prand.New(seed + uint64(n.Rank))
		out := make(map[int][]int32)
		for d := 0; d < q; d++ {
			k := g.Intn(4) // 0..3 words; 0 = no message
			if k == 0 {
				continue
			}
			data := make([]int32, k)
			for i := range data {
				data[i] = int32(n.Rank*1000 + d*10 + i)
			}
			out[d] = data
		}
		got := n.Exchange(out, scheme, 500)
		// Recompute what every peer sent me.
		for s := 0; s < q; s++ {
			gs := prand.New(seed + uint64(s))
			var want []int32
			for d := 0; d < q; d++ {
				k := gs.Intn(4)
				if d == n.Rank && k > 0 {
					want = make([]int32, k)
					for i := range want {
						want[i] = int32(s*1000 + d*10 + i)
					}
				}
			}
			data := got[s]
			if len(data) != len(want) {
				return fmt.Errorf("rank %d from %d: got %v want %v", n.Rank, s, data, want)
			}
			for i := range want {
				if data[i] != want[i] {
					return fmt.Errorf("rank %d from %d: got %v want %v", n.Rank, s, data, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Exchanges != int64(q) {
		t.Fatalf("exchanges = %d", stats.Exchanges)
	}
	if scheme == LP && stats.LPSteps != int64(q*(q-1)) {
		t.Fatalf("LP steps = %d, want %d", stats.LPSteps, q*(q-1))
	}
}

func TestExchangeLP(t *testing.T) {
	for _, q := range []int{2, 4, 8} {
		runExchange(t, q, LP, 11)
	}
}

func TestExchangeAsync(t *testing.T) {
	for _, q := range []int{2, 4, 8} {
		runExchange(t, q, Async, 11)
	}
}

func TestExchangeSchemesEquivalent(t *testing.T) {
	// Property: both schemes deliver the identical payload relation.
	err := quick.Check(func(seed uint64) bool {
		collect := func(scheme Scheme) []string {
			results := make([][]string, 4)
			Run(4, prof(), func(n *Node) error {
				g := prand.New(seed + uint64(n.Rank))
				out := make(map[int][]int32)
				for d := 0; d < 4; d++ {
					if g.Intn(2) == 1 {
						out[d] = []int32{int32(n.Rank), int32(d), int32(g.Intn(100))}
					}
				}
				got := n.Exchange(out, scheme, 300)
				var lines []string
				for s, data := range got {
					lines = append(lines, fmt.Sprintf("%d<-%d:%v", n.Rank, s, data))
				}
				sort.Strings(lines)
				results[n.Rank] = lines
				return nil
			})
			var all []string
			for _, r := range results {
				all = append(all, r...)
			}
			sort.Strings(all)
			return all
		}
		a := collect(LP)
		b := collect(Async)
		return strings.Join(a, ";") == strings.Join(b, ";")
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLPCostsMoreThanAsync(t *testing.T) {
	// Same sparse traffic under both schemes: LP's Q−1 mandatory ring
	// steps must cost more simulated time.
	run := func(scheme Scheme) float64 {
		clocks, _, err := Run(8, prof(), func(n *Node) error {
			out := map[int][]int32{}
			if n.Rank == 0 {
				out[1] = []int32{42}
			}
			n.Exchange(out, scheme, 100)
			n.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return clocks[0]
	}
	lp, async := run(LP), run(Async)
	if lp <= async {
		t.Fatalf("LP %.6f should exceed Async %.6f for sparse traffic", lp, async)
	}
}

func TestNodePanicPropagates(t *testing.T) {
	_, _, err := Run(3, prof(), func(n *Node) error {
		if n.Rank == 1 {
			panic("boom")
		}
		// Peers block; the shutdown must wake them with an error rather
		// than deadlock.
		n.Barrier()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom") && !strings.Contains(err.Error(), "shut down") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsBadNodeCount(t *testing.T) {
	if _, _, err := Run(0, prof(), func(n *Node) error { return nil }); err == nil {
		t.Fatal("Run(0) succeeded")
	}
}

func TestSendToInvalidRankPanics(t *testing.T) {
	_, _, err := Run(1, prof(), func(n *Node) error {
		n.Send(5, 1, nil)
		return nil
	})
	if err == nil {
		t.Fatal("send to invalid rank not reported")
	}
}

func TestClockMonotonicity(t *testing.T) {
	_, _, err := Run(4, prof(), func(n *Node) error {
		last := n.Clock()
		step := func(what string) error {
			if n.Clock() < last {
				return fmt.Errorf("%s moved clock backwards", what)
			}
			last = n.Clock()
			return nil
		}
		n.Charge(10)
		if err := step("charge"); err != nil {
			return err
		}
		n.Barrier()
		if err := step("barrier"); err != nil {
			return err
		}
		n.AllGather([]int32{1})
		if err := step("gather"); err != nil {
			return err
		}
		n.AllReduceMax(n.Rank)
		return step("reduce")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSchemeString(t *testing.T) {
	if LP.String() != "LP" || Async.String() != "Async" {
		t.Fatal("scheme names wrong")
	}
}
