// Package pixmap provides the gray-scale image representation used by the
// region growing engines, PGM input/output, and generators for the six
// synthetic images evaluated in the paper (nested rectangles, rectangle
// collections, circle collections, and a "tool" silhouette).
//
// Pixels are 8-bit intensities stored row-major in a single backing slice,
// the layout the paper's CM Fortran implementation uses for its
// two-dimensional arrays.
package pixmap
