package pixmap

import (
	"fmt"
	"strings"

	"regiongrow/internal/prand"
)

// The paper evaluates six images. Their exact pixel data is lost; these
// generators reconstruct images matching the published descriptions:
//
//	Image 1: 128×128, two nested rectangular regions   (2 final regions)
//	Image 2: 128×128, a collection of rectangles       (7 final regions)
//	Image 3: 128×128, a collection of circles          (11 final regions)
//	Image 4: 256×256, two nested rectangular regions   (2 final regions)
//	Image 5: 256×256, a collection of rectangles       (7 final regions)
//	Image 6: 256×256, a "tool"                         (4 final regions)
//
// Intensities of adjacent world objects differ by well over the default
// threshold, and an optional ±noise dither (below the threshold) makes the
// split stage produce many squares, as in the paper, where nested rectangles
// at 128² yielded 436 squares rather than the handful a perfectly uniform
// image would give.

// PaperImageID names one of the six evaluation inputs.
type PaperImageID int

// The six evaluation images, in the paper's order.
const (
	Image1NestedRects128 PaperImageID = iota + 1
	Image2Rects128
	Image3Circles128
	Image4NestedRects256
	Image5Rects256
	Image6Tool256
)

// String returns the paper's name for the image.
func (id PaperImageID) String() string {
	switch id {
	case Image1NestedRects128:
		return "Image 1: 128x128 two nested rectangular regions"
	case Image2Rects128:
		return "Image 2: 128x128 collection of rectangles"
	case Image3Circles128:
		return "Image 3: 128x128 collection of circles"
	case Image4NestedRects256:
		return "Image 4: 256x256 two nested rectangular regions"
	case Image5Rects256:
		return "Image 5: 256x256 collection of rectangles"
	case Image6Tool256:
		return "Image 6: 256x256 tool"
	default:
		return fmt.Sprintf("PaperImageID(%d)", int(id))
	}
}

// Size returns the side length of the (square) image.
func (id PaperImageID) Size() int {
	switch id {
	case Image1NestedRects128, Image2Rects128, Image3Circles128:
		return 128
	default:
		return 256
	}
}

// AllPaperImages lists the six evaluation inputs in order.
func AllPaperImages() []PaperImageID {
	return []PaperImageID{
		Image1NestedRects128, Image2Rects128, Image3Circles128,
		Image4NestedRects256, Image5Rects256, Image6Tool256,
	}
}

// ShortName returns the compact identifier ("image1" … "image6") that
// ParsePaperImageID accepts and the file generators use.
func (id PaperImageID) ShortName() string {
	if id >= Image1NestedRects128 && id <= Image6Tool256 {
		return fmt.Sprintf("image%d", int(id))
	}
	return fmt.Sprintf("PaperImageID(%d)", int(id))
}

// ParsePaperImageID resolves a paper image by short name: "image1" through
// "image6", or just the digit "1" through "6". Matching is
// case-insensitive.
func ParsePaperImageID(s string) (PaperImageID, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	t = strings.TrimPrefix(t, "image")
	if len(t) == 1 && t[0] >= '1' && t[0] <= '6' {
		return PaperImageID(t[0] - '0'), nil
	}
	return 0, fmt.Errorf("pixmap: unknown paper image %q (want image1 … image6)", s)
}

// GenOptions control the synthetic generators.
type GenOptions struct {
	// Noise is the peak amplitude of the deterministic intensity dither
	// added within each world object. It must stay at or below half the
	// segmentation threshold so objects remain internally homogeneous
	// while forcing the split stage to produce many squares.
	Noise int
	// Seed selects the dither stream.
	Seed uint64
}

// DefaultGenOptions match the evaluation setup: clean synthetic images
// (the paper's square counts — e.g. 193 squares for the 128² rectangle
// collection — imply noise-free interiors), seed 1 for any dithered
// variants requested explicitly.
func DefaultGenOptions() GenOptions { return GenOptions{Noise: 0, Seed: 1} }

// Generate builds one of the paper's six images.
func Generate(id PaperImageID, opt GenOptions) *Image {
	switch id {
	case Image1NestedRects128:
		return NestedRects(128, opt)
	case Image2Rects128:
		return RectCollection(128, opt)
	case Image3Circles128:
		return CircleCollection(128, opt)
	case Image4NestedRects256:
		return NestedRects(256, opt)
	case Image5Rects256:
		return RectCollection(256, opt)
	case Image6Tool256:
		return Tool(256, opt)
	default:
		panic(fmt.Sprintf("pixmap: unknown paper image %d", int(id)))
	}
}

// dither perturbs every pixel by a deterministic value in [-opt.Noise,
// +opt.Noise], clamped to [0,255]. The perturbation is a pure function of
// the coordinates and seed, so regenerated images are identical.
func dither(im *Image, opt GenOptions) {
	if opt.Noise <= 0 {
		return
	}
	span := 2*opt.Noise + 1
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			h := prand.Hash3(opt.Seed, uint64(x), uint64(y))
			d := int(h%uint64(span)) - opt.Noise
			v := int(im.At(x, y)) + d
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			im.Set(x, y, uint8(v))
		}
	}
}

// NestedRects draws the paper's "two nested rectangular regions": a bright
// inner rectangle, deliberately misaligned with quadtree block boundaries,
// inside a dark background frame. Two world regions.
func NestedRects(n int, opt GenOptions) *Image {
	im := New(n, n)
	im.FillRect(0, 0, n, n, 40)
	// The offset n/8+2 is a multiple of 2 but not of 4, so the split stage
	// fragments the rectangle's border down to 2-pixel squares — matching
	// the paper's count of several hundred squares for this image.
	o := n/8 + 2
	im.FillRect(o, o, n-o, n-o, 180)
	dither(im, opt)
	return im
}

// RectCollection draws six rectangles of distinct intensities on a
// background: seven world regions, matching images 2 and 5.
func RectCollection(n int, opt GenOptions) *Image {
	im := New(n, n)
	im.FillRect(0, 0, n, n, 20)
	s := n / 128 // scale factor: 1 at 128², 2 at 256²
	type r struct {
		x0, y0, x1, y1 int
		v              uint8
	}
	// Edges are multiples of 8 (mostly odd multiples, so not 16-aligned):
	// mixed 16-blocks decompose into exactly four 8-squares and no further,
	// keeping the square count low, as in the paper (193 at 128²).
	rects := []r{
		{8, 8, 40, 32, 60},
		{56, 8, 120, 24, 100},
		{8, 48, 40, 104, 140},
		{48, 40, 88, 88, 180},
		{96, 40, 120, 88, 220},
		{24, 104, 112, 120, 250},
	}
	for _, q := range rects {
		im.FillRect(q.x0*s, q.y0*s, q.x1*s, q.y1*s, q.v)
	}
	dither(im, opt)
	return im
}

// CircleCollection draws ten circles of distinct intensities on a
// background: eleven world regions, matching image 3. Circles maximise
// quadtree fragmentation (no axis-aligned borders), which is why the paper's
// circle image produced the most squares (1732) of the 128² inputs.
func CircleCollection(n int, opt GenOptions) *Image {
	im := New(n, n)
	im.FillRect(0, 0, n, n, 15)
	s := n / 128
	type c struct {
		x, y, r int
		v       uint8
	}
	circles := []c{
		{20, 20, 11, 45},
		{60, 18, 12, 70},
		{102, 22, 13, 95},
		{24, 60, 12, 120},
		{64, 58, 13, 145},
		{105, 62, 11, 170},
		{20, 102, 12, 195},
		{58, 100, 12, 220},
		{97, 104, 11, 240},
		{120, 120, 6, 255},
	}
	for _, q := range circles {
		im.FillCircle(q.x*s, q.y*s, q.r*s, q.v)
	}
	dither(im, opt)
	return im
}

// Tool draws a wrench-like silhouette: background, handle+head body, a
// bright highlight stripe on the handle, and a dark bore hole in the head.
// Four world regions, matching image 6.
func Tool(n int, opt GenOptions) *Image {
	im := New(n, n)
	im.FillRect(0, 0, n, n, 25)
	s := n / 256
	body := uint8(150)
	// Handle: a long diagonal-ish bar built from overlapping rectangles.
	for i := 0; i < 10; i++ {
		x0 := (30 + i*16) * s
		y0 := (170 - i*10) * s
		im.FillRect(x0, y0, x0+26*s, y0+22*s, body)
	}
	// Head: a disc with a flat notch at the top-right end of the handle.
	im.FillCircle(205*s, 70*s, 34*s, body)
	im.FillRect(196*s, 30*s, 240*s, 52*s, 25) // notch carved back to background
	// Bore hole in the head (distinct dark region enclosed by the body).
	im.FillCircle(205*s, 74*s, 11*s, 70)
	// Highlight stripe along the handle (distinct bright region on the
	// body). Consecutive stripes overlap in both axes (step 16×10 against
	// size 18×14) so the highlight is a single connected region.
	for i := 1; i < 9; i++ {
		x0 := (34 + i*16) * s
		y0 := (174 - i*10) * s
		im.FillRect(x0, y0, x0+18*s, y0+14*s, 230)
	}
	dither(im, opt)
	return im
}

// Uniform returns an n×n image of constant intensity v — the split stage's
// best case (one square region).
func Uniform(n int, v uint8) *Image {
	im := New(n, n)
	im.FillRect(0, 0, n, n, v)
	return im
}

// Checkerboard returns an n×n image alternating intensities a and b at every
// pixel — the split stage's worst case input (no 2×2 block is homogeneous
// when |a−b| exceeds the threshold).
func Checkerboard(n int, a, b uint8) *Image {
	im := New(n, n)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			if (x+y)%2 == 0 {
				im.Set(x, y, a)
			} else {
				im.Set(x, y, b)
			}
		}
	}
	return im
}

// Gradient returns an n×n image whose intensity ramps horizontally from 0 to
// hi. With a small threshold it merges into vertical stripe regions.
func Gradient(n int, hi uint8) *Image {
	im := New(n, n)
	if n == 0 {
		return im
	}
	for x := 0; x < n; x++ {
		v := uint8(int(hi) * x / max(n-1, 1))
		for y := 0; y < n; y++ {
			im.Set(x, y, v)
		}
	}
	return im
}

// Random returns an n×n image of uniformly random pixels from the seeded
// stream — adversarial input for property tests.
func Random(n int, seed uint64) *Image {
	im := New(n, n)
	g := prand.New(seed)
	for i := range im.Pix {
		im.Pix[i] = uint8(g.Uint64())
	}
	return im
}
