package pixmap

import "testing"

func TestPaperImageSizes(t *testing.T) {
	for _, id := range AllPaperImages() {
		im := Generate(id, DefaultGenOptions())
		if im.W != id.Size() || im.H != id.Size() {
			t.Errorf("%v: got %dx%d, want %d", id, im.W, im.H, id.Size())
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, id := range AllPaperImages() {
		a := Generate(id, DefaultGenOptions())
		b := Generate(id, DefaultGenOptions())
		if !a.Equal(b) {
			t.Errorf("%v: generation is not deterministic", id)
		}
	}
}

func TestDitherBoundsAndSeed(t *testing.T) {
	clean := Generate(Image1NestedRects128, GenOptions{Noise: 0})
	noisy := Generate(Image1NestedRects128, GenOptions{Noise: 3, Seed: 1})
	if clean.Equal(noisy) {
		t.Fatal("dither had no effect")
	}
	for i := range clean.Pix {
		d := int(noisy.Pix[i]) - int(clean.Pix[i])
		if d < -3 || d > 3 {
			t.Fatalf("dither at %d exceeds amplitude: %d", i, d)
		}
	}
	other := Generate(Image1NestedRects128, GenOptions{Noise: 3, Seed: 2})
	if noisy.Equal(other) {
		t.Fatal("different dither seeds gave identical images")
	}
}

// distinctObjectLevels counts intensities that occupy at least minArea
// pixels — a proxy for the number of world objects in a clean image.
func distinctObjectLevels(im *Image, minArea int) int {
	h := im.Histogram()
	n := 0
	for _, c := range h {
		if c >= minArea {
			n++
		}
	}
	return n
}

func TestObjectCounts(t *testing.T) {
	cases := []struct {
		id   PaperImageID
		want int // world intensity levels incl. background
	}{
		{Image1NestedRects128, 2},
		{Image2Rects128, 7},
		{Image3Circles128, 11},
		{Image4NestedRects256, 2},
		{Image5Rects256, 7},
		{Image6Tool256, 4},
	}
	for _, c := range cases {
		im := Generate(c.id, GenOptions{Noise: 0})
		if got := distinctObjectLevels(im, 20); got != c.want {
			t.Errorf("%v: %d object intensity levels, want %d", c.id, got, c.want)
		}
	}
}

func TestObjectSeparation(t *testing.T) {
	// Every pair of distinct object intensities must differ by more than
	// the default threshold (10), so no two clean objects can ever merge.
	for _, id := range AllPaperImages() {
		im := Generate(id, GenOptions{Noise: 0})
		h := im.Histogram()
		var levels []int
		for v, c := range h {
			if c >= 20 {
				levels = append(levels, v)
			}
		}
		for i := 0; i < len(levels); i++ {
			for j := i + 1; j < len(levels); j++ {
				if d := levels[j] - levels[i]; d <= 10 {
					t.Errorf("%v: object intensities %d and %d differ by only %d", id, levels[i], levels[j], d)
				}
			}
		}
	}
}

func TestUniform(t *testing.T) {
	im := Uniform(16, 42)
	lo, hi := im.Range()
	if lo != 42 || hi != 42 {
		t.Fatalf("Uniform range (%d,%d)", lo, hi)
	}
}

func TestCheckerboard(t *testing.T) {
	im := Checkerboard(8, 10, 200)
	if im.At(0, 0) != 10 || im.At(1, 0) != 200 || im.At(0, 1) != 200 || im.At(1, 1) != 10 {
		t.Fatal("checkerboard parity wrong")
	}
	// No two 4-adjacent pixels are equal.
	for y := 0; y < 8; y++ {
		for x := 0; x < 7; x++ {
			if im.At(x, y) == im.At(x+1, y) {
				t.Fatal("horizontal neighbours equal")
			}
		}
	}
}

func TestGradient(t *testing.T) {
	im := Gradient(16, 255)
	if im.At(0, 0) != 0 || im.At(15, 0) != 255 {
		t.Fatalf("gradient endpoints %d..%d", im.At(0, 0), im.At(15, 0))
	}
	for x := 0; x < 15; x++ {
		if im.At(x, 0) > im.At(x+1, 0) {
			t.Fatal("gradient not monotone")
		}
		if im.At(x, 5) != im.At(x, 9) {
			t.Fatal("gradient varies vertically")
		}
	}
}

func TestRandomImageSeeded(t *testing.T) {
	a, b := Random(16, 5), Random(16, 5)
	if !a.Equal(b) {
		t.Fatal("Random not deterministic per seed")
	}
	c := Random(16, 6)
	if a.Equal(c) {
		t.Fatal("Random identical across seeds")
	}
}

func TestPaperImageStringAndSize(t *testing.T) {
	if Image1NestedRects128.Size() != 128 || Image6Tool256.Size() != 256 {
		t.Fatal("Size wrong")
	}
	for _, id := range AllPaperImages() {
		if id.String() == "" {
			t.Fatal("empty String")
		}
	}
	if PaperImageID(99).String() == "" {
		t.Fatal("unknown id should still format")
	}
}

func TestGeneratePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate(99) did not panic")
		}
	}()
	Generate(PaperImageID(99), DefaultGenOptions())
}
