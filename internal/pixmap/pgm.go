package pixmap

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// PGM input/output. Both the binary (P5) and ASCII (P2) variants of the
// netpbm gray map format are supported, with comment lines and a maxval of
// up to 255.

// WritePGM writes the image in binary PGM (P5) format.
func WritePGM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("pixmap: writing PGM header: %w", err)
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return fmt.Errorf("pixmap: writing PGM pixels: %w", err)
	}
	return bw.Flush()
}

// WritePGMPlain writes the image in ASCII PGM (P2) format.
func WritePGMPlain(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P2\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("pixmap: writing PGM header: %w", err)
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			sep := " "
			if x == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(bw, "%s%d", sep, im.At(x, y)); err != nil {
				return fmt.Errorf("pixmap: writing PGM pixels: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("pixmap: writing PGM pixels: %w", err)
		}
	}
	return bw.Flush()
}

// SavePGM writes the image to a file in binary PGM format.
func SavePGM(path string, im *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pixmap: creating %s: %w", path, err)
	}
	if err := WritePGM(f, im); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pixmap: closing %s: %w", path, err)
	}
	return nil
}

// LoadPGM reads a PGM file (P2 or P5).
func LoadPGM(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pixmap: opening %s: %w", path, err)
	}
	defer f.Close()
	im, err := ReadPGM(f)
	if err != nil {
		return nil, fmt.Errorf("pixmap: reading %s: %w", path, err)
	}
	return im, nil
}

// MaxPGMPixels bounds the pixel count a PGM header may declare
// (64M pixels — an 8192×8192 image). A 30-byte header must not be able to
// demand a multi-gigabyte allocation before the pixel data is even read;
// streams declaring more are rejected as malformed.
const MaxPGMPixels = 1 << 26

// ReadPGM parses a PGM stream in either P2 (ASCII) or P5 (binary) form.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, err := pgmToken(br)
	if err != nil {
		return nil, fmt.Errorf("pixmap: reading PGM magic: %w", err)
	}
	if magic != "P2" && magic != "P5" {
		return nil, fmt.Errorf("pixmap: unsupported magic %q (want P2 or P5)", magic)
	}
	dims := [3]int{}
	for i := range dims {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, fmt.Errorf("pixmap: reading PGM header: %w", err)
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, fmt.Errorf("pixmap: bad PGM header token %q: %w", tok, err)
		}
		dims[i] = v
	}
	w, h, maxval := dims[0], dims[1], dims[2]
	if w < 0 || h < 0 || maxval <= 0 || maxval > 255 {
		return nil, fmt.Errorf("pixmap: unsupported PGM geometry %dx%d maxval %d", w, h, maxval)
	}
	if w > 0 && h > MaxPGMPixels/w {
		return nil, fmt.Errorf("pixmap: PGM declares %dx%d pixels, more than the %d-pixel limit", w, h, MaxPGMPixels)
	}
	im := New(w, h)
	if magic == "P5" {
		if _, err := io.ReadFull(br, im.Pix); err != nil {
			return nil, fmt.Errorf("pixmap: reading P5 pixels: %w", err)
		}
		return im, nil
	}
	for i := range im.Pix {
		tok, err := pgmToken(br)
		if err != nil {
			return nil, fmt.Errorf("pixmap: reading P2 pixel %d: %w", i, err)
		}
		v, err := strconv.Atoi(tok)
		if err != nil || v < 0 || v > maxval {
			return nil, fmt.Errorf("pixmap: bad P2 pixel %q at index %d", tok, i)
		}
		im.Pix[i] = uint8(v)
	}
	return im, nil
}

// pgmToken returns the next whitespace-delimited token, skipping
// '#'-comments, as required by the netpbm grammar.
func pgmToken(br *bufio.Reader) (string, error) {
	var tok []byte
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return string(tok), nil
			}
			return "", err
		}
		switch {
		case b == '#' && len(tok) == 0:
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return "", err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return string(tok), nil
			}
		default:
			tok = append(tok, b)
		}
	}
}
