package pixmap

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
)

// PGM input/output. Both the binary (P5) and ASCII (P2) variants of the
// netpbm gray map format are supported, with comment lines and a maxval of
// up to 255.

// WritePGM writes the image in binary PGM (P5) format.
func WritePGM(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("pixmap: writing PGM header: %w", err)
	}
	if _, err := bw.Write(im.Pix); err != nil {
		return fmt.Errorf("pixmap: writing PGM pixels: %w", err)
	}
	return bw.Flush()
}

// WritePGMPlain writes the image in ASCII PGM (P2) format.
func WritePGMPlain(w io.Writer, im *Image) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P2\n%d %d\n255\n", im.W, im.H); err != nil {
		return fmt.Errorf("pixmap: writing PGM header: %w", err)
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			sep := " "
			if x == 0 {
				sep = ""
			}
			if _, err := fmt.Fprintf(bw, "%s%d", sep, im.At(x, y)); err != nil {
				return fmt.Errorf("pixmap: writing PGM pixels: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("pixmap: writing PGM pixels: %w", err)
		}
	}
	return bw.Flush()
}

// SavePGM writes the image to a file in binary PGM format.
func SavePGM(path string, im *Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("pixmap: creating %s: %w", path, err)
	}
	if err := WritePGM(f, im); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("pixmap: closing %s: %w", path, err)
	}
	return nil
}

// LoadPGM reads a PGM file (P2 or P5).
func LoadPGM(path string) (*Image, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("pixmap: opening %s: %w", path, err)
	}
	defer f.Close()
	im, err := ReadPGM(f)
	if err != nil {
		return nil, fmt.Errorf("pixmap: reading %s: %w", path, err)
	}
	return im, nil
}

// MaxPGMPixels bounds the pixel count a PGM header may declare
// (64M pixels — an 8192×8192 image). A 30-byte header must not be able to
// demand a multi-gigabyte allocation before the pixel data is even read;
// streams declaring more are rejected as malformed.
const MaxPGMPixels = 1 << 26

// ReadPGM parses a PGM stream in either P2 (ASCII) or P5 (binary) form.
func ReadPGM(r io.Reader) (*Image, error) {
	br := bufio.NewReader(r)
	magic, w, h, maxval, err := pgmHeader(br)
	if err != nil {
		return nil, err
	}
	if w > 0 && h > MaxPGMPixels/w {
		return nil, fmt.Errorf("pixmap: PGM declares %dx%d pixels, more than the %d-pixel limit", w, h, MaxPGMPixels)
	}
	im := New(w, h)
	if magic == "P5" {
		if _, err := io.ReadFull(br, im.Pix); err != nil {
			return nil, fmt.Errorf("pixmap: reading P5 pixels: %w", err)
		}
		return im, nil
	}
	if _, err := readP2Raster(br, im.Pix, maxval, 0, nil); err != nil {
		return nil, err
	}
	return im, nil
}

// pgmHeader parses the magic, width, height, and maxval of a PGM stream,
// validating everything except the pixel-count cap (callers differ: ReadPGM
// enforces MaxPGMPixels, StreamReader the int32 label-space bound).
func pgmHeader(br *bufio.Reader) (magic string, w, h, maxval int, err error) {
	var tok []byte
	tok, err = pgmTokenBuf(br, tok)
	if err != nil {
		return "", 0, 0, 0, fmt.Errorf("pixmap: reading PGM magic: %w", err)
	}
	magic = string(tok)
	if magic != "P2" && magic != "P5" {
		return "", 0, 0, 0, fmt.Errorf("pixmap: unsupported magic %q (want P2 or P5)", magic)
	}
	dims := [3]int{}
	for i := range dims {
		tok, err = pgmTokenBuf(br, tok[:0])
		if err != nil {
			return "", 0, 0, 0, fmt.Errorf("pixmap: reading PGM header: %w", err)
		}
		v, err := strconv.Atoi(string(tok))
		if err != nil {
			return "", 0, 0, 0, fmt.Errorf("pixmap: bad PGM header token %q: %w", tok, err)
		}
		dims[i] = v
	}
	w, h, maxval = dims[0], dims[1], dims[2]
	if w < 0 || h < 0 || maxval <= 0 || maxval > 255 {
		return "", 0, 0, 0, fmt.Errorf("pixmap: unsupported PGM geometry %dx%d maxval %d", w, h, maxval)
	}
	return magic, w, h, maxval, nil
}

// readP2Raster decodes len(dst) ASCII pixel tokens into dst, reusing (and
// returning) the caller's token scratch so the per-pixel path is
// allocation-free — what makes the P2 path scale to band-at-a-time
// streaming. base offsets error messages so a StreamReader mid-image
// reports the true pixel index.
func readP2Raster(br *bufio.Reader, dst []uint8, maxval, base int, tok []byte) ([]byte, error) {
	if cap(tok) == 0 {
		tok = make([]byte, 0, 32)
	}
	var err error
	for i := range dst {
		tok, err = pgmTokenBuf(br, tok[:0])
		if err != nil {
			return tok, fmt.Errorf("pixmap: reading P2 pixel %d: %w", base+i, err)
		}
		v, ok := pgmAtoi(tok)
		if !ok || v < 0 || v > maxval {
			return tok, fmt.Errorf("pixmap: bad P2 pixel %q at index %d", tok, base+i)
		}
		dst[i] = uint8(v)
	}
	return tok, nil
}

// pgmAtoi parses a decimal token with strconv.Atoi's acceptance rules
// (optional single sign, at least one digit, nothing else) without
// allocating the string Atoi would retain in its error. Overflowing values
// report failure, which callers treat like any other out-of-range pixel.
func pgmAtoi(tok []byte) (int, bool) {
	neg := false
	if len(tok) > 0 && (tok[0] == '+' || tok[0] == '-') {
		neg = tok[0] == '-'
		tok = tok[1:]
	}
	if len(tok) == 0 {
		return 0, false
	}
	n := 0
	for _, b := range tok {
		if b < '0' || b > '9' {
			return 0, false
		}
		if n > (1<<30)/10 {
			return 0, false // far beyond any valid maxval already
		}
		n = n*10 + int(b-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}

// pgmToken returns the next whitespace-delimited token, skipping
// '#'-comments, as required by the netpbm grammar.
func pgmToken(br *bufio.Reader) (string, error) {
	tok, err := pgmTokenBuf(br, nil)
	if err != nil {
		return "", err
	}
	return string(tok), nil
}

// pgmTokenBuf is pgmToken appending into a caller-owned buffer, so a loop
// over many tokens (a P2 raster has one per pixel) amortises the
// allocation. Pass tok[:0] to reuse.
func pgmTokenBuf(br *bufio.Reader, tok []byte) ([]byte, error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF && len(tok) > 0 {
				return tok, nil
			}
			return nil, err
		}
		switch {
		case b == '#' && len(tok) == 0:
			if _, err := br.ReadString('\n'); err != nil && err != io.EOF {
				return nil, err
			}
		case b == ' ' || b == '\t' || b == '\n' || b == '\r':
			if len(tok) > 0 {
				return tok, nil
			}
		default:
			tok = append(tok, b)
		}
	}
}
