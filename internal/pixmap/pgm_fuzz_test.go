package pixmap

import (
	"bufio"
	"bytes"
	"strconv"
	"testing"
)

// FuzzReadPGM drives the PGM parser with arbitrary bytes. Seeded with the
// six paper images (P5 and P2 encodings) plus header corner cases, it
// checks the parser never panics, that a successful parse yields a
// structurally sound image, and that the image survives a
// write/re-read round trip in both encodings.
func FuzzReadPGM(f *testing.F) {
	for _, id := range AllPaperImages() {
		im := Generate(id, DefaultGenOptions())
		var p5 bytes.Buffer
		if err := WritePGM(&p5, im); err != nil {
			f.Fatal(err)
		}
		f.Add(p5.Bytes())
		var p2 bytes.Buffer
		if err := WritePGMPlain(&p2, im); err != nil {
			f.Fatal(err)
		}
		f.Add(p2.Bytes())
	}
	f.Add([]byte("P5\n# comment\n2 2\n255\nabcd"))
	f.Add([]byte("P2\n2 2 255\n0 1\n2 3\n"))
	f.Add([]byte("P5\n0 0\n255\n"))
	f.Add([]byte("P5\n-1 4\n255\n"))
	f.Add([]byte("P5\n999999999 999999999\n255\n"))
	f.Add([]byte("P6\n2 2\n255\nabcd"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Keep pathological-but-valid headers from dominating the run:
		// skip inputs that declare more pixels than a fuzz iteration
		// should allocate (the parser itself is capped at MaxPGMPixels,
		// which is exercised by the seeds above).
		if w, h, ok := declaredDims(data); ok && w > 0 && h > 0 && w*h > 1<<20 {
			t.Skip("oversized declared geometry")
		}
		im, err := ReadPGM(bytes.NewReader(data))
		if err != nil {
			return
		}
		if im.W < 0 || im.H < 0 || len(im.Pix) != im.W*im.H {
			t.Fatalf("parsed image %dx%d with %d pixels", im.W, im.H, len(im.Pix))
		}
		// Round trip through both encodings.
		var p5 bytes.Buffer
		if err := WritePGM(&p5, im); err != nil {
			t.Fatalf("re-encoding P5: %v", err)
		}
		back, err := ReadPGM(&p5)
		if err != nil {
			t.Fatalf("re-parsing P5: %v", err)
		}
		if !back.Equal(im) {
			t.Fatal("P5 round trip changed the image")
		}
		var p2 bytes.Buffer
		if err := WritePGMPlain(&p2, im); err != nil {
			t.Fatalf("re-encoding P2: %v", err)
		}
		back, err = ReadPGM(&p2)
		if err != nil {
			t.Fatalf("re-parsing P2: %v", err)
		}
		if !back.Equal(im) {
			t.Fatal("P2 round trip changed the image")
		}
	})
}

// declaredDims cheaply extracts the dimensions a PGM header declares,
// using the same tokenizer as the parser, without allocating pixels.
func declaredDims(data []byte) (w, h int, ok bool) {
	br := bufio.NewReader(bytes.NewReader(data))
	if magic, err := pgmToken(br); err != nil || (magic != "P2" && magic != "P5") {
		return 0, 0, false
	}
	var dims [2]int
	for i := range dims {
		tok, err := pgmToken(br)
		if err != nil {
			return 0, 0, false
		}
		v, err := strconv.Atoi(tok)
		if err != nil {
			return 0, 0, false
		}
		dims[i] = v
	}
	return dims[0], dims[1], true
}

// TestReadPGMPixelLimit pins the header allocation guard: a tiny stream
// declaring a huge image is rejected before any pixel allocation.
func TestReadPGMPixelLimit(t *testing.T) {
	_, err := ReadPGM(bytes.NewReader([]byte("P5\n100000 100000\n255\n")))
	if err == nil {
		t.Fatal("parsed a 10-gigapixel header")
	}
}
