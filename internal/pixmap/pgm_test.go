package pixmap

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestPGMBinaryRoundTrip(t *testing.T) {
	im := Random(33, 7) // odd width exercises row handling
	var buf bytes.Buffer
	if err := WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(got) {
		t.Fatal("P5 round trip lost data")
	}
}

func TestPGMPlainRoundTrip(t *testing.T) {
	im := Random(17, 8)
	var buf bytes.Buffer
	if err := WritePGMPlain(&buf, im); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(got) {
		t.Fatal("P2 round trip lost data")
	}
}

func TestPGMComments(t *testing.T) {
	src := "P2\n# a comment\n2 2\n# another\n255\n1 2\n3 4\n"
	im, err := ReadPGM(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if im.At(0, 0) != 1 || im.At(1, 1) != 4 {
		t.Fatalf("comment parsing broke pixels: %v", im.Pix)
	}
}

func TestPGMErrors(t *testing.T) {
	cases := map[string]string{
		"bad magic":       "P7\n2 2\n255\n....",
		"bad dims":        "P2\nx 2\n255\n1 2 3 4",
		"negative maxval": "P2\n2 2\n-3\n1 2 3 4",
		"big maxval":      "P2\n2 2\n65535\n1 2 3 4",
		"truncated P2":    "P2\n2 2\n255\n1 2 3",
		"bad pixel":       "P2\n2 2\n255\n1 2 3 boo",
		"over maxval":     "P2\n2 2\n10\n1 2 3 200",
		"truncated P5":    "P5\n4 4\n255\nxy",
	}
	for name, src := range cases {
		if _, err := ReadPGM(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted invalid input", name)
		}
	}
}

func TestSaveLoadPGMFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.pgm")
	im := Generate(Image2Rects128, DefaultGenOptions())
	if err := SavePGM(path, im); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPGM(path)
	if err != nil {
		t.Fatal(err)
	}
	if !im.Equal(got) {
		t.Fatal("file round trip lost data")
	}
	if _, err := LoadPGM(filepath.Join(dir, "missing.pgm")); err == nil {
		t.Fatal("loading missing file succeeded")
	}
}

func TestPGMZeroSize(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, New(0, 0)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPGM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 0 || got.H != 0 {
		t.Fatalf("zero-size round trip: %dx%d", got.W, got.H)
	}
}
