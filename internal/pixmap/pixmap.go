package pixmap

import (
	"errors"
	"fmt"
)

// Image is a gray-scale raster with 8-bit pixels stored row-major.
// The zero value is an empty image; use New to allocate.
type Image struct {
	W, H int
	Pix  []uint8
}

// New allocates a w×h image of zero (black) pixels.
// It panics if either dimension is negative.
func New(w, h int) *Image {
	if w < 0 || h < 0 {
		panic(fmt.Sprintf("pixmap: negative dimensions %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h)}
}

// FromRows builds an image from a slice of equally sized rows.
// It returns an error if the rows are ragged.
func FromRows(rows [][]uint8) (*Image, error) {
	h := len(rows)
	if h == 0 {
		return New(0, 0), nil
	}
	w := len(rows[0])
	img := New(w, h)
	for y, r := range rows {
		if len(r) != w {
			return nil, fmt.Errorf("pixmap: ragged row %d: got %d pixels, want %d", y, len(r), w)
		}
		copy(img.Pix[y*w:(y+1)*w], r)
	}
	return img, nil
}

// At returns the intensity at (x, y). It panics when out of bounds,
// matching slice semantics.
func (im *Image) At(x, y int) uint8 { return im.Pix[y*im.W+x] }

// Set writes the intensity at (x, y).
func (im *Image) Set(x, y int, v uint8) { im.Pix[y*im.W+x] = v }

// Index returns the row-major linear index of (x, y). Linear indices are
// the region IDs used throughout the library, matching the paper's encoding
// of a square region by its north-west pixel.
func (im *Image) Index(x, y int) int { return y*im.W + x }

// Coord is the inverse of Index.
func (im *Image) Coord(idx int) (x, y int) { return idx % im.W, idx / im.W }

// In reports whether (x, y) lies inside the image.
func (im *Image) In(x, y int) bool { return x >= 0 && x < im.W && y >= 0 && y < im.H }

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := New(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Equal reports whether two images have identical dimensions and pixels.
func (im *Image) Equal(other *Image) bool {
	if im.W != other.W || im.H != other.H {
		return false
	}
	for i, p := range im.Pix {
		if p != other.Pix[i] {
			return false
		}
	}
	return true
}

// FillRect sets every pixel of the rectangle [x0,x1)×[y0,y1) clipped to the
// image to intensity v.
func (im *Image) FillRect(x0, y0, x1, y1 int, v uint8) {
	x0 = max(x0, 0)
	y0 = max(y0, 0)
	x1 = min(x1, im.W)
	y1 = min(y1, im.H)
	for y := y0; y < y1; y++ {
		row := im.Pix[y*im.W : (y+1)*im.W]
		for x := x0; x < x1; x++ {
			row[x] = v
		}
	}
}

// FillCircle sets every pixel within radius r of (cx, cy) to intensity v.
func (im *Image) FillCircle(cx, cy, r int, v uint8) {
	for y := cy - r; y <= cy+r; y++ {
		for x := cx - r; x <= cx+r; x++ {
			if !im.In(x, y) {
				continue
			}
			dx, dy := x-cx, y-cy
			if dx*dx+dy*dy <= r*r {
				im.Set(x, y, v)
			}
		}
	}
}

// Range returns the minimum and maximum intensity over the whole image.
// It returns (0, 0) for an empty image.
func (im *Image) Range() (lo, hi uint8) {
	if len(im.Pix) == 0 {
		return 0, 0
	}
	lo, hi = im.Pix[0], im.Pix[0]
	for _, p := range im.Pix[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return lo, hi
}

// Histogram returns the 256-bin intensity histogram.
func (im *Image) Histogram() [256]int {
	var h [256]int
	for _, p := range im.Pix {
		h[p]++
	}
	return h
}

// ErrBounds is returned by SubImage when the requested window is invalid.
var ErrBounds = errors.New("pixmap: window out of bounds")

// SubImage copies the w×h window with origin (x0, y0) into a fresh image.
func (im *Image) SubImage(x0, y0, w, h int) (*Image, error) {
	if x0 < 0 || y0 < 0 || w < 0 || h < 0 || x0+w > im.W || y0+h > im.H {
		return nil, fmt.Errorf("%w: origin (%d,%d) size %dx%d in %dx%d", ErrBounds, x0, y0, w, h, im.W, im.H)
	}
	out := New(w, h)
	for y := 0; y < h; y++ {
		copy(out.Pix[y*w:(y+1)*w], im.Pix[(y0+y)*im.W+x0:(y0+y)*im.W+x0+w])
	}
	return out, nil
}
