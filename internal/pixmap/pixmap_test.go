package pixmap

import (
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	im := New(4, 3)
	if im.W != 4 || im.H != 3 || len(im.Pix) != 12 {
		t.Fatalf("New(4,3): %dx%d len %d", im.W, im.H, len(im.Pix))
	}
	im.Set(2, 1, 77)
	if im.At(2, 1) != 77 {
		t.Fatalf("At(2,1) = %d", im.At(2, 1))
	}
	if im.Index(2, 1) != 6 {
		t.Fatalf("Index(2,1) = %d", im.Index(2, 1))
	}
	x, y := im.Coord(6)
	if x != 2 || y != 1 {
		t.Fatalf("Coord(6) = (%d,%d)", x, y)
	}
}

func TestIndexCoordRoundTrip(t *testing.T) {
	im := New(37, 23)
	err := quick.Check(func(raw uint16) bool {
		idx := int(raw) % (im.W * im.H)
		x, y := im.Coord(idx)
		return im.Index(x, y) == idx && im.In(x, y)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestIn(t *testing.T) {
	im := New(5, 4)
	cases := []struct {
		x, y int
		want bool
	}{
		{0, 0, true}, {4, 3, true}, {5, 3, false}, {4, 4, false},
		{-1, 0, false}, {0, -1, false},
	}
	for _, c := range cases {
		if im.In(c.x, c.y) != c.want {
			t.Errorf("In(%d,%d) = %v, want %v", c.x, c.y, !c.want, c.want)
		}
	}
}

func TestFromRows(t *testing.T) {
	im, err := FromRows([][]uint8{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if im.At(1, 0) != 2 || im.At(0, 1) != 3 {
		t.Fatalf("FromRows layout wrong: %v", im.Pix)
	}
	if _, err := FromRows([][]uint8{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged rows accepted")
	}
	empty, err := FromRows(nil)
	if err != nil || empty.W != 0 || empty.H != 0 {
		t.Fatalf("FromRows(nil): %v %v", empty, err)
	}
}

func TestFillRectClipping(t *testing.T) {
	im := New(8, 8)
	im.FillRect(-5, -5, 3, 3, 9) // clipped at origin
	im.FillRect(6, 6, 20, 20, 7) // clipped at far corner
	if im.At(0, 0) != 9 || im.At(2, 2) != 9 || im.At(3, 3) != 0 {
		t.Fatal("origin clip wrong")
	}
	if im.At(7, 7) != 7 || im.At(5, 5) != 0 {
		t.Fatal("far clip wrong")
	}
	// Fully outside: no-op, no panic.
	im.FillRect(100, 100, 200, 200, 1)
}

func TestFillCircle(t *testing.T) {
	im := New(21, 21)
	im.FillCircle(10, 10, 5, 200)
	if im.At(10, 10) != 200 {
		t.Fatal("center not filled")
	}
	if im.At(10, 5) != 200 || im.At(15, 10) != 200 {
		t.Fatal("cardinal extremes not filled")
	}
	if im.At(14, 14) != 0 { // (4,4) from center: 32 > 25
		t.Fatal("corner outside radius was filled")
	}
	// Clipped circle must not panic.
	im.FillCircle(0, 0, 5, 100)
	if im.At(0, 0) != 100 {
		t.Fatal("clipped circle missing center")
	}
}

func TestRangeAndHistogram(t *testing.T) {
	im := New(2, 2)
	copy(im.Pix, []uint8{5, 9, 7, 5})
	lo, hi := im.Range()
	if lo != 5 || hi != 9 {
		t.Fatalf("Range = (%d,%d)", lo, hi)
	}
	h := im.Histogram()
	if h[5] != 2 || h[7] != 1 || h[9] != 1 || h[0] != 0 {
		t.Fatalf("Histogram wrong: 5:%d 7:%d 9:%d", h[5], h[7], h[9])
	}
	empty := New(0, 0)
	lo, hi = empty.Range()
	if lo != 0 || hi != 0 {
		t.Fatalf("empty Range = (%d,%d)", lo, hi)
	}
}

func TestCloneAndEqual(t *testing.T) {
	a := Random(16, 3)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone differs")
	}
	b.Set(0, 0, b.At(0, 0)+1)
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.Equal(New(16, 15)) {
		t.Fatal("different dims equal")
	}
}

func TestSubImage(t *testing.T) {
	im := New(8, 8)
	im.FillRect(2, 2, 6, 6, 50)
	sub, err := im.SubImage(2, 2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub.W != 4 || sub.H != 4 {
		t.Fatalf("sub dims %dx%d", sub.W, sub.H)
	}
	for i := range sub.Pix {
		if sub.Pix[i] != 50 {
			t.Fatalf("sub pixel %d = %d", i, sub.Pix[i])
		}
	}
	if _, err := im.SubImage(5, 5, 4, 4); err == nil {
		t.Fatal("out-of-bounds window accepted")
	}
	if _, err := im.SubImage(-1, 0, 2, 2); err == nil {
		t.Fatal("negative origin accepted")
	}
}

func TestSubImageTilingReassembles(t *testing.T) {
	im := Random(32, 99)
	for _, tile := range []int{8, 16} {
		for y0 := 0; y0 < 32; y0 += tile {
			for x0 := 0; x0 < 32; x0 += tile {
				sub, err := im.SubImage(x0, y0, tile, tile)
				if err != nil {
					t.Fatal(err)
				}
				for ly := 0; ly < tile; ly++ {
					for lx := 0; lx < tile; lx++ {
						if sub.At(lx, ly) != im.At(x0+lx, y0+ly) {
							t.Fatalf("tile (%d,%d) pixel (%d,%d) mismatch", x0, y0, lx, ly)
						}
					}
				}
			}
		}
	}
}
