package pixmap

import (
	"bufio"
	"fmt"
	"io"
)

// Incremental PGM I/O. StreamReader and StreamWriter are the raster layer
// of the streaming segmentation path: the header is parsed eagerly, pixel
// rows move through caller-owned band buffers, and no full-image
// allocation ever happens — which is what lets gigapixel inputs flow
// through in O(band) memory.

// MaxStreamPixels bounds the pixel count a streamed PGM may declare. The
// limit is not memory (bands are bounded regardless) but label space:
// region IDs are int32 linear pixel indices, so every pixel index must fit
// in an int32. This is 32× MaxPGMPixels — a ~46000×46000 scan streams,
// while ReadPGM would refuse to materialise anything over 64MP.
const MaxStreamPixels = 1 << 31

// StreamReader decodes a PGM (P2 or P5) incrementally: NewStreamReader
// parses and validates the header, then ReadRows yields pixel rows on
// demand into a caller-owned buffer. Accepted streams decode to exactly
// the bytes ReadPGM would produce; the only divergence is the pixel-count
// cap (MaxStreamPixels here versus ReadPGM's MaxPGMPixels), which is the
// point of streaming.
type StreamReader struct {
	br     *bufio.Reader
	w, h   int
	maxval int
	binary bool
	row    int    // next unread row
	tok    []byte // P2 token scratch, reused across ReadRows calls
}

// NewStreamReader parses the PGM header from r and returns a reader
// positioned at the first pixel row.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic, w, h, maxval, err := pgmHeader(br)
	if err != nil {
		return nil, err
	}
	if w > 0 && h > MaxStreamPixels/w {
		return nil, fmt.Errorf("pixmap: PGM declares %dx%d pixels, more than the %d-pixel streaming limit", w, h, MaxStreamPixels)
	}
	return &StreamReader{br: br, w: w, h: h, maxval: maxval, binary: magic == "P5"}, nil
}

// Width returns the image width in pixels.
func (sr *StreamReader) Width() int { return sr.w }

// Height returns the image height in rows.
func (sr *StreamReader) Height() int { return sr.h }

// RowsRemaining returns how many rows ReadRows has yet to deliver.
func (sr *StreamReader) RowsRemaining() int { return sr.h - sr.row }

// ReadRows decodes the next n rows into dst, which must hold at least
// n·Width bytes. Asking for more rows than remain is an error; a short or
// malformed underlying stream surfaces exactly as it would from ReadPGM.
func (sr *StreamReader) ReadRows(dst []uint8, n int) error {
	if n < 0 || n > sr.RowsRemaining() {
		return fmt.Errorf("pixmap: ReadRows(%d) with %d rows remaining", n, sr.RowsRemaining())
	}
	need := n * sr.w
	if len(dst) < need {
		return fmt.Errorf("pixmap: ReadRows buffer holds %d bytes, need %d", len(dst), need)
	}
	dst = dst[:need]
	if sr.binary {
		if _, err := io.ReadFull(sr.br, dst); err != nil {
			return fmt.Errorf("pixmap: reading P5 pixels: %w", err)
		}
	} else {
		var err error
		if sr.tok, err = readP2Raster(sr.br, dst, sr.maxval, sr.row*sr.w, sr.tok); err != nil {
			return err
		}
	}
	sr.row += n
	return nil
}

// StreamWriter encodes a binary PGM (P5) incrementally: the header goes
// out at construction, WriteRows appends pixel rows, and Close verifies
// the declared geometry was fully written. The bytes produced are
// identical to WritePGM on the assembled image.
type StreamWriter struct {
	bw   *bufio.Writer
	w, h int
	row  int // rows written so far
}

// NewStreamWriter writes the P5 header for a w×h image and returns a
// writer accepting its pixel rows.
func NewStreamWriter(out io.Writer, w, h int) (*StreamWriter, error) {
	if w < 0 || h < 0 {
		return nil, fmt.Errorf("pixmap: bad stream geometry %dx%d", w, h)
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", w, h); err != nil {
		return nil, fmt.Errorf("pixmap: writing PGM header: %w", err)
	}
	return &StreamWriter{bw: bw, w: w, h: h}, nil
}

// WriteRows appends whole pixel rows: len(pix) must be a multiple of the
// width, and the total must not exceed the declared height.
func (sw *StreamWriter) WriteRows(pix []uint8) error {
	if sw.w == 0 {
		if len(pix) != 0 {
			return fmt.Errorf("pixmap: writing %d pixels to a zero-width stream", len(pix))
		}
		return nil
	}
	if len(pix)%sw.w != 0 {
		return fmt.Errorf("pixmap: writing %d pixels, not a multiple of width %d", len(pix), sw.w)
	}
	rows := len(pix) / sw.w
	if sw.row+rows > sw.h {
		return fmt.Errorf("pixmap: writing %d rows past the declared height %d", sw.row+rows-sw.h, sw.h)
	}
	if _, err := sw.bw.Write(pix); err != nil {
		return fmt.Errorf("pixmap: writing PGM pixels: %w", err)
	}
	sw.row += rows
	return nil
}

// RowsWritten returns how many rows have been written so far.
func (sw *StreamWriter) RowsWritten() int { return sw.row }

// Close flushes the stream and fails if fewer rows than declared were
// written — a truncated result must never look like a success.
func (sw *StreamWriter) Close() error {
	if sw.row != sw.h {
		return fmt.Errorf("pixmap: stream closed after %d of %d rows", sw.row, sw.h)
	}
	if err := sw.bw.Flush(); err != nil {
		return fmt.Errorf("pixmap: flushing PGM stream: %w", err)
	}
	return nil
}
