package pixmap

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

// streamReadAll decodes a whole PGM through the streaming reader in bands
// of the given row count, returning the assembled image.
func streamReadAll(t *testing.T, data []byte, bandRows int) (*Image, error) {
	t.Helper()
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	im := New(sr.Width(), sr.Height())
	band := make([]uint8, sr.Width()*bandRows)
	row := 0
	for sr.RowsRemaining() > 0 {
		n := min(bandRows, sr.RowsRemaining())
		if err := sr.ReadRows(band, n); err != nil {
			return nil, err
		}
		copy(im.Pix[row*sr.Width():], band[:n*sr.Width()])
		row += n
	}
	return im, nil
}

func TestStreamReaderMatchesReadPGM(t *testing.T) {
	for _, id := range AllPaperImages() {
		im := Generate(id, DefaultGenOptions())
		var p5, p2 bytes.Buffer
		if err := WritePGM(&p5, im); err != nil {
			t.Fatal(err)
		}
		if err := WritePGMPlain(&p2, im); err != nil {
			t.Fatal(err)
		}
		for _, enc := range []struct {
			name string
			data []byte
		}{{"p5", p5.Bytes()}, {"p2", p2.Bytes()}} {
			for _, bandRows := range []int{1, 7, im.H, im.H + 5} {
				got, err := streamReadAll(t, enc.data, bandRows)
				if err != nil {
					t.Fatalf("%v/%s bands=%d: %v", id, enc.name, bandRows, err)
				}
				if !got.Equal(im) {
					t.Fatalf("%v/%s bands=%d: streamed pixels differ from ReadPGM", id, enc.name, bandRows)
				}
			}
		}
	}
}

func TestStreamReaderErrors(t *testing.T) {
	data := []byte("P5\n4 4\n255\n0123456789abcdef")
	sr, err := NewStreamReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.ReadRows(make([]uint8, 4), 2); err == nil {
		t.Fatal("ReadRows accepted a buffer smaller than the band")
	}
	if err := sr.ReadRows(make([]uint8, 64), 5); err == nil {
		t.Fatal("ReadRows accepted more rows than the image holds")
	}
	if err := sr.ReadRows(make([]uint8, 64), 4); err != nil {
		t.Fatal(err)
	}
	if sr.RowsRemaining() != 0 {
		t.Fatalf("RowsRemaining = %d after reading everything", sr.RowsRemaining())
	}

	// Truncated P5 raster surfaces on the band that needs the missing bytes.
	sr, err = NewStreamReader(strings.NewReader("P5\n4 4\n255\n0123"))
	if err != nil {
		t.Fatal(err)
	}
	if err := sr.ReadRows(make([]uint8, 4), 1); err != nil {
		t.Fatal(err)
	}
	if err := sr.ReadRows(make([]uint8, 12), 3); err == nil {
		t.Fatal("ReadRows parsed rows past the end of a truncated stream")
	}
}

func TestStreamReaderPixelLimits(t *testing.T) {
	// Beyond the streaming (int32 label space) limit: rejected up front.
	if _, err := NewStreamReader(strings.NewReader("P5\n65536 65536\n255\n")); err == nil {
		t.Fatal("accepted a header beyond MaxStreamPixels")
	}
	// Beyond ReadPGM's materialisation limit but streamable: accepted. The
	// header declares 100MP; no rows are read, so nothing is allocated.
	sr, err := NewStreamReader(strings.NewReader("P5\n10000 10000\n255\n"))
	if err != nil {
		t.Fatalf("rejected a streamable 100MP header: %v", err)
	}
	if sr.Width() != 10000 || sr.Height() != 10000 {
		t.Fatalf("parsed %dx%d", sr.Width(), sr.Height())
	}
	if _, err := ReadPGM(strings.NewReader("P5\n10000 10000\n255\n")); err == nil {
		t.Fatal("ReadPGM accepted 100MP — the streaming limit test is vacuous")
	}
}

// TestStreamReaderBandAllocs pins the O(band) promise at the allocation
// level: once the band buffer exists, reading rows allocates nothing (P5)
// or only the one-off token scratch (P2).
func TestStreamReaderBandAllocs(t *testing.T) {
	im := Generate(Image3Circles128, DefaultGenOptions())
	for _, enc := range []struct {
		name  string
		write func(io.Writer, *Image) error
		max   float64
	}{
		{"p5", WritePGM, 0},
		{"p2", WritePGMPlain, 1}, // token scratch, allocated once then reused
	} {
		var buf bytes.Buffer
		if err := enc.write(&buf, im); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		band := make([]uint8, im.W*8)
		avg := testing.AllocsPerRun(5, func() {
			sr, err := NewStreamReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			for sr.RowsRemaining() > 0 {
				if err := sr.ReadRows(band, min(8, sr.RowsRemaining())); err != nil {
					t.Fatal(err)
				}
			}
		})
		// Budget: reader construction (bufio buffer + structs) plus the P2
		// token scratch. The image streams in 16 bands, so per-band
		// allocation would blow well past this.
		limit := 8.0 + enc.max
		if avg > limit {
			t.Errorf("%s: %.1f allocs per full streamed read, want <= %.1f", enc.name, avg, limit)
		}
	}
}

func TestStreamWriterMatchesWritePGM(t *testing.T) {
	im := Generate(Image1NestedRects128, DefaultGenOptions())
	var want bytes.Buffer
	if err := WritePGM(&want, im); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	sw, err := NewStreamWriter(&got, im.W, im.H)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < im.H; y += 13 {
		n := min(13, im.H-y)
		if err := sw.WriteRows(im.Pix[y*im.W : (y+n)*im.W]); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("streamed PGM differs from WritePGM")
	}
}

func TestStreamWriterGuards(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.WriteRows(make([]uint8, 6)); err == nil {
		t.Fatal("accepted a partial row")
	}
	if err := sw.WriteRows(make([]uint8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err == nil {
		t.Fatal("Close succeeded with rows missing")
	}
	if err := sw.WriteRows(make([]uint8, 12)); err == nil {
		t.Fatal("accepted rows past the declared height")
	}
	if err := sw.WriteRows(make([]uint8, 8)); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkReadPGM pins the raster decode paths — in particular the P2
// win from the reused token scratch and allocation-free integer parse
// (the old path allocated a token and a string per pixel).
func BenchmarkReadPGM(b *testing.B) {
	im := Generate(Image6Tool256, DefaultGenOptions())
	var p5, p2 bytes.Buffer
	if err := WritePGM(&p5, im); err != nil {
		b.Fatal(err)
	}
	if err := WritePGMPlain(&p2, im); err != nil {
		b.Fatal(err)
	}
	for _, enc := range []struct {
		name string
		data []byte
	}{{"p5", p5.Bytes()}, {"p2", p2.Bytes()}} {
		b.Run(enc.name, func(b *testing.B) {
			b.SetBytes(int64(im.W * im.H))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ReadPGM(bytes.NewReader(enc.data)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// FuzzStreamPGM cross-checks the streaming reader against ReadPGM: every
// input the in-memory parser accepts must stream to identical pixels (in
// adversarially ragged bands), and every input it rejects must fail the
// streaming path too — header errors up front, raster errors by the end
// of the rows at the latest.
func FuzzStreamPGM(f *testing.F) {
	for _, id := range AllPaperImages() {
		im := Generate(id, DefaultGenOptions())
		var p5 bytes.Buffer
		if err := WritePGM(&p5, im); err != nil {
			f.Fatal(err)
		}
		f.Add(p5.Bytes(), uint8(3))
		var p2 bytes.Buffer
		if err := WritePGMPlain(&p2, im); err != nil {
			f.Fatal(err)
		}
		f.Add(p2.Bytes(), uint8(7))
	}
	f.Add([]byte("P5\n# comment\n2 2\n255\nabcd"), uint8(1))
	f.Add([]byte("P2\n2 3 255\n0 1 2 3 4 5\n"), uint8(2))
	f.Add([]byte("P2\n2 2 255\n0 +1 -2 3\n"), uint8(1))
	f.Add([]byte("P5\n0 0\n255\n"), uint8(1))
	f.Add([]byte("P5\n-1 4\n255\n"), uint8(1))
	f.Add([]byte("P5\n999999999 999999999\n255\n"), uint8(1))
	f.Add([]byte("P2\n3 1\n255\n1 99999999999999999999 3"), uint8(1))
	f.Add([]byte("P6\n2 2\n255\nabcd"), uint8(1))

	f.Fuzz(func(t *testing.T, data []byte, bandSeed uint8) {
		if w, h, ok := declaredDims(data); ok && w > 0 && h > 0 && w*h > 1<<20 {
			t.Skip("oversized declared geometry")
		}
		want, refErr := ReadPGM(bytes.NewReader(data))
		got, err := streamReadAllFuzz(t, data, 1+int(bandSeed)%9)
		if refErr != nil {
			if err == nil {
				t.Fatalf("ReadPGM rejected (%v) but the streaming reader accepted", refErr)
			}
			return
		}
		if err != nil {
			t.Fatalf("ReadPGM accepted but the streaming reader failed: %v", err)
		}
		if !got.Equal(want) {
			t.Fatal("streamed pixels differ from ReadPGM")
		}
	})
}

// streamReadAllFuzz is streamReadAll without the test-only band clamp —
// it never reads more rows than remain, matching driver behaviour.
func streamReadAllFuzz(t *testing.T, data []byte, bandRows int) (*Image, error) {
	t.Helper()
	if bandRows < 1 {
		return nil, fmt.Errorf("bad band rows %d", bandRows)
	}
	return streamReadAll(t, data, bandRows)
}
