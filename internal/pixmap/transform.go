package pixmap

import "fmt"

// Geometric transforms, used by the robustness test suite (a valid
// segmenter must find the same region structure in a flipped or rotated
// image) and by tooling.

// FlipH returns the image mirrored horizontally.
func (im *Image) FlipH() *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Set(im.W-1-x, y, im.At(x, y))
		}
	}
	return out
}

// FlipV returns the image mirrored vertically.
func (im *Image) FlipV() *Image {
	out := New(im.W, im.H)
	for y := 0; y < im.H; y++ {
		copy(out.Pix[(im.H-1-y)*im.W:(im.H-y)*im.W], im.Pix[y*im.W:(y+1)*im.W])
	}
	return out
}

// Rotate90 returns the image rotated 90° clockwise (H×W from W×H).
func (im *Image) Rotate90() *Image {
	out := New(im.H, im.W)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			out.Set(im.H-1-y, x, im.At(x, y))
		}
	}
	return out
}

// Downsample returns the image reduced by an integer factor, each output
// pixel the mean of its factor×factor block. The dimensions must divide
// evenly.
func (im *Image) Downsample(factor int) (*Image, error) {
	if factor <= 0 || im.W%factor != 0 || im.H%factor != 0 {
		return nil, fmt.Errorf("pixmap: cannot downsample %dx%d by %d", im.W, im.H, factor)
	}
	out := New(im.W/factor, im.H/factor)
	for oy := 0; oy < out.H; oy++ {
		for ox := 0; ox < out.W; ox++ {
			sum := 0
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sum += int(im.At(ox*factor+dx, oy*factor+dy))
				}
			}
			out.Set(ox, oy, uint8(sum/(factor*factor)))
		}
	}
	return out, nil
}

// Upsample returns the image enlarged by an integer factor with pixel
// replication.
func (im *Image) Upsample(factor int) (*Image, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("pixmap: cannot upsample by %d", factor)
	}
	out := New(im.W*factor, im.H*factor)
	for y := 0; y < out.H; y++ {
		for x := 0; x < out.W; x++ {
			out.Set(x, y, im.At(x/factor, y/factor))
		}
	}
	return out, nil
}
