package pixmap

import "testing"

func TestFlipH(t *testing.T) {
	im, _ := FromRows([][]uint8{{1, 2, 3}, {4, 5, 6}})
	f := im.FlipH()
	if f.At(0, 0) != 3 || f.At(2, 0) != 1 || f.At(1, 1) != 5 {
		t.Fatalf("FlipH = %v", f.Pix)
	}
	if !f.FlipH().Equal(im) {
		t.Fatal("double FlipH not identity")
	}
}

func TestFlipV(t *testing.T) {
	im, _ := FromRows([][]uint8{{1, 2}, {3, 4}, {5, 6}})
	f := im.FlipV()
	if f.At(0, 0) != 5 || f.At(1, 2) != 2 {
		t.Fatalf("FlipV = %v", f.Pix)
	}
	if !f.FlipV().Equal(im) {
		t.Fatal("double FlipV not identity")
	}
}

func TestRotate90(t *testing.T) {
	im, _ := FromRows([][]uint8{{1, 2, 3}, {4, 5, 6}})
	r := im.Rotate90()
	if r.W != 2 || r.H != 3 {
		t.Fatalf("rotated dims %dx%d", r.W, r.H)
	}
	// (0,0) moves to (H-1, 0) = (1, 0).
	if r.At(1, 0) != 1 || r.At(0, 0) != 4 || r.At(1, 2) != 3 {
		t.Fatalf("Rotate90 = %v", r.Pix)
	}
	// Four rotations are the identity.
	if !im.Rotate90().Rotate90().Rotate90().Rotate90().Equal(im) {
		t.Fatal("four rotations not identity")
	}
}

func TestDownsample(t *testing.T) {
	im, _ := FromRows([][]uint8{
		{10, 20, 30, 40},
		{10, 20, 30, 40},
	})
	d, err := im.Downsample(2)
	if err != nil {
		t.Fatal(err)
	}
	if d.W != 2 || d.H != 1 || d.At(0, 0) != 15 || d.At(1, 0) != 35 {
		t.Fatalf("Downsample = %v", d.Pix)
	}
	if _, err := im.Downsample(3); err == nil {
		t.Fatal("non-dividing factor accepted")
	}
	if _, err := im.Downsample(0); err == nil {
		t.Fatal("zero factor accepted")
	}
}

func TestUpsampleDownsampleRoundTrip(t *testing.T) {
	im := Random(8, 4)
	up, err := im.Upsample(3)
	if err != nil {
		t.Fatal(err)
	}
	if up.W != 24 || up.At(5, 5) != im.At(1, 1) {
		t.Fatal("Upsample replication wrong")
	}
	back, err := up.Downsample(3)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(im) {
		t.Fatal("upsample/downsample round trip lost data")
	}
	if _, err := im.Upsample(0); err == nil {
		t.Fatal("zero upsample accepted")
	}
}
