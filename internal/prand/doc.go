// Package prand provides small deterministic pseudo-random generators for
// the region growing engines.
//
// The paper breaks merge-choice ties "by selecting a neighbor at random";
// on the Connection Machine each processor drew from its own stream. To make
// runs reproducible across the sequential, data-parallel, and
// message-passing engines, every random decision here is a pure function of
// (seed, iteration, region id, ...) via a SplitMix64-style hash, so the same
// seed yields the same tie-breaks regardless of how work is scheduled onto
// goroutines.
package prand
