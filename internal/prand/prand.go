package prand

// splitmix64 advances the SplitMix64 state and returns the next output.
// Reference: Steele, Lea, Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014.
func splitmix64(state uint64) uint64 {
	z := state + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash2 hashes two words into one well-mixed word.
func Hash2(a, b uint64) uint64 {
	return splitmix64(splitmix64(a) ^ (b * 0x9e3779b97f4a7c15))
}

// Hash3 hashes three words into one well-mixed word.
func Hash3(a, b, c uint64) uint64 {
	return splitmix64(Hash2(a, b) ^ (c * 0xd6e8feb86659fd93))
}

// Hash4 hashes four words into one well-mixed word.
func Hash4(a, b, c, d uint64) uint64 {
	return splitmix64(Hash3(a, b, c) ^ (d * 0xca01f9dd45c4b2fb))
}

// Gen is a sequential SplitMix64 generator. The zero value is a valid
// generator seeded with 0.
type Gen struct {
	state uint64
}

// New returns a generator with the given seed.
func New(seed uint64) *Gen { return &Gen{state: seed} }

// Uint64 returns the next 64 uniformly random bits.
func (g *Gen) Uint64() uint64 {
	g.state += 0x9e3779b97f4a7c15
	z := g.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (g *Gen) Intn(n int) int {
	if n <= 0 {
		panic("prand: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping; bias is negligible (n ≪ 2⁶⁴)
	// and irrelevant for tie-breaking.
	hi, _ := mul64(g.Uint64(), uint64(n))
	return int(hi)
}

// Split derives an independent child generator. Streams derived with
// distinct ids are statistically independent of the parent and each other.
func (g *Gen) Split(id uint64) *Gen {
	return &Gen{state: Hash2(g.Uint64(), id)}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	al, ah := a&mask, a>>32
	bl, bh := b&mask, b>>32
	t := ah*bl + (al*bl)>>32
	lo = a * b
	hi = ah*bh + t>>32 + (al*bh+t&mask)>>32
	return hi, lo
}
