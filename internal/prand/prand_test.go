package prand

import (
	"testing"
	"testing/quick"
)

func TestGenDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with equal seeds diverged at step %d", i)
		}
	}
}

func TestGenSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var g Gen
	if g.Uint64() == g.Uint64() {
		t.Fatal("zero-value generator is not advancing")
	}
}

func TestIntnBounds(t *testing.T) {
	g := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := g.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnCoversRange(t *testing.T) {
	g := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[g.Intn(4)] = true
	}
	for v := 0; v < 4; v++ {
		if !seen[v] {
			t.Errorf("Intn(4) never produced %d in 1000 draws", v)
		}
	}
}

func TestHashDeterministic(t *testing.T) {
	if Hash2(1, 2) != Hash2(1, 2) || Hash3(1, 2, 3) != Hash3(1, 2, 3) || Hash4(1, 2, 3, 4) != Hash4(1, 2, 3, 4) {
		t.Fatal("hash functions are not pure")
	}
}

func TestHashArgumentSensitivity(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		if a == b {
			return true
		}
		// Swapping or changing arguments must change the output: a
		// collision here would let two regions share tie-break draws.
		return Hash2(a, b) != Hash2(b, a) || a == b
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Hash3(1, 2, 3) == Hash3(1, 3, 2) {
		t.Fatal("Hash3 is insensitive to argument order")
	}
	if Hash4(1, 2, 3, 4) == Hash4(1, 2, 4, 3) {
		t.Fatal("Hash4 is insensitive to argument order")
	}
}

func TestHashAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Hash2(12345, 67890)
	flipped := Hash2(12345^1, 67890)
	diff := popcount(base ^ flipped)
	if diff < 16 || diff > 48 {
		t.Fatalf("weak avalanche: %d differing bits", diff)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestSplitIndependence(t *testing.T) {
	g := New(5)
	c1 := g.Split(1)
	c2 := g.Split(2)
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split children with distinct ids collided %d times", same)
	}
}

func TestUniformityRough(t *testing.T) {
	// Chi-squared-ish sanity over 16 buckets: no bucket should deviate
	// wildly from the mean.
	g := New(1234)
	const draws, buckets = 16000, 16
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[g.Uint64()%buckets]++
	}
	mean := draws / buckets
	for b, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("bucket %d has %d draws, mean %d", b, c, mean)
		}
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	err := quick.Check(func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify against the schoolbook decomposition.
		const mask = 1<<32 - 1
		al, ah := a&mask, a>>32
		bl, bh := b&mask, b>>32
		wantLo := a * b
		carry := (al*bl)>>32 + ah*bl&mask + al*bh&mask
		wantHi := ah*bh + (ah*bl)>>32 + (al*bh)>>32 + carry>>32
		return lo == wantLo && hi == wantHi
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Fatal(err)
	}
}
