// Package quadsplit implements the split stage of the split-and-merge
// region growing algorithm: the bottom-up partition of an image into
// maximal homogeneous square regions.
//
// Every pixel starts as a 1×1 homogeneous square. Pass l combines aligned
// 2×2 groups of solid 2^(l−1)-squares into 2^l-squares when the union
// satisfies the homogeneity criterion. The stage terminates when the whole
// image is one square, when a pass combines nothing, or when the square
// size cap is reached.
//
// # The size cap
//
// In the paper's tables, split iteration counts and split times are
// identical for every image of the same size (4 passes at 128², 5 at 256²)
// even though the images differ wildly in content (193 vs 1732 squares).
// A content-driven termination test cannot produce that; a fixed iteration
// count of log2(N)−3 — i.e. a maximum square of N/8 — reproduces both
// observed counts exactly. We therefore default MaxSquare to N/8 and expose
// it as an option; Options{MaxSquare: Unbounded} runs the textbook
// algorithm to completion.
package quadsplit
