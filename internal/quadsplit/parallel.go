// Tile-parallel split. The sequential Split never creates a square larger
// than the effective cap, and every square is aligned to its own size, so
// no square can straddle a grid line at a multiple of the cap. Partitioning
// the image into cap-aligned tiles and splitting each tile independently
// therefore produces exactly the labels, sizes, and per-level combine
// counts of the global algorithm — which is what makes a native
// shared-memory split both easy and byte-identical to the reference.
package quadsplit

import (
	"context"
	"math/bits"
	"sync"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
)

// minTile is the smallest tile side SplitParallel uses. Tiles must be a
// multiple of the effective cap for correctness; beyond that, larger tiles
// amortise per-tile overhead while still exposing enough parallelism.
const minTile = 32

// tileScratch pools the per-tile buffer sets of SplitParallel workers.
// Tile results are consumed (copied into the global result) before the
// scratch returns to the pool, so pooled reuse cannot alias a live result.
var tileScratch = sync.Pool{New: func() any { return new(Scratch) }}

// SplitParallel runs the split stage on `workers` goroutines by splitting
// cap-aligned tiles independently and stitching the results. It produces a
// Result identical to Split's for every image, criterion, and option set.
// workers <= 1 (or an image spanned by a single tile) falls back to Split.
func SplitParallel(im *pixmap.Image, crit homog.Criterion, opt Options, workers int) *Result {
	res, _ := SplitParallelCtx(context.Background(), im, crit, opt, workers)
	return res
}

// SplitParallelCtx is SplitParallel with cooperative cancellation: workers
// check ctx at every tile boundary, stop picking up new tiles once it is
// done, drain, and the call returns (nil, ctx.Err()). All worker
// goroutines have exited by the time it returns, cancelled or not.
func SplitParallelCtx(ctx context.Context, im *pixmap.Image, crit homog.Criterion, opt Options, workers int) (*Result, error) {
	w, h := im.W, im.H
	if w == 0 || h == 0 || workers <= 1 {
		return SplitCtx(ctx, im, crit, opt)
	}
	cap := EffectiveCap(opt, w, h)
	tile := cap
	for tile < minTile {
		tile *= 2
	}
	tx := (w + tile - 1) / tile
	ty := (h + tile - 1) / tile
	if tx*ty == 1 {
		return SplitCtx(ctx, im, crit, opt)
	}

	res := &Result{
		W: w, H: h,
		MaxSquareUsed: cap,
	}
	if sc := opt.Scratch; sc != nil {
		res.Labels = grownInt32(&sc.labels, w*h)
		res.Size = grownInt32(&sc.size, w*h)
	} else {
		res.Labels = make([]int32, w*h)
		res.Size = make([]int32, w*h)
	}

	type tileOut struct {
		numSquares      int
		combinedPerIter []int
	}
	outs := make([]tileOut, tx*ty)

	var wg sync.WaitGroup
	next := make(chan int)
	go func() {
		for t := 0; t < tx*ty; t++ {
			next <- t
		}
		close(next)
	}()
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := tileScratch.Get().(*Scratch)
			defer tileScratch.Put(sc)
			for t := range next {
				// Keep draining the feeder after cancellation so it never
				// blocks; just stop doing the work.
				if ctx.Err() != nil {
					continue
				}
				x0 := (t % tx) * tile
				y0 := (t / tx) * tile
				tw := min(tile, w-x0)
				th := min(tile, h-y0)
				sub, err := im.SubImage(x0, y0, tw, th)
				if err != nil {
					panic(err) // unreachable: tile geometry is in bounds
				}
				r := Split(sub, crit, Options{MaxSquare: cap, Scratch: sc})
				outs[t] = tileOut{numSquares: r.NumSquares, combinedPerIter: r.CombinedPerIter}
				// Re-anchor tile-local labels at the global NW pixel index.
				for ly := 0; ly < th; ly++ {
					grow := (y0 + ly) * w
					for lx := 0; lx < tw; lx++ {
						ll := r.Labels[ly*tw+lx]
						llx, lly := int(ll)%tw, int(ll)/tw
						gi := grow + x0 + lx
						res.Labels[gi] = int32((y0+lly)*w + x0 + llx)
						res.Size[gi] = r.Size[ly*tw+lx]
					}
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Aggregate per-level combine counts and replay the sequential
	// termination rule: pass l runs while the previous pass combined
	// something, up to the cap's level. (A tile that stops early simply
	// contributes zero to later levels, which is also what its blocks
	// contribute in the global algorithm.) The remaining sequential
	// termination condition — the whole image becoming one solid square —
	// requires cap >= max(w, h), which forces the single-tile fallback
	// above, so it cannot trigger here.
	maxLevel := bits.Len(uint(cap)) - 1
	combined := make([]int, maxLevel+1)
	for _, o := range outs {
		res.NumSquares += o.numSquares
		for i, c := range o.combinedPerIter {
			if i+1 <= maxLevel {
				combined[i+1] += c
			}
		}
	}
	for l := 1; l <= maxLevel; l++ {
		res.Iterations++
		res.CombinedPerIter = append(res.CombinedPerIter, combined[l])
		if combined[l] == 0 {
			break
		}
	}
	if res.Iterations == 0 {
		res.Iterations = 1
		res.CombinedPerIter = append(res.CombinedPerIter, 0)
	}
	return res, nil
}
