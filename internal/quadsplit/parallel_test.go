package quadsplit

import (
	"fmt"
	"testing"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
)

// TestSplitParallelMatchesSequential requires SplitParallel to reproduce
// the sequential Result — labels, sizes, iteration counts, per-level
// combine counts, and square count — across image shapes (including
// non-power-of-two and non-square), caps, and worker counts.
func TestSplitParallelMatchesSequential(t *testing.T) {
	images := map[string]*pixmap.Image{
		"uniform64":   pixmap.Uniform(64, 100),
		"checker96":   pixmap.Checkerboard(96, 0, 255),
		"gradient128": pixmap.Gradient(128, 255),
		"random100":   pixmap.Random(100, 7),
		"rect96x64":   rectImage(96, 64),
		"odd37x23":    oddRandom(37, 23, 3),
		"tall8x200":   rectImage(8, 200),
		"tiny1x1":     pixmap.Uniform(1, 9),
	}
	for name, im := range images {
		for _, maxSquare := range []int{0, 1, 8, 16, Unbounded} {
			for _, threshold := range []int{0, 10, 300} {
				crit := homog.NewRange(threshold)
				opt := Options{MaxSquare: maxSquare}
				want := Split(im, crit, opt)
				for _, workers := range []int{1, 2, 3, 8} {
					got := SplitParallel(im, crit, opt, workers)
					label := fmt.Sprintf("%s/cap=%d/T=%d/w=%d", name, maxSquare, threshold, workers)
					if err := sameResult(want, got); err != nil {
						t.Errorf("%s: %v", label, err)
					}
					if err := Validate(got, im, crit); err != nil {
						t.Errorf("%s: invalid: %v", label, err)
					}
				}
			}
		}
	}
}

func sameResult(want, got *Result) error {
	if want.W != got.W || want.H != got.H {
		return fmt.Errorf("dims %dx%d, want %dx%d", got.W, got.H, want.W, want.H)
	}
	if want.Iterations != got.Iterations {
		return fmt.Errorf("iterations %d, want %d", got.Iterations, want.Iterations)
	}
	if want.NumSquares != got.NumSquares {
		return fmt.Errorf("squares %d, want %d", got.NumSquares, want.NumSquares)
	}
	if want.MaxSquareUsed != got.MaxSquareUsed {
		return fmt.Errorf("cap %d, want %d", got.MaxSquareUsed, want.MaxSquareUsed)
	}
	if len(want.CombinedPerIter) != len(got.CombinedPerIter) {
		return fmt.Errorf("combined %v, want %v", got.CombinedPerIter, want.CombinedPerIter)
	}
	for i := range want.CombinedPerIter {
		if want.CombinedPerIter[i] != got.CombinedPerIter[i] {
			return fmt.Errorf("combined %v, want %v", got.CombinedPerIter, want.CombinedPerIter)
		}
	}
	for i := range want.Labels {
		if want.Labels[i] != got.Labels[i] {
			return fmt.Errorf("label[%d] = %d, want %d", i, got.Labels[i], want.Labels[i])
		}
		if want.Size[i] != got.Size[i] {
			return fmt.Errorf("size[%d] = %d, want %d", i, got.Size[i], want.Size[i])
		}
	}
	return nil
}

func oddRandom(w, h int, seed uint64) *pixmap.Image {
	sq := pixmap.Random(max(w, h), seed)
	im, err := sq.SubImage(0, 0, w, h)
	if err != nil {
		panic(err)
	}
	return im
}

func rectImage(w, h int) *pixmap.Image {
	im := pixmap.New(w, h)
	im.FillRect(0, 0, w, h, 20)
	im.FillRect(w/4, h/4, 3*w/4, 3*h/4, 200)
	return im
}
