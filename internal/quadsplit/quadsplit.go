package quadsplit

import (
	"context"
	"fmt"
	"math/bits"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
)

// Unbounded disables the square-size cap.
const Unbounded = -1

// Options configure the split stage.
type Options struct {
	// MaxSquare caps the side of produced squares. 0 selects the paper's
	// default of max(N/8, 1) rounded down to a power of two, where N is
	// the larger image dimension; Unbounded (−1) removes the cap. Any
	// other value is rounded down to a power of two.
	MaxSquare int
	// Scratch, when non-nil, supplies reusable buffers for the result's
	// label/size arrays and the pixel-level working set. The returned
	// Result then aliases the scratch: the caller owns both and must not
	// start another split with the same Scratch while the Result is live.
	Scratch *Scratch
}

// Scratch is a reusable buffer set for the split stage. The zero value is
// ready to use; buffers grow to the largest image seen and are retained
// across runs, which is what lets a pooled caller split same-size images
// with near-zero allocation. A Scratch serves one split at a time.
type Scratch struct {
	labels, size []int32
	iv           []homog.Interval
	solid        []bool
	claimed      []bool
	rows         []uint8 // packed level-1 row scratch: 2·W bytes
}

// grownInt32 returns buf resized to n, reallocating only on growth.
func grownInt32(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func grownIV(buf *[]homog.Interval, n int) []homog.Interval {
	if cap(*buf) < n {
		*buf = make([]homog.Interval, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func grownBool(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func grownU8(buf *[]uint8, n int) []uint8 {
	if cap(*buf) < n {
		*buf = make([]uint8, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// Square describes one homogeneous square region: its north-west corner,
// side length, and intensity interval.
type Square struct {
	X, Y, Size int
	IV         homog.Interval
}

// ID returns the region identifier: the linear index of the square's
// north-west pixel in a width-w image, the paper's array encoding.
func (s Square) ID(w int) int32 { return int32(s.Y*w + s.X) }

// Result is the outcome of the split stage.
type Result struct {
	W, H int
	// Labels holds, for every pixel, the ID of its square region.
	Labels []int32
	// Size holds, for every pixel, the side of its square region.
	Size []int32
	// Iterations is the number of combining passes executed, counting a
	// final pass that combines nothing (the paper's convention: the best
	// case, an image with no combinable pixels, costs one iteration).
	Iterations int
	// CombinedPerIter records how many quad-blocks each pass combined.
	CombinedPerIter []int
	// NumSquares is the number of square regions produced.
	NumSquares int
	// MaxSquareUsed is the effective cap after defaulting.
	MaxSquareUsed int
}

// EffectiveCap resolves Options.MaxSquare against the image dimensions,
// applying the paper's N/8 default and rounding to a power of two. The
// data-parallel and message-passing engines share it so all engines agree
// on the split semantics.
func EffectiveCap(opt Options, w, h int) int {
	n := max(w, h)
	cap := opt.MaxSquare
	switch {
	case cap == Unbounded || cap >= n:
		cap = prevPow2(max(n, 1))
	case cap == 0:
		cap = max(prevPow2(n)/8, 1)
	default:
		cap = max(prevPow2(cap), 1)
	}
	return cap
}

func prevPow2(v int) int {
	if v <= 1 {
		return 1
	}
	return 1 << (bits.Len(uint(v)) - 1)
}

// Split runs the split stage sequentially. It is the reference
// implementation against which the data-parallel and message-passing
// engines are verified.
func Split(im *pixmap.Image, crit homog.Criterion, opt Options) *Result {
	res, _ := SplitCtx(context.Background(), im, crit, opt)
	return res
}

// SplitCtx is Split with cooperative cancellation: the combining loop
// checks ctx at every level boundary and returns (nil, ctx.Err()) when the
// context is done. The labels it produces are byte-identical to Split's;
// cancellation never alters a completed result.
func SplitCtx(ctx context.Context, im *pixmap.Image, crit homog.Criterion, opt Options) (*Result, error) {
	w, h := im.W, im.H
	res := &Result{
		W: w, H: h,
		MaxSquareUsed: EffectiveCap(opt, w, h),
	}
	if sc := opt.Scratch; sc != nil {
		res.Labels = grownInt32(&sc.labels, w*h)
		res.Size = grownInt32(&sc.size, w*h)
	} else {
		res.Labels = make([]int32, w*h)
		res.Size = make([]int32, w*h)
	}
	if w == 0 || h == 0 {
		return res, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Level state: per-level block intervals and solidity. Level l blocks
	// have side 2^l; block (bx,by) covers pixels [bx·s,(bx+1)·s)×[by·s,...).
	// Blocks that extend past the image boundary are never solid. Level 0
	// (one pixel per block, every block solid, interval = Point) is never
	// materialised: level 1 is computed straight from the raster through
	// the packed SWAR row path, and the claim pass below handles the pixel
	// level specially. That removes the two W·H working arrays and the
	// per-pixel init pass the old kernel paid for every run.
	type level struct {
		bw, bh int
		iv     []homog.Interval
		solid  []bool
	}
	maxLevel := bits.Len(uint(res.MaxSquareUsed)) - 1

	levels := make([]level, 1, maxLevel+1) // levels[0] stays zero: the pixel level is implicit

	top := 0 // highest level with at least one solid block
	for l := 1; l <= maxLevel; l++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s := 1 << l
		cur := level{
			bw: (w + s - 1) / s,
			bh: (h + s - 1) / s,
		}
		combined := 0
		if l == 1 {
			// 2×2 pixel blocks, straight from the raster: the vertical
			// min/max of each row pair runs 8 pixels per uint64 word
			// (homog.RowsMinMax), the horizontal pair fold and criterion
			// test then run per block. These are the only buffers worth
			// pooling now, so they draw from the Scratch.
			var vlo, vhi []uint8
			if sc := opt.Scratch; sc != nil {
				rows := grownU8(&sc.rows, 2*w)
				vlo, vhi = rows[:w], rows[w:]
				cur.iv = grownIV(&sc.iv, cur.bw*cur.bh)
				cur.solid = grownBool(&sc.solid, cur.bw*cur.bh)
				clear(cur.solid) // iv needs no clear: it is read only under solid
			} else {
				vlo = make([]uint8, w)
				vhi = make([]uint8, w)
				cur.iv = make([]homog.Interval, cur.bw*cur.bh)
				cur.solid = make([]bool, cur.bw*cur.bh)
			}
			fullBW := w / 2 // blocks fully inside the image horizontally
			for by := 0; by < cur.bh; by++ {
				y := 2 * by
				if y+1 >= h {
					break // bottom row of vertically incomplete blocks: never solid
				}
				homog.RowsMinMax(im.Pix[y*w:y*w+w], im.Pix[(y+1)*w:(y+1)*w+w], vlo, vhi)
				base := by * cur.bw
				for bx := 0; bx < fullBW; bx++ {
					lo := min(vlo[2*bx], vlo[2*bx+1])
					hi := max(vhi[2*bx], vhi[2*bx+1])
					union := homog.Interval{Lo: lo, Hi: hi}
					if crit.Homogeneous(union) {
						cur.iv[base+bx] = union
						cur.solid[base+bx] = true
						combined++
					}
				}
			}
		} else {
			prev := &levels[l-1]
			cur.iv = make([]homog.Interval, cur.bw*cur.bh)
			cur.solid = make([]bool, cur.bw*cur.bh)
			for by := 0; by < cur.bh; by++ {
				for bx := 0; bx < cur.bw; bx++ {
					i := by*cur.bw + bx
					// Children at level l−1: the 2×2 group with NW child (2bx,2by).
					cx, cy := 2*bx, 2*by
					if cx+1 >= prev.bw || cy+1 >= prev.bh {
						continue // children out of range: block incomplete
					}
					c0 := cy*prev.bw + cx
					c1 := c0 + 1
					c2 := c0 + prev.bw
					c3 := c2 + 1
					if !(prev.solid[c0] && prev.solid[c1] && prev.solid[c2] && prev.solid[c3]) {
						continue
					}
					// Geometric completeness: block must be fully inside the image.
					if (bx+1)*s > w || (by+1)*s > h {
						continue
					}
					// Branch-free 4-way union: solid children are never
					// empty, so the min/max form is the exact union.
					union := homog.Interval{
						Lo: min(min(prev.iv[c0].Lo, prev.iv[c1].Lo), min(prev.iv[c2].Lo, prev.iv[c3].Lo)),
						Hi: max(max(prev.iv[c0].Hi, prev.iv[c1].Hi), max(prev.iv[c2].Hi, prev.iv[c3].Hi)),
					}
					if !crit.Homogeneous(union) {
						continue
					}
					cur.iv[i] = union
					cur.solid[i] = true
					combined++
				}
			}
		}
		levels = append(levels, cur)
		res.Iterations++
		res.CombinedPerIter = append(res.CombinedPerIter, combined)
		if combined == 0 {
			break
		}
		top = l
		// Whole image one square: the paper's first termination condition.
		if cur.bw == 1 && cur.bh == 1 && cur.solid[0] {
			break
		}
	}
	// Degenerate 1×1-cap or 1-pixel image: the stage still "runs" once in
	// the paper's accounting (it must discover nothing combines).
	if res.Iterations == 0 {
		res.Iterations = 1
		res.CombinedPerIter = append(res.CombinedPerIter, 0)
	}

	// Label every pixel with the largest solid block containing it,
	// scanning levels top-down so each pixel is claimed once.
	var claimed []bool
	if sc := opt.Scratch; sc != nil {
		claimed = grownBool(&sc.claimed, w*h)
		clear(claimed)
	} else {
		claimed = make([]bool, w*h)
	}
	for l := top; l >= 1; l-- {
		s := 1 << l
		lv := &levels[l]
		for by := 0; by < lv.bh; by++ {
			for bx := 0; bx < lv.bw; bx++ {
				if !lv.solid[by*lv.bw+bx] {
					continue
				}
				x0, y0 := bx*s, by*s
				if claimed[y0*w+x0] {
					continue
				}
				id := int32(y0*w + x0)
				res.NumSquares++
				for y := y0; y < y0+s; y++ {
					row := y * w
					for x := x0; x < x0+s; x++ {
						res.Labels[row+x] = id
						res.Size[row+x] = int32(s)
						claimed[row+x] = true
					}
				}
			}
		}
	}
	// Pixel level, implicitly: every still-unclaimed pixel is its own
	// 1×1 square (level 0 is always solid, so no solidity check needed).
	//vet:noctx bounded per-pixel sweep that cannot block; ctx was checked at every split level above
	for i := range claimed {
		if !claimed[i] {
			res.Labels[i] = int32(i)
			res.Size[i] = 1
			res.NumSquares++
		}
	}
	return res, nil
}

// Squares enumerates the square regions in north-west raster order.
func (r *Result) Squares(im *pixmap.Image) []Square {
	var out []Square
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			i := y*r.W + x
			if r.Labels[i] != int32(i) {
				continue
			}
			s := int(r.Size[i])
			iv := homog.Empty()
			for yy := y; yy < y+s; yy++ {
				for xx := x; xx < x+s; xx++ {
					iv = iv.Union(homog.Point(im.At(xx, yy)))
				}
			}
			out = append(out, Square{X: x, Y: y, Size: s, IV: iv})
		}
	}
	return out
}

// Validate checks the structural invariants of a split result against the
// source image and criterion. It returns the first violation found.
//
// Invariants:
//  1. Every pixel is labelled with the ID of a square whose NW pixel
//     carries that same label (labels are well formed).
//  2. Squares are power-of-two sized, aligned to their size, within the
//     image, and within the cap.
//  3. Every square is homogeneous under crit.
//  4. Maximality: if the four siblings of an aligned quad-block are all
//     squares of equal size < cap, their union is not homogeneous
//     (otherwise the split would have combined them).
func Validate(r *Result, im *pixmap.Image, crit homog.Criterion) error {
	w, h := r.W, r.H
	if w != im.W || h != im.H {
		return fmt.Errorf("quadsplit: result %dx%d does not match image %dx%d", w, h, im.W, im.H)
	}
	for i, lab := range r.Labels {
		if lab < 0 || int(lab) >= w*h {
			return fmt.Errorf("quadsplit: pixel %d has out-of-range label %d", i, lab)
		}
		if r.Labels[lab] != lab {
			return fmt.Errorf("quadsplit: pixel %d labelled %d, but %d is not a region root", i, lab, lab)
		}
	}
	squares := r.Squares(im)
	bySize := make(map[[3]int]Square, len(squares)) // key: x, y, size
	area := 0
	for _, s := range squares {
		if s.Size <= 0 || s.Size&(s.Size-1) != 0 {
			return fmt.Errorf("quadsplit: square at (%d,%d) has non-power-of-two size %d", s.X, s.Y, s.Size)
		}
		if s.Size > r.MaxSquareUsed {
			return fmt.Errorf("quadsplit: square at (%d,%d) size %d exceeds cap %d", s.X, s.Y, s.Size, r.MaxSquareUsed)
		}
		if s.X%s.Size != 0 || s.Y%s.Size != 0 {
			return fmt.Errorf("quadsplit: square at (%d,%d) size %d is misaligned", s.X, s.Y, s.Size)
		}
		if s.X+s.Size > w || s.Y+s.Size > h {
			return fmt.Errorf("quadsplit: square at (%d,%d) size %d exceeds image", s.X, s.Y, s.Size)
		}
		if !crit.Homogeneous(s.IV) {
			return fmt.Errorf("quadsplit: square at (%d,%d) size %d is inhomogeneous: %v", s.X, s.Y, s.Size, s.IV)
		}
		// Check the square's pixels all carry its label.
		id := s.ID(w)
		for y := s.Y; y < s.Y+s.Size; y++ {
			for x := s.X; x < s.X+s.Size; x++ {
				if r.Labels[y*w+x] != id {
					return fmt.Errorf("quadsplit: pixel (%d,%d) not labelled by enclosing square (%d,%d,%d)", x, y, s.X, s.Y, s.Size)
				}
			}
		}
		bySize[[3]int{s.X, s.Y, s.Size}] = s
		area += s.Size * s.Size
	}
	if area != w*h {
		return fmt.Errorf("quadsplit: squares cover %d pixels, image has %d", area, w*h)
	}
	// Maximality of sibling quads.
	for _, s := range squares {
		if s.Size >= r.MaxSquareUsed {
			continue
		}
		if s.X%(2*s.Size) != 0 || s.Y%(2*s.Size) != 0 {
			continue // s is not the NW sibling
		}
		sib := [3][2]int{{s.X + s.Size, s.Y}, {s.X, s.Y + s.Size}, {s.X + s.Size, s.Y + s.Size}}
		union := s.IV
		all := true
		for _, p := range sib {
			q, ok := bySize[[3]int{p[0], p[1], s.Size}]
			if !ok {
				all = false
				break
			}
			union = union.Union(q.IV)
		}
		if all && crit.Homogeneous(union) {
			return fmt.Errorf("quadsplit: quad at (%d,%d) size %d should have been combined", s.X, s.Y, 2*s.Size)
		}
	}
	return nil
}
