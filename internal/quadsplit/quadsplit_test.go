package quadsplit

import (
	"testing"
	"testing/quick"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
)

// paperFigure1 is the 4×4 image of the paper's Figure 1, evaluated with
// threshold T=3.
func paperFigure1(t *testing.T) *pixmap.Image {
	t.Helper()
	im, err := pixmap.FromRows([][]uint8{
		{6, 7, 1, 3},
		{8, 6, 5, 4},
		{8, 8, 6, 5},
		{7, 8, 6, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestPaperFigure1(t *testing.T) {
	// Figure 1(b): after the first and final split iteration the NW, SW,
	// and SE 2×2 blocks are squares; the NE quadrant stays four 1×1
	// squares (its range 5−1=4 exceeds T=3).
	im := paperFigure1(t)
	res := Split(im, homog.NewRange(3), Options{MaxSquare: Unbounded})
	if err := Validate(res, im, homog.NewRange(3)); err != nil {
		t.Fatal(err)
	}
	if res.NumSquares != 7 {
		t.Fatalf("squares = %d, want 7 (three 2x2 + four 1x1)", res.NumSquares)
	}
	sizes := map[int]int{}
	for _, s := range res.Squares(im) {
		sizes[s.Size]++
	}
	if sizes[2] != 3 || sizes[1] != 4 {
		t.Fatalf("size histogram = %v", sizes)
	}
	// The 4×4 pass runs, combines nothing, and terminates the stage:
	// two executed iterations.
	if res.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2", res.Iterations)
	}
	// The NE quadrant pixels label themselves.
	for _, p := range [][2]int{{2, 0}, {3, 0}, {2, 1}, {3, 1}} {
		i := im.Index(p[0], p[1])
		if res.Labels[i] != int32(i) {
			t.Errorf("NE pixel (%d,%d) labelled %d, want itself", p[0], p[1], res.Labels[i])
		}
	}
}

func TestUniformImage(t *testing.T) {
	// Whole image one square: log2(N) iterations, 1 square.
	im := pixmap.Uniform(16, 9)
	res := Split(im, homog.NewRange(0), Options{MaxSquare: Unbounded})
	if res.NumSquares != 1 {
		t.Fatalf("squares = %d", res.NumSquares)
	}
	if res.Iterations != 4 {
		t.Fatalf("iterations = %d, want log2(16)=4", res.Iterations)
	}
	for _, l := range res.Labels {
		if l != 0 {
			t.Fatal("labels not all 0")
		}
	}
}

func TestCheckerboardWorstCase(t *testing.T) {
	// No 2×2 block is homogeneous: one iteration, N² squares.
	im := pixmap.Checkerboard(8, 0, 255)
	res := Split(im, homog.NewRange(10), Options{MaxSquare: Unbounded})
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", res.Iterations)
	}
	if res.NumSquares != 64 {
		t.Fatalf("squares = %d, want 64", res.NumSquares)
	}
}

func TestCapSemantics(t *testing.T) {
	im := pixmap.Uniform(64, 7)
	// Default cap is N/8 = 8 → squares of side 8, 64 of them, and
	// log2(8)=3 iterations (every pass combines, stage stops at the cap).
	res := Split(im, homog.NewRange(0), Options{})
	if res.MaxSquareUsed != 8 {
		t.Fatalf("default cap = %d, want 8", res.MaxSquareUsed)
	}
	if res.NumSquares != 64 || res.Iterations != 3 {
		t.Fatalf("squares=%d iterations=%d, want 64/3", res.NumSquares, res.Iterations)
	}
	// Explicit cap 16.
	res = Split(im, homog.NewRange(0), Options{MaxSquare: 16})
	if res.MaxSquareUsed != 16 || res.NumSquares != 16 {
		t.Fatalf("cap 16: used=%d squares=%d", res.MaxSquareUsed, res.NumSquares)
	}
	// Non-power-of-two cap rounds down.
	res = Split(im, homog.NewRange(0), Options{MaxSquare: 12})
	if res.MaxSquareUsed != 8 {
		t.Fatalf("cap 12 rounds to %d, want 8", res.MaxSquareUsed)
	}
	// Unbounded merges to the whole image.
	res = Split(im, homog.NewRange(0), Options{MaxSquare: Unbounded})
	if res.NumSquares != 1 {
		t.Fatalf("unbounded squares = %d", res.NumSquares)
	}
}

func TestEffectiveCap(t *testing.T) {
	cases := []struct {
		opt  int
		w, h int
		want int
	}{
		{0, 128, 128, 16},
		{0, 256, 256, 32},
		{0, 64, 64, 8},
		{0, 8, 8, 1},
		{Unbounded, 128, 128, 128},
		{Unbounded, 100, 100, 64},
		{4, 128, 128, 4},
		{500, 128, 128, 128},
		{0, 0, 0, 1},
	}
	for _, c := range cases {
		if got := EffectiveCap(Options{MaxSquare: c.opt}, c.w, c.h); got != c.want {
			t.Errorf("EffectiveCap(%d, %dx%d) = %d, want %d", c.opt, c.w, c.h, got, c.want)
		}
	}
}

func TestNonSquareImage(t *testing.T) {
	im := pixmap.New(24, 16) // not powers of two
	im.FillRect(0, 0, 24, 16, 5)
	res := Split(im, homog.NewRange(0), Options{MaxSquare: Unbounded})
	if err := Validate(res, im, homog.NewRange(0)); err != nil {
		t.Fatal(err)
	}
	// Largest square is 16 (fits height); 24 = 16 + 8.
	maxSize := int32(0)
	for _, s := range res.Size {
		if s > maxSize {
			maxSize = s
		}
	}
	if maxSize != 16 {
		t.Fatalf("largest square = %d, want 16", maxSize)
	}
}

func TestEmptyAndTinyImages(t *testing.T) {
	res := Split(pixmap.New(0, 0), homog.NewRange(5), Options{})
	if res.NumSquares != 0 {
		t.Fatal("empty image produced squares")
	}
	im := pixmap.Uniform(1, 3)
	res = Split(im, homog.NewRange(5), Options{MaxSquare: Unbounded})
	if res.NumSquares != 1 || res.Iterations != 1 {
		t.Fatalf("1x1 image: squares=%d iterations=%d", res.NumSquares, res.Iterations)
	}
}

func TestSplitInvariantsOnRandomImages(t *testing.T) {
	// Property test: alignment, homogeneity, maximality, full coverage on
	// adversarial inputs, checked by Validate.
	err := quick.Check(func(seed uint64, tRaw uint8, capRaw uint8) bool {
		im := pixmap.Random(32, seed)
		// Smooth the image so some structure emerges.
		for i := range im.Pix {
			im.Pix[i] &= 0x3F
		}
		tVal := int(tRaw % 70)
		capOpt := []int{0, Unbounded, 4, 16}[capRaw%4]
		res := Split(im, homog.NewRange(tVal), Options{MaxSquare: capOpt})
		return Validate(res, im, homog.NewRange(tVal)) == nil
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitDeterministic(t *testing.T) {
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	a := Split(im, homog.NewRange(10), Options{})
	b := Split(im, homog.NewRange(10), Options{})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("split is not deterministic")
		}
	}
}

func TestPaperIterationCounts(t *testing.T) {
	// The tables report 4 split iterations for every 128² image and 5 for
	// every 256² image under the default cap.
	for _, id := range pixmap.AllPaperImages() {
		im := pixmap.Generate(id, pixmap.DefaultGenOptions())
		res := Split(im, homog.NewRange(10), Options{})
		want := 4
		if id.Size() == 256 {
			want = 5
		}
		if res.Iterations != want {
			t.Errorf("%v: split iterations = %d, want %d", id, res.Iterations, want)
		}
	}
}

func TestCombinedPerIterMonotoneTermination(t *testing.T) {
	// The recorded combine counts must be positive except possibly the
	// final entry (the terminating pass).
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	res := Split(im, homog.NewRange(10), Options{MaxSquare: Unbounded})
	for i, c := range res.CombinedPerIter {
		last := i == len(res.CombinedPerIter)-1
		if c == 0 && !last {
			t.Fatalf("pass %d combined nothing but the stage continued", i+1)
		}
	}
}

func TestSquaresEnumerationMatchesLabels(t *testing.T) {
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	res := Split(im, homog.NewRange(10), Options{})
	squares := res.Squares(im)
	if len(squares) != res.NumSquares {
		t.Fatalf("Squares() returned %d, NumSquares = %d", len(squares), res.NumSquares)
	}
	area := 0
	for _, s := range squares {
		area += s.Size * s.Size
		if res.Labels[s.ID(im.W)] != s.ID(im.W) {
			t.Fatal("square origin is not a root label")
		}
	}
	if area != im.W*im.H {
		t.Fatalf("squares cover %d px of %d", area, im.W*im.H)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	crit := homog.NewRange(10)
	res := Split(im, crit, Options{})
	// Corrupt one pixel's label: points at a non-root.
	res.Labels[5000] = res.Labels[5000] + 1
	if Validate(res, im, crit) == nil {
		t.Fatal("Validate accepted corrupted labels")
	}
}
