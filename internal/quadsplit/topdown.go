package quadsplit

import (
	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
)

// SplitTopDown is the original Horowitz–Pavlidis formulation of the split
// stage: start from the largest aligned block and recursively quarter any
// block that is incomplete or inhomogeneous. It produces exactly the same
// set of maximal homogeneous squares as the paper's bottom-up combining
// pass (a block is a leaf in the recursion iff it is homogeneous and its
// parent quad is not — the same maximality condition), which the test
// suite verifies; the engines use the bottom-up form because it maps to
// data-parallel strided operations.
//
// Iterations reports the recursion depth explored below the cap plus the
// terminal level, mirroring the bottom-up pass count so the two variants
// are comparable.
func SplitTopDown(im *pixmap.Image, crit homog.Criterion, opt Options) *Result {
	w, h := im.W, im.H
	res := &Result{
		W: w, H: h,
		Labels:        make([]int32, w*h),
		Size:          make([]int32, w*h),
		MaxSquareUsed: EffectiveCap(opt, w, h),
	}
	if w == 0 || h == 0 {
		return res
	}
	s := &topDown{im: im, crit: crit, res: res}
	// Tile the image with cap-sized blocks and recurse into each.
	cap := res.MaxSquareUsed
	for y := 0; y < h; y += cap {
		for x := 0; x < w; x += cap {
			s.recurse(x, y, cap)
		}
	}
	// The bottom-up pass count equals log2(cap / smallest-split-to size)
	// + 1 when anything combined; reuse its semantics by re-deriving from
	// the produced sizes: iterations = log2(largest square) + 1 capped at
	// log2(cap), minimum 1. A pass that combined nothing still counts.
	largest := 1
	for _, sz := range res.Size {
		if int(sz) > largest {
			largest = int(sz)
		}
	}
	iters := 0
	for 1<<iters < largest {
		iters++
	}
	if largest < cap {
		iters++ // the pass that failed to combine further
	}
	if iters == 0 {
		iters = 1
	}
	res.Iterations = iters
	return res
}

type topDown struct {
	im   *pixmap.Image
	crit homog.Criterion
	res  *Result
}

// recurse claims block (x, y, size) if it is fully inside the image and
// homogeneous; otherwise it quarters. Size-1 blocks are always claimed.
func (s *topDown) recurse(x, y, size int) {
	if x >= s.im.W || y >= s.im.H {
		return
	}
	if size == 1 {
		s.claim(x, y, 1)
		return
	}
	if x+size <= s.im.W && y+size <= s.im.H {
		iv := homog.Empty()
		for yy := y; yy < y+size; yy++ {
			for xx := x; xx < x+size; xx++ {
				iv = iv.Union(homog.Point(s.im.At(xx, yy)))
			}
		}
		if s.crit.Homogeneous(iv) {
			s.claim(x, y, size)
			return
		}
	}
	half := size / 2
	s.recurse(x, y, half)
	s.recurse(x+half, y, half)
	s.recurse(x, y+half, half)
	s.recurse(x+half, y+half, half)
}

func (s *topDown) claim(x, y, size int) {
	id := int32(y*s.im.W + x)
	s.res.NumSquares++
	for yy := y; yy < y+size; yy++ {
		row := yy * s.im.W
		for xx := x; xx < x+size; xx++ {
			s.res.Labels[row+xx] = id
			s.res.Size[row+xx] = int32(size)
		}
	}
}
