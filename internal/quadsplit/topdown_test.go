package quadsplit

import (
	"testing"
	"testing/quick"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
)

func TestTopDownMatchesBottomUp(t *testing.T) {
	// The two formulations define the same maximal-square partition.
	for _, id := range []pixmap.PaperImageID{pixmap.Image1NestedRects128, pixmap.Image3Circles128} {
		im := pixmap.Generate(id, pixmap.DefaultGenOptions())
		crit := homog.NewRange(10)
		bu := Split(im, crit, Options{})
		td := SplitTopDown(im, crit, Options{})
		if bu.NumSquares != td.NumSquares {
			t.Fatalf("%v: bottom-up %d squares, top-down %d", id, bu.NumSquares, td.NumSquares)
		}
		for i := range bu.Labels {
			if bu.Labels[i] != td.Labels[i] || bu.Size[i] != td.Size[i] {
				t.Fatalf("%v: partitions differ at pixel %d", id, i)
			}
		}
		if bu.Iterations != td.Iterations {
			t.Fatalf("%v: iteration accounting differs: %d vs %d", id, bu.Iterations, td.Iterations)
		}
	}
}

func TestTopDownMatchesBottomUpProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, tRaw, capRaw uint8) bool {
		im := pixmap.Random(32, seed)
		for i := range im.Pix {
			im.Pix[i] &= 0x3F
		}
		crit := homog.NewRange(int(tRaw % 70))
		opt := Options{MaxSquare: []int{0, Unbounded, 8}[capRaw%3]}
		bu := Split(im, crit, opt)
		td := SplitTopDown(im, crit, opt)
		if bu.NumSquares != td.NumSquares {
			return false
		}
		for i := range bu.Labels {
			if bu.Labels[i] != td.Labels[i] {
				return false
			}
		}
		return Validate(td, im, crit) == nil
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTopDownNonSquareAndEmpty(t *testing.T) {
	im := pixmap.New(24, 16)
	im.FillRect(0, 0, 24, 16, 9)
	crit := homog.NewRange(0)
	bu := Split(im, crit, Options{MaxSquare: Unbounded})
	td := SplitTopDown(im, crit, Options{MaxSquare: Unbounded})
	for i := range bu.Labels {
		if bu.Labels[i] != td.Labels[i] {
			t.Fatal("non-square image partitions differ")
		}
	}
	empty := SplitTopDown(pixmap.New(0, 0), crit, Options{})
	if empty.NumSquares != 0 {
		t.Fatal("empty image produced squares")
	}
}
