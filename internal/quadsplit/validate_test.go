package quadsplit

import (
	"strings"
	"testing"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
)

// Negative-path tests for Validate: each structural invariant must be
// individually enforced.

func validBase(t *testing.T) (*Result, *pixmap.Image, homog.Criterion) {
	t.Helper()
	im := pixmap.Uniform(8, 5)
	crit := homog.NewRange(0)
	res := Split(im, crit, Options{MaxSquare: 4})
	if err := Validate(res, im, crit); err != nil {
		t.Fatalf("base result invalid: %v", err)
	}
	return res, im, crit
}

func cloneResult(r *Result) *Result {
	out := *r
	out.Labels = append([]int32{}, r.Labels...)
	out.Size = append([]int32{}, r.Size...)
	return &out
}

func TestValidateShapeMismatch(t *testing.T) {
	res, _, crit := validBase(t)
	other := pixmap.Uniform(4, 5)
	if err := Validate(res, other, crit); err == nil || !strings.Contains(err.Error(), "match") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateOutOfRangeLabel(t *testing.T) {
	res, im, crit := validBase(t)
	bad := cloneResult(res)
	bad.Labels[3] = 9999
	if err := Validate(bad, im, crit); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	bad.Labels[3] = -1
	if err := Validate(bad, im, crit); err == nil {
		t.Fatal("negative label accepted")
	}
}

func TestValidateNonRootLabel(t *testing.T) {
	res, im, crit := validBase(t)
	bad := cloneResult(res)
	// Point a pixel at a non-root pixel (one whose own label differs).
	bad.Labels[0] = 1 // pixel 1 is interior to the square rooted at 0
	if err := Validate(bad, im, crit); err == nil {
		t.Fatal("non-root label accepted")
	}
}

func TestValidateMisalignedSquare(t *testing.T) {
	res, im, crit := validBase(t)
	bad := cloneResult(res)
	// Fabricate a "square" at a misaligned origin: relabel the 4×4 block
	// at (4,0) to root at pixel (5,0) — the root pixel's label must point
	// at itself for the well-formedness check, so rewrite the block.
	root := int32(im.Index(5, 0))
	for y := 0; y < 4; y++ {
		for x := 5; x < 8; x++ {
			bad.Labels[im.Index(x, y)] = root
		}
	}
	bad.Size[root] = 2
	if err := Validate(bad, im, crit); err == nil {
		t.Fatal("misaligned/incoherent square accepted")
	}
}

func TestValidateInhomogeneousSquare(t *testing.T) {
	im := pixmap.Uniform(4, 5)
	crit := homog.NewRange(0)
	res := Split(im, crit, Options{MaxSquare: 2})
	im.Set(0, 0, 200) // corrupt the image after splitting
	if err := Validate(res, im, crit); err == nil {
		t.Fatal("inhomogeneous square accepted")
	}
}

func TestValidateMissedCombine(t *testing.T) {
	// An all-1×1 labelling of a uniform image violates maximality.
	im := pixmap.Uniform(4, 5)
	crit := homog.NewRange(0)
	res := &Result{
		W: 4, H: 4,
		Labels:        make([]int32, 16),
		Size:          make([]int32, 16),
		Iterations:    1,
		NumSquares:    16,
		MaxSquareUsed: 4,
	}
	for i := range res.Labels {
		res.Labels[i] = int32(i)
		res.Size[i] = 1
	}
	err := Validate(res, im, crit)
	if err == nil || !strings.Contains(err.Error(), "should have been combined") {
		t.Fatalf("maximality violation not caught: %v", err)
	}
}
