// Package rag implements the region adjacency graph (RAG) and the mutual
// best-neighbour merge kernel at the heart of the merge stage.
//
// The region growing problem is reformulated as a weighted undirected graph
// problem: vertices are regions, an edge joins two regions sharing a
// boundary, and the weight of edge (v,w) is the pixel range of the union of
// the two regions' intensity intervals. Only edges whose weight satisfies
// the homogeneity criterion are active. Each iteration every region picks
// its best active neighbour (minimum weight, ties broken by policy); two
// regions merge exactly when they pick each other; the smaller ID becomes
// the representative.
//
// The kernel here defines the *semantics* all three engines (sequential,
// data parallel, message passing) must agree on. Choices are pure functions
// of (graph state, policy, seed, iteration), so engines that evaluate them
// with different parallel schedules still produce identical segmentations.
package rag
