package rag

import (
	"context"
	"fmt"
	"slices"
	"strings"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/prand"
)

// TiePolicy selects how a region breaks ties among equally attractive
// neighbours.
type TiePolicy int

const (
	// SmallestID picks the tied neighbour with the smallest region ID —
	// the deterministic policy the paper shows serialises merging.
	SmallestID TiePolicy = iota
	// LargestID picks the tied neighbour with the largest region ID.
	LargestID
	// Random picks a tied neighbour pseudo-randomly — the paper's
	// improvement, yielding more merges per iteration. The draw is a pure
	// function of (seed, iteration, chooser ID) so runs are reproducible.
	Random
)

// String returns the policy name used in experiment records.
func (p TiePolicy) String() string {
	switch p {
	case SmallestID:
		return "smallest-id"
	case LargestID:
		return "largest-id"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("TiePolicy(%d)", int(p))
	}
}

// AllTiePolicies returns every valid policy in declaration order. The
// facade's enumerating error messages and round-trip tests derive from it
// so the list cannot drift from the constants.
func AllTiePolicies() []TiePolicy { return []TiePolicy{SmallestID, LargestID, Random} }

// MarshalText implements encoding.TextMarshaler with the String name, so
// JSON wire types and flag packages round-trip policies without ad-hoc
// switches. Unknown policies fail rather than emitting a name
// UnmarshalText would reject.
func (p TiePolicy) MarshalText() ([]byte, error) {
	switch p {
	case SmallestID, LargestID, Random:
		return []byte(p.String()), nil
	default:
		return nil, fmt.Errorf("rag: cannot marshal unknown tie policy %d", int(p))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler: it accepts the
// String names case-insensitively, matching the facade's ParseTiePolicy
// (which delegates here).
func (p *TiePolicy) UnmarshalText(text []byte) error {
	for _, c := range AllTiePolicies() {
		if strings.EqualFold(c.String(), string(text)) {
			*p = c
			return nil
		}
	}
	return fmt.Errorf("rag: unknown tie policy %q (want random, smallest-id, or largest-id)", text)
}

// NoChoice marks a vertex with no mergeable neighbour.
const NoChoice int32 = -1

// noSlot marks a slot with no merge choice in slot-indexed choice arrays.
const noSlot int32 = -1

// Graph is a mutable region adjacency graph stored as a flat arena:
// parallel slices indexed by a dense slot number, plus one map translating
// region IDs (the linear pixel index of a region's origin) to slots.
// Contraction never compacts the arena — a merged-away region just goes
// dead in place — so slot numbers are stable for the graph's lifetime and
// adjacency can be held as sorted []int32 slot lists instead of per-vertex
// maps. Edge weights are not stored: they are always derivable from the
// endpoint intervals, which is exactly how the engines keep them
// consistent under contraction.
//
// The layout is profile-driven: with the earlier map-of-pointers
// representation the sequential kernel spent the majority of its merge
// time in Go map iteration and hashing. The arena turns the choice scan
// into linear walks over int32 and uint8 slices.
type Graph struct {
	Crit homog.Criterion

	// thr is the RangeCriterion threshold when Crit is one, else −1. The
	// hot loops then test edge activity as weight ≤ thr with pure integer
	// arithmetic instead of an interface call per edge.
	thr int

	slotOf map[int32]int32 // live region ID → slot
	ids    []int32         // slot → region ID
	lo, hi []uint8         // slot → intensity interval bounds
	alive  []bool          // slot → not yet contracted away
	adj    [][]int32       // slot → sorted neighbour slots (live slots only)
	nAlive int

	choice []int32 // MergeIteration scratch: slot → chosen slot
	tied   []int32 // tie-list scratch
}

// NewGraph returns an empty graph over the criterion.
func NewGraph(crit homog.Criterion) *Graph {
	g := &Graph{Crit: crit, thr: -1, slotOf: make(map[int32]int32)}
	if rc, ok := crit.(homog.RangeCriterion); ok {
		g.thr = rc.T
	}
	return g
}

// AddVertex inserts a region with the given interval. Re-adding an ID
// unions the intervals (useful when assembling from partial scans).
func (g *Graph) AddVertex(id int32, iv homog.Interval) {
	if s, ok := g.slotOf[id]; ok {
		// Branch-free union: exact even against the Empty sentinel
		// {MaxIntensity, 0}, whose bounds are absorbed by min/max.
		g.lo[s] = min(g.lo[s], iv.Lo)
		g.hi[s] = max(g.hi[s], iv.Hi)
		return
	}
	s := int32(len(g.ids))
	g.slotOf[id] = s
	g.ids = append(g.ids, id)
	g.lo = append(g.lo, iv.Lo)
	g.hi = append(g.hi, iv.Hi)
	g.alive = append(g.alive, true)
	g.adj = append(g.adj, nil)
	g.nAlive++
}

// AddEdge records adjacency between regions a and b. Self-edges are
// ignored; parallel edges coalesce. Both endpoints must exist.
func (g *Graph) AddEdge(a, b int32) {
	if a == b {
		return
	}
	sa, ok := g.slotOf[a]
	if !ok {
		panic(fmt.Sprintf("rag: AddEdge endpoint %d missing", a))
	}
	sb, ok := g.slotOf[b]
	if !ok {
		panic(fmt.Sprintf("rag: AddEdge endpoint %d missing", b))
	}
	g.adj[sa] = insertSorted(g.adj[sa], sb)
	g.adj[sb] = insertSorted(g.adj[sb], sa)
}

// insertSorted adds x to a sorted slot list, keeping it sorted and
// duplicate-free.
func insertSorted(list []int32, x int32) []int32 {
	i, found := slices.BinarySearch(list, x)
	if found {
		return list
	}
	return slices.Insert(list, i, x)
}

// removeSorted deletes x from a sorted slot list if present.
func removeSorted(list []int32, x int32) []int32 {
	i, found := slices.BinarySearch(list, x)
	if !found {
		return list
	}
	return slices.Delete(list, i, i+1)
}

// NumVertices returns the current (live) vertex count.
func (g *Graph) NumVertices() int { return g.nAlive }

// NumEdges returns the current undirected edge count.
func (g *Graph) NumEdges() int {
	total := 0
	for s := range g.adj {
		total += len(g.adj[s]) // dead slots hold nil lists
	}
	return total / 2
}

// weightSlots returns the edge weight between two live slots: the pixel
// range of the union of their intervals. The min/max union is exact for
// every combination of operands (including the Empty sentinel), and the
// clamp to zero reproduces the scalar algebra's "empty interval has range
// 0" convention when both endpoints are empty.
func (g *Graph) weightSlots(a, b int32) int {
	return max(int(max(g.hi[a], g.hi[b]))-int(min(g.lo[a], g.lo[b])), 0)
}

// activeSlots reports whether the edge between two live slots satisfies
// the criterion.
func (g *Graph) activeSlots(a, b int32) bool {
	if g.thr >= 0 {
		return g.weightSlots(a, b) <= g.thr
	}
	ulo, uhi := min(g.lo[a], g.lo[b]), max(g.hi[a], g.hi[b])
	return g.Crit.Homogeneous(homog.Interval{Lo: ulo, Hi: uhi})
}

// ActiveEdges counts edges satisfying the criterion.
func (g *Graph) ActiveEdges() int {
	total := 0
	for s := range g.adj {
		for _, n := range g.adj[s] {
			if n > int32(s) && g.activeSlots(int32(s), n) {
				total++
			}
		}
	}
	return total
}

// HasActive reports whether any edge satisfies the criterion, returning at
// the first hit. Merge drivers use it as their loop condition: profiles
// showed the full ActiveEdges count rivalling the choice scan itself, and
// the drivers only ever need the boolean.
func (g *Graph) HasActive() bool {
	for s := range g.adj {
		for _, n := range g.adj[s] {
			if n > int32(s) && g.activeSlots(int32(s), n) {
				return true
			}
		}
	}
	return false
}

// Weight returns the edge weight between regions a and b: the pixel range
// of the union of their intervals. Both regions must exist.
func (g *Graph) Weight(a, b int32) int {
	return homog.Weight(g.IntervalOf(a), g.IntervalOf(b))
}

// IntervalOf returns the current intensity interval of region id, which
// must exist.
func (g *Graph) IntervalOf(id int32) homog.Interval {
	s, ok := g.slotOf[id]
	if !ok {
		panic(fmt.Sprintf("rag: IntervalOf(%d) on missing vertex", id))
	}
	return homog.Interval{Lo: g.lo[s], Hi: g.hi[s]}
}

// Contains reports whether region id is (still) in the graph.
func (g *Graph) Contains(id int32) bool {
	_, ok := g.slotOf[id]
	return ok
}

// Degree returns the number of neighbours of region id, which must exist.
func (g *Graph) Degree(id int32) int {
	s, ok := g.slotOf[id]
	if !ok {
		panic(fmt.Sprintf("rag: Degree(%d) on missing vertex", id))
	}
	return len(g.adj[s])
}

// HasEdge reports whether regions a and b are adjacent; both must exist.
func (g *Graph) HasEdge(a, b int32) bool {
	sa, ok := g.slotOf[a]
	if !ok {
		panic(fmt.Sprintf("rag: HasEdge endpoint %d missing", a))
	}
	sb, ok := g.slotOf[b]
	if !ok {
		panic(fmt.Sprintf("rag: HasEdge endpoint %d missing", b))
	}
	_, found := slices.BinarySearch(g.adj[sa], sb)
	return found
}

// Slots returns the arena size: live and dead slots together. Slot
// numbers are stable, so engines iterate 0..Slots() and filter with
// SlotAlive; the order is insertion order and identical on every run.
func (g *Graph) Slots() int { return len(g.ids) }

// SlotID returns the region ID held by slot s.
func (g *Graph) SlotID(s int) int32 { return g.ids[s] }

// SlotAlive reports whether slot s still holds a live region.
func (g *Graph) SlotAlive(s int) bool { return g.alive[s] }

// SlotInterval returns the interval of the region in slot s.
func (g *Graph) SlotInterval(s int) homog.Interval {
	return homog.Interval{Lo: g.lo[s], Hi: g.hi[s]}
}

// SlotHasActive reports whether the live region in slot s has at least one
// active incident edge.
func (g *Graph) SlotHasActive(s int) bool {
	for _, n := range g.adj[s] {
		if g.activeSlots(int32(s), n) {
			return true
		}
	}
	return false
}

// SlotChoice computes the merge choice of the live region in slot s,
// returning the chosen neighbour's slot (or −1 for no choice) plus the
// possibly-grown tie scratch. It is the slot-level form of Choose for
// engines that fan the choice scan out over workers against a read-only
// graph.
func (g *Graph) SlotChoice(s int, policy TiePolicy, seed uint64, iter int, tied []int32) (int, []int32) {
	c, tied := g.slotChoice(int32(s), policy, seed, iter, tied)
	return int(c), tied
}

// ContractSlots merges the region in slot loser into the one in slot
// keeper (both live).
func (g *Graph) ContractSlots(keeper, loser int) {
	g.contractSlots(int32(keeper), int32(loser))
}

// BuildFromLabels constructs the RAG of a labelled image: one vertex per
// label with the interval of its pixels, one edge per 4-adjacent label
// pair. This is how the merge stage receives the split stage's output.
func BuildFromLabels(im *pixmap.Image, labels []int32, crit homog.Criterion) *Graph {
	g, _ := BuildFromLabelsCtx(context.Background(), im, labels, crit)
	return g
}

// buildCheckRows is how many image rows BuildFromLabelsCtx processes
// between context checks — frequent enough that cancellation lands well
// within one stage, rare enough to keep the check off the per-pixel path.
const buildCheckRows = 64

// BuildFromLabelsCtx is BuildFromLabels with cooperative cancellation,
// checked every few rows; it returns (nil, ctx.Err()) when ctx is done.
//
// The builder is run-length: label arrays out of the split stage are long
// horizontal runs (one per square per row), so vertices accrue one
// interval union per run (via the packed SWAR row scan) instead of one
// per pixel, horizontal edges one AddEdge per run boundary, and vertical
// edges one AddEdge per overlap segment of the two rows' run structures.
// The result is identical to the per-pixel build for arbitrary labels.
func BuildFromLabelsCtx(ctx context.Context, im *pixmap.Image, labels []int32, crit homog.Criterion) (*Graph, error) {
	w, h := im.W, im.H
	if len(labels) != w*h {
		panic(fmt.Sprintf("rag: %d labels for %dx%d image", len(labels), w, h))
	}
	g := NewGraph(crit)
	for y := 0; y < h; y++ {
		if y%buildCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := labels[y*w : y*w+w]
		pix := im.Pix[y*w : y*w+w]
		for x := 0; x < w; {
			lab := row[x]
			x1 := x + 1
			for x1 < w && row[x1] == lab {
				x1++
			}
			lo, hi := homog.RowMinMax(pix[x:x1])
			g.AddVertex(lab, homog.Interval{Lo: lo, Hi: hi})
			x = x1
		}
	}
	for y := 0; y < h; y++ {
		if y%buildCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := labels[y*w : y*w+w]
		for x := 0; x+1 < w; {
			lab := row[x]
			x1 := x + 1
			for x1 < w && row[x1] == lab {
				x1++
			}
			if x1 < w {
				g.AddEdge(lab, row[x1]) // runs end exactly at label changes
			}
			x = x1
		}
		if y+1 >= h {
			continue
		}
		rowB := labels[(y+1)*w : (y+2)*w]
		for x := 0; x < w; {
			la, lb := row[x], rowB[x]
			x1 := x + 1
			for x1 < w && row[x1] == la && rowB[x1] == lb {
				x1++
			}
			if la != lb {
				g.AddEdge(la, lb)
			}
			x = x1
		}
	}
	return g, nil
}

// Absorb grafts every live vertex and edge of other into g, unioning
// intervals of IDs present in both. Engines that build partial graphs per
// image band use it to assemble the global graph; the graft order follows
// other's stable slot order, so assembly is deterministic.
func (g *Graph) Absorb(other *Graph) {
	for s, id := range other.ids {
		if !other.alive[s] {
			continue
		}
		g.AddVertex(id, homog.Interval{Lo: other.lo[s], Hi: other.hi[s]})
	}
	for s := range other.ids {
		for _, n := range other.adj[s] {
			if n > int32(s) {
				g.AddEdge(other.ids[s], other.ids[n])
			}
		}
	}
}

// Choose computes the merge choice of region id at the given iteration:
// the active neighbour with minimal edge weight, ties broken by policy.
// It returns NoChoice when the region has no active neighbour.
//
// This function is the cross-engine contract: all engines enumerate tied
// candidates as a set of IDs, PickTied sorts them ascending, and the
// Random policy selects index Hash3(seed, iter, id) mod count among them,
// so identical (seed, iter, graph) yields identical choices everywhere.
func (g *Graph) Choose(id int32, policy TiePolicy, seed uint64, iter int) int32 {
	c, _ := g.ChooseBuf(id, policy, seed, iter, nil)
	return c
}

// ChooseBuf is Choose with a caller-owned scratch slice for the tie list;
// it returns the choice and the (possibly grown) scratch so a loop over
// many vertices amortises the allocation. The returned slice holds no
// live data between calls.
func (g *Graph) ChooseBuf(id int32, policy TiePolicy, seed uint64, iter int, tied []int32) (int32, []int32) {
	s, ok := g.slotOf[id]
	if !ok {
		panic(fmt.Sprintf("rag: Choose(%d) on missing vertex", id))
	}
	c, tied := g.slotChoice(s, policy, seed, iter, tied)
	if c < 0 {
		return NoChoice, tied
	}
	return g.ids[c], tied
}

// slotChoice is the choice kernel: a linear scan of slot s's sorted
// neighbour list tracking the minimum weight. The single-best case (the
// overwhelmingly common one) never touches the tie list or the ID map —
// the winning slot rides along in sole. Weight and activity are plain
// integer min/max chains with no data dependence between neighbours, so
// the loop keeps multiple issue pipes busy.
func (g *Graph) slotChoice(s int32, policy TiePolicy, seed uint64, iter int, tied []int32) (int32, []int32) {
	adjList := g.adj[s]
	lo0, hi0 := g.lo[s], g.hi[s]
	los, his := g.lo, g.hi
	bestW := -1
	sole := noSlot
	tied = tied[:0]
	if thr := g.thr; thr >= 0 {
		for _, n := range adjList {
			wt := max(int(max(hi0, his[n]))-int(min(lo0, los[n])), 0)
			if wt > thr {
				continue
			}
			if bestW < 0 || wt < bestW {
				bestW, sole = wt, n
				tied = tied[:0]
			} else if wt == bestW {
				if sole != noSlot {
					tied = append(tied, g.ids[sole])
					sole = noSlot
				}
				tied = append(tied, g.ids[n])
			}
		}
	} else {
		for _, n := range adjList {
			ulo, uhi := min(lo0, los[n]), max(hi0, his[n])
			if !g.Crit.Homogeneous(homog.Interval{Lo: ulo, Hi: uhi}) {
				continue
			}
			wt := max(int(uhi)-int(ulo), 0)
			if bestW < 0 || wt < bestW {
				bestW, sole = wt, n
				tied = tied[:0]
			} else if wt == bestW {
				if sole != noSlot {
					tied = append(tied, g.ids[sole])
					sole = noSlot
				}
				tied = append(tied, g.ids[n])
			}
		}
	}
	if bestW < 0 {
		return noSlot, tied
	}
	if sole != noSlot {
		return sole, tied
	}
	id := PickTied(tied, policy, seed, iter, g.ids[s])
	return g.slotOf[id], tied
}

// PickTied resolves a tie among candidate neighbour IDs for chooser id.
// The slice may be reordered in place. Exported so the data-parallel and
// message-passing engines can share the exact tie semantics.
func PickTied(tied []int32, policy TiePolicy, seed uint64, iter int, id int32) int32 {
	if len(tied) == 0 {
		return NoChoice
	}
	if len(tied) == 1 {
		return tied[0]
	}
	slices.Sort(tied)
	switch policy {
	case SmallestID:
		return tied[0]
	case LargestID:
		return tied[len(tied)-1]
	case Random:
		k := prand.Hash3(seed, uint64(iter), uint64(uint32(id))) % uint64(len(tied))
		return tied[k]
	default:
		panic(fmt.Sprintf("rag: unknown tie policy %d", int(policy)))
	}
}

// MergeStats reports what the merge stage did.
type MergeStats struct {
	// Iterations is the number of choice/merge rounds executed while at
	// least one active edge existed (the paper's merge iteration count).
	Iterations int
	// MergesPerIter records region pairs merged in each iteration.
	MergesPerIter []int
	// ForcedResolutions counts iterations where the Random policy stalled
	// (no mutual pair despite active edges) three times in a row and one
	// round of SmallestID was forced to guarantee progress.
	ForcedResolutions int
}

// TotalMerges sums merges over all iterations.
func (s MergeStats) TotalMerges() int {
	total := 0
	for _, m := range s.MergesPerIter {
		total += m
	}
	return total
}

// Drive runs the merge-stage control loop shared by every engine: iterate
// while hasActive reports an active edge, forcing one SmallestID round
// whenever the Random policy stalls (no merges despite active edges) three
// times in a row so progress is guaranteed. iterate executes one round
// under the effective policy and returns the number of pairs merged.
//
// Engines differ only in *how* they evaluate an iteration (sequentially,
// on a simulated machine, or fanned out over goroutines); the loop
// semantics — iteration numbering, stall accounting, forced resolutions —
// live here so engines sharing the driver cannot drift apart. MergeAll
// (the sequential kernel) and the native shmengine run on it; dpengine
// and mpengine still inline the same loop interleaved with their
// simulated-cost accounting, with the cross-engine property tests pinning
// them to these semantics.
func Drive(policy TiePolicy, hasActive func() bool, iterate func(effective TiePolicy, iter int) int) MergeStats {
	stats, _ := DriveCtx(context.Background(), policy, hasActive, iterate)
	return stats
}

// DriveCtx is Drive with cooperative cancellation: the loop checks ctx
// before every round (including the first) and returns the stats so far
// plus ctx.Err() when the context is done — cancelling mid-merge therefore
// aborts within one iteration. A nil error means the merge ran to
// completion.
func DriveCtx(ctx context.Context, policy TiePolicy, hasActive func() bool, iterate func(effective TiePolicy, iter int) int) (MergeStats, error) {
	var stats MergeStats
	stalls := 0
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		if !hasActive() {
			return stats, nil
		}
		stats.Iterations++
		effective := policy
		if policy == Random && stalls >= 3 {
			effective = SmallestID
			stats.ForcedResolutions++
			stalls = 0
		}
		merged := iterate(effective, stats.Iterations)
		stats.MergesPerIter = append(stats.MergesPerIter, merged)
		if merged == 0 {
			stalls++
		} else {
			stalls = 0
		}
	}
}

// MergeAll runs merge iterations until no active edges remain, mutating the
// graph. It returns per-iteration statistics; the mapping from every
// original vertex ID ever merged into another to its surviving
// representative's ID is available through Find on the returned
// Assignments.
func (g *Graph) MergeAll(policy TiePolicy, seed uint64) (MergeStats, *Assignments) {
	asg := NewAssignments()
	stats := Drive(policy,
		g.HasActive,
		func(effective TiePolicy, iter int) int {
			return g.MergeIteration(effective, seed, iter, asg)
		})
	return stats, asg
}

// MergeIteration executes one round: compute all choices, merge mutual
// pairs, contract. It returns the number of pairs merged and records the
// unions in asg.
//
// The choice pass fills a slot-indexed array in stable slot order; the
// merge pass then contracts each mutual pair exactly once, from the
// endpoint with the smaller region ID. Mutual pairs are pairwise disjoint
// (every region chooses at most one partner), so contracting them as they
// are encountered is order-independent and byte-identical to collecting
// and sorting the pairs first, as the previous map-based kernel did.
func (g *Graph) MergeIteration(policy TiePolicy, seed uint64, iter int, asg *Assignments) int {
	n := len(g.ids)
	if cap(g.choice) < n {
		g.choice = make([]int32, n)
	}
	choice := g.choice[:n]
	tied := g.tied
	for s := 0; s < n; s++ {
		if !g.alive[s] {
			choice[s] = noSlot
			continue
		}
		choice[s], tied = g.slotChoice(int32(s), policy, seed, iter, tied)
	}
	g.tied = tied
	merged := 0
	for s := 0; s < n; s++ {
		c := choice[s]
		if c < 0 || int(choice[c]) != s || g.ids[s] >= g.ids[c] {
			continue
		}
		g.contractSlots(int32(s), c)
		asg.Record(g.ids[c], g.ids[s])
		merged++
	}
	return merged
}

// Contract merges vertex loser=b into keeper=a (a < b by convention: the
// region with the smaller ID becomes the representative). The keeper's
// interval becomes the union; b's neighbours are re-pointed at a; the
// self-edge is dropped; parallel edges coalesce via the sorted adjacency
// lists.
func (g *Graph) Contract(a, b int32) {
	sa, oka := g.slotOf[a]
	sb, okb := g.slotOf[b]
	if !oka || !okb {
		panic(fmt.Sprintf("rag: Contract(%d,%d) on missing vertex", a, b))
	}
	g.contractSlots(sa, sb)
}

func (g *Graph) contractSlots(sa, sb int32) {
	g.lo[sa] = min(g.lo[sa], g.lo[sb])
	g.hi[sa] = max(g.hi[sa], g.hi[sb])
	g.adj[sa] = removeSorted(g.adj[sa], sb)
	for _, n := range g.adj[sb] {
		if n == sa {
			continue
		}
		g.adj[n] = removeSorted(g.adj[n], sb)
		g.adj[n] = insertSorted(g.adj[n], sa)
		g.adj[sa] = insertSorted(g.adj[sa], n)
	}
	g.adj[sb] = nil
	g.alive[sb] = false
	g.nAlive--
	delete(g.slotOf, g.ids[sb]) // dead IDs must miss, so AddEdge/Contract still panic on them
}

// Assignments tracks, over the whole merge stage, which representative each
// original region ended up in. It is a union-find keyed by region ID.
type Assignments struct {
	parent map[int32]int32
}

// NewAssignments returns an empty assignment table.
func NewAssignments() *Assignments { return &Assignments{parent: make(map[int32]int32)} }

// Record notes that region `from` merged into representative `into`.
func (a *Assignments) Record(from, into int32) { a.parent[from] = into }

// Find returns the final representative of region id.
func (a *Assignments) Find(id int32) int32 {
	for {
		p, ok := a.parent[id]
		if !ok {
			return id
		}
		// Path compression: safe because Record only ever adds roots.
		if gp, ok := a.parent[p]; ok {
			a.parent[id] = gp
		}
		id = p
	}
}

// Relabel maps split-stage labels through the assignments, producing the
// final per-pixel segmentation labels. Split labels arrive in long
// horizontal runs, so a last-label fast path keeps most pixels off the
// cache map entirely.
func (a *Assignments) Relabel(labels []int32) []int32 {
	out := make([]int32, len(labels))
	cache := make(map[int32]int32)
	lastLab, lastRoot := NoChoice, NoChoice // labels are pixel indices, never negative
	for i, lab := range labels {
		if lab == lastLab {
			out[i] = lastRoot
			continue
		}
		r, ok := cache[lab]
		if !ok {
			r = a.Find(lab)
			cache[lab] = r
		}
		out[i] = r
		lastLab, lastRoot = lab, r
	}
	return out
}
