package rag

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/prand"
)

// TiePolicy selects how a region breaks ties among equally attractive
// neighbours.
type TiePolicy int

const (
	// SmallestID picks the tied neighbour with the smallest region ID —
	// the deterministic policy the paper shows serialises merging.
	SmallestID TiePolicy = iota
	// LargestID picks the tied neighbour with the largest region ID.
	LargestID
	// Random picks a tied neighbour pseudo-randomly — the paper's
	// improvement, yielding more merges per iteration. The draw is a pure
	// function of (seed, iteration, chooser ID) so runs are reproducible.
	Random
)

// String returns the policy name used in experiment records.
func (p TiePolicy) String() string {
	switch p {
	case SmallestID:
		return "smallest-id"
	case LargestID:
		return "largest-id"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("TiePolicy(%d)", int(p))
	}
}

// MarshalText implements encoding.TextMarshaler with the String name, so
// JSON wire types and flag packages round-trip policies without ad-hoc
// switches. Unknown policies fail rather than emitting a name
// UnmarshalText would reject.
func (p TiePolicy) MarshalText() ([]byte, error) {
	switch p {
	case SmallestID, LargestID, Random:
		return []byte(p.String()), nil
	default:
		return nil, fmt.Errorf("rag: cannot marshal unknown tie policy %d", int(p))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler: it accepts the
// String names case-insensitively, matching the facade's ParseTiePolicy
// (which delegates here).
func (p *TiePolicy) UnmarshalText(text []byte) error {
	for _, c := range []TiePolicy{SmallestID, LargestID, Random} {
		if strings.EqualFold(c.String(), string(text)) {
			*p = c
			return nil
		}
	}
	return fmt.Errorf("rag: unknown tie policy %q (want random, smallest-id, or largest-id)", text)
}

// NoChoice marks a vertex with no mergeable neighbour.
const NoChoice int32 = -1

// Vertex is one region in the graph.
type Vertex struct {
	ID  int32
	IV  homog.Interval
	Adj map[int32]struct{}
}

// Graph is a mutable region adjacency graph. Vertices are keyed by region
// ID (the linear pixel index of the region's origin). Edge weights are not
// stored: they are always derivable from the endpoint intervals, which is
// exactly how the engines keep them consistent under contraction.
type Graph struct {
	Crit  homog.Criterion
	Verts map[int32]*Vertex
}

// NewGraph returns an empty graph over the criterion.
func NewGraph(crit homog.Criterion) *Graph {
	return &Graph{Crit: crit, Verts: make(map[int32]*Vertex)}
}

// AddVertex inserts a region with the given interval. Re-adding an ID
// unions the intervals (useful when assembling from partial scans).
func (g *Graph) AddVertex(id int32, iv homog.Interval) *Vertex {
	v, ok := g.Verts[id]
	if !ok {
		v = &Vertex{ID: id, IV: iv, Adj: make(map[int32]struct{})}
		g.Verts[id] = v
		return v
	}
	v.IV = v.IV.Union(iv)
	return v
}

// AddEdge records adjacency between regions a and b. Self-edges are
// ignored. Both endpoints must exist.
func (g *Graph) AddEdge(a, b int32) {
	if a == b {
		return
	}
	va, ok := g.Verts[a]
	if !ok {
		panic(fmt.Sprintf("rag: AddEdge endpoint %d missing", a))
	}
	vb, ok := g.Verts[b]
	if !ok {
		panic(fmt.Sprintf("rag: AddEdge endpoint %d missing", b))
	}
	va.Adj[b] = struct{}{}
	vb.Adj[a] = struct{}{}
}

// NumVertices returns the current vertex count.
func (g *Graph) NumVertices() int { return len(g.Verts) }

// NumEdges returns the current undirected edge count.
func (g *Graph) NumEdges() int {
	total := 0
	//vet:ordered sum reduction commutes across iteration orders
	for _, v := range g.Verts {
		total += len(v.Adj)
	}
	return total / 2
}

// ActiveEdges counts edges satisfying the criterion.
func (g *Graph) ActiveEdges() int {
	total := 0
	//vet:ordered count reduction commutes across iteration orders
	for _, v := range g.Verts {
		//vet:ordered count reduction commutes across iteration orders
		for w := range v.Adj {
			if g.Crit.Homogeneous(v.IV.Union(g.Verts[w].IV)) {
				total++
			}
		}
	}
	return total / 2
}

// Weight returns the edge weight between vertices a and b: the pixel range
// of the union of their intervals.
func (g *Graph) Weight(a, b *Vertex) int { return homog.Weight(a.IV, b.IV) }

// BuildFromLabels constructs the RAG of a labelled image: one vertex per
// label with the interval of its pixels, one edge per 4-adjacent label
// pair. This is how the merge stage receives the split stage's output.
func BuildFromLabels(im *pixmap.Image, labels []int32, crit homog.Criterion) *Graph {
	g, _ := BuildFromLabelsCtx(context.Background(), im, labels, crit)
	return g
}

// buildCheckRows is how many image rows BuildFromLabelsCtx processes
// between context checks — frequent enough that cancellation lands well
// within one stage, rare enough to keep the check off the per-pixel path.
const buildCheckRows = 64

// BuildFromLabelsCtx is BuildFromLabels with cooperative cancellation,
// checked every few rows; it returns (nil, ctx.Err()) when ctx is done.
func BuildFromLabelsCtx(ctx context.Context, im *pixmap.Image, labels []int32, crit homog.Criterion) (*Graph, error) {
	if len(labels) != im.W*im.H {
		panic(fmt.Sprintf("rag: %d labels for %dx%d image", len(labels), im.W, im.H))
	}
	g := NewGraph(crit)
	for y := 0; y < im.H; y++ {
		if y%buildCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		row := y * im.W
		for x := 0; x < im.W; x++ {
			i := row + x
			g.AddVertex(labels[i], homog.Point(im.Pix[i]))
		}
	}
	for y := 0; y < im.H; y++ {
		if y%buildCheckRows == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		for x := 0; x < im.W; x++ {
			i := y*im.W + x
			if x+1 < im.W && labels[i] != labels[i+1] {
				g.AddEdge(labels[i], labels[i+1])
			}
			if y+1 < im.H && labels[i] != labels[i+im.W] {
				g.AddEdge(labels[i], labels[i+im.W])
			}
		}
	}
	return g, nil
}

// Choose computes the merge choice of vertex v at the given iteration:
// the active neighbour with minimal edge weight, ties broken by policy.
// It returns NoChoice when v has no active neighbour.
//
// This function is the cross-engine contract: all engines enumerate tied
// candidates in ascending ID order and the Random policy selects index
// Hash3(seed, iter, id) mod count among them, so identical (seed, iter,
// graph) yields identical choices everywhere.
func (g *Graph) Choose(v *Vertex, policy TiePolicy, seed uint64, iter int) int32 {
	c, _ := g.ChooseBuf(v, policy, seed, iter, nil)
	return c
}

// ChooseBuf is Choose with a caller-owned scratch slice for the tie list;
// it returns the choice and the (possibly grown) scratch so a loop over
// many vertices amortises the allocation. The returned slice holds no
// live data between calls.
func (g *Graph) ChooseBuf(v *Vertex, policy TiePolicy, seed uint64, iter int, tied []int32) (int32, []int32) {
	bestW := -1
	tied = tied[:0]
	//vet:ordered min-reduction; the tie list is sorted inside PickTied before any order-dependent use
	for wid := range v.Adj {
		w := g.Verts[wid]
		wt := g.Weight(v, w)
		if !g.Crit.Homogeneous(v.IV.Union(w.IV)) {
			continue
		}
		switch {
		case bestW < 0 || wt < bestW:
			bestW = wt
			tied = tied[:0]
			tied = append(tied, wid)
		case wt == bestW:
			tied = append(tied, wid)
		}
	}
	if bestW < 0 {
		return NoChoice, tied
	}
	return PickTied(tied, policy, seed, iter, v.ID), tied
}

// PickTied resolves a tie among candidate neighbour IDs for chooser id.
// The slice may be reordered in place. Exported so the data-parallel and
// message-passing engines can share the exact tie semantics.
func PickTied(tied []int32, policy TiePolicy, seed uint64, iter int, id int32) int32 {
	if len(tied) == 0 {
		return NoChoice
	}
	if len(tied) == 1 {
		return tied[0]
	}
	slices.Sort(tied)
	switch policy {
	case SmallestID:
		return tied[0]
	case LargestID:
		return tied[len(tied)-1]
	case Random:
		k := prand.Hash3(seed, uint64(iter), uint64(uint32(id))) % uint64(len(tied))
		return tied[k]
	default:
		panic(fmt.Sprintf("rag: unknown tie policy %d", int(policy)))
	}
}

// MergeStats reports what the merge stage did.
type MergeStats struct {
	// Iterations is the number of choice/merge rounds executed while at
	// least one active edge existed (the paper's merge iteration count).
	Iterations int
	// MergesPerIter records region pairs merged in each iteration.
	MergesPerIter []int
	// ForcedResolutions counts iterations where the Random policy stalled
	// (no mutual pair despite active edges) three times in a row and one
	// round of SmallestID was forced to guarantee progress.
	ForcedResolutions int
}

// TotalMerges sums merges over all iterations.
func (s MergeStats) TotalMerges() int {
	total := 0
	for _, m := range s.MergesPerIter {
		total += m
	}
	return total
}

// Drive runs the merge-stage control loop shared by every engine: iterate
// while hasActive reports an active edge, forcing one SmallestID round
// whenever the Random policy stalls (no merges despite active edges) three
// times in a row so progress is guaranteed. iterate executes one round
// under the effective policy and returns the number of pairs merged.
//
// Engines differ only in *how* they evaluate an iteration (sequentially,
// on a simulated machine, or fanned out over goroutines); the loop
// semantics — iteration numbering, stall accounting, forced resolutions —
// live here so engines sharing the driver cannot drift apart. MergeAll
// (the sequential kernel) and the native shmengine run on it; dpengine
// and mpengine still inline the same loop interleaved with their
// simulated-cost accounting, with the cross-engine property tests pinning
// them to these semantics.
func Drive(policy TiePolicy, hasActive func() bool, iterate func(effective TiePolicy, iter int) int) MergeStats {
	stats, _ := DriveCtx(context.Background(), policy, hasActive, iterate)
	return stats
}

// DriveCtx is Drive with cooperative cancellation: the loop checks ctx
// before every round (including the first) and returns the stats so far
// plus ctx.Err() when the context is done — cancelling mid-merge therefore
// aborts within one iteration. A nil error means the merge ran to
// completion.
func DriveCtx(ctx context.Context, policy TiePolicy, hasActive func() bool, iterate func(effective TiePolicy, iter int) int) (MergeStats, error) {
	var stats MergeStats
	stalls := 0
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		if !hasActive() {
			return stats, nil
		}
		stats.Iterations++
		effective := policy
		if policy == Random && stalls >= 3 {
			effective = SmallestID
			stats.ForcedResolutions++
			stalls = 0
		}
		merged := iterate(effective, stats.Iterations)
		stats.MergesPerIter = append(stats.MergesPerIter, merged)
		if merged == 0 {
			stalls++
		} else {
			stalls = 0
		}
	}
}

// MergeAll runs merge iterations until no active edges remain, mutating the
// graph. It returns per-iteration statistics and a map from every original
// vertex ID ever merged into another to its surviving representative's ID
// is available through Find on the returned Assignments.
func (g *Graph) MergeAll(policy TiePolicy, seed uint64) (MergeStats, *Assignments) {
	asg := NewAssignments()
	stats := Drive(policy,
		func() bool { return g.ActiveEdges() > 0 },
		func(effective TiePolicy, iter int) int {
			return g.MergeIteration(effective, seed, iter, asg)
		})
	return stats, asg
}

// MergeIteration executes one round: compute all choices, merge mutual
// pairs, contract. It returns the number of pairs merged and records the
// unions in asg.
func (g *Graph) MergeIteration(policy TiePolicy, seed uint64, iter int, asg *Assignments) int {
	choice := make(map[int32]int32, len(g.Verts))
	var tied []int32
	//vet:ordered keyed writes into the choice map commute; the tie scratch is reset per call and sorted inside PickTied
	for id, v := range g.Verts {
		var c int32
		c, tied = g.ChooseBuf(v, policy, seed, iter, tied)
		if c != NoChoice {
			choice[id] = c
		}
	}
	// Mutual pairs; process each once via the smaller endpoint.
	var pairs [][2]int32
	for v, w := range choice {
		if v < w && choice[w] == v {
			pairs = append(pairs, [2]int32{v, w})
		}
	}
	// Deterministic order: contraction below is order-independent for
	// disjoint pairs, but a stable order keeps diagnostics reproducible.
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	for _, p := range pairs {
		g.Contract(p[0], p[1])
		asg.Record(p[1], p[0])
	}
	return len(pairs)
}

// Contract merges vertex loser=b into keeper=a (a < b by convention: the
// region with the smaller ID becomes the representative). The keeper's
// interval becomes the union; b's neighbours are re-pointed at a; the
// self-edge is dropped; parallel edges coalesce via the adjacency sets.
func (g *Graph) Contract(a, b int32) {
	va, vb := g.Verts[a], g.Verts[b]
	if va == nil || vb == nil {
		panic(fmt.Sprintf("rag: Contract(%d,%d) on missing vertex", a, b))
	}
	va.IV = va.IV.Union(vb.IV)
	delete(va.Adj, b)
	//vet:ordered keyed set edits on the adjacency maps commute
	for n := range vb.Adj {
		if n == a {
			continue
		}
		vn := g.Verts[n]
		delete(vn.Adj, b)
		vn.Adj[a] = struct{}{}
		va.Adj[n] = struct{}{}
	}
	delete(g.Verts, b)
}

// Assignments tracks, over the whole merge stage, which representative each
// original region ended up in. It is a union-find keyed by region ID.
type Assignments struct {
	parent map[int32]int32
}

// NewAssignments returns an empty assignment table.
func NewAssignments() *Assignments { return &Assignments{parent: make(map[int32]int32)} }

// Record notes that region `from` merged into representative `into`.
func (a *Assignments) Record(from, into int32) { a.parent[from] = into }

// Find returns the final representative of region id.
func (a *Assignments) Find(id int32) int32 {
	for {
		p, ok := a.parent[id]
		if !ok {
			return id
		}
		// Path compression: safe because Record only ever adds roots.
		if gp, ok := a.parent[p]; ok {
			a.parent[id] = gp
		}
		id = p
	}
}

// Relabel maps split-stage labels through the assignments, producing the
// final per-pixel segmentation labels.
func (a *Assignments) Relabel(labels []int32) []int32 {
	out := make([]int32, len(labels))
	cache := make(map[int32]int32)
	for i, lab := range labels {
		r, ok := cache[lab]
		if !ok {
			r = a.Find(lab)
			cache[lab] = r
		}
		out[i] = r
	}
	return out
}
