package rag

import (
	"testing"
	"testing/quick"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
)

func crit(t int) homog.Criterion { return homog.NewRange(t) }

func TestBuildFromLabelsSmall(t *testing.T) {
	// 2×2 image, two vertical stripes.
	im, _ := pixmap.FromRows([][]uint8{
		{10, 200},
		{12, 201},
	})
	labels := []int32{0, 1, 0, 1}
	g := BuildFromLabels(im, labels, crit(5))
	if g.NumVertices() != 2 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	iv0 := g.IntervalOf(0)
	if iv0.Lo != 10 || iv0.Hi != 12 {
		t.Fatalf("vertex 0 interval %v", iv0)
	}
	if g.Weight(0, 1) != 191 {
		t.Fatalf("weight = %d", g.Weight(0, 1))
	}
	if g.ActiveEdges() != 0 {
		t.Fatal("inhomogeneous edge counted active")
	}
}

func TestAddEdgeSelfIgnored(t *testing.T) {
	g := NewGraph(crit(5))
	g.AddVertex(1, homog.Point(5))
	g.AddEdge(1, 1)
	if g.NumEdges() != 0 {
		t.Fatal("self edge recorded")
	}
}

func TestAddEdgePanicsOnMissingVertex(t *testing.T) {
	g := NewGraph(crit(5))
	g.AddVertex(1, homog.Point(5))
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge with missing endpoint did not panic")
		}
	}()
	g.AddEdge(1, 2)
}

func TestChooseMinWeight(t *testing.T) {
	g := NewGraph(crit(100))
	g.AddVertex(0, homog.Interval{Lo: 50, Hi: 50})
	g.AddVertex(1, homog.Interval{Lo: 60, Hi: 60}) // weight 10
	g.AddVertex(2, homog.Interval{Lo: 55, Hi: 55}) // weight 5
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	if c := g.Choose(0, SmallestID, 0, 1); c != 2 {
		t.Fatalf("choice = %d, want 2 (lowest weight)", c)
	}
}

func TestChooseRespectsCriterion(t *testing.T) {
	g := NewGraph(crit(3))
	g.AddVertex(0, homog.Interval{Lo: 50, Hi: 50})
	g.AddVertex(1, homog.Interval{Lo: 60, Hi: 60})
	g.AddEdge(0, 1)
	if c := g.Choose(0, SmallestID, 0, 1); c != NoChoice {
		t.Fatalf("choice = %d, want NoChoice", c)
	}
}

func TestPickTiedPolicies(t *testing.T) {
	tied := []int32{30, 10, 20}
	if PickTied(append([]int32{}, tied...), SmallestID, 0, 1, 5) != 10 {
		t.Fatal("SmallestID wrong")
	}
	if PickTied(append([]int32{}, tied...), LargestID, 0, 1, 5) != 30 {
		t.Fatal("LargestID wrong")
	}
	got := PickTied(append([]int32{}, tied...), Random, 7, 3, 5)
	if got != 10 && got != 20 && got != 30 {
		t.Fatalf("Random picked non-candidate %d", got)
	}
	// Random is a pure function of (seed, iter, id).
	again := PickTied(append([]int32{}, tied...), Random, 7, 3, 5)
	if got != again {
		t.Fatal("Random tie pick is not deterministic")
	}
	if PickTied(nil, Random, 1, 1, 1) != NoChoice {
		t.Fatal("empty tie set should yield NoChoice")
	}
	if PickTied([]int32{42}, Random, 1, 1, 1) != 42 {
		t.Fatal("singleton tie set wrong")
	}
}

func TestPickTiedRandomVaries(t *testing.T) {
	// Across iterations or choosers, the draw should not be constant.
	tied := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	seen := map[int32]bool{}
	for iter := 1; iter <= 32; iter++ {
		seen[PickTied(append([]int32{}, tied...), Random, 9, iter, 77)] = true
	}
	if len(seen) < 3 {
		t.Fatalf("Random draws hit only %d distinct candidates over 32 iterations", len(seen))
	}
}

func TestContract(t *testing.T) {
	g := NewGraph(crit(100))
	g.AddVertex(0, homog.Interval{Lo: 10, Hi: 20})
	g.AddVertex(1, homog.Interval{Lo: 30, Hi: 40})
	g.AddVertex(2, homog.Interval{Lo: 50, Hi: 60})
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.Contract(0, 1)
	if g.NumVertices() != 2 {
		t.Fatalf("vertices after contract = %d", g.NumVertices())
	}
	iv0 := g.IntervalOf(0)
	if iv0.Lo != 10 || iv0.Hi != 40 {
		t.Fatalf("merged interval %v", iv0)
	}
	if !g.HasEdge(0, 2) {
		t.Fatal("neighbour of loser not inherited")
	}
	if g.Contains(1) {
		t.Fatal("loser still present")
	}
	if g.Degree(2) != 1 {
		t.Fatalf("third party degree = %d, want 1 (still points at loser?)", g.Degree(2))
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges after contract = %d (parallel edge not coalesced?)", g.NumEdges())
	}
}

// buildStripes builds a 1×n image of n distinct single-pixel regions with
// values chosen so everything can merge under T.
func stripesGraph(vals []uint8, t int) *Graph {
	im := pixmap.New(len(vals), 1)
	copy(im.Pix, vals)
	labels := make([]int32, len(vals))
	for i := range labels {
		labels[i] = int32(i)
	}
	return BuildFromLabels(im, labels, crit(t))
}

func TestMergeAllChain(t *testing.T) {
	// Four pixels of equal value merge to one region; the exact pairing
	// per iteration depends on tie policy but the result does not.
	for _, policy := range []TiePolicy{SmallestID, LargestID, Random} {
		g := stripesGraph([]uint8{5, 5, 5, 5}, 0)
		stats, asg := g.MergeAll(policy, 3)
		if g.NumVertices() != 1 {
			t.Fatalf("%v: vertices = %d, want 1", policy, g.NumVertices())
		}
		if stats.TotalMerges() != 3 {
			t.Fatalf("%v: merges = %d, want 3", policy, stats.TotalMerges())
		}
		for i := int32(0); i < 4; i++ {
			if asg.Find(i) != 0 {
				t.Fatalf("%v: Find(%d) = %d, want 0", policy, i, asg.Find(i))
			}
		}
	}
}

func TestMergeAllRespectsThreshold(t *testing.T) {
	// 1×4 with values 0, 10, 20, 30 and T=10: chain merges would create
	// ranges over 10, so merging is limited.
	g := stripesGraph([]uint8{0, 10, 20, 30}, 10)
	g.MergeAll(SmallestID, 0)
	// Whatever merged, every surviving vertex is homogeneous and no
	// active edge remains.
	for s := 0; s < g.Slots(); s++ {
		if !g.SlotAlive(s) {
			continue
		}
		if iv := g.SlotInterval(s); iv.Range() > 10 {
			t.Fatalf("vertex %d has range %d", g.SlotID(s), iv.Range())
		}
	}
	if g.ActiveEdges() != 0 {
		t.Fatal("active edges remain after MergeAll")
	}
}

func TestMergeIterationMutualOnly(t *testing.T) {
	// Values 0, 4, 8 with T=8: middle vertex prefers either side (ties at
	// weight 4... actually weight(0,4)=4, weight(4,8)=4: tie). Ends prefer
	// middle. With SmallestID, middle (id 1) picks id 0; id 0 picks id 1:
	// merge (0,1). Vertex 2 picks 1 but 1 picked 0: no merge for 2.
	g := stripesGraph([]uint8{0, 4, 8}, 8)
	asg := NewAssignments()
	merged := g.MergeIteration(SmallestID, 0, 1, asg)
	if merged != 1 {
		t.Fatalf("merged = %d, want 1", merged)
	}
	if !g.Contains(0) {
		t.Fatal("vertex 0 should survive as representative")
	}
	if g.Contains(1) {
		t.Fatal("vertex 1 should be absorbed")
	}
}

func TestMergeTermination(t *testing.T) {
	// Random tie policy on a clique of equal values must terminate.
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := 2 + int(nRaw%16)
		vals := make([]uint8, n)
		for i := range vals {
			vals[i] = 100
		}
		g := stripesGraph(vals, 0)
		stats, _ := g.MergeAll(Random, seed)
		return g.NumVertices() == 1 && stats.Iterations <= n*4+12
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergePostconditions(t *testing.T) {
	// Property: after MergeAll on any random image's pixel graph, no
	// adjacent pair of surviving vertices can merge.
	err := quick.Check(func(seed uint64, tRaw uint8, policyRaw uint8) bool {
		im := pixmap.Random(12, seed)
		for i := range im.Pix {
			im.Pix[i] &= 0x1F
		}
		tVal := int(tRaw % 40)
		policy := []TiePolicy{SmallestID, LargestID, Random}[policyRaw%3]
		labels := make([]int32, 144)
		for i := range labels {
			labels[i] = int32(i)
		}
		g := BuildFromLabels(im, labels, crit(tVal))
		g.MergeAll(policy, seed)
		if g.ActiveEdges() != 0 {
			return false
		}
		for s := 0; s < g.Slots(); s++ {
			if g.SlotAlive(s) && g.SlotInterval(s).Range() > tVal {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentsRelabel(t *testing.T) {
	asg := NewAssignments()
	asg.Record(3, 1)
	asg.Record(1, 0)
	asg.Record(7, 5)
	labels := []int32{0, 1, 2, 3, 5, 7}
	out := asg.Relabel(labels)
	want := []int32{0, 0, 2, 0, 5, 5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Relabel = %v, want %v", out, want)
		}
	}
}

func TestAssignmentsFindChains(t *testing.T) {
	asg := NewAssignments()
	// Chain 5 -> 4 -> 3 -> 0 built over several "iterations".
	asg.Record(5, 4)
	asg.Record(4, 3)
	asg.Record(3, 0)
	if asg.Find(5) != 0 || asg.Find(4) != 0 || asg.Find(3) != 0 || asg.Find(0) != 0 {
		t.Fatal("chain resolution wrong")
	}
	if asg.Find(99) != 99 {
		t.Fatal("unmerged id should map to itself")
	}
}

func TestTiePolicyString(t *testing.T) {
	if SmallestID.String() != "smallest-id" || LargestID.String() != "largest-id" || Random.String() != "random" {
		t.Fatal("policy names wrong")
	}
	if TiePolicy(9).String() == "" {
		t.Fatal("unknown policy should format")
	}
}

func TestSmallestIDNeverStalls(t *testing.T) {
	// Deterministic policies merge at least one pair whenever active
	// edges exist: the globally minimal (weight, ids) edge is mutual.
	err := quick.Check(func(seed uint64) bool {
		im := pixmap.Random(8, seed)
		for i := range im.Pix {
			im.Pix[i] &= 0x0F
		}
		labels := make([]int32, 64)
		for i := range labels {
			labels[i] = int32(i)
		}
		g := BuildFromLabels(im, labels, crit(10))
		asg := NewAssignments()
		for iter := 1; g.ActiveEdges() > 0; iter++ {
			if merged := g.MergeIteration(SmallestID, 0, iter, asg); merged == 0 {
				return false
			}
			if iter > 200 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
