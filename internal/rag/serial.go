package rag

import (
	"context"
)

// MergeSerial is the sequential baseline the paper's complexity section
// bounds against: it merges exactly one region pair per iteration — the
// globally best active edge — so a region built from R squares needs R−1
// iterations, versus log R in the best parallel case. The benchmark
// harness uses it to quantify how much parallel mutual merging buys.
//
// The "best" edge is the active edge minimising (weight, smaller ID,
// larger ID), making the baseline deterministic. It returns the same
// style of statistics and assignments as MergeAll so results remain
// comparable; the final segmentation is always valid but may differ from
// the mutual-merge segmentation when merge order affects attainable
// unions.
func (g *Graph) MergeSerial() (MergeStats, *Assignments) {
	stats, asg, _ := g.MergeSerialCtx(context.Background())
	return stats, asg
}

// MergeSerialCtx is MergeSerial with cooperative cancellation, checked
// before every one-merge iteration.
func (g *Graph) MergeSerialCtx(ctx context.Context) (MergeStats, *Assignments, error) {
	var stats MergeStats
	asg := NewAssignments()
	for {
		if err := ctx.Err(); err != nil {
			return stats, asg, err
		}
		a, b, found := g.bestActiveEdge()
		if !found {
			break
		}
		stats.Iterations++
		g.Contract(a, b)
		asg.Record(b, a)
		stats.MergesPerIter = append(stats.MergesPerIter, 1)
	}
	return stats, asg, nil
}

// bestActiveEdge scans for the active edge minimising (weight, min ID,
// max ID). The scan walks the arena in slot order; the tie-break is a
// total order over edges, so any visitation order yields the same winner.
func (g *Graph) bestActiveEdge() (a, b int32, found bool) {
	bestW := -1
	for s := range g.adj {
		for _, n := range g.adj[s] {
			if n < int32(s) {
				continue // visit each undirected edge once
			}
			if !g.activeSlots(int32(s), n) {
				continue
			}
			wt := g.weightSlots(int32(s), n)
			v, w := g.ids[s], g.ids[n]
			if v > w {
				v, w = w, v
			}
			if !found || wt < bestW || (wt == bestW && less(v, w, a, b)) {
				bestW, a, b, found = wt, v, w, true
			}
		}
	}
	return a, b, found
}

// less orders edge (v,w) before edge (a,b) lexicographically.
func less(v, w, a, b int32) bool {
	if v != a {
		return v < a
	}
	return w < b
}
