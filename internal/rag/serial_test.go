package rag

import (
	"testing"
	"testing/quick"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
)

func TestMergeSerialChain(t *testing.T) {
	// R equal squares merge in exactly R−1 iterations — the paper's
	// worst-case bound, which for the serial baseline is also the best
	// case.
	for _, n := range []int{2, 5, 9} {
		vals := make([]uint8, n)
		for i := range vals {
			vals[i] = 7
		}
		g := stripesGraph(vals, 0)
		stats, asg := g.MergeSerial()
		if stats.Iterations != n-1 {
			t.Fatalf("n=%d: iterations = %d, want %d", n, stats.Iterations, n-1)
		}
		if g.NumVertices() != 1 {
			t.Fatalf("n=%d: %d vertices remain", n, g.NumVertices())
		}
		for i := 0; i < n; i++ {
			if asg.Find(int32(i)) != 0 {
				t.Fatalf("n=%d: Find(%d) = %d", n, i, asg.Find(int32(i)))
			}
		}
	}
}

func TestMergeSerialPostconditions(t *testing.T) {
	err := quick.Check(func(seed uint64, tRaw uint8) bool {
		im := pixmap.Random(10, seed)
		for i := range im.Pix {
			im.Pix[i] &= 0x1F
		}
		tVal := int(tRaw % 40)
		labels := make([]int32, 100)
		for i := range labels {
			labels[i] = int32(i)
		}
		g := BuildFromLabels(im, labels, crit(tVal))
		stats, _ := g.MergeSerial()
		if g.ActiveEdges() != 0 {
			return false
		}
		for _, m := range stats.MergesPerIter {
			if m != 1 {
				return false // serial means exactly one per iteration
			}
		}
		for s := 0; s < g.Slots(); s++ {
			if g.SlotAlive(s) && g.SlotInterval(s).Range() > tVal {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMergeSerialDeterministic(t *testing.T) {
	im := pixmap.Random(12, 7)
	for i := range im.Pix {
		im.Pix[i] &= 0x1F
	}
	labels := make([]int32, 144)
	for i := range labels {
		labels[i] = int32(i)
	}
	run := func() []int32 {
		g := BuildFromLabels(im, labels, crit(12))
		_, asg := g.MergeSerial()
		return asg.Relabel(labels)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("serial merge is not deterministic")
		}
	}
}

func TestMergeSerialNeedsManyMoreIterations(t *testing.T) {
	// The point of the baseline: on a realistic input it needs roughly
	// R−Rt iterations while mutual merging needs closer to log R.
	im := pixmap.New(32, 32)
	im.FillRect(0, 0, 32, 32, 20)
	im.FillRect(5, 5, 27, 27, 90)
	labelsOf := func() ([]int32, *Graph) {
		labels := make([]int32, len(im.Pix))
		for i := range labels {
			labels[i] = int32(i)
		}
		return labels, BuildFromLabels(im, labels, homog.NewRange(10))
	}
	_, gSerial := labelsOf()
	serial, _ := gSerial.MergeSerial()
	_, gPar := labelsOf()
	parallel, _ := gPar.MergeAll(Random, 1)
	if serial.Iterations <= parallel.Iterations*5 {
		t.Fatalf("serial %d iterations vs parallel %d: expected a large gap",
			serial.Iterations, parallel.Iterations)
	}
	if serial.TotalMerges() != parallel.TotalMerges() {
		t.Fatalf("total merges differ: %d vs %d (both should reach the same region count)",
			serial.TotalMerges(), parallel.TotalMerges())
	}
}

func TestMergeSerialEmptyGraph(t *testing.T) {
	g := NewGraph(crit(5))
	stats, _ := g.MergeSerial()
	if stats.Iterations != 0 {
		t.Fatal("empty graph merged")
	}
}
