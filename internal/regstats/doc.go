// Package regstats computes per-region statistics of a completed
// segmentation — areas, bounding boxes, centroids, mean intensities,
// perimeters, and the final region adjacency relation — and exports them
// as JSON or as a Graphviz DOT rendering of the final region adjacency
// graph.
package regstats
