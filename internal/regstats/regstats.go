package regstats

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
)

// Region summarises one final region.
type Region struct {
	// ID is the region label (linear index of its first pixel).
	ID int32 `json:"id"`
	// Area is the pixel count.
	Area int `json:"area"`
	// BBox is the bounding box [x0, y0, x1, y1), half-open.
	BBox [4]int `json:"bbox"`
	// CentroidX, CentroidY locate the mean pixel position.
	CentroidX float64 `json:"centroidX"`
	CentroidY float64 `json:"centroidY"`
	// Mean is the mean intensity.
	Mean float64 `json:"mean"`
	// Lo and Hi bound the region's intensities (the merge interval).
	Lo uint8 `json:"lo"`
	Hi uint8 `json:"hi"`
	// Perimeter counts pixel edges adjacent to another region or the
	// image border.
	Perimeter int `json:"perimeter"`
	// Neighbors lists adjacent region IDs in ascending order.
	Neighbors []int32 `json:"neighbors"`
}

// IV returns the region's intensity interval.
func (r *Region) IV() homog.Interval { return homog.Interval{Lo: r.Lo, Hi: r.Hi} }

// Compute derives the statistics of every region of a labelled image,
// returned in ascending ID order. It panics if labels does not match the
// image geometry.
func Compute(im *pixmap.Image, labels []int32) []Region {
	if len(labels) != im.W*im.H {
		panic(fmt.Sprintf("regstats: %d labels for %dx%d image", len(labels), im.W, im.H))
	}
	acc := make(map[int32]*Region)
	sumX := make(map[int32]int64)
	sumY := make(map[int32]int64)
	sumV := make(map[int32]int64)
	nbr := make(map[int32]map[int32]struct{})

	get := func(lab int32, x, y int) *Region {
		r, ok := acc[lab]
		if !ok {
			r = &Region{ID: lab, BBox: [4]int{x, y, x + 1, y + 1}, Lo: 255, Hi: 0}
			acc[lab] = r
			nbr[lab] = make(map[int32]struct{})
		}
		return r
	}
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			i := y*im.W + x
			lab := labels[i]
			r := get(lab, x, y)
			r.Area++
			v := im.Pix[i]
			if v < r.Lo {
				r.Lo = v
			}
			if v > r.Hi {
				r.Hi = v
			}
			if x < r.BBox[0] {
				r.BBox[0] = x
			}
			if y < r.BBox[1] {
				r.BBox[1] = y
			}
			if x+1 > r.BBox[2] {
				r.BBox[2] = x + 1
			}
			if y+1 > r.BBox[3] {
				r.BBox[3] = y + 1
			}
			sumX[lab] += int64(x)
			sumY[lab] += int64(y)
			sumV[lab] += int64(v)
			// Perimeter and adjacency over the 4-neighbourhood.
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if !im.In(nx, ny) {
					r.Perimeter++
					continue
				}
				nl := labels[ny*im.W+nx]
				if nl != lab {
					r.Perimeter++
					nbr[lab][nl] = struct{}{}
				}
			}
		}
	}
	out := make([]Region, 0, len(acc))
	for lab, r := range acc {
		r.CentroidX = float64(sumX[lab]) / float64(r.Area)
		r.CentroidY = float64(sumY[lab]) / float64(r.Area)
		r.Mean = float64(sumV[lab]) / float64(r.Area)
		ns := make([]int32, 0, len(nbr[lab]))
		for n := range nbr[lab] {
			ns = append(ns, n)
		}
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		r.Neighbors = ns
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WriteJSON emits the region list as indented JSON.
func WriteJSON(w io.Writer, regions []Region) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(regions); err != nil {
		return fmt.Errorf("regstats: encoding JSON: %w", err)
	}
	return nil
}

// WriteDOT emits the final region adjacency graph in Graphviz DOT form:
// one node per region (labelled with its area and intensity interval),
// one edge per adjacent pair.
func WriteDOT(w io.Writer, regions []Region) error {
	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	pr("graph rag {\n")
	pr("  // final region adjacency graph\n")
	for _, r := range regions {
		pr("  r%d [label=\"%d\\narea %d\\n[%d,%d]\"];\n", r.ID, r.ID, r.Area, r.Lo, r.Hi)
	}
	for _, r := range regions {
		for _, n := range r.Neighbors {
			if n > r.ID { // each undirected edge once
				pr("  r%d -- r%d;\n", r.ID, n)
			}
		}
	}
	pr("}\n")
	if err != nil {
		return fmt.Errorf("regstats: writing DOT: %w", err)
	}
	return nil
}

// Summary aggregates whole-segmentation statistics for reports.
type Summary struct {
	Regions      int     `json:"regions"`
	LargestArea  int     `json:"largestArea"`
	SmallestArea int     `json:"smallestArea"`
	MeanArea     float64 `json:"meanArea"`
	TotalEdges   int     `json:"adjacencies"`
	MaxRange     int     `json:"maxIntensityRange"`
	TotalPerim   int     `json:"totalPerimeter"`
}

// Summarize reduces a region list to aggregate statistics.
func Summarize(regions []Region) Summary {
	s := Summary{Regions: len(regions)}
	if len(regions) == 0 {
		return s
	}
	s.SmallestArea = regions[0].Area
	total := 0
	for _, r := range regions {
		total += r.Area
		if r.Area > s.LargestArea {
			s.LargestArea = r.Area
		}
		if r.Area < s.SmallestArea {
			s.SmallestArea = r.Area
		}
		s.TotalEdges += len(r.Neighbors)
		if rg := r.IV().Range(); rg > s.MaxRange {
			s.MaxRange = rg
		}
		s.TotalPerim += r.Perimeter
	}
	s.TotalEdges /= 2
	s.MeanArea = float64(total) / float64(len(regions))
	return s
}
