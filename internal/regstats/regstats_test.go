package regstats

import (
	"strings"
	"testing"

	"regiongrow/internal/pixmap"
)

// twoRegionFixture: 4×2 image, left half label 0 (value 10), right half
// label 2 (value 200).
func twoRegionFixture() (*pixmap.Image, []int32) {
	im := pixmap.New(4, 2)
	copy(im.Pix, []uint8{10, 10, 200, 200, 10, 10, 200, 200})
	return im, []int32{0, 0, 2, 2, 0, 0, 2, 2}
}

func TestComputeBasics(t *testing.T) {
	im, labels := twoRegionFixture()
	rs := Compute(im, labels)
	if len(rs) != 2 {
		t.Fatalf("regions = %d", len(rs))
	}
	r0 := rs[0]
	if r0.ID != 0 || r0.Area != 4 {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.BBox != [4]int{0, 0, 2, 2} {
		t.Fatalf("bbox = %v", r0.BBox)
	}
	if r0.CentroidX != 0.5 || r0.CentroidY != 0.5 {
		t.Fatalf("centroid = (%v,%v)", r0.CentroidX, r0.CentroidY)
	}
	if r0.Mean != 10 || r0.Lo != 10 || r0.Hi != 10 {
		t.Fatalf("intensity stats = %+v", r0)
	}
	// Perimeter: left/top/bottom borders (2+2+2) plus the internal
	// boundary (2 edges) = 8.
	if r0.Perimeter != 8 {
		t.Fatalf("perimeter = %d", r0.Perimeter)
	}
	if len(r0.Neighbors) != 1 || r0.Neighbors[0] != 2 {
		t.Fatalf("neighbors = %v", r0.Neighbors)
	}
	if rs[1].Neighbors[0] != 0 {
		t.Fatal("adjacency not symmetric")
	}
}

func TestComputeAreasCover(t *testing.T) {
	im := pixmap.Random(16, 3)
	labels := make([]int32, 256)
	for i := range labels {
		labels[i] = int32(i % 7 * 0) // single region
	}
	rs := Compute(im, labels)
	if len(rs) != 1 || rs[0].Area != 256 {
		t.Fatalf("single region stats wrong: %+v", rs)
	}
	// Border-only perimeter: 4×16.
	if rs[0].Perimeter != 64 {
		t.Fatalf("perimeter = %d", rs[0].Perimeter)
	}
}

func TestComputePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels accepted")
		}
	}()
	Compute(pixmap.New(2, 2), []int32{0})
}

func TestWriteJSON(t *testing.T) {
	im, labels := twoRegionFixture()
	var sb strings.Builder
	if err := WriteJSON(&sb, Compute(im, labels)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"id": 0`, `"area": 4`, `"neighbors"`, `"perimeter": 8`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	im, labels := twoRegionFixture()
	var sb strings.Builder
	if err := WriteDOT(&sb, Compute(im, labels)); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph rag {", "r0 [label=", "r0 -- r2;", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "r2 -- r0") {
		t.Error("edge emitted twice")
	}
}

func TestSummarize(t *testing.T) {
	im, labels := twoRegionFixture()
	s := Summarize(Compute(im, labels))
	if s.Regions != 2 || s.LargestArea != 4 || s.SmallestArea != 4 || s.MeanArea != 4 {
		t.Fatalf("summary = %+v", s)
	}
	if s.TotalEdges != 1 {
		t.Fatalf("edges = %d", s.TotalEdges)
	}
	if Summarize(nil).Regions != 0 {
		t.Fatal("empty summary wrong")
	}
}
