package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"regiongrow"
)

// resultCache is a fixed-capacity LRU over completed segmentations, keyed
// by regiongrow.CacheKey — (image content hash, canonicalized config,
// engine kind). Caching full results is sound precisely because every
// engine is deterministic: equal keys imply byte-identical output, so a
// cached Segmentation can be served verbatim. Cached values are shared
// across requests and must be treated as immutable.
type resultCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	byKey  map[string]*list.Element
	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key string
	seg *regiongrow.Segmentation
}

// newResultCache returns an LRU holding up to capacity entries. A
// non-positive capacity disables caching: Get always misses and Put is a
// no-op.
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		byKey: make(map[string]*list.Element),
	}
}

// Get returns the cached segmentation for key, marking it most recently
// used, and records a hit or miss.
func (c *resultCache) Get(key string) (*regiongrow.Segmentation, bool) {
	if c.cap <= 0 {
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).seg, true
	}
	c.misses.Add(1)
	return nil, false
}

// Put inserts (or refreshes) key, evicting the least recently used entry
// when the cache is full.
func (c *resultCache) Put(key string, seg *regiongrow.Segmentation) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).seg = seg
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, seg: seg})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// Len reports the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Hits and Misses report the lookup counters.
func (c *resultCache) Hits() int64   { return c.hits.Load() }
func (c *resultCache) Misses() int64 { return c.misses.Load() }
