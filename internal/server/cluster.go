package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"regiongrow"
	"regiongrow/client"
)

// The /v1/cluster endpoints expose the distributed engine's dynamic
// membership: GET reports the member list with a fresh health probe per
// worker; POST join/leave grow and shrink the cluster between jobs, with
// no restart of the server or the workers. They exist only when the
// server was started with cluster workers — elsewhere they answer 404,
// which the SDK translates into client.ErrNoCluster.

// clusterSegmenter resolves the Distributed session, answering the 404
// contract itself when the server runs without a cluster.
func (s *Server) clusterSegmenter(w http.ResponseWriter) (*regiongrow.Segmenter, bool) {
	sg, ok := s.segmenters[regiongrow.Distributed]
	if !ok {
		http.Error(w, "no cluster on this server (start regiongrowd with -cluster host:port,...)", http.StatusNotFound)
		return nil, false
	}
	return sg, true
}

func writeClusterJSON(w http.ResponseWriter, doc any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

func (s *Server) handleClusterGet(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.clusterSegmenter(w)
	if !ok {
		return
	}
	health, err := sg.ClusterHealth(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	st := client.ClusterStatus{
		Engine:  regiongrow.Distributed.String(),
		Workers: len(health),
		Members: make([]client.ClusterMember, len(health)),
	}
	for i, m := range health {
		st.Members[i] = client.ClusterMember{Addr: m.Addr, Healthy: m.Healthy}
	}
	writeClusterJSON(w, st)
}

// clusterAddr extracts and lightly validates the addr parameter the join
// and leave mutations share.
func clusterAddr(w http.ResponseWriter, r *http.Request) (string, bool) {
	addr := strings.TrimSpace(r.URL.Query().Get("addr"))
	if addr == "" {
		http.Error(w, "missing addr parameter (a regiongrow-worker host:port)", http.StatusBadRequest)
		return "", false
	}
	return addr, true
}

func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.clusterSegmenter(w)
	if !ok {
		return
	}
	addr, ok := clusterAddr(w, r)
	if !ok {
		return
	}
	changed, err := sg.ClusterJoin(addr)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.clusterUpdate(w, sg, changed)
}

func (s *Server) handleClusterLeave(w http.ResponseWriter, r *http.Request) {
	sg, ok := s.clusterSegmenter(w)
	if !ok {
		return
	}
	addr, ok := clusterAddr(w, r)
	if !ok {
		return
	}
	changed, err := sg.ClusterLeave(addr)
	if err != nil {
		// The one domain error here is removing the last worker — a
		// conflict with the invariant that a cluster always has one.
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	s.clusterUpdate(w, sg, changed)
}

func (s *Server) clusterUpdate(w http.ResponseWriter, sg *regiongrow.Segmenter, changed bool) {
	members, err := sg.ClusterMembers()
	if err != nil {
		http.Error(w, fmt.Sprintf("reading membership: %v", err), http.StatusInternalServerError)
		return
	}
	writeClusterJSON(w, client.ClusterUpdate{Changed: changed, Members: members})
}
