package server

import (
	"net/http"
	"strings"
	"testing"

	"regiongrow"
	"regiongrow/internal/distengine/disttest"
)

// startWorkerCluster launches n in-process distengine workers, as
// cmd/regiongrow-worker would run them; see disttest.StartCluster.
func startWorkerCluster(t *testing.T, n int) []string {
	return disttest.StartCluster(t, n)
}

// TestServeDistEngine: a server started with cluster workers serves
// engine=dist with labels byte-identical to the sequential engine, and
// the dist engine shows up in /v1/stats after serving.
func TestServeDistEngine(t *testing.T) {
	addrs := startWorkerCluster(t, 3)
	svc, ts := newTestServer(t, Options{ClusterWorkers: addrs})

	seq := decodeSegment(t, postSegment(t, ts, "?image=image3&engine=sequential&labels=1", nil))
	dist := decodeSegment(t, postSegment(t, ts, "?image=image3&engine=dist&labels=1", nil))
	if dist.Engine != "dist" {
		t.Fatalf("engine %q, want dist", dist.Engine)
	}
	if len(dist.Result.Labels) == 0 || len(dist.Result.Labels) != len(seq.Result.Labels) {
		t.Fatalf("labels %d vs %d", len(dist.Result.Labels), len(seq.Result.Labels))
	}
	for i := range dist.Result.Labels {
		if dist.Result.Labels[i] != seq.Result.Labels[i] {
			t.Fatalf("label %d: dist %d != sequential %d", i, dist.Result.Labels[i], seq.Result.Labels[i])
		}
	}

	stats := svc.Stats()
	if _, ok := stats.Engines["dist"]; !ok {
		t.Fatalf("dist engine missing from stats: %v", stats.Engines)
	}
}

// TestServeDistWithoutCluster: without cluster workers, engine=dist is a
// 400 with a hint, not a 500 from a doomed job.
func TestServeDistWithoutCluster(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postSegment(t, ts, "?image=image1&engine=dist", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var body strings.Builder
	buf := make([]byte, 512)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(body.String(), "-cluster") {
		t.Fatalf("error body %q lacks the -cluster hint", body.String())
	}
}

// TestServingEngineKindsUnchanged pins the serving shortlist: dist is
// opt-in per deployment, so it is not in the unconditional list.
func TestServingEngineKindsUnchanged(t *testing.T) {
	for _, k := range ServingEngineKinds() {
		if k == regiongrow.Distributed {
			t.Fatal("Distributed must not be in the unconditional serving list")
		}
	}
}
