package server

import (
	"context"
	"errors"
	"net/http"
	"strings"
	"testing"

	"regiongrow"
	"regiongrow/client"
	"regiongrow/internal/distengine/disttest"
)

// startWorkerCluster launches n in-process distengine workers, as
// cmd/regiongrow-worker would run them; see disttest.StartCluster.
func startWorkerCluster(t *testing.T, n int) []string {
	return disttest.StartCluster(t, n)
}

// TestServeDistEngine: a server started with cluster workers serves
// engine=dist with labels byte-identical to the sequential engine, and
// the dist engine shows up in /v1/stats after serving.
func TestServeDistEngine(t *testing.T) {
	addrs := startWorkerCluster(t, 3)
	svc, ts := newTestServer(t, Options{ClusterWorkers: addrs})

	seq := decodeSegment(t, postSegment(t, ts, "?image=image3&engine=sequential&labels=1", nil))
	dist := decodeSegment(t, postSegment(t, ts, "?image=image3&engine=dist&labels=1", nil))
	if dist.Engine != "dist" {
		t.Fatalf("engine %q, want dist", dist.Engine)
	}
	if len(dist.Result.Labels) == 0 || len(dist.Result.Labels) != len(seq.Result.Labels) {
		t.Fatalf("labels %d vs %d", len(dist.Result.Labels), len(seq.Result.Labels))
	}
	for i := range dist.Result.Labels {
		if dist.Result.Labels[i] != seq.Result.Labels[i] {
			t.Fatalf("label %d: dist %d != sequential %d", i, dist.Result.Labels[i], seq.Result.Labels[i])
		}
	}

	stats := svc.Stats()
	if _, ok := stats.Engines["dist"]; !ok {
		t.Fatalf("dist engine missing from stats: %v", stats.Engines)
	}
}

// TestServeDistWithoutCluster: without cluster workers, engine=dist is a
// 400 with a hint, not a 500 from a doomed job.
func TestServeDistWithoutCluster(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postSegment(t, ts, "?image=image1&engine=dist", nil)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var body strings.Builder
	buf := make([]byte, 512)
	for {
		n, err := resp.Body.Read(buf)
		body.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(body.String(), "-cluster") {
		t.Fatalf("error body %q lacks the -cluster hint", body.String())
	}
}

// TestClusterEndpoints drives the dynamic-membership API end to end
// through the typed SDK: status with per-worker health, join of a fresh
// worker (used by the very next dist job, no restart), idempotent
// re-join, leave, and the refusal to remove the last worker.
func TestClusterEndpoints(t *testing.T) {
	addrs := startWorkerCluster(t, 2)
	_, ts := newTestServer(t, Options{ClusterWorkers: addrs})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	st, err := c.Cluster(ctx)
	if err != nil {
		t.Fatalf("cluster status: %v", err)
	}
	if st.Engine != "dist" || st.Workers != 2 || len(st.Members) != 2 {
		t.Fatalf("status %+v, want 2 dist workers", st)
	}
	for _, m := range st.Members {
		if !m.Healthy {
			t.Errorf("worker %s probed unhealthy", m.Addr)
		}
	}

	// A third worker joins the running server; the next dist job must
	// spread across it without any restart, and stay byte-identical.
	extra := startWorkerCluster(t, 1)[0]
	upd, err := c.ClusterJoin(ctx, extra)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if !upd.Changed || len(upd.Members) != 3 {
		t.Fatalf("join answered %+v, want changed with 3 members", upd)
	}
	if upd, err = c.ClusterJoin(ctx, extra); err != nil || upd.Changed {
		t.Fatalf("duplicate join answered %+v, %v; want unchanged", upd, err)
	}
	seq := decodeSegment(t, postSegment(t, ts, "?image=image3&engine=sequential&labels=1", nil))
	dist := decodeSegment(t, postSegment(t, ts, "?image=image3&engine=dist&labels=1", nil))
	for i := range dist.Result.Labels {
		if dist.Result.Labels[i] != seq.Result.Labels[i] {
			t.Fatalf("label %d after join: dist %d != sequential %d", i, dist.Result.Labels[i], seq.Result.Labels[i])
		}
	}

	// Shrink back down; the departed worker disappears from status.
	if upd, err = c.ClusterLeave(ctx, extra); err != nil || !upd.Changed || len(upd.Members) != 2 {
		t.Fatalf("leave answered %+v, %v; want changed with 2 members", upd, err)
	}
	if upd, err = c.ClusterLeave(ctx, extra); err != nil || upd.Changed {
		t.Fatalf("repeated leave answered %+v, %v; want unchanged", upd, err)
	}

	// The last worker is not removable: a cluster never goes empty.
	if _, err = c.ClusterLeave(ctx, addrs[0]); err != nil {
		t.Fatalf("leave %s: %v", addrs[0], err)
	}
	if _, err = c.ClusterLeave(ctx, addrs[1]); err == nil {
		t.Fatal("removing the last worker succeeded, want a conflict")
	}

	// Parameter validation: a join with no addr is a 400.
	resp, err := http.Post(ts.URL+"/v1/cluster/join", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("join without addr: status %d, want 400", resp.StatusCode)
	}
}

// TestClusterUnhealthyMember: a member that stops answering probes shows
// up unhealthy in status, while the live one stays healthy.
func TestClusterUnhealthyMember(t *testing.T) {
	addrs := startWorkerCluster(t, 1)
	_, ts := newTestServer(t, Options{ClusterWorkers: addrs})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// A dead address: nothing ever listened there for this test's server.
	if _, err := c.ClusterJoin(ctx, "127.0.0.1:1"); err != nil {
		t.Fatalf("join: %v", err)
	}
	st, err := c.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byAddr := map[string]bool{}
	for _, m := range st.Members {
		byAddr[m.Addr] = m.Healthy
	}
	if !byAddr[addrs[0]] {
		t.Errorf("live worker %s probed unhealthy", addrs[0])
	}
	if byAddr["127.0.0.1:1"] {
		t.Error("dead address probed healthy")
	}
}

// TestClusterWithoutCluster: on a server with no -cluster, the endpoints
// are 404 and the SDK classifies that as ErrNoCluster.
func TestClusterWithoutCluster(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cluster(context.Background()); !errors.Is(err, client.ErrNoCluster) {
		t.Fatalf("status on cluster-less server: %v, want ErrNoCluster", err)
	}
	if _, err := c.ClusterJoin(context.Background(), "127.0.0.1:1"); !errors.Is(err, client.ErrNoCluster) {
		t.Fatalf("join on cluster-less server: %v, want ErrNoCluster", err)
	}
}

// TestServingEngineKindsUnchanged pins the serving shortlist: dist is
// opt-in per deployment, so it is not in the unconditional list.
func TestServingEngineKindsUnchanged(t *testing.T) {
	for _, k := range ServingEngineKinds() {
		if k == regiongrow.Distributed {
			t.Fatal("Distributed must not be in the unconditional serving list")
		}
	}
}
