// Package server implements regiongrowd's HTTP segmentation service: a
// bounded persistent worker pool over the regiongrow engines, an LRU
// result cache, and the handlers for /v1/segment, /v1/stats, and /healthz.
//
// The service accepts PGM uploads (or the paper's six evaluation images by
// name) and returns the segmentation as JSON with per-region statistics or
// as a recoloured PGM. Results are cached by (image content hash,
// canonicalized config, engine kind) — sound because every engine is
// deterministic, so equal keys imply byte-identical output. A full job
// queue rejects new work with 429 Too Many Requests rather than queueing
// unboundedly, and Close drains accepted work so graceful shutdown loses
// nothing.
//
// Jobs run through pooled per-engine regiongrow.Segmenter sessions and
// carry their request's context: a client disconnect or the per-request
// deadline (Options.RequestTimeout; answered 504 naming the stage
// reached) cancels the engine within one split/merge iteration, unless
// Options.WarmAbandoned keeps abandoned jobs running to warm the cache.
// Each job's stage observer feeds /v1/stats' per-stage progress gauges
// and the cancellation counters are split by cause (disconnect vs
// deadline).
package server
