// Package server implements regiongrowd's HTTP segmentation service: a
// bounded persistent worker pool over the regiongrow engines, an LRU
// result cache, and the handlers for /v1/segment, /v1/stats, and /healthz.
//
// The service accepts PGM uploads (or the paper's six evaluation images by
// name) and returns the segmentation as JSON with per-region statistics or
// as a recoloured PGM. Results are cached by (image content hash,
// canonicalized config, engine kind) — sound because every engine is
// deterministic, so equal keys imply byte-identical output. A full job
// queue rejects new work with 429 Too Many Requests rather than queueing
// unboundedly, and Close drains accepted work so graceful shutdown loses
// nothing.
package server
