// Package server implements regiongrowd's HTTP segmentation service: an
// asynchronous job API over a bounded persistent worker pool, an LRU
// result cache, a TTL-bounded job-record store, and the handlers for
// /v1/jobs, /v1/batch, /v1/segment, /v1/stats, and /healthz.
//
// The service accepts PGM uploads (or the paper's six evaluation images
// by name). POST /v1/jobs enqueues a segmentation and answers 202 with a
// versioned job record (the regiongrow/client wire types — the server
// serializes the SDK's own structs, so they cannot drift); GET
// /v1/jobs/{id} polls it; GET /v1/jobs/{id}/events streams the job's
// typed stage events as Server-Sent Events (full replay, then live)
// terminating in a done/failed/canceled event carrying the final record;
// DELETE /v1/jobs/{id} cancels via the job's context; POST /v1/batch
// fans a JSON manifest or a multipart set of PGMs out as one job per
// item. POST /v1/segment is the synchronous compatibility path,
// implemented as a waiter over the same job machinery.
//
// Results are cached by (image content hash, canonicalized config,
// engine kind) — sound because every engine is deterministic, so equal
// keys imply byte-identical output; a resubmitted job completes from the
// cache without computing. A full job queue — or a job store full of
// unfinished work — rejects new submissions with 429 Too Many Requests
// rather than queueing unboundedly; finished records are evicted after
// Options.JobTTL (or oldest-finished-first at Options.JobCapacity), and
// Close drains accepted work so graceful shutdown loses nothing.
//
// Jobs run through pooled per-engine regiongrow.Segmenter sessions. A
// synchronous request's job carries the request context: a client
// disconnect or the per-request deadline (Options.RequestTimeout;
// answered 504 naming the stage reached) cancels the engine within one
// split/merge iteration, unless Options.WarmAbandoned keeps abandoned
// jobs running to warm the cache. Asynchronous jobs run detached until
// they finish, hit the deadline, or are cancelled. Each job's stage
// observer feeds its record's progress (and SSE followers) plus
// /v1/stats' per-stage gauges, and the cancellation counters are split
// by cause (disconnect vs deadline).
package server
