package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"regiongrow"
	"regiongrow/client"
)

// segmentResponse is the JSON document returned by POST /v1/segment. Its
// meta blocks are the same wire structs the job records use (the typed
// Tie and the shared image meta marshal to identical JSON, so the
// response stays byte-compatible across the job-API redesign — pinned by
// test).
type segmentResponse struct {
	Engine string            `json:"engine"`
	Cache  string            `json:"cache"` // "hit" or "miss"
	Image  client.ImageMeta  `json:"image"`
	Config client.ConfigMeta `json:"config"`
	Result client.Result     `json:"result"`
}

// segmentRequest is a parsed and validated segmentation request — the
// common currency of /v1/segment, /v1/jobs, and /v1/batch.
type segmentRequest struct {
	im        *regiongrow.Image
	imageName string
	cfg       regiongrow.Config
	kind      regiongrow.EngineKind
	format    string // "json" or "pgm"
	labels    bool
}

// SegmentParams is the validated form of the query parameters every
// submission endpoint shares, with the endpoint defaults (engine
// sequential, threshold 10, random ties, seed 1, the N/8 square cap,
// JSON out) already applied. The fleet gateway parses with the same
// function the server does, so routing-time cache keys can never be
// computed under different defaults than the backend will serve.
type SegmentParams struct {
	Kind      regiongrow.EngineKind
	Config    regiongrow.Config
	Format    string // "json" or "pgm"
	Labels    bool
	ImageName string // paper image by name; empty when the body carries a PGM
}

// ParseSegmentValues parses the submission query parameters into their
// validated form. It is a pure function of q: engine availability (the
// conditional dist kind) is checked by the serving layer, not here.
func ParseSegmentValues(q url.Values) (SegmentParams, error) {
	p := SegmentParams{
		Config: regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1},
		Kind:   regiongrow.SequentialEngine,
		Format: "json",
	}
	var err error
	if v := q.Get("engine"); v != "" {
		if p.Kind, err = regiongrow.ParseEngineKind(v); err != nil {
			return p, err
		}
	}
	if v := q.Get("tie"); v != "" {
		if p.Config.Tie, err = regiongrow.ParseTiePolicy(v); err != nil {
			return p, err
		}
	}
	if v := q.Get("threshold"); v != "" {
		if p.Config.Threshold, err = strconv.Atoi(v); err != nil || p.Config.Threshold < 0 {
			return p, fmt.Errorf("bad threshold %q (want a non-negative integer)", v)
		}
	}
	if v := q.Get("seed"); v != "" {
		if p.Config.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return p, fmt.Errorf("bad seed %q (want an unsigned integer)", v)
		}
	}
	if v := q.Get("maxsquare"); v != "" {
		if p.Config.MaxSquare, err = strconv.Atoi(v); err != nil || p.Config.MaxSquare < -1 {
			return p, fmt.Errorf("bad maxsquare %q (want -1 for unbounded, 0 for the N/8 default, or a positive cap)", v)
		}
	}
	switch v := q.Get("format"); v {
	case "", "json":
		p.Format = "json"
	case "pgm":
		p.Format = "pgm"
	default:
		return p, fmt.Errorf("bad format %q (want json or pgm)", v)
	}
	p.Labels = q.Get("labels") == "1"
	p.ImageName = q.Get("image")
	return p, nil
}

// parseSegmentParams parses the query parameters shared by every
// submission endpoint, leaving image resolution to the caller.
func (s *Server) parseSegmentParams(q url.Values) (*segmentRequest, error) {
	p, err := ParseSegmentValues(q)
	if err != nil {
		return nil, err
	}
	if _, ok := s.segmenters[p.Kind]; !ok {
		// Only the Distributed kind is conditional: it exists when the
		// server was started with cluster workers.
		return nil, fmt.Errorf("engine %q is not enabled on this server (start regiongrowd with -cluster host:port,... to serve it)", p.Kind)
	}
	return &segmentRequest{
		imageName: p.ImageName,
		cfg:       p.Config,
		kind:      p.Kind,
		format:    p.Format,
		labels:    p.Labels,
	}, nil
}

// parseSegmentRequest parses a full submission: the shared parameters
// plus the image, resolved from the paper-image name or the PGM body.
func (s *Server) parseSegmentRequest(r *http.Request) (*segmentRequest, error) {
	req, err := s.parseSegmentParams(r.URL.Query())
	if err != nil {
		return nil, err
	}
	if req.imageName != "" {
		id, err := regiongrow.ParsePaperImageID(req.imageName)
		if err != nil {
			return nil, err
		}
		req.im = regiongrow.GeneratePaperImage(id)
		return req, nil
	}
	im, err := regiongrow.ReadPGM(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, fmt.Errorf("request body exceeds the %d-byte upload limit: %w", tooBig.Limit, err)
		}
		return nil, fmt.Errorf("reading PGM body: %w (upload a P2/P5 PGM or pass ?image=image1…image6)", err)
	}
	req.im = im
	return req, nil
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, err := s.parseSegmentRequest(r)
	if err != nil {
		s.metrics.failed.Add(1)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}

	// The synchronous path is a thin waiter over the same job machinery
	// /v1/jobs runs on: register a record, enqueue the compute, block on
	// the terminal signal. Only the context wiring differs — the job
	// shares the request context (plus the optional deadline), so a
	// disconnect cancels the compute within one iteration unless the
	// warm-abandoned policy detaches it.
	var waitCtx context.Context
	var cancel context.CancelFunc
	if s.opts.RequestTimeout > 0 {
		waitCtx, cancel = context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	} else {
		waitCtx, cancel = context.WithCancel(r.Context())
	}
	defer cancel()
	runCtx := waitCtx
	if s.opts.WarmAbandoned {
		runCtx = context.WithoutCancel(waitCtx)
	}
	// The record carries the real cancel, so a DELETE on the (normally
	// unrevealed) job ID aborts a non-warm synchronous compute just like
	// an async one. The job's monitor also fires it on completion, which
	// is why the wait below re-checks the terminal signal before
	// classifying a context wake-up.
	e, err := s.startJob(runCtx, cancel, req, true)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrStoreFull):
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "job queue full, retry later", http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrClosed):
		s.metrics.failed.Add(1)
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	case err != nil:
		s.metrics.failed.Add(1)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	deadline504 := func() {
		// The per-request deadline fired. Unless WarmAbandoned keeps the
		// job running, the compute has been cancelled within one
		// split/merge iteration; tell the client how far it got.
		s.metrics.canceledDeadline.Add(1)
		http.Error(w, fmt.Sprintf("deadline exceeded after %v during %s",
			s.opts.RequestTimeout, e.tracker.StageString()), http.StatusGatewayTimeout)
	}
	defer e.release()
	terminal := false
	select {
	case <-e.waitTerminal():
		terminal = true
	case <-waitCtx.Done():
		// The monitor cancels waitCtx right after completing the record,
		// so both channels may be ready; prefer the result over a
		// spurious timeout/disconnect classification.
		select {
		case <-e.waitTerminal():
			terminal = true
		default:
		}
	}
	var seg *regiongrow.Segmentation
	if terminal {
		var jobErr error
		seg, jobErr = e.outcome()
		switch {
		case jobErr == nil:
		case errors.Is(jobErr, context.DeadlineExceeded):
			deadline504()
			return
		case errors.Is(jobErr, context.Canceled):
			// The client went away. Nobody is listening for this
			// response, and it is not a server failure; under
			// WarmAbandoned the job still completes on its worker and
			// warms the cache via the pool callback.
			s.metrics.canceledDisconnect.Add(1)
			return
		default:
			s.metrics.failed.Add(1)
			http.Error(w, jobErr.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		if errors.Is(waitCtx.Err(), context.DeadlineExceeded) {
			deadline504()
			return
		}
		s.metrics.canceledDisconnect.Add(1)
		return
	}
	s.metrics.served.Add(1)

	cacheState := e.cache
	if req.format == "pgm" {
		w.Header().Set("Content-Type", "image/x-portable-graymap")
		w.Header().Set("X-Cache", cacheState)
		w.Header().Set("X-Final-Regions", strconv.Itoa(seg.FinalRegions))
		if err := regiongrow.WritePGM(w, regiongrow.Recolour(seg, req.im)); err != nil {
			// Headers are gone; nothing left to do but drop the conn.
			return
		}
		return
	}

	resp := segmentResponse{
		Engine: req.kind.String(),
		Cache:  cacheState,
		Image: client.ImageMeta{
			Name:   req.imageName,
			Width:  req.im.W,
			Height: req.im.H,
			SHA256: e.imageHash,
		},
		Config: client.ConfigMeta{
			Threshold: req.cfg.Threshold,
			Tie:       req.cfg.Tie,
			Seed:      req.cfg.Seed,
			MaxSquare: req.cfg.MaxSquare,
		},
		Result: client.Result{
			FinalRegions:      seg.FinalRegions,
			SplitIterations:   seg.SplitIterations,
			MergeIterations:   seg.MergeIterations,
			SquaresAfterSplit: seg.SquaresAfterSplit,
			SplitWallMs:       seg.SplitWall.Seconds() * 1e3,
			MergeWallMs:       seg.MergeWall.Seconds() * 1e3,
			SplitSimSecs:      seg.SplitSim,
			MergeSimSecs:      seg.MergeSim,
			Regions:           regiongrow.ComputeRegionStats(seg, req.im),
		},
	}
	if req.labels {
		resp.Result.Labels = seg.Labels
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
