package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"regiongrow"
)

// segmentResponse is the JSON document returned by POST /v1/segment.
type segmentResponse struct {
	Engine string        `json:"engine"`
	Cache  string        `json:"cache"` // "hit" or "miss"
	Image  imageMeta     `json:"image"`
	Config configMeta    `json:"config"`
	Result segmentResult `json:"result"`
}

type imageMeta struct {
	Name   string `json:"name,omitempty"` // set for paper images
	Width  int    `json:"width"`
	Height int    `json:"height"`
	SHA256 string `json:"sha256"`
}

type configMeta struct {
	Threshold int    `json:"threshold"`
	Tie       string `json:"tie"`
	Seed      uint64 `json:"seed"`
	MaxSquare int    `json:"max_square"`
}

type segmentResult struct {
	FinalRegions      int                     `json:"final_regions"`
	SplitIterations   int                     `json:"split_iterations"`
	MergeIterations   int                     `json:"merge_iterations"`
	SquaresAfterSplit int                     `json:"squares_after_split"`
	SplitWallMs       float64                 `json:"split_wall_ms"`
	MergeWallMs       float64                 `json:"merge_wall_ms"`
	SplitSimSecs      float64                 `json:"split_sim_s,omitempty"`
	MergeSimSecs      float64                 `json:"merge_sim_s,omitempty"`
	Regions           []regiongrow.RegionStat `json:"regions"`
	Labels            []int32                 `json:"labels,omitempty"`
}

// segmentRequest is a parsed and validated /v1/segment request.
type segmentRequest struct {
	im        *regiongrow.Image
	imageName string
	cfg       regiongrow.Config
	kind      regiongrow.EngineKind
	format    string // "json" or "pgm"
	labels    bool
}

func (s *Server) parseSegmentRequest(r *http.Request) (*segmentRequest, error) {
	q := r.URL.Query()
	req := &segmentRequest{
		cfg:    regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1},
		kind:   regiongrow.SequentialEngine,
		format: "json",
	}
	var err error
	if v := q.Get("engine"); v != "" {
		if req.kind, err = regiongrow.ParseEngineKind(v); err != nil {
			return nil, err
		}
	}
	if v := q.Get("tie"); v != "" {
		if req.cfg.Tie, err = regiongrow.ParseTiePolicy(v); err != nil {
			return nil, err
		}
	}
	if v := q.Get("threshold"); v != "" {
		if req.cfg.Threshold, err = strconv.Atoi(v); err != nil || req.cfg.Threshold < 0 {
			return nil, fmt.Errorf("bad threshold %q (want a non-negative integer)", v)
		}
	}
	if v := q.Get("seed"); v != "" {
		if req.cfg.Seed, err = strconv.ParseUint(v, 10, 64); err != nil {
			return nil, fmt.Errorf("bad seed %q (want an unsigned integer)", v)
		}
	}
	if v := q.Get("maxsquare"); v != "" {
		if req.cfg.MaxSquare, err = strconv.Atoi(v); err != nil || req.cfg.MaxSquare < -1 {
			return nil, fmt.Errorf("bad maxsquare %q (want -1 for unbounded, 0 for the N/8 default, or a positive cap)", v)
		}
	}
	switch v := q.Get("format"); v {
	case "", "json":
		req.format = "json"
	case "pgm":
		req.format = "pgm"
	default:
		return nil, fmt.Errorf("bad format %q (want json or pgm)", v)
	}
	req.labels = q.Get("labels") == "1"

	if name := q.Get("image"); name != "" {
		id, err := regiongrow.ParsePaperImageID(name)
		if err != nil {
			return nil, err
		}
		req.im = regiongrow.GeneratePaperImage(id)
		req.imageName = name
		return req, nil
	}
	im, err := regiongrow.ReadPGM(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, fmt.Errorf("request body exceeds the %d-byte upload limit: %w", tooBig.Limit, err)
		}
		return nil, fmt.Errorf("reading PGM body: %w (upload a P2/P5 PGM or pass ?image=image1…image6)", err)
	}
	req.im = im
	return req, nil
}

func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, err := s.parseSegmentRequest(r)
	if err != nil {
		s.metrics.failed.Add(1)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}

	imageHash := regiongrow.HashImage(req.im)
	key := regiongrow.CacheKeyForHash(imageHash, req.im.W, req.im.H, req.cfg, req.kind)
	seg, hit := s.cache.Get(key)
	if !hit {
		ctx := r.Context()
		if s.opts.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
			defer cancel()
		}
		tracker := newJobTracker(&s.metrics.progress)
		seg, err = s.pool.Submit(ctx, key, req.im, req.cfg, req.kind, tracker)
		switch {
		case errors.Is(err, ErrQueueFull):
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			http.Error(w, "job queue full, retry later", http.StatusTooManyRequests)
			return
		case errors.Is(err, context.DeadlineExceeded):
			// The per-request deadline fired. Unless WarmAbandoned keeps
			// it running, the compute has been cancelled within one
			// split/merge iteration; tell the client how far it got.
			s.metrics.canceledDeadline.Add(1)
			http.Error(w, fmt.Sprintf("deadline exceeded after %v during %s",
				s.opts.RequestTimeout, tracker.StageString()), http.StatusGatewayTimeout)
			return
		case errors.Is(err, context.Canceled):
			// The client went away. Nobody is listening for this
			// response, and it is not a server failure; under
			// WarmAbandoned the job still completes on its worker and
			// warms the cache via the pool callback.
			s.metrics.canceledDisconnect.Add(1)
			return
		case errors.Is(err, ErrClosed):
			s.metrics.failed.Add(1)
			http.Error(w, "server shutting down", http.StatusServiceUnavailable)
			return
		case err != nil:
			s.metrics.failed.Add(1)
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.metrics.served.Add(1)

	cacheState := "miss"
	if hit {
		cacheState = "hit"
	}
	if req.format == "pgm" {
		w.Header().Set("Content-Type", "image/x-portable-graymap")
		w.Header().Set("X-Cache", cacheState)
		w.Header().Set("X-Final-Regions", strconv.Itoa(seg.FinalRegions))
		if err := regiongrow.WritePGM(w, regiongrow.Recolour(seg, req.im)); err != nil {
			// Headers are gone; nothing left to do but drop the conn.
			return
		}
		return
	}

	resp := segmentResponse{
		Engine: req.kind.String(),
		Cache:  cacheState,
		Image: imageMeta{
			Name:   req.imageName,
			Width:  req.im.W,
			Height: req.im.H,
			SHA256: imageHash,
		},
		Config: configMeta{
			Threshold: req.cfg.Threshold,
			Tie:       req.cfg.Tie.String(),
			Seed:      req.cfg.Seed,
			MaxSquare: req.cfg.MaxSquare,
		},
		Result: segmentResult{
			FinalRegions:      seg.FinalRegions,
			SplitIterations:   seg.SplitIterations,
			MergeIterations:   seg.MergeIterations,
			SquaresAfterSplit: seg.SquaresAfterSplit,
			SplitWallMs:       seg.SplitWall.Seconds() * 1e3,
			MergeWallMs:       seg.MergeWall.Seconds() * 1e3,
			SplitSimSecs:      seg.SplitSim,
			MergeSimSecs:      seg.MergeSim,
			Regions:           regiongrow.ComputeRegionStats(seg, req.im),
		},
	}
	if req.labels {
		resp.Result.Labels = seg.Labels
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
