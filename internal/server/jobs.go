package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"regiongrow"
	"regiongrow/client"
)

// jobObserver fans one job's engine events out to the server-wide
// progress gauges (tracker) and the job's record and SSE followers
// (entry). The pool's result callback finalizes the tracker through the
// finisher interface when compute truly ends.
type jobObserver struct {
	tracker *jobTracker
	entry   *jobEntry
}

// Observe implements regiongrow.Observer.
func (o *jobObserver) Observe(ev regiongrow.StageEvent) {
	o.tracker.Observe(ev)
	o.entry.observe(ev)
}

// finish implements finisher by releasing the tracker's stage gauge.
func (o *jobObserver) finish() { o.tracker.finish() }

// jobContext builds the lifecycle context of an asynchronous job:
// detached from any HTTP request (the submitting connection ends at 202),
// cancellable by DELETE, and bounded by the server's RequestTimeout when
// one is configured.
func (s *Server) jobContext() (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(context.Background(), s.opts.RequestTimeout)
	}
	return context.WithCancel(context.Background())
}

// startJob registers a job record for req and launches its compute on the
// pool under ctx. Cache hits complete the record immediately without
// touching the pool. cancel is stored on the record (DELETE calls it) and
// is always released when the job ends. internal marks synchronous-path
// records, whose IDs no client ever learns — they skip the wire Result so
// the sync path keeps its pre-job-machinery memory and hit throughput.
// The error is ErrQueueFull, ErrStoreFull, or ErrClosed — all
// submission-time rejections; once a record is returned, it is guaranteed
// to reach a terminal state.
func (s *Server) startJob(ctx context.Context, cancel context.CancelFunc, req *segmentRequest, internal bool) (*jobEntry, error) {
	hash := regiongrow.HashImage(req.im)
	key := regiongrow.CacheKeyForHash(hash, req.im.W, req.im.H, req.cfg, req.kind)
	e := newJobEntry(req, hash, s.opts.Instance, cancel, newJobTracker(&s.metrics.progress))
	e.internal = internal

	if seg, ok := s.cache.Get(key); ok {
		e.cache = "hit"
		if err := s.jobs.add(e); err != nil {
			cancel()
			return nil, err
		}
		s.jobs.complete(e, seg, nil)
		cancel()
		return e, nil
	}

	if err := s.jobs.add(e); err != nil {
		cancel()
		return nil, err
	}
	done, err := s.pool.Enqueue(ctx, key, req.im, req.cfg, req.kind, &jobObserver{tracker: e.tracker, entry: e})
	if err != nil {
		s.jobs.remove(e)
		cancel()
		return nil, err
	}
	s.jobWG.Add(1)
	go func() {
		defer s.jobWG.Done()
		r := <-done
		s.jobs.complete(e, r.Seg, r.Err)
		cancel()
	}()
	return e, nil
}

// writeJob serves a record snapshot as indented JSON.
func writeJob(w http.ResponseWriter, status int, rec client.Job) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rec)
}

// rejectSubmission translates submission-time errors to HTTP statuses.
func (s *Server) rejectSubmission(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrStoreFull):
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error()+", retry later", http.StatusTooManyRequests)
	case errors.Is(err, ErrClosed):
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleJobSubmit answers POST /v1/jobs: parse the same body and
// parameters as /v1/segment, enqueue the compute, and answer 202 with the
// queued (or, on a cache hit, already-done) record. With ?stream=1 the
// request takes the streaming path instead — synchronous, uncached, and
// unbounded by MaxBodyBytes (see handleJobStream) — so the dispatch runs
// before the body limit is installed.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("stream") == "1" {
		s.handleJobStream(w, r)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	req, err := s.parseSegmentRequest(r)
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	ctx, cancel := s.jobContext()
	e, err := s.startJob(ctx, cancel, req, false)
	if err != nil {
		s.rejectSubmission(w, err)
		return
	}
	writeJob(w, http.StatusAccepted, e.snapshot())
}

// handleJobGet answers GET /v1/jobs/{id} with the current record.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %q (expired, evicted, or never submitted)", r.PathValue("id")), http.StatusNotFound)
		return
	}
	writeJob(w, http.StatusOK, e.snapshot())
}

// handleJobDelete answers DELETE /v1/jobs/{id}: cancel the job's context
// — a queued job dies before computing, a running one aborts within one
// split/merge iteration — and answer 202 with a snapshot (which may still
// read running; the terminal canceled record follows on the event
// stream). Terminal jobs are unaffected.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	e, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %q (expired, evicted, or never submitted)", r.PathValue("id")), http.StatusNotFound)
		return
	}
	e.cancel()
	writeJob(w, http.StatusAccepted, e.snapshot())
}

// handleJobEvents answers GET /v1/jobs/{id}/events: the job's stage
// events as Server-Sent Events — a full replay for late subscribers, then
// live follow — terminated by a done/failed/canceled event whose data is
// the final record. Frames:
//
//	id: <sequence>
//	event: stage
//	data: {"kind":"merge-iteration","iteration":3,"merges":17}
//
//	id: <sequence>
//	event: done
//	data: {<the same JSON record GET /v1/jobs/{id} serves>}
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	e, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %q (expired, evicted, or never submitted)", r.PathValue("id")), http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported by this connection", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	next := 0
	for {
		e.mu.Lock()
		pending := e.events[next:]
		terminal := e.state.Terminal()
		changed := e.changed
		e.mu.Unlock()

		for _, ev := range pending {
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: stage\ndata: %s\n\n", next, data); err != nil {
				return
			}
			next++
		}
		if terminal {
			name, data := e.terminalFrame()
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", next, name, data)
			fl.Flush()
			return
		}
		fl.Flush()
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleBatch answers POST /v1/batch: fan a multi-item submission out
// through the job machinery, one job per item, answering 202 with
// per-item job IDs (or per-item errors — items fail independently). Two
// bodies are accepted: a JSON manifest of paper-image/config pairs, or a
// multipart/form-data set of PGM files sharing the query-parameter
// config.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var results []client.BatchResult
	var err error
	if strings.HasPrefix(ct, "multipart/") {
		results, err = s.batchMultipart(r)
	} else {
		results, err = s.batchManifest(r)
	}
	if err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(client.BatchResponse{Jobs: results})
}

// submitBatchItem runs one already-parsed item through the job machinery
// and records its ID or error.
func (s *Server) submitBatchItem(i int, req *segmentRequest, parseErr error) client.BatchResult {
	res := client.BatchResult{Index: i}
	if parseErr != nil {
		res.Error = parseErr.Error()
		return res
	}
	ctx, cancel := s.jobContext()
	e, err := s.startJob(ctx, cancel, req, false)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.ID = e.id
	return res
}

func (s *Server) batchManifest(r *http.Request) ([]client.BatchResult, error) {
	var m client.BatchManifest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("decoding batch manifest: %w (want {\"items\":[{\"image\":\"image1\",…}]} or a multipart set of PGMs)", err)
	}
	if len(m.Items) == 0 {
		return nil, errors.New("batch manifest has no items")
	}
	results := make([]client.BatchResult, 0, len(m.Items))
	for i, item := range m.Items {
		req, err := s.batchItemRequest(item)
		results = append(results, s.submitBatchItem(i, req, err))
	}
	return results, nil
}

// BatchItemQuery maps one batch-manifest item onto the /v1/jobs query
// parameters it mirrors. Both the server (batchItemRequest) and the fleet
// gateway (routing each item to its home backend) resolve items through
// this one mapping plus ParseSegmentValues, so a manifest can never
// default or validate differently from the query surface — or differently
// at the edge than at the backend.
func BatchItemQuery(item client.BatchItem) url.Values {
	q := url.Values{}
	if item.Engine != "" {
		q.Set("engine", item.Engine)
	}
	if item.Tie != "" {
		q.Set("tie", item.Tie)
	}
	if item.Threshold != nil {
		q.Set("threshold", strconv.Itoa(*item.Threshold))
	}
	if item.Seed != nil {
		q.Set("seed", strconv.FormatUint(*item.Seed, 10))
	}
	if item.MaxSquare != 0 {
		q.Set("maxsquare", strconv.Itoa(item.MaxSquare))
	}
	if item.Labels {
		q.Set("labels", "1")
	}
	q.Set("image", item.Image)
	return q
}

// batchItemRequest resolves one manifest item through the shared
// item-to-query mapping and the one shared parser.
func (s *Server) batchItemRequest(item client.BatchItem) (*segmentRequest, error) {
	req, err := s.parseSegmentParams(BatchItemQuery(item))
	if err != nil {
		return nil, err
	}
	if req.imageName == "" {
		return nil, errors.New("batch item names no image (JSON manifests segment the paper images; upload PGMs as a multipart batch)")
	}
	id, err := regiongrow.ParsePaperImageID(req.imageName)
	if err != nil {
		return nil, err
	}
	req.im = regiongrow.GeneratePaperImage(id)
	return req, nil
}

func (s *Server) batchMultipart(r *http.Request) ([]client.BatchResult, error) {
	template, err := s.parseSegmentParams(r.URL.Query())
	if err != nil {
		return nil, err
	}
	if template.imageName != "" {
		return nil, errors.New("multipart batches segment their uploaded PGMs; drop the image query parameter")
	}
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, fmt.Errorf("reading multipart batch: %w", err)
	}
	var results []client.BatchResult
	for i := 0; ; i++ {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			if len(results) == 0 {
				return nil, fmt.Errorf("reading multipart batch part %d: %w", i, err)
			}
			// Earlier parts are already enqueued; aborting now would
			// orphan their job IDs. Report the broken framing as this
			// item's error and answer with what was accepted — items
			// fail independently, even against a truncated body.
			results = append(results, client.BatchResult{
				Index: i,
				Error: fmt.Sprintf("reading multipart batch part %d: %v", i, err),
			})
			return results, nil
		}
		im, err := regiongrow.ReadPGM(part)
		part.Close()
		if err != nil {
			results = append(results, s.submitBatchItem(i, nil, fmt.Errorf("part %d: reading PGM: %w", i, err)))
			continue
		}
		req := *template
		req.im = im
		results = append(results, s.submitBatchItem(i, &req, nil))
	}
	if len(results) == 0 {
		return nil, errors.New("multipart batch has no parts")
	}
	return results, nil
}
