package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"regiongrow"
	"regiongrow/client"
)

// recordingObserver collects stage events; safe for any engine's emitting
// goroutine.
type recordingObserver struct {
	mu     sync.Mutex
	events []regiongrow.StageEvent
}

func (r *recordingObserver) Observe(ev regiongrow.StageEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
}

func (r *recordingObserver) snapshot() []regiongrow.StageEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]regiongrow.StageEvent(nil), r.events...)
}

func testClient(t *testing.T, url string) *client.Client {
	t.Helper()
	c, err := client.New(url)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestJobRoundTripReconcilesWithLocalObserver is the acceptance check of
// the async API: POST /v1/jobs → SSE stream → GET /v1/jobs/{id}
// round-trips a run whose streamed stage events are exactly the observer
// events a local Segmenter run of the same config records, whose labels
// are byte-identical to the local run, and whose terminal SSE record
// equals what GET serves.
func TestJobRoundTripReconcilesWithLocalObserver(t *testing.T) {
	for _, kind := range []regiongrow.EngineKind{regiongrow.SequentialEngine, regiongrow.NativeParallel} {
		t.Run(kind.String(), func(t *testing.T) {
			_, ts := newTestServer(t, Options{})
			c := testClient(t, ts.URL)
			ctx := context.Background()
			im := regiongrow.GeneratePaperImage(regiongrow.Image3Circles128)
			cfg := regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1}

			rec := &recordingObserver{}
			local, err := regiongrow.New(kind, regiongrow.WithObserver(rec))
			if err != nil {
				t.Fatal(err)
			}
			localSeg, err := local.Segment(ctx, im, cfg)
			if err != nil {
				t.Fatal(err)
			}

			sub, err := c.Submit(ctx, client.JobRequest{
				PaperImage: "image3", Engine: kind, Config: cfg, Labels: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if sub.APIVersion != client.APIVersion || sub.ID == "" {
				t.Fatalf("bad submission record: %+v", sub)
			}

			var streamed []regiongrow.StageEvent
			job, err := c.Stream(ctx, sub.ID, func(ev regiongrow.StageEvent) {
				streamed = append(streamed, ev)
			})
			if err != nil {
				t.Fatal(err)
			}
			if job.State != client.StateDone {
				t.Fatalf("job state %s (error %q), want done", job.State, job.Error)
			}
			if want := rec.snapshot(); !reflect.DeepEqual(streamed, want) {
				t.Fatalf("streamed events diverge from local observer:\n got %+v\nwant %+v", streamed, want)
			}
			if !reflect.DeepEqual(job.Result.Labels, localSeg.Labels) {
				t.Fatal("job labels differ from local Segment labels")
			}
			if job.Result.FinalRegions != localSeg.FinalRegions ||
				job.Result.MergeIterations != localSeg.MergeIterations {
				t.Fatalf("job result counters %+v diverge from local run", job.Result)
			}

			got, err := c.Get(ctx, sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, _ := json.Marshal(got)
			streamJSON, _ := json.Marshal(job)
			if !bytes.Equal(gotJSON, streamJSON) {
				t.Fatalf("GET record differs from terminal SSE record:\n get %s\n sse %s", gotJSON, streamJSON)
			}
			if got.Progress.Stage != "done" || got.Progress.Merges == 0 {
				t.Fatalf("terminal progress not filled in: %+v", got.Progress)
			}
		})
	}
}

// TestJobSSEReplay: a subscriber arriving after completion still sees the
// full event history and the terminal frame.
func TestJobSSEReplay(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	c := testClient(t, ts.URL)
	ctx := context.Background()

	sub, err := c.Submit(ctx, client.JobRequest{
		PaperImage: "image1", Engine: regiongrow.SequentialEngine,
		Config: regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	// The job is long done; a late stream must replay everything.
	var replayed []regiongrow.StageEvent
	job, err := c.Stream(ctx, sub.ID, func(ev regiongrow.StageEvent) { replayed = append(replayed, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.StateDone {
		t.Fatalf("state %s, want done", job.State)
	}
	if len(replayed) == 0 {
		t.Fatal("late subscriber saw no replayed events")
	}
	if first, last := replayed[0].Kind, replayed[len(replayed)-1].Kind; first != regiongrow.EventSplitStart || last != regiongrow.EventMergeDone {
		t.Fatalf("replay not complete: first %v, last %v", first, last)
	}
}

// TestJobCacheHit: resubmitting an identical job completes instantly from
// the result cache, marked as a hit, with no stage events.
func TestJobCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	c := testClient(t, ts.URL)
	ctx := context.Background()
	req := client.JobRequest{
		PaperImage: "image2", Engine: regiongrow.SequentialEngine,
		Config: regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 7},
	}
	first, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	second, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != client.StateDone || second.Cache != "hit" {
		t.Fatalf("resubmission state %s cache %s, want done/hit", second.State, second.Cache)
	}
	var events int
	if _, err := c.Stream(ctx, second.ID, func(regiongrow.StageEvent) { events++ }); err != nil {
		t.Fatal(err)
	}
	if events != 0 {
		t.Fatalf("cache-hit job streamed %d stage events, want 0", events)
	}
}

// blockingSegment is a SegmentFunc stub that parks until released or
// cancelled, so tests control job timing deterministically.
func parkedSegment(release <-chan struct{}) SegmentFunc {
	return func(ctx context.Context, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind, obs regiongrow.Observer) (*regiongrow.Segmentation, error) {
		select {
		case <-release:
			return &regiongrow.Segmentation{
				W: im.W, H: im.H,
				Labels: make([]int32, im.W*im.H),
			}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestJobCancelRunning: DELETE aborts an in-flight job's compute and the
// record settles into canceled.
func TestJobCancelRunning(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, CacheEntries: -1, Segment: parkedSegment(release)})
	c := testClient(t, ts.URL)
	ctx := context.Background()

	sub, err := c.Submit(ctx, client.JobRequest{PaperImage: "image1", Engine: regiongrow.SequentialEngine})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	job, err := c.Wait(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.StateCanceled {
		t.Fatalf("state %s, want canceled", job.State)
	}
	if job.Error == "" || job.FinishedAt.IsZero() {
		t.Fatalf("canceled record incomplete: %+v", job)
	}
}

// TestJobCancelQueued: a job cancelled while still waiting for a worker
// never computes and reports canceled.
func TestJobCancelQueued(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, CacheEntries: -1, Segment: parkedSegment(release)})
	c := testClient(t, ts.URL)
	ctx := context.Background()

	// Occupy the single worker, then queue a second job behind it.
	blocker, err := c.Submit(ctx, client.JobRequest{PaperImage: "image1", Engine: regiongrow.SequentialEngine})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.Submit(ctx, client.JobRequest{PaperImage: "image2", Engine: regiongrow.SequentialEngine})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	release <- struct{}{} // let the blocker finish so the worker reaches the canceled job
	job, err := c.Wait(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != client.StateCanceled {
		t.Fatalf("state %s, want canceled", job.State)
	}
	if !job.StartedAt.IsZero() {
		t.Fatalf("queued-cancelled job claims to have started: %+v", job)
	}
	if _, err := c.Wait(ctx, blocker.ID); err != nil {
		t.Fatal(err)
	}
}

// TestJobTTLEviction: finished records expire after the TTL and read as
// 404 / ErrNotFound.
func TestJobTTLEviction(t *testing.T) {
	svc, ts := newTestServer(t, Options{JobTTL: 30 * time.Millisecond})
	c := testClient(t, ts.URL)
	ctx := context.Background()

	sub, err := c.Submit(ctx, client.JobRequest{
		PaperImage: "image1", Engine: regiongrow.SequentialEngine,
		Config: regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Get(ctx, sub.ID); err == nil {
		t.Fatal("expired job still retrievable")
	}
	stats := svc.Stats()
	if stats.Jobs.EvictedTotal == 0 {
		t.Fatalf("eviction not counted: %+v", stats.Jobs)
	}
}

// TestJobStoreCapacity: at capacity the oldest finished record is evicted
// for a new submission; a store full of unfinished jobs rejects with 429.
func TestJobStoreCapacity(t *testing.T) {
	_, ts := newTestServer(t, Options{JobCapacity: 2, CacheEntries: -1})
	c := testClient(t, ts.URL)
	ctx := context.Background()

	ids := make([]string, 3)
	for i := range ids {
		sub, err := c.Submit(ctx, client.JobRequest{
			PaperImage: "image1", Engine: regiongrow.SequentialEngine,
			Config: regiongrow.Config{Threshold: 10 + i, Tie: regiongrow.RandomTie, Seed: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Wait(ctx, sub.ID); err != nil {
			t.Fatal(err)
		}
		ids[i] = sub.ID
	}
	if _, err := c.Get(ctx, ids[0]); err == nil {
		t.Fatal("oldest record survived capacity eviction")
	}
	if _, err := c.Get(ctx, ids[2]); err != nil {
		t.Fatalf("newest record gone: %v", err)
	}

	// Fill the store with unfinished jobs: submissions must now bounce.
	release := make(chan struct{})
	defer close(release)
	_, ts2 := newTestServer(t, Options{JobCapacity: 1, Workers: 1, QueueDepth: 4, CacheEntries: -1, Segment: parkedSegment(release)})
	c2 := testClient(t, ts2.URL)
	if _, err := c2.Submit(ctx, client.JobRequest{PaperImage: "image1", Engine: regiongrow.SequentialEngine}); err != nil {
		t.Fatal(err)
	}
	_, err := c2.Submit(ctx, client.JobRequest{PaperImage: "image2", Engine: regiongrow.SequentialEngine})
	if err == nil {
		t.Fatal("submission into a full store of running jobs succeeded")
	}
	release <- struct{}{}
}

// TestBatchManifest: a JSON manifest fans out into per-item jobs, bad
// items fail independently, and defaults match the query-parameter ones.
func TestBatchManifest(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	c := testClient(t, ts.URL)
	ctx := context.Background()
	cfg := regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1}

	results, err := c.Batch(ctx, []client.JobRequest{
		{PaperImage: "image1", Engine: regiongrow.SequentialEngine, Config: cfg},
		{PaperImage: "image2", Engine: regiongrow.NativeParallel, Config: cfg},
		{PaperImage: "image3", Engine: regiongrow.SequentialEngine, Config: cfg, Labels: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for i, id := range []regiongrow.PaperImageID{regiongrow.Image1NestedRects128,
		regiongrow.Image2Rects128, regiongrow.Image3Circles128} {
		r := results[i]
		if r.Error != "" || r.ID == "" {
			t.Fatalf("item %d: %+v", i, r)
		}
		job, err := c.Wait(ctx, r.ID)
		if err != nil {
			t.Fatal(err)
		}
		if job.State != client.StateDone {
			t.Fatalf("item %d: state %s (%s)", i, job.State, job.Error)
		}
		if want := localFinalRegions(t, id, cfg); job.Result.FinalRegions != want {
			t.Fatalf("item %d: %d final regions, want %d", i, job.Result.FinalRegions, want)
		}
	}
	if job, _ := c.Get(ctx, results[2].ID); job == nil || job.Result.Labels == nil {
		t.Fatal("labels=true batch item carries no labels")
	}

	// Raw manifest: omitted fields adopt defaults, bad items fail alone.
	body := `{"items":[{"image":"image1"},{"image":"nope"},{"image":"image2","engine":"warp-drive"}]}`
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var br client.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Jobs) != 3 {
		t.Fatalf("got %d results, want 3", len(br.Jobs))
	}
	if br.Jobs[0].ID == "" || br.Jobs[0].Error != "" {
		t.Fatalf("defaulted item rejected: %+v", br.Jobs[0])
	}
	if br.Jobs[1].Error == "" || br.Jobs[2].Error == "" {
		t.Fatalf("bad items accepted: %+v", br.Jobs[1:])
	}
	job, err := c.Wait(ctx, br.Jobs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults are threshold 10, tie random, seed 1, sequential.
	if job.Config.Threshold != 10 || job.Config.Tie != regiongrow.RandomTie || job.Config.Seed != 1 ||
		job.Engine != regiongrow.SequentialEngine {
		t.Fatalf("manifest defaults wrong: %+v engine %v", job.Config, job.Engine)
	}
}

// TestBatchMultipart: a multipart set of PGMs fans out under the shared
// query config, results in part order.
func TestBatchMultipart(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	c := testClient(t, ts.URL)
	ctx := context.Background()
	cfg := regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1}

	im1 := regiongrow.GeneratePaperImage(regiongrow.Image1NestedRects128)
	im3 := regiongrow.GeneratePaperImage(regiongrow.Image3Circles128)
	results, err := c.BatchImages(ctx, []*regiongrow.Image{im1, im3}, client.JobRequest{
		Engine: regiongrow.SequentialEngine, Config: cfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	for i, id := range []regiongrow.PaperImageID{regiongrow.Image1NestedRects128, regiongrow.Image3Circles128} {
		if results[i].Error != "" {
			t.Fatalf("part %d: %s", i, results[i].Error)
		}
		job, err := c.Wait(ctx, results[i].ID)
		if err != nil {
			t.Fatal(err)
		}
		want := localFinalRegions(t, id, cfg)
		if job.State != client.StateDone || job.Result.FinalRegions != want {
			t.Fatalf("part %d: state %s, %d regions, want done/%d", i, job.State, job.Result.FinalRegions, want)
		}
	}
}

// localFinalRegions runs the reference engine locally for comparison.
func localFinalRegions(t *testing.T, id regiongrow.PaperImageID, cfg regiongrow.Config) int {
	t.Helper()
	seg, err := regiongrow.Segment(regiongrow.GeneratePaperImage(id), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return seg.FinalRegions
}

// TestSyncSegmentRunsOnJobMachinery: every synchronous request registers
// a job record too — the machinery is shared, not parallel.
func TestSyncSegmentRunsOnJobMachinery(t *testing.T) {
	svc, ts := newTestServer(t, Options{})
	resp := postSegment(t, ts, "?image=image1", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	stats := svc.Stats()
	if stats.Jobs.SubmittedTotal != 1 || stats.Jobs.Done != 1 {
		t.Fatalf("sync request not visible in job stats: %+v", stats.Jobs)
	}
}

// TestSegmentResponseSchemaPinned walks the JSON key stream of a
// /v1/segment response and compares it to the PR 3 schema, so the
// synchronous compatibility path cannot drift while it is reimplemented
// on the job machinery.
func TestSegmentResponseSchemaPinned(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp := postSegment(t, ts, "?image=image1&engine=cm5-async", nil)
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	keys := jsonKeyOrder(t, body, 2)
	want := "engine cache image name width height sha256 config threshold tie seed max_square " +
		"result final_regions split_iterations merge_iterations squares_after_split " +
		"split_wall_ms merge_wall_ms split_sim_s merge_sim_s regions"
	if got := strings.Join(keys, " "); got != want {
		t.Fatalf("/v1/segment schema drifted:\n got %s\nwant %s", got, want)
	}
}

// jsonKeyOrder walks a JSON document's token stream and returns the
// object keys in document order, down to maxDepth object-nesting levels
// (deeper objects — e.g. the entries of the regions array — are skipped).
func jsonKeyOrder(t *testing.T, doc []byte, maxDepth int) []string {
	t.Helper()
	type frame struct {
		isObj     bool
		expectKey bool
	}
	var stack []frame
	var keys []string
	objDepth := 0
	top := func() *frame {
		if len(stack) == 0 {
			return nil
		}
		return &stack[len(stack)-1]
	}
	dec := json.NewDecoder(bytes.NewReader(doc))
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return keys
		}
		if err != nil {
			t.Fatal(err)
		}
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{':
				stack = append(stack, frame{isObj: true, expectKey: true})
				objDepth++
			case '[':
				stack = append(stack, frame{})
			case '}':
				objDepth--
				fallthrough
			case ']':
				stack = stack[:len(stack)-1]
				if f := top(); f != nil && f.isObj {
					f.expectKey = true
				}
			}
			continue
		}
		f := top()
		if f == nil || !f.isObj {
			continue // array element or bare scalar
		}
		if f.expectKey {
			if s, ok := tok.(string); ok && objDepth <= maxDepth {
				keys = append(keys, s)
			}
			f.expectKey = false
		} else {
			f.expectKey = true // just consumed this key's scalar value
		}
	}
}

// TestJobNotFound: unknown IDs answer 404 on every job endpoint.
func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, probe := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/job-doesnotexist"},
		{http.MethodGet, "/v1/jobs/job-doesnotexist/events"},
		{http.MethodDelete, "/v1/jobs/job-doesnotexist"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s %s: status %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestJobSubmitBadRequests: parse failures on /v1/jobs and /v1/batch
// answer 400 with a usable message.
func TestJobSubmitBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, q := range []string{"?image=image9", "?image=image1&engine=warp", "?image=image1&threshold=-4"} {
		resp, err := http.Post(ts.URL+"/v1/jobs"+q, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", q, resp.StatusCode, body)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(`{"items":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", resp.StatusCode)
	}
}

// TestJobQueueFull429: a saturated pool rejects job submissions with 429
// and Retry-After, and no phantom record lingers.
func TestJobQueueFull429(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	svc, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, CacheEntries: -1, Segment: parkedSegment(release)})
	c := testClient(t, ts.URL)
	ctx := context.Background()

	// One running, one queued; the third must bounce.
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ctx, client.JobRequest{PaperImage: fmt.Sprintf("image%d", i+1), Engine: regiongrow.SequentialEngine}); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/jobs?image=image3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := svc.Stats().Jobs.SubmittedTotal; got != 2 {
		t.Fatalf("rejected submission left a record: submitted_total %d, want 2", got)
	}
	release <- struct{}{}
	release <- struct{}{}
}
