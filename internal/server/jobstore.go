package server

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"regiongrow"
	"regiongrow/client"
)

// ErrStoreFull is returned by jobStore.add when every slot is held by a
// job that has not finished yet — nothing is evictable, so the submission
// must be rejected (the HTTP layer answers 429, the same backpressure
// signal as a full queue).
var ErrStoreFull = errors.New("server: job store full")

// jobEntry is one job's record and broadcast hub: the engine's stage
// observer appends wire events to it, SSE subscribers replay and follow
// them, and the terminal state is what GET /v1/jobs/{id} serves. Entries
// live in the Server's jobStore until TTL eviction.
//
// Locking: fields under mu change on the worker (observe, complete) and
// are read by handlers; created and the request-echo fields are immutable
// after construction. finished and state are additionally written only
// while the store's lock is also held, so the store can read them during
// eviction sweeps without taking every entry's lock.
type jobEntry struct {
	id      string
	created time.Time
	// cancel aborts the job's compute; DELETE /v1/jobs/{id} calls it.
	// Never nil (cache-hit jobs get a no-op derivative).
	cancel context.CancelFunc
	// tracker feeds the server-wide per-stage gauges; handlers use its
	// StageString for 504 responses on the synchronous path.
	tracker *jobTracker
	// doneEl is the entry's position in the store's eviction list once
	// terminal; guarded by the store's lock, not mu.
	doneEl *list.Element

	// Request echo, immutable after construction.
	kind      regiongrow.EngineKind
	cfg       regiongrow.Config
	imageName string
	imageHash string
	w, h      int
	labels    bool

	// internal marks records registered by the synchronous path: their
	// IDs are never revealed to a client, so no one will ever read their
	// wire Result — complete skips building it and drops the retained
	// image immediately, keeping /v1/segment's memory (and its cache-hit
	// throughput) what it was before the job machinery existed.
	internal bool

	mu    sync.Mutex
	state client.JobState
	cache string // "miss", flipped to "hit" when answered from cache
	// events are the recorded stage events, in emission order; changed is
	// closed and replaced on every append and on completion, which is how
	// SSE subscribers follow the log without ever blocking the producer.
	events  []client.Event
	changed chan struct{}
	// terminalc closes exactly once, when the job reaches a terminal
	// state; the synchronous path waits on it.
	terminalc chan struct{}
	started   time.Time
	finished  time.Time
	// seg is held from completion until the synchronous waiter has read
	// it (release) — async records drop it as soon as the wire Result is
	// built, so a terminal record pins only its wire form.
	seg *regiongrow.Segmentation
	err error
	// im is retained only while the job can still need region statistics:
	// complete drops it for every terminal state.
	im     *regiongrow.Image
	result *client.Result
	// terminalJSON is the compact record snapshot frozen for the terminal
	// SSE event, so every subscriber sees identical bytes.
	terminalJSON []byte
	// Progress accumulators fed by observe.
	stage                             string
	splitIters, squares               int
	mergeIter, mergesTotal, finalRegs int
}

// newInstanceID mints a random 8-hex-character server identity, used when
// Options.Instance is left empty.
func newInstanceID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// newJobID mints an opaque, unguessable job identifier carrying the
// owning server's instance ID: "job-<instance>-<random hex>". The
// embedded instance is what lets a stateless fleet gateway route
// GET/DELETE /v1/jobs/{id} and the SSE event stream to the one backend
// holding the record — see ParseJobInstance, the inverse.
func newJobID(instance string) string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand never fails on supported platforms
	}
	return "job-" + instance + "-" + hex.EncodeToString(b[:])
}

// ParseJobInstance extracts the owning server's instance ID from a job ID
// minted by newJobID. It is the routing key of the fleet gateway's
// job-record proxying, exported so gateway and server can never disagree
// on the ID scheme. The instance may itself contain hyphens (operators
// name backends "backend-1"); the random suffix never does, so the last
// hyphen is the separator. IDs in another shape (including pre-fleet
// "job-<hex>" IDs) report ok=false.
func ParseJobInstance(id string) (instance string, ok bool) {
	rest, found := strings.CutPrefix(id, "job-")
	if !found {
		return "", false
	}
	i := strings.LastIndex(rest, "-")
	if i <= 0 {
		return "", false
	}
	return rest[:i], true
}

func newJobEntry(req *segmentRequest, imageHash, instance string, cancel context.CancelFunc, tracker *jobTracker) *jobEntry {
	return &jobEntry{
		id:        newJobID(instance),
		created:   time.Now(),
		cancel:    cancel,
		tracker:   tracker,
		kind:      req.kind,
		cfg:       req.cfg,
		imageName: req.imageName,
		imageHash: imageHash,
		w:         req.im.W,
		h:         req.im.H,
		labels:    req.labels,
		state:     client.StateQueued,
		cache:     "miss",
		stage:     "queued",
		changed:   make(chan struct{}),
		terminalc: make(chan struct{}),
		im:        req.im,
	}
}

// bumpLocked wakes every follower of the event log. Callers hold mu.
func (e *jobEntry) bumpLocked() {
	close(e.changed)
	e.changed = make(chan struct{})
}

// observe records one engine stage event: the first one flips the record
// to running, each updates the progress accumulators, and followers are
// woken. It runs on the compute goroutine, so it must not block beyond
// the short critical section.
func (e *jobEntry) observe(ev regiongrow.StageEvent) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state == client.StateQueued {
		e.state = client.StateRunning
		e.started = time.Now()
	}
	switch ev.Kind {
	case regiongrow.EventSplitStart:
		e.stage = "split"
	case regiongrow.EventSplitDone:
		e.stage = "graph"
		e.splitIters = ev.Iterations
		e.squares = ev.Squares
	case regiongrow.EventGraphDone:
		e.stage = "merge"
	case regiongrow.EventMergeIteration:
		e.mergeIter = ev.Iteration
		e.mergesTotal += ev.Merges
	case regiongrow.EventMergeDone:
		e.stage = "done"
		e.finalRegs = ev.Regions
	}
	e.events = append(e.events, client.WireEvent(ev))
	e.bumpLocked()
}

// waitTerminal exposes the terminal signal to handlers.
func (e *jobEntry) waitTerminal() <-chan struct{} { return e.terminalc }

// outcome returns the compute result once terminal.
func (e *jobEntry) outcome() (*regiongrow.Segmentation, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seg, e.err
}

// buildResult derives the wire Result (region statistics, label raster
// if requested) of a completed segmentation.
func buildResult(seg *regiongrow.Segmentation, im *regiongrow.Image, labels bool) *client.Result {
	r := &client.Result{
		FinalRegions:      seg.FinalRegions,
		SplitIterations:   seg.SplitIterations,
		MergeIterations:   seg.MergeIterations,
		SquaresAfterSplit: seg.SquaresAfterSplit,
		SplitWallMs:       seg.SplitWall.Seconds() * 1e3,
		MergeWallMs:       seg.MergeWall.Seconds() * 1e3,
		SplitSimSecs:      seg.SplitSim,
		MergeSimSecs:      seg.MergeSim,
		Regions:           regiongrow.ComputeRegionStats(seg, im),
	}
	if labels {
		r.Labels = seg.Labels
	}
	return r
}

// snapshotLocked builds the wire record. Callers hold mu.
func (e *jobEntry) snapshotLocked() client.Job {
	j := client.Job{
		APIVersion: client.APIVersion,
		ID:         e.id,
		State:      e.state,
		Engine:     e.kind,
		Cache:      e.cache,
		Image: client.ImageMeta{
			Name:   e.imageName,
			Width:  e.w,
			Height: e.h,
			SHA256: e.imageHash,
		},
		Config: client.ConfigMeta{
			Threshold: e.cfg.Threshold,
			Tie:       e.cfg.Tie,
			Seed:      e.cfg.Seed,
			MaxSquare: e.cfg.MaxSquare,
		},
		Progress: client.Progress{
			Stage:           e.stage,
			SplitIterations: e.splitIters,
			Squares:         e.squares,
			MergeIteration:  e.mergeIter,
			Merges:          e.mergesTotal,
		},
		CreatedAt:  e.created,
		StartedAt:  e.started,
		FinishedAt: e.finished,
		Result:     e.result,
	}
	if e.err != nil {
		j.Error = e.err.Error()
	}
	return j
}

// snapshot returns the job's current wire record.
func (e *jobEntry) snapshot() client.Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

// release drops the segmentation once the synchronous waiter has served
// it, so a sync record pins nothing beyond its wire form for the TTL.
func (e *jobEntry) release() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seg = nil
}

// terminalFrame returns the SSE terminal event name and its frozen data
// bytes. Valid only once terminal.
func (e *jobEntry) terminalFrame() (name string, data []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.terminalJSON == nil {
		e.terminalJSON, _ = json.Marshal(e.snapshotLocked())
	}
	return string(e.state), e.terminalJSON
}

// jobStore is the bounded in-memory registry of job records. Terminal
// records are evicted when they age past the TTL (swept lazily on every
// add and lookup) or, at capacity, oldest-finished-first to make room for
// new submissions; records that have not finished are never evicted — if
// the store is full of them, add rejects with ErrStoreFull. Both
// rejection paths surface as 429 to clients, mirroring the pool queue's
// backpressure.
type jobStore struct {
	ttl time.Duration
	cap int

	mu   sync.Mutex
	byID map[string]*jobEntry
	// done orders terminal entries oldest-finished-first: the TTL sweep
	// pops from the front, as does capacity eviction.
	done *list.List

	submitted atomic.Int64
	evicted   atomic.Int64
}

func newJobStore(capacity int, ttl time.Duration) *jobStore {
	return &jobStore{
		ttl:  ttl,
		cap:  capacity,
		byID: make(map[string]*jobEntry),
		done: list.New(),
	}
}

// add registers a fresh entry, sweeping expired records first and
// evicting the oldest terminal record if the store is at capacity.
func (st *jobStore) add(e *jobEntry) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(time.Now())
	if len(st.byID) >= st.cap {
		front := st.done.Front()
		if front == nil {
			return ErrStoreFull
		}
		st.evictLocked(front.Value.(*jobEntry))
	}
	st.byID[e.id] = e
	st.submitted.Add(1)
	return nil
}

// remove deregisters an entry that never reached the pool (enqueue
// failed), so phantom queued records don't linger.
func (st *jobStore) remove(e *jobEntry) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.byID, e.id)
	st.submitted.Add(-1)
}

// get looks an entry up after sweeping expired records, so an evictable
// record is never served.
func (st *jobStore) get(id string) (*jobEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(time.Now())
	e, ok := st.byID[id]
	return e, ok
}

// complete transitions an entry to its terminal state, classifies the
// error (cancelled contexts read as canceled, deadline expiry and engine
// errors as failed), freezes the record, wakes all followers, and files
// the entry for TTL eviction. The retained image never outlives this
// call: successful public jobs have their wire Result (which needs the
// pixels for region statistics) built here — off-lock, since the inputs
// are settled — and every other terminal record drops the image unused.
func (st *jobStore) complete(e *jobEntry, seg *regiongrow.Segmentation, err error) {
	var result *client.Result
	if err == nil && seg != nil && !e.internal {
		result = buildResult(seg, e.im, e.labels)
	}
	now := time.Now()
	st.mu.Lock()
	e.mu.Lock()
	e.seg, e.err = seg, err
	e.result = result
	e.im = nil
	if result != nil {
		// Async records serve the wire form only; the raw segmentation
		// would just pin label arrays past the cache's own bounds.
		e.seg = nil
	}
	e.finished = now
	switch {
	case err == nil:
		e.state = client.StateDone
		e.stage = "done"
	case errors.Is(err, context.Canceled):
		e.state = client.StateCanceled
	default:
		e.state = client.StateFailed
	}
	close(e.terminalc)
	e.bumpLocked()
	e.mu.Unlock()
	if _, ok := st.byID[e.id]; ok {
		e.doneEl = st.done.PushBack(e)
	}
	st.mu.Unlock()
}

// sweepLocked drops terminal records older than the TTL. finished and
// state are stable under the store lock (see jobEntry), so no entry lock
// is needed.
func (st *jobStore) sweepLocked(now time.Time) {
	for el := st.done.Front(); el != nil; {
		e := el.Value.(*jobEntry)
		if now.Sub(e.finished) < st.ttl {
			break
		}
		next := el.Next()
		st.evictLocked(e)
		el = next
	}
}

// evictLocked removes one terminal entry from both indexes.
func (st *jobStore) evictLocked(e *jobEntry) {
	if e.doneEl != nil {
		st.done.Remove(e.doneEl)
		e.doneEl = nil
	}
	delete(st.byID, e.id)
	st.evicted.Add(1)
}

// JobStats is the job-store block of /v1/stats.
type JobStats struct {
	// Stored counts records currently retrievable, split by state below.
	Stored   int `json:"stored"`
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
	// SubmittedTotal counts every job ever registered (async, batch, and
	// synchronous requests all run through the job machinery);
	// EvictedTotal counts records dropped by TTL or capacity eviction.
	SubmittedTotal int64   `json:"submitted_total"`
	EvictedTotal   int64   `json:"evicted_total"`
	Capacity       int     `json:"capacity"`
	TTLSeconds     float64 `json:"ttl_seconds"`
}

func (st *jobStore) snapshot() JobStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(time.Now())
	s := JobStats{
		Stored:         len(st.byID),
		SubmittedTotal: st.submitted.Load(),
		EvictedTotal:   st.evicted.Load(),
		Capacity:       st.cap,
		TTLSeconds:     st.ttl.Seconds(),
	}
	for _, e := range st.byID {
		e.mu.Lock()
		state := e.state
		e.mu.Unlock()
		switch state {
		case client.StateQueued:
			s.Queued++
		case client.StateRunning:
			s.Running++
		case client.StateDone:
			s.Done++
		case client.StateFailed:
			s.Failed++
		case client.StateCanceled:
			s.Canceled++
		}
	}
	return s
}
