package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"regiongrow"
)

// BenchmarkServeThroughput is the loadgen harness: it drives a live
// httptest server with concurrent clients and reports jobs/sec at several
// concurrency levels, for both the cache-miss path (every request a fresh
// segmentation — unique random seeds) and the cache-hit path (every
// request the same key).
//
//	go test -run '^$' -bench ServeThroughput -benchtime 2s ./internal/server
func BenchmarkServeThroughput(b *testing.B) {
	im := regiongrow.GeneratePaperImage(regiongrow.Image1NestedRects128)
	var buf bytes.Buffer
	if err := regiongrow.WritePGM(&buf, im); err != nil {
		b.Fatal(err)
	}
	pgm := buf.Bytes()

	for _, path := range []string{"miss", "hit"} {
		for _, conc := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("%s/conc-%d", path, conc)
			b.Run(name, func(b *testing.B) {
				opts := Options{Workers: runtime.GOMAXPROCS(0), QueueDepth: 4 * conc}
				if path == "miss" {
					opts.CacheEntries = -1
				}
				svc := New(opts)
				ts := httptest.NewServer(svc)
				defer func() {
					ts.Close()
					svc.Close()
				}()
				client := ts.Client()
				client.Transport.(*http.Transport).MaxIdleConnsPerHost = conc

				if path == "hit" { // warm the single cache entry
					if err := fire(client, ts.URL, "?seed=1", pgm); err != nil {
						b.Fatal(err)
					}
				}

				var seed int64
				var mu sync.Mutex
				nextQuery := func() string {
					mu.Lock()
					defer mu.Unlock()
					if path == "hit" {
						return "?seed=1"
					}
					seed++
					return fmt.Sprintf("?seed=%d", seed)
				}

				b.ResetTimer()
				var wg sync.WaitGroup
				jobs := make(chan string)
				errs := make(chan error, conc)
				for w := 0; w < conc; w++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						// Keep draining after a failure so the producer's
						// unbuffered send never deadlocks; only the first
						// error is reported.
						failed := false
						for q := range jobs {
							if failed {
								continue
							}
							if err := fire(client, ts.URL, q, pgm); err != nil {
								errs <- err
								failed = true
							}
						}
					}()
				}
				for i := 0; i < b.N; i++ {
					jobs <- nextQuery()
				}
				close(jobs)
				wg.Wait()
				b.StopTimer()
				select {
				case err := <-errs:
					b.Fatal(err)
				default:
				}
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
			})
		}
	}
}

// fire posts one segmentation request and fails on any non-200 answer.
// 429s count as failures here: the loadgen sizes the queue to the client
// count, so rejections mean the harness is misconfigured, not the server.
func fire(client *http.Client, base, query string, pgm []byte) error {
	resp, err := client.Post(base+"/v1/segment"+query, "image/x-portable-graymap", bytes.NewReader(pgm))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: status %d", resp.StatusCode)
	}
	return nil
}
