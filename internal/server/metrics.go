package server

import (
	"sync/atomic"
	"time"

	"regiongrow"
)

// latencyBounds are the upper edges of the latency histogram buckets; a
// final implicit bucket catches everything slower.
var latencyBounds = [...]time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 250 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2500 * time.Millisecond,
}

// histogram is a fixed-bucket latency histogram updated lock-free.
type histogram struct {
	count    atomic.Int64
	sumNanos atomic.Int64
	buckets  [len(latencyBounds) + 1]atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	for i, b := range latencyBounds {
		if d <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(latencyBounds)].Add(1)
}

// BucketStat is one histogram bucket in a stats snapshot.
type BucketStat struct {
	// Le is the bucket's inclusive upper edge, e.g. "25ms"; the last
	// bucket is "+Inf".
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramStats is a point-in-time histogram snapshot.
type HistogramStats struct {
	Count   int64        `json:"count"`
	TotalMs float64      `json:"total_ms"`
	MeanMs  float64      `json:"mean_ms"`
	Buckets []BucketStat `json:"buckets"`
}

func (h *histogram) snapshot() HistogramStats {
	n := h.count.Load()
	total := time.Duration(h.sumNanos.Load())
	s := HistogramStats{Count: n, TotalMs: float64(total) / float64(time.Millisecond)}
	if n > 0 {
		s.MeanMs = s.TotalMs / float64(n)
	}
	for i, b := range latencyBounds {
		s.Buckets = append(s.Buckets, BucketStat{Le: b.String(), Count: h.buckets[i].Load()})
	}
	s.Buckets = append(s.Buckets, BucketStat{Le: "+Inf", Count: h.buckets[len(latencyBounds)].Load()})
	return s
}

// metrics aggregates the service counters exposed on /v1/stats. Per-engine
// histograms are pre-allocated for every engine kind at construction, so
// the map is read-only afterwards and needs no lock.
type metrics struct {
	instance string
	// start anchors both stats clocks: its wall reading is served as
	// started_at, and uptime_seconds is time.Since(start) — which Go
	// computes from the monotonic reading captured at construction, so
	// uptime never jumps with wall-clock adjustments.
	start    time.Time
	requests atomic.Int64 // POST /v1/segment attempts
	served   atomic.Int64 // 200 responses
	rejected atomic.Int64 // 429 responses (queue full)
	failed   atomic.Int64 // 4xx/5xx other than 429
	// Cancellation counters: disconnect (client went away) vs deadline
	// (request timeout fired, answered 504). canceled() sums them.
	canceledDisconnect atomic.Int64
	canceledDeadline   atomic.Int64
	progress           progressMetrics
	perEngine          map[string]*histogram
}

// allKinds enumerates every engine kind the service accepts
// unconditionally — the base of the single list both the per-kind
// Segmenter table and the histogram pre-allocation build from, so they
// can never drift apart. Server.New appends Distributed when cluster
// workers are configured.
func allKinds() []regiongrow.EngineKind {
	return append(regiongrow.AllEngineKinds(),
		regiongrow.SequentialEngine, regiongrow.NativeParallel)
}

func newMetrics(instance string, kinds []regiongrow.EngineKind) *metrics {
	m := &metrics{instance: instance, start: time.Now(), perEngine: make(map[string]*histogram)}
	for _, k := range kinds {
		m.perEngine[k.String()] = &histogram{}
	}
	return m
}

// observe records one completed segmentation (a cache miss that ran on the
// pool) against the engine's latency histogram.
func (m *metrics) observe(kind regiongrow.EngineKind, d time.Duration) {
	if h, ok := m.perEngine[kind.String()]; ok {
		h.observe(d)
	}
}

// Stats is the JSON document served on /v1/stats. Instance and StartedAt
// make fleet-aggregated snapshots attributable: a gateway polling many
// backends can tell which counters belong to whom, and a restart is
// visible as a new StartedAt (and reset uptime) under the same instance.
type Stats struct {
	Instance      string                    `json:"instance"`
	StartedAt     time.Time                 `json:"started_at"`
	UptimeSeconds float64                   `json:"uptime_seconds"`
	Requests      RequestStats              `json:"requests"`
	Jobs          JobStats                  `json:"jobs"`
	Cache         CacheStats                `json:"cache"`
	Queue         QueueStats                `json:"queue"`
	Progress      ProgressStats             `json:"progress"`
	Engines       map[string]HistogramStats `json:"engines"`
}

// RequestStats counts POST /v1/segment outcomes. Canceled is the sum of
// the two cancellation causes: CanceledDisconnect (the client went away —
// nobody hears the answer) and CanceledDeadline (the per-request deadline
// fired and the client was told 504, naming the stage the job reached).
type RequestStats struct {
	Total              int64 `json:"total"`
	Served             int64 `json:"served"`
	Rejected           int64 `json:"rejected"`
	Failed             int64 `json:"failed"`
	Canceled           int64 `json:"canceled"`
	CanceledDisconnect int64 `json:"canceled_disconnect"`
	CanceledDeadline   int64 `json:"canceled_deadline"`
}

// CacheStats reports result-cache effectiveness.
type CacheStats struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
}

// QueueStats reports worker-pool pressure at snapshot time.
type QueueStats struct {
	Depth    int   `json:"depth"`
	Capacity int   `json:"capacity"`
	InFlight int64 `json:"inflight"`
	Workers  int   `json:"workers"`
}

func (m *metrics) snapshot(pool *Pool, cache *resultCache, jobs *jobStore) Stats {
	disc, dead := m.canceledDisconnect.Load(), m.canceledDeadline.Load()
	s := Stats{
		Instance:      m.instance,
		StartedAt:     m.start,
		UptimeSeconds: time.Since(m.start).Seconds(),
		Requests: RequestStats{
			Total:              m.requests.Load(),
			Served:             m.served.Load(),
			Rejected:           m.rejected.Load(),
			Failed:             m.failed.Load(),
			Canceled:           disc + dead,
			CanceledDisconnect: disc,
			CanceledDeadline:   dead,
		},
		Jobs:     jobs.snapshot(),
		Progress: m.progress.snapshot(),
		Cache: CacheStats{
			Hits:     cache.Hits(),
			Misses:   cache.Misses(),
			Entries:  cache.Len(),
			Capacity: max(cache.cap, 0),
		},
		Queue: QueueStats{
			Depth:    pool.QueueDepth(),
			Capacity: pool.QueueCapacity(),
			InFlight: pool.InFlight(),
			Workers:  pool.Workers(),
		},
		Engines: make(map[string]HistogramStats, len(m.perEngine)),
	}
	for name, h := range m.perEngine {
		if h.count.Load() > 0 {
			s.Engines[name] = h.snapshot()
		}
	}
	return s
}
