package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"regiongrow"
)

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the bounded job queue has no
	// free slot; HTTP handlers translate it to 429 Too Many Requests.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("server: pool closed")
)

// SegmentFunc segments one image under a context, reporting stage
// progress to obs (which may be nil). The zero value of Options selects
// the Server's pooled per-engine Segmenters; tests substitute stubs to
// control timing.
type SegmentFunc func(ctx context.Context, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind, obs regiongrow.Observer) (*regiongrow.Segmentation, error)

type job struct {
	// ctx governs the compute: the request context by default, or a
	// detached (never-cancelled) derivative under the warm-abandoned
	// policy.
	ctx  context.Context
	key  string
	im   *regiongrow.Image
	cfg  regiongrow.Config
	kind regiongrow.EngineKind
	obs  regiongrow.Observer
	done chan Outcome
}

// Outcome is the terminal result of one enqueued job, delivered on the
// channel Enqueue returns once a worker has finished with it.
type Outcome struct {
	Seg *regiongrow.Segmentation
	Err error
}

// Result describes one completed job, delivered to the pool's onResult
// callback on the worker goroutine — even when the submitter has already
// abandoned the wait. Err carries the compute error; under the default
// policy an abandoned job surfaces here with its context error, under
// WarmAbandoned it completes and can warm the Server's cache. Obs is the
// job's observer, handed back so the callback can finalize whatever
// per-job tracking it set up, at the one point compute has truly ended.
type Result struct {
	Key     string
	Kind    regiongrow.EngineKind
	Seg     *regiongrow.Segmentation
	Err     error
	Elapsed time.Duration
	Obs     regiongrow.Observer
}

// Pool is a bounded persistent worker pool: a fixed number of goroutines
// drain a fixed-depth job queue. Submission is non-blocking — a full queue
// rejects immediately with ErrQueueFull, which is the service's
// backpressure signal — and Close drains every job already accepted before
// returning, which is what makes graceful shutdown lossless.
//
// Each job carries its submitter's context into the compute: when the
// submitter disconnects or its deadline fires, the engine aborts within
// one split/merge iteration and the worker moves on. Constructing the
// pool with warm=true restores the detached policy instead — abandoned
// jobs run to completion so their results can still be cached.
type Pool struct {
	jobs     chan *job
	segment  SegmentFunc
	onResult func(Result)
	workers  int
	warm     bool
	wg       sync.WaitGroup
	mu       sync.RWMutex
	closed   bool
	inflight atomic.Int64
}

// NewPool starts workers goroutines over a queue of the given depth.
// Non-positive workers or depth panic: the Server constructor is
// responsible for defaulting them. fn must be non-nil. onResult, if
// non-nil, runs on the worker goroutine for every job that reached a
// worker, before the submitter is woken. warm selects the abandoned-job
// policy described on Pool.
func NewPool(workers, depth int, fn SegmentFunc, onResult func(Result), warm bool) *Pool {
	if workers <= 0 || depth <= 0 {
		panic("server: NewPool needs positive workers and depth")
	}
	if fn == nil {
		fn = freshSegment
	}
	p := &Pool{
		jobs:     make(chan *job, depth),
		segment:  fn,
		onResult: onResult,
		workers:  workers,
		warm:     warm,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// freshSegment is the fallback SegmentFunc for pools constructed without
// one outside a Server: a throwaway Segmenter per job. The Server installs
// its pooled per-engine sessions instead.
func freshSegment(ctx context.Context, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind, obs regiongrow.Observer) (*regiongrow.Segmentation, error) {
	s, err := regiongrow.New(kind)
	if err != nil {
		return nil, err
	}
	return s.SegmentObserved(ctx, im, cfg, obs)
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.inflight.Add(1)
		start := time.Now()
		var seg *regiongrow.Segmentation
		err := j.ctx.Err()
		if err == nil {
			seg, err = p.segment(j.ctx, j.im, j.cfg, j.kind, j.obs)
		}
		elapsed := time.Since(start)
		// The job counts as in flight until its result — including any
		// per-job tracking finalized by the callback — is fully recorded.
		if p.onResult != nil {
			p.onResult(Result{Key: j.key, Kind: j.kind, Seg: seg, Err: err, Elapsed: elapsed, Obs: j.obs})
		}
		p.inflight.Add(-1)
		j.done <- Outcome{Seg: seg, Err: err}
	}
}

// Enqueue places one segmentation on the queue without waiting for it:
// the returned 1-buffered channel receives the outcome when a worker
// finishes the job, whether or not anyone is listening by then. The
// compute runs under runCtx exactly as given — the warm-abandoned policy
// rewrites contexts only in Submit, whose waiter can silently vanish;
// Enqueue callers own their job's lifecycle and cancel runCtx explicitly.
// Enqueue returns ErrQueueFull when the queue has no free slot and
// ErrClosed after Close; once it returns nil, an Outcome is guaranteed
// (Close drains the queue before stopping the workers).
func (p *Pool) Enqueue(runCtx context.Context, key string, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind, obs regiongrow.Observer) (<-chan Outcome, error) {
	j := &job{ctx: runCtx, key: key, im: im, cfg: cfg, kind: kind, obs: obs, done: make(chan Outcome, 1)}
	if err := p.push(j); err != nil {
		return nil, err
	}
	return j.done, nil
}

// push is the non-blocking bounded enqueue both Enqueue and Submit go
// through.
func (p *Pool) push(j *job) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.jobs <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Submit enqueues one segmentation and waits for its result. key is an
// opaque tag handed back through the onResult callback; obs, if non-nil,
// receives the job's stage events from the worker. Submit returns
// ErrQueueFull without blocking when the queue is saturated, ErrClosed
// after Close, and ctx.Err() when ctx ends first. Under the default
// policy the job's compute shares ctx, so a disconnect or deadline also
// cancels the engine within one iteration; under the warm policy only the
// wait is abandoned and the job still runs to completion on its worker.
func (p *Pool) Submit(ctx context.Context, key string, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind, obs regiongrow.Observer) (*regiongrow.Segmentation, error) {
	runCtx := ctx
	if p.warm {
		runCtx = context.WithoutCancel(ctx)
	}
	done, err := p.Enqueue(runCtx, key, im, cfg, kind, obs)
	if err != nil {
		return nil, err
	}
	select {
	case r := <-done:
		return r.Seg, r.Err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// QueueDepth reports the number of jobs waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// QueueCapacity reports the configured queue depth.
func (p *Pool) QueueCapacity() int { return cap(p.jobs) }

// InFlight reports the number of jobs currently executing on workers.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// Workers reports the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops accepting work, lets the workers drain every already-queued
// job, and returns when the last one has finished. Safe to call more than
// once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
