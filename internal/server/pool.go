package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"regiongrow"
)

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when the bounded job queue has no
	// free slot; HTTP handlers translate it to 429 Too Many Requests.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrClosed is returned by Submit after Close.
	ErrClosed = errors.New("server: pool closed")
)

// SegmentFunc segments one image. The zero value of Options selects the
// real engines; tests substitute stubs to control timing.
type SegmentFunc func(im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind) (*regiongrow.Segmentation, error)

func defaultSegment(im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind) (*regiongrow.Segmentation, error) {
	eng, err := regiongrow.NewEngine(kind)
	if err != nil {
		return nil, err
	}
	return eng.Segment(im, cfg)
}

type job struct {
	key  string
	im   *regiongrow.Image
	cfg  regiongrow.Config
	kind regiongrow.EngineKind
	done chan jobResult
}

type jobResult struct {
	seg *regiongrow.Segmentation
	err error
}

// Result describes one completed job, delivered to the pool's onResult
// callback on the worker goroutine — even when the submitter has already
// abandoned the wait, which is what lets the Server cache work a client
// gave up on.
type Result struct {
	Key     string
	Kind    regiongrow.EngineKind
	Seg     *regiongrow.Segmentation
	Err     error
	Elapsed time.Duration
}

// Pool is a bounded persistent worker pool: a fixed number of goroutines
// drain a fixed-depth job queue. Submission is non-blocking — a full queue
// rejects immediately with ErrQueueFull, which is the service's
// backpressure signal — and Close drains every job already accepted before
// returning, which is what makes graceful shutdown lossless.
type Pool struct {
	jobs     chan *job
	segment  SegmentFunc
	onResult func(Result)
	workers  int
	wg       sync.WaitGroup
	mu       sync.RWMutex
	closed   bool
	inflight atomic.Int64
}

// NewPool starts workers goroutines over a queue of the given depth.
// Non-positive workers or depth panic: the Server constructor is
// responsible for defaulting them. onResult, if non-nil, runs on the
// worker goroutine for every completed job, before the submitter is
// woken.
func NewPool(workers, depth int, fn SegmentFunc, onResult func(Result)) *Pool {
	if workers <= 0 || depth <= 0 {
		panic("server: NewPool needs positive workers and depth")
	}
	if fn == nil {
		fn = defaultSegment
	}
	p := &Pool{
		jobs:     make(chan *job, depth),
		segment:  fn,
		onResult: onResult,
		workers:  workers,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.inflight.Add(1)
		start := time.Now()
		seg, err := p.segment(j.im, j.cfg, j.kind)
		elapsed := time.Since(start)
		p.inflight.Add(-1)
		if p.onResult != nil {
			p.onResult(Result{Key: j.key, Kind: j.kind, Seg: seg, Err: err, Elapsed: elapsed})
		}
		j.done <- jobResult{seg: seg, err: err}
	}
}

// Submit enqueues one segmentation and waits for its result. key is an
// opaque tag handed back through the onResult callback. Submit returns
// ErrQueueFull without blocking when the queue is saturated, ErrClosed
// after Close, and ctx.Err() if the caller gives up first (the job itself
// still runs to completion on its worker — and still reaches onResult —
// only the wait is abandoned).
func (p *Pool) Submit(ctx context.Context, key string, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind) (*regiongrow.Segmentation, error) {
	j := &job{key: key, im: im, cfg: cfg, kind: kind, done: make(chan jobResult, 1)}

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case p.jobs <- j:
		p.mu.RUnlock()
	default:
		p.mu.RUnlock()
		return nil, ErrQueueFull
	}

	select {
	case r := <-j.done:
		return r.seg, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// QueueDepth reports the number of jobs waiting for a worker.
func (p *Pool) QueueDepth() int { return len(p.jobs) }

// QueueCapacity reports the configured queue depth.
func (p *Pool) QueueCapacity() int { return cap(p.jobs) }

// InFlight reports the number of jobs currently executing on workers.
func (p *Pool) InFlight() int64 { return p.inflight.Load() }

// Workers reports the worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops accepting work, lets the workers drain every already-queued
// job, and returns when the last one has finished. Safe to call more than
// once.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
