package server

import (
	"fmt"
	"sync/atomic"

	"regiongrow"
)

// Job stages, in order. The tracker moves through them on observer events;
// stageQueued and stageDone carry no gauge.
const (
	stageQueued int32 = iota
	stageSplit
	stageGraph
	stageMerge
	stageDone
)

// progressMetrics are the server-wide per-stage gauges and totals fed by
// every job's tracker and served on /v1/stats. The gauges count jobs
// currently computing in each stage — including jobs whose client has
// already gone under the warm-abandoned policy, since those still occupy
// a worker.
type progressMetrics struct {
	inSplit, inGraph, inMerge          atomic.Int64
	splitsDone, mergeIters, mergesDone atomic.Int64
}

func (p *progressMetrics) gauge(stage int32) *atomic.Int64 {
	switch stage {
	case stageSplit:
		return &p.inSplit
	case stageGraph:
		return &p.inGraph
	case stageMerge:
		return &p.inMerge
	default:
		return nil
	}
}

// jobTracker follows one job through its stages: it is the regiongrow
// Observer handed to the engine, it keeps the server-wide gauges
// consistent, and it answers "how far did this job get" for the 504
// response of a timed-out request.
//
// Gauge consistency under abandonment: every stage transition decrements
// the old stage's gauge and increments the new one, and the worker calls
// finish (via the Server's SegmentFunc) when compute truly ends — whether
// it completed, was cancelled, or outlived its client — so gauges can
// never leak a stuck increment.
type jobTracker struct {
	p *progressMetrics
	// stage is the gauge state: which in-stage gauge this job currently
	// holds. reached is the monotonic record of how far compute got —
	// finish releases the gauge but never touches reached, so a 504 for a
	// timed-out request names the stage the job was in, not "done",
	// however the response races the worker's cleanup.
	stage     atomic.Int32
	reached   atomic.Int32
	mergeIter atomic.Int64
}

func newJobTracker(p *progressMetrics) *jobTracker { return &jobTracker{p: p} }

func (t *jobTracker) moveGauge(next int32) {
	old := t.stage.Swap(next)
	if old == next {
		return
	}
	if g := t.p.gauge(old); g != nil {
		g.Add(-1)
	}
	if g := t.p.gauge(next); g != nil {
		g.Add(1)
	}
}

func (t *jobTracker) advance(next int32) {
	for {
		cur := t.reached.Load()
		if next <= cur || t.reached.CompareAndSwap(cur, next) {
			return
		}
	}
}

func (t *jobTracker) setStage(next int32) {
	t.moveGauge(next)
	t.advance(next)
}

// Observe implements regiongrow.Observer.
func (t *jobTracker) Observe(ev regiongrow.StageEvent) {
	switch ev.Kind {
	case regiongrow.EventSplitStart:
		t.setStage(stageSplit)
	case regiongrow.EventSplitDone:
		t.p.splitsDone.Add(1)
		t.setStage(stageGraph)
	case regiongrow.EventGraphDone:
		t.setStage(stageMerge)
	case regiongrow.EventMergeIteration:
		t.mergeIter.Store(int64(ev.Iteration))
		t.p.mergeIters.Add(1)
		t.p.mergesDone.Add(int64(ev.Merges))
	case regiongrow.EventMergeDone:
		t.setStage(stageDone)
	}
}

// finish marks the job's compute over, releasing whatever stage gauge it
// still holds. Idempotent; safe if no event ever fired (stub engines,
// jobs cancelled while queued).
func (t *jobTracker) finish() { t.moveGauge(stageDone) }

// StageString names the furthest stage the job's compute reached, for
// error responses and logs. stageDone reads as "result finalization": the
// only caller that formats an in-past-tense stage is the 504 handler, and
// a deadline can genuinely win the race against a merge that just
// finished — the engine was done, the response was not.
func (t *jobTracker) StageString() string {
	switch t.reached.Load() {
	case stageSplit:
		return "split"
	case stageGraph:
		return "graph build"
	case stageMerge:
		if k := t.mergeIter.Load(); k > 0 {
			return fmt.Sprintf("merge (iteration %d)", k)
		}
		return "merge"
	case stageDone:
		return "result finalization"
	default:
		return "queued"
	}
}

// ProgressStats is the per-stage progress block of /v1/stats, fed by the
// engines' stage observers.
type ProgressStats struct {
	// Gauges: jobs currently computing in each stage.
	InSplit int64 `json:"in_split"`
	InGraph int64 `json:"in_graph"`
	InMerge int64 `json:"in_merge"`
	// Totals since start.
	SplitsDoneTotal      int64 `json:"splits_done_total"`
	MergeIterationsTotal int64 `json:"merge_iterations_total"`
	MergesTotal          int64 `json:"merges_total"`
}

func (p *progressMetrics) snapshot() ProgressStats {
	return ProgressStats{
		InSplit:              p.inSplit.Load(),
		InGraph:              p.inGraph.Load(),
		InMerge:              p.inMerge.Load(),
		SplitsDoneTotal:      p.splitsDone.Load(),
		MergeIterationsTotal: p.mergeIters.Load(),
		MergesTotal:          p.mergesDone.Load(),
	}
}
