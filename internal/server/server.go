package server

import (
	"net/http"
	"runtime"

	"regiongrow"
)

// Options configure a Server. The zero value is serviceable: GOMAXPROCS
// workers, a 64-deep queue, a 256-entry cache, 16 MiB uploads, real
// engines.
type Options struct {
	// Workers is the worker-pool size; <=0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs; <=0
	// selects 64. When the queue is full, /v1/segment returns 429.
	QueueDepth int
	// CacheEntries bounds the LRU result cache; 0 selects 256, negative
	// disables caching.
	CacheEntries int
	// MaxBodyBytes bounds PGM uploads; <=0 selects 16 MiB.
	MaxBodyBytes int64
	// Segment replaces the real engines; nil selects them. Tests use it
	// to control job timing.
	Segment SegmentFunc
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	return o
}

// Server is the segmentation service. Construct with New, mount via
// Handler (or use it directly as an http.Handler), and Close it after the
// enclosing http.Server has shut down to drain in-flight jobs.
type Server struct {
	opts    Options
	pool    *Pool
	cache   *resultCache
	metrics *metrics
	mux     *http.ServeMux
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		cache:   newResultCache(opts.CacheEntries),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	// Results are cached and observed from the worker, not the handler, so
	// a job whose client disconnected mid-queue still warms the cache.
	s.pool = NewPool(opts.Workers, opts.QueueDepth, opts.Segment, func(r Result) {
		if r.Err == nil {
			s.metrics.observe(r.Kind, r.Elapsed)
			s.cache.Put(r.Key, r.Seg)
		}
	})
	s.mux.HandleFunc("POST /v1/segment", s.handleSegment)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// Handler returns the service's routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the worker pool after draining accepted jobs. Call it after
// http.Server.Shutdown has returned so no handler is still submitting.
func (s *Server) Close() { s.pool.Close() }

// Stats returns a point-in-time snapshot of the service counters — the
// same document /v1/stats serves.
func (s *Server) Stats() Stats { return s.metrics.snapshot(s.pool, s.cache) }

// ServingEngineKinds lists the engines worth putting behind the server:
// every kind works, but the simulated CM kinds exist to report machine
// cost-model times, not to serve throughput.
func ServingEngineKinds() []regiongrow.EngineKind {
	return []regiongrow.EngineKind{regiongrow.SequentialEngine, regiongrow.NativeParallel}
}
