package server

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"time"

	"regiongrow"
)

// Options configure a Server. The zero value is serviceable: GOMAXPROCS
// workers, a 64-deep queue, a 256-entry cache, 16 MiB uploads, real
// engines, no per-request deadline, and compute that is cancelled when
// its client disconnects.
type Options struct {
	// Workers is the worker-pool size; <=0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of accepted-but-unstarted jobs; <=0
	// selects 64. When the queue is full, /v1/segment returns 429.
	QueueDepth int
	// CacheEntries bounds the LRU result cache; 0 selects 256, negative
	// disables caching.
	CacheEntries int
	// MaxBodyBytes bounds PGM uploads; <=0 selects 16 MiB.
	MaxBodyBytes int64
	// RequestTimeout bounds each /v1/segment compute; 0 means no limit.
	// A request exceeding it is answered 504 Gateway Timeout naming the
	// stage the job reached, and counted under canceled_deadline.
	RequestTimeout time.Duration
	// WarmAbandoned keeps computing jobs whose client disconnected or
	// timed out, so their results warm the cache for the retry that
	// usually follows. Off by default: abandoned compute is cancelled
	// within one split/merge iteration and its worker freed. It applies
	// to the synchronous path only — asynchronous jobs have no waiter to
	// lose and run until they finish or are cancelled via DELETE.
	WarmAbandoned bool
	// JobCapacity bounds the job-record store; <=0 selects 1024. At
	// capacity, the oldest finished record is evicted to admit a new
	// submission; when every record is still queued or running, new
	// submissions are rejected with 429.
	JobCapacity int
	// JobTTL bounds how long a finished job record (and its result)
	// stays retrievable; <=0 selects 15 minutes. Expired records are
	// swept lazily on submissions and lookups.
	JobTTL time.Duration
	// ClusterWorkers lists regiongrow-worker addresses; when non-empty,
	// the Distributed engine ("dist") is served through them. When empty,
	// dist requests are rejected with a hint to start the server with
	// -cluster.
	ClusterWorkers []string
	// Instance is this server's stable identity: it prefixes every job ID
	// (so a fleet gateway can route GET /v1/jobs/{id} to the backend that
	// owns the record) and is reported on /v1/stats, which is what makes
	// fleet-aggregated stats attributable per backend. Empty selects a
	// random 8-hex-character ID minted at construction.
	Instance string
	// Segment replaces the pooled per-engine Segmenters; nil selects
	// them. Tests use it to control job timing.
	Segment SegmentFunc
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	if o.JobCapacity <= 0 {
		o.JobCapacity = 1024
	}
	if o.JobTTL <= 0 {
		o.JobTTL = 15 * time.Minute
	}
	if o.Instance == "" {
		o.Instance = newInstanceID()
	}
	return o
}

// Server is the segmentation service. Construct with New, mount via
// Handler (or use it directly as an http.Handler), and Close it after the
// enclosing http.Server has shut down to drain in-flight jobs.
type Server struct {
	opts    Options
	pool    *Pool
	cache   *resultCache
	metrics *metrics
	jobs    *jobStore
	mux     *http.ServeMux
	// jobWG tracks the per-job monitor goroutines that move records to
	// their terminal state; Close waits for them after draining the pool.
	jobWG sync.WaitGroup
	// segmenters are the long-lived per-engine sessions every job runs
	// through: their buffer pools are what makes the steady-state
	// cache-miss path allocate near zero for the split stage.
	segmenters map[regiongrow.EngineKind]*regiongrow.Segmenter
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	kinds := allKinds()
	if len(opts.ClusterWorkers) > 0 {
		kinds = append(kinds, regiongrow.Distributed)
	}
	s := &Server{
		opts:       opts,
		cache:      newResultCache(opts.CacheEntries),
		metrics:    newMetrics(opts.Instance, kinds),
		jobs:       newJobStore(opts.JobCapacity, opts.JobTTL),
		mux:        http.NewServeMux(),
		segmenters: make(map[regiongrow.EngineKind]*regiongrow.Segmenter),
	}
	for _, k := range kinds {
		var kopts []regiongrow.Option
		if k == regiongrow.Distributed {
			kopts = append(kopts, regiongrow.WithClusterWorkers(opts.ClusterWorkers))
		}
		sg, err := regiongrow.New(k, kopts...)
		if err != nil {
			panic(err) // unreachable: every listed kind is constructible
		}
		s.segmenters[k] = sg
	}
	fn := opts.Segment
	if fn == nil {
		fn = s.segment
	}
	// Results are cached and observed from the worker, not the handler:
	// under the warm-abandoned policy that is what lets a job whose client
	// gave up still warm the cache. Only successful jobs are recorded —
	// cancelled compute surfaces here with its context error and is
	// dropped. The job's stage gauge is released here too: this callback
	// runs on the worker after compute has truly ended, the only point
	// correct under every policy and SegmentFunc.
	s.pool = NewPool(opts.Workers, opts.QueueDepth, fn, func(r Result) {
		if t, ok := r.Obs.(finisher); ok {
			t.finish()
		}
		if r.Err == nil {
			s.metrics.observe(r.Kind, r.Elapsed)
			s.cache.Put(r.Key, r.Seg)
		}
	}, opts.WarmAbandoned)
	s.mux.HandleFunc("POST /v1/segment", s.handleSegment)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/cluster", s.handleClusterGet)
	s.mux.HandleFunc("POST /v1/cluster/join", s.handleClusterJoin)
	s.mux.HandleFunc("POST /v1/cluster/leave", s.handleClusterLeave)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// finisher is implemented by observers that must be finalized on the
// worker when compute truly ends — job trackers releasing their stage
// gauge, whatever observer wraps them.
type finisher interface{ finish() }

// segment is the default SegmentFunc: route the job through the pooled
// session for its engine kind. (The pool worker releases the job
// tracker's stage gauge after any SegmentFunc returns.)
func (s *Server) segment(ctx context.Context, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind, obs regiongrow.Observer) (*regiongrow.Segmentation, error) {
	sg, ok := s.segmenters[kind]
	if !ok {
		// Unreachable via HTTP (ParseEngineKind gates kinds), kept for
		// direct Pool users.
		var err error
		if sg, err = regiongrow.New(kind); err != nil {
			return nil, err
		}
	}
	return sg.SegmentObserved(ctx, im, cfg, obs)
}

// Handler returns the service's routing handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the worker pool after draining accepted jobs, then waits
// for every job record to settle into its terminal state. Call it after
// http.Server.Shutdown has returned so no handler is still submitting.
func (s *Server) Close() {
	s.pool.Close()
	s.jobWG.Wait()
}

// Stats returns a point-in-time snapshot of the service counters — the
// same document /v1/stats serves.
func (s *Server) Stats() Stats { return s.metrics.snapshot(s.pool, s.cache, s.jobs) }

// Instance returns this server's stable instance ID (Options.Instance, or
// the random ID minted when none was configured).
func (s *Server) Instance() string { return s.opts.Instance }

// ServingEngineKinds lists the engines worth putting behind the server:
// every kind works, but the simulated CM kinds exist to report machine
// cost-model times, not to serve throughput.
func ServingEngineKinds() []regiongrow.EngineKind {
	return []regiongrow.EngineKind{regiongrow.SequentialEngine, regiongrow.NativeParallel}
}
