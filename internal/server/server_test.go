package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"regiongrow"
)

func paperPGM(t *testing.T, id regiongrow.PaperImageID) (*regiongrow.Image, []byte) {
	t.Helper()
	im := regiongrow.GeneratePaperImage(id)
	var buf bytes.Buffer
	if err := regiongrow.WritePGM(&buf, im); err != nil {
		t.Fatal(err)
	}
	return im, buf.Bytes()
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(opts)
	ts := httptest.NewServer(svc)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postSegment(t *testing.T, ts *httptest.Server, query string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/segment"+query, "image/x-portable-graymap", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestSegmentPGMRoundTrip uploads a paper image and checks the PGM the
// server returns is byte-identical to what the library produces directly.
func TestSegmentPGMRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	im, pgm := paperPGM(t, regiongrow.Image3Circles128)

	resp := postSegment(t, ts, "?format=pgm", pgm)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	seg, err := regiongrow.Segment(im, regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := regiongrow.WritePGM(&want, regiongrow.Recolour(seg, im)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("served PGM differs from library output (%d vs %d bytes)", len(got), want.Len())
	}
	if h := resp.Header.Get("X-Cache"); h != "miss" {
		t.Fatalf("X-Cache = %q, want miss", h)
	}
}

type segmentJSON struct {
	Engine string `json:"engine"`
	Cache  string `json:"cache"`
	Image  struct {
		Width  int    `json:"width"`
		Height int    `json:"height"`
		SHA256 string `json:"sha256"`
	} `json:"image"`
	Result struct {
		FinalRegions int     `json:"final_regions"`
		Labels       []int32 `json:"labels"`
		Regions      []struct {
			ID   int32 `json:"id"`
			Area int   `json:"area"`
		} `json:"regions"`
	} `json:"result"`
}

func decodeSegment(t *testing.T, resp *http.Response) segmentJSON {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out segmentJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	return out
}

// TestSegmentJSONMatchesLibrary checks the JSON labels equal the library's
// Segment output, for both an upload and a by-name paper image on the
// native engine.
func TestSegmentJSONMatchesLibrary(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	im, pgm := paperPGM(t, regiongrow.Image1NestedRects128)
	seg, err := regiongrow.Segment(im, regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	upload := decodeSegment(t, postSegment(t, ts, "?labels=1", pgm))
	byName := decodeSegment(t, postSegment(t, ts, "?labels=1&image=image1&engine=native", nil))

	for name, got := range map[string]segmentJSON{"upload": upload, "byname": byName} {
		if got.Result.FinalRegions != seg.FinalRegions {
			t.Errorf("%s: final_regions = %d, want %d", name, got.Result.FinalRegions, seg.FinalRegions)
		}
		if len(got.Result.Labels) != len(seg.Labels) {
			t.Fatalf("%s: %d labels, want %d", name, len(got.Result.Labels), len(seg.Labels))
		}
		for i := range seg.Labels {
			if got.Result.Labels[i] != seg.Labels[i] {
				t.Fatalf("%s: label[%d] = %d, want %d", name, i, got.Result.Labels[i], seg.Labels[i])
			}
		}
		if len(got.Result.Regions) != seg.FinalRegions {
			t.Errorf("%s: %d region stats, want %d", name, len(got.Result.Regions), seg.FinalRegions)
		}
		if got.Image.SHA256 != regiongrow.HashImage(im) {
			t.Errorf("%s: image hash mismatch", name)
		}
	}
}

// TestCacheHitMiss checks repeat requests hit the cache, distinct configs
// miss, and seed differences under deterministic tie policies are
// canonicalized away.
func TestCacheHitMiss(t *testing.T) {
	svc, ts := newTestServer(t, Options{})
	_, pgm := paperPGM(t, regiongrow.Image2Rects128)

	if got := decodeSegment(t, postSegment(t, ts, "", pgm)); got.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", got.Cache)
	}
	if got := decodeSegment(t, postSegment(t, ts, "", pgm)); got.Cache != "hit" {
		t.Fatalf("repeat request cache = %q, want hit", got.Cache)
	}
	// A different random seed is a different result — must miss.
	if got := decodeSegment(t, postSegment(t, ts, "?seed=2", pgm)); got.Cache != "miss" {
		t.Fatalf("changed random seed cache = %q, want miss", got.Cache)
	}
	// Under smallest-id the seed is inert, so different seeds share a key.
	if got := decodeSegment(t, postSegment(t, ts, "?tie=smallest-id&seed=3", pgm)); got.Cache != "miss" {
		t.Fatalf("first smallest-id cache = %q, want miss", got.Cache)
	}
	if got := decodeSegment(t, postSegment(t, ts, "?tie=smallest-id&seed=4", pgm)); got.Cache != "hit" {
		t.Fatalf("seed-only change under smallest-id cache = %q, want hit (canonicalization)", got.Cache)
	}

	st := svc.Stats()
	if st.Cache.Hits < 2 || st.Cache.Misses < 3 {
		t.Fatalf("cache counters hits=%d misses=%d, want >=2 and >=3", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Cache.Entries == 0 {
		t.Fatal("cache reports zero entries after misses")
	}
}

// blockingSegment returns a SegmentFunc that signals each start on started
// and blocks until release is closed, then produces a minimal valid
// segmentation. It ignores ctx: jobs run to completion once started, which
// keeps the shutdown and queueing tests deterministic.
func blockingSegment(started chan<- struct{}, release <-chan struct{}) SegmentFunc {
	return func(ctx context.Context, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind, obs regiongrow.Observer) (*regiongrow.Segmentation, error) {
		started <- struct{}{}
		<-release
		return &regiongrow.Segmentation{
			W: im.W, H: im.H,
			Labels: make([]int32, im.W*im.H),
		}, nil
	}
}

// TestQueueFull429 saturates a 1-worker/1-slot server and checks the next
// request is rejected with 429 while the accepted ones complete.
func TestQueueFull429(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	svc, ts := newTestServer(t, Options{
		Workers:      1,
		QueueDepth:   1,
		CacheEntries: -1,
		Segment:      blockingSegment(started, release),
	})
	_, pgm := paperPGM(t, regiongrow.Image1NestedRects128)

	results := make(chan int, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/segment", "image/x-portable-graymap", bytes.NewReader(pgm))
		if err != nil {
			results <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- resp.StatusCode
	}
	go post() // occupies the worker
	<-started
	go post() // occupies the queue slot
	waitFor(t, func() bool { return svc.Stats().Queue.Depth == 1 })

	resp := postSegment(t, ts, "", pgm) // nowhere to go: 429
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	close(release)
	for i := 0; i < 2; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("accepted request %d finished with %d, want 200", i, code)
		}
	}
	st := svc.Stats()
	if st.Requests.Rejected != 1 || st.Requests.Served != 2 {
		t.Fatalf("rejected=%d served=%d, want 1 and 2", st.Requests.Rejected, st.Requests.Served)
	}
}

// TestGracefulShutdownDrains starts a real http.Server, blocks a request
// mid-job, initiates Shutdown, and checks the in-flight request still
// completes with 200.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	svc := New(Options{Workers: 1, QueueDepth: 4, Segment: blockingSegment(started, release)})
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: svc}
	go httpSrv.Serve(ln)

	_, pgm := paperPGM(t, regiongrow.Image1NestedRects128)
	url := fmt.Sprintf("http://%s/v1/segment", ln.Addr())
	results := make(chan int, 1)
	go func() {
		resp, err := http.Post(url, "image/x-portable-graymap", bytes.NewReader(pgm))
		if err != nil {
			results <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		results <- resp.StatusCode
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- httpSrv.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight request, not kill it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if code := <-results; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	svc.Close()
	if _, err := svc.pool.Submit(context.Background(), "", nil, regiongrow.Config{}, regiongrow.SequentialEngine, nil); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

// TestBadRequests checks malformed parameters and bodies produce 400s
// whose text names the valid choices.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	_, pgm := paperPGM(t, regiongrow.Image1NestedRects128)

	cases := []struct {
		name, query string
		body        []byte
		wantSubstr  string
	}{
		{"engine", "?engine=warp", pgm, "sequential"},
		{"tie", "?tie=coin-flip", pgm, "smallest-id"},
		{"threshold", "?threshold=x", pgm, "threshold"},
		{"seed", "?seed=-1", pgm, "seed"},
		{"maxsquare", "?maxsquare=-2", pgm, "maxsquare"},
		{"format", "?format=bmp", pgm, "json or pgm"},
		{"image", "?image=image9", nil, "image1"},
		{"body", "", []byte("not a pgm"), "PGM"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postSegment(t, ts, tc.query, tc.body)
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.wantSubstr) {
				t.Fatalf("error %q does not name valid choices (%q)", body, tc.wantSubstr)
			}
		})
	}
}

// TestOversizedUpload413 checks a body above MaxBodyBytes is answered
// 413, not 400.
func TestOversizedUpload413(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 64})
	_, pgm := paperPGM(t, regiongrow.Image1NestedRects128)
	resp := postSegment(t, ts, "", pgm)
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "upload limit") {
		t.Fatalf("413 body %q does not mention the upload limit", body)
	}
}

// TestAbandonedRequestWarmsCache checks that under the explicit
// WarmAbandoned policy a job whose client disconnects mid-run still
// completes and populates the cache, and is counted as a disconnect
// cancellation rather than a failure.
func TestAbandonedRequestWarmsCache(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	svc := New(Options{Workers: 1, QueueDepth: 4, WarmAbandoned: true, Segment: blockingSegment(started, release)})
	defer svc.Close()
	_, pgm := paperPGM(t, regiongrow.Image1NestedRects128)

	ctx, cancel := context.WithCancel(context.Background())
	r := httptest.NewRequestWithContext(ctx, http.MethodPost, "/v1/segment", bytes.NewReader(pgm))
	handlerDone := make(chan struct{})
	go func() {
		svc.ServeHTTP(httptest.NewRecorder(), r)
		close(handlerDone)
	}()
	<-started
	cancel() // the client goes away while the worker is mid-job
	<-handlerDone
	close(release)

	waitFor(t, func() bool { return svc.cache.Len() == 1 })
	st := svc.Stats()
	if st.Requests.Canceled != 1 || st.Requests.CanceledDisconnect != 1 || st.Requests.Failed != 0 {
		t.Fatalf("canceled=%d disconnect=%d failed=%d, want 1, 1, 0",
			st.Requests.Canceled, st.Requests.CanceledDisconnect, st.Requests.Failed)
	}

	// The warmed entry must now serve a hit without touching the pool.
	w := httptest.NewRecorder()
	svc.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/segment", bytes.NewReader(pgm)))
	if w.Code != http.StatusOK {
		t.Fatalf("follow-up status %d: %s", w.Code, w.Body.String())
	}
	var out segmentJSON
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Cache != "hit" {
		t.Fatalf("follow-up cache = %q, want hit (abandoned job should have warmed it)", out.Cache)
	}
}

// ctxAwareBlocking returns a SegmentFunc that walks the observer to the
// merge stage, signals start, then blocks until its context ends or
// release closes — the shape of a real engine under the new ctx API.
func ctxAwareBlocking(started chan<- struct{}, release <-chan struct{}) SegmentFunc {
	return func(ctx context.Context, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind, obs regiongrow.Observer) (*regiongrow.Segmentation, error) {
		if obs != nil {
			obs.Observe(regiongrow.StageEvent{Kind: regiongrow.EventSplitStart})
			obs.Observe(regiongrow.StageEvent{Kind: regiongrow.EventSplitDone, Iterations: 4, Squares: 9})
			obs.Observe(regiongrow.StageEvent{Kind: regiongrow.EventGraphDone, Squares: 9})
			obs.Observe(regiongrow.StageEvent{Kind: regiongrow.EventMergeIteration, Iteration: 3, Merges: 2})
		}
		started <- struct{}{}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			seg := &regiongrow.Segmentation{W: im.W, H: im.H, Labels: make([]int32, im.W*im.H)}
			if obs != nil {
				obs.Observe(regiongrow.StageEvent{Kind: regiongrow.EventMergeDone, Iterations: 3, Regions: 1})
			}
			return seg, nil
		}
	}
}

// TestRequestTimeout504 checks a compute exceeding RequestTimeout is
// answered 504 naming the stage the job reached, counted under
// canceled_deadline, and — under the default policy — actually cancelled,
// freeing its worker without warming the cache.
func TestRequestTimeout504(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	svc, ts := newTestServer(t, Options{
		Workers:        1,
		QueueDepth:     4,
		RequestTimeout: 50 * time.Millisecond,
		Segment:        ctxAwareBlocking(started, release),
	})
	_, pgm := paperPGM(t, regiongrow.Image1NestedRects128)

	resp := postSegment(t, ts, "", pgm)
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline exceeded") || !strings.Contains(string(body), "merge (iteration 3)") {
		t.Fatalf("504 body %q does not name the deadline and the stage reached", body)
	}
	<-started

	// The worker must come free without release ever closing: the
	// deadline cancelled the compute.
	waitFor(t, func() bool { return svc.pool.InFlight() == 0 })
	if n := svc.cache.Len(); n != 0 {
		t.Fatalf("cache holds %d entries after a cancelled job, want 0", n)
	}
	st := svc.Stats()
	if st.Requests.CanceledDeadline != 1 || st.Requests.Canceled != 1 {
		t.Fatalf("canceled_deadline=%d canceled=%d, want 1 and 1",
			st.Requests.CanceledDeadline, st.Requests.Canceled)
	}
	if st.Requests.CanceledDisconnect != 0 {
		t.Fatalf("canceled_disconnect=%d, want 0", st.Requests.CanceledDisconnect)
	}
}

// TestDisconnectCancelsComputeByDefault checks the default abandoned-job
// policy: a client disconnect cancels the engine (the worker frees
// without the job completing), nothing warms the cache, and the outcome
// is counted as a disconnect cancellation.
func TestDisconnectCancelsComputeByDefault(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	svc := New(Options{Workers: 1, QueueDepth: 4, Segment: ctxAwareBlocking(started, release)})
	defer svc.Close()
	_, pgm := paperPGM(t, regiongrow.Image1NestedRects128)

	ctx, cancel := context.WithCancel(context.Background())
	r := httptest.NewRequestWithContext(ctx, http.MethodPost, "/v1/segment", bytes.NewReader(pgm))
	handlerDone := make(chan struct{})
	go func() {
		svc.ServeHTTP(httptest.NewRecorder(), r)
		close(handlerDone)
	}()
	<-started
	cancel() // the client goes away mid-job
	<-handlerDone

	waitFor(t, func() bool { return svc.pool.InFlight() == 0 })
	if n := svc.cache.Len(); n != 0 {
		t.Fatalf("cache holds %d entries, want 0 (default policy must not warm from abandoned jobs)", n)
	}
	st := svc.Stats()
	if st.Requests.CanceledDisconnect != 1 || st.Requests.Failed != 0 {
		t.Fatalf("canceled_disconnect=%d failed=%d, want 1 and 0",
			st.Requests.CanceledDisconnect, st.Requests.Failed)
	}
	// The tracker's gauges must have been released when the worker
	// finished with the cancelled job.
	if p := st.Progress; p.InSplit != 0 || p.InGraph != 0 || p.InMerge != 0 {
		t.Fatalf("stage gauges leaked after cancellation: %+v", p)
	}
}

// TestStatsProgress runs a real segmentation and checks the observer-fed
// progress block: totals advanced, gauges drained back to zero.
func TestStatsProgress(t *testing.T) {
	svc, ts := newTestServer(t, Options{})
	_, pgm := paperPGM(t, regiongrow.Image2Rects128)
	decodeSegment(t, postSegment(t, ts, "?engine=native", pgm))

	st := svc.Stats()
	p := st.Progress
	if p.SplitsDoneTotal < 1 {
		t.Errorf("splits_done_total = %d, want >= 1", p.SplitsDoneTotal)
	}
	if p.MergeIterationsTotal < 1 || p.MergesTotal < 1 {
		t.Errorf("merge totals = %d iters / %d merges, want >= 1 each",
			p.MergeIterationsTotal, p.MergesTotal)
	}
	if p.InSplit != 0 || p.InGraph != 0 || p.InMerge != 0 {
		t.Errorf("gauges non-zero after completion: %+v", p)
	}
}

// TestCaseInsensitiveParams checks engine and tie names parse regardless
// of case.
func TestCaseInsensitiveParams(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	_, pgm := paperPGM(t, regiongrow.Image1NestedRects128)
	got := decodeSegment(t, postSegment(t, ts, "?engine=NATIVE&tie=Random&image=IMAGE1", pgm))
	if got.Engine != "native" {
		t.Fatalf("engine = %q, want native", got.Engine)
	}
}

// TestHealthzAndStats exercises the liveness and stats endpoints.
func TestHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	_, pgm := paperPGM(t, regiongrow.Image1NestedRects128)
	decodeSegment(t, postSegment(t, ts, "?engine=native", pgm))

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests.Total < 1 || st.Requests.Served < 1 {
		t.Fatalf("stats requests = %+v, want at least one served", st.Requests)
	}
	eh, ok := st.Engines["native"]
	if !ok || eh.Count < 1 {
		t.Fatalf("stats missing native engine histogram: %+v", st.Engines)
	}
	if st.Queue.Workers < 1 || st.Queue.Capacity < 1 {
		t.Fatalf("stats queue = %+v", st.Queue)
	}
}

// TestPoolCloseDrainsQueue checks Close waits for queued (not just
// in-flight) jobs.
func TestPoolCloseDrainsQueue(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	done := make(chan struct{}, 8)
	fn := func(ctx context.Context, im *regiongrow.Image, cfg regiongrow.Config, kind regiongrow.EngineKind, obs regiongrow.Observer) (*regiongrow.Segmentation, error) {
		started <- struct{}{}
		<-release
		done <- struct{}{}
		return &regiongrow.Segmentation{W: 1, H: 1, Labels: []int32{0}}, nil
	}
	p := NewPool(1, 4, fn, nil, false)
	im := regiongrow.NewImage(1, 1)
	for i := 0; i < 3; i++ {
		go p.Submit(context.Background(), "", im, regiongrow.Config{}, regiongrow.SequentialEngine, nil)
	}
	<-started
	waitFor(t, func() bool { return p.QueueDepth() == 2 })

	closed := make(chan struct{})
	go func() { p.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned with jobs still queued")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-closed
	if len(done) != 3 {
		t.Fatalf("%d jobs ran, want 3 (queued jobs dropped on Close)", len(done))
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
