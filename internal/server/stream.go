package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strconv"

	"regiongrow"
)

// handleJobStream answers POST /v1/jobs?stream=1: the streaming
// segmentation path. The uploaded PGM pipes straight through the banded
// streaming engine into a chunked response — the raster is never resident
// on the server, which is what admits inputs far beyond the job paths'
// upload limit (the MaxBodyBytes cap does not apply here; the streaming
// reader's own pixel-count limit bounds the work instead, and memory stays
// O(band) regardless of image size).
//
// The path is synchronous and stateless by design: no job record, no
// worker-pool slot, no result cache — a gigapixel label raster has no
// business in an LRU — so it coexists with the job machinery without
// distorting its capacity planning. Output is the recoloured PGM, or with
// labels=1 the raw label raster (RGLS wire format); both are byte-identical
// to segmenting the same image with the sequential engine. The final
// region count arrives as the X-Final-Regions HTTP trailer, since the
// body starts streaming before the count is known to the client.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	q := r.URL.Query()
	p, err := ParseSegmentValues(q)
	if err != nil {
		s.metrics.failed.Add(1)
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch {
	case q.Get("engine") != "" && p.Kind != regiongrow.SequentialEngine:
		s.metrics.failed.Add(1)
		http.Error(w, "stream=1 runs the streaming engine (sequential-identical output); drop the engine parameter", http.StatusBadRequest)
		return
	case p.ImageName != "":
		s.metrics.failed.Add(1)
		http.Error(w, "stream=1 segments its uploaded PGM body; drop the image parameter", http.StatusBadRequest)
		return
	case q.Get("format") == "json":
		s.metrics.failed.Add(1)
		http.Error(w, "stream=1 streams rasters, not JSON (default: recoloured PGM; labels=1: the raw label raster)", http.StatusBadRequest)
		return
	}
	output := regiongrow.StreamRecolour
	contentType := "image/x-portable-graymap"
	if p.Labels {
		output = regiongrow.StreamLabels
		contentType = "application/octet-stream"
	}

	ctx := r.Context()
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}

	w.Header().Set("Content-Type", contentType)
	w.Header().Set("X-Cache", "bypass")
	w.Header().Set("Trailer", "X-Final-Regions")
	cw := &countingWriter{w: w}
	res, err := regiongrow.SegmentStream(ctx, r.Body, cw, p.Config,
		regiongrow.WithStreamOutput(output))
	if err != nil {
		if cw.n > 0 {
			// The response is already streaming; all that is left is to
			// truncate it. The declared geometry in the output header lets
			// the client detect the short body.
			s.metrics.failed.Add(1)
			return
		}
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.canceledDeadline.Add(1)
			http.Error(w, "deadline exceeded before the output stream started", http.StatusGatewayTimeout)
		case errors.Is(err, context.Canceled):
			s.metrics.canceledDisconnect.Add(1)
		default:
			s.metrics.failed.Add(1)
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	w.Header().Set("X-Final-Regions", strconv.Itoa(res.FinalRegions))
	s.metrics.served.Add(1)
}

// countingWriter counts bytes through to its target, telling the stream
// handler whether an error arrived before or after the response committed.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
