package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"regiongrow"
)

func postStream(t *testing.T, ts *httptest.Server, query string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs?stream=1"+query, "image/x-portable-graymap", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestJobStreamPGMRoundTrip pipes an upload through the streaming path and
// checks the chunked PGM response is byte-identical to recolouring the
// sequential engine's result, with the region count in the trailer.
func TestJobStreamPGMRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	im, pgm := paperPGM(t, regiongrow.Image3Circles128)

	resp := postStream(t, ts, "", pgm)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/x-portable-graymap" {
		t.Errorf("Content-Type = %q", ct)
	}
	if xc := resp.Header.Get("X-Cache"); xc != "bypass" {
		t.Errorf("X-Cache = %q, want bypass (the streaming path never touches the cache)", xc)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	seg, err := regiongrow.Segment(im, regiongrow.Config{Threshold: 10, Tie: regiongrow.RandomTie, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := regiongrow.WritePGM(&want, regiongrow.Recolour(seg, im)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("streamed PGM differs from the sequential engine's recoloured output")
	}
	// Trailers surface after the body is drained.
	if tr := resp.Trailer.Get("X-Final-Regions"); tr != "11" {
		t.Errorf("X-Final-Regions trailer = %q, want 11", tr)
	}
}

// TestJobStreamLabels checks labels=1 streams the raw label raster in the
// RGLS wire format, byte-identical to encoding the sequential result.
func TestJobStreamLabels(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	im, pgm := paperPGM(t, regiongrow.Image1NestedRects128)

	resp := postStream(t, ts, "&labels=1&tie=smallest-id", pgm)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	seg, err := regiongrow.Segment(im, regiongrow.Config{Threshold: 10, Tie: regiongrow.SmallestIDTie, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := regiongrow.EncodeLabels(&want, seg); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("streamed labels differ from the sequential engine's")
	}
}

// TestJobStreamBypassesBodyLimit uploads a PGM bigger than MaxBodyBytes:
// the job path must reject it, the streaming path must segment it.
func TestJobStreamBypassesBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 1 << 10})
	_, pgm := paperPGM(t, regiongrow.Image4NestedRects256) // 64KiB raster

	resp, err := http.Post(ts.URL+"/v1/jobs", "image/x-portable-graymap", bytes.NewReader(pgm))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("job path status %d, want 413 under the 1KiB limit", resp.StatusCode)
	}

	resp = postStream(t, ts, "", pgm)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream path status %d: %s", resp.StatusCode, body)
	}
	if _, err := io.ReadAll(resp.Body); err != nil {
		t.Fatal(err)
	}
}

// TestJobStreamRejections pins the parameter surface: no engines, no
// paper-image names, no JSON, and a malformed body fails cleanly before
// the response commits.
func TestJobStreamRejections(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	_, pgm := paperPGM(t, regiongrow.Image3Circles128)

	for _, tc := range []struct {
		query string
		body  []byte
		want  string
	}{
		{"&engine=native", pgm, "streaming engine"},
		{"&image=image1", nil, "uploaded PGM body"},
		{"&format=json", pgm, "not JSON"},
		{"", []byte("P5\n2 2\n255\nab"), "pixmap"},
	} {
		resp := postStream(t, ts, tc.query, tc.body)
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%q: status %d, want 400", tc.query, resp.StatusCode)
			continue
		}
		if !strings.Contains(string(body), tc.want) {
			t.Errorf("%q: error %q does not mention %q", tc.query, body, tc.want)
		}
	}
}
