// Package shmengine implements the native shared-memory parallel engine:
// the paper's split-and-merge region growing run directly on host
// goroutines, with no simulated machine in the loop.
//
// Where dpengine and mpengine optimise for fidelity to the CM-2 and CM-5
// cost models, this engine optimises for host throughput:
//
//   - the split stage partitions the image into cap-aligned tiles and runs
//     the quadtree combine passes per tile (quadsplit.SplitParallel);
//   - the region adjacency graph is built from cap-aligned row bands, one
//     partial graph per band, stitched along band boundaries;
//   - each merge round computes every region's best-neighbour choice on a
//     worker pool sized to GOMAXPROCS, then contracts the mutual pairs.
//
// Determinism is free by construction: every tie-break in rag.Choose is a
// pure function of (seed, iteration, region id), so the parallel schedule
// cannot change any decision, and the engine produces byte-identical
// segmentations to core.Sequential for every configuration. The test suite
// enforces that property across images, thresholds, tie policies, and
// worker counts.
package shmengine
