package shmengine

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
	"regiongrow/internal/rag"
)

// Engine is the native shared-memory engine.
type Engine struct {
	// workers is the worker pool size; 0 follows GOMAXPROCS at Segment time.
	workers int
}

// New returns a native engine whose worker pool follows GOMAXPROCS.
func New() *Engine { return &Engine{} }

// NewWithWorkers returns a native engine with a fixed worker pool size.
// n <= 0 follows GOMAXPROCS.
func NewWithWorkers(n int) *Engine { return &Engine{workers: n} }

// Name implements core.Engine.
func (e *Engine) Name() string { return "native" }

// Workers returns the effective worker pool size.
func (e *Engine) Workers() int {
	if e.workers > 0 {
		return e.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Segment implements core.Engine.
func (e *Engine) Segment(im *pixmap.Image, cfg core.Config) (*core.Segmentation, error) {
	return e.SegmentContext(context.Background(), im, cfg, core.Run{})
}

// SegmentContext implements core.ContextEngine: tile workers check ctx at
// tile boundaries, the RAG build at band boundaries, and the merge driver
// before every round, so cancellation lands within one iteration and every
// worker goroutine has drained by the time the error returns.
func (e *Engine) SegmentContext(ctx context.Context, im *pixmap.Image, cfg core.Config, run core.Run) (*core.Segmentation, error) {
	workers := e.Workers()
	crit := cfg.Criterion()

	run.Emit(core.StageEvent{Kind: core.EventSplitStart})
	t0 := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	sp, err := quadsplit.SplitParallelCtx(ctx, im, crit,
		quadsplit.Options{MaxSquare: cfg.MaxSquare, Scratch: run.SplitScratch()}, workers)
	if err != nil {
		return nil, err
	}
	splitWall := time.Since(t0) //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	run.Emit(core.StageEvent{Kind: core.EventSplitDone, Iterations: sp.Iterations, Squares: sp.NumSquares})

	t1 := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	g, ids, err := buildRAG(ctx, im, sp.Labels, crit, sp.MaxSquareUsed, workers)
	if err != nil {
		return nil, err
	}
	run.Emit(core.StageEvent{Kind: core.EventGraphDone, Squares: sp.NumSquares})
	stats, asg, err := mergeAll(ctx, g, ids, cfg.Tie, cfg.Seed, workers, run)
	if err != nil {
		return nil, err
	}
	labels := relabel(sp.Labels, ids, asg, workers)
	mergeWall := time.Since(t1) //vet:timing stage wall-time for Stats; never reaches labels or wire bytes

	seg := &core.Segmentation{
		W: im.W, H: im.H,
		Labels:            labels,
		SplitIterations:   sp.Iterations,
		MergeIterations:   stats.Iterations,
		SquaresAfterSplit: sp.NumSquares,
		MergesPerIter:     stats.MergesPerIter,
		ForcedResolutions: stats.ForcedResolutions,
		SplitWall:         splitWall,
		MergeWall:         mergeWall,
	}
	seg.FillRegions(im)
	run.Emit(core.StageEvent{Kind: core.EventMergeDone, Iterations: stats.Iterations, Regions: seg.FinalRegions})
	return seg, nil
}

// parallel runs fn over [0, n) in contiguous chunks on up to `workers`
// goroutines and waits for completion.
func parallel(workers, n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := min(start+chunk, n)
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// buildRAG constructs the region adjacency graph of the split labelling on
// the worker pool. Split regions are squares no larger than the cap and
// aligned to their own size, so a row band whose height is a multiple of
// the cap contains only whole regions: each band yields a complete partial
// graph (full vertex intervals, every intra-band edge), and the bands are
// stitched by adding the edges that cross band boundaries. The returned ID
// list holds every region ID in ascending order; mergeAll and relabel
// reuse it.
func buildRAG(ctx context.Context, im *pixmap.Image, labels []int32, crit homog.Criterion, cap, workers int) (*rag.Graph, []int32, error) {
	w, h := im.W, im.H
	g := rag.NewGraph(crit)
	if w == 0 || h == 0 {
		return g, nil, nil
	}
	if cap < 1 {
		cap = 1
	}
	blocks := (h + cap - 1) / cap
	bands := min(workers, blocks)
	perBand := (blocks + bands - 1) / bands

	// Band extents in rows; the last band absorbs the remainder.
	starts := make([]int, 0, bands)
	ends := make([]int, 0, bands)
	for b := 0; b < bands; b++ {
		y0 := b * perBand * cap
		y1 := min((b+1)*perBand*cap, h)
		if y0 >= y1 {
			break
		}
		starts = append(starts, y0)
		ends = append(ends, y1)
	}

	partial := make([]*rag.Graph, len(starts))
	parallel(workers, len(starts), func(s, e int) {
		for b := s; b < e; b++ {
			// Band boundary: stop building once the run is cancelled; the
			// partial graphs are discarded below.
			if ctx.Err() != nil {
				return
			}
			bg := rag.NewGraph(crit)
			y0, y1 := starts[b], ends[b]
			for y := y0; y < y1; y++ {
				row := y * w
				for x := 0; x < w; x++ {
					i := row + x
					bg.AddVertex(labels[i], homog.Point(im.Pix[i]))
				}
			}
			for y := y0; y < y1; y++ {
				row := y * w
				for x := 0; x < w; x++ {
					i := row + x
					if x+1 < w && labels[i] != labels[i+1] {
						bg.AddEdge(labels[i], labels[i+1])
					}
					if y+1 < y1 && labels[i] != labels[i+w] {
						bg.AddEdge(labels[i], labels[i+w])
					}
				}
			}
			partial[b] = bg
		}
	})

	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Merge the partial graphs (vertex ID sets are disjoint across bands)
	// and stitch the edges crossing each band boundary.
	for _, bg := range partial {
		//vet:ordered keyed transfer between maps with disjoint key sets commutes
		for id, v := range bg.Verts {
			g.Verts[id] = v
		}
	}
	//vet:noctx bounded stitch over at most workers-1 band boundaries, right after the ctx check above; cannot block
	for _, y1 := range ends {
		if y1 >= h {
			continue
		}
		row := (y1 - 1) * w
		for x := 0; x < w; x++ {
			i := row + x
			if labels[i] != labels[i+w] {
				g.AddEdge(labels[i], labels[i+w])
			}
		}
	}

	ids := make([]int32, 0, len(g.Verts))
	for id := range g.Verts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return g, ids, nil
}

// mergeAll is the parallel twin of rag.(*Graph).MergeAll: the same
// rag.Drive control loop, with the per-vertex choice computation and the
// active-edge test fanned out over the worker pool. Because choices are
// pure functions of the graph snapshot, the result is identical to the
// sequential kernel's.
func mergeAll(ctx context.Context, g *rag.Graph, ids []int32, policy rag.TiePolicy, seed uint64, workers int, run core.Run) (rag.MergeStats, *rag.Assignments, error) {
	asg := rag.NewAssignments()
	verts := make([]*rag.Vertex, len(ids))
	for i, id := range ids {
		verts[i] = g.Verts[id]
	}
	stats, err := rag.DriveCtx(ctx, policy,
		func() bool { return hasActiveEdge(g, verts, workers) },
		func(effective rag.TiePolicy, iter int) int {
			var merged int
			merged, verts = mergeIteration(g, verts, effective, seed, iter, asg, workers)
			run.Emit(core.StageEvent{Kind: core.EventMergeIteration, Iteration: iter, Merges: merged})
			return merged
		})
	return stats, asg, err
}

// hasActiveEdge reports whether any edge still satisfies the criterion,
// scanning vertex adjacencies in parallel with an early-exit flag.
func hasActiveEdge(g *rag.Graph, verts []*rag.Vertex, workers int) bool {
	var found atomic.Bool
	parallel(workers, len(verts), func(s, e int) {
		for i := s; i < e && !found.Load(); i++ {
			v := verts[i]
			for wid := range v.Adj {
				if g.Crit.Homogeneous(v.IV.Union(g.Verts[wid].IV)) {
					found.Store(true)
					return
				}
			}
		}
	})
	return found.Load()
}

// mergeIteration executes one merge round: parallel choice computation,
// mutual-pair detection, and sequential contraction of the (disjoint)
// pairs in ascending-ID order — the same order rag.MergeIteration uses.
// It returns the number of pairs merged and the surviving vertex slice.
func mergeIteration(g *rag.Graph, verts []*rag.Vertex, policy rag.TiePolicy, seed uint64, iter int, asg *rag.Assignments, workers int) (int, []*rag.Vertex) {
	choices := make([]int32, len(verts))
	parallel(workers, len(verts), func(s, e int) {
		var tied []int32 // per-chunk tie scratch, amortised across vertices
		for i := s; i < e; i++ {
			choices[i], tied = g.ChooseBuf(verts[i], policy, seed, iter, tied)
		}
	})

	choiceOf := make(map[int32]int32, len(verts))
	for i, v := range verts {
		if choices[i] != rag.NoChoice {
			choiceOf[v.ID] = choices[i]
		}
	}
	var pairs [][2]int32
	for i, v := range verts {
		c := choices[i]
		if c != rag.NoChoice && v.ID < c && choiceOf[c] == v.ID {
			pairs = append(pairs, [2]int32{v.ID, c})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })

	if len(pairs) == 0 {
		return 0, verts
	}
	losers := make(map[int32]struct{}, len(pairs))
	for _, p := range pairs {
		g.Contract(p[0], p[1])
		asg.Record(p[1], p[0])
		losers[p[1]] = struct{}{}
	}
	alive := verts[:0]
	for _, v := range verts {
		if _, gone := losers[v.ID]; !gone {
			alive = append(alive, v)
		}
	}
	return len(pairs), alive
}

// relabel maps split-stage labels through the merge assignments. Roots are
// resolved once per region sequentially (Find compresses paths, so it must
// not race); the per-pixel mapping then fans out over the pool.
func relabel(labels []int32, ids []int32, asg *rag.Assignments, workers int) []int32 {
	roots := make(map[int32]int32, len(ids))
	for _, id := range ids {
		roots[id] = asg.Find(id)
	}
	out := make([]int32, len(labels))
	parallel(workers, len(labels), func(s, e int) {
		for i := s; i < e; i++ {
			out[i] = roots[labels[i]]
		}
	})
	return out
}

var _ core.ContextEngine = (*Engine)(nil)
