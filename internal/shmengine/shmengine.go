package shmengine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/homog"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
	"regiongrow/internal/rag"
)

// Engine is the native shared-memory engine.
type Engine struct {
	// workers is the worker pool size; 0 follows GOMAXPROCS at Segment time.
	workers int
}

// New returns a native engine whose worker pool follows GOMAXPROCS.
func New() *Engine { return &Engine{} }

// NewWithWorkers returns a native engine with a fixed worker pool size.
// n <= 0 follows GOMAXPROCS.
func NewWithWorkers(n int) *Engine { return &Engine{workers: n} }

// Name implements core.Engine.
func (e *Engine) Name() string { return "native" }

// Workers returns the effective worker pool size.
func (e *Engine) Workers() int {
	if e.workers > 0 {
		return e.workers
	}
	return runtime.GOMAXPROCS(0)
}

// Segment implements core.Engine.
func (e *Engine) Segment(im *pixmap.Image, cfg core.Config) (*core.Segmentation, error) {
	return e.SegmentContext(context.Background(), im, cfg, core.Run{})
}

// SegmentContext implements core.ContextEngine: tile workers check ctx at
// tile boundaries, the RAG build at band boundaries, and the merge driver
// before every round, so cancellation lands within one iteration and every
// worker goroutine has drained by the time the error returns.
func (e *Engine) SegmentContext(ctx context.Context, im *pixmap.Image, cfg core.Config, run core.Run) (*core.Segmentation, error) {
	workers := e.Workers()
	crit := cfg.Criterion()

	run.Emit(core.StageEvent{Kind: core.EventSplitStart})
	t0 := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	sp, err := quadsplit.SplitParallelCtx(ctx, im, crit,
		quadsplit.Options{MaxSquare: cfg.MaxSquare, Scratch: run.SplitScratch()}, workers)
	if err != nil {
		return nil, err
	}
	splitWall := time.Since(t0) //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	run.Emit(core.StageEvent{Kind: core.EventSplitDone, Iterations: sp.Iterations, Squares: sp.NumSquares})

	t1 := time.Now() //vet:timing stage wall-time for Stats; never reaches labels or wire bytes
	g, err := buildRAG(ctx, im, sp.Labels, crit, sp.MaxSquareUsed, workers)
	if err != nil {
		return nil, err
	}
	run.Emit(core.StageEvent{Kind: core.EventGraphDone, Squares: sp.NumSquares})
	stats, asg, err := mergeAll(ctx, g, cfg.Tie, cfg.Seed, workers, run)
	if err != nil {
		return nil, err
	}
	labels := relabel(sp.Labels, g, asg, workers)
	mergeWall := time.Since(t1) //vet:timing stage wall-time for Stats; never reaches labels or wire bytes

	seg := &core.Segmentation{
		W: im.W, H: im.H,
		Labels:            labels,
		SplitIterations:   sp.Iterations,
		MergeIterations:   stats.Iterations,
		SquaresAfterSplit: sp.NumSquares,
		MergesPerIter:     stats.MergesPerIter,
		ForcedResolutions: stats.ForcedResolutions,
		SplitWall:         splitWall,
		MergeWall:         mergeWall,
	}
	seg.FillRegions(im)
	run.Emit(core.StageEvent{Kind: core.EventMergeDone, Iterations: stats.Iterations, Regions: seg.FinalRegions})
	return seg, nil
}

// parallel runs fn over [0, n) in contiguous chunks on up to `workers`
// goroutines and waits for completion.
func parallel(workers, n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := 0; start < n; start += chunk {
		end := min(start+chunk, n)
		wg.Add(1)
		go func(s, e int) {
			defer wg.Done()
			fn(s, e)
		}(start, end)
	}
	wg.Wait()
}

// buildRAG constructs the region adjacency graph of the split labelling on
// the worker pool. Split regions are squares no larger than the cap and
// aligned to their own size, so a row band whose height is a multiple of
// the cap contains only whole regions: each band yields a complete partial
// graph (full vertex intervals, every intra-band edge — built by the
// run-length rag builder over a band-sized image view), and the bands are
// grafted into one arena in band order and stitched by adding the edges
// that cross band boundaries.
func buildRAG(ctx context.Context, im *pixmap.Image, labels []int32, crit homog.Criterion, cap, workers int) (*rag.Graph, error) {
	w, h := im.W, im.H
	g := rag.NewGraph(crit)
	if w == 0 || h == 0 {
		return g, nil
	}
	if cap < 1 {
		cap = 1
	}
	blocks := (h + cap - 1) / cap
	bands := min(workers, blocks)
	perBand := (blocks + bands - 1) / bands

	// Band extents in rows; the last band absorbs the remainder.
	starts := make([]int, 0, bands)
	ends := make([]int, 0, bands)
	for b := 0; b < bands; b++ {
		y0 := b * perBand * cap
		y1 := min((b+1)*perBand*cap, h)
		if y0 >= y1 {
			break
		}
		starts = append(starts, y0)
		ends = append(ends, y1)
	}

	partial := make([]*rag.Graph, len(starts))
	parallel(workers, len(starts), func(s, e int) {
		for b := s; b < e; b++ {
			y0, y1 := starts[b], ends[b]
			band := &pixmap.Image{W: w, H: y1 - y0, Pix: im.Pix[y0*w : y1*w]}
			// Cancellation is checked inside the builder; a cancelled band
			// stays nil and is discarded below.
			bg, err := rag.BuildFromLabelsCtx(ctx, band, labels[y0*w:y1*w], crit)
			if err != nil {
				return
			}
			partial[b] = bg
		}
	})

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Graft the partial graphs (vertex ID sets are disjoint across bands)
	// and stitch the edges crossing each band boundary.
	//vet:noctx bounded graft of at most workers partial graphs, right after the ctx check above; cannot block
	for _, bg := range partial {
		g.Absorb(bg)
	}
	//vet:noctx bounded stitch over at most workers-1 band boundaries, right after the ctx check above; cannot block
	for _, y1 := range ends {
		if y1 >= h {
			continue
		}
		row := (y1 - 1) * w
		for x := 0; x < w; x++ {
			i := row + x
			if labels[i] != labels[i+w] {
				g.AddEdge(labels[i], labels[i+w])
			}
		}
	}
	return g, nil
}

// mergeAll is the parallel twin of rag.(*Graph).MergeAll: the same
// rag.Drive control loop, with the per-vertex choice computation and the
// active-edge test fanned out over the worker pool as read-only scans of
// the arena. Because choices are pure functions of the graph snapshot,
// the result is identical to the sequential kernel's.
func mergeAll(ctx context.Context, g *rag.Graph, policy rag.TiePolicy, seed uint64, workers int, run core.Run) (rag.MergeStats, *rag.Assignments, error) {
	asg := rag.NewAssignments()
	var choices []int32 // slot-indexed scratch reused across rounds
	stats, err := rag.DriveCtx(ctx, policy,
		func() bool { return hasActiveEdge(g, workers) },
		func(effective rag.TiePolicy, iter int) int {
			var merged int
			merged, choices = mergeIteration(g, effective, seed, iter, asg, workers, choices)
			run.Emit(core.StageEvent{Kind: core.EventMergeIteration, Iteration: iter, Merges: merged})
			return merged
		})
	return stats, asg, err
}

// hasActiveEdge reports whether any edge still satisfies the criterion,
// scanning slot adjacencies in parallel with an early-exit flag.
func hasActiveEdge(g *rag.Graph, workers int) bool {
	var found atomic.Bool
	parallel(workers, g.Slots(), func(s, e int) {
		for i := s; i < e && !found.Load(); i++ {
			if g.SlotAlive(i) && g.SlotHasActive(i) {
				found.Store(true)
				return
			}
		}
	})
	return found.Load()
}

// mergeIteration executes one merge round: parallel choice computation
// into a slot-indexed array, then mutual-pair detection and contraction of
// the (disjoint) pairs from the smaller-ID endpoint — exactly the
// rag.MergeIteration semantics, so the result is byte-identical to the
// sequential kernel. It returns the number of pairs merged and the
// (possibly grown) choice scratch.
func mergeIteration(g *rag.Graph, policy rag.TiePolicy, seed uint64, iter int, asg *rag.Assignments, workers int, choices []int32) (int, []int32) {
	n := g.Slots()
	if cap(choices) < n {
		choices = make([]int32, n)
	}
	choices = choices[:n]
	parallel(workers, n, func(s, e int) {
		var tied []int32 // per-chunk tie scratch, amortised across slots
		for i := s; i < e; i++ {
			if !g.SlotAlive(i) {
				choices[i] = -1
				continue
			}
			var c int
			c, tied = g.SlotChoice(i, policy, seed, iter, tied)
			choices[i] = int32(c)
		}
	})

	merged := 0
	for s := 0; s < n; s++ {
		c := choices[s]
		if c < 0 || int(choices[c]) != s || g.SlotID(s) >= g.SlotID(int(c)) {
			continue
		}
		g.ContractSlots(s, int(c))
		asg.Record(g.SlotID(int(c)), g.SlotID(s))
		merged++
	}
	return merged, choices
}

// relabel maps split-stage labels through the merge assignments. Roots are
// resolved once per region sequentially (Find compresses paths, so it must
// not race); the per-pixel mapping then fans out over the pool, with a
// last-label run cache keeping most pixels off the map.
func relabel(labels []int32, g *rag.Graph, asg *rag.Assignments, workers int) []int32 {
	roots := make(map[int32]int32, g.Slots())
	for s := 0; s < g.Slots(); s++ {
		id := g.SlotID(s)
		roots[id] = asg.Find(id)
	}
	out := make([]int32, len(labels))
	parallel(workers, len(labels), func(s, e int) {
		lastLab, lastRoot := int32(-1), int32(-1) // labels are pixel indices, never negative
		for i := s; i < e; i++ {
			lab := labels[i]
			if lab != lastLab {
				lastLab, lastRoot = lab, roots[lab]
			}
			out[i] = lastRoot
		}
	})
	return out
}

var _ core.ContextEngine = (*Engine)(nil)
