package shmengine

import (
	"fmt"
	"testing"

	"regiongrow/internal/core"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/rag"
)

// TestMatchesSequential is the engine's defining property: byte-identical
// segmentations to core.Sequential — labels and the full statistics the
// paper's tables report — across images (including non-square and
// non-power-of-two), thresholds, tie policies, seeds, and worker counts.
func TestMatchesSequential(t *testing.T) {
	images := map[string]*pixmap.Image{
		"uniform32":  pixmap.Uniform(32, 80),
		"checker64":  pixmap.Checkerboard(64, 0, 255),
		"gradient64": pixmap.Gradient(64, 255),
		"random96":   pixmap.Random(96, 11),
		"circles128": pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions()),
		"rect96x48":  rectScene(96, 48),
		"odd75x33":   oddCrop(75, 33),
	}
	for name, im := range images {
		for _, threshold := range []int{0, 10, 60} {
			for _, tie := range []rag.TiePolicy{rag.SmallestID, rag.LargestID, rag.Random} {
				for _, seed := range []uint64{1, 42} {
					cfg := core.Config{Threshold: threshold, Tie: tie, Seed: seed}
					want, err := core.Sequential{}.Segment(im, cfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{1, 2, 3, 7} {
						label := fmt.Sprintf("%s/T=%d/%v/seed=%d/w=%d", name, threshold, tie, seed, workers)
						got, err := NewWithWorkers(workers).Segment(im, cfg)
						if err != nil {
							t.Fatalf("%s: %v", label, err)
						}
						checkEqual(t, label, want, got)
						if err := core.Validate(got, im, cfg.Criterion()); err != nil {
							t.Errorf("%s: invalid: %v", label, err)
						}
					}
					if tie != rag.Random {
						break // seed only matters under Random
					}
				}
			}
		}
	}
}

func checkEqual(t *testing.T, label string, want, got *core.Segmentation) {
	t.Helper()
	if !want.EqualLabels(got) {
		t.Errorf("%s: labels differ from sequential", label)
	}
	if got.SplitIterations != want.SplitIterations {
		t.Errorf("%s: split iters %d, want %d", label, got.SplitIterations, want.SplitIterations)
	}
	if got.MergeIterations != want.MergeIterations {
		t.Errorf("%s: merge iters %d, want %d", label, got.MergeIterations, want.MergeIterations)
	}
	if got.SquaresAfterSplit != want.SquaresAfterSplit {
		t.Errorf("%s: squares %d, want %d", label, got.SquaresAfterSplit, want.SquaresAfterSplit)
	}
	if got.FinalRegions != want.FinalRegions {
		t.Errorf("%s: regions %d, want %d", label, got.FinalRegions, want.FinalRegions)
	}
	if got.ForcedResolutions != want.ForcedResolutions {
		t.Errorf("%s: forced resolutions %d, want %d", label, got.ForcedResolutions, want.ForcedResolutions)
	}
	if fmt.Sprint(got.MergesPerIter) != fmt.Sprint(want.MergesPerIter) {
		t.Errorf("%s: merges/iter %v, want %v", label, got.MergesPerIter, want.MergesPerIter)
	}
}

// TestMaxSquareOptions covers the cap pass-through, including the
// unbounded textbook algorithm and the degenerate 1-pixel cap.
func TestMaxSquareOptions(t *testing.T) {
	im := pixmap.Generate(pixmap.Image2Rects128, pixmap.DefaultGenOptions())
	for _, maxSquare := range []int{0, 1, 8, -1} {
		cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 5, MaxSquare: maxSquare}
		want, err := core.Sequential{}.Segment(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewWithWorkers(4).Segment(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkEqual(t, fmt.Sprintf("cap=%d", maxSquare), want, got)
	}
}

// TestEmptyAndTinyImages exercises the degenerate shapes.
func TestEmptyAndTinyImages(t *testing.T) {
	for _, dims := range [][2]int{{0, 0}, {1, 1}, {1, 7}, {5, 1}, {2, 2}} {
		im := pixmap.New(dims[0], dims[1])
		for i := range im.Pix {
			im.Pix[i] = uint8(i * 37)
		}
		cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 1}
		want, err := core.Sequential{}.Segment(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewWithWorkers(4).Segment(im, cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkEqual(t, fmt.Sprintf("%dx%d", dims[0], dims[1]), want, got)
	}
}

// TestWorkersDefault checks the GOMAXPROCS-following default pool.
func TestWorkersDefault(t *testing.T) {
	if New().Workers() < 1 {
		t.Fatal("default worker pool empty")
	}
	if NewWithWorkers(6).Workers() != 6 {
		t.Fatal("explicit worker count ignored")
	}
	if NewWithWorkers(0).Workers() < 1 {
		t.Fatal("zero workers should follow GOMAXPROCS")
	}
	if New().Name() != "native" {
		t.Fatalf("engine name %q", New().Name())
	}
}

func rectScene(w, h int) *pixmap.Image {
	im := pixmap.New(w, h)
	im.FillRect(0, 0, w, h, 30)
	im.FillRect(w/8+1, h/8+1, w-w/8-1, h-h/8-1, 120)
	im.FillRect(w/2, h/4, w-2, h/2, 220)
	return im
}

func oddCrop(w, h int) *pixmap.Image {
	sq := pixmap.Random(max(w, h), 19)
	im, err := sq.SubImage(0, 0, w, h)
	if err != nil {
		panic(err)
	}
	return im
}
