package simdvm

import (
	"testing"

	"regiongrow/internal/machine"
	"regiongrow/internal/pixmap"
)

// Micro-benchmarks for the VM primitives: ns/op measures the host-side
// goroutine-tiled execution the engines actually pay.

func benchGrid(b *testing.B, n int) *Grid {
	b.Helper()
	m := New(machine.Get(machine.CM2_8K))
	return m.GridFromImage(pixmap.Random(n, 1))
}

func BenchmarkGridElementwise(b *testing.B) {
	g := benchGrid(b, 256)
	h := g.AddC(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Min(h)
	}
}

func BenchmarkGridEOShift(b *testing.B) {
	g := benchGrid(b, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.EOShiftX(-8, 0)
	}
}

func BenchmarkGridGatherXY(b *testing.B) {
	g := benchGrid(b, 256)
	m := g.m
	xs := m.ColIndex(256, 256)
	ys := m.RowIndex(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GatherXY(xs, ys)
	}
}

func BenchmarkVecSortPairs(b *testing.B) {
	m := New(machine.Get(machine.CM2_8K))
	v := m.GridFromImage(pixmap.Random(128, 2)).Flatten()
	w := m.GridFromImage(pixmap.Random(128, 3)).Flatten()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SortPairs(v, w)
	}
}

func BenchmarkVecSegMinBroadcast(b *testing.B) {
	m := New(machine.Get(machine.CM2_8K))
	keys := m.GridFromImage(pixmap.Random(128, 4)).Flatten().ModC(97)
	perm := m.SortPairs(keys, m.IotaVec(keys.Len()))
	keys = keys.Gather(perm)
	starts := keys.SegStarts()
	vals := m.GridFromImage(pixmap.Random(128, 5)).Flatten()
	mask := m.NewBoolVec(vals.Len())
	mask.Fill(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals.SegMinBroadcast(starts, mask, 1<<30)
	}
}

func BenchmarkVecPointerJump(b *testing.B) {
	m := New(machine.Get(machine.CM2_8K))
	n := 1 << 14
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rep := m.NewVec(n)
		for j := 0; j < n; j++ {
			rep.Data()[j] = int32(j / 2) // binary-tree chains
		}
		b.StartTimer()
		rep.PointerJump()
	}
}
