// Package simdvm is a data-parallel virtual machine in the style of the
// Connection Machine's CM Fortran execution model. It provides 2-D and 1-D
// parallel arrays (Grid/BoolGrid, Vec/BoolVec) with elementwise arithmetic,
// end-off grid shifts (NEWS communication), general router gather/scatter
// with combining, reductions, scans, segmented scans, sorting, and stream
// compaction — the primitive vocabulary the paper's data-parallel
// implementation is written in.
//
// Two things happen on every operation:
//
//  1. The operation really executes, tiled across goroutines (this host has
//     no SIMD array hardware, so virtual processors are emulated by manual
//     loop tiling — see Machine.parFor).
//  2. The operation is charged to a simulated clock under a machine.Profile,
//     so an algorithm built on the VM yields both a real wall-clock time and
//     a simulated Connection Machine time.
//
// Machines and their arrays are not safe for concurrent use: the front-end
// model is a single control thread issuing parallel operations, exactly as
// on the CM.
package simdvm
