package simdvm

import (
	"fmt"
	"sync"

	"regiongrow/internal/pixmap"
)

// Grid is a two-dimensional parallel array of int32, one virtual processor
// per element, stored row-major. It models a CM Fortran 2-D array with a
// NEWS grid geometry.
type Grid struct {
	m    *Machine
	W, H int
	v    []int32
}

// BoolGrid is a two-dimensional parallel array of booleans, used for
// context masks (the CM's WHERE construct).
type BoolGrid struct {
	m    *Machine
	W, H int
	v    []bool
}

// NewGrid allocates a w×h grid of zeros.
func (m *Machine) NewGrid(w, h int) *Grid {
	return &Grid{m: m, W: w, H: h, v: make([]int32, w*h)}
}

// NewBoolGrid allocates a w×h mask of false.
func (m *Machine) NewBoolGrid(w, h int) *BoolGrid {
	return &BoolGrid{m: m, W: w, H: h, v: make([]bool, w*h)}
}

// GridFromImage loads an image's pixels into a fresh grid (a front-end to
// CM array transfer; charged as one elementwise op).
func (m *Machine) GridFromImage(im *pixmap.Image) *Grid {
	g := m.NewGrid(im.W, im.H)
	m.chargeElem(len(g.v))
	m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.v[i] = int32(im.Pix[i])
		}
	})
	return g
}

// RowIndex returns a grid whose every element holds its row (y) coordinate
// — CM Fortran's processor self-address along axis 0.
func (m *Machine) RowIndex(w, h int) *Grid {
	g := m.NewGrid(w, h)
	m.chargeElem(len(g.v))
	m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.v[i] = int32(i / w)
		}
	})
	return g
}

// ColIndex returns a grid whose every element holds its column (x)
// coordinate.
func (m *Machine) ColIndex(w, h int) *Grid {
	g := m.NewGrid(w, h)
	m.chargeElem(len(g.v))
	m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.v[i] = int32(i % w)
		}
	})
	return g
}

// SelfIndex returns a grid whose every element holds its linear index —
// the region-ID encoding of the paper.
func (m *Machine) SelfIndex(w, h int) *Grid {
	g := m.NewGrid(w, h)
	m.chargeElem(len(g.v))
	m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.v[i] = int32(i)
		}
	})
	return g
}

// At reads one element from the front end (no parallel cost).
func (g *Grid) At(x, y int) int32 { return g.v[y*g.W+x] }

// Data exposes the backing slice for result extraction by the front end.
// Callers must not mutate it mid-computation.
func (g *Grid) Data() []int32 { return g.v }

// Clone returns an element-for-element copy.
func (g *Grid) Clone() *Grid {
	out := g.m.NewGrid(g.W, g.H)
	g.m.chargeElem(len(g.v))
	g.m.parFor(len(g.v), func(lo, hi int) {
		copy(out.v[lo:hi], g.v[lo:hi])
	})
	return out
}

// Fill sets every element to c.
func (g *Grid) Fill(c int32) {
	g.m.chargeElem(len(g.v))
	g.m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g.v[i] = c
		}
	})
}

// AssignWhere copies src into g at positions where mask is true — the CM
// WHERE-assignment.
func (g *Grid) AssignWhere(mask *BoolGrid, src *Grid) {
	g.m.sameMachine(mask.m)
	g.m.sameMachine(src.m)
	checkLen("AssignWhere", len(g.v), len(mask.v))
	checkLen("AssignWhere", len(g.v), len(src.v))
	g.m.chargeElem(len(g.v))
	g.m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask.v[i] {
				g.v[i] = src.v[i]
			}
		}
	})
}

// FillWhere sets elements to c where mask is true.
func (g *Grid) FillWhere(mask *BoolGrid, c int32) {
	g.m.sameMachine(mask.m)
	checkLen("FillWhere", len(g.v), len(mask.v))
	g.m.chargeElem(len(g.v))
	g.m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask.v[i] {
				g.v[i] = c
			}
		}
	})
}

// binOp applies f elementwise over g and other into a fresh grid.
func (g *Grid) binOp(op string, other *Grid, f func(a, b int32) int32) *Grid {
	g.m.sameMachine(other.m)
	checkLen(op, len(g.v), len(other.v))
	out := g.m.NewGrid(g.W, g.H)
	g.m.chargeElem(len(g.v))
	g.m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = f(g.v[i], other.v[i])
		}
	})
	return out
}

// Min returns the elementwise minimum of two grids.
func (g *Grid) Min(other *Grid) *Grid {
	return g.binOp("Min", other, func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	})
}

// Max returns the elementwise maximum of two grids.
func (g *Grid) Max(other *Grid) *Grid {
	return g.binOp("Max", other, func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	})
}

// Sub returns the elementwise difference g − other.
func (g *Grid) Sub(other *Grid) *Grid {
	return g.binOp("Sub", other, func(a, b int32) int32 { return a - b })
}

// Add returns the elementwise sum.
func (g *Grid) Add(other *Grid) *Grid {
	return g.binOp("Add", other, func(a, b int32) int32 { return a + b })
}

// MulC returns the grid scaled by constant c.
func (g *Grid) MulC(c int32) *Grid { return g.mapOp(func(a int32) int32 { return a * c }) }

// AddC returns the grid plus constant c.
func (g *Grid) AddC(c int32) *Grid { return g.mapOp(func(a int32) int32 { return a + c }) }

// ModC returns the grid modulo constant c (c > 0).
func (g *Grid) ModC(c int32) *Grid {
	if c <= 0 {
		panic(fmt.Sprintf("simdvm: ModC(%d)", c))
	}
	return g.mapOp(func(a int32) int32 { return a % c })
}

func (g *Grid) mapOp(f func(int32) int32) *Grid {
	out := g.m.NewGrid(g.W, g.H)
	g.m.chargeElem(len(g.v))
	g.m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = f(g.v[i])
		}
	})
	return out
}

// cmpOp applies a comparison elementwise producing a mask.
func (g *Grid) cmpOp(op string, other *Grid, f func(a, b int32) bool) *BoolGrid {
	g.m.sameMachine(other.m)
	checkLen(op, len(g.v), len(other.v))
	out := g.m.NewBoolGrid(g.W, g.H)
	g.m.chargeElem(len(g.v))
	g.m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = f(g.v[i], other.v[i])
		}
	})
	return out
}

// Eq returns the elementwise equality mask.
func (g *Grid) Eq(other *Grid) *BoolGrid {
	return g.cmpOp("Eq", other, func(a, b int32) bool { return a == b })
}

// Ne returns the elementwise inequality mask.
func (g *Grid) Ne(other *Grid) *BoolGrid {
	return g.cmpOp("Ne", other, func(a, b int32) bool { return a != b })
}

// EqC returns the mask of elements equal to c.
func (g *Grid) EqC(c int32) *BoolGrid {
	out := g.m.NewBoolGrid(g.W, g.H)
	g.m.chargeElem(len(g.v))
	g.m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = g.v[i] == c
		}
	})
	return out
}

// LeC returns the mask of elements ≤ c.
func (g *Grid) LeC(c int32) *BoolGrid {
	out := g.m.NewBoolGrid(g.W, g.H)
	g.m.chargeElem(len(g.v))
	g.m.parFor(len(g.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = g.v[i] <= c
		}
	})
	return out
}

// EOShiftX returns the grid shifted along x by dist (CM Fortran EOSHIFT):
// out(x,y) = in(x−dist, y), with fill where the source is off-grid.
// The NEWS cost is proportional to |dist| hops.
func (g *Grid) EOShiftX(dist int, fill int32) *Grid {
	out := g.m.NewGrid(g.W, g.H)
	g.m.chargeNews(len(g.v), dist)
	w := g.W
	g.m.parFor(g.H, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			row := g.v[y*w : (y+1)*w]
			orow := out.v[y*w : (y+1)*w]
			for x := 0; x < w; x++ {
				sx := x - dist
				if sx < 0 || sx >= w {
					orow[x] = fill
				} else {
					orow[x] = row[sx]
				}
			}
		}
	})
	return out
}

// EOShiftY returns the grid shifted along y by dist: out(x,y) = in(x, y−dist).
func (g *Grid) EOShiftY(dist int, fill int32) *Grid {
	out := g.m.NewGrid(g.W, g.H)
	g.m.chargeNews(len(g.v), dist)
	w, h := g.W, g.H
	g.m.parFor(h, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			sy := y - dist
			if sy < 0 || sy >= h {
				for x := 0; x < w; x++ {
					out.v[y*w+x] = fill
				}
			} else {
				copy(out.v[y*w:(y+1)*w], g.v[sy*w:(sy+1)*w])
			}
		}
	})
	return out
}

// GatherXY performs a general router get: out(i) = g(xs(i), ys(i)).
// Coordinates must be in range.
func (g *Grid) GatherXY(xs, ys *Grid) *Grid {
	g.m.sameMachine(xs.m)
	g.m.sameMachine(ys.m)
	checkLen("GatherXY", len(xs.v), len(ys.v))
	out := g.m.NewGrid(xs.W, xs.H)
	g.m.chargeRouter(len(xs.v))
	w := int32(g.W)
	g.m.parFor(len(xs.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = g.v[ys.v[i]*w+xs.v[i]]
		}
	})
	return out
}

// MaxValue reduces the grid to its maximum element (MAXVAL). The grid must
// be non-empty.
func (g *Grid) MaxValue() int32 {
	if len(g.v) == 0 {
		panic("simdvm: MaxValue of empty grid")
	}
	g.m.chargeScan(len(g.v))
	return reduceMax(g.m, g.v)
}

// MinValue reduces the grid to its minimum element (MINVAL).
func (g *Grid) MinValue() int32 {
	if len(g.v) == 0 {
		panic("simdvm: MinValue of empty grid")
	}
	g.m.chargeScan(len(g.v))
	return reduceMin(g.m, g.v)
}

// BoolGrid operations.

// At reads one mask element from the front end.
func (b *BoolGrid) At(x, y int) bool { return b.v[y*b.W+x] }

// Data exposes the backing slice for front-end extraction.
func (b *BoolGrid) Data() []bool { return b.v }

// Fill sets every element.
func (b *BoolGrid) Fill(c bool) {
	b.m.chargeElem(len(b.v))
	b.m.parFor(len(b.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b.v[i] = c
		}
	})
}

func (b *BoolGrid) binOp(op string, other *BoolGrid, f func(x, y bool) bool) *BoolGrid {
	b.m.sameMachine(other.m)
	checkLen(op, len(b.v), len(other.v))
	out := b.m.NewBoolGrid(b.W, b.H)
	b.m.chargeElem(len(b.v))
	b.m.parFor(len(b.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = f(b.v[i], other.v[i])
		}
	})
	return out
}

// And returns the elementwise conjunction.
func (b *BoolGrid) And(other *BoolGrid) *BoolGrid {
	return b.binOp("And", other, func(x, y bool) bool { return x && y })
}

// Or returns the elementwise disjunction.
func (b *BoolGrid) Or(other *BoolGrid) *BoolGrid {
	return b.binOp("Or", other, func(x, y bool) bool { return x || y })
}

// AndNot returns x ∧ ¬y elementwise.
func (b *BoolGrid) AndNot(other *BoolGrid) *BoolGrid {
	return b.binOp("AndNot", other, func(x, y bool) bool { return x && !y })
}

// Not returns the elementwise negation.
func (b *BoolGrid) Not() *BoolGrid {
	out := b.m.NewBoolGrid(b.W, b.H)
	b.m.chargeElem(len(b.v))
	b.m.parFor(len(b.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = !b.v[i]
		}
	})
	return out
}

// EOShiftX shifts the mask along x with fill (see Grid.EOShiftX).
func (b *BoolGrid) EOShiftX(dist int, fill bool) *BoolGrid {
	out := b.m.NewBoolGrid(b.W, b.H)
	b.m.chargeNews(len(b.v), dist)
	w := b.W
	b.m.parFor(b.H, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < w; x++ {
				sx := x - dist
				if sx < 0 || sx >= w {
					out.v[y*w+x] = fill
				} else {
					out.v[y*w+x] = b.v[y*w+sx]
				}
			}
		}
	})
	return out
}

// EOShiftY shifts the mask along y with fill.
func (b *BoolGrid) EOShiftY(dist int, fill bool) *BoolGrid {
	out := b.m.NewBoolGrid(b.W, b.H)
	b.m.chargeNews(len(b.v), dist)
	w, h := b.W, b.H
	b.m.parFor(h, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			sy := y - dist
			if sy < 0 || sy >= h {
				for x := 0; x < w; x++ {
					out.v[y*w+x] = fill
				}
			} else {
				copy(out.v[y*w:(y+1)*w], b.v[sy*w:(sy+1)*w])
			}
		}
	})
	return out
}

// ToInt returns a 0/1 grid from the mask.
func (b *BoolGrid) ToInt() *Grid {
	out := b.m.NewGrid(b.W, b.H)
	b.m.chargeElem(len(b.v))
	b.m.parFor(len(b.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if b.v[i] {
				out.v[i] = 1
			}
		}
	})
	return out
}

// Count reduces the mask to the number of true elements.
func (b *BoolGrid) Count() int {
	b.m.chargeScan(len(b.v))
	total := 0
	// Reduction runs tiled with per-chunk partials combined on the front end.
	parts := make(chan int, b.m.workers+1)
	var issued int
	b.m.parForCollect(len(b.v), &issued, parts, func(lo, hi int) int {
		n := 0
		for i := lo; i < hi; i++ {
			if b.v[i] {
				n++
			}
		}
		return n
	})
	for i := 0; i < issued; i++ {
		total += <-parts
	}
	return total
}

// Any reduces the mask to whether any element is true.
func (b *BoolGrid) Any() bool { return b.Count() > 0 }

// reduceMax/reduceMin combine tiled partial reductions.
func reduceMax(m *Machine, v []int32) int32 {
	parts := make(chan int32, m.workers+1)
	var issued int
	m.parForCollect32(len(v), &issued, parts, func(lo, hi int) int32 {
		best := v[lo]
		for i := lo + 1; i < hi; i++ {
			if v[i] > best {
				best = v[i]
			}
		}
		return best
	})
	best := <-parts
	for i := 1; i < issued; i++ {
		if p := <-parts; p > best {
			best = p
		}
	}
	return best
}

func reduceMin(m *Machine, v []int32) int32 {
	parts := make(chan int32, m.workers+1)
	var issued int
	m.parForCollect32(len(v), &issued, parts, func(lo, hi int) int32 {
		best := v[lo]
		for i := lo + 1; i < hi; i++ {
			if v[i] < best {
				best = v[i]
			}
		}
		return best
	})
	best := <-parts
	for i := 1; i < issued; i++ {
		if p := <-parts; p < best {
			best = p
		}
	}
	return best
}

// parForCollect runs f over chunks and sends each chunk's int result on
// parts; *issued receives the number of chunks.
func (m *Machine) parForCollect(n int, issued *int, parts chan int, f func(lo, hi int) int) {
	if n <= 0 {
		*issued = 0
		return
	}
	w := m.workers
	if w <= 1 || n < parTile {
		parts <- f(0, n)
		*issued = 1
		return
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	count := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		count++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			parts <- f(lo, hi)
		}(lo, hi)
	}
	*issued = count
	wg.Wait()
}

// parForCollect32 is parForCollect for int32 partials.
func (m *Machine) parForCollect32(n int, issued *int, parts chan int32, f func(lo, hi int) int32) {
	if n <= 0 {
		*issued = 0
		return
	}
	w := m.workers
	if w <= 1 || n < parTile {
		parts <- f(0, n)
		*issued = 1
		return
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	count := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		count++
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			parts <- f(lo, hi)
		}(lo, hi)
	}
	*issued = count
	wg.Wait()
}
