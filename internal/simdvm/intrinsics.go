package simdvm

// Additional CM Fortran intrinsics: circular shifts (CSHIFT), axis
// reductions (MINVAL/MAXVAL/SUM with DIM=), SPREAD, and TRANSPOSE. The
// region growing engines use the end-off shift family; these complete the
// array vocabulary for other VM clients and for the VM's own test suite.

// CShiftX returns the grid circularly shifted along x (CM Fortran CSHIFT
// with DIM=1 in row-major terms): out(x, y) = in((x−dist) mod W, y).
func (g *Grid) CShiftX(dist int) *Grid {
	out := g.m.NewGrid(g.W, g.H)
	g.m.chargeNews(len(g.v), dist)
	w := g.W
	if w == 0 {
		return out
	}
	d := ((dist % w) + w) % w
	g.m.parFor(g.H, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			row := g.v[y*w : (y+1)*w]
			orow := out.v[y*w : (y+1)*w]
			for x := 0; x < w; x++ {
				sx := x - d
				if sx < 0 {
					sx += w
				}
				orow[x] = row[sx]
			}
		}
	})
	return out
}

// CShiftY returns the grid circularly shifted along y:
// out(x, y) = in(x, (y−dist) mod H).
func (g *Grid) CShiftY(dist int) *Grid {
	out := g.m.NewGrid(g.W, g.H)
	g.m.chargeNews(len(g.v), dist)
	w, h := g.W, g.H
	if h == 0 {
		return out
	}
	d := ((dist % h) + h) % h
	g.m.parFor(h, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			sy := y - d
			if sy < 0 {
				sy += h
			}
			copy(out.v[y*w:(y+1)*w], g.v[sy*w:(sy+1)*w])
		}
	})
	return out
}

// Transpose returns the transposed grid (H×W from W×H).
func (g *Grid) Transpose() *Grid {
	out := g.m.NewGrid(g.H, g.W)
	g.m.chargeRouter(len(g.v)) // general permutation traffic
	w, h := g.W, g.H
	g.m.parFor(h, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			for x := 0; x < w; x++ {
				out.v[x*h+y] = g.v[y*w+x]
			}
		}
	})
	return out
}

// ReduceRowsMin returns a length-H vector of per-row minima
// (MINVAL(a, DIM=1)). The grid must have at least one column.
func (g *Grid) ReduceRowsMin() *Vec {
	return g.reduceRows("ReduceRowsMin", func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	})
}

// ReduceRowsMax returns a length-H vector of per-row maxima.
func (g *Grid) ReduceRowsMax() *Vec {
	return g.reduceRows("ReduceRowsMax", func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	})
}

// ReduceRowsSum returns a length-H vector of per-row sums.
func (g *Grid) ReduceRowsSum() *Vec {
	return g.reduceRows("ReduceRowsSum", func(a, b int32) int32 { return a + b })
}

func (g *Grid) reduceRows(op string, f func(a, b int32) int32) *Vec {
	if g.W == 0 {
		panic("simdvm: " + op + " of zero-width grid")
	}
	out := g.m.NewVec(g.H)
	g.m.chargeScan(len(g.v))
	w := g.W
	g.m.parFor(g.H, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			acc := g.v[y*w]
			for x := 1; x < w; x++ {
				acc = f(acc, g.v[y*w+x])
			}
			out.v[y] = acc
		}
	})
	return out
}

// ReduceColsMin returns a length-W vector of per-column minima
// (computed via the transpose, as the CM runtime did for the slow axis).
func (g *Grid) ReduceColsMin() *Vec { return g.Transpose().ReduceRowsMin() }

// ReduceColsMax returns a length-W vector of per-column maxima.
func (g *Grid) ReduceColsMax() *Vec { return g.Transpose().ReduceRowsMax() }

// ReduceColsSum returns a length-W vector of per-column sums.
func (g *Grid) ReduceColsSum() *Vec { return g.Transpose().ReduceRowsSum() }

// SpreadRows broadcasts a length-H vector across the columns of a fresh
// W×H grid: out(x, y) = v(y) (CM Fortran SPREAD).
func (m *Machine) SpreadRows(v *Vec, w int) *Grid {
	m.sameMachine(v.m)
	out := m.NewGrid(w, v.Len())
	m.chargeElem(w * v.Len())
	m.parFor(v.Len(), func(lo, hi int) {
		for y := lo; y < hi; y++ {
			row := out.v[y*w : (y+1)*w]
			val := v.v[y]
			for x := range row {
				row[x] = val
			}
		}
	})
	return out
}

// SpreadCols broadcasts a length-W vector down the rows of a fresh W×H
// grid: out(x, y) = v(x).
func (m *Machine) SpreadCols(v *Vec, h int) *Grid {
	m.sameMachine(v.m)
	w := v.Len()
	out := m.NewGrid(w, h)
	m.chargeElem(w * h)
	m.parFor(h, func(lo, hi int) {
		for y := lo; y < hi; y++ {
			copy(out.v[y*w:(y+1)*w], v.v)
		}
	})
	return out
}

// SegScanMaxBroadcast is the max-combining sibling of SegMinBroadcast.
func (a *Vec) SegScanMaxBroadcast(starts *BoolVec, mask *BoolVec, sentinel int32) *Vec {
	a.m.sameMachine(starts.m)
	a.m.sameMachine(mask.m)
	checkLen("SegScanMaxBroadcast", len(a.v), len(starts.v))
	checkLen("SegScanMaxBroadcast", len(a.v), len(mask.v))
	out := a.m.NewVec(len(a.v))
	a.m.chargeScan(len(a.v))
	a.m.chargeScan(len(a.v))
	n := len(a.v)
	cur := sentinel
	for i := 0; i < n; i++ {
		if starts.v[i] {
			cur = sentinel
		}
		if mask.v[i] && a.v[i] > cur {
			cur = a.v[i]
		}
		out.v[i] = cur
	}
	for i := n - 1; i >= 0; i-- {
		if i+1 < n && !starts.v[i+1] {
			out.v[i] = out.v[i+1]
		}
	}
	return out
}

// SegScanAddBroadcast computes per-segment sums of masked elements,
// broadcast to every element of the segment.
func (a *Vec) SegScanAddBroadcast(starts *BoolVec, mask *BoolVec) *Vec {
	a.m.sameMachine(starts.m)
	a.m.sameMachine(mask.m)
	checkLen("SegScanAddBroadcast", len(a.v), len(starts.v))
	checkLen("SegScanAddBroadcast", len(a.v), len(mask.v))
	out := a.m.NewVec(len(a.v))
	a.m.chargeScan(len(a.v))
	a.m.chargeScan(len(a.v))
	n := len(a.v)
	var cur int32
	for i := 0; i < n; i++ {
		if starts.v[i] {
			cur = 0
		}
		if mask.v[i] {
			cur += a.v[i]
		}
		out.v[i] = cur
	}
	for i := n - 1; i >= 0; i-- {
		if i+1 < n && !starts.v[i+1] {
			out.v[i] = out.v[i+1]
		}
	}
	return out
}
