package simdvm

import (
	"testing"
	"testing/quick"

	"regiongrow/internal/pixmap"
)

func TestCShiftX(t *testing.T) {
	m := testMachine()
	g := gridFrom(m, 3, 2, []int32{1, 2, 3, 4, 5, 6})
	r := g.CShiftX(1)
	want := []int32{3, 1, 2, 6, 4, 5}
	for i := range want {
		if r.Data()[i] != want[i] {
			t.Fatalf("CShiftX(1) = %v", r.Data())
		}
	}
	// Negative and wrapped distances.
	l := g.CShiftX(-1)
	want = []int32{2, 3, 1, 5, 6, 4}
	for i := range want {
		if l.Data()[i] != want[i] {
			t.Fatalf("CShiftX(-1) = %v", l.Data())
		}
	}
	full := g.CShiftX(3)
	for i := range g.Data() {
		if full.Data()[i] != g.Data()[i] {
			t.Fatal("CShiftX by width should be identity")
		}
	}
}

func TestCShiftY(t *testing.T) {
	m := testMachine()
	g := gridFrom(m, 2, 3, []int32{1, 2, 3, 4, 5, 6})
	d := g.CShiftY(1)
	want := []int32{5, 6, 1, 2, 3, 4}
	for i := range want {
		if d.Data()[i] != want[i] {
			t.Fatalf("CShiftY(1) = %v", d.Data())
		}
	}
	if u := g.CShiftY(-3); u.Data()[0] != 1 {
		t.Fatal("CShiftY by height should be identity")
	}
}

func TestCShiftComposesToIdentity(t *testing.T) {
	err := quick.Check(func(seed uint64, dRaw uint8) bool {
		m := testMachine()
		d := int(dRaw % 40)
		g := m.GridFromImage(pixmap.Random(16, seed))
		back := g.CShiftX(d).CShiftX(-d).CShiftY(d).CShiftY(-d)
		for i := range g.Data() {
			if back.Data()[i] != g.Data()[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	m := testMachine()
	g := gridFrom(m, 3, 2, []int32{1, 2, 3, 4, 5, 6})
	tr := g.Transpose()
	if tr.W != 2 || tr.H != 3 {
		t.Fatalf("transpose dims %dx%d", tr.W, tr.H)
	}
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			if g.At(x, y) != tr.At(y, x) {
				t.Fatal("transpose wrong")
			}
		}
	}
	// Involution.
	back := tr.Transpose()
	for i := range g.Data() {
		if back.Data()[i] != g.Data()[i] {
			t.Fatal("double transpose not identity")
		}
	}
}

func TestAxisReductions(t *testing.T) {
	m := testMachine()
	g := gridFrom(m, 3, 2, []int32{5, 1, 3, 2, 8, 4})
	rm := g.ReduceRowsMin()
	if rm.At(0) != 1 || rm.At(1) != 2 {
		t.Fatalf("ReduceRowsMin = %v", rm.Data())
	}
	rM := g.ReduceRowsMax()
	if rM.At(0) != 5 || rM.At(1) != 8 {
		t.Fatalf("ReduceRowsMax = %v", rM.Data())
	}
	rs := g.ReduceRowsSum()
	if rs.At(0) != 9 || rs.At(1) != 14 {
		t.Fatalf("ReduceRowsSum = %v", rs.Data())
	}
	cm := g.ReduceColsMin()
	if cm.At(0) != 2 || cm.At(1) != 1 || cm.At(2) != 3 {
		t.Fatalf("ReduceColsMin = %v", cm.Data())
	}
	cs := g.ReduceColsSum()
	if cs.At(0) != 7 || cs.At(1) != 9 || cs.At(2) != 7 {
		t.Fatalf("ReduceColsSum = %v", cs.Data())
	}
	if g.ReduceColsMax().At(1) != 8 {
		t.Fatal("ReduceColsMax wrong")
	}
}

func TestAxisReductionsAgreeWithGlobal(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		m := testMachine()
		g := m.GridFromImage(pixmap.Random(8, seed))
		rows := g.ReduceRowsMin()
		minOfRows := rows.At(0)
		for i := 1; i < rows.Len(); i++ {
			if rows.At(i) < minOfRows {
				minOfRows = rows.At(i)
			}
		}
		return minOfRows == g.MinValue()
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpread(t *testing.T) {
	m := testMachine()
	v := m.VecFromSlice([]int32{7, 9})
	g := m.SpreadRows(v, 3)
	if g.W != 3 || g.H != 2 || g.At(2, 0) != 7 || g.At(0, 1) != 9 {
		t.Fatalf("SpreadRows = %v", g.Data())
	}
	h := m.SpreadCols(v, 3)
	if h.W != 2 || h.H != 3 || h.At(0, 2) != 7 || h.At(1, 0) != 9 {
		t.Fatalf("SpreadCols = %v", h.Data())
	}
}

func TestSegScanMaxAndAdd(t *testing.T) {
	m := testMachine()
	keys := m.VecFromSlice([]int32{1, 1, 1, 2, 2})
	starts := keys.SegStarts()
	vals := m.VecFromSlice([]int32{3, 9, 4, 7, 2})
	mask := m.NewBoolVec(5)
	mask.Fill(true)
	maxs := vals.SegScanMaxBroadcast(starts, mask, -1)
	wantMax := []int32{9, 9, 9, 7, 7}
	for i := range wantMax {
		if maxs.At(i) != wantMax[i] {
			t.Fatalf("SegScanMaxBroadcast = %v", maxs.Data())
		}
	}
	sums := vals.SegScanAddBroadcast(starts, mask)
	wantSum := []int32{16, 16, 16, 9, 9}
	for i := range wantSum {
		if sums.At(i) != wantSum[i] {
			t.Fatalf("SegScanAddBroadcast = %v", sums.Data())
		}
	}
	// Masked-out elements do not contribute.
	mask.Data()[1] = false
	if vals.SegScanMaxBroadcast(starts, mask, -1).At(0) != 4 {
		t.Fatal("mask ignored in max")
	}
	if vals.SegScanAddBroadcast(starts, mask).At(2) != 7 {
		t.Fatal("mask ignored in add")
	}
}

func TestSegMinMaxDuality(t *testing.T) {
	// max(x) == −min(−x) segment-wise.
	err := quick.Check(func(seed uint64) bool {
		m := testMachine()
		im := pixmap.Random(8, seed)
		keys := m.GridFromImage(im).Flatten().ModC(5)
		perm := m.SortPairs(keys, m.IotaVec(keys.Len()))
		keys = keys.Gather(perm)
		vals := m.GridFromImage(pixmap.Random(8, seed+1)).Flatten().Gather(perm)
		starts := keys.SegStarts()
		mask := m.NewBoolVec(vals.Len())
		mask.Fill(true)
		maxs := vals.SegScanMaxBroadcast(starts, mask, -(1 << 30))
		neg := vals.MulC(-1)
		mins := neg.SegMinBroadcast(starts, mask, 1<<30)
		for i := 0; i < vals.Len(); i++ {
			if maxs.At(i) != -mins.At(i) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}
