package simdvm

import "sort"

// Scans, segmented scans, sorting, and stream compaction. On the CM these
// are the library primitives (scan, rank, pack) CM Fortran programs lean
// on; here they execute sequentially or tiled on the host but are charged
// at their parallel cost (log-depth for scans, log²-depth for sort).

// ScanAddExclusive returns the exclusive prefix sum: out(i) = Σ_{j<i} a(j).
func (a *Vec) ScanAddExclusive() *Vec {
	out := a.m.NewVec(len(a.v))
	a.m.chargeScan(len(a.v))
	var sum int32
	for i, x := range a.v {
		out.v[i] = sum
		sum += x
	}
	return out
}

// SumValue reduces the vector to the sum of its elements.
func (a *Vec) SumValue() int32 {
	a.m.chargeScan(len(a.v))
	var sum int32
	for _, x := range a.v {
		sum += x
	}
	return sum
}

// MaxValue reduces to the maximum element. Panics on empty vectors.
func (a *Vec) MaxValue() int32 {
	if len(a.v) == 0 {
		panic("simdvm: MaxValue of empty vec")
	}
	a.m.chargeScan(len(a.v))
	return reduceMax(a.m, a.v)
}

// SegStarts derives the segment-start mask of a vector sorted by segment
// key: start(i) = i==0 ∨ key(i)≠key(i−1).
func (a *Vec) SegStarts() *BoolVec {
	out := a.m.NewBoolVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = i == 0 || a.v[i] != a.v[i-1]
		}
	})
	return out
}

// SegMinBroadcast computes, for every element, the minimum of vals over
// the elements of its segment where mask holds; elements of segments with
// no masked member receive sentinel. Segments are delimited by starts.
// This is a forward segmented min-scan followed by a backward broadcast,
// charged as two scan operations.
func (a *Vec) SegMinBroadcast(starts *BoolVec, mask *BoolVec, sentinel int32) *Vec {
	a.m.sameMachine(starts.m)
	a.m.sameMachine(mask.m)
	checkLen("SegMinBroadcast", len(a.v), len(starts.v))
	checkLen("SegMinBroadcast", len(a.v), len(mask.v))
	out := a.m.NewVec(len(a.v))
	a.m.chargeScan(len(a.v))
	a.m.chargeScan(len(a.v))
	n := len(a.v)
	cur := sentinel
	for i := 0; i < n; i++ {
		if starts.v[i] {
			cur = sentinel
		}
		if mask.v[i] && a.v[i] < cur {
			cur = a.v[i]
		}
		out.v[i] = cur
	}
	// Backward pass: broadcast each segment's total (held at its last
	// element) to the whole segment.
	for i := n - 1; i >= 0; i-- {
		if i+1 < n && !starts.v[i+1] {
			out.v[i] = out.v[i+1]
		}
	}
	return out
}

// SegRankCount returns, for every element, the exclusive count of masked
// elements before it within its segment (rank) and the total masked count
// of its segment (count). Two segmented scans.
func (m *Machine) SegRankCount(starts *BoolVec, mask *BoolVec) (rank, count *Vec) {
	m.sameMachine(starts.m)
	m.sameMachine(mask.m)
	checkLen("SegRankCount", len(starts.v), len(mask.v))
	n := len(starts.v)
	rank = m.NewVec(n)
	count = m.NewVec(n)
	m.chargeScan(n)
	m.chargeScan(n)
	var r int32
	for i := 0; i < n; i++ {
		if starts.v[i] {
			r = 0
		}
		rank.v[i] = r
		if mask.v[i] {
			r++
		}
	}
	cur := int32(0)
	for i := n - 1; i >= 0; i-- {
		if i+1 == n || starts.v[i+1] {
			cur = rank.v[i]
			if mask.v[i] {
				cur++
			}
		}
		count.v[i] = cur
	}
	return rank, count
}

// SortPairs sorts (key1, key2) pairs lexicographically, returning the
// permutation as an index vector: out(i) is the position in the input of
// the i-th smallest pair. Apply it with Gather to reorder companion
// vectors. Charged as one parallel sort (bitonic cost).
func (m *Machine) SortPairs(key1, key2 *Vec) *Vec {
	m.sameMachine(key1.m)
	m.sameMachine(key2.m)
	checkLen("SortPairs", len(key1.v), len(key2.v))
	n := len(key1.v)
	perm := m.NewVec(n)
	for i := range perm.v {
		perm.v[i] = int32(i)
	}
	m.chargeSort(n)
	sort.Slice(perm.v, func(i, j int) bool {
		pi, pj := perm.v[i], perm.v[j]
		if key1.v[pi] != key1.v[pj] {
			return key1.v[pi] < key1.v[pj]
		}
		return key2.v[pi] < key2.v[pj]
	})
	return perm
}

// Pack compacts the elements of each vector in vs selected by mask,
// preserving order — the CM PACK intrinsic. All vectors must have the
// mask's length. It returns the compacted vectors (all of the same,
// possibly zero, length). Charged as an enumerate scan plus one router
// send per vector.
func (m *Machine) Pack(mask *BoolVec, vs ...*Vec) []*Vec {
	m.sameMachine(mask.m)
	n := len(mask.v)
	for _, v := range vs {
		m.sameMachine(v.m)
		checkLen("Pack", n, len(v.v))
	}
	m.chargeScan(n) // enumerate
	total := 0
	pos := make([]int32, n)
	for i, set := range mask.v {
		if set {
			pos[i] = int32(total)
			total++
		}
	}
	out := make([]*Vec, len(vs))
	for k, v := range vs {
		m.chargeRouter(total)
		dst := m.NewVec(total)
		for i, set := range mask.v {
			if set {
				dst.v[pos[i]] = v.v[i]
			}
		}
		out[k] = dst
	}
	return out
}

// PackGrid compacts grid elements selected by a grid mask into vectors,
// in row-major order. Used to convert 2-D boundary masks into the 1-D edge
// arrays of the merge stage.
func (m *Machine) PackGrid(mask *BoolGrid, gs ...*Grid) []*Vec {
	m.sameMachine(mask.m)
	n := len(mask.v)
	for _, g := range gs {
		m.sameMachine(g.m)
		checkLen("PackGrid", n, len(g.v))
	}
	m.chargeScan(n)
	total := 0
	pos := make([]int32, n)
	for i, set := range mask.v {
		if set {
			pos[i] = int32(total)
			total++
		}
	}
	out := make([]*Vec, len(gs))
	for k, g := range gs {
		m.chargeRouter(total)
		dst := m.NewVec(total)
		for i, set := range mask.v {
			if set {
				dst.v[pos[i]] = g.v[i]
			}
		}
		out[k] = dst
	}
	return out
}

// Concat concatenates vectors into a fresh one (front-end array assembly,
// charged elementwise).
func (m *Machine) Concat(vs ...*Vec) *Vec {
	total := 0
	for _, v := range vs {
		m.sameMachine(v.m)
		total += len(v.v)
	}
	out := m.NewVec(total)
	m.chargeElem(total)
	off := 0
	for _, v := range vs {
		copy(out.v[off:off+len(v.v)], v.v)
		off += len(v.v)
	}
	return out
}

// Flatten copies a grid into a 1-D vector in row-major order (a CM array
// reshape; charged elementwise).
func (g *Grid) Flatten() *Vec {
	out := g.m.NewVec(len(g.v))
	g.m.chargeElem(len(g.v))
	g.m.parFor(len(g.v), func(lo, hi int) { copy(out.v[lo:hi], g.v[lo:hi]) })
	return out
}

// MaxC returns the elementwise maximum with constant c — used to clamp
// sentinel indices before a Gather.
func (a *Vec) MaxC(c int32) *Vec {
	out := a.m.NewVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if a.v[i] > c {
				out.v[i] = a.v[i]
			} else {
				out.v[i] = c
			}
		}
	})
	return out
}

// AddC returns the vector plus constant c.
func (a *Vec) AddC(c int32) *Vec {
	out := a.m.NewVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = a.v[i] + c
		}
	})
	return out
}

// PairDup returns the mask of positions whose (a, b) pair equals the
// previous position's pair — the duplicate-edge detector run after sorting
// edge arrays.
func (m *Machine) PairDup(a, b *Vec) *BoolVec {
	m.sameMachine(a.m)
	m.sameMachine(b.m)
	checkLen("PairDup", len(a.v), len(b.v))
	out := m.NewBoolVec(len(a.v))
	m.chargeElem(len(a.v))
	m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = i > 0 && a.v[i] == a.v[i-1] && b.v[i] == b.v[i-1]
		}
	})
	return out
}

// PointerJump resolves representative chains in place: rep = rep[rep]
// applied until a fixed point, each round charged as a router gather plus
// a reduction. Classic data-parallel pointer jumping; converges in
// O(log chain length) rounds. It returns the number of rounds executed.
func (a *Vec) PointerJump() int {
	rounds := 0
	for {
		next := a.Gather(a)
		if !a.Ne(next).Any() {
			return rounds
		}
		copy(a.v, next.v)
		rounds++
	}
}
