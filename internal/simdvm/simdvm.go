package simdvm

import (
	"fmt"
	"runtime"
	"sync"

	"regiongrow/internal/machine"
)

// Machine is the data-parallel execution context: it owns the cost profile,
// the simulated clock, operation counters, and the goroutine-tiling width.
type Machine struct {
	prof    *machine.Profile
	workers int
	clock   float64
	counts  Counters
}

// Counters tallies the primitive operations a machine has executed,
// mirroring the cost categories of machine.Profile.
type Counters struct {
	ElemOps   int64 // elementwise operations
	NewsOps   int64 // grid shifts
	RouterOps int64 // gathers/scatters
	ScanOps   int64 // scans, segmented scans, reductions
	SortOps   int64 // sort operations
	Elements  int64 // total elements touched by elementwise ops
	Routed    int64 // total elements moved through the router
}

// New returns a machine with the given cost profile, tiling work across
// up to GOMAXPROCS goroutines.
func New(prof *machine.Profile) *Machine {
	return &Machine{prof: prof, workers: runtime.GOMAXPROCS(0)}
}

// NewSerial returns a machine that executes without goroutine tiling;
// useful for tests that need deterministic profiling of host behaviour.
func NewSerial(prof *machine.Profile) *Machine {
	return &Machine{prof: prof, workers: 1}
}

// Profile returns the machine's cost profile.
func (m *Machine) Profile() *machine.Profile { return m.prof }

// Clock returns the simulated seconds elapsed since construction or the
// last ResetClock.
func (m *Machine) Clock() float64 { return m.clock }

// ResetClock zeroes the simulated clock and counters.
func (m *Machine) ResetClock() {
	m.clock = 0
	m.counts = Counters{}
}

// Counts returns a copy of the operation counters.
func (m *Machine) Counts() Counters { return m.counts }

// ChargeScalar adds front-end scalar work (n operations) to the clock.
// The CM front end executes scalar control code between parallel ops.
func (m *Machine) ChargeScalar(n int) {
	m.clock += float64(n) * m.prof.TElem
}

func (m *Machine) chargeElem(n int) {
	m.clock += m.prof.ElemOp(n)
	m.counts.ElemOps++
	m.counts.Elements += int64(n)
}

func (m *Machine) chargeNews(n, dist int) {
	m.clock += m.prof.NewsOp(n, dist)
	m.counts.NewsOps++
	m.counts.Elements += int64(n)
}

func (m *Machine) chargeRouter(n int) {
	m.clock += m.prof.RouterOp(n)
	m.counts.RouterOps++
	m.counts.Routed += int64(n)
}

func (m *Machine) chargeScan(n int) {
	m.clock += m.prof.ScanOp(n)
	m.counts.ScanOps++
	m.counts.Elements += int64(n)
}

func (m *Machine) chargeSort(n int) {
	m.clock += m.prof.SortOp(n)
	m.counts.SortOps++
	m.counts.Elements += int64(n)
}

// parTile is the minimum number of elements per operation before the
// machine bothers spinning up goroutines; below this, loop overhead
// dominates and a single goroutine is faster.
const parTile = 8192

// parFor executes f over [0, n) split into contiguous chunks, one per
// worker goroutine. Chunks never overlap, so f may write disjoint slices
// of shared arrays without synchronization.
func (m *Machine) parFor(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := m.workers
	if w <= 1 || n < parTile {
		f(0, n)
		return
	}
	if w > n {
		w = n
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (m *Machine) sameMachine(other *Machine) {
	if m != other {
		panic("simdvm: operands belong to different machines")
	}
}

func checkLen(op string, a, b int) {
	if a != b {
		panic(fmt.Sprintf("simdvm: %s: length mismatch %d vs %d", op, a, b))
	}
}
