package simdvm

import (
	"testing"
	"testing/quick"

	"regiongrow/internal/machine"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/prand"
)

func testMachine() *Machine { return New(machine.Get(machine.CM2_8K)) }

func gridFrom(m *Machine, w, h int, vals []int32) *Grid {
	g := m.NewGrid(w, h)
	copy(g.Data(), vals)
	return g
}

func TestGridIndexGrids(t *testing.T) {
	m := testMachine()
	row := m.RowIndex(3, 2)
	col := m.ColIndex(3, 2)
	self := m.SelfIndex(3, 2)
	for y := 0; y < 2; y++ {
		for x := 0; x < 3; x++ {
			if row.At(x, y) != int32(y) || col.At(x, y) != int32(x) || self.At(x, y) != int32(y*3+x) {
				t.Fatalf("index grids wrong at (%d,%d)", x, y)
			}
		}
	}
}

func TestGridFromImage(t *testing.T) {
	m := testMachine()
	im := pixmap.Random(16, 1)
	g := m.GridFromImage(im)
	for i, p := range im.Pix {
		if g.Data()[i] != int32(p) {
			t.Fatalf("pixel %d: %d != %d", i, g.Data()[i], p)
		}
	}
}

func TestGridElementwise(t *testing.T) {
	m := testMachine()
	a := gridFrom(m, 2, 2, []int32{1, 5, 3, 7})
	b := gridFrom(m, 2, 2, []int32{4, 2, 3, 9})
	if got := a.Min(b).Data(); got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 7 {
		t.Fatalf("Min = %v", got)
	}
	if got := a.Max(b).Data(); got[0] != 4 || got[1] != 5 || got[3] != 9 {
		t.Fatalf("Max = %v", got)
	}
	if got := b.Sub(a).Data(); got[0] != 3 || got[1] != -3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Add(b).Data(); got[0] != 5 || got[3] != 16 {
		t.Fatalf("Add = %v", got)
	}
	if got := a.MulC(2).AddC(1).Data(); got[0] != 3 || got[3] != 15 {
		t.Fatalf("MulC/AddC = %v", got)
	}
	if got := a.ModC(3).Data(); got[0] != 1 || got[1] != 2 || got[2] != 0 || got[3] != 1 {
		t.Fatalf("ModC = %v", got)
	}
	eq := a.Eq(b)
	if eq.At(0, 0) || !eq.At(0, 1) {
		t.Fatal("Eq wrong")
	}
	if !a.Ne(b).At(0, 0) {
		t.Fatal("Ne wrong")
	}
	if !a.LeC(3).At(0, 0) || a.LeC(3).At(1, 1) {
		t.Fatal("LeC wrong")
	}
	if !a.EqC(5).At(1, 0) {
		t.Fatal("EqC wrong")
	}
}

func TestGridShifts(t *testing.T) {
	m := testMachine()
	g := gridFrom(m, 3, 2, []int32{1, 2, 3, 4, 5, 6})
	// Shift right by 1: out(x) = in(x-1).
	r := g.EOShiftX(1, -9)
	want := []int32{-9, 1, 2, -9, 4, 5}
	for i := range want {
		if r.Data()[i] != want[i] {
			t.Fatalf("EOShiftX(1) = %v", r.Data())
		}
	}
	// Shift left by 1: out(x) = in(x+1).
	l := g.EOShiftX(-1, -9)
	want = []int32{2, 3, -9, 5, 6, -9}
	for i := range want {
		if l.Data()[i] != want[i] {
			t.Fatalf("EOShiftX(-1) = %v", l.Data())
		}
	}
	d := g.EOShiftY(1, 0)
	want = []int32{0, 0, 0, 1, 2, 3}
	for i := range want {
		if d.Data()[i] != want[i] {
			t.Fatalf("EOShiftY(1) = %v", d.Data())
		}
	}
	u := g.EOShiftY(-1, 0)
	want = []int32{4, 5, 6, 0, 0, 0}
	for i := range want {
		if u.Data()[i] != want[i] {
			t.Fatalf("EOShiftY(-1) = %v", u.Data())
		}
	}
}

func TestGridShiftProperty(t *testing.T) {
	// Shifting by d then by −d restores the interior.
	err := quick.Check(func(seed uint64, dRaw uint8) bool {
		m := testMachine()
		d := 1 + int(dRaw%5)
		im := pixmap.Random(16, seed)
		g := m.GridFromImage(im)
		back := g.EOShiftX(d, 0).EOShiftX(-d, 0)
		for y := 0; y < 16; y++ {
			for x := 0; x < 16-d; x++ {
				if back.At(x, y) != g.At(x, y) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGridGatherXY(t *testing.T) {
	m := testMachine()
	g := gridFrom(m, 2, 2, []int32{10, 20, 30, 40})
	xs := gridFrom(m, 2, 2, []int32{1, 0, 1, 0})
	ys := gridFrom(m, 2, 2, []int32{1, 1, 0, 0})
	out := g.GatherXY(xs, ys)
	want := []int32{40, 30, 20, 10}
	for i := range want {
		if out.Data()[i] != want[i] {
			t.Fatalf("GatherXY = %v", out.Data())
		}
	}
}

func TestGridReductionsAndMasks(t *testing.T) {
	m := testMachine()
	g := gridFrom(m, 2, 2, []int32{3, -1, 7, 2})
	if g.MaxValue() != 7 || g.MinValue() != -1 {
		t.Fatal("grid reductions wrong")
	}
	mask := g.LeC(2)
	if mask.Count() != 2 || !mask.Any() {
		t.Fatalf("Count = %d", mask.Count())
	}
	if mask.Not().Count() != 2 {
		t.Fatal("Not wrong")
	}
	m2 := mask.And(mask.Not())
	if m2.Any() {
		t.Fatal("x && !x must be empty")
	}
	if mask.Or(mask.Not()).Count() != 4 {
		t.Fatal("x || !x must be full")
	}
	if mask.AndNot(mask).Any() {
		t.Fatal("AndNot self must be empty")
	}
	g.FillWhere(mask, 99)
	if g.Data()[1] != 99 || g.Data()[2] != 7 {
		t.Fatalf("FillWhere = %v", g.Data())
	}
	g2 := m.NewGrid(2, 2)
	g2.AssignWhere(mask, g)
	if g2.Data()[1] != 99 || g2.Data()[2] != 0 {
		t.Fatalf("AssignWhere = %v", g2.Data())
	}
	if mask.ToInt().Data()[1] != 1 || mask.ToInt().Data()[2] != 0 {
		t.Fatal("ToInt wrong")
	}
}

func TestBoolGridShifts(t *testing.T) {
	m := testMachine()
	b := m.NewBoolGrid(3, 2)
	b.Data()[0] = true // (0,0)
	r := b.EOShiftX(1, false)
	if !r.At(1, 0) || r.At(0, 0) {
		t.Fatal("bool EOShiftX wrong")
	}
	d := b.EOShiftY(1, true)
	if !d.At(0, 1) || !d.At(0, 0) /* fill row */ {
		t.Fatal("bool EOShiftY wrong")
	}
}

func TestVecBasics(t *testing.T) {
	m := testMachine()
	v := m.VecFromSlice([]int32{5, 3, 8})
	if v.Len() != 3 || v.At(2) != 8 {
		t.Fatal("VecFromSlice wrong")
	}
	iota := m.IotaVec(4)
	if iota.At(0) != 0 || iota.At(3) != 3 {
		t.Fatal("IotaVec wrong")
	}
	c := v.Clone()
	c.Fill(1)
	if v.At(0) != 5 || c.At(0) != 1 {
		t.Fatal("Clone aliases")
	}
	if v.AddC(2).At(1) != 5 || v.MaxC(4).At(1) != 4 {
		t.Fatal("AddC/MaxC wrong")
	}
}

func TestVecGatherScatter(t *testing.T) {
	m := testMachine()
	v := m.VecFromSlice([]int32{10, 20, 30})
	idx := m.VecFromSlice([]int32{2, 0, 1, 2})
	out := v.Gather(idx)
	want := []int32{30, 10, 20, 30}
	for i := range want {
		if out.At(i) != want[i] {
			t.Fatalf("Gather = %v", out.Data())
		}
	}
	dst := m.NewVec(4)
	dst.Fill(-1)
	mask := m.NewBoolVec(3)
	mask.Data()[0], mask.Data()[2] = true, true
	dst.ScatterWhere(mask, m.VecFromSlice([]int32{3, 1, 0}), v)
	if dst.At(3) != 10 || dst.At(0) != 30 || dst.At(1) != -1 {
		t.Fatalf("ScatterWhere = %v", dst.Data())
	}
}

func TestScatterCombining(t *testing.T) {
	m := testMachine()
	lo := m.NewVec(2)
	lo.Fill(1 << 20)
	hi := m.NewVec(2)
	hi.Fill(-(1 << 20))
	idx := m.VecFromSlice([]int32{0, 0, 1, 0})
	vals := m.VecFromSlice([]int32{5, 3, 9, 4})
	all := m.NewBoolVec(4)
	all.Fill(true)
	lo.ScatterMinWhere(all, idx, vals)
	hi.ScatterMaxWhere(all, idx, vals)
	if lo.At(0) != 3 || lo.At(1) != 9 {
		t.Fatalf("ScatterMin = %v", lo.Data())
	}
	if hi.At(0) != 5 || hi.At(1) != 9 {
		t.Fatalf("ScatterMax = %v", hi.Data())
	}
}

func TestScans(t *testing.T) {
	m := testMachine()
	v := m.VecFromSlice([]int32{3, 1, 4, 1, 5})
	scan := v.ScanAddExclusive()
	want := []int32{0, 3, 4, 8, 9}
	for i := range want {
		if scan.At(i) != want[i] {
			t.Fatalf("ScanAddExclusive = %v", scan.Data())
		}
	}
	if v.SumValue() != 14 || v.MaxValue() != 5 {
		t.Fatal("Sum/Max wrong")
	}
}

func TestSegmentedOps(t *testing.T) {
	m := testMachine()
	// Segments by key: [7,7,7 | 9,9 | 4]
	keys := m.VecFromSlice([]int32{7, 7, 7, 9, 9, 4})
	starts := keys.SegStarts()
	wantStart := []bool{true, false, false, true, false, true}
	for i := range wantStart {
		if starts.At(i) != wantStart[i] {
			t.Fatalf("SegStarts = %v", starts.Data())
		}
	}
	vals := m.VecFromSlice([]int32{5, 2, 8, 1, 3, 6})
	mask := m.NewBoolVec(6)
	for i := range mask.Data() {
		mask.Data()[i] = true
	}
	mask.Data()[3] = false // exclude the 1
	mins := vals.SegMinBroadcast(starts, mask, 1<<20)
	wantMin := []int32{2, 2, 2, 3, 3, 6}
	for i := range wantMin {
		if mins.At(i) != wantMin[i] {
			t.Fatalf("SegMinBroadcast = %v", mins.Data())
		}
	}
	rank, count := m.SegRankCount(starts, mask)
	wantRank := []int32{0, 1, 2, 0, 0, 0}
	wantCount := []int32{3, 3, 3, 1, 1, 1}
	for i := range wantRank {
		if rank.At(i) != wantRank[i] || count.At(i) != wantCount[i] {
			t.Fatalf("rank=%v count=%v", rank.Data(), count.Data())
		}
	}
}

func TestSegmentedOpsEmptySegment(t *testing.T) {
	m := testMachine()
	keys := m.VecFromSlice([]int32{1, 2})
	starts := keys.SegStarts()
	vals := m.VecFromSlice([]int32{5, 7})
	mask := m.NewBoolVec(2) // nothing masked
	mins := vals.SegMinBroadcast(starts, mask, 99)
	if mins.At(0) != 99 || mins.At(1) != 99 {
		t.Fatalf("empty segments should yield sentinel: %v", mins.Data())
	}
}

func TestSortPairsAndPack(t *testing.T) {
	m := testMachine()
	a := m.VecFromSlice([]int32{3, 1, 3, 1})
	b := m.VecFromSlice([]int32{0, 9, 2, 1})
	perm := m.SortPairs(a, b)
	sa, sb := a.Gather(perm), b.Gather(perm)
	wantA := []int32{1, 1, 3, 3}
	wantB := []int32{1, 9, 0, 2}
	for i := range wantA {
		if sa.At(i) != wantA[i] || sb.At(i) != wantB[i] {
			t.Fatalf("sorted = %v / %v", sa.Data(), sb.Data())
		}
	}
	dup := m.PairDup(m.VecFromSlice([]int32{1, 1, 2, 2}), m.VecFromSlice([]int32{5, 5, 5, 6}))
	wantDup := []bool{false, true, false, false}
	for i := range wantDup {
		if dup.At(i) != wantDup[i] {
			t.Fatalf("PairDup = %v", dup.Data())
		}
	}
	mask := m.NewBoolVec(4)
	mask.Data()[1], mask.Data()[3] = true, true
	packed := m.Pack(mask, sa, sb)
	if packed[0].Len() != 2 || packed[0].At(0) != 1 || packed[1].At(1) != 2 {
		t.Fatalf("Pack = %v / %v", packed[0].Data(), packed[1].Data())
	}
}

func TestSortPairsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		m := testMachine()
		n := 1 + int(nRaw%40)
		g := prand.New(seed)
		av := make([]int32, n)
		bv := make([]int32, n)
		for i := range av {
			av[i] = int32(g.Intn(8))
			bv[i] = int32(g.Intn(8))
		}
		a, b := m.VecFromSlice(av), m.VecFromSlice(bv)
		perm := m.SortPairs(a, b)
		sa, sb := a.Gather(perm), b.Gather(perm)
		// Sorted lexicographically and a permutation of the input.
		seen := make(map[int32]bool, n)
		for i := 0; i < n; i++ {
			if seen[perm.At(i)] {
				return false
			}
			seen[perm.At(i)] = true
			if i > 0 {
				if sa.At(i) < sa.At(i-1) {
					return false
				}
				if sa.At(i) == sa.At(i-1) && sb.At(i) < sb.At(i-1) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackGrid(t *testing.T) {
	m := testMachine()
	g := gridFrom(m, 2, 2, []int32{10, 20, 30, 40})
	mask := m.NewBoolGrid(2, 2)
	mask.Data()[0], mask.Data()[3] = true, true
	out := m.PackGrid(mask, g)
	if out[0].Len() != 2 || out[0].At(0) != 10 || out[0].At(1) != 40 {
		t.Fatalf("PackGrid = %v", out[0].Data())
	}
}

func TestConcat(t *testing.T) {
	m := testMachine()
	out := m.Concat(m.VecFromSlice([]int32{1, 2}), m.VecFromSlice([]int32{3}), m.NewVec(0))
	if out.Len() != 3 || out.At(2) != 3 {
		t.Fatalf("Concat = %v", out.Data())
	}
}

func TestPointerJump(t *testing.T) {
	m := testMachine()
	// Chain: 4→3→2→0, 1→0.
	rep := m.VecFromSlice([]int32{0, 0, 0, 2, 3})
	rounds := rep.PointerJump()
	for i := 0; i < 5; i++ {
		if rep.At(i) != 0 {
			t.Fatalf("PointerJump = %v", rep.Data())
		}
	}
	if rounds == 0 {
		t.Fatal("expected at least one round")
	}
}

func TestHashChoiceMatchesPrand(t *testing.T) {
	m := testMachine()
	ids := m.VecFromSlice([]int32{5, 9, 100})
	mods := m.VecFromSlice([]int32{3, 0, 7})
	out := ids.HashChoice(11, 4, mods)
	if out.At(0) != int32(prand.Hash3(11, 4, 5)%3) {
		t.Fatal("HashChoice mismatch with prand.Hash3")
	}
	if out.At(1) != 0 {
		t.Fatal("mod 0 should yield 0")
	}
	if out.At(2) != int32(prand.Hash3(11, 4, 100)%7) {
		t.Fatal("HashChoice mismatch")
	}
}

func TestClockAndCounters(t *testing.T) {
	m := testMachine()
	if m.Clock() != 0 {
		t.Fatal("fresh machine clock not zero")
	}
	g := m.NewGrid(8, 8)
	g.Fill(1)
	g.EOShiftX(2, 0)
	g.Flatten().SumValue()
	c := m.Counts()
	if c.ElemOps == 0 || c.NewsOps != 1 || c.ScanOps != 1 {
		t.Fatalf("counters = %+v", c)
	}
	if m.Clock() <= 0 {
		t.Fatal("clock did not advance")
	}
	before := m.Clock()
	m.ChargeScalar(100)
	if m.Clock() <= before {
		t.Fatal("ChargeScalar did not advance clock")
	}
	m.ResetClock()
	if m.Clock() != 0 || m.Counts().ElemOps != 0 {
		t.Fatal("ResetClock incomplete")
	}
}

func TestCrossMachinePanics(t *testing.T) {
	m1, m2 := testMachine(), testMachine()
	a := m1.NewGrid(2, 2)
	b := m2.NewGrid(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-machine op did not panic")
		}
	}()
	a.Min(b)
}

func TestLengthMismatchPanics(t *testing.T) {
	m := testMachine()
	a := m.NewVec(3)
	b := m.NewVec(4)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	a.Add(b)
}

func TestSerialAndParallelAgree(t *testing.T) {
	// The same program on a serial machine and a tiled machine must
	// produce identical data and identical simulated clocks.
	run := func(m *Machine) ([]int32, float64) {
		im := pixmap.Random(64, 9)
		g := m.GridFromImage(im)
		s := g.EOShiftX(-1, 0).Min(g).EOShiftY(2, 5).Max(g)
		v := s.Flatten()
		perm := m.SortPairs(v, m.IotaVec(v.Len()))
		return v.Gather(perm).Data(), m.Clock()
	}
	d1, c1 := run(NewSerial(machine.Get(machine.CM2_8K)))
	d2, c2 := run(New(machine.Get(machine.CM2_8K)))
	if c1 != c2 {
		t.Fatalf("clocks differ: %v vs %v", c1, c2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("serial and tiled execution differ")
		}
	}
}
