package simdvm

import (
	"testing"

	"regiongrow/internal/machine"
	"regiongrow/internal/pixmap"
)

// The goroutine-tiled execution paths only engage above parTile elements;
// this file runs every class of operation on 512×512 arrays (256K
// elements) and cross-checks a tiled machine against a serial one.

const bigN = 512

func bigPair() (serial, tiled *Machine, imA, imB *pixmap.Image) {
	return NewSerial(machine.Get(machine.CM2_8K)), New(machine.Get(machine.CM2_8K)),
		pixmap.Random(bigN, 1), pixmap.Random(bigN, 2)
}

func sameData(t *testing.T, what string, a, b []int32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: tiled and serial differ at %d: %d vs %d", what, i, a[i], b[i])
		}
	}
}

func sameBool(t *testing.T, what string, a, b []bool) {
	t.Helper()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: tiled and serial differ at %d", what, i)
		}
	}
}

func TestTiledGridOpsMatchSerial(t *testing.T) {
	ser, par, imA, imB := bigPair()
	run := func(m *Machine) (*Grid, *BoolGrid) {
		a := m.GridFromImage(imA)
		b := m.GridFromImage(imB)
		g := a.Min(b).Add(a.MulC(3)).Sub(b.AddC(7)).Max(a.ModC(13))
		g = g.EOShiftX(-3, 1).EOShiftY(5, -2).CShiftX(9).CShiftY(-4)
		mask := g.LeC(100).And(a.Ne(b)).Or(b.EqC(0)).AndNot(a.Eq(b))
		g.FillWhere(mask.Not(), 55)
		g2 := g.Clone()
		g2.AssignWhere(mask, a)
		return g2.Add(mask.ToInt()), mask.EOShiftX(2, false).EOShiftY(-1, true)
	}
	gs, ms := run(ser)
	gp, mp := run(par)
	sameData(t, "grid pipeline", gs.Data(), gp.Data())
	sameBool(t, "mask pipeline", ms.Data(), mp.Data())
	if ser.Clock() != par.Clock() {
		t.Fatal("tiled and serial clocks differ")
	}
}

func TestTiledIndexAndGatherMatchSerial(t *testing.T) {
	ser, par, imA, _ := bigPair()
	run := func(m *Machine) *Grid {
		g := m.GridFromImage(imA)
		col := m.ColIndex(bigN, bigN)
		row := m.RowIndex(bigN, bigN)
		self := m.SelfIndex(bigN, bigN)
		ox := col.Sub(col.ModC(16))
		oy := row.Sub(row.ModC(16))
		return g.GatherXY(ox, oy).Add(self.ModC(3))
	}
	sameData(t, "gather pipeline", run(ser).Data(), run(par).Data())
}

func TestTiledVecOpsMatchSerial(t *testing.T) {
	ser, par, imA, imB := bigPair()
	run := func(m *Machine) []int32 {
		v := m.GridFromImage(imA).Flatten()
		w := m.GridFromImage(imB).Flatten()
		keys := v.ModC(257)
		perm := m.SortPairs(keys, m.IotaVec(keys.Len()))
		keys = keys.Gather(perm)
		vals := w.Gather(perm)
		starts := keys.SegStarts()
		mask := vals.LeC(200).And(vals.NeC(13)).Or(keys.EqC(0))
		mins := vals.SegMinBroadcast(starts, mask, 1<<30)
		maxs := vals.SegScanMaxBroadcast(starts, mask, -(1 << 30))
		sums := vals.SegScanAddBroadcast(starts, mask)
		rank, count := m.SegRankCount(starts, mask)
		out := mins.Add(maxs).Add(sums).Add(rank).Add(count.MulC(2)).
			Min(vals.Max(keys)).MaxC(-5).AddC(1)
		packed := m.Pack(mask, out, vals)
		sum := out.ScanAddExclusive()
		return m.Concat(packed[0], packed[1], sum).Data()
	}
	sameData(t, "vec pipeline", run(ser), run(par))
}

func TestTiledScatterAndReduceMatchSerial(t *testing.T) {
	ser, par, imA, imB := bigPair()
	run := func(m *Machine) []int32 {
		pix := m.GridFromImage(imA).Flatten()
		labels := m.GridFromImage(imB).Flatten().ModC(1024)
		all := m.NewBoolVec(pix.Len())
		all.Fill(true)
		lo := m.NewVec(pix.Len())
		lo.Fill(1 << 20)
		hi := m.NewVec(pix.Len())
		hi.Fill(-(1 << 20))
		lo.ScatterMinWhere(all, labels, pix)
		hi.ScatterMaxWhere(all, labels, pix)
		return []int32{lo.SumValue(), hi.SumValue(), pix.MaxValue(),
			int32(all.Count()), int32(boolToInt(all.Any()))}
	}
	sameData(t, "scatter/reduce", run(ser), run(par))
}

func TestTiledAxisOpsMatchSerial(t *testing.T) {
	ser, par, imA, _ := bigPair()
	run := func(m *Machine) []int32 {
		g := m.GridFromImage(imA)
		rows := g.ReduceRowsSum().Add(g.ReduceRowsMin()).Add(g.ReduceRowsMax())
		cols := g.ReduceColsSum().Add(g.ReduceColsMin()).Add(g.ReduceColsMax())
		spread := m.SpreadRows(rows, 8).Flatten()
		spread2 := m.SpreadCols(cols, 8).Flatten()
		tr := g.Transpose().Flatten()
		return m.Concat(rows, cols, spread, spread2, tr).Data()
	}
	sameData(t, "axis ops", run(ser), run(par))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
