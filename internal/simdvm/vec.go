package simdvm

import "regiongrow/internal/prand"

// Vec is a one-dimensional parallel array of int32 — the representation the
// paper uses for graph vertices and edges ("one-dimensional arrays were
// used to store information about the vertices and edges").
type Vec struct {
	m *Machine
	v []int32
}

// BoolVec is a one-dimensional parallel mask.
type BoolVec struct {
	m *Machine
	v []bool
}

// NewVec allocates a zeroed vector of length n.
func (m *Machine) NewVec(n int) *Vec { return &Vec{m: m, v: make([]int32, n)} }

// NewBoolVec allocates a false mask of length n.
func (m *Machine) NewBoolVec(n int) *BoolVec { return &BoolVec{m: m, v: make([]bool, n)} }

// VecFromSlice loads front-end data into a fresh vector.
func (m *Machine) VecFromSlice(data []int32) *Vec {
	out := m.NewVec(len(data))
	m.chargeElem(len(data))
	m.parFor(len(data), func(lo, hi int) { copy(out.v[lo:hi], data[lo:hi]) })
	return out
}

// IotaVec returns [0, 1, ..., n−1].
func (m *Machine) IotaVec(n int) *Vec {
	out := m.NewVec(n)
	m.chargeElem(n)
	m.parFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = int32(i)
		}
	})
	return out
}

// Len returns the vector length.
func (a *Vec) Len() int { return len(a.v) }

// At reads one element from the front end.
func (a *Vec) At(i int) int32 { return a.v[i] }

// Data exposes the backing slice for front-end extraction.
func (a *Vec) Data() []int32 { return a.v }

// Clone returns a copy.
func (a *Vec) Clone() *Vec {
	out := a.m.NewVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) { copy(out.v[lo:hi], a.v[lo:hi]) })
	return out
}

// Fill sets every element to c.
func (a *Vec) Fill(c int32) {
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a.v[i] = c
		}
	})
}

// FillWhere sets elements to c where mask holds.
func (a *Vec) FillWhere(mask *BoolVec, c int32) {
	a.m.sameMachine(mask.m)
	checkLen("FillWhere", len(a.v), len(mask.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask.v[i] {
				a.v[i] = c
			}
		}
	})
}

// AssignWhere copies src where mask holds.
func (a *Vec) AssignWhere(mask *BoolVec, src *Vec) {
	a.m.sameMachine(mask.m)
	a.m.sameMachine(src.m)
	checkLen("AssignWhere", len(a.v), len(mask.v))
	checkLen("AssignWhere", len(a.v), len(src.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask.v[i] {
				a.v[i] = src.v[i]
			}
		}
	})
}

func (a *Vec) binOp(op string, other *Vec, f func(x, y int32) int32) *Vec {
	a.m.sameMachine(other.m)
	checkLen(op, len(a.v), len(other.v))
	out := a.m.NewVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = f(a.v[i], other.v[i])
		}
	})
	return out
}

// Min returns the elementwise minimum.
func (a *Vec) Min(other *Vec) *Vec {
	return a.binOp("Min", other, func(x, y int32) int32 {
		if x < y {
			return x
		}
		return y
	})
}

// Max returns the elementwise maximum.
func (a *Vec) Max(other *Vec) *Vec {
	return a.binOp("Max", other, func(x, y int32) int32 {
		if x > y {
			return x
		}
		return y
	})
}

// Sub returns the elementwise difference a − other.
func (a *Vec) Sub(other *Vec) *Vec {
	return a.binOp("Sub", other, func(x, y int32) int32 { return x - y })
}

// Add returns the elementwise sum.
func (a *Vec) Add(other *Vec) *Vec {
	return a.binOp("Add", other, func(x, y int32) int32 { return x + y })
}

func (a *Vec) cmpOp(op string, other *Vec, f func(x, y int32) bool) *BoolVec {
	a.m.sameMachine(other.m)
	checkLen(op, len(a.v), len(other.v))
	out := a.m.NewBoolVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = f(a.v[i], other.v[i])
		}
	})
	return out
}

// Eq returns the elementwise equality mask.
func (a *Vec) Eq(other *Vec) *BoolVec {
	return a.cmpOp("Eq", other, func(x, y int32) bool { return x == y })
}

// Ne returns the elementwise inequality mask.
func (a *Vec) Ne(other *Vec) *BoolVec {
	return a.cmpOp("Ne", other, func(x, y int32) bool { return x != y })
}

// Lt returns the elementwise less-than mask.
func (a *Vec) Lt(other *Vec) *BoolVec {
	return a.cmpOp("Lt", other, func(x, y int32) bool { return x < y })
}

// EqC returns the mask of elements equal to c.
func (a *Vec) EqC(c int32) *BoolVec {
	out := a.m.NewBoolVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = a.v[i] == c
		}
	})
	return out
}

// NeC returns the mask of elements not equal to c.
func (a *Vec) NeC(c int32) *BoolVec {
	out := a.m.NewBoolVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = a.v[i] != c
		}
	})
	return out
}

// LeC returns the mask of elements ≤ c.
func (a *Vec) LeC(c int32) *BoolVec {
	out := a.m.NewBoolVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = a.v[i] <= c
		}
	})
	return out
}

// MulC returns the vector scaled by constant c.
func (a *Vec) MulC(c int32) *Vec {
	out := a.m.NewVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = a.v[i] * c
		}
	})
	return out
}

// ModC returns the vector modulo constant c (c > 0).
func (a *Vec) ModC(c int32) *Vec {
	if c <= 0 {
		panic("simdvm: Vec.ModC with non-positive modulus")
	}
	out := a.m.NewVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = a.v[i] % c
		}
	})
	return out
}

// Gather performs a router get: out(i) = a(idx(i)). Indices must be in
// range.
func (a *Vec) Gather(idx *Vec) *Vec {
	a.m.sameMachine(idx.m)
	out := a.m.NewVec(len(idx.v))
	a.m.chargeRouter(len(idx.v))
	a.m.parFor(len(idx.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = a.v[idx.v[i]]
		}
	})
	return out
}

// ScatterWhere performs a router send: for each i with mask(i),
// a(idx(i)) = vals(i). Destinations must be distinct where mask holds
// (no-collision contract; use ScatterMin/ScatterMax for combining sends).
func (a *Vec) ScatterWhere(mask *BoolVec, idx, vals *Vec) {
	a.m.sameMachine(mask.m)
	a.m.sameMachine(idx.m)
	a.m.sameMachine(vals.m)
	checkLen("ScatterWhere", len(idx.v), len(vals.v))
	checkLen("ScatterWhere", len(idx.v), len(mask.v))
	a.m.chargeRouter(len(idx.v))
	// Collision-free by contract, so tiles write disjoint destinations;
	// run serially anyway: scattered writes gain little from tiling.
	for i := range idx.v {
		if mask.v[i] {
			a.v[idx.v[i]] = vals.v[i]
		}
	}
}

// ScatterMinWhere performs a combining router send with minimum:
// a(idx(i)) = min(a(idx(i)), vals(i)) for each i with mask(i). The CM-2
// router supported combining sends in hardware.
func (a *Vec) ScatterMinWhere(mask *BoolVec, idx, vals *Vec) {
	a.m.sameMachine(mask.m)
	a.m.sameMachine(idx.m)
	a.m.sameMachine(vals.m)
	checkLen("ScatterMinWhere", len(idx.v), len(vals.v))
	checkLen("ScatterMinWhere", len(idx.v), len(mask.v))
	a.m.chargeRouter(len(idx.v))
	for i := range idx.v {
		if mask.v[i] && vals.v[i] < a.v[idx.v[i]] {
			a.v[idx.v[i]] = vals.v[i]
		}
	}
}

// ScatterMaxWhere is ScatterMinWhere with maximum combining.
func (a *Vec) ScatterMaxWhere(mask *BoolVec, idx, vals *Vec) {
	a.m.sameMachine(mask.m)
	a.m.sameMachine(idx.m)
	a.m.sameMachine(vals.m)
	checkLen("ScatterMaxWhere", len(idx.v), len(vals.v))
	checkLen("ScatterMaxWhere", len(idx.v), len(mask.v))
	a.m.chargeRouter(len(idx.v))
	for i := range idx.v {
		if mask.v[i] && vals.v[i] > a.v[idx.v[i]] {
			a.v[idx.v[i]] = vals.v[i]
		}
	}
}

// HashChoice computes, elementwise, Hash3(seed, iter, a(i)) mod mod(i) —
// the per-region pseudo-random draw of the Random tie policy, evaluated on
// every virtual processor at once. Elements where mod(i) ≤ 0 yield 0.
func (a *Vec) HashChoice(seed uint64, iter int, mod *Vec) *Vec {
	a.m.sameMachine(mod.m)
	checkLen("HashChoice", len(a.v), len(mod.v))
	out := a.m.NewVec(len(a.v))
	a.m.chargeElem(len(a.v))
	a.m.parFor(len(a.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if mod.v[i] > 0 {
				out.v[i] = int32(prand.Hash3(seed, uint64(iter), uint64(uint32(a.v[i]))) % uint64(mod.v[i]))
			}
		}
	})
	return out
}

// BoolVec operations.

// Len returns the mask length.
func (b *BoolVec) Len() int { return len(b.v) }

// At reads one element from the front end.
func (b *BoolVec) At(i int) bool { return b.v[i] }

// Data exposes the backing slice.
func (b *BoolVec) Data() []bool { return b.v }

func (b *BoolVec) binOp(op string, other *BoolVec, f func(x, y bool) bool) *BoolVec {
	b.m.sameMachine(other.m)
	checkLen(op, len(b.v), len(other.v))
	out := b.m.NewBoolVec(len(b.v))
	b.m.chargeElem(len(b.v))
	b.m.parFor(len(b.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = f(b.v[i], other.v[i])
		}
	})
	return out
}

// And returns the elementwise conjunction.
func (b *BoolVec) And(other *BoolVec) *BoolVec {
	return b.binOp("And", other, func(x, y bool) bool { return x && y })
}

// Or returns the elementwise disjunction.
func (b *BoolVec) Or(other *BoolVec) *BoolVec {
	return b.binOp("Or", other, func(x, y bool) bool { return x || y })
}

// AndNot returns x ∧ ¬y.
func (b *BoolVec) AndNot(other *BoolVec) *BoolVec {
	return b.binOp("AndNot", other, func(x, y bool) bool { return x && !y })
}

// Not returns the negation.
func (b *BoolVec) Not() *BoolVec {
	out := b.m.NewBoolVec(len(b.v))
	b.m.chargeElem(len(b.v))
	b.m.parFor(len(b.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.v[i] = !b.v[i]
		}
	})
	return out
}

// Fill sets every mask element to c.
func (b *BoolVec) Fill(c bool) {
	b.m.chargeElem(len(b.v))
	b.m.parFor(len(b.v), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			b.v[i] = c
		}
	})
}

// Count reduces the mask to its number of true elements.
func (b *BoolVec) Count() int {
	b.m.chargeScan(len(b.v))
	parts := make(chan int, b.m.workers+1)
	var issued int
	b.m.parForCollect(len(b.v), &issued, parts, func(lo, hi int) int {
		n := 0
		for i := lo; i < hi; i++ {
			if b.v[i] {
				n++
			}
		}
		return n
	})
	total := 0
	for i := 0; i < issued; i++ {
		total += <-parts
	}
	return total
}

// Any reduces the mask to whether any element is set.
func (b *BoolVec) Any() bool { return b.Count() > 0 }
