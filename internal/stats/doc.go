// Package stats renders experiment results in the layout of the paper's
// tables and bar chart, and embeds the paper's published numbers so the
// benchmark harness can print paper-vs-measured comparisons.
//
// An Experiment is one image's rows across the five machine
// configurations; RenderTable prints it in the paper's per-image table
// layout, BarChart prints the Figure 3 merge-time comparison, and
// Orderings checks the paper's qualitative claims (Async < LP < CM Fortran
// on the CM-5; CM2-16K < CM2-8K < CM5 CM Fortran on the merge stage),
// returning any violations as human-readable strings.
package stats
