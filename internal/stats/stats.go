package stats

import (
	"fmt"
	"io"
	"strings"

	"regiongrow/internal/machine"
	"regiongrow/internal/pixmap"
)

// Row is one configuration's line in a per-image table.
type Row struct {
	Config     machine.ConfigID
	SplitSecs  float64
	SplitIters int
	MergeSecs  float64
	MergeIters int
	// Wall* are the real host durations in seconds (informational; the
	// Secs columns above are simulated machine times).
	WallSplit, WallMerge float64
}

// Experiment is one image's full table.
type Experiment struct {
	Image             pixmap.PaperImageID
	SquaresAfterSplit int
	FinalRegions      int
	Rows              []Row
}

// RenderTable writes the experiment in the paper's table layout, with the
// paper's published numbers alongside when available.
func RenderTable(w io.Writer, exp Experiment) {
	ref, hasRef := PaperTables[exp.Image]
	fmt.Fprintf(w, "%s\n", exp.Image)
	fmt.Fprintf(w, "No. of square regions found at end of split stage = %d", exp.SquaresAfterSplit)
	if hasRef {
		fmt.Fprintf(w, "   (paper: %d)", ref.Squares)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "No. of regions found at end of merge stage = %d", exp.FinalRegions)
	if hasRef {
		fmt.Fprintf(w, "   (paper: %d)", ref.FinalRegions)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-36s %9s %6s %9s %6s", "", "Split", "Split", "Merge", "Merge")
	if hasRef {
		fmt.Fprintf(w, "   %18s", "paper(split/merge)")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-36s %9s %6s %9s %6s\n", "", "(secs)", "Iters", "(secs)", "Iters")
	for _, r := range exp.Rows {
		split, merge := r.SplitSecs, r.MergeSecs
		note := ""
		switch r.Config {
		case machine.HostNative:
			// The native engine models no machine; report host wall time.
			split, merge = r.WallSplit, r.WallMerge
			note = "   (host wall time)"
		case machine.HostCluster:
			// The distributed engine likewise reports real wall time.
			split, merge = r.WallSplit, r.WallMerge
			note = "   (cluster wall time)"
		}
		fmt.Fprintf(w, "%-36s %9.3f %6d %9.3f %6d",
			r.Config, split, r.SplitIters, merge, r.MergeIters)
		if hasRef {
			if pr, ok := ref.Rows[r.Config]; ok {
				fmt.Fprintf(w, "   %7.3f /%8.3f", pr.Split, pr.Merge)
			}
		}
		fmt.Fprint(w, note)
		fmt.Fprintln(w)
	}
}

// BarChart draws a horizontal ASCII bar chart: one group of bars per
// image, one bar per configuration — the shape of the paper's Figure 3.
// Native rows are omitted: the figure compares simulated machine times,
// and the native engine has none (its host wall time appears in the
// tables instead).
func BarChart(w io.Writer, title string, exps []Experiment) {
	fmt.Fprintln(w, title)
	maxV := 0.0
	for _, e := range exps {
		for _, r := range e.Rows {
			if r.MergeSecs > maxV {
				maxV = r.MergeSecs
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	const width = 56
	for _, e := range exps {
		fmt.Fprintf(w, "%s\n", e.Image)
		for _, r := range e.Rows {
			if r.Config == machine.HostNative || r.Config == machine.HostCluster {
				continue
			}
			n := int(r.MergeSecs / maxV * width)
			if n < 1 && r.MergeSecs > 0 {
				n = 1
			}
			fmt.Fprintf(w, "  %-10s |%s %.3f s\n", r.Config.Short(), strings.Repeat("#", n), r.MergeSecs)
		}
	}
	fmt.Fprintf(w, "(bar scale: %.1f s full width)\n", maxV)
}

// PaperRow holds one published (split, merge) pair in seconds.
type PaperRow struct {
	Split, Merge float64
	SplitIters   int
	MergeIters   int
}

// PaperTable holds one image's published table.
type PaperTable struct {
	Squares      int
	FinalRegions int
	Rows         map[machine.ConfigID]PaperRow
}

// PaperTables reproduces the six tables of the paper's Performance
// section verbatim, keyed by image.
var PaperTables = map[pixmap.PaperImageID]PaperTable{
	pixmap.Image1NestedRects128: {
		Squares: 436, FinalRegions: 2,
		Rows: map[machine.ConfigID]PaperRow{
			machine.CM2_8K:    {0.200, 9.511, 4, 19},
			machine.CM2_16K:   {0.112, 7.027, 4, 20},
			machine.CM5_CMF:   {0.361, 33.013, 4, 19},
			machine.CM5_LP:    {0.022, 6.914, 4, 24},
			machine.CM5_Async: {0.021, 4.025, 4, 20},
		},
	},
	pixmap.Image2Rects128: {
		Squares: 193, FinalRegions: 7,
		Rows: map[machine.ConfigID]PaperRow{
			machine.CM2_8K:    {0.200, 8.184, 4, 18},
			machine.CM2_16K:   {0.112, 5.345, 4, 17},
			machine.CM5_CMF:   {0.360, 31.615, 4, 20},
			machine.CM5_LP:    {0.022, 9.236, 4, 35},
			machine.CM5_Async: {0.021, 6.441, 4, 35},
		},
	},
	pixmap.Image3Circles128: {
		Squares: 1732, FinalRegions: 11,
		Rows: map[machine.ConfigID]PaperRow{
			machine.CM2_8K:    {0.200, 13.711, 4, 24},
			machine.CM2_16K:   {0.112, 9.538, 4, 25},
			machine.CM5_CMF:   {0.361, 42.570, 4, 27},
			machine.CM5_LP:    {0.022, 9.454, 4, 33},
			machine.CM5_Async: {0.021, 5.516, 4, 28},
		},
	},
	pixmap.Image4NestedRects256: {
		Squares: 823, FinalRegions: 2,
		Rows: map[machine.ConfigID]PaperRow{
			machine.CM2_8K:    {1.008, 13.882, 5, 26},
			machine.CM2_16K:   {0.529, 10.381, 5, 28},
			machine.CM5_CMF:   {2.052, 37.588, 5, 25},
			machine.CM5_LP:    {0.097, 16.512, 5, 37},
			machine.CM5_Async: {0.097, 10.942, 5, 29},
		},
	},
	pixmap.Image5Rects256: {
		Squares: 298, FinalRegions: 7,
		Rows: map[machine.ConfigID]PaperRow{
			machine.CM2_8K:    {1.008, 9.287, 5, 19},
			machine.CM2_16K:   {0.529, 6.633, 5, 20},
			machine.CM5_CMF:   {2.046, 24.471, 5, 16},
			machine.CM5_LP:    {0.099, 14.388, 5, 35},
			machine.CM5_Async: {0.098, 6.640, 5, 35},
		},
	},
	pixmap.Image6Tool256: {
		Squares: 2248, FinalRegions: 4,
		Rows: map[machine.ConfigID]PaperRow{
			machine.CM2_8K:    {1.008, 19.530, 5, 34},
			machine.CM2_16K:   {0.529, 13.426, 5, 33},
			machine.CM5_CMF:   {2.066, 75.582, 5, 45},
			machine.CM5_LP:    {0.098, 12.192, 5, 36},
			machine.CM5_Async: {0.098, 7.236, 5, 38},
		},
	},
}

// Orderings verifies the qualitative claims C2–C5 (DESIGN.md) over a set
// of experiments: for every image, Async < LP, message passing < CM5 CM
// Fortran, CM2-16K < CM2-8K, and CM2 (both) < CM5 in CM Fortran for the
// merge stage. It returns a list of violations (empty when all hold).
func Orderings(exps []Experiment) []string {
	var bad []string
	for _, e := range exps {
		m := map[machine.ConfigID]Row{}
		for _, r := range e.Rows {
			m[r.Config] = r
		}
		check := func(faster, slower machine.ConfigID, claim string) {
			a, okA := m[faster]
			b, okB := m[slower]
			if okA && okB && a.MergeSecs >= b.MergeSecs {
				bad = append(bad, fmt.Sprintf("%v: %s violated: %v %.3fs >= %v %.3fs",
					e.Image, claim, faster, a.MergeSecs, slower, b.MergeSecs))
			}
		}
		check(machine.CM5_Async, machine.CM5_LP, "C2 async<LP")
		check(machine.CM2_8K, machine.CM5_CMF, "C3 CM2<CM5(CMF)")
		check(machine.CM2_16K, machine.CM5_CMF, "C3 CM2<CM5(CMF)")
		check(machine.CM5_LP, machine.CM5_CMF, "C4 MP<DP on CM-5")
		check(machine.CM5_Async, machine.CM5_CMF, "C4 MP<DP on CM-5")
		check(machine.CM2_16K, machine.CM2_8K, "C5 16K<8K")
	}
	return bad
}
