package stats

import (
	"strings"
	"testing"

	"regiongrow/internal/machine"
	"regiongrow/internal/pixmap"
)

func sampleExperiment() Experiment {
	return Experiment{
		Image:             pixmap.Image1NestedRects128,
		SquaresAfterSplit: 500,
		FinalRegions:      2,
		Rows: []Row{
			{Config: machine.CM2_8K, SplitSecs: 0.2, SplitIters: 4, MergeSecs: 9.0, MergeIters: 20},
			{Config: machine.CM2_16K, SplitSecs: 0.1, SplitIters: 4, MergeSecs: 7.0, MergeIters: 20},
			{Config: machine.CM5_CMF, SplitSecs: 0.4, SplitIters: 4, MergeSecs: 30.0, MergeIters: 20},
			{Config: machine.CM5_LP, SplitSecs: 0.02, SplitIters: 4, MergeSecs: 7.0, MergeIters: 22},
			{Config: machine.CM5_Async, SplitSecs: 0.02, SplitIters: 4, MergeSecs: 4.0, MergeIters: 21},
		},
	}
}

func TestRenderTable(t *testing.T) {
	var sb strings.Builder
	RenderTable(&sb, sampleExperiment())
	out := sb.String()
	for _, want := range []string{
		"Image 1", "square regions found at end of split stage = 500",
		"(paper: 436)", "regions found at end of merge stage = 2",
		"CM Fortran on CM-2 ( 8K procs)", "9.000", "F77 + CMMD", "Async",
		"9.511", // the paper's reference number appears alongside
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRenderTableWithoutReference(t *testing.T) {
	exp := sampleExperiment()
	exp.Image = pixmap.PaperImageID(99) // no paper data
	var sb strings.Builder
	RenderTable(&sb, exp)
	if strings.Contains(sb.String(), "paper") {
		t.Fatal("unexpected paper reference")
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	BarChart(&sb, "Figure 3", []Experiment{sampleExperiment()})
	out := sb.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "CM5-Async") {
		t.Fatalf("chart malformed:\n%s", out)
	}
	// The largest value gets the longest bar.
	lines := strings.Split(out, "\n")
	barLen := func(substr string) int {
		for _, l := range lines {
			if strings.Contains(l, substr) {
				return strings.Count(l, "#")
			}
		}
		return -1
	}
	if barLen("CM5-CMF") <= barLen("CM5-Async") {
		t.Fatal("bar lengths not proportional")
	}
}

func TestRenderTableNativeRow(t *testing.T) {
	exp := sampleExperiment()
	exp.Rows = append(exp.Rows, Row{
		Config: machine.HostNative, SplitIters: 4, MergeIters: 21,
		WallSplit: 0.00123, WallMerge: 0.00456,
	})
	var sb strings.Builder
	RenderTable(&sb, exp)
	out := sb.String()
	if !strings.Contains(out, "Native goroutines on host") {
		t.Fatalf("native row missing:\n%s", out)
	}
	if !strings.Contains(out, "(host wall time)") {
		t.Fatalf("native row not marked as host wall time:\n%s", out)
	}
	// The native row shows its wall times, not simulated zeros.
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "Native goroutines") && !strings.Contains(l, "0.005") {
			t.Fatalf("native row does not carry wall merge time: %q", l)
		}
	}

	// Figure 3 compares simulated times only; the native row is omitted.
	sb.Reset()
	BarChart(&sb, "Figure 3", []Experiment{exp})
	if strings.Contains(sb.String(), "native") {
		t.Fatalf("native row leaked into the bar chart:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "CM5-Async") {
		t.Fatalf("simulated rows missing from chart:\n%s", sb.String())
	}
}

func TestBarChartEmpty(t *testing.T) {
	var sb strings.Builder
	BarChart(&sb, "empty", nil)
	if !strings.Contains(sb.String(), "empty") {
		t.Fatal("title missing")
	}
}

func TestPaperTablesComplete(t *testing.T) {
	for _, id := range pixmap.AllPaperImages() {
		ref, ok := PaperTables[id]
		if !ok {
			t.Fatalf("%v missing from PaperTables", id)
		}
		if ref.Squares <= 0 || ref.FinalRegions <= 0 {
			t.Fatalf("%v: bad header data", id)
		}
		for _, mc := range machine.AllConfigs() {
			row, ok := ref.Rows[mc]
			if !ok {
				t.Fatalf("%v: missing row %v", id, mc)
			}
			if row.Split <= 0 || row.Merge <= 0 || row.SplitIters <= 0 || row.MergeIters <= 0 {
				t.Fatalf("%v %v: non-positive entries %+v", id, mc, row)
			}
		}
	}
}

func TestPaperTablesReflectClaims(t *testing.T) {
	// The embedded reference data itself satisfies the paper's claims —
	// a transcription check.
	var exps []Experiment
	for _, id := range pixmap.AllPaperImages() {
		ref := PaperTables[id]
		exp := Experiment{Image: id, SquaresAfterSplit: ref.Squares, FinalRegions: ref.FinalRegions}
		for _, mc := range machine.AllConfigs() {
			r := ref.Rows[mc]
			exp.Rows = append(exp.Rows, Row{Config: mc, SplitSecs: r.Split, SplitIters: r.SplitIters,
				MergeSecs: r.Merge, MergeIters: r.MergeIters})
		}
		exps = append(exps, exp)
	}
	if bad := Orderings(exps); len(bad) > 0 {
		t.Fatalf("paper's own numbers violate claims: %v", bad)
	}
}

func TestOrderingsDetectsViolation(t *testing.T) {
	exp := sampleExperiment()
	exp.Rows[4].MergeSecs = 100 // async slower than LP
	if bad := Orderings([]Experiment{exp}); len(bad) == 0 {
		t.Fatal("violation not detected")
	}
}
