// Package stream segments images of effectively unbounded size in O(band)
// memory: the sixth engine path, pointing the distributed engine's banded
// decomposition at disk instead of sockets.
//
// The image streams in as horizontal bands whose boundaries are multiples
// of the effective split cap. Cap alignment means no split square crosses
// a band boundary, so splitting each band independently reproduces
// exactly the global split (the same argument distengine's workers rely
// on). Each band's squares join one global region adjacency graph —
// intra-band edges from the band's labels, inter-band edges stitched
// against the retained previous-band boundary row — and the band's square
// list spills to a temp-file spool before its pixels are retired. Only
// the live frontier strip, the RAG (one vertex per square, not per
// pixel), and the spool survive a band.
//
// The merge stage then runs the exact sequential kernel — rag.DriveCtx
// driving Graph.MergeIteration rounds over the fully assembled graph — so
// iteration numbering, stall-forced resolutions, and Random-tie draws are
// identical to the in-memory engines, making the emitted labels
// byte-identical to theirs. A second pass replays the spool band by band,
// resolves each square's final region, and emits the output through the
// streaming writer.
package stream
