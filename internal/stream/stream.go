package stream

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"regiongrow/internal/core"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
	"regiongrow/internal/rag"
)

// Output selects what the streaming engine emits.
type Output int

const (
	// OutputRecolour emits a binary PGM painting every final region the
	// midpoint of its intensity interval — byte-identical to recolouring
	// the sequential engine's segmentation and writing it with WritePGM.
	OutputRecolour Output = iota
	// OutputLabels emits the raw label raster in the format of
	// EncodeLabels — byte-identical to encoding the sequential engine's
	// Labels.
	OutputLabels
)

// Options tune the streaming driver. The zero value is ready to use.
type Options struct {
	// BandRows is the desired band height in rows. It is rounded down to a
	// multiple of the effective split cap and raised to at least one cap —
	// the alignment that makes band-local splits equal the global split.
	// 0 selects one cap per band, the minimum-memory configuration.
	BandRows int
	// SpoolDir hosts the square-spool temp file ("" = the system default).
	SpoolDir string
	// Output selects the emitted format (default OutputRecolour).
	Output Output
}

// Result reports what a streaming run did. It mirrors the statistics of
// core.Segmentation without the per-pixel label array, which never exists
// in memory on this path.
type Result struct {
	W, H  int
	Bands int

	SplitIterations   int // max over bands, the parallel-engine convention
	MergeIterations   int
	SquaresAfterSplit int
	FinalRegions      int

	MergesPerIter     []int
	ForcedResolutions int

	SplitWall, MergeWall time.Duration
}

// spoolRecord is one spilled square: 8 little-endian bytes on disk.
const spoolRecordSize = 8

// Segment streams a PGM from r, segments it under cfg, and writes the
// result to w in the format opt.Output selects. Cancellation and progress
// follow the standard engine contract: ctx is checked at every band and
// merge round, stage events go to run.Observer.
//
// Peak memory is O(band + squares): one pixel band, the frontier strip,
// and the region graph — never the full raster or label map. Labels are
// byte-identical to the sequential engine's for the same cfg.
func Segment(ctx context.Context, r io.Reader, w io.Writer, cfg core.Config, run core.Run, opt Options) (*Result, error) {
	sr, err := pixmap.NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	width, height := sr.Width(), sr.Height()
	res := &Result{W: width, H: height}
	if width == 0 || height == 0 {
		// Degenerate geometry: emit the header of an empty raster, exactly
		// what the in-memory path would write for the empty segmentation.
		return res, writeEmpty(w, width, height, opt.Output)
	}

	crit := cfg.Criterion()
	cap := quadsplit.EffectiveCap(quadsplit.Options{MaxSquare: cfg.MaxSquare}, width, height)
	bandRows := max(opt.BandRows/cap, 1) * cap

	spool, err := os.CreateTemp(opt.SpoolDir, "regiongrow-stream-*.spool")
	if err != nil {
		return nil, fmt.Errorf("stream: creating spool: %w", err)
	}
	defer func() {
		spool.Close()
		os.Remove(spool.Name())
	}()

	g := rag.NewGraph(crit)
	bandSquares, err := ingest(ctx, sr, spool, g, res, cfg, run, cap, bandRows)
	if err != nil {
		return nil, err
	}
	run.Emit(core.StageEvent{Kind: core.EventGraphDone, Squares: res.SquaresAfterSplit})

	t1 := time.Now() //vet:timing stage wall-time for Result; never reaches labels or output bytes
	asg := rag.NewAssignments()
	mstats, err := rag.DriveCtx(ctx, cfg.Tie,
		g.HasActive,
		func(effective rag.TiePolicy, iter int) int {
			merged := g.MergeIteration(effective, cfg.Seed, iter, asg)
			run.Emit(core.StageEvent{Kind: core.EventMergeIteration, Iteration: iter, Merges: merged})
			return merged
		})
	if err != nil {
		return nil, err
	}
	res.MergeIterations = mstats.Iterations
	res.MergesPerIter = mstats.MergesPerIter
	res.ForcedResolutions = mstats.ForcedResolutions
	res.FinalRegions = g.NumVertices()

	if err := emit(ctx, w, spool, g, asg, res, bandSquares, bandRows, opt.Output); err != nil {
		return nil, err
	}
	res.MergeWall = time.Since(t1) //vet:timing stage wall-time for Result; never reaches labels or output bytes
	run.Emit(core.StageEvent{Kind: core.EventMergeDone, Iterations: mstats.Iterations, Regions: res.FinalRegions})
	return res, nil
}

// ingest runs pass 1: stream bands in, split each, assemble the global
// RAG incrementally (stitching across band boundaries through the
// retained frontier row), and spill each band's square list to the spool.
// It returns the per-band square counts that delimit the spool on replay.
func ingest(ctx context.Context, sr *pixmap.StreamReader, spool *os.File, g *rag.Graph, res *Result, cfg core.Config, run core.Run, cap, bandRows int) ([]int, error) {
	width, height := res.W, res.H
	run.Emit(core.StageEvent{Kind: core.EventSplitStart})
	t0 := time.Now() //vet:timing stage wall-time for Result; never reaches labels or output bytes

	sw := bufio.NewWriterSize(spool, 1<<16)
	bandPix := make([]uint8, width*bandRows)
	frontier := make([]int32, width) // previous band's last row, global labels
	var bandSquares []int
	var rec [spoolRecordSize]byte
	crit := cfg.Criterion()
	sc := run.SplitScratch()

	for y0 := 0; y0 < height; {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bh := min(bandRows, height-y0)
		if err := sr.ReadRows(bandPix, bh); err != nil {
			return nil, err
		}
		band := &pixmap.Image{W: width, H: bh, Pix: bandPix[:width*bh]}
		// The cap was resolved against the full image; a short final band
		// may legally re-resolve it smaller (see distengine's identical
		// local split), so the band split equals the global split within
		// the band.
		sp, err := quadsplit.SplitCtx(ctx, band, crit, quadsplit.Options{MaxSquare: cap, Scratch: sc})
		if err != nil {
			return nil, err
		}
		res.SplitIterations = max(res.SplitIterations, sp.Iterations)
		res.SquaresAfterSplit += sp.NumSquares

		// Vertices with global IDs, spilled to the spool as they appear.
		for _, sq := range sp.Squares(band) {
			gid := int32((y0+sq.Y)*width + sq.X)
			g.AddVertex(gid, sq.IV)
			binary.LittleEndian.PutUint32(rec[0:4], uint32(gid))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(sq.Size))
			if _, err := sw.Write(rec[:]); err != nil {
				return nil, fmt.Errorf("stream: writing spool: %w", err)
			}
		}
		bandSquares = append(bandSquares, sp.NumSquares)

		// Intra-band adjacency, shifted into global ID space.
		off := int32(y0 * width)
		labels := sp.Labels
		for ly := 0; ly < bh; ly++ {
			row := ly * width
			for lx := 0; lx < width; lx++ {
				a := labels[row+lx]
				if lx+1 < width {
					if b := labels[row+lx+1]; a != b {
						g.AddEdge(a+off, b+off)
					}
				}
				if ly+1 < bh {
					if b := labels[row+width+lx]; a != b {
						g.AddEdge(a+off, b+off)
					}
				}
			}
		}
		// Stitch against the previous band's boundary row, then retire the
		// band: only the new frontier strip survives.
		for lx := 0; lx < width; lx++ {
			b := labels[lx] + off
			if y0 > 0 && frontier[lx] != b {
				g.AddEdge(frontier[lx], b)
			}
			frontier[lx] = labels[(bh-1)*width+lx] + off
		}
		y0 += bh
		res.Bands++
	}
	if err := sw.Flush(); err != nil {
		return nil, fmt.Errorf("stream: flushing spool: %w", err)
	}
	res.SplitWall = time.Since(t0) //vet:timing stage wall-time for Result; never reaches labels or output bytes
	run.Emit(core.StageEvent{Kind: core.EventSplitDone, Iterations: res.SplitIterations, Squares: res.SquaresAfterSplit})
	return bandSquares, nil
}

// emit runs pass 2: replay the spool band by band, resolve every square's
// final region through the merge assignments, and stream the output.
func emit(ctx context.Context, w io.Writer, spool *os.File, g *rag.Graph, asg *rag.Assignments, res *Result, bandSquares []int, bandRows int, output Output) error {
	width, height := res.W, res.H
	if _, err := spool.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("stream: rewinding spool: %w", err)
	}
	rd := bufio.NewReaderSize(spool, 1<<16)

	// Shade table for recoloured output. Graph vertex intervals are exact
	// pixel unions (square intervals union under contraction), so the
	// midpoints match Recolour on the in-memory segmentation.
	var shade map[int32]uint8
	if output == OutputRecolour {
		shade = make(map[int32]uint8, g.NumVertices())
		//vet:noctx bounded in-memory scan over graph slots; the per-row emit loop below carries the ctx checks
		for s := 0; s < g.Slots(); s++ {
			if !g.SlotAlive(s) {
				continue
			}
			iv := g.SlotInterval(s)
			shade[g.SlotID(s)] = uint8((int(iv.Lo) + int(iv.Hi)) / 2)
		}
	}

	var pgm *pixmap.StreamWriter
	var bw *bufio.Writer
	var outPix []uint8
	var outLab []int32
	switch output {
	case OutputRecolour:
		var err error
		if pgm, err = pixmap.NewStreamWriter(w, width, height); err != nil {
			return err
		}
		outPix = make([]uint8, width*bandRows)
	case OutputLabels:
		bw = bufio.NewWriterSize(w, 1<<16)
		if err := writeLabelHeader(bw, width, height); err != nil {
			return err
		}
		outLab = make([]int32, width*bandRows)
	default:
		return fmt.Errorf("stream: unknown output format %d", int(output))
	}

	find := make(map[int32]int32, g.NumVertices())
	var rec [spoolRecordSize]byte
	y0 := 0
	for bi, count := range bandSquares {
		if err := ctx.Err(); err != nil {
			return err
		}
		bh := min(bandRows, height-y0)
		for k := 0; k < count; k++ {
			if _, err := io.ReadFull(rd, rec[:]); err != nil {
				return fmt.Errorf("stream: reading spool band %d: %w", bi, err)
			}
			gid := int32(binary.LittleEndian.Uint32(rec[0:4]))
			size := int(binary.LittleEndian.Uint32(rec[4:8]))
			final, ok := find[gid]
			if !ok {
				final = asg.Find(gid)
				find[gid] = final
			}
			x := int(gid) % width
			ly := int(gid)/width - y0
			if ly < 0 || ly+size > bh || x+size > width {
				return fmt.Errorf("stream: spool square (%d,%d,%d) outside band %d", x, ly, size, bi)
			}
			if output == OutputRecolour {
				s := shade[final]
				for yy := ly; yy < ly+size; yy++ {
					row := yy * width
					for xx := x; xx < x+size; xx++ {
						outPix[row+xx] = s
					}
				}
			} else {
				for yy := ly; yy < ly+size; yy++ {
					row := yy * width
					for xx := x; xx < x+size; xx++ {
						outLab[row+xx] = final
					}
				}
			}
		}
		if output == OutputRecolour {
			if err := pgm.WriteRows(outPix[:bh*width]); err != nil {
				return err
			}
		} else {
			for _, lab := range outLab[:bh*width] {
				binary.LittleEndian.PutUint32(rec[0:4], uint32(lab))
				if _, err := bw.Write(rec[0:4]); err != nil {
					return fmt.Errorf("stream: writing labels: %w", err)
				}
			}
		}
		y0 += bh
	}
	if output == OutputRecolour {
		return pgm.Close()
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: flushing labels: %w", err)
	}
	return nil
}

// writeEmpty emits the output header of a zero-pixel image.
func writeEmpty(w io.Writer, width, height int, output Output) error {
	switch output {
	case OutputRecolour:
		_, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", width, height)
		return err
	case OutputLabels:
		return writeLabelHeader(w, width, height)
	default:
		return fmt.Errorf("stream: unknown output format %d", int(output))
	}
}

// writeLabelHeader writes the label-raster magic and geometry.
func writeLabelHeader(w io.Writer, width, height int) error {
	if _, err := fmt.Fprintf(w, "RGLS\n%d %d\n", width, height); err != nil {
		return fmt.Errorf("stream: writing label header: %w", err)
	}
	return nil
}

// EncodeLabels writes an in-memory label raster in the OutputLabels wire
// format: "RGLS\n<w> <h>\n" then W·H little-endian int32 region IDs in
// raster order. It is how the in-memory engines' results are compared
// byte-for-byte against a streamed OutputLabels run.
func EncodeLabels(w io.Writer, width, height int, labels []int32) error {
	if len(labels) != width*height {
		return fmt.Errorf("stream: %d labels for %dx%d raster", len(labels), width, height)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeLabelHeader(bw, width, height); err != nil {
		return err
	}
	var rec [4]byte
	for _, lab := range labels {
		binary.LittleEndian.PutUint32(rec[:], uint32(lab))
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("stream: writing labels: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("stream: flushing labels: %w", err)
	}
	return nil
}
