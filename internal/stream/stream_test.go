package stream

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"regiongrow/internal/core"
	"regiongrow/internal/pixmap"
	"regiongrow/internal/quadsplit"
	"regiongrow/internal/rag"
)

// sequentialLabels runs the in-memory reference engine.
func sequentialSeg(t *testing.T, im *pixmap.Image, cfg core.Config) *core.Segmentation {
	t.Helper()
	seg, err := core.Sequential{}.Segment(im, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

// recolourBytes renders the reference recoloured PGM: every region painted
// the midpoint of its interval, exactly the facade's Recolour.
func recolourBytes(t *testing.T, seg *core.Segmentation, im *pixmap.Image) []byte {
	t.Helper()
	shade := make(map[int32]uint8, len(seg.Regions))
	for _, r := range seg.Regions {
		shade[r.ID] = uint8((int(r.IV.Lo) + int(r.IV.Hi)) / 2)
	}
	out := pixmap.New(im.W, im.H)
	for i, lab := range seg.Labels {
		out.Pix[i] = shade[lab]
	}
	var buf bytes.Buffer
	if err := pixmap.WritePGM(&buf, out); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func labelBytes(t *testing.T, seg *core.Segmentation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeLabels(&buf, seg.W, seg.H, seg.Labels); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamMatchesSequential is the byte-identity property test: across
// all six paper images, every tie policy, and band geometries covering one
// band, many bands, and a ragged last band, the streamed label output and
// recoloured output are byte-identical to the sequential engine's.
func TestStreamMatchesSequential(t *testing.T) {
	for _, id := range pixmap.AllPaperImages() {
		im := pixmap.Generate(id, pixmap.DefaultGenOptions())
		var pgm bytes.Buffer
		if err := pixmap.WritePGM(&pgm, im); err != nil {
			t.Fatal(err)
		}
		cap := quadsplit.EffectiveCap(quadsplit.Options{}, im.W, im.H)
		bandGeometries := map[string]int{
			"one-band":    im.H,    // whole image in a single band
			"many-bands":  0,       // one cap per band
			"ragged-last": 3 * cap, // H is not a multiple of 3 caps
		}
		if im.H%(3*cap) == 0 {
			t.Fatalf("%v: 3-cap bands divide H=%d evenly; pick a raggeder geometry", id, im.H)
		}
		for _, tie := range []rag.TiePolicy{rag.SmallestID, rag.LargestID, rag.Random} {
			cfg := core.Config{Threshold: 10, Tie: tie, Seed: 7}
			seg := sequentialSeg(t, im, cfg)
			wantLabels := labelBytes(t, seg)
			wantPGM := recolourBytes(t, seg, im)
			for name, bandRows := range bandGeometries {
				t.Run(fmt.Sprintf("%v/%v/%s", id, tie, name), func(t *testing.T) {
					var gotLabels bytes.Buffer
					res, err := Segment(context.Background(), bytes.NewReader(pgm.Bytes()), &gotLabels,
						cfg, core.Run{}, Options{BandRows: bandRows, Output: OutputLabels})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotLabels.Bytes(), wantLabels) {
						t.Error("streamed labels differ from the sequential engine")
					}
					if res.FinalRegions != seg.FinalRegions {
						t.Errorf("FinalRegions = %d, sequential %d", res.FinalRegions, seg.FinalRegions)
					}
					if res.SquaresAfterSplit != seg.SquaresAfterSplit {
						t.Errorf("SquaresAfterSplit = %d, sequential %d", res.SquaresAfterSplit, seg.SquaresAfterSplit)
					}
					if res.MergeIterations != seg.MergeIterations {
						t.Errorf("MergeIterations = %d, sequential %d", res.MergeIterations, seg.MergeIterations)
					}
					wantBands := (im.H + max(bandRows/cap, 1)*cap - 1) / (max(bandRows/cap, 1) * cap)
					if res.Bands != wantBands {
						t.Errorf("Bands = %d, want %d", res.Bands, wantBands)
					}
					var gotPGM bytes.Buffer
					if _, err := Segment(context.Background(), bytes.NewReader(pgm.Bytes()), &gotPGM,
						cfg, core.Run{}, Options{BandRows: bandRows, Output: OutputRecolour}); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(gotPGM.Bytes(), wantPGM) {
						t.Error("streamed recoloured PGM differs from the sequential engine")
					}
				})
			}
		}
	}
}

// TestStreamP2Input runs the streaming path on an ASCII PGM: the encoding
// must not affect the segmentation.
func TestStreamP2Input(t *testing.T) {
	im := pixmap.Generate(pixmap.Image3Circles128, pixmap.DefaultGenOptions())
	var p2 bytes.Buffer
	if err := pixmap.WritePGMPlain(&p2, im); err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 1}
	want := labelBytes(t, sequentialSeg(t, im, cfg))
	var got bytes.Buffer
	if _, err := Segment(context.Background(), &p2, &got, cfg, core.Run{}, Options{Output: OutputLabels}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("P2-streamed labels differ from the sequential engine")
	}
}

// TestStreamLargeSynthetic segments a multi-band non-paper image with an
// explicit small cap, crossing many band boundaries.
func TestStreamLargeSynthetic(t *testing.T) {
	im := pixmap.Checkerboard(256, 40, 200)
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 3, MaxSquare: 8}
	var pgm bytes.Buffer
	if err := pixmap.WritePGM(&pgm, im); err != nil {
		t.Fatal(err)
	}
	want := labelBytes(t, sequentialSeg(t, im, cfg))
	var got bytes.Buffer
	res, err := Segment(context.Background(), &pgm, &got, cfg, core.Run{}, Options{Output: OutputLabels})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bands != 32 {
		t.Fatalf("Bands = %d, want 32 (256 rows / 8-row cap)", res.Bands)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("streamed labels differ from the sequential engine")
	}
}

// TestStreamObserverEvents pins the standard observer contract: the stage
// events arrive in engine order with the engine's totals.
func TestStreamObserverEvents(t *testing.T) {
	im := pixmap.Generate(pixmap.Image1NestedRects128, pixmap.DefaultGenOptions())
	var pgm bytes.Buffer
	if err := pixmap.WritePGM(&pgm, im); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var kinds []core.EventKind
	obs := core.ObserverFunc(func(ev core.StageEvent) {
		mu.Lock()
		kinds = append(kinds, ev.Kind)
		mu.Unlock()
	})
	cfg := core.Config{Threshold: 10, Tie: rag.Random, Seed: 1}
	res, err := Segment(context.Background(), &pgm, &bytes.Buffer{}, cfg, core.Run{Observer: obs}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []core.EventKind{core.EventSplitStart, core.EventSplitDone, core.EventGraphDone}
	for i := 0; i < res.MergeIterations; i++ {
		want = append(want, core.EventMergeIteration)
	}
	want = append(want, core.EventMergeDone)
	if len(kinds) != len(want) {
		t.Fatalf("got %d events, want %d (%v)", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("event %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

// TestStreamCancellation aborts a run up front: the driver must notice at
// its first band and return the context error without writing output.
func TestStreamCancellation(t *testing.T) {
	im := pixmap.Generate(pixmap.Image4NestedRects256, pixmap.DefaultGenOptions())
	var pgm bytes.Buffer
	if err := pixmap.WritePGM(&pgm, im); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	_, err := Segment(ctx, &pgm, &out, core.Config{Threshold: 10}, core.Run{}, Options{})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Len() != 0 {
		t.Fatalf("cancelled run wrote %d output bytes", out.Len())
	}
}

// TestStreamEmptyImage pins the degenerate geometry: header out, no rows.
func TestStreamEmptyImage(t *testing.T) {
	var out bytes.Buffer
	res, err := Segment(context.Background(), bytes.NewReader([]byte("P5\n0 0\n255\n")), &out,
		core.Config{Threshold: 10}, core.Run{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalRegions != 0 || res.Bands != 0 {
		t.Fatalf("empty image produced %+v", res)
	}
	if got := out.String(); got != "P5\n0 0\n255\n" {
		t.Fatalf("empty output %q", got)
	}
}

// TestStreamTruncatedInput: a stream shorter than its header declares must
// fail, not fabricate pixels.
func TestStreamTruncatedInput(t *testing.T) {
	_, err := Segment(context.Background(), bytes.NewReader([]byte("P5\n64 64\n255\nshort")), &bytes.Buffer{},
		core.Config{Threshold: 10}, core.Run{}, Options{})
	if err == nil {
		t.Fatal("segmented a truncated stream")
	}
}

// TestEncodeLabelsGuards pins the helper's geometry check.
func TestEncodeLabelsGuards(t *testing.T) {
	if err := EncodeLabels(&bytes.Buffer{}, 2, 2, make([]int32, 3)); err == nil {
		t.Fatal("encoded a mis-sized label raster")
	}
}
