// Package faulty is the test-only fault-injecting transport wrapper:
// it decorates any transport.Transport and, on a deterministic script,
// drops, corrupts, delays, or stalls frames, cuts connections at exact
// protocol points, and partitions the dialing side from the whole
// cluster. The distributed engine's chaos suite drives every failure
// path through it without a single real socket fault.
//
// A script is a set of Fault rules registered per worker address. Each
// rule names a protocol point — the Nth frame of a given type in a given
// direction, counted cumulatively across every connection to that
// address — and an action to take there. Rules fire exactly once, so a
// retried job observes a healed link unless the script says otherwise.
// Production code must not import this package.
package faulty

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"regiongrow/internal/transport"
)

// Dir names a frame direction relative to the wrapped (dialing) side —
// the coordinator, in the distributed engine.
type Dir int

const (
	// Out matches frames the dialer sends (coordinator → worker).
	Out Dir = iota + 1
	// In matches frames the dialer receives (worker → coordinator).
	In
)

// Act is the action a triggered fault performs.
type Act int

const (
	// Drop swallows the frame: an Out frame is reported sent but never
	// delivered; an In frame is consumed and never surfaced.
	Drop Act = iota + 1
	// Corrupt flips bits in the frame's payload, then delivers it.
	Corrupt
	// Delay holds the frame for Fault.Delay, then delivers it.
	Delay
	// Stall wedges the direction from this frame on: every operation in
	// it blocks until its own timeout fires or the conn closes — the
	// slow-loris peer that PR 6's write deadlines exist for.
	Stall
	// Cut closes the connection at this point; the frame is lost.
	Cut
)

// Fault is one scripted fault at one protocol point.
type Fault struct {
	// Dir and Type select the frames this fault counts; Type 0 matches
	// any frame type.
	Dir  Dir
	Type byte
	// Nth triggers on the n-th matching frame (1-based), counted across
	// every connection to the address.
	Nth int
	// Act is what happens at the trigger point.
	Act Act
	// Delay is the hold time for Act Delay.
	Delay time.Duration
	// Hook, if set, runs synchronously when the fault triggers — e.g.
	// Mem.Kill to turn a cut link into a whole dead worker.
	Hook func()

	seen int
	done bool
}

// Transport wraps an inner transport with scripted fault injection on
// the dialing side. Listeners pass through untouched.
type Transport struct {
	inner transport.Transport

	mu          sync.Mutex
	faults      map[string][]*Fault
	partitioned bool
	conns       []*conn
}

// New wraps inner with an empty script.
func New(inner transport.Transport) *Transport {
	return &Transport{inner: inner, faults: make(map[string][]*Fault)}
}

// Inject registers faults against connections to addr. Each fault fires
// once; re-Inject to re-arm.
func (t *Transport) Inject(addr string, faults ...Fault) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range faults {
		f := faults[i]
		t.faults[addr] = append(t.faults[addr], &f)
	}
}

// Partition cuts the dialing side off from the whole cluster: every
// open connection is closed and every future Dial fails until Heal.
func (t *Transport) Partition() {
	t.mu.Lock()
	t.partitioned = true
	conns := t.conns
	t.conns = nil
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Heal lifts a Partition; existing connections stay dead.
func (t *Transport) Heal() {
	t.mu.Lock()
	t.partitioned = false
	t.mu.Unlock()
}

// Listen implements transport.Transport by delegation.
func (t *Transport) Listen(addr string) (transport.Listener, error) {
	return t.inner.Listen(addr)
}

// Dial implements transport.Transport: the returned conn applies the
// faults scripted for addr.
func (t *Transport) Dial(ctx context.Context, addr string) (transport.Conn, error) {
	t.mu.Lock()
	if t.partitioned {
		t.mu.Unlock()
		return nil, fmt.Errorf("faulty: dial %s: partitioned", addr)
	}
	t.mu.Unlock()
	inner, err := t.inner.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	c := &conn{t: t, addr: addr, inner: inner, closed: make(chan struct{})}
	t.mu.Lock()
	t.conns = append(t.conns, c)
	t.mu.Unlock()
	return c, nil
}

// match finds and consumes the first armed fault matching a frame
// passing (addr, dir, frame type), advancing every armed rule's counter.
func (t *Transport) match(addr string, dir Dir, ft byte) *Fault {
	t.mu.Lock()
	defer t.mu.Unlock()
	var hit *Fault
	for _, f := range t.faults[addr] {
		if f.done || f.Dir != dir || (f.Type != 0 && f.Type != ft) {
			continue
		}
		f.seen++
		if hit == nil && f.seen == f.Nth {
			f.done = true
			hit = f
		}
	}
	return hit
}

// conn applies the script to one dialed connection.
type conn struct {
	t     *Transport
	addr  string
	inner transport.Conn

	closed    chan struct{}
	closeOnce sync.Once

	mu       sync.Mutex
	outStall bool
	inStall  bool
}

func (c *conn) stalled(dir Dir) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dir == Out {
		return c.outStall
	}
	return c.inStall
}

func (c *conn) setStalled(dir Dir) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if dir == Out {
		c.outStall = true
	} else {
		c.inStall = true
	}
}

// stall blocks like a wedged peer: until the operation's own timeout
// fires or the conn is torn down.
func (c *conn) stall(op string, timeout time.Duration) error {
	var timer <-chan time.Time
	if timeout > 0 {
		tm := time.NewTimer(timeout)
		defer tm.Stop()
		timer = tm.C
	}
	select {
	case <-timer:
		return fmt.Errorf("faulty: %s %s stalled: %w", op, c.addr, os.ErrDeadlineExceeded)
	case <-c.closed:
		return fmt.Errorf("faulty: %s %s stalled: %w", op, c.addr, transport.ErrClosed)
	}
}

func corrupt(f transport.Frame) transport.Frame {
	p := make([]byte, len(f.Payload))
	copy(p, f.Payload)
	for i := 0; i < len(p) && i < 8; i++ {
		p[i] ^= 0xA5
	}
	if len(p) == 0 {
		// A payload-less frame corrupts into a garbage type instead.
		return transport.Frame{Type: f.Type ^ 0x7F}
	}
	return transport.Frame{Type: f.Type, Payload: p}
}

// Send implements transport.Conn, applying Out-direction faults.
func (c *conn) Send(f transport.Frame, timeout time.Duration) error {
	if c.stalled(Out) {
		return c.stall("send", timeout)
	}
	hit := c.t.match(c.addr, Out, f.Type)
	if hit == nil {
		return c.inner.Send(f, timeout)
	}
	if hit.Hook != nil {
		defer hit.Hook()
	}
	switch hit.Act {
	case Drop:
		return nil
	case Corrupt:
		return c.inner.Send(corrupt(f), timeout)
	case Delay:
		time.Sleep(hit.Delay)
		return c.inner.Send(f, timeout)
	case Stall:
		c.setStalled(Out)
		return c.stall("send", timeout)
	case Cut:
		c.Close()
		return fmt.Errorf("faulty: send %s: cut: %w", c.addr, transport.ErrClosed)
	default:
		return c.inner.Send(f, timeout)
	}
}

// Recv implements transport.Conn, applying In-direction faults to the
// frames the inner conn delivers.
func (c *conn) Recv(timeout time.Duration) (transport.Frame, error) {
	for {
		if c.stalled(In) {
			return transport.Frame{}, c.stall("recv", timeout)
		}
		f, err := c.inner.Recv(timeout)
		if err != nil {
			return transport.Frame{}, err
		}
		hit := c.t.match(c.addr, In, f.Type)
		if hit == nil {
			return f, nil
		}
		if hit.Hook != nil {
			hit.Hook()
		}
		switch hit.Act {
		case Drop:
			continue
		case Corrupt:
			return corrupt(f), nil
		case Delay:
			time.Sleep(hit.Delay)
			return f, nil
		case Stall:
			c.setStalled(In)
			return transport.Frame{}, c.stall("recv", timeout)
		case Cut:
			c.Close()
			return transport.Frame{}, fmt.Errorf("faulty: recv %s: cut: %w", c.addr, transport.ErrClosed)
		default:
			return f, nil
		}
	}
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.inner.Close()
}
