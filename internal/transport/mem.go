package transport

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"
)

// memBuffer is the per-direction frame queue depth. Deep enough that
// heartbeats never block behind a peer busy computing, small enough that
// a stalled peer still exerts backpressure (so Send timeouts are
// reachable in tests).
const memBuffer = 16

// Mem is the in-process transport: a named registry of listeners whose
// connections are pairs of buffered frame channels. It runs a whole
// coordinator-plus-workers cluster inside one process with no sockets —
// the substrate for the chaos suite's deterministic fault injection and
// a production path in its own right (a single binary can serve the
// distributed engine against in-process workers).
//
// Addresses are arbitrary names; Listen("") auto-assigns "mem-N".
type Mem struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	next      int
}

// NewMem returns an empty in-process transport registry.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// Listen implements Transport. An empty addr auto-assigns a fresh name;
// reusing a live listener's name is an error.
func (m *Mem) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		m.next++
		addr = fmt.Sprintf("mem-%d", m.next)
	}
	if _, ok := m.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: mem address %q already in use", addr)
	}
	l := &memListener{
		m:      m,
		addr:   addr,
		accept: make(chan Conn, 8),
		closed: make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Transport; it fails like a refused connection when
// nothing listens at addr.
func (m *Mem) Dial(ctx context.Context, addr string) (Conn, error) {
	m.mu.Lock()
	l := m.listeners[addr]
	m.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: mem dial %s: %w", addr, ErrClosed)
	}
	a, b := newMemPair(addr)
	l.mu.Lock()
	if l.isClosed() {
		l.mu.Unlock()
		return nil, fmt.Errorf("transport: mem dial %s: %w", addr, ErrClosed)
	}
	l.conns = append(l.conns, b)
	l.mu.Unlock()
	select {
	case l.accept <- b:
		return a, nil
	case <-l.closed:
		return nil, fmt.Errorf("transport: mem dial %s: %w", addr, ErrClosed)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Kill simulates the abrupt death of the worker process at addr: its
// listener stops accepting and every connection ever accepted through
// it is torn down, exactly as the OS would reset a dead process's
// sockets. Future dials fail until something listens on addr again.
func (m *Mem) Kill(addr string) {
	m.mu.Lock()
	l := m.listeners[addr]
	m.mu.Unlock()
	if l == nil {
		return
	}
	l.Close()
	l.mu.Lock()
	conns := l.conns
	l.conns = nil
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

type memListener struct {
	m      *Mem
	addr   string
	accept chan Conn
	closed chan struct{}

	mu        sync.Mutex
	conns     []*memConn // accepted side of every dial, for Kill
	closeOnce sync.Once
}

func (l *memListener) isClosed() bool {
	select {
	case <-l.closed:
		return true
	default:
		return false
	}
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		// Drain dials that raced the close.
		select {
		case c := <-l.accept:
			return c, nil
		default:
			return nil, fmt.Errorf("transport: mem listener %s: %w", l.addr, ErrClosed)
		}
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.closed)
		l.m.mu.Lock()
		if l.m.listeners[l.addr] == l {
			delete(l.m.listeners, l.addr)
		}
		l.m.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// memLink is the shared state of one connection pair: two directional
// frame queues and a single teardown signal — closing either end kills
// the whole link, the moral equivalent of a TCP reset.
type memLink struct {
	ab   chan Frame // a → b
	ba   chan Frame // b → a
	done chan struct{}
	once sync.Once
}

func (lk *memLink) close() {
	lk.once.Do(func() { close(lk.done) })
}

func newMemPair(addr string) (dialer, accepted *memConn) {
	lk := &memLink{
		ab:   make(chan Frame, memBuffer),
		ba:   make(chan Frame, memBuffer),
		done: make(chan struct{}),
	}
	a := &memConn{link: lk, send: lk.ab, recv: lk.ba, addr: addr}
	b := &memConn{link: lk, send: lk.ba, recv: lk.ab, addr: addr}
	return a, b
}

type memConn struct {
	link *memLink
	send chan<- Frame
	recv <-chan Frame
	addr string
}

func deadlineErr(op, addr string) error {
	return fmt.Errorf("transport: mem %s %s: %w", op, addr, os.ErrDeadlineExceeded)
}

// Send implements Conn. The frame is handed over by reference: senders
// in this codebase build each payload fresh and never mutate it after
// Send, matching the ownership rule Recv documents.
func (c *memConn) Send(f Frame, timeout time.Duration) error {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case c.send <- f:
		return nil
	case <-c.link.done:
		return fmt.Errorf("transport: mem send %s: %w", c.addr, ErrClosed)
	case <-timer:
		return deadlineErr("send", c.addr)
	}
}

// Recv implements Conn. Frames buffered before a close remain
// deliverable: a worker that sends its result and immediately closes
// must not lose the result to the teardown race.
func (c *memConn) Recv(timeout time.Duration) (Frame, error) {
	select {
	case f := <-c.recv:
		return f, nil
	default:
	}
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case f := <-c.recv:
		return f, nil
	case <-c.link.done:
		// The link died while we waited — but a frame may have landed
		// concurrently; prefer delivering it.
		select {
		case f := <-c.recv:
			return f, nil
		default:
			return Frame{}, fmt.Errorf("transport: mem recv %s: %w", c.addr, ErrClosed)
		}
	case <-timer:
		return Frame{}, deadlineErr("recv", c.addr)
	}
}

func (c *memConn) Close() error {
	c.link.close()
	return nil
}
