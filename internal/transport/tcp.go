package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a frame payload: a band of a 16k×16k image of int32
// labels stays well under it, while a corrupt length prefix cannot make
// a peer allocate gigabytes.
const MaxFrame = 1 << 28

// WriteFrame emits one frame on w — type byte, big-endian uint32
// payload length, payload — and flushes.
func WriteFrame(w *bufio.Writer, f Frame) error {
	var hdr [5]byte
	hdr[0] = f.Type
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(f.Payload); err != nil {
		return err
	}
	return w.Flush()
}

// readChunk is the growth step for large-frame reads: a payload beyond
// it is allocated chunk by chunk as bytes actually arrive, so a lying
// length prefix costs at most one chunk, not the declared size.
const readChunk = 1 << 20

// ReadFrame reads one frame from r, enforcing the MaxFrame payload
// bound. It is the whole wire-decoding surface a peer controls, so it
// must stay panic-free and allocation-bounded on arbitrary input
// (fuzzed in internal/distengine's FuzzReadFrame): memory is committed
// only for bytes that actually arrive, never for a header's claim.
func ReadFrame(r *bufio.Reader) (Frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr[1:]))
	if n > MaxFrame {
		return Frame{}, fmt.Errorf("transport: frame of %d bytes exceeds the %d-byte bound", n, MaxFrame)
	}
	if n <= readChunk {
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return Frame{}, err
		}
		return Frame{Type: hdr[0], Payload: payload}, nil
	}
	var payload []byte
	for read := 0; read < n; {
		k := min(n-read, readChunk)
		buf := make([]byte, k)
		if _, err := io.ReadFull(r, buf); err != nil {
			return Frame{}, err
		}
		payload = append(payload, buf...)
		read += k
	}
	return Frame{Type: hdr[0], Payload: payload}, nil
}

// TCP is the production transport: length-prefixed frames over TCP
// sockets, per-operation deadlines on the underlying conn. The zero
// value is ready to use.
type TCP struct{}

// Dial implements Transport.
func (TCP) Dial(ctx context.Context, addr string) (Conn, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return WrapConn(c), nil
}

// Listen implements Transport; addr ":0" and "host:0" pick a free port.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return WrapListener(l), nil
}

// WrapConn adapts an established net.Conn (TCP, net.Pipe, a test tap…)
// to the framed Conn interface.
func WrapConn(c net.Conn) Conn {
	// No I/O happens here: every Send/Recv arms its own deadline on c
	// before touching these wrappers.
	return &tcpConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)} //vet:nodeadline deadlines armed per call in tcpConn.Send/Recv
}

// WrapListener adapts a net.Listener to the framed Listener interface;
// every accepted conn is wrapped via WrapConn.
func WrapListener(l net.Listener) Listener {
	return &tcpListener{l: l}
}

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// tcpConn frames a net.Conn. Writes serialize on mu so heartbeat frames
// can interleave with protocol frames without interleaving bytes; reads
// are single-reader by the Conn contract.
type tcpConn struct {
	c  net.Conn
	r  *bufio.Reader
	mu sync.Mutex
	w  *bufio.Writer
}

// Send implements Conn: the deadline is armed on the socket before any
// byte is written, and WriteFrame flushes, so the timeout covers the
// whole frame reaching the kernel.
func (t *tcpConn) Send(f Frame, timeout time.Duration) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout) //vet:timing deadline arithmetic; never reaches wire payload bytes
	}
	if err := t.c.SetWriteDeadline(deadline); err != nil {
		return err
	}
	return WriteFrame(t.w, f)
}

// Recv implements Conn.
func (t *tcpConn) Recv(timeout time.Duration) (Frame, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout) //vet:timing deadline arithmetic; never reaches wire payload bytes
	}
	if err := t.c.SetReadDeadline(deadline); err != nil {
		return Frame{}, err
	}
	return ReadFrame(t.r)
}

func (t *tcpConn) Close() error { return t.c.Close() }
